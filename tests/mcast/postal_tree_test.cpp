#include "mcast/postal_tree.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace nicmcast::mcast {
namespace {

std::vector<net::NodeId> range(net::NodeId lo, net::NodeId hi) {
  std::vector<net::NodeId> v(hi - lo);
  std::iota(v.begin(), v.end(), lo);
  return v;
}

PostalCostModel model(double latency_us, double gap_us) {
  PostalCostModel m;
  m.latency = sim::usec(latency_us);
  m.gap = sim::usec(gap_us);
  return m;
}

TEST(PostalCostModel, LambdaAndFanout) {
  EXPECT_DOUBLE_EQ(model(10, 2).lambda(), 5.0);
  EXPECT_EQ(model(10, 2).fanout(), 5u);
  EXPECT_EQ(model(10, 12).fanout(), 1u);  // never below 1
  EXPECT_EQ(model(10, 0).fanout(), 1u);   // degenerate gap
}

TEST(PostalCostModel, NicBasedSmallMessagesHaveLargeLambda) {
  const nic::NicConfig nic;
  const net::NetworkConfig net;
  const auto small = PostalCostModel::nic_based(8, nic, net);
  const auto large = PostalCostModel::nic_based(16384, nic, net);
  // Small messages: cheap replicas, so keep sending (big fan-out).
  EXPECT_GE(small.fanout(), 4u);
  // Large messages: each replica costs a full serialisation; fan-out ~1-2.
  EXPECT_LE(large.fanout(), 2u);
}

TEST(PostalCostModel, HostBasedLambdaIsSmallForSmallMessages) {
  const nic::NicConfig nic;
  const net::NetworkConfig net;
  const auto hb = PostalCostModel::host_based(8, nic, net);
  const auto nb = PostalCostModel::nic_based(8, nic, net);
  // The NIC-based scheme sends extra replicas much more cheaply.
  EXPECT_LT(nb.gap.nanoseconds(), hb.gap.nanoseconds());
  EXPECT_GT(nb.fanout(), hb.fanout());
}

TEST(PostalTree, FlatWhenLatencyDominates) {
  // lambda >= n: the root reaches everyone before anyone could help.
  const Tree t = build_postal_tree(0, range(1, 8), model(100, 1));
  EXPECT_EQ(t.depth(), 1u);
  EXPECT_EQ(t.max_fanout(), 7u);
}

TEST(PostalTree, LatencyClampedToGapPreventsChains) {
  // Pipelined large messages can report per-hop latency below the
  // per-message gap; the builder clamps L >= g and floors the fan-out cap
  // at 2, so the schedule degrades to narrow doubling — never to a
  // depth-n chain and never to a star.
  const Tree t = build_postal_tree(0, range(1, 6), model(1, 10));
  EXPECT_LE(t.depth(), 3u);   // not a 5-deep chain
  EXPECT_GE(t.depth(), 2u);   // not a star either
  EXPECT_LE(t.max_fanout(), 2u);
}

TEST(PostalTree, IntermediateLambdaGivesIntermediateShape) {
  const Tree flat = build_postal_tree(0, range(1, 16), model(100, 1));
  const Tree mid = build_postal_tree(0, range(1, 16), model(3, 1));
  const Tree deep = build_postal_tree(0, range(1, 16), model(1, 1));
  EXPECT_LT(flat.depth(), mid.depth());
  EXPECT_LE(mid.depth(), deep.depth());
  EXPECT_GT(mid.max_fanout(), deep.max_fanout());
}

TEST(PostalTree, CoversAllDestinationsExactlyOnce) {
  const auto dests = range(1, 16);
  const Tree t = build_postal_tree(0, dests, model(7, 2));
  EXPECT_EQ(t.size(), 16u);
  for (net::NodeId d : dests) EXPECT_TRUE(t.contains(d));
  t.validate();
}

TEST(PostalTree, SatisfiesIdOrderingByConstruction) {
  for (double lambda : {1.0, 2.5, 4.0, 50.0}) {
    const Tree t =
        build_postal_tree(0, range(1, 16), model(lambda, 1.0));
    EXPECT_TRUE(t.satisfies_id_ordering()) << "lambda " << lambda;
  }
  // Root in the middle of the id space.
  const Tree t = build_postal_tree(8, range(0, 16), model(3, 1));
  EXPECT_TRUE(t.satisfies_id_ordering());
  EXPECT_EQ(t.size(), 16u);
}

TEST(PostalTree, DeterministicForEqualInputs) {
  const Tree a = build_postal_tree(0, range(1, 12), model(3.7, 1.1));
  const Tree b = build_postal_tree(0, range(1, 12), model(3.7, 1.1));
  EXPECT_EQ(a.describe(), b.describe());
}

TEST(PostalTree, NarrowDoublingWhenLatencyEqualsGap) {
  // With L == g every sender hands off after at most two children: the
  // shape sits between the binomial tree and a chain.
  const Tree postal = build_postal_tree(0, range(1, 16), model(1, 1));
  const Tree binomial = build_binomial_tree(0, range(1, 16));
  EXPECT_LE(postal.max_fanout(), 2u);
  EXPECT_GE(postal.depth(), binomial.depth());
  EXPECT_LE(postal.depth(), 8u);  // far from a 15-deep chain
}

TEST(PostalTree, ScheduleMakespanBeatsBinomialWhenReplicasAreCheap) {
  // Simulate the postal schedule analytically: arrival time of the last
  // destination must be lower for the postal tree than the binomial tree
  // when lambda is large (the whole point of the optimal tree).
  const PostalCostModel m = model(10, 1);
  auto makespan = [&](const Tree& t) {
    // Arrival time of each node: parent's arrival + position-in-children *
    // gap + latency.
    std::unordered_map<net::NodeId, double> arrival;
    arrival[t.root()] = 0.0;
    double worst = 0.0;
    // nodes() is in insertion order = parents before children.
    for (net::NodeId node : t.nodes()) {
      const auto& kids = t.children(node);
      for (std::size_t i = 0; i < kids.size(); ++i) {
        arrival[kids[i]] = arrival[node] +
                           static_cast<double>(i + 1) * m.gap.microseconds() +
                           m.latency.microseconds() - m.gap.microseconds();
        worst = std::max(worst, arrival[kids[i]]);
      }
    }
    return worst;
  };
  const Tree postal = build_postal_tree(0, range(1, 16), m);
  const Tree binomial = build_binomial_tree(0, range(1, 16));
  EXPECT_LT(makespan(postal), makespan(binomial));
}

TEST(PostalTree, EmptyDestinations) {
  const Tree t = build_postal_tree(0, {}, model(5, 1));
  EXPECT_EQ(t.size(), 1u);
}

}  // namespace
}  // namespace nicmcast::mcast

// End-to-end GM-level broadcast: host-based baseline vs NIC-based multicast
// over installed group trees — the heart of the paper's Figure 5 claim.
#include "mcast/bcast.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "mcast/postal_tree.hpp"

namespace nicmcast::mcast {
namespace {

using gm::Cluster;
using gm::ClusterConfig;
using gm::Payload;

Payload make_payload(std::size_t n, std::uint8_t salt = 0) {
  Payload p(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = std::byte{static_cast<std::uint8_t>(i * 131u + salt)};
  }
  return p;
}

std::vector<net::NodeId> everyone_but(net::NodeId root, std::size_t n) {
  std::vector<net::NodeId> v;
  for (net::NodeId i = 0; i < n; ++i) {
    if (i != root) v.push_back(i);
  }
  return v;
}

/// Runs one broadcast on every node; returns the wall-clock when the last
/// node (including the root's completion) finished.
sim::TimePoint run_bcast(Cluster& c, const Tree& tree, bool nic_based,
                         net::GroupId group, const Payload& msg,
                         std::size_t buffer_capacity) {
  for (net::NodeId node : tree.nodes()) {
    if (node != tree.root()) {
      c.port(node).provide_receive_buffer(buffer_capacity);
    }
  }
  auto last = std::make_shared<sim::TimePoint>();
  for (net::NodeId node : tree.nodes()) {
    // NOTE: conditional expressions are hoisted out of coroutine call
    // argument lists throughout — GCC 12 double-frees such temporaries
    // (PR c++/103909 family).
    Payload input = node == tree.root() ? msg : Payload{};
    c.simulator().spawn(
        [](Cluster& cl, const Tree& t, bool nb, net::GroupId g,
           Payload data, net::NodeId me,
           std::shared_ptr<sim::TimePoint> done) -> sim::Task<void> {
          Payload got;
          if (nb) {
            got = co_await nic_bcast(cl.port(me), t, g, std::move(data), 1);
          } else {
            got = co_await host_bcast(cl.port(me), t, std::move(data), 1);
          }
          EXPECT_FALSE(got.empty());
          *done = std::max(*done, cl.simulator().now());
        }(c, tree, nic_based, group, std::move(input), node, last));
  }
  c.run();
  return *last;
}

TEST(InstallGroup, ProgramsEveryMemberNic) {
  Cluster c(ClusterConfig{.nodes = 4});
  const Tree tree = build_binomial_tree(0, {1, 2, 3});
  install_group(c, tree, 9);
  for (net::NodeId i = 0; i < 4; ++i) {
    EXPECT_TRUE(c.nic(i).has_group(9)) << "node " << i;
  }
}

TEST(HostBcast, DeliversToAllNodes) {
  Cluster c(ClusterConfig{.nodes = 8});
  const Tree tree = build_binomial_tree(0, everyone_but(0, 8));
  const Payload msg = make_payload(600);
  std::vector<Payload> results(8);
  for (net::NodeId node = 0; node < 8; ++node) {
    if (node != 0) c.port(node).provide_receive_buffer(4096);
  }
  for (net::NodeId node = 0; node < 8; ++node) {
    c.simulator().spawn(
        [](Cluster& cl, const Tree& t, Payload data, net::NodeId me,
           Payload& out) -> sim::Task<void> {
          out = co_await host_bcast(cl.port(me), t, std::move(data), 1);
        }(c, tree, Payload(node == 0 ? msg : Payload{}), node,
          results[node]));
  }
  c.run();
  for (net::NodeId node = 0; node < 8; ++node) {
    EXPECT_EQ(results[node], msg) << "node " << node;
  }
}

TEST(NicBcast, DeliversToAllNodes) {
  Cluster c(ClusterConfig{.nodes = 8});
  const Tree tree = build_binomial_tree(0, everyone_but(0, 8));
  install_group(c, tree, 3);
  const Payload msg = make_payload(600);
  std::vector<Payload> results(8);
  for (net::NodeId node = 0; node < 8; ++node) {
    if (node != 0) c.port(node).provide_receive_buffer(4096);
  }
  for (net::NodeId node = 0; node < 8; ++node) {
    c.simulator().spawn(
        [](Cluster& cl, const Tree& t, Payload data, net::NodeId me,
           Payload& out) -> sim::Task<void> {
          out = co_await nic_bcast(cl.port(me), t, 3, std::move(data), 1);
        }(c, tree, Payload(node == 0 ? msg : Payload{}), node,
          results[node]));
  }
  c.run();
  for (net::NodeId node = 0; node < 8; ++node) {
    EXPECT_EQ(results[node], msg) << "node " << node;
  }
}

TEST(NicBcast, BeatsHostBcastOnSmallMessages16Nodes) {
  // Figure 5: >= 1.4x for <= 512-byte messages on 16 nodes.
  const std::size_t n = 16;
  const Payload msg = make_payload(512);

  Cluster host_cluster(ClusterConfig{.nodes = n});
  const Tree binomial = build_binomial_tree(0, everyone_but(0, n));
  const sim::TimePoint hb =
      run_bcast(host_cluster, binomial, false, 0, msg, 4096);

  Cluster nic_cluster(ClusterConfig{.nodes = n});
  const auto cost = PostalCostModel::nic_based(msg.size(), nic::NicConfig{},
                                               net::NetworkConfig{});
  const Tree optimal = build_postal_tree(0, everyone_but(0, n), cost);
  install_group(nic_cluster, optimal, 1);
  const sim::TimePoint nb = run_bcast(nic_cluster, optimal, true, 1, msg, 4096);

  const double factor = static_cast<double>(hb.nanoseconds()) /
                        static_cast<double>(nb.nanoseconds());
  // Paper reports 1.48; our cost model overshoots (EXPERIMENTS.md discusses
  // why) but the win and its rough magnitude must hold.
  EXPECT_GT(factor, 1.5);
  EXPECT_LT(factor, 3.2);
}

TEST(NicBcast, BeatsHostBcastOnLargeMessages16Nodes) {
  // Figure 5: up to 1.86x at 16KB on 16 nodes (forwarding pipelining).
  const std::size_t n = 16;
  const Payload msg = make_payload(16384);

  Cluster host_cluster(ClusterConfig{.nodes = n});
  const Tree binomial = build_binomial_tree(0, everyone_but(0, n));
  const sim::TimePoint hb =
      run_bcast(host_cluster, binomial, false, 0, msg, 16384);

  Cluster nic_cluster(ClusterConfig{.nodes = n});
  const auto cost = PostalCostModel::nic_based(msg.size(), nic::NicConfig{},
                                               net::NetworkConfig{});
  const Tree optimal = build_postal_tree(0, everyone_but(0, n), cost);
  install_group(nic_cluster, optimal, 1);
  const sim::TimePoint nb =
      run_bcast(nic_cluster, optimal, true, 1, msg, 16384);

  const double factor = static_cast<double>(hb.nanoseconds()) /
                        static_cast<double>(nb.nanoseconds());
  // Paper reports 1.86 at 16KB (pipelined forwarding); ours overshoots.
  EXPECT_GT(factor, 1.8);
  EXPECT_LT(factor, 3.8);
}

TEST(NicBcast, WorksUnderPacketLoss) {
  const std::size_t n = 8;
  Cluster c(ClusterConfig{.nodes = n});
  c.network().set_fault_injector(
      std::make_unique<net::RandomFaults>(0.08, 0.04, sim::Rng(11)));
  const Tree tree = build_binomial_tree(0, everyone_but(0, n));
  install_group(c, tree, 2);
  const Payload msg = make_payload(3000);
  const sim::TimePoint done = run_bcast(c, tree, true, 2, msg, 4096);
  EXPECT_GT(done.nanoseconds(), 0);
}

TEST(NicBcast, RootNotInTreeThrows) {
  Cluster c(ClusterConfig{.nodes = 4});
  const Tree tree = build_binomial_tree(0, {1, 2});
  install_group(c, tree, 2);
  bool threw = false;
  c.simulator().spawn([](Cluster& cl, const Tree& t,
                         bool& flag) -> sim::Task<void> {
    try {
      co_await nic_bcast(cl.port(3), t, 2, Payload(8), 0);
    } catch (const std::logic_error&) {
      flag = true;
    }
  }(c, tree, threw));
  c.run();
  EXPECT_TRUE(threw);
}

TEST(NicBcast, SequentialBroadcastsReuseGroup) {
  const std::size_t n = 4;
  Cluster c(ClusterConfig{.nodes = n});
  const Tree tree = build_binomial_tree(0, everyone_but(0, n));
  install_group(c, tree, 5);
  for (net::NodeId node = 1; node < n; ++node) {
    c.port(node).provide_receive_buffers(3, 4096);
  }
  std::vector<int> rounds(n, 0);
  for (net::NodeId node = 0; node < n; ++node) {
    c.simulator().spawn(
        [](Cluster& cl, const Tree& t, net::NodeId me,
           int& count) -> sim::Task<void> {
          for (std::uint32_t r = 0; r < 3; ++r) {
            Payload input;
            if (me == 0) {
              input = make_payload(64, static_cast<std::uint8_t>(r));
            }
            const Payload got = co_await nic_bcast(cl.port(me), t, 5,
                                                   std::move(input), r);
            EXPECT_EQ(got, make_payload(64, static_cast<std::uint8_t>(r)));
            ++count;
          }
        }(c, tree, node, rounds[node]));
  }
  c.run();
  for (net::NodeId node = 0; node < n; ++node) EXPECT_EQ(rounds[node], 3);
}

TEST(PostalVsBinomial, OptimalTreeShapeDependsOnSize) {
  const nic::NicConfig nic;
  const net::NetworkConfig net;
  const auto dests = everyone_but(0, 16);
  const Tree small_tree = build_postal_tree(
      0, dests, PostalCostModel::nic_based(8, nic, net));
  const Tree large_tree = build_postal_tree(
      0, dests, PostalCostModel::nic_based(16384, nic, net));
  // Paper: small messages -> larger average fan-out, shallower depth.
  EXPECT_LT(small_tree.depth(), build_binomial_tree(0, dests).depth());
  EXPECT_GT(small_tree.max_fanout(), large_tree.max_fanout());
}

}  // namespace
}  // namespace nicmcast::mcast

#include "mcast/tree.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

namespace nicmcast::mcast {
namespace {

std::vector<net::NodeId> range(net::NodeId lo, net::NodeId hi) {
  std::vector<net::NodeId> v(hi - lo);
  std::iota(v.begin(), v.end(), lo);
  return v;
}

TEST(Tree, BasicConstruction) {
  Tree t(0);
  t.add_edge(0, 1);
  t.add_edge(0, 2);
  t.add_edge(1, 3);
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.root(), 0);
  EXPECT_EQ(t.children(0), (std::vector<net::NodeId>{1, 2}));
  EXPECT_EQ(t.children(1), (std::vector<net::NodeId>{3}));
  EXPECT_TRUE(t.children(3).empty());
  EXPECT_EQ(t.parent(3), std::optional<net::NodeId>(1));
  EXPECT_EQ(t.parent(0), std::nullopt);
  EXPECT_EQ(t.depth(), 2u);
  EXPECT_EQ(t.max_fanout(), 2u);
  t.validate();
}

TEST(Tree, RejectsMalformedEdges) {
  Tree t(0);
  t.add_edge(0, 1);
  EXPECT_THROW(t.add_edge(5, 6), std::logic_error);   // unknown parent
  EXPECT_THROW(t.add_edge(0, 1), std::logic_error);   // re-add child
  EXPECT_THROW(t.add_edge(1, 0), std::logic_error);   // root as child
}

TEST(Tree, EntryForMapsRoles) {
  Tree t(2);
  t.add_edge(2, 5);
  t.add_edge(5, 7);
  const nic::GroupEntry root = t.entry_for(2, 1);
  EXPECT_EQ(root.parent, nic::kNoNode);
  EXPECT_EQ(root.children, (std::vector<net::NodeId>{5}));
  EXPECT_EQ(root.port, 1);
  const nic::GroupEntry mid = t.entry_for(5, 1);
  EXPECT_EQ(mid.parent, 2);
  EXPECT_EQ(mid.children, (std::vector<net::NodeId>{7}));
  const nic::GroupEntry leaf = t.entry_for(7, 1);
  EXPECT_EQ(leaf.parent, 5);
  EXPECT_TRUE(leaf.children.empty());
  EXPECT_THROW(static_cast<void>(t.entry_for(99, 0)), std::out_of_range);
}

TEST(Tree, NormalizeDestinationsSortsDedupsAndDropsRoot) {
  const auto out = normalize_destinations(3, {5, 1, 3, 5, 9, 1});
  EXPECT_EQ(out, (std::vector<net::NodeId>{1, 5, 9}));
}

TEST(BinomialTree, ClassicShapeFor8) {
  const Tree t = build_binomial_tree(0, range(1, 8));
  EXPECT_EQ(t.size(), 8u);
  // Children are in ascending-rank order (MPICH 1.2.x's mask<<=1 send
  // order: nearest child first, deepest subtree last).
  EXPECT_EQ(t.children(0), (std::vector<net::NodeId>{1, 2, 4}));
  EXPECT_EQ(t.children(2), (std::vector<net::NodeId>{3}));
  EXPECT_EQ(t.children(4), (std::vector<net::NodeId>{5, 6}));
  EXPECT_EQ(t.children(6), (std::vector<net::NodeId>{7}));
  EXPECT_EQ(t.depth(), 3u);  // log2(8)
  t.validate();
}

TEST(BinomialTree, DepthIsLogarithmic) {
  for (std::size_t n : {2u, 4u, 16u, 32u}) {
    const Tree t = build_binomial_tree(0, range(1, static_cast<net::NodeId>(n)));
    std::size_t log2n = 0;
    while ((1u << log2n) < n) ++log2n;
    EXPECT_EQ(t.depth(), log2n) << "n=" << n;
  }
}

TEST(BinomialTree, NonPowerOfTwo) {
  const Tree t = build_binomial_tree(0, range(1, 6));  // 6 nodes
  EXPECT_EQ(t.size(), 6u);
  t.validate();
  EXPECT_TRUE(t.satisfies_id_ordering());
}

TEST(BinomialTree, NonZeroRootKeepsInvariant) {
  // Root 10 with smaller-id destinations: only root->child edges may point
  // "down" in id space.
  const Tree t = build_binomial_tree(10, {1, 2, 3, 4, 5});
  EXPECT_EQ(t.size(), 6u);
  t.validate();
  EXPECT_TRUE(t.satisfies_id_ordering());
}

TEST(BinomialTree, IdOrderingInvariantHoldsForManyShapes) {
  for (net::NodeId root : {net::NodeId{0}, net::NodeId{7}, net::NodeId{15}}) {
    std::vector<net::NodeId> dests;
    for (net::NodeId i = 0; i < 16; ++i) {
      if (i != root) dests.push_back(i);
    }
    const Tree t = build_binomial_tree(root, dests);
    EXPECT_TRUE(t.satisfies_id_ordering()) << "root " << root;
    EXPECT_EQ(t.size(), 16u);
  }
}

TEST(ChainTree, LinearShape) {
  const Tree t = build_chain_tree(0, range(1, 5));
  EXPECT_EQ(t.depth(), 4u);
  EXPECT_EQ(t.max_fanout(), 1u);
  EXPECT_TRUE(t.satisfies_id_ordering());
}

TEST(FlatTree, StarShape) {
  const Tree t = build_flat_tree(0, range(1, 9));
  EXPECT_EQ(t.depth(), 1u);
  EXPECT_EQ(t.max_fanout(), 8u);
  EXPECT_TRUE(t.satisfies_id_ordering());
}

TEST(Tree, IdOrderingViolationDetected) {
  Tree t(0);
  t.add_edge(0, 5);
  t.add_edge(5, 3);  // 3 < 5 and 5 is not the root
  EXPECT_FALSE(t.satisfies_id_ordering());
}

TEST(Tree, SingleNodeTree) {
  const Tree t = build_binomial_tree(4, {});
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.depth(), 0u);
  t.validate();
}

TEST(Tree, DescribeIsHumanReadable) {
  Tree t(0);
  t.add_edge(0, 1);
  t.add_edge(1, 2);
  const std::string d = t.describe();
  EXPECT_NE(d.find("root=0"), std::string::npos);
  EXPECT_NE(d.find("0->[1]"), std::string::npos);
  EXPECT_NE(d.find("1->[2]"), std::string::npos);
}

TEST(Tree, NodesForNonZeroRootListsRootFirstOnce) {
  // Regression: a constructor defect once hard-coded node 0 into the node
  // list, duplicating it and dropping a non-zero root.
  const Tree t = build_binomial_tree(10, {1, 2, 3});
  const auto nodes = t.nodes();
  ASSERT_EQ(nodes.size(), 4u);
  EXPECT_EQ(nodes.front(), 10);
  EXPECT_EQ(std::set<net::NodeId>(nodes.begin(), nodes.end()),
            (std::set<net::NodeId>{1, 2, 3, 10}));
}

TEST(Tree, NodesListsAllMembers) {
  const Tree t = build_binomial_tree(0, range(1, 8));
  const auto nodes = t.nodes();
  EXPECT_EQ(std::set<net::NodeId>(nodes.begin(), nodes.end()),
            (std::set<net::NodeId>{0, 1, 2, 3, 4, 5, 6, 7}));
}

}  // namespace
}  // namespace nicmcast::mcast

#include "gm/cluster.hpp"

#include <gtest/gtest.h>

namespace nicmcast::gm {
namespace {

TEST(Cluster, DefaultsTo16Nodes) {
  Cluster c;
  EXPECT_EQ(c.size(), 16u);
  EXPECT_EQ(c.nic(0).id(), 0);
  EXPECT_EQ(c.nic(15).id(), 15);
}

TEST(Cluster, PortIsLazilyCreatedAndCached) {
  Cluster c(ClusterConfig{.nodes = 2});
  Port& a = c.port(0);
  Port& b = c.port(0);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.node(), 0);
  EXPECT_EQ(a.port_id(), 0);
}

TEST(Cluster, MultiplePortsPerNode) {
  Cluster c(ClusterConfig{.nodes = 2});
  EXPECT_NE(&c.port(0, 0), &c.port(0, 1));
}

TEST(Cluster, OutOfRangeThrows) {
  Cluster c(ClusterConfig{.nodes = 2});
  EXPECT_THROW(static_cast<void>(c.port(5)), std::out_of_range);
  EXPECT_THROW(static_cast<void>(c.nic(5)), std::out_of_range);
}

TEST(Cluster, BackToBackWiringNeedsTwoNodes) {
  EXPECT_THROW(Cluster(ClusterConfig{
                   .nodes = 3, .wiring = ClusterConfig::Wiring::kBackToBack}),
               std::invalid_argument);
}

TEST(Cluster, ClosWiringConnectsEveryPair) {
  Cluster c(ClusterConfig{.nodes = 24,
                          .wiring = ClusterConfig::Wiring::kClos,
                          .switch_radix = 8});
  c.port(23).provide_receive_buffer(4096);
  bool done = false;
  c.simulator().spawn([](Cluster& cl, bool& flag) -> sim::Task<void> {
    EXPECT_EQ(co_await cl.port(0).send(23, 0, Payload(100), 0),
              SendStatus::kOk);
    flag = true;
  }(c, done));
  c.run();
  EXPECT_TRUE(done);
}

TEST(Cluster, RunOnAllSpawnsEveryNode) {
  Cluster c(ClusterConfig{.nodes = 4});
  int ran = 0;
  auto handles = c.run_on_all(
      [&ran](Cluster& cl, net::NodeId) -> sim::Task<void> {
        co_await cl.simulator().wait(sim::usec(1));
        ++ran;
      });
  c.run();
  EXPECT_EQ(ran, 4);
  for (const auto& h : handles) EXPECT_TRUE(h->done());
}

TEST(Cluster, AllToAllExchange) {
  // Every node sends to every other node; everything arrives.
  const std::size_t n = 6;
  Cluster c(ClusterConfig{.nodes = n,
                          .nic = {.send_tokens_per_port = 32}});
  for (std::size_t i = 0; i < n; ++i) {
    c.port(i).provide_receive_buffers(n - 1, 4096);
  }
  std::vector<int> received(n, 0);
  c.run_on_all([&received](Cluster& cl, net::NodeId me) -> sim::Task<void> {
    for (net::NodeId peer = 0; peer < cl.size(); ++peer) {
      if (peer == me) continue;
      co_await cl.port(me).send(peer, 0, Payload(64), me);
    }
    for (std::size_t k = 0; k + 1 < cl.size(); ++k) {
      co_await cl.port(me).receive();
      ++received[me];
    }
  });
  c.run();
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(received[i], static_cast<int>(n - 1)) << "node " << i;
  }
}

TEST(Cluster, SeedControlsDeterminism) {
  auto fingerprint = [](std::uint64_t seed) {
    ClusterConfig config;
    config.nodes = 3;
    config.seed = seed;
    Cluster c(config);
    c.network().set_fault_injector(std::make_unique<net::RandomFaults>(
        0.2, 0.0, c.simulator().rng().fork()));
    c.port(1).provide_receive_buffers(4, 4096);
    c.run_on_all([](Cluster& cl, net::NodeId me) -> sim::Task<void> {
      if (me == 1) co_return;
      for (int k = 0; k < 2; ++k) {
        co_await cl.port(me).send(1, 0, Payload(64), 0);
      }
    });
    c.run();
    return c.simulator().now().nanoseconds();
  };
  EXPECT_EQ(fingerprint(7), fingerprint(7));
  EXPECT_NE(fingerprint(7), fingerprint(8));
}

}  // namespace
}  // namespace nicmcast::gm

#include "gm/registered_memory.hpp"

#include <gtest/gtest.h>

namespace nicmcast::gm {
namespace {

TEST(RegisteredMemory, AllocateAndRegister) {
  MemoryRegistry registry;
  RegionRef r = registry.allocate(1024);
  EXPECT_EQ(r->size(), 1024u);
  EXPECT_FALSE(r->registered());
  registry.register_region(r);
  EXPECT_TRUE(r->registered());
  EXPECT_EQ(registry.bytes_registered(), 1024u);
}

TEST(RegisteredMemory, DeregisterReturnsBytes) {
  MemoryRegistry registry;
  RegionRef r = registry.allocate(100);
  registry.register_region(r);
  registry.deregister_region(r);
  EXPECT_FALSE(r->registered());
  EXPECT_EQ(registry.bytes_registered(), 0u);
}

TEST(RegisteredMemory, DoubleRegisterThrows) {
  MemoryRegistry registry;
  RegionRef r = registry.allocate(8);
  registry.register_region(r);
  EXPECT_THROW(registry.register_region(r), std::logic_error);
}

TEST(RegisteredMemory, DeregisterUnregisteredThrows) {
  MemoryRegistry registry;
  RegionRef r = registry.allocate(8);
  EXPECT_THROW(registry.deregister_region(r), std::logic_error);
  EXPECT_THROW(registry.deregister_region(nullptr), std::logic_error);
}

TEST(RegisteredMemory, PinRequiresRegistration) {
  MemoryRegistry registry;
  RegionRef r = registry.allocate(8);
  EXPECT_THROW(registry.pin(r), std::logic_error);
  registry.register_region(r);
  registry.pin(r);
  EXPECT_EQ(r->pin_count(), 1u);
}

TEST(RegisteredMemory, DeregisterWhilePinnedThrows) {
  // The paper's forwarding design: host memory is the retransmission
  // source, so it must stay registered until every child acknowledges.
  MemoryRegistry registry;
  RegionRef r = registry.allocate(8);
  registry.register_region(r);
  registry.pin(r);
  EXPECT_THROW(registry.deregister_region(r), std::logic_error);
  registry.unpin(r);
  registry.deregister_region(r);  // fine once the NIC is done
}

TEST(RegisteredMemory, UnpinUnderflowThrows) {
  MemoryRegistry registry;
  RegionRef r = registry.allocate(8);
  registry.register_region(r);
  EXPECT_THROW(registry.unpin(r), std::logic_error);
}

TEST(RegisteredMemory, MultiplePins) {
  MemoryRegistry registry;
  RegionRef r = registry.allocate(8);
  registry.register_region(r);
  registry.pin(r);
  registry.pin(r);
  EXPECT_EQ(r->pin_count(), 2u);
  registry.unpin(r);
  EXPECT_THROW(registry.deregister_region(r), std::logic_error);
  registry.unpin(r);
  registry.deregister_region(r);
}

TEST(RegisteredMemory, RegionDataIsWritable) {
  MemoryRegistry registry;
  RegionRef r = registry.allocate(4);
  r->data()[2] = std::byte{0xAB};
  EXPECT_EQ(r->data()[2], std::byte{0xAB});
}

}  // namespace
}  // namespace nicmcast::gm

// GM port API: blocking coroutine send/receive over the full stack.
#include "gm/port.hpp"

#include <gtest/gtest.h>

#include "gm/cluster.hpp"

namespace nicmcast::gm {
namespace {

Payload make_payload(std::size_t n, std::uint8_t salt = 0) {
  Payload p(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = std::byte{static_cast<std::uint8_t>(i * 131u + salt)};
  }
  return p;
}

ClusterConfig small_cluster(std::size_t n) {
  ClusterConfig config;
  config.nodes = n;
  return config;
}

TEST(GmPort, BlockingSendReceive) {
  Cluster c(small_cluster(2));
  c.port(1).provide_receive_buffer(4096);
  const Payload msg = make_payload(100);
  bool sent = false;
  bool received = false;
  c.simulator().spawn([](Cluster& cl, const Payload& m,
                         bool& done) -> sim::Task<void> {
    const SendStatus st = co_await cl.port(0).send(1, 0, m, 42);
    EXPECT_EQ(st, SendStatus::kOk);
    done = true;
  }(c, msg, sent));
  c.simulator().spawn([](Cluster& cl, const Payload& m,
                         bool& done) -> sim::Task<void> {
    RecvMessage r = co_await cl.port(1).receive();
    EXPECT_EQ(r.src, 0);
    EXPECT_EQ(r.tag, 42u);
    EXPECT_EQ(r.data, m);
    EXPECT_FALSE(r.is_multicast());
    done = true;
  }(c, msg, received));
  c.run();
  EXPECT_TRUE(sent);
  EXPECT_TRUE(received);
}

TEST(GmPort, PingPongLatency) {
  Cluster c(small_cluster(2));
  c.port(0).provide_receive_buffers(1, 4096);
  c.port(1).provide_receive_buffers(1, 4096);
  sim::TimePoint done_at{0};
  c.simulator().spawn([](Cluster& cl, sim::TimePoint& t) -> sim::Task<void> {
    co_await cl.port(0).send(1, 0, Payload(1), 0);
    co_await cl.port(0).receive();
    t = cl.simulator().now();
  }(c, done_at));
  c.simulator().spawn([](Cluster& cl) -> sim::Task<void> {
    co_await cl.port(1).receive();
    co_await cl.port(1).send(0, 0, Payload(1), 0);
  }(c));
  c.run();
  // Round trip of two one-way ~8us latencies, plus the responder's host
  // overhead; well under 25us.
  EXPECT_GT(done_at.microseconds(), 12.0);
  EXPECT_LT(done_at.microseconds(), 25.0);
}

TEST(GmPort, SendBlocksUntilAcked) {
  Cluster c(small_cluster(2));
  // No buffer at the receiver: the send cannot complete yet.
  bool send_done = false;
  c.simulator().spawn([](Cluster& cl, bool& done) -> sim::Task<void> {
    co_await cl.port(0).send(1, 0, make_payload(64), 0);
    done = true;
  }(c, send_done));
  c.simulator().run_for(sim::usec(500));
  EXPECT_FALSE(send_done);
  c.port(1).provide_receive_buffer(4096);
  c.run();
  EXPECT_TRUE(send_done);
}

TEST(GmPort, TokenExhaustionStallsInsteadOfThrowing) {
  ClusterConfig config = small_cluster(2);
  config.nic.send_tokens_per_port = 2;
  Cluster c(config);
  c.port(1).provide_receive_buffers(8, 4096);
  int completed = 0;
  // 8 concurrent senders over 2 tokens: all must finish, with stalls.
  for (int i = 0; i < 8; ++i) {
    c.simulator().spawn([](Cluster& cl, int id, int& n) -> sim::Task<void> {
      const SendStatus st = co_await cl.port(0).send(
          1, 0, make_payload(64, static_cast<std::uint8_t>(id)), id);
      EXPECT_EQ(st, SendStatus::kOk);
      ++n;
    }(c, i, completed));
  }
  c.run();
  EXPECT_EQ(completed, 8);
  EXPECT_GT(c.port(0).stats().token_stalls, 0u);
}

TEST(GmPort, FailedSendReportsStatus) {
  ClusterConfig config = small_cluster(2);
  config.nic.retransmit_timeout = sim::usec(100);
  config.nic.max_retries = 2;
  Cluster c(config);
  auto faults = std::make_unique<net::ScriptedFaults>();
  faults->add_rule({.type = net::PacketType::kData}, net::FaultAction::kDrop,
                   1000);
  c.network().set_fault_injector(std::move(faults));
  SendStatus status = SendStatus::kOk;
  c.simulator().spawn([](Cluster& cl, SendStatus& st) -> sim::Task<void> {
    st = co_await cl.port(0).send(1, 0, make_payload(64), 0);
  }(c, status));
  c.run();
  EXPECT_EQ(status, SendStatus::kFailed);
  EXPECT_EQ(c.port(0).stats().failed_sends, 1u);
}

TEST(GmPort, MultisendCompletesOnce) {
  Cluster c(small_cluster(4));
  for (std::size_t i = 1; i < 4; ++i) c.port(i).provide_receive_buffer(4096);
  int receipts = 0;
  for (std::size_t i = 1; i < 4; ++i) {
    c.simulator().spawn([](Cluster& cl, std::size_t node,
                           int& n) -> sim::Task<void> {
      RecvMessage r = co_await cl.port(node).receive();
      EXPECT_EQ(r.data, make_payload(256));
      ++n;
    }(c, i, receipts));
  }
  bool sent = false;
  c.simulator().spawn([](Cluster& cl, bool& done) -> sim::Task<void> {
    // Note: the destination list is built before the co_await expression;
    // GCC 12 miscompiles initializer-list temporaries inside co_await.
    std::vector<net::NodeId> dests{1, 2, 3};
    const SendStatus st =
        co_await cl.port(0).multisend(std::move(dests), 0, make_payload(256),
                                      0);
    EXPECT_EQ(st, SendStatus::kOk);
    done = true;
  }(c, sent));
  c.run();
  EXPECT_TRUE(sent);
  EXPECT_EQ(receipts, 3);
}

TEST(GmPort, McastSendOverTree) {
  Cluster c(small_cluster(4));
  const net::GroupId g = 5;
  c.port(0).set_group(g, nic::GroupEntry{0, nic::kNoNode, {1, 2}});
  c.port(1).set_group(g, nic::GroupEntry{0, 0, {3}});
  c.port(2).set_group(g, nic::GroupEntry{0, 0, {}});
  c.port(3).set_group(g, nic::GroupEntry{0, 1, {}});
  for (std::size_t i = 1; i < 4; ++i) c.port(i).provide_receive_buffer(4096);
  int receipts = 0;
  for (std::size_t i = 1; i < 4; ++i) {
    c.simulator().spawn([](Cluster& cl, std::size_t node,
                           int& n) -> sim::Task<void> {
      RecvMessage r = co_await cl.port(node).receive();
      EXPECT_TRUE(r.is_multicast());
      EXPECT_EQ(r.group, 5u);
      ++n;
    }(c, i, receipts));
  }
  c.simulator().spawn([](Cluster& cl) -> sim::Task<void> {
    EXPECT_EQ(co_await cl.port(0).mcast_send(5, make_payload(512), 1),
              SendStatus::kOk);
  }(c));
  c.run();
  EXPECT_EQ(receipts, 3);
}

TEST(GmPort, ReceiveOrderMatchesArrival) {
  Cluster c(small_cluster(3));
  c.port(2).provide_receive_buffers(4, 4096);
  std::vector<std::uint32_t> tags;
  c.simulator().spawn([](Cluster& cl,
                         std::vector<std::uint32_t>& t) -> sim::Task<void> {
    for (int i = 0; i < 4; ++i) {
      t.push_back((co_await cl.port(2).receive()).tag);
    }
  }(c, tags));
  // Node 0 sends two then node 1 sends two, staggered so arrival order is
  // deterministic.
  c.simulator().spawn([](Cluster& cl) -> sim::Task<void> {
    co_await cl.port(0).send(2, 0, Payload(8), 1);
    co_await cl.port(0).send(2, 0, Payload(8), 2);
  }(c));
  c.simulator().spawn([](Cluster& cl) -> sim::Task<void> {
    co_await cl.simulator().wait(sim::usec(200));
    co_await cl.port(1).send(2, 0, Payload(8), 3);
    co_await cl.port(1).send(2, 0, Payload(8), 4);
  }(c));
  c.run();
  EXPECT_EQ(tags, (std::vector<std::uint32_t>{1, 2, 3, 4}));
}

TEST(GmPort, RegisteredSendPinsUntilComplete) {
  Cluster c(small_cluster(2));
  c.port(1).provide_receive_buffer(4096);
  Port& sender = c.port(0);
  RegionRef region = sender.memory().allocate(128);
  sender.memory().register_region(region);
  region->data() = make_payload(128);

  bool done = false;
  c.simulator().spawn([](Port& p, RegionRef r, bool& flag) -> sim::Task<void> {
    EXPECT_EQ(co_await p.send_from(r, 1, 0, 0), SendStatus::kOk);
    flag = true;
  }(sender, region, done));

  // Mid-flight, deregistration must be refused.
  c.simulator().schedule_after(sim::usec(2), [&] {
    EXPECT_GT(region->pin_count(), 0u);
    EXPECT_THROW(sender.memory().deregister_region(region), std::logic_error);
  });
  c.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(region->pin_count(), 0u);
  sender.memory().deregister_region(region);
}

TEST(GmPort, SendFromUnregisteredMemoryThrows) {
  Cluster c(small_cluster(2));
  Port& sender = c.port(0);
  RegionRef region = sender.memory().allocate(64);
  bool threw = false;
  c.simulator().spawn([](Port& p, RegionRef r, bool& flag) -> sim::Task<void> {
    try {
      co_await p.send_from(r, 1, 0, 0);
    } catch (const std::logic_error&) {
      flag = true;
    }
  }(sender, region, threw));
  c.run();
  EXPECT_TRUE(threw);
}

TEST(GmPort, PendingMessagesCountsUnclaimed) {
  Cluster c(small_cluster(2));
  c.port(1).provide_receive_buffers(2, 4096);
  c.simulator().spawn([](Cluster& cl) -> sim::Task<void> {
    co_await cl.port(0).send(1, 0, Payload(8), 1);
    co_await cl.port(0).send(1, 0, Payload(8), 2);
  }(c));
  c.run();
  EXPECT_EQ(c.port(1).pending_messages(), 2u);
}

TEST(GmPort, LoopbackSendDeliversLocally) {
  Cluster c(small_cluster(2));
  bool done = false;
  c.simulator().spawn([](Cluster& cl, bool& flag) -> sim::Task<void> {
    EXPECT_EQ(co_await cl.port(0).send(0, 0, make_payload(256), 7),
              gm::SendStatus::kOk);
    gm::RecvMessage m = co_await cl.port(0).receive();
    EXPECT_EQ(m.src, 0);
    EXPECT_EQ(m.tag, 7u);
    EXPECT_EQ(m.data, make_payload(256));
    flag = true;
  }(c, done));
  c.run();
  EXPECT_TRUE(done);
  // The NIC and the wire were never involved.
  EXPECT_EQ(c.nic(0).stats().packets_sent, 0u);
}

TEST(GmPort, LoopbackIsCheaperThanWire) {
  Cluster c(small_cluster(2));
  c.port(1).provide_receive_buffer(4096);
  sim::Duration loop{0};
  sim::Duration wire{0};
  c.simulator().spawn([](Cluster& cl, sim::Duration& l,
                         sim::Duration& w) -> sim::Task<void> {
    sim::TimePoint t = cl.simulator().now();
    co_await cl.port(0).send(0, 0, Payload(512), 0);
    co_await cl.port(0).receive();
    l = cl.simulator().now() - t;
    t = cl.simulator().now();
    co_await cl.port(0).send(1, 0, Payload(512), 0);
    w = cl.simulator().now() - t;
  }(c, loop, wire));
  c.run();
  EXPECT_LT(loop.nanoseconds(), wire.nanoseconds());
}

TEST(GmPort, LoopbackToOtherPortRejected) {
  Cluster c(small_cluster(2));
  bool threw = false;
  c.simulator().spawn([](Cluster& cl, bool& flag) -> sim::Task<void> {
    try {
      co_await cl.port(0).send(0, 1, Payload(8), 0);
    } catch (const std::logic_error&) {
      flag = true;
    }
  }(c, threw));
  c.run();
  EXPECT_TRUE(threw);
}

TEST(GmPort, NicBarrierBlocksUntilRelease) {
  Cluster c(small_cluster(3));
  const net::GroupId g = 6;
  c.port(0).set_group(g, nic::GroupEntry{0, nic::kNoNode, {1, 2}});
  c.port(1).set_group(g, nic::GroupEntry{0, 0, {}});
  c.port(2).set_group(g, nic::GroupEntry{0, 0, {}});
  std::vector<double> exits(3, 0.0);
  for (net::NodeId n = 0; n < 3; ++n) {
    c.simulator().spawn([](Cluster& cl, net::NodeId me, net::GroupId grp,
                           double& out) -> sim::Task<void> {
      co_await cl.simulator().wait(sim::usec(100.0 * me));
      co_await cl.port(me).nic_barrier(grp);
      out = cl.simulator().now().microseconds();
    }(c, n, g, exits[n]));
  }
  c.run();
  for (double t : exits) EXPECT_GE(t, 200.0);  // slowest entry gates all
}

TEST(GmPort, NicReduceReturnsSumAtRoot) {
  Cluster c(small_cluster(2));
  const net::GroupId g = 6;
  c.port(0).set_group(g, nic::GroupEntry{0, nic::kNoNode, {1}});
  c.port(1).set_group(g, nic::GroupEntry{0, 0, {}});
  auto lane = [](std::int64_t v) {
    Payload p(8);
    for (int i = 0; i < 8; ++i) {
      p[i] = std::byte{static_cast<std::uint8_t>(
          static_cast<std::uint64_t>(v) >> (8 * i))};
    }
    return p;
  };
  Payload root_result;
  Payload member_result;
  c.simulator().spawn([](Cluster& cl, net::GroupId grp, Payload in,
                         Payload& out) -> sim::Task<void> {
    out = co_await cl.port(0).nic_reduce(grp, std::move(in));
  }(c, g, lane(30), root_result));
  c.simulator().spawn([](Cluster& cl, net::GroupId grp, Payload in,
                         Payload& out) -> sim::Task<void> {
    out = co_await cl.port(1).nic_reduce(grp, std::move(in));
  }(c, g, lane(12), member_result));
  c.run();
  EXPECT_EQ(root_result, lane(42));
  EXPECT_TRUE(member_result.empty());
}

TEST(GmPort, InvalidPortThrows) {
  Cluster c(small_cluster(2));
  EXPECT_THROW(static_cast<void>(c.port(0, 99)), std::out_of_range);
}

}  // namespace
}  // namespace nicmcast::gm

#include "sim/timing_wheel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace nicmcast::sim {
namespace {

constexpr std::int64_t kFineNs = std::int64_t{1} << TimingWheel::kFineShift;
constexpr std::int64_t kFineSpanNs =
    kFineNs * static_cast<std::int64_t>(TimingWheel::kFineSlots);
constexpr std::int64_t kCoarseSpanNs =
    kFineSpanNs * static_cast<std::int64_t>(TimingWheel::kCoarseSlots);

/// Drains the wheel and returns the popped (when, seq) order.
std::vector<WheelItem> drain(TimingWheel& wheel) {
  std::vector<WheelItem> out;
  while (wheel.size() > 0) {
    out.push_back(wheel.top());
    wheel.pop_top();
  }
  return out;
}

void expect_sorted(const std::vector<WheelItem>& items) {
  for (std::size_t i = 1; i < items.size(); ++i) {
    const WheelItem& a = items[i - 1];
    const WheelItem& b = items[i];
    const bool ordered =
        a.when < b.when || (a.when == b.when && a.seq < b.seq);
    ASSERT_TRUE(ordered) << "items " << i - 1 << " and " << i
                         << " popped out of (when, seq) order";
  }
}

TEST(TimingWheel, SameTickFifoAcrossSlotWrap) {
  // Schedule several same-timestamp batches at fine indexes more than one
  // full wheel revolution apart: the masked slot is identical, so the FIFO
  // tie-break must come from (when, seq), not bucket residency.
  TimingWheel wheel;
  std::uint64_t seq = 0;
  std::vector<TimePoint> stamps;
  for (int wrap = 0; wrap < 3; ++wrap) {
    stamps.push_back(TimePoint{kFineNs * 5 + wrap * kFineSpanNs});
  }
  // Interleave insertion across the batches so arrival order differs from
  // pop order for the batch as a whole but matches within a timestamp.
  for (int i = 0; i < 4; ++i) {
    for (const TimePoint t : stamps) {
      wheel.push(WheelItem{t, seq++, 0});
    }
  }
  const std::vector<WheelItem> popped = drain(wheel);
  ASSERT_EQ(popped.size(), 12u);
  expect_sorted(popped);
  // Within each timestamp, seqs ascend in insertion order: 0,3,6,9 became
  // the first batch, etc.
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 4; ++i) {
      const WheelItem& item = popped[batch * 4 + i];
      EXPECT_EQ(item.when, stamps[batch]);
      EXPECT_EQ(item.seq, static_cast<std::uint64_t>(batch + i * 3));
    }
  }
}

TEST(TimingWheel, FarFutureBeyondCoarseHorizonUsesOverflow) {
  TimingWheel wheel;
  wheel.push(WheelItem{TimePoint{kCoarseSpanNs * 3 + 17}, 1, 0});
  EXPECT_EQ(wheel.overflow_scheduled(), 1u);
  EXPECT_EQ(wheel.overflow_promotions(), 0u);
  wheel.push(WheelItem{TimePoint{10}, 0, 0});
  EXPECT_EQ(wheel.overflow_scheduled(), 1u);  // near item is not overflow

  EXPECT_EQ(wheel.top().seq, 0u);
  wheel.pop_top();
  // Popping the far item forces the cursor jump + promotion.
  EXPECT_EQ(wheel.top().seq, 1u);
  EXPECT_EQ(wheel.overflow_promotions(), 1u);
  wheel.pop_top();
  EXPECT_EQ(wheel.size(), 0u);
}

TEST(TimingWheel, CascadeAtCoarseRollover) {
  // Two items in the same coarse slot but different fine slots must come
  // back in time order after the cascade redistributes them.
  TimingWheel wheel;
  const std::int64_t base = kFineSpanNs * 7;  // coarse slot 7
  wheel.push(WheelItem{TimePoint{base + kFineNs * 100}, 2, 0});
  wheel.push(WheelItem{TimePoint{base + kFineNs * 3}, 1, 0});
  wheel.push(WheelItem{TimePoint{kFineNs}, 0, 0});  // keeps cursor near 0

  EXPECT_EQ(wheel.top().seq, 0u);
  wheel.pop_top();
  EXPECT_EQ(wheel.cascades(), 0u);
  EXPECT_EQ(wheel.top().seq, 1u);
  EXPECT_EQ(wheel.cascades(), 1u);  // coarse slot 7 redistributed
  wheel.pop_top();
  EXPECT_EQ(wheel.top().seq, 2u);
  EXPECT_EQ(wheel.cascades(), 1u);  // same coarse bucket, no second cascade
  wheel.pop_top();
}

TEST(TimingWheel, ScheduleBehindCursorStaysOrdered) {
  // The raw wheel permits scheduling at-or-behind the cursor (the queue's
  // tests do); such items must still compete by (when, seq).
  TimingWheel wheel;
  wheel.push(WheelItem{TimePoint{kFineSpanNs * 2}, 0, 0});
  EXPECT_EQ(wheel.top().seq, 0u);  // cursor advanced to the item
  wheel.push(WheelItem{TimePoint{5}, 1, 0});
  EXPECT_EQ(wheel.top().seq, 1u);  // the past item pops first
  wheel.pop_top();
  EXPECT_EQ(wheel.top().seq, 0u);
  wheel.pop_top();
}

TEST(TimingWheel, RandomizedMatchesSortedReference) {
  // Mixed horizons (fine, coarse, overflow) with interleaved pops: the pop
  // sequence must equal the (when, seq)-sorted reference.
  std::mt19937_64 rng(12345);
  TimingWheel wheel;
  std::vector<WheelItem> reference;
  std::vector<WheelItem> popped;
  std::uint64_t seq = 0;
  std::int64_t low_bound = 0;  // pops only move forward in time

  for (int round = 0; round < 2000; ++round) {
    const int burst = static_cast<int>(rng() % 4);
    for (int i = 0; i < burst; ++i) {
      std::int64_t when = 0;
      switch (rng() % 4) {
        case 0: when = low_bound + static_cast<std::int64_t>(rng() % 512); break;
        case 1: when = low_bound + static_cast<std::int64_t>(rng() % kFineSpanNs); break;
        case 2: when = low_bound + static_cast<std::int64_t>(rng() % kCoarseSpanNs); break;
        default: when = low_bound + kCoarseSpanNs + static_cast<std::int64_t>(rng() % (4 * kCoarseSpanNs)); break;
      }
      const WheelItem item{TimePoint{when}, seq++, 0};
      wheel.push(item);
      reference.push_back(item);
    }
    if (wheel.size() > 0 && rng() % 2 == 0) {
      const WheelItem item = wheel.top();
      wheel.pop_top();
      low_bound = item.when.nanoseconds();
      popped.push_back(item);
    }
  }
  while (wheel.size() > 0) {
    popped.push_back(wheel.top());
    wheel.pop_top();
  }

  ASSERT_EQ(popped.size(), reference.size());
  expect_sorted(popped);
  std::sort(reference.begin(), reference.end(),
            [](const WheelItem& a, const WheelItem& b) {
              if (a.when != b.when) return a.when < b.when;
              return a.seq < b.seq;
            });
  for (std::size_t i = 0; i < popped.size(); ++i) {
    ASSERT_EQ(popped[i].when, reference[i].when) << "index " << i;
    ASSERT_EQ(popped[i].seq, reference[i].seq) << "index " << i;
  }
}

// ---- Cancellation through the owning EventQueue ---------------------------
//
// The wheel itself never cancels; the queue skips stale items on pop.  The
// interesting split is where the stale item lives: a fine/coarse bucket vs
// the overflow heap.

TEST(TimingWheelCancel, CancelInWheelVsCancelInOverflow) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(TimePoint{100}, [&] { order.push_back(0); });
  const EventId in_wheel =
      q.schedule(TimePoint{kFineNs * 10}, [&] { order.push_back(-1); });
  const EventId in_overflow = q.schedule(TimePoint{kCoarseSpanNs * 2 + 50},
                                         [&] { order.push_back(-2); });
  q.schedule(TimePoint{kCoarseSpanNs * 2 + 50}, [&] { order.push_back(1); });

  EXPECT_TRUE(q.cancel(in_wheel));
  EXPECT_TRUE(q.cancel(in_overflow));
  EXPECT_FALSE(q.cancel(in_wheel));  // already cancelled
  EXPECT_EQ(q.size(), 2u);

  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_EQ(q.stats().cancelled, 2u);
}

// ---- Same-tick batch extraction -------------------------------------------
//
// pop_top_or_run / pop_run feed the simulator's batched dispatch; the
// contract is that a batch drain produces exactly the (when, seq) sequence
// N pop_top() calls would have, including across fine-slot wraps and with
// cancellations landing mid-batch.

TEST(TimingWheelBatch, SingleItemAvoidsRunExtraction) {
  TimingWheel wheel;
  wheel.push(WheelItem{TimePoint{kFineNs * 3}, 7, 0});
  WheelItem single{};
  std::vector<WheelItem> run;
  EXPECT_EQ(wheel.pop_top_or_run(single, run), 1u);
  EXPECT_TRUE(run.empty());
  EXPECT_EQ(single.seq, 7u);
  EXPECT_EQ(wheel.size(), 0u);
}

TEST(TimingWheelBatch, RunExtractionAcrossSlotWrap) {
  // Two timestamps a full fine-wheel revolution apart share a masked slot.
  // The earlier tick's run must come out complete and seq-ascending without
  // dragging the later tick's items along.
  TimingWheel wheel;
  const TimePoint near{kFineNs * 5};
  const TimePoint far{kFineNs * 5 + kFineSpanNs};
  std::uint64_t seq = 0;
  for (int i = 0; i < 9; ++i) {  // interleave: near, far, near, far, ...
    wheel.push(WheelItem{(i % 2 == 0) ? near : far, seq++, 0});
  }
  WheelItem single{};
  std::vector<WheelItem> run;
  const std::size_t n = wheel.pop_top_or_run(single, run);
  ASSERT_EQ(n, 5u);  // the five `near` items: seqs 0,2,4,6,8
  ASSERT_EQ(run.size(), 5u);
  for (std::size_t i = 0; i < run.size(); ++i) {
    EXPECT_EQ(run[i].when, near);
    EXPECT_EQ(run[i].seq, i * 2);
  }
  EXPECT_EQ(wheel.size(), 4u);
  run.clear();
  EXPECT_EQ(wheel.pop_top_or_run(single, run), 4u);
  for (std::size_t i = 0; i < run.size(); ++i) {
    EXPECT_EQ(run[i].when, far);
    EXPECT_EQ(run[i].seq, i * 2 + 1);
  }
}

TEST(TimingWheelBatch, LongRunMatchesPopTopOrder) {
  // Past the 4-item peel threshold pop_run switches to partition +
  // re-heapify; the order must still equal a pop_top drain.
  std::mt19937_64 rng(99);
  TimingWheel batched;
  TimingWheel unbatched;
  std::uint64_t seq = 0;
  for (int round = 0; round < 64; ++round) {
    const TimePoint when{static_cast<std::int64_t>(rng() % 8) * kFineNs};
    const int burst = 1 + static_cast<int>(rng() % 12);
    for (int i = 0; i < burst; ++i) {
      const WheelItem item{when, seq++, 0};
      batched.push(item);
      unbatched.push(item);
    }
  }
  std::vector<WheelItem> got;
  WheelItem single{};
  while (batched.size() > 0) {
    std::vector<WheelItem> run;
    if (batched.pop_top_or_run(single, run) == 1 && run.empty()) {
      got.push_back(single);
    } else {
      got.insert(got.end(), run.begin(), run.end());
    }
  }
  const std::vector<WheelItem> want = drain(unbatched);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].when, want[i].when) << "index " << i;
    ASSERT_EQ(got[i].seq, want[i].seq) << "index " << i;
  }
}

TEST(TimingWheelBatch, CancelInsideBatchIsHonoured) {
  // Three same-tick events; the first cancels the third while the batch is
  // already extracted.  take() must refuse the cancelled member, and the
  // executed count / order hash must match what the unbatched path yields
  // for the identical schedule-then-cancel history.
  auto run_history = [](bool batched) {
    EventQueue q;
    std::vector<int> order;
    EventId third{};
    q.schedule(TimePoint{100}, [&] {
      order.push_back(0);
      q.cancel(third);
    });
    q.schedule(TimePoint{100}, [&] { order.push_back(1); });
    third = q.schedule(TimePoint{100}, [&] { order.push_back(2); });
    q.schedule(TimePoint{200}, [&] { order.push_back(3); });

    if (batched) {
      while (!q.empty()) {
        std::vector<WheelItem> batch;
        TimePoint when{};
        EventQueue::Action action;
        const std::size_t n = q.pop_tick(batch, when, action);
        if (batch.empty()) {
          EXPECT_EQ(n, 1u);
          action();
        } else {
          for (const WheelItem& item : batch) {
            EventQueue::Action a;
            if (q.take(item, a)) a();
          }
        }
      }
    } else {
      while (!q.empty()) q.pop().second();
    }
    EXPECT_EQ(order, (std::vector<int>{0, 1, 3}));
    EXPECT_EQ(q.stats().cancelled, 1u);
    EXPECT_EQ(q.stats().executed, 3u);
    return q.order_hash();
  };
  const std::uint64_t batched_hash = run_history(true);
  const std::uint64_t unbatched_hash = run_history(false);
  EXPECT_EQ(batched_hash, unbatched_hash);
}

TEST(TimingWheelBatch, ScheduleIntoOwnTickJoinsTheBatchEitherWay) {
  // An event scheduling a same-timestamp successor while its tick executes:
  // the successor runs in this tick in both modes, with equal hashes.
  auto run_history = [](bool batched) {
    Simulator sim;
    sim.set_batch_dispatch(batched);
    std::vector<int> order;
    sim.schedule_at(TimePoint{50}, [&] {
      order.push_back(0);
      sim.schedule_at(TimePoint{50}, [&] { order.push_back(2); });
    });
    sim.schedule_at(TimePoint{50}, [&] { order.push_back(1); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    return sim.event_order_hash();
  };
  EXPECT_EQ(run_history(true), run_history(false));
}

TEST(TimingWheelCancel, StatsSurfaceWheelBehaviour) {
  EventQueue q;
  for (int i = 0; i < 8; ++i) {
    q.schedule(TimePoint{kCoarseSpanNs * 3 + i}, [] {});
  }
  q.schedule(TimePoint{10}, [] {});
  EXPECT_EQ(q.stats().overflow_scheduled, 8u);
  EXPECT_EQ(q.stats().wheel_occupancy_peak, 9u);
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(q.stats().overflow_promotions, 8u);
  EXPECT_EQ(q.stats().executed, 9u);
}

}  // namespace
}  // namespace nicmcast::sim

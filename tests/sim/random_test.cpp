#include "sim/random.hpp"

#include <gtest/gtest.h>

#include <array>
#include <set>

namespace nicmcast::sim {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng r(7);
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(3);
  for (int i = 0; i < 10'000; ++i) {
    const double u = r.uniform(-5.0, 5.0);
    EXPECT_GE(u, -5.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 10'000; ++i) {
    const std::int64_t v = r.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng r(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.uniform_int(9, 9), 9);
}

TEST(Rng, UniformIntRoughlyUniform) {
  Rng r(13);
  std::array<int, 10> counts{};
  const int n = 100'000;
  for (int i = 0; i < n; ++i) counts[r.uniform_int(0, 9)]++;
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng r(17);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng r(19);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    if (r.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, ForkedStreamsAreIndependentAndDeterministic) {
  Rng parent1(99);
  Rng parent2(99);
  Rng child1 = parent1.fork();
  Rng child2 = parent2.fork();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(child1.next(), child2.next());
  // The fork consumed one draw from the parent; both parents stay in sync.
  for (int i = 0; i < 100; ++i) EXPECT_EQ(parent1.next(), parent2.next());
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ULL);
  Rng r(1);
  EXPECT_NE(r(), r());
}

}  // namespace
}  // namespace nicmcast::sim

#include "sim/spsc_channel.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace nicmcast::sim {
namespace {

TEST(SpscChannel, RoundsCapacityUpToPowerOfTwo) {
  EXPECT_EQ(SpscChannel<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscChannel<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscChannel<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscChannel<int>(1024).capacity(), 1024u);
  EXPECT_EQ(SpscChannel<int>(1025).capacity(), 2048u);
}

TEST(SpscChannel, FifoWithinCapacity) {
  SpscChannel<int> ch(8);
  // Single-threaded test: one scope legitimately holds both roles.
  RoleGuard produce(ch.producer_role());
  RoleGuard consume(ch.consumer_role());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ch.try_push(int{i}));
  }
  EXPECT_FALSE(ch.try_push(99));  // full
  int out = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ch.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ch.try_pop(out));
  EXPECT_TRUE(ch.empty());
}

TEST(SpscChannel, WrapsAroundManyTimes) {
  SpscChannel<std::uint64_t> ch(4);
  RoleGuard produce(ch.producer_role());
  RoleGuard consume(ch.consumer_role());
  std::uint64_t expect = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ch.try_push(std::uint64_t{i}));
    if (i % 3 == 2) {  // drain in bursts so head chases tail across wraps
      std::uint64_t out = 0;
      while (ch.try_pop(out)) {
        EXPECT_EQ(out, expect);
        ++expect;
      }
    }
  }
  std::uint64_t out = 0;
  while (ch.try_pop(out)) {
    EXPECT_EQ(out, expect);
    ++expect;
  }
  EXPECT_EQ(expect, 1000u);
}

TEST(SpscChannel, MoveOnlyPayload) {
  SpscChannel<std::unique_ptr<int>> ch(4);
  RoleGuard produce(ch.producer_role());
  RoleGuard consume(ch.consumer_role());
  ASSERT_TRUE(ch.try_push(std::make_unique<int>(42)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(ch.try_pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 42);
}

TEST(SpscChannel, CapacitySpillDrainRefillCycles) {
  // The engine's spill protocol in miniature: fill the ring to capacity,
  // spill the overflow to a side vector, drain ring-then-spill, refill.
  // Several cycles prove the full/empty edge stays consistent after the
  // head and tail have both wrapped the index space repeatedly.
  SpscChannel<std::uint64_t> ch(8);
  RoleGuard produce(ch.producer_role());
  RoleGuard consume(ch.consumer_role());
  ASSERT_EQ(ch.capacity(), 8u);
  std::uint64_t next = 0;
  std::uint64_t expect = 0;
  for (int cycle = 0; cycle < 5; ++cycle) {
    std::vector<std::uint64_t> spill;
    // 8 into the ring, 5 more spill.
    for (int i = 0; i < 13; ++i) {
      if (!ch.try_push(std::uint64_t{next})) spill.push_back(next);
      ++next;
    }
    EXPECT_EQ(spill.size(), 5u) << "cycle " << cycle;
    EXPECT_FALSE(ch.try_push(std::uint64_t{next}));  // still full
    // Drain: ring first (FIFO), then the spill in push order — the same
    // merge discipline ShardedEngine uses.
    std::uint64_t out = 0;
    while (ch.try_pop(out)) {
      EXPECT_EQ(out, expect);
      ++expect;
    }
    for (const std::uint64_t v : spill) {
      EXPECT_EQ(v, expect);
      ++expect;
    }
    EXPECT_TRUE(ch.empty());
  }
  EXPECT_EQ(expect, 65u);
}

TEST(SpscChannel, PeekDoesNotConsume) {
  SpscChannel<int> ch(4);
  RoleGuard produce(ch.producer_role());
  RoleGuard consume(ch.consumer_role());
  EXPECT_EQ(ch.try_peek(), nullptr);  // empty
  ASSERT_TRUE(ch.try_push(7));
  ASSERT_TRUE(ch.try_push(8));
  const int* head = ch.try_peek();
  ASSERT_NE(head, nullptr);
  EXPECT_EQ(*head, 7);
  EXPECT_EQ(ch.try_peek(), head);  // repeated peeks see the same slot
  int out = 0;
  ASSERT_TRUE(ch.try_pop(out));
  EXPECT_EQ(out, 7);
  head = ch.try_peek();
  ASSERT_NE(head, nullptr);
  EXPECT_EQ(*head, 8);
  ASSERT_TRUE(ch.try_pop(out));
  EXPECT_EQ(ch.try_peek(), nullptr);
}

TEST(SpscChannel, PeekTracksHeadAcrossWraparound) {
  SpscChannel<std::uint64_t> ch(4);
  RoleGuard produce(ch.producer_role());
  RoleGuard consume(ch.consumer_role());
  std::uint64_t out = 0;
  for (std::uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(ch.try_push(std::uint64_t{i}));
    const std::uint64_t* head = ch.try_peek();
    ASSERT_NE(head, nullptr);
    EXPECT_EQ(*head, i);  // ring holds exactly one element
    ASSERT_TRUE(ch.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_EQ(ch.try_peek(), nullptr);
}

TEST(SpscChannel, ConcurrentProducerConsumerPreservesOrder) {
  // One producer, one consumer, ring far smaller than the message count:
  // exercises the full/empty edges under real contention.  TSan in CI
  // validates the acquire/release protocol.
  constexpr std::uint64_t kMessages = 100000;
  SpscChannel<std::uint64_t> ch(64);
  std::vector<std::uint64_t> received;
  received.reserve(kMessages);

  std::thread consumer([&] {
    // The consumer thread owns the pop side for the channel's lifetime.
    RoleGuard consume(ch.consumer_role());
    std::uint64_t out = 0;
    while (received.size() < kMessages) {
      if (ch.try_pop(out)) {
        received.push_back(out);
      } else {
        std::this_thread::yield();
      }
    }
  });
  {
    // The main thread owns the push side.
    RoleGuard produce(ch.producer_role());
    for (std::uint64_t i = 0; i < kMessages; ++i) {
      while (!ch.try_push(std::uint64_t{i})) std::this_thread::yield();
    }
  }
  consumer.join();

  ASSERT_EQ(received.size(), kMessages);
  for (std::uint64_t i = 0; i < kMessages; ++i) {
    ASSERT_EQ(received[i], i);
  }
}

}  // namespace
}  // namespace nicmcast::sim

#include "sim/stats.hpp"

#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

namespace nicmcast::sim {
namespace {

TEST(OnlineStats, MeanOfKnownValues) {
  OnlineStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(OnlineStats, SampleVariance) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_NEAR(s.variance(), 4.571428, 1e-5);  // n-1 denominator
  EXPECT_NEAR(s.stddev(), 2.13809, 1e-4);
}

TEST(OnlineStats, SingleSampleHasZeroVariance) {
  OnlineStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, EmptyDefaults) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(OnlineStats, MergeMatchesSingleStream) {
  const std::vector<double> all{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  OnlineStats whole;
  for (double x : all) whole.add(x);

  OnlineStats a, b;
  for (std::size_t i = 0; i < all.size(); ++i) {
    (i < 3 ? a : b).add(all[i]);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_DOUBLE_EQ(a.mean(), whole.mean());
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(OnlineStats, MergeWithEmptyIsIdentityBothWays) {
  OnlineStats s;
  for (double x : {1.0, 3.0}) s.add(x);
  OnlineStats empty;
  s.merge(empty);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);

  OnlineStats target;
  target.merge(s);
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.mean(), 2.0);
  EXPECT_DOUBLE_EQ(target.min(), 1.0);
}

TEST(Series, PercentileInterpolates) {
  Series s;
  for (double x : {10.0, 20.0, 30.0, 40.0, 50.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 30.0);
  EXPECT_DOUBLE_EQ(s.percentile(25), 20.0);
  EXPECT_DOUBLE_EQ(s.percentile(12.5), 15.0);  // between samples
}

TEST(Series, MedianOfEvenCount) {
  Series s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.median(), 2.5);
}

TEST(Series, PercentileOfEmptyThrows) {
  Series s;
  EXPECT_THROW(static_cast<void>(s.percentile(50)), std::logic_error);
}

TEST(Series, PercentileCacheInvalidatedByAdd) {
  Series s;
  for (double x : {30.0, 10.0, 20.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.median(), 20.0);  // primes the sorted cache
  EXPECT_DOUBLE_EQ(s.percentile(100), 30.0);
  s.add(5.0);  // must invalidate the cache
  EXPECT_DOUBLE_EQ(s.median(), 15.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 5.0);
  s.add(40.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 40.0);
  // Raw sample order is preserved despite the sorted view.
  EXPECT_DOUBLE_EQ(s.samples()[0], 30.0);
  EXPECT_DOUBLE_EQ(s.samples()[4], 40.0);
}

TEST(Series, UnsortedInputHandled) {
  Series s;
  for (double x : {5.0, 1.0, 3.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bucket 0
  h.add(3.0);    // bucket 1
  h.add(9.99);   // bucket 4
  h.add(-5.0);   // clamps to bucket 0
  h.add(100.0);  // clamps to bucket 4
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 0u);
  EXPECT_EQ(h.bucket(4), 2u);
}

TEST(Histogram, BucketLowEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bucket_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_low(4), 8.0);
}

TEST(Histogram, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(0.0, 10.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(10.0, 0.0, 5), std::invalid_argument);
  EXPECT_THROW(Histogram(5.0, 5.0, 5), std::invalid_argument);
}

}  // namespace
}  // namespace nicmcast::sim

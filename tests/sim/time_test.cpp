#include "sim/time.hpp"

#include <gtest/gtest.h>

namespace nicmcast::sim {
namespace {

TEST(Duration, FactoryHelpersConvert) {
  EXPECT_EQ(nsec(1).nanoseconds(), 1);
  EXPECT_EQ(usec(1).nanoseconds(), 1000);
  EXPECT_EQ(usec(2.5).nanoseconds(), 2500);
  EXPECT_EQ(msec(1).nanoseconds(), 1'000'000);
  EXPECT_EQ(sec(1).nanoseconds(), 1'000'000'000);
}

TEST(Duration, Arithmetic) {
  EXPECT_EQ(usec(3) + usec(2), usec(5));
  EXPECT_EQ(usec(3) - usec(2), usec(1));
  EXPECT_EQ(usec(3) * 4, usec(12));
  EXPECT_EQ(4 * usec(3), usec(12));
  EXPECT_EQ(usec(12) / 4, usec(3));
  Duration d = usec(1);
  d += usec(2);
  d -= usec(1);
  EXPECT_EQ(d, usec(2));
}

TEST(Duration, RatioIsDouble) {
  EXPECT_DOUBLE_EQ(usec(10) / usec(4), 2.5);
}

TEST(Duration, ComparisonAndNegative) {
  EXPECT_LT(usec(1), usec(2));
  EXPECT_GT(usec(2), usec(1));
  EXPECT_LE(usec(2), usec(2));
  EXPECT_LT(usec(1) - usec(2), Duration{0});
}

TEST(Duration, UnitAccessors) {
  EXPECT_DOUBLE_EQ(usec(1500).milliseconds(), 1.5);
  EXPECT_DOUBLE_EQ(msec(2500).seconds(), 2.5);
  EXPECT_DOUBLE_EQ(nsec(500).microseconds(), 0.5);
}

TEST(TimePoint, ArithmeticWithDuration) {
  TimePoint t{1000};
  EXPECT_EQ((t + usec(1)).nanoseconds(), 2000);
  EXPECT_EQ((usec(1) + t).nanoseconds(), 2000);
  EXPECT_EQ((t - nsec(500)).nanoseconds(), 500);
  EXPECT_EQ(TimePoint{3000} - t, usec(2));
}

TEST(TimePoint, Ordering) {
  EXPECT_LT(TimePoint{1}, TimePoint{2});
  EXPECT_EQ(TimePoint{5}, TimePoint{5});
}

TEST(TransferTime, MatchesBandwidthMath) {
  // 250 MB/s wire: 4096 bytes should take ~16.384 us (rounded up 1 ns).
  const Duration t = transfer_time(4096, 250.0);
  EXPECT_NEAR(t.microseconds(), 16.384, 0.01);
}

TEST(TransferTime, RoundsUpSoTransfersNeverOverlap) {
  EXPECT_GT(transfer_time(1, 1e9).nanoseconds(), 0);
}

TEST(TransferTime, ZeroBytesStillPositive) {
  EXPECT_EQ(transfer_time(0, 250.0).nanoseconds(), 1);
}

}  // namespace
}  // namespace nicmcast::sim

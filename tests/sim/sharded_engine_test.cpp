#include "sim/sharded_engine.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "sim/time.hpp"

namespace nicmcast::sim {
namespace {

constexpr Duration kLookahead = usec(1);

void hop(ShardedEngine& engine, std::size_t at, int remaining);

constexpr TimePoint t_us(double us) { return TimePoint{0} + usec(us); }

TEST(ShardedEngine, RejectsDegenerateConfigs) {
  EXPECT_THROW(ShardedEngine(0, kLookahead), std::invalid_argument);
  EXPECT_THROW(ShardedEngine(2, Duration{0}), std::invalid_argument);
  EXPECT_THROW(ShardedEngine(2, Duration{-1}), std::invalid_argument);
}

TEST(ShardedEngine, SingleShardRunsLikeAPlainSimulator) {
  ShardedEngine engine(1, kLookahead);
  std::vector<int> order;
  engine.shard(0).schedule_at(t_us(5), [&] { order.push_back(2); });
  engine.shard(0).schedule_at(t_us(1), [&] { order.push_back(1); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));

  // Identical schedule on a plain Simulator: same executed-order hash.
  Simulator seq;
  seq.schedule_at(t_us(5), [] {});
  seq.schedule_at(t_us(1), [] {});
  seq.run();
  EXPECT_EQ(engine.shard(0).event_order_hash(), seq.event_order_hash());
}

TEST(ShardedEngine, CrossShardDeliveryLandsAtRequestedTime) {
  ShardedEngine engine(2, kLookahead);
  TimePoint delivered{-1};
  engine.shard(0).schedule_at(t_us(2), [&] {
    engine.post(0, 1, engine.shard(0).now() + kLookahead, [&] {
      delivered = engine.shard(1).now();
    });
  });
  engine.run();
  EXPECT_EQ(delivered, TimePoint{0} + usec(3));
  EXPECT_EQ(engine.shard_stats(0).cross_shard_msgs_sent, 1u);
  EXPECT_EQ(engine.shard_stats(1).cross_shard_msgs_received, 1u);
  EXPECT_GE(engine.lbts_rounds(), 2u);
}

TEST(ShardedEngine, PostInsideLookaheadWindowThrows) {
  ShardedEngine engine(2, kLookahead);
  engine.shard(0).schedule_at(t_us(2), [&] {
    // 0.5us ahead < 1us lookahead: the conservative contract is violated.
    engine.post(0, 1, engine.shard(0).now() + usec(0.5), [] {});
  });
  EXPECT_THROW(engine.run(), std::logic_error);
}

TEST(ShardedEngine, SameShardPostIgnoresLookahead) {
  ShardedEngine engine(2, kLookahead);
  bool ran = false;
  engine.shard(0).schedule_at(t_us(2), [&] {
    engine.post(0, 0, engine.shard(0).now(), [&] { ran = true; });
  });
  engine.run();
  EXPECT_TRUE(ran);
}

// The lookahead edge: an event scheduled EXACTLY at the safe horizon of a
// round must not run in that round — it waits for the next LBTS advance.
TEST(ShardedEngine, EventExactlyAtHorizonWaitsForNextRound) {
  ShardedEngine engine(2, kLookahead);
  // Shard 0's only event is at t=10us, so round 1 has LBTS=10us and
  // horizon=11us.  Shard 1 holds events at exactly 11us (the horizon — must
  // stall) and at 12us.
  std::vector<int> order;
  engine.shard(0).schedule_at(t_us(10), [&] { order.push_back(0); });
  engine.shard(1).schedule_at(t_us(11), [&] { order.push_back(1); });
  engine.shard(1).schedule_at(t_us(12), [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  // Round 1: shard 1 ran nothing (11us >= horizon 11us) — a horizon stall.
  EXPECT_GE(engine.shard_stats(1).horizon_stalls, 1u);
  EXPECT_GE(engine.lbts_rounds(), 2u);
}

// Cross-shard in-flight cancel: shard 0 arms a local retransmit timer and
// sends a packet to shard 1; shard 1 acks back; the ack cancels the timer
// before it fires.  This is the ARQ shape the sharded fabric relies on.
TEST(ShardedEngine, CrossShardAckCancelsInFlightTimer) {
  ShardedEngine engine(2, kLookahead);
  bool timer_fired = false;
  bool acked = false;
  EventId timer{};
  engine.shard(0).schedule_at(t_us(1), [&] {
    Simulator& s0 = engine.shard(0);
    timer = s0.schedule_at(s0.now() + usec(100), [&] { timer_fired = true; });
    engine.post(0, 1, s0.now() + kLookahead, [&] {
      Simulator& s1 = engine.shard(1);
      engine.post(1, 0, s1.now() + kLookahead, [&] {
        acked = true;
        EXPECT_TRUE(engine.shard(0).cancel(timer));
      });
    });
  });
  engine.run();
  EXPECT_TRUE(acked);
  EXPECT_FALSE(timer_fired);
  EXPECT_EQ(engine.shard_stats(0).cross_shard_msgs_sent, 1u);
  EXPECT_EQ(engine.shard_stats(1).cross_shard_msgs_sent, 1u);
}

// A ping-pong storm across 4 shards, run twice: per-shard hash vectors and
// counters must be bit-identical — thread scheduling may not leak into the
// executed order.
TEST(ShardedEngine, RepeatableAcrossRunsWithFourShards) {
  auto run_once = [](std::vector<std::uint64_t>& hashes,
                     std::uint64_t& merged, std::uint64_t& rounds) {
    ShardedEngine engine(4, kLookahead);
    // Every shard seeds a chain that hops to the next shard 50 times.
    for (std::size_t s = 0; s < 4; ++s) {
      engine.shard(s).schedule_at(t_us(static_cast<double>(s + 1)),
                                  [&engine, s] { hop(engine, s, 50); });
    }
    engine.run();
    hashes = engine.shard_order_hashes();
    merged = engine.merged_order_hash();
    rounds = engine.lbts_rounds();
  };

  std::vector<std::uint64_t> h1, h2;
  std::uint64_t m1 = 0, m2 = 0, r1 = 0, r2 = 0;
  run_once(h1, m1, r1);
  run_once(h2, m2, r2);
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(m1, m2);
  EXPECT_EQ(r1, r2);
  ASSERT_EQ(h1.size(), 4u);
}

TEST(ShardedEngine, ShardFailurePropagatesWithoutDeadlock) {
  ShardedEngine engine(4, kLookahead);
  engine.shard(2).schedule_at(t_us(5), [] {
    throw std::runtime_error("shard 2 exploded");
  });
  // Keep the other shards busy so they are inside execute when it throws.
  for (std::size_t s = 0; s < 4; ++s) {
    if (s == 2) continue;
    engine.shard(s).schedule_at(t_us(1), [] {});
    engine.shard(s).schedule_at(t_us(1000), [] {});
  }
  EXPECT_THROW(engine.run(), std::runtime_error);
}

// Channel-spill path: more in-flight messages in one round than the ring
// holds.  The spill vector must preserve the deterministic merge.
TEST(ShardedEngine, RingOverflowSpillsDeterministically) {
  constexpr int kBurst = 3000;  // ring capacity is 1024
  auto run_once = [](std::uint64_t& spills) {
    ShardedEngine engine(2, kLookahead);
    engine.shard(0).schedule_at(t_us(1), [&engine] {
      Simulator& s0 = engine.shard(0);
      for (int i = 0; i < kBurst; ++i) {
        engine.post(0, 1, s0.now() + kLookahead + nsec(i), [] {});
      }
    });
    engine.run();
    spills = engine.shard_stats(0).channel_spills;
    EXPECT_EQ(engine.shard_stats(1).cross_shard_msgs_received,
              static_cast<std::uint64_t>(kBurst));
    return engine.shard_order_hashes();
  };
  std::uint64_t spills1 = 0, spills2 = 0;
  const auto h1 = run_once(spills1);
  const auto h2 = run_once(spills2);
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(spills1, spills2);
  EXPECT_GE(spills1, static_cast<std::uint64_t>(kBurst) - 1024);
}

// Both shards overflow their rings toward each other across several
// waves, so a producer is pushing into its spill vector while the peer —
// the consumer of the opposite direction — drains its own.  Barrier and
// spill share one locking discipline (spill_mu, NM_GUARDED_BY); under the
// TSan job this test is the regression net for that discipline, and the
// hash comparison keeps the merge deterministic besides.
TEST(ShardedEngine, BidirectionalSpillWavesStayDeterministic) {
  constexpr int kBurst = 3000;  // ring capacity is 1024
  constexpr int kWaves = 3;
  auto run_once = [] {
    ShardedEngine engine(2, kLookahead);
    for (std::size_t from = 0; from < 2; ++from) {
      const std::size_t to = 1 - from;
      for (int wave = 0; wave < kWaves; ++wave) {
        engine.shard(from).schedule_at(
            t_us(1 + wave), [&engine, from, to] {
              Simulator& s = engine.shard(from);
              for (int i = 0; i < kBurst; ++i) {
                engine.post(from, to, s.now() + kLookahead + nsec(i),
                            [] {});
              }
            });
      }
    }
    engine.run();
    for (std::size_t r = 0; r < 2; ++r) {
      EXPECT_EQ(engine.shard_stats(r).cross_shard_msgs_received,
                static_cast<std::uint64_t>(kBurst) * kWaves);
      EXPECT_GT(engine.shard_stats(r).channel_spills, 0u);
    }
    return engine.shard_order_hashes();
  };
  EXPECT_EQ(run_once(), run_once());
}

void hop(ShardedEngine& engine, std::size_t at, int remaining) {
  if (remaining == 0) return;
  const std::size_t next = (at + 1) % engine.shard_count();
  engine.post(at, next, engine.shard(at).now() + kLookahead,
              [&engine, next, remaining] { hop(engine, next, remaining - 1); });
}

// ---- Batched per-shard horizons (opt-in) ----

// Safety under batching: every cross-shard message must still land in the
// receiver's future (Simulator::schedule_at throws on a time in the past),
// and the protocol outcome must match the unbatched schedule exactly.
// The staggered start times + reply traffic exercise the case that makes
// the naive "min over others + lookahead" horizon unsound: an almost-idle
// shard reacting to a post and sending back within the round.
TEST(ShardedEngine, BatchedHorizonsPreserveOutcomeWithFewerRounds) {
  auto run_once = [](bool batched, std::uint64_t& rounds,
                     std::uint64_t& replies) {
    ShardedEngine engine(4, kLookahead);
    engine.enable_batched_horizons(batched);
    std::uint64_t* count = &replies;
    // Shard 0 drives: a dense local event train (so its own horizon
    // matters) plus pings to every other shard; each target replies, and
    // the reply bumps the shared count on shard 0.
    for (int i = 0; i < 200; ++i) {
      engine.shard(0).schedule_at(t_us(1.0 + 0.25 * i), [] {});
    }
    for (std::size_t target = 1; target < 4; ++target) {
      const double at = 2.0 + 17.0 * static_cast<double>(target);
      engine.shard(0).schedule_at(t_us(at), [&engine, target, count] {
        Simulator& s0 = engine.shard(0);
        engine.post(0, target, s0.now() + kLookahead,
                    [&engine, target, count] {
                      Simulator& st = engine.shard(target);
                      engine.post(target, 0, st.now() + kLookahead,
                                  [count] { ++*count; });
                    });
      });
    }
    engine.run();
    rounds = engine.lbts_rounds();
  };

  std::uint64_t unbatched_rounds = 0, unbatched_replies = 0;
  std::uint64_t batched_rounds = 0, batched_replies = 0;
  run_once(false, unbatched_rounds, unbatched_replies);
  run_once(true, batched_rounds, batched_replies);
  EXPECT_EQ(batched_replies, unbatched_replies);
  EXPECT_EQ(batched_replies, 3u);
  // Batched horizons dominate the classic one, so rounds can only drop.
  EXPECT_LE(batched_rounds, unbatched_rounds);
  EXPECT_LT(batched_rounds, unbatched_rounds);  // and here they must
}

TEST(ShardedEngine, BatchedHorizonsAreRepeatable) {
  auto run_once = [](std::vector<std::uint64_t>& hashes,
                     std::uint64_t& rounds) {
    ShardedEngine engine(4, kLookahead);
    engine.enable_batched_horizons(true);
    for (std::size_t s = 0; s < 4; ++s) {
      engine.shard(s).schedule_at(t_us(static_cast<double>(s + 1)),
                                  [&engine, s] { hop(engine, s, 50); });
    }
    engine.run();
    hashes = engine.shard_order_hashes();
    rounds = engine.lbts_rounds();
  };
  std::vector<std::uint64_t> h1, h2;
  std::uint64_t r1 = 0, r2 = 0;
  run_once(h1, r1);
  run_once(h2, r2);
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(r1, r2);
}

// The shape where batching pays most: one shard holds a long local event
// train while every other shard is idle.  Unbatched, the horizon advances
// one lookahead per round (one event when the train is spaced exactly at
// the lookahead); batched, only the min_all + 2*lookahead chain bound
// applies and each round covers two events — half the barrier rounds.
TEST(ShardedEngine, BatchedHorizonsHalveRoundsOnALocalEventTrain) {
  constexpr int kTrain = 40;
  auto rounds_for = [](bool batched) {
    ShardedEngine engine(2, kLookahead);
    engine.enable_batched_horizons(batched);
    for (int i = 0; i < kTrain; ++i) {
      engine.shard(0).schedule_at(t_us(1.0 + static_cast<double>(i)), [] {});
    }
    engine.run();
    return engine.lbts_rounds();
  };
  const std::uint64_t unbatched = rounds_for(false);
  const std::uint64_t batched = rounds_for(true);
  EXPECT_EQ(unbatched, static_cast<std::uint64_t>(kTrain));
  EXPECT_LE(batched, unbatched / 2 + 1);
}

// ---- Asynchronous null-message synchronization (opt-in) ----

// The async contract in one test: the same workload under the barrier and
// under async must produce bit-identical per-shard hash vectors, merged
// hash, AND the same lbts_rounds — async changes how shards wait, never
// what they execute or how many rounds the round-replay takes.
TEST(ShardedEngine, AsyncMatchesBarrierHashesOnPingPong) {
  auto run_once = [](bool async, std::vector<std::uint64_t>& hashes,
                     std::uint64_t& merged, std::uint64_t& rounds) {
    ShardedEngine engine(4, kLookahead);
    engine.enable_async_sync(async);
    for (std::size_t s = 0; s < 4; ++s) {
      engine.shard(s).schedule_at(t_us(static_cast<double>(s + 1)),
                                  [&engine, s] { hop(engine, s, 50); });
    }
    engine.run();
    hashes = engine.shard_order_hashes();
    merged = engine.merged_order_hash();
    rounds = engine.lbts_rounds();
  };
  std::vector<std::uint64_t> hb, ha;
  std::uint64_t mb = 0, ma = 0, rb = 0, ra = 0;
  run_once(false, hb, mb, rb);
  run_once(true, ha, ma, ra);
  EXPECT_EQ(ha, hb);
  EXPECT_EQ(ma, mb);
  EXPECT_EQ(ra, rb);
  ASSERT_EQ(ha.size(), 4u);
}

TEST(ShardedEngine, AsyncIsRepeatableAcrossRuns) {
  auto run_once = [](std::vector<std::uint64_t>& hashes,
                     std::uint64_t& rounds) {
    ShardedEngine engine(4, kLookahead);
    engine.enable_async_sync(true);
    for (std::size_t s = 0; s < 4; ++s) {
      engine.shard(s).schedule_at(t_us(static_cast<double>(s + 1)),
                                  [&engine, s] { hop(engine, s, 50); });
    }
    engine.run();
    hashes = engine.shard_order_hashes();
    rounds = engine.lbts_rounds();
  };
  std::vector<std::uint64_t> h1, h2;
  std::uint64_t r1 = 0, r2 = 0;
  run_once(h1, r1);
  run_once(h2, r2);
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(r1, r2);
}

// Ring overflow under async: the spill vector is shared under a mutex in
// this mode (no barrier orders the handoff) — the merge must still be
// deterministic and identical to the barrier schedule.
TEST(ShardedEngine, AsyncRingOverflowMatchesBarrier) {
  constexpr int kBurst = 3000;  // ring capacity is 1024
  auto run_once = [](bool async) {
    ShardedEngine engine(2, kLookahead);
    engine.enable_async_sync(async);
    engine.shard(0).schedule_at(t_us(1), [&engine] {
      Simulator& s0 = engine.shard(0);
      for (int i = 0; i < kBurst; ++i) {
        engine.post(0, 1, s0.now() + kLookahead + nsec(i), [] {});
      }
    });
    engine.run();
    EXPECT_EQ(engine.shard_stats(1).cross_shard_msgs_received,
              static_cast<std::uint64_t>(kBurst));
    return engine.shard_order_hashes();
  };
  EXPECT_EQ(run_once(true), run_once(false));
}

TEST(ShardedEngine, AsyncShardFailurePropagatesWithoutDeadlock) {
  ShardedEngine engine(4, kLookahead);
  engine.enable_async_sync(true);
  engine.shard(2).schedule_at(t_us(5), [] {
    throw std::runtime_error("shard 2 exploded");
  });
  // The healthy shards hold far-future events, so without abort polling in
  // the async spin loops they would wait forever on shard 2's round.
  for (std::size_t s = 0; s < 4; ++s) {
    if (s == 2) continue;
    engine.shard(s).schedule_at(t_us(1), [] {});
    engine.shard(s).schedule_at(t_us(1000), [] {});
  }
  EXPECT_THROW(engine.run(), std::runtime_error);
}

// The two opt-in modes compose: async + batched horizons must replay the
// barrier + batched horizons schedule (that lineage's hashes and rounds).
TEST(ShardedEngine, AsyncComposesWithBatchedHorizons) {
  auto run_once = [](bool async, std::vector<std::uint64_t>& hashes,
                     std::uint64_t& rounds) {
    ShardedEngine engine(4, kLookahead);
    engine.enable_batched_horizons(true);
    engine.enable_async_sync(async);
    for (std::size_t s = 0; s < 4; ++s) {
      engine.shard(s).schedule_at(t_us(static_cast<double>(s + 1)),
                                  [&engine, s] { hop(engine, s, 50); });
    }
    engine.run();
    hashes = engine.shard_order_hashes();
    rounds = engine.lbts_rounds();
  };
  std::vector<std::uint64_t> hb, ha;
  std::uint64_t rb = 0, ra = 0;
  run_once(false, hb, rb);
  run_once(true, ha, ra);
  EXPECT_EQ(ha, hb);
  EXPECT_EQ(ra, rb);
}

// One shard has no peers: no channels, no nulls, no waits — the async
// worker must degenerate to a plain event loop.
TEST(ShardedEngine, AsyncSingleShardSendsNoNullMessages) {
  ShardedEngine engine(1, kLookahead);
  engine.enable_async_sync(true);
  std::vector<int> order;
  engine.shard(0).schedule_at(t_us(5), [&] { order.push_back(2); });
  engine.shard(0).schedule_at(t_us(1), [&] { order.push_back(1); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(engine.shard_stats(0).null_msgs_sent, 0u);
  EXPECT_EQ(engine.shard_stats(0).null_msgs_demanded, 0u);
  EXPECT_EQ(engine.shard_stats(0).blocked_waits, 0u);
}

// Under the barrier, the async counters stay zero — they are the async
// mode's observability, not a shared code path.
TEST(ShardedEngine, BarrierModeKeepsAsyncCountersAtZero) {
  ShardedEngine engine(4, kLookahead);
  for (std::size_t s = 0; s < 4; ++s) {
    engine.shard(s).schedule_at(t_us(static_cast<double>(s + 1)),
                                [&engine, s] { hop(engine, s, 20); });
  }
  engine.run();
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(engine.shard_stats(s).null_msgs_sent, 0u);
    EXPECT_EQ(engine.shard_stats(s).null_msgs_demanded, 0u);
    EXPECT_EQ(engine.shard_stats(s).eot_advances, 0u);
    EXPECT_EQ(engine.shard_stats(s).blocked_waits, 0u);
  }
}

// ---- Per-channel lookahead ----

TEST(ShardedEngine, ChannelLookaheadValidation) {
  ShardedEngine engine(2, kLookahead);
  EXPECT_EQ(engine.channel_lookahead(0, 1), kLookahead);  // default: global
  // Must be positive, and never below the engine-wide floor (safe horizons
  // derive from the global minimum).
  EXPECT_THROW(engine.set_channel_lookahead(0, 1, Duration{0}),
               std::invalid_argument);
  EXPECT_THROW(engine.set_channel_lookahead(0, 1, Duration{-5}),
               std::invalid_argument);
  EXPECT_THROW(engine.set_channel_lookahead(0, 1, usec(0.5)),
               std::invalid_argument);
  // No self-channel, no out-of-range shards.
  EXPECT_THROW(engine.set_channel_lookahead(0, 0, kLookahead),
               std::out_of_range);
  EXPECT_THROW(engine.set_channel_lookahead(0, 2, kLookahead),
               std::out_of_range);
  EXPECT_THROW(engine.set_channel_lookahead(2, 1, kLookahead),
               std::out_of_range);
  engine.set_channel_lookahead(0, 1, usec(2));
  EXPECT_EQ(engine.channel_lookahead(0, 1), usec(2));
  EXPECT_EQ(engine.channel_lookahead(1, 0), kLookahead);  // untouched
}

// The post() guard enforces the CHANNEL'S lookahead: a 2us promise on the
// 0->1 channel rejects a post only 1us ahead even though the engine-wide
// floor would allow it.
TEST(ShardedEngine, PostGuardUsesChannelLookahead) {
  ShardedEngine engine(2, kLookahead);
  engine.set_channel_lookahead(0, 1, usec(2));
  engine.shard(0).schedule_at(t_us(2), [&] {
    engine.post(0, 1, engine.shard(0).now() + kLookahead, [] {});
  });
  EXPECT_THROW(engine.run(), std::logic_error);

  ShardedEngine ok(2, kLookahead);
  ok.set_channel_lookahead(0, 1, usec(2));
  TimePoint delivered{-1};
  ok.shard(0).schedule_at(t_us(2), [&] {
    ok.post(0, 1, ok.shard(0).now() + usec(2),
            [&] { delivered = ok.shard(1).now(); });
  });
  ok.run();
  EXPECT_EQ(delivered, TimePoint{0} + usec(4));
}

}  // namespace
}  // namespace nicmcast::sim

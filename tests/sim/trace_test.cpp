#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace nicmcast::sim {
namespace {

TEST(Tracer, DisabledByDefault) {
  Tracer t;
  EXPECT_FALSE(t.enabled("nic"));
  t.emit(TimePoint{0}, "nic", "node0.nic", "hello");
  EXPECT_TRUE(t.records().empty());
}

TEST(Tracer, EnabledCategoryRetainsRecords) {
  Tracer t;
  t.enable("nic");
  t.emit(TimePoint{1000}, "nic", "node0.nic", "tx packet 1");
  t.emit(TimePoint{2000}, "net", "link0", "ignored");
  ASSERT_EQ(t.records().size(), 1u);
  EXPECT_EQ(t.records()[0].category, "nic");
  EXPECT_EQ(t.records()[0].actor, "node0.nic");
  EXPECT_EQ(t.records()[0].when, TimePoint{1000});
}

TEST(Tracer, WildcardEnablesEverything) {
  Tracer t;
  t.enable("*");
  t.emit(TimePoint{0}, "anything", "a", "m");
  t.emit(TimePoint{0}, "else", "b", "m");
  EXPECT_EQ(t.records().size(), 2u);
}

TEST(Tracer, DisableRemovesCategory) {
  Tracer t;
  t.enable("nic");
  t.disable("nic");
  t.emit(TimePoint{0}, "nic", "a", "m");
  EXPECT_TRUE(t.records().empty());
}

TEST(Tracer, SinkReceivesFormattedLines) {
  Tracer t;
  std::ostringstream os;
  t.enable("gm");
  t.set_sink(&os);
  t.emit(TimePoint{1500}, "gm", "node2.host", "send posted");
  EXPECT_EQ(os.str(), "[1.5us] gm node2.host: send posted\n");
}

TEST(Tracer, RetainFalseStreamsOnly) {
  Tracer t;
  std::ostringstream os;
  t.enable("*");
  t.set_sink(&os);
  t.set_retain(false);
  t.emit(TimePoint{0}, "x", "a", "m");
  EXPECT_TRUE(t.records().empty());
  EXPECT_FALSE(os.str().empty());
}

TEST(Tracer, CountMatching) {
  Tracer t;
  t.enable("nic");
  t.emit(TimePoint{0}, "nic", "a", "retransmit seq=5");
  t.emit(TimePoint{0}, "nic", "a", "ack seq=5");
  t.emit(TimePoint{0}, "nic", "b", "retransmit seq=6");
  EXPECT_EQ(t.count_matching("retransmit"), 2u);
  EXPECT_EQ(t.count_matching("nack"), 0u);
}

TEST(Tracer, ClearEmptiesRecords) {
  Tracer t;
  t.enable("*");
  t.emit(TimePoint{0}, "x", "a", "m");
  t.clear();
  EXPECT_TRUE(t.records().empty());
}

}  // namespace
}  // namespace nicmcast::sim

#include "sim/flat_map.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

namespace nicmcast::sim {
namespace {

TEST(FlatMap, StartsEmpty) {
  FlatMap<std::uint64_t, int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.find(42), map.end());
  EXPECT_FALSE(map.contains(0));
  EXPECT_EQ(map.begin(), map.end());
}

TEST(FlatMap, BasicInsertFindErase) {
  FlatMap<std::uint32_t, std::string> map;
  auto [it, inserted] = map.emplace(7, "seven");
  EXPECT_TRUE(inserted);
  EXPECT_EQ(it->first, 7u);
  EXPECT_EQ(it->second, "seven");

  auto [dup, inserted2] = map.emplace(7, "again");
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(dup->second, "seven");  // emplace does not overwrite

  map[9] = "nine";
  EXPECT_EQ(map.at(9), "nine");
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(map.count(7), 1u);
  EXPECT_EQ(map.erase(7), 1u);
  EXPECT_EQ(map.erase(7), 0u);
  EXPECT_EQ(map.find(7), map.end());
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMap, KeyZeroIsAnOrdinaryKey) {
  // NodeId 0 / GroupId 0 are valid NIC identifiers, so the empty-bucket
  // encoding must not steal key 0.
  FlatMap<std::uint32_t, int> map;
  map[0] = 10;
  EXPECT_TRUE(map.contains(0));
  EXPECT_EQ(map.at(0), 10);
  EXPECT_EQ(map.erase(0), 1u);
  EXPECT_FALSE(map.contains(0));
}

TEST(FlatMap, ReferencesStableAcrossGrowth) {
  // NIC callbacks hold GroupState& across scheduling calls that can insert
  // into the same map; the chunked pool must never move an entry.
  FlatMap<std::uint64_t, std::uint64_t> map;
  map[1] = 100;
  std::uint64_t* p = &map.at(1);
  for (std::uint64_t k = 2; k < 2000; ++k) map[k] = k;
  EXPECT_GT(map.growths(), 0u);
  EXPECT_EQ(p, &map.at(1));  // same slab slot after many rehashes
  EXPECT_EQ(*p, 100u);
}

TEST(FlatMap, RandomizedParityWithUnorderedMap) {
  // Mixed insert/overwrite/erase/lookup churn; after every batch the
  // observable contents must equal std::unordered_map's.
  std::mt19937_64 rng(2026);
  FlatMap<std::uint64_t, std::uint64_t> map;
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  for (int round = 0; round < 20000; ++round) {
    const std::uint64_t key = rng() % 512;  // collisions on purpose
    switch (rng() % 4) {
      case 0:
      case 1: {  // insert-or-assign path via operator[]
        const std::uint64_t value = rng();
        map[key] = value;
        ref[key] = value;
        break;
      }
      case 2:
        ASSERT_EQ(map.erase(key), ref.erase(key));
        break;
      default: {
        const auto it = map.find(key);
        const auto rit = ref.find(key);
        ASSERT_EQ(it == map.end(), rit == ref.end()) << "key " << key;
        if (it != map.end()) {
          ASSERT_EQ(it->first, rit->first);
          ASSERT_EQ(it->second, rit->second);
        }
        break;
      }
    }
  }
  ASSERT_EQ(map.size(), ref.size());
  std::size_t seen = 0;
  for (const auto& [key, value] : map) {
    const auto rit = ref.find(key);
    ASSERT_NE(rit, ref.end()) << "phantom key " << key;
    ASSERT_EQ(value, rit->second);
    ++seen;
  }
  ASSERT_EQ(seen, ref.size());
}

TEST(FlatMap, PoolSlotsReusedAfterChurn) {
  // A fill/drain/refill cycle of the same cardinality must reuse freed
  // pool slots instead of growing: entry addresses from the first
  // generation come back, and no further rehash happens.
  FlatMap<std::uint64_t, int> map;
  map.reserve(256);
  const std::uint64_t growths_after_reserve = map.growths();
  std::vector<const int*> first_gen;
  for (std::uint64_t k = 0; k < 256; ++k) map[k] = 1;
  for (std::uint64_t k = 0; k < 256; ++k) first_gen.push_back(&map.at(k));
  std::sort(first_gen.begin(), first_gen.end());
  for (std::uint64_t k = 0; k < 256; ++k) map.erase(k);
  EXPECT_TRUE(map.empty());
  for (std::uint64_t k = 1000; k < 1256; ++k) map[k] = 2;

  std::vector<const int*> second_gen;
  for (std::uint64_t k = 1000; k < 1256; ++k) second_gen.push_back(&map.at(k));
  std::sort(second_gen.begin(), second_gen.end());
  EXPECT_EQ(first_gen, second_gen);  // byte-identical slab reuse
  EXPECT_EQ(map.growths(), growths_after_reserve);
}

TEST(FlatMap, EraseDuringProbeChainBackwardShift) {
  // Dense small-range keys force long probe chains; erasing from the middle
  // must keep every other key reachable (backward-shift correctness).
  FlatMap<std::uint32_t, std::uint32_t> map;
  for (std::uint32_t k = 0; k < 64; ++k) map[k] = k * 3;
  for (std::uint32_t k = 0; k < 64; k += 2) EXPECT_EQ(map.erase(k), 1u);
  for (std::uint32_t k = 0; k < 64; ++k) {
    if (k % 2 == 0) {
      EXPECT_FALSE(map.contains(k)) << k;
    } else {
      ASSERT_TRUE(map.contains(k)) << k;
      EXPECT_EQ(map.at(k), k * 3);
    }
  }
}

TEST(FlatMap, IterationOrderIsInsertionOrderNotHashOrder) {
  // The determinism contract bans hash-order iteration; FlatMap iterates in
  // insertion order, which no hash seed can perturb.  Erase + reinsert
  // moves a key to the back, exactly like a fresh insertion.
  FlatMap<std::uint64_t, int> map;
  const std::vector<std::uint64_t> keys = {900, 3, 512, 77, 0, 41};
  for (std::uint64_t k : keys) map[k] = 1;
  std::vector<std::uint64_t> order;
  for (const auto& [key, value] : map) order.push_back(key);
  EXPECT_EQ(order, keys);

  map.erase(3);
  map[3] = 2;
  order.clear();
  for (const auto& [key, value] : map) order.push_back(key);
  EXPECT_EQ(order, (std::vector<std::uint64_t>{900, 512, 77, 0, 41, 3}));
}

TEST(FlatMap, IterationOrderSurvivesRehash) {
  // Growth reinserts in insertion order; interleave erases so the order is
  // not simply 0..n, then grow past several rehashes and re-check.
  FlatMap<std::uint64_t, int> map;
  std::vector<std::uint64_t> expected;
  for (std::uint64_t k = 0; k < 500; ++k) {
    map[k] = 1;
    expected.push_back(k);
  }
  for (std::uint64_t k = 0; k < 500; k += 7) {
    map.erase(k);
    expected.erase(std::find(expected.begin(), expected.end(), k));
  }
  for (std::uint64_t k = 1000; k < 1300; ++k) {
    map[k] = 1;
    expected.push_back(k);
  }
  std::vector<std::uint64_t> order;
  for (const auto& [key, value] : map) order.push_back(key);
  EXPECT_EQ(order, expected);
}

TEST(FlatMap, EraseByIteratorReturnsNext) {
  FlatMap<std::uint32_t, int> map;
  for (std::uint32_t k = 10; k < 15; ++k) map[k] = static_cast<int>(k);
  auto it = map.find(12);
  ASSERT_NE(it, map.end());
  it = map.erase(it);
  ASSERT_NE(it, map.end());
  EXPECT_EQ(it->first, 13u);  // insertion-order successor
  EXPECT_EQ(map.size(), 4u);
}

TEST(FlatMap, ReserveDoesNotCountAsGrowth) {
  FlatMap<std::uint64_t, int> map;
  std::uint64_t external = 0;
  map.bind_growth_counter(&external);
  map.reserve(1000);
  EXPECT_EQ(map.growths(), 0u);
  EXPECT_EQ(external, 0u);
  for (std::uint64_t k = 0; k < 1000; ++k) map[k] = 1;
  EXPECT_EQ(map.growths(), 0u);  // reserve covered the whole load
  EXPECT_EQ(external, 0u);
  for (std::uint64_t k = 1000; k < 4000; ++k) map[k] = 1;
  EXPECT_GT(map.growths(), 0u);
  EXPECT_EQ(external, map.growths());
}

TEST(FlatMap, ClearThenReuse) {
  FlatMap<std::uint64_t, std::string> map;
  for (std::uint64_t k = 0; k < 100; ++k) map[k] = "x";
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.begin(), map.end());
  map[5] = "y";
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.at(5), "y");
}

}  // namespace
}  // namespace nicmcast::sim

#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace nicmcast::sim {
namespace {

TEST(Simulator, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), TimePoint{0});
}

TEST(Simulator, CallbacksRunAtScheduledTime) {
  Simulator sim;
  std::vector<std::int64_t> times;
  sim.schedule_after(usec(5), [&] { times.push_back(sim.now().nanoseconds()); });
  sim.schedule_after(usec(2), [&] { times.push_back(sim.now().nanoseconds()); });
  sim.run();
  EXPECT_EQ(times, (std::vector<std::int64_t>{2000, 5000}));
  EXPECT_EQ(sim.now(), TimePoint{5000});
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator sim;
  sim.schedule_after(usec(10), [&] {
    EXPECT_THROW(sim.schedule_at(TimePoint{0}, [] {}), std::logic_error);
  });
  sim.run();
  EXPECT_THROW(sim.schedule_after(usec(-1), [] {}), std::logic_error);
}

TEST(Simulator, CancelledEventDoesNotRun) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule_after(usec(1), [&] { ran = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule_after(usec(i), [&] { ++count; });
  }
  const bool more = sim.run_until(TimePoint{usec(5).nanoseconds()});
  EXPECT_EQ(count, 5);
  EXPECT_TRUE(more);
  EXPECT_EQ(sim.now(), TimePoint{5000});
  sim.run();
  EXPECT_EQ(count, 10);
}

TEST(Simulator, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator sim;
  EXPECT_FALSE(sim.run_until(TimePoint{12345}));
  EXPECT_EQ(sim.now(), TimePoint{12345});
}

Task<void> waiter_program(Simulator& sim, std::vector<double>& log) {
  log.push_back(sim.now().microseconds());
  co_await sim.wait(usec(10));
  log.push_back(sim.now().microseconds());
  co_await sim.wait(usec(5));
  log.push_back(sim.now().microseconds());
}

TEST(Simulator, CoroutineDelaysAdvanceClock) {
  Simulator sim;
  std::vector<double> log;
  ProcessRef p = sim.spawn(waiter_program(sim, log));
  sim.run();
  EXPECT_TRUE(p->done());
  EXPECT_EQ(log, (std::vector<double>{0.0, 10.0, 15.0}));
}

TEST(Simulator, ProcessesInterleaveDeterministically) {
  Simulator sim;
  std::vector<int> order;
  auto prog = [&](int id, Duration step) -> Task<void> {
    for (int i = 0; i < 3; ++i) {
      co_await sim.wait(step);
      order.push_back(id);
    }
  };
  sim.spawn(prog(1, usec(10)));
  sim.spawn(prog(2, usec(15)));
  sim.run();
  // t=10:1, 15:2, 20:1, 30: both fire and 2's event was scheduled first
  // (at t=15 vs t=20), 45:2.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2, 1, 2}));
}

TEST(Simulator, JoinWaitsForProcessCompletion) {
  Simulator sim;
  std::vector<int> order;
  auto worker = [&]() -> Task<void> {
    co_await sim.wait(usec(50));
    order.push_back(1);
  };
  ProcessRef w = sim.spawn(worker());
  auto joiner = [&]() -> Task<void> {
    co_await Simulator::join(w);
    order.push_back(2);
  };
  sim.spawn(joiner());
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, JoinAfterCompletionReturnsImmediately) {
  Simulator sim;
  ProcessRef w = sim.spawn([](Simulator& s) -> Task<void> {
    co_await s.wait(usec(1));
  }(sim));
  sim.run();
  ASSERT_TRUE(w->done());
  bool joined = false;
  sim.spawn([](ProcessRef proc, bool& flag) -> Task<void> {
    co_await Simulator::join(proc);
    flag = true;
  }(w, joined));
  sim.run();
  EXPECT_TRUE(joined);
}

TEST(Simulator, ProcessExceptionSurfacesFromRun) {
  Simulator sim;
  sim.spawn([](Simulator& s) -> Task<void> {
    co_await s.wait(usec(1));
    throw std::runtime_error("process failed");
  }(sim));
  EXPECT_THROW(sim.run(), std::runtime_error);
}

TEST(Simulator, AllProcessesDone) {
  Simulator sim;
  sim.spawn([](Simulator& s) -> Task<void> { co_await s.wait(usec(1)); }(sim));
  sim.spawn([](Simulator& s) -> Task<void> { co_await s.wait(usec(2)); }(sim));
  EXPECT_FALSE(sim.all_processes_done());
  sim.run();
  EXPECT_TRUE(sim.all_processes_done());
}

TEST(Simulator, SeededRngIsReproducible) {
  Simulator a(1234);
  Simulator b(1234);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.rng().next(), b.rng().next());
  }
}

TEST(Simulator, ChannelBetweenProcesses) {
  Simulator sim;
  Channel<int> ch;
  std::vector<int> received;
  sim.spawn([](Simulator& s, Channel<int>& c) -> Task<void> {
    for (int i = 0; i < 3; ++i) {
      co_await s.wait(usec(10));
      c.push(i);
    }
  }(sim, ch));
  sim.spawn([](Channel<int>& c, std::vector<int>& out) -> Task<void> {
    for (int i = 0; i < 3; ++i) out.push_back(co_await c.pop());
  }(ch, received));
  sim.run();
  EXPECT_EQ(received, (std::vector<int>{0, 1, 2}));
}

TEST(Simulator, ZeroDelayEventsPreserveFifoOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_after(Duration{0}, [&] { order.push_back(1); });
  sim.schedule_after(Duration{0}, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace nicmcast::sim

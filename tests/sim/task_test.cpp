#include "sim/task.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

namespace nicmcast::sim {
namespace {

Task<int> make_forty_two() { co_return 42; }

Task<int> add(int a, int b) { co_return a + b; }

Task<int> nested_sum() {
  const int x = co_await add(1, 2);
  const int y = co_await add(x, 10);
  co_return y;
}

Task<void> record(std::vector<int>& log, int value) {
  log.push_back(value);
  co_return;
}

Task<std::string> echo(std::string s) { co_return s; }

Task<int> throws_logic_error() {
  throw std::logic_error("boom");
  co_return 0;  // unreachable
}

Task<int> catches_child_error() {
  try {
    co_await throws_logic_error();
  } catch (const std::logic_error&) {
    co_return -1;
  }
  co_return 0;
}

Task<void> driver(int& out) { out = co_await nested_sum(); }

TEST(Task, StartsSuspended) {
  std::vector<int> log;
  Task<void> t = record(log, 7);
  EXPECT_TRUE(t.valid());
  EXPECT_FALSE(t.done());
  EXPECT_TRUE(log.empty());  // body has not run yet
}

TEST(Task, ResumeRunsBodyToCompletion) {
  std::vector<int> log;
  Task<void> t = record(log, 7);
  t.resume();
  EXPECT_TRUE(t.done());
  EXPECT_EQ(log, (std::vector<int>{7}));
}

TEST(Task, AwaitPropagatesValue) {
  int out = 0;
  Task<void> d = driver(out);
  d.resume();
  EXPECT_TRUE(d.done());
  EXPECT_EQ(out, 13);
}

TEST(Task, ValueTaskReturnsValue) {
  int out = 0;
  auto run = [&]() -> Task<void> { out = co_await make_forty_two(); };
  Task<void> t = run();
  t.resume();
  EXPECT_EQ(out, 42);
}

TEST(Task, MoveOnlySemantics) {
  Task<int> a = make_forty_two();
  Task<int> b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): testing move
  EXPECT_TRUE(b.valid());
  Task<int> c;
  c = std::move(b);
  EXPECT_TRUE(c.valid());
}

TEST(Task, StringPayloadMoves) {
  std::string out;
  auto run = [&]() -> Task<void> {
    out = co_await echo("hello world, this string is long enough to heap");
  };
  Task<void> t = run();
  t.resume();
  EXPECT_EQ(out, "hello world, this string is long enough to heap");
}

TEST(Task, DestroyingUnstartedTaskIsSafe) {
  std::vector<int> log;
  { Task<void> t = record(log, 1); }
  EXPECT_TRUE(log.empty());
}

TEST(Task, ExceptionPropagatesThroughAwait) {
  int out = 0;
  auto run = [&]() -> Task<void> { out = co_await catches_child_error(); };
  Task<void> t = run();
  t.resume();
  EXPECT_EQ(out, -1);
}

TEST(Task, RethrowIfFailedOnRootTask) {
  Task<int> t = throws_logic_error();
  t.resume();
  EXPECT_TRUE(t.done());
  EXPECT_THROW(t.rethrow_if_failed(), std::logic_error);
}

TEST(Task, DeeplyNestedAwaitChain) {
  // Symmetric transfer must not overflow the stack on long chains.  Under
  // AddressSanitizer the fake-stack frames defeat the tail-call, so keep
  // the chain shallow there.
#if defined(__SANITIZE_ADDRESS__)
  constexpr int kDepth = 500;
#else
  constexpr int kDepth = 20'000;
#endif
  struct Chain {
    static Task<int> depth(int n) {
      if (n == 0) co_return 0;
      co_return 1 + co_await depth(n - 1);
    }
  };
  int out = -1;
  auto run = [&]() -> Task<void> { out = co_await Chain::depth(kDepth); };
  Task<void> t = run();
  t.resume();
  EXPECT_EQ(out, kDepth);
}

}  // namespace
}  // namespace nicmcast::sim

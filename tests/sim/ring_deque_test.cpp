#include "sim/ring_deque.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

namespace nicmcast::sim {
namespace {

TEST(RingDeque, StartsEmptyWithNoStorage) {
  RingDeque<int> ring;
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.capacity(), 0u);
  EXPECT_EQ(ring.begin(), ring.end());
}

TEST(RingDeque, FifoOrder) {
  RingDeque<int> ring;
  for (int i = 0; i < 10; ++i) ring.push_back(i);
  EXPECT_EQ(ring.front(), 0);
  EXPECT_EQ(ring.back(), 9);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(ring.front(), i);
    ring.pop_front();
  }
  EXPECT_TRUE(ring.empty());
}

TEST(RingDeque, WrapsAroundWithoutGrowing) {
  RingDeque<int> ring;
  for (int i = 0; i < 4; ++i) ring.push_back(i);
  const std::size_t cap = ring.capacity();
  // Slide a 2-wide window far past the physical capacity.
  ring.pop_front();
  ring.pop_front();
  for (int i = 4; i < 100; ++i) {
    ring.push_back(i);
    ring.pop_front();
  }
  EXPECT_EQ(ring.capacity(), cap);
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.front(), 98);
  EXPECT_EQ(ring.back(), 99);
}

TEST(RingDeque, GrowPreservesOrderAcrossWrap) {
  RingDeque<int> ring;
  for (int i = 0; i < 4; ++i) ring.push_back(i);
  ring.pop_front();
  ring.pop_front();          // head is now mid-ring
  for (int i = 4; i < 9; ++i) ring.push_back(i);  // forces a wrapped grow
  std::vector<int> seen(ring.begin(), ring.end());
  EXPECT_EQ(seen, (std::vector<int>{2, 3, 4, 5, 6, 7, 8}));
}

TEST(RingDeque, CapacityRetainedAcrossDrainRefill) {
  RingDeque<std::string> ring;
  for (int i = 0; i < 20; ++i) ring.push_back("record " + std::to_string(i));
  const std::size_t cap = ring.capacity();
  while (!ring.empty()) ring.pop_front();
  EXPECT_EQ(ring.capacity(), cap);  // the pooling guarantee
  for (int i = 0; i < 20; ++i) ring.push_back("again " + std::to_string(i));
  EXPECT_EQ(ring.capacity(), cap);
  EXPECT_EQ(ring.front(), "again 0");
}

TEST(RingDeque, ClearDestroysElementsKeepsSlots) {
  RingDeque<std::shared_ptr<int>> ring;
  auto tracked = std::make_shared<int>(7);
  ring.push_back(tracked);
  const std::size_t cap = ring.capacity();
  EXPECT_EQ(tracked.use_count(), 2);
  ring.clear();
  EXPECT_EQ(tracked.use_count(), 1);  // element really destroyed
  EXPECT_EQ(ring.capacity(), cap);
}

TEST(RingDeque, ForwardAndReverseIteration) {
  RingDeque<int> ring;
  for (int i = 0; i < 4; ++i) ring.push_back(i);
  ring.pop_front();
  for (int i = 4; i < 7; ++i) ring.push_back(i);  // wrapped contents
  std::vector<int> fwd(ring.begin(), ring.end());
  EXPECT_EQ(fwd, (std::vector<int>{1, 2, 3, 4, 5, 6}));
  std::vector<int> rev(ring.rbegin(), ring.rend());
  EXPECT_EQ(rev, (std::vector<int>{6, 5, 4, 3, 2, 1}));
  // Range-for and mutation through iterators.
  for (int& v : ring) v *= 10;
  EXPECT_EQ(ring.front(), 10);
  EXPECT_EQ(std::accumulate(ring.begin(), ring.end(), 0), 210);
}

TEST(RingDeque, WorksWithAlgorithms) {
  RingDeque<int> ring;
  for (int v : {5, 1, 9, 3}) ring.push_back(v);
  EXPECT_EQ(std::count_if(ring.begin(), ring.end(),
                          [](int v) { return v > 2; }),
            3);
  const auto it = std::find(ring.begin(), ring.end(), 9);
  ASSERT_NE(it, ring.end());
  EXPECT_EQ(it - ring.begin(), 2);
}

TEST(RingDeque, MoveTransfersStorage) {
  RingDeque<std::string> a;
  a.push_back("x");
  a.push_back("y");
  RingDeque<std::string> b = std::move(a);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(b.front(), "x");
  RingDeque<std::string> c;
  c.push_back("gone");
  c = std::move(b);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.back(), "y");
}

TEST(RingDeque, MoveOnlyElements) {
  RingDeque<std::unique_ptr<int>> ring;
  ring.push_back(std::make_unique<int>(1));
  ring.push_back(std::make_unique<int>(2));
  for (int i = 3; i < 10; ++i) ring.push_back(std::make_unique<int>(i));
  EXPECT_EQ(*ring.front(), 1);
  ring.pop_front();
  EXPECT_EQ(*ring.front(), 2);
}

}  // namespace
}  // namespace nicmcast::sim

#include "sim/timeline.hpp"

#include <gtest/gtest.h>

namespace nicmcast::sim {
namespace {

std::vector<TraceRecord> sample_records() {
  return {
      {TimePoint{0}, "net", "node0.nic", "tx seq=0"},
      {TimePoint{5000}, "net", "node1.nic", "rx seq=0"},
      {TimePoint{10000}, "net", "node0.nic", "ack seq=0"},
  };
}

TEST(Timeline, EmptyInput) {
  EXPECT_EQ(render_timeline({}), "(no trace records)\n");
}

TEST(Timeline, OneLanePerActorInFirstAppearanceOrder) {
  const std::string out = render_timeline(sample_records());
  const auto lane0 = out.find("node0.nic |");
  const auto lane1 = out.find("node1.nic |");
  ASSERT_NE(lane0, std::string::npos);
  ASSERT_NE(lane1, std::string::npos);
  EXPECT_LT(lane0, lane1);
}

TEST(Timeline, LegendListsEveryEvent) {
  const std::string out = render_timeline(sample_records());
  EXPECT_NE(out.find("a: [0us] tx seq=0"), std::string::npos);
  EXPECT_NE(out.find("b: [5us] rx seq=0"), std::string::npos);
  EXPECT_NE(out.find("c: [10us] ack seq=0"), std::string::npos);
}

TEST(Timeline, MarksLandAtProportionalColumns) {
  TimelineOptions options;
  options.width = 100;
  const std::string out = render_timeline(sample_records(), options);
  // node0's lane: first mark at column 0, second (ack) at column 100.
  const auto lane_start = out.find("node0.nic |") + std::string("node0.nic |").size();
  const std::string lane = out.substr(lane_start, 101);
  EXPECT_EQ(lane[0], 'a');
  EXPECT_EQ(lane[100], 'c');
  // node1's mark at the midpoint.
  const auto lane1_start = out.find("node1.nic |") + std::string("node1.nic |").size();
  const std::string lane1 = out.substr(lane1_start, 101);
  EXPECT_EQ(lane1[50], 'b');
}

TEST(Timeline, CollidingEventsBecomePlus) {
  std::vector<TraceRecord> records = {
      {TimePoint{0}, "x", "a", "first"},
      {TimePoint{1}, "x", "a", "second (same column)"},
      {TimePoint{100000}, "x", "a", "far away"},
  };
  const std::string out = render_timeline(records);
  EXPECT_NE(out.find('+'), std::string::npos);
}

TEST(Timeline, ExplicitWindowFiltersRecords) {
  TimelineOptions options;
  options.start = TimePoint{4000};
  options.end = TimePoint{6000};
  const std::string out = render_timeline(sample_records(), options);
  EXPECT_EQ(out.find("tx seq=0"), std::string::npos);
  EXPECT_NE(out.find("rx seq=0"), std::string::npos);
  EXPECT_EQ(out.find("ack seq=0"), std::string::npos);
}

TEST(Timeline, LegendCap) {
  std::vector<TraceRecord> records;
  for (int i = 0; i < 10; ++i) {
    records.push_back({TimePoint{i * 10000}, "x", "a",
                       "event " + std::to_string(i)});
  }
  TimelineOptions options;
  options.max_legend = 3;
  const std::string out = render_timeline(records, options);
  EXPECT_NE(out.find("... (7 more)"), std::string::npos);
}

TEST(Timeline, SingleInstantSpan) {
  // All records at the same instant must not divide by zero.
  std::vector<TraceRecord> records = {
      {TimePoint{42}, "x", "a", "only"},
  };
  const std::string out = render_timeline(records);
  EXPECT_NE(out.find("only"), std::string::npos);
}

}  // namespace
}  // namespace nicmcast::sim

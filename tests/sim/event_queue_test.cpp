#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace nicmcast::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(TimePoint{30}, [&] { order.push_back(3); });
  q.schedule(TimePoint{10}, [&] { order.push_back(1); });
  q.schedule(TimePoint{20}, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(TimePoint{100}, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, PopReturnsTimestamp) {
  EventQueue q;
  q.schedule(TimePoint{42}, [] {});
  auto [when, action] = q.pop();
  EXPECT_EQ(when, TimePoint{42});
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.schedule(TimePoint{5}, [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceReturnsFalse) {
  EventQueue q;
  const EventId id = q.schedule(TimePoint{5}, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelledEventSkippedByNextTime) {
  EventQueue q;
  const EventId early = q.schedule(TimePoint{5}, [] {});
  q.schedule(TimePoint{9}, [] {});
  q.cancel(early);
  EXPECT_EQ(q.next_time(), TimePoint{9});
}

TEST(EventQueue, SizeTracksLiveEventsOnly) {
  EventQueue q;
  const EventId a = q.schedule(TimePoint{1}, [] {});
  q.schedule(TimePoint{2}, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, InterleavedScheduleAndPop) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(TimePoint{10}, [&] { order.push_back(1); });
  q.pop().second();
  q.schedule(TimePoint{5}, [&] { order.push_back(2); });  // earlier than last
  q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, ManyEventsStressOrdering) {
  EventQueue q;
  std::vector<std::int64_t> popped;
  // Insert in a scrambled but deterministic order.
  for (std::int64_t i = 0; i < 1000; ++i) {
    const std::int64_t t = (i * 7919) % 1000;
    q.schedule(TimePoint{t}, [] {});
  }
  while (!q.empty()) popped.push_back(q.pop().first.nanoseconds());
  for (std::size_t i = 1; i < popped.size(); ++i) {
    EXPECT_LE(popped[i - 1], popped[i]);
  }
  EXPECT_EQ(popped.size(), 1000u);
}

}  // namespace
}  // namespace nicmcast::sim

#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace nicmcast::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(TimePoint{30}, [&] { order.push_back(3); });
  q.schedule(TimePoint{10}, [&] { order.push_back(1); });
  q.schedule(TimePoint{20}, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(TimePoint{100}, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, PopReturnsTimestamp) {
  EventQueue q;
  q.schedule(TimePoint{42}, [] {});
  auto [when, action] = q.pop();
  EXPECT_EQ(when, TimePoint{42});
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.schedule(TimePoint{5}, [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceReturnsFalse) {
  EventQueue q;
  const EventId id = q.schedule(TimePoint{5}, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelledEventSkippedByNextTime) {
  EventQueue q;
  const EventId early = q.schedule(TimePoint{5}, [] {});
  q.schedule(TimePoint{9}, [] {});
  q.cancel(early);
  EXPECT_EQ(q.next_time(), TimePoint{9});
}

TEST(EventQueue, SizeTracksLiveEventsOnly) {
  EventQueue q;
  const EventId a = q.schedule(TimePoint{1}, [] {});
  q.schedule(TimePoint{2}, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, InterleavedScheduleAndPop) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(TimePoint{10}, [&] { order.push_back(1); });
  q.pop().second();
  q.schedule(TimePoint{5}, [&] { order.push_back(2); });  // earlier than last
  q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// Regression: cancelling an id whose event already fired used to corrupt
// the queue's bookkeeping.  It must be a no-op returning false.
TEST(EventQueue, CancelAfterFireIsNoOp) {
  EventQueue q;
  int runs = 0;
  const EventId id = q.schedule(TimePoint{5}, [&] { ++runs; });
  q.pop().second();
  EXPECT_FALSE(q.cancel(id));
  EXPECT_EQ(runs, 1);
  // The queue must still be fully usable afterwards.
  q.schedule(TimePoint{6}, [&] { ++runs; });
  q.pop().second();
  EXPECT_EQ(runs, 2);
  EXPECT_TRUE(q.empty());
}

// A stale id whose slot has since been recycled for a newer event must not
// cancel that newer event: the sequence number disambiguates.
TEST(EventQueue, StaleCancelDoesNotKillSlotReuser) {
  EventQueue q;
  const EventId stale = q.schedule(TimePoint{1}, [] {});
  q.pop().second();  // slot returns to the free list
  bool reused_ran = false;
  const EventId fresh = q.schedule(TimePoint{2}, [&] { reused_ran = true; });
  EXPECT_EQ(fresh.slot, stale.slot);  // pool really recycled the slot
  EXPECT_FALSE(q.cancel(stale));
  EXPECT_EQ(q.size(), 1u);
  q.pop().second();
  EXPECT_TRUE(reused_ran);
}

TEST(EventQueue, SlotPoolRecyclesInsteadOfGrowing) {
  EventQueue q;
  for (int i = 0; i < 1000; ++i) {
    q.schedule(TimePoint{i}, [] {});
    q.pop().second();
  }
  EXPECT_EQ(q.stats().scheduled, 1000u);
  EXPECT_EQ(q.stats().executed, 1000u);
  // One event in flight at a time => the pool never needed a second slot.
  EXPECT_EQ(q.stats().pool_slots, 1u);
}

TEST(EventQueue, SmallCapturesStayInline) {
  EventQueue q;
  std::uint64_t sink = 0;
  q.schedule(TimePoint{1}, [&sink] { ++sink; });
  EXPECT_EQ(q.stats().heap_actions, 0u);
  struct Huge {
    std::uint64_t words[32] = {};
  };
  q.schedule(TimePoint{2}, [&sink, huge = Huge{}] { sink += huge.words[0]; });
  EXPECT_EQ(q.stats().heap_actions, 1u);
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(sink, 1u);
}

TEST(EventQueue, ManyEventsStressOrdering) {
  EventQueue q;
  std::vector<std::int64_t> popped;
  // Insert in a scrambled but deterministic order.
  for (std::int64_t i = 0; i < 1000; ++i) {
    const std::int64_t t = (i * 7919) % 1000;
    q.schedule(TimePoint{t}, [] {});
  }
  while (!q.empty()) popped.push_back(q.pop().first.nanoseconds());
  for (std::size_t i = 1; i < popped.size(); ++i) {
    EXPECT_LE(popped[i - 1], popped[i]);
  }
  EXPECT_EQ(popped.size(), 1000u);
}

}  // namespace
}  // namespace nicmcast::sim

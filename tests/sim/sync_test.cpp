#include "sim/sync.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/task.hpp"

namespace nicmcast::sim {
namespace {

Task<void> wait_and_log(Trigger& t, std::vector<int>& log, int id) {
  co_await t.wait();
  log.push_back(id);
}

TEST(Trigger, FireWakesAllWaitersInOrder) {
  Trigger t;
  std::vector<int> log;
  Task<void> a = wait_and_log(t, log, 1);
  Task<void> b = wait_and_log(t, log, 2);
  a.resume();
  b.resume();
  EXPECT_TRUE(log.empty());
  t.fire();
  EXPECT_EQ(log, (std::vector<int>{1, 2}));
  EXPECT_TRUE(a.done());
  EXPECT_TRUE(b.done());
}

TEST(Trigger, AwaitAfterFireCompletesImmediately) {
  Trigger t;
  t.fire();
  std::vector<int> log;
  Task<void> a = wait_and_log(t, log, 9);
  a.resume();
  EXPECT_EQ(log, (std::vector<int>{9}));
}

TEST(Trigger, DoubleFireIsIdempotent) {
  Trigger t;
  std::vector<int> log;
  Task<void> a = wait_and_log(t, log, 1);
  a.resume();
  t.fire();
  t.fire();
  EXPECT_EQ(log, (std::vector<int>{1}));
  EXPECT_TRUE(t.fired());
}

Task<void> wait_gate(Gate& g, int& count) {
  co_await g.wait();
  ++count;
  co_await g.wait();
  ++count;
}

TEST(Gate, ReleaseWakesCurrentWaitersOnly) {
  Gate g;
  int count = 0;
  Task<void> a = wait_gate(g, count);
  a.resume();
  EXPECT_EQ(g.waiting(), 1u);
  g.release();
  EXPECT_EQ(count, 1);  // re-suspended on second wait
  EXPECT_EQ(g.waiting(), 1u);
  g.release();
  EXPECT_EQ(count, 2);
  EXPECT_TRUE(a.done());
}

TEST(Gate, ReleaseWithNoWaitersIsNoop) {
  Gate g;
  g.release();
  EXPECT_EQ(g.waiting(), 0u);
}

Task<void> consume(Channel<int>& ch, std::vector<int>& out, int n) {
  for (int i = 0; i < n; ++i) {
    out.push_back(co_await ch.pop());
  }
}

TEST(Channel, PopBlocksUntilPush) {
  Channel<int> ch;
  std::vector<int> out;
  Task<void> c = consume(ch, out, 2);
  c.resume();
  EXPECT_TRUE(out.empty());
  ch.push(10);
  EXPECT_EQ(out, (std::vector<int>{10}));
  ch.push(20);
  EXPECT_EQ(out, (std::vector<int>{10, 20}));
  EXPECT_TRUE(c.done());
}

TEST(Channel, BufferedValuesPopImmediately) {
  Channel<int> ch;
  ch.push(1);
  ch.push(2);
  ch.push(3);
  std::vector<int> out;
  Task<void> c = consume(ch, out, 3);
  c.resume();
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
}

TEST(Channel, FifoAcrossMultipleConsumers) {
  Channel<int> ch;
  std::vector<int> out_a;
  std::vector<int> out_b;
  Task<void> a = consume(ch, out_a, 1);
  Task<void> b = consume(ch, out_b, 1);
  a.resume();
  b.resume();
  ch.push(1);
  ch.push(2);
  EXPECT_EQ(out_a, (std::vector<int>{1}));  // first waiter gets first value
  EXPECT_EQ(out_b, (std::vector<int>{2}));
}

TEST(Channel, TryPopNonBlocking) {
  Channel<std::string> ch;
  EXPECT_EQ(ch.try_pop(), std::nullopt);
  ch.push("x");
  EXPECT_EQ(ch.try_pop(), std::optional<std::string>("x"));
  EXPECT_TRUE(ch.empty());
}

TEST(Channel, SizeTracksContents) {
  Channel<int> ch;
  EXPECT_EQ(ch.size(), 0u);
  ch.push(1);
  ch.push(2);
  EXPECT_EQ(ch.size(), 2u);
  ch.try_pop();
  EXPECT_EQ(ch.size(), 1u);
}

TEST(Channel, MoveOnlyPayload) {
  Channel<std::unique_ptr<int>> ch;
  ch.push(std::make_unique<int>(5));
  auto v = ch.try_pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 5);
}

}  // namespace
}  // namespace nicmcast::sim

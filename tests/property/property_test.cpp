// Property-style sweeps (parameterized gtest): protocol invariants that
// must hold across the cross-product of message sizes, fault positions and
// topologies — not just the hand-picked cases of the unit suites.
#include <gtest/gtest.h>

#include "gm/cluster.hpp"
#include "mcast/bcast.hpp"
#include "mcast/postal_tree.hpp"

namespace nicmcast {
namespace {

using gm::Cluster;
using gm::ClusterConfig;
using gm::Payload;

Payload make_payload(std::size_t n, std::uint8_t salt = 0) {
  Payload p(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = std::byte{static_cast<std::uint8_t>(i * 131u + salt)};
  }
  return p;
}

// ---------------------------------------------------------------------------
// Property: point-to-point delivery is exact for any size and any single
// dropped data packet.
// ---------------------------------------------------------------------------

struct P2pCase {
  std::size_t size;
  int drop_packet;  // -1: no fault; k: drop the k-th data packet once
};

class P2pDeliverySweep : public ::testing::TestWithParam<P2pCase> {};

TEST_P(P2pDeliverySweep, DeliversExactlyOnceInOrder) {
  const auto [size, drop_packet] = GetParam();
  ClusterConfig config;
  config.nodes = 2;
  config.nic.retransmit_timeout = sim::usec(150);
  Cluster c(config);
  if (drop_packet >= 0) {
    auto faults = std::make_unique<net::ScriptedFaults>();
    faults->add_rule({.type = net::PacketType::kData,
                      .seq = static_cast<std::uint32_t>(drop_packet)},
                     net::FaultAction::kDrop);
    c.network().set_fault_injector(std::move(faults));
  }
  c.port(1).provide_receive_buffer(std::max<std::size_t>(size, 64));
  const Payload msg = make_payload(size);
  int completions = 0;
  c.simulator().spawn([](Cluster& cl, Payload m, int& n) -> sim::Task<void> {
    EXPECT_EQ(co_await cl.port(0).send(1, 0, std::move(m), 5),
              gm::SendStatus::kOk);
    ++n;
  }(c, msg, completions));
  Payload got;
  c.simulator().spawn([](Cluster& cl, Payload& out) -> sim::Task<void> {
    gm::RecvMessage r = co_await cl.port(1).receive();
    out = std::move(r.data);
  }(c, got));
  c.run();
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(got, msg);
  EXPECT_EQ(c.port(1).pending_messages(), 0u);  // exactly once
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndDrops, P2pDeliverySweep,
    ::testing::Values(
        P2pCase{0, -1}, P2pCase{1, -1}, P2pCase{1, 0}, P2pCase{4095, -1},
        P2pCase{4096, 0}, P2pCase{4097, 1}, P2pCase{8192, 0},
        P2pCase{8192, 1}, P2pCase{12000, 2}, P2pCase{16287, -1},
        P2pCase{16287, 3}, P2pCase{20000, 4}),
    [](const auto& param_info) {
      return "size" + std::to_string(param_info.param.size) + "_drop" +
             std::to_string(param_info.param.drop_packet + 1);
    });

// ---------------------------------------------------------------------------
// Property: a multicast survives the loss of ANY single data packet on ANY
// tree edge, with exactly one retransmission, charged to the owning hop.
// ---------------------------------------------------------------------------

struct McastDropCase {
  net::NodeId edge_src;
  net::NodeId edge_dst;
  std::uint32_t packet;  // which packet of the 3-packet message
};

class McastSingleDropSweep : public ::testing::TestWithParam<McastDropCase> {
};

TEST_P(McastSingleDropSweep, RecoversWithOneOwnedRetransmission) {
  const auto [src, dst, packet] = GetParam();
  ClusterConfig config;
  config.nodes = 6;
  config.nic.retransmit_timeout = sim::usec(200);
  Cluster c(config);
  // Tree: 0 -> {1, 2}; 1 -> {3, 4}; 2 -> {5}.
  mcast::Tree tree(0);
  tree.add_edge(0, 1);
  tree.add_edge(0, 2);
  tree.add_edge(1, 3);
  tree.add_edge(1, 4);
  tree.add_edge(2, 5);
  mcast::install_group(c, tree, 4);
  for (net::NodeId n = 1; n < 6; ++n) {
    c.port(n).provide_receive_buffer(16384);
  }
  auto faults = std::make_unique<net::ScriptedFaults>();
  faults->add_predicate_rule(
      [s = src, d = dst, k = packet](const net::Packet& p) {
        return p.header.type == net::PacketType::kMcastData &&
               p.header.src == s && p.header.dst == d &&
               p.header.msg_offset == k * 4096;
      },
      net::FaultAction::kDrop);
  c.network().set_fault_injector(std::move(faults));

  const Payload msg = make_payload(11000);  // 3 packets
  int ok = 0;
  c.run_on_all([&tree, &msg, &ok](Cluster& cl,
                                  net::NodeId me) -> sim::Task<void> {
    Payload data;
    if (me == 0) data = msg;
    Payload got = co_await mcast::nic_bcast(cl.port(me), tree, 4,
                                            std::move(data), 9);
    if (got == msg) ++ok;
  });
  c.run();
  EXPECT_EQ(ok, 6);
  // Go-back-N: the owning hop retransmits the dropped packet AND its
  // successors towards that child (3 - k packets); nobody else resends.
  for (net::NodeId n = 0; n < 6; ++n) {
    const auto expected = n == src ? 3u - packet : 0u;
    EXPECT_EQ(c.nic(n).stats().retransmissions, expected) << "node " << n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    EdgesAndPackets, McastSingleDropSweep,
    ::testing::Values(McastDropCase{0, 1, 0}, McastDropCase{0, 1, 2},
                      McastDropCase{0, 2, 1}, McastDropCase{1, 3, 0},
                      McastDropCase{1, 3, 2}, McastDropCase{1, 4, 1},
                      McastDropCase{2, 5, 0}, McastDropCase{2, 5, 2}),
    [](const auto& param_info) {
      return "edge" + std::to_string(param_info.param.edge_src) + "to" +
             std::to_string(param_info.param.edge_dst) + "_pkt" +
             std::to_string(param_info.param.packet);
    });

// ---------------------------------------------------------------------------
// Property: tree builders keep their invariants over randomised member
// sets: full coverage, valid structure, the deadlock id-ordering rule and
// run-to-run determinism.
// ---------------------------------------------------------------------------

class TreeInvariantSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TreeInvariantSweep, AllBuildersAllInvariants) {
  sim::Rng rng(GetParam());
  // Random subset of a 64-node id space, random root from the subset.
  std::vector<net::NodeId> members;
  for (net::NodeId i = 0; i < 64; ++i) {
    if (rng.chance(0.4)) members.push_back(i);
  }
  if (members.size() < 2) members = {3, 7};
  const net::NodeId root =
      members[rng.uniform_int(0, static_cast<std::int64_t>(members.size()) - 1)];
  std::vector<net::NodeId> dests = members;
  std::erase(dests, root);

  const auto postal_cost = mcast::PostalCostModel::nic_based(
      static_cast<std::size_t>(rng.uniform_int(1, 20000)), nic::NicConfig{},
      net::NetworkConfig{});
  const std::vector<mcast::Tree> trees{
      mcast::build_binomial_tree(root, dests),
      mcast::build_chain_tree(root, dests),
      mcast::build_flat_tree(root, dests),
      mcast::build_postal_tree(root, dests, postal_cost),
  };
  for (const auto& tree : trees) {
    tree.validate();
    EXPECT_EQ(tree.size(), members.size());
    for (net::NodeId m : members) EXPECT_TRUE(tree.contains(m));
    EXPECT_TRUE(tree.satisfies_id_ordering());
    EXPECT_EQ(tree.root(), root);
  }
  // Determinism: rebuilding yields the identical structure.
  EXPECT_EQ(mcast::build_postal_tree(root, dests, postal_cost).describe(),
            trees[3].describe());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeInvariantSweep,
                         ::testing::Range<std::uint64_t>(1, 21));

// ---------------------------------------------------------------------------
// Property: whole-cluster broadcast correctness across (nodes, size, seed)
// under random loss — the end-to-end reliability sweep.
// ---------------------------------------------------------------------------

struct LossyBcastCase {
  std::size_t nodes;
  std::size_t size;
  std::uint64_t seed;
};

class LossyBcastSweep : public ::testing::TestWithParam<LossyBcastCase> {};

TEST_P(LossyBcastSweep, EveryNodeExactPayload) {
  const auto [nodes, size, seed] = GetParam();
  ClusterConfig config;
  config.nodes = nodes;
  config.nic.retransmit_timeout = sim::usec(250);
  Cluster c(config);
  c.network().set_fault_injector(
      std::make_unique<net::RandomFaults>(0.06, 0.03, sim::Rng(seed)));
  std::vector<net::NodeId> dests;
  for (net::NodeId i = 1; i < nodes; ++i) dests.push_back(i);
  const auto tree = mcast::build_postal_tree(
      0, dests,
      mcast::PostalCostModel::nic_based(size, nic::NicConfig{},
                                        net::NetworkConfig{}));
  mcast::install_group(c, tree, 2);
  for (net::NodeId n = 1; n < nodes; ++n) {
    c.port(n).provide_receive_buffer(std::max<std::size_t>(size, 64) * 2);
  }
  const Payload msg = make_payload(size, static_cast<std::uint8_t>(seed));
  int ok = 0;
  c.run_on_all([&tree, &msg, &ok](Cluster& cl,
                                  net::NodeId me) -> sim::Task<void> {
    Payload data;
    if (me == 0) data = msg;
    Payload got = co_await mcast::nic_bcast(cl.port(me), tree, 2,
                                            std::move(data), 1);
    if (got == msg) ++ok;
  });
  c.run();
  EXPECT_EQ(ok, static_cast<int>(nodes));
}

INSTANTIATE_TEST_SUITE_P(
    NodesSizesSeeds, LossyBcastSweep,
    ::testing::Values(LossyBcastCase{4, 100, 1}, LossyBcastCase{4, 9000, 2},
                      LossyBcastCase{8, 100, 3}, LossyBcastCase{8, 9000, 4},
                      LossyBcastCase{8, 16384, 5},
                      LossyBcastCase{16, 100, 6},
                      LossyBcastCase{16, 4096, 7},
                      LossyBcastCase{16, 16384, 8}),
    [](const auto& param_info) {
      return "n" + std::to_string(param_info.param.nodes) + "_b" +
             std::to_string(param_info.param.size) + "_s" +
             std::to_string(param_info.param.seed);
    });

}  // namespace
}  // namespace nicmcast

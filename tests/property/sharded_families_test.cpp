// Determinism goldens for the migrated experiment families on the sharded
// fabric: multisend, mpi_bcast, skew_bcast and barrier, pinned per shard
// count exactly like sharded_determinism_test.cpp pins gm_mcast.
//
// The contract (DESIGN.md §4.5-4.6) extends unchanged to every family:
//   - shards == 1 dispatches to the classic coroutine stack, so each
//     family's sequential event_order_hash golden here is the same lineage
//     every BENCH_*.json for that family already pins;
//   - shards > 1 pins the per-shard hash vector of the sharded fabric,
//     reproducible because cross-shard messages merge in
//     (when, src_shard, send_seq) order;
//   - protocol totals are invariant across shard counts — including
//     shards == 1 *on the fabric itself* (run_sharded), which the gm_mcast
//     suite cannot check because run_one reroutes 1-shard specs to the
//     coroutine engine;
//   - batched per-shard horizons change LBTS pacing but neither results
//     nor protocol totals, and are themselves bit-reproducible;
//   - asynchronous null-message sync (--sync async) replays the barrier
//     round schedule exactly, so the SAME pinned vectors cover both modes.
//
// Re-derive with the probe after an intentional re-timing:
//
//   ./test_property_sharded_families --gtest_also_run_disabled_tests
//       --gtest_filter='*PrintGoldens*'
#include <cstdint>
#include <cstdio>
#include <vector>

#include <gtest/gtest.h>

#include "harness/run_result.hpp"
#include "harness/run_spec.hpp"
#include "harness/runners.hpp"

namespace nicmcast::harness {
namespace {

RunSpec multisend() {
  RunSpec spec;
  spec.experiment = Experiment::kMultisend;
  spec.nodes = 64;
  spec.destinations = 63;
  spec.wiring = Wiring::kClos;
  spec.switch_radix = 16;
  spec.message_bytes = 512;
  spec.warmup = 1;
  spec.iterations = 3;
  spec.seed = 3;
  return spec;
}

RunSpec bcast() {
  RunSpec spec;
  spec.experiment = Experiment::kMpiBcast;
  spec.nodes = 64;
  spec.wiring = Wiring::kClos;
  spec.switch_radix = 16;
  spec.message_bytes = 512;
  spec.tree = TreeShape::kPostal;
  spec.loss_rate = 0.01;
  spec.warmup = 1;
  spec.iterations = 3;
  spec.seed = 5;
  return spec;
}

RunSpec skew() {
  RunSpec spec = bcast();
  spec.experiment = Experiment::kSkewBcast;
  spec.loss_rate = 0.0;
  spec.avg_skew_us = 15.0;
  spec.seed = 9;
  return spec;
}

RunSpec barrier() {
  RunSpec spec;
  spec.experiment = Experiment::kBarrier;
  spec.nodes = 64;
  spec.wiring = Wiring::kClos;
  spec.switch_radix = 16;
  spec.tree = TreeShape::kBinomial;
  spec.avg_skew_us = 5.0;
  spec.warmup = 1;
  spec.iterations = 3;
  spec.seed = 11;
  return spec;
}

struct Golden {
  const char* name;
  RunSpec (*spec)();
  /// Classic coroutine-stack hash at shards == 1 (run_one dispatch).
  std::uint64_t sequential_hash;
  /// Per-shard hash vectors for shards = 2, 4, 8 (index 0, 1, 2).
  std::vector<std::vector<std::uint64_t>> shard_hashes;
};

const std::size_t kShardCounts[] = {2, 4, 8};

std::vector<Golden> goldens();  // constants at the bottom of the file

RunResult run_with_shards(RunSpec spec, std::size_t shards) {
  spec.shards = shards;
  return run_one(spec);
}

TEST(ShardedFamilies, SequentialHashUnchangedByTheShardsAxis) {
  for (const Golden& g : goldens()) {
    const RunResult r = run_with_shards(g.spec(), 1);
    EXPECT_EQ(r.engine.event_order_hash, g.sequential_hash)
        << g.name << ": --shards 1 must stay on the classic coroutine "
        << "stack, bit-identical to the checked-in BENCH lineage";
    EXPECT_EQ(r.engine.shard_count, 0u)
        << g.name << ": shards == 1 must not enter the sharded fabric";
  }
}

TEST(ShardedFamilies, PerShardHashVectorsMatchGoldens) {
  for (const Golden& g : goldens()) {
    for (std::size_t i = 0; i < std::size(kShardCounts); ++i) {
      const std::size_t shards = kShardCounts[i];
      const RunResult r = run_with_shards(g.spec(), shards);
      ASSERT_EQ(r.engine.shard_order_hashes.size(), shards)
          << g.name << " s" << shards;
      EXPECT_EQ(r.engine.shard_order_hashes, g.shard_hashes[i])
          << g.name << " s" << shards
          << ": per-shard event order diverged from the pinned golden";
    }
  }
}

TEST(ShardedFamilies, ProtocolTotalsInvariantAcrossShardCounts) {
  for (const Golden& g : goldens()) {
    // run_sharded directly so shards == 1 also exercises the fabric: the
    // partition axis must change scheduling only, never the protocol.
    RunSpec spec = g.spec();
    spec.shards = 1;
    const RunResult base = run_sharded(spec);
    EXPECT_EQ(base.metric("delivered"), 1.0) << g.name;
    for (const std::size_t shards : kShardCounts) {
      const RunResult r = run_with_shards(g.spec(), shards);
      EXPECT_EQ(r.metric("deliveries"), base.metric("deliveries"))
          << g.name << " s" << shards;
      EXPECT_EQ(r.nic_totals.packets_sent, base.nic_totals.packets_sent)
          << g.name << " s" << shards;
      EXPECT_EQ(r.nic_totals.retransmissions,
                base.nic_totals.retransmissions)
          << g.name << " s" << shards;
      EXPECT_EQ(r.nic_totals.crc_drops, base.nic_totals.crc_drops)
          << g.name << " s" << shards;
      EXPECT_EQ(r.metric("delivered"), 1.0) << g.name << " s" << shards;
    }
  }
}

TEST(ShardedFamilies, LatencyStableAcrossShallowShardCounts) {
  // Same contract the mcast fabric pins (ShardedFabric.LatencyStable…):
  // at shallow cuts the segmented wormhole agrees with the sequential
  // reservation to well under 1%.  Deeper cuts (s8 puts every leaf and
  // spine on its own shard) legitimately shift contention resolution at
  // segment boundaries — that lineage is pinned by the hash-vector goldens
  // below, not by cross-count latency equality.
  for (const Golden& g : goldens()) {
    RunSpec spec = g.spec();
    spec.shards = 1;
    const RunResult base = run_sharded(spec);
    ASSERT_GT(base.latency_us.count(), 0u) << g.name;
    for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
      const RunResult r = run_with_shards(g.spec(), shards);
      EXPECT_NEAR(r.latency_us.mean(), base.latency_us.mean(),
                  base.latency_us.mean() * 0.01)
          << g.name << " s" << shards;
      EXPECT_NEAR(r.latency_us.max(), base.latency_us.max(),
                  base.latency_us.max() * 0.01)
          << g.name << " s" << shards;
    }
  }
}

TEST(ShardedFamilies, BatchedHorizonsKeepResultsAndCutRounds) {
  for (const Golden& g : goldens()) {
    RunSpec spec = g.spec();
    spec.shards = 4;
    const RunResult classic = run_one(spec);
    spec.batch_horizons = true;
    const RunResult batched = run_one(spec);
    const RunResult again = run_one(spec);
    // Same simulation: identical latencies and protocol totals.
    EXPECT_DOUBLE_EQ(batched.latency_us.mean(), classic.latency_us.mean())
        << g.name;
    EXPECT_EQ(batched.metric("deliveries"), classic.metric("deliveries"))
        << g.name;
    EXPECT_EQ(batched.nic_totals.retransmissions,
              classic.nic_totals.retransmissions)
        << g.name;
    // Fewer (never more) LBTS rounds — the widened horizons dominate.
    EXPECT_LE(batched.engine.lbts_rounds, classic.engine.lbts_rounds)
        << g.name;
    // And the batched lineage is itself bit-reproducible.
    EXPECT_EQ(batched.engine.shard_order_hashes,
              again.engine.shard_order_hashes)
        << g.name;
    EXPECT_EQ(batched.engine.lbts_rounds, again.engine.lbts_rounds)
        << g.name;
  }
}

// The async-sync golden: --sync async must reproduce the SAME pinned hash
// vectors as the barrier at every shard count, for every family — the
// asynchronous null-message protocol replays the barrier round schedule
// exactly, so it never forks a golden lineage.  lbts_rounds (the round
// count, deterministic in both modes) must agree too.
TEST(ShardedFamilies, AsyncSyncMatchesPinnedBarrierGoldens) {
  for (const Golden& g : goldens()) {
    for (std::size_t i = 0; i < std::size(kShardCounts); ++i) {
      const std::size_t shards = kShardCounts[i];
      RunSpec spec = g.spec();
      spec.shards = shards;
      const RunResult barrier_run = run_one(spec);
      spec.async_sync = true;
      const RunResult async_run = run_one(spec);
      EXPECT_EQ(async_run.engine.shard_order_hashes, g.shard_hashes[i])
          << g.name << " s" << shards
          << ": async sync forked the pinned barrier lineage";
      EXPECT_EQ(async_run.engine.event_order_hash,
                barrier_run.engine.event_order_hash)
          << g.name << " s" << shards;
      EXPECT_EQ(async_run.engine.lbts_rounds, barrier_run.engine.lbts_rounds)
          << g.name << " s" << shards
          << ": async must replay the barrier round schedule";
      EXPECT_DOUBLE_EQ(async_run.latency_us.mean(),
                       barrier_run.latency_us.mean())
          << g.name << " s" << shards;
    }
    // shards == 1 with async_sync set still dispatches to the classic
    // coroutine stack — the flag is a sharded-engine axis only.
    RunSpec spec = g.spec();
    spec.shards = 1;
    spec.async_sync = true;
    const RunResult seq = run_one(spec);
    EXPECT_EQ(seq.engine.event_order_hash, g.sequential_hash) << g.name;
    EXPECT_EQ(seq.engine.shard_count, 0u) << g.name;
  }
}

// Async composes with batched horizons on the family workloads too: same
// batched lineage (hashes, rounds), just without the barrier waits.
TEST(ShardedFamilies, AsyncComposesWithBatchedHorizonsOnFamilies) {
  for (const Golden& g : goldens()) {
    RunSpec spec = g.spec();
    spec.shards = 4;
    spec.batch_horizons = true;
    const RunResult batched = run_one(spec);
    spec.async_sync = true;
    const RunResult both = run_one(spec);
    EXPECT_EQ(both.engine.shard_order_hashes,
              batched.engine.shard_order_hashes)
        << g.name;
    EXPECT_EQ(both.engine.lbts_rounds, batched.engine.lbts_rounds) << g.name;
    EXPECT_EQ(both.metric("deliveries"), batched.metric("deliveries"))
        << g.name;
  }
}

TEST(ShardedFamilies, SkewBcastChargesHostTimeNotSkew) {
  // The paper's headline: under NIC multicast, a rank's bcast CPU time
  // stays flat as process skew grows, because late ranks find the payload
  // already delivered.  The fabric must reproduce that shape.
  RunSpec calm = skew();
  calm.avg_skew_us = 0.0;
  calm.shards = 4;
  RunSpec skewed = skew();
  skewed.avg_skew_us = 200.0;
  skewed.shards = 4;
  const RunResult a = run_one(calm);
  const RunResult b = run_one(skewed);
  EXPECT_GT(b.metric("avg_applied_skew_us"), 100.0);
  EXPECT_LT(a.metric("avg_applied_skew_us"), 1e-9);
  // Mean CPU time inside the bcast shrinks (or at worst stays put) as the
  // skew grows — late ranks wait less, never more.
  EXPECT_LE(b.metric("avg_bcast_cpu_us"), a.metric("avg_bcast_cpu_us"));
  EXPECT_GT(a.metric("avg_bcast_cpu_us"), 0.0);
}

TEST(ShardedFamilies, BarrierRoundsProduceWallMetric) {
  RunSpec spec = barrier();
  spec.shards = 2;
  const RunResult r = run_one(spec);
  EXPECT_GT(r.metric("wall_us_per_round"), 0.0);
  EXPECT_EQ(r.metric("delivered"), 1.0);
  // Every node completes every round (root included).
  EXPECT_EQ(r.metric("deliveries"),
            static_cast<double>(spec.nodes) * (spec.warmup + spec.iterations));
}

// Probe: prints the golden table in source form.  Not a test.
TEST(ShardedFamilies, DISABLED_PrintGoldens) {
  for (const Golden& g : goldens()) {
    const RunResult seq = run_with_shards(g.spec(), 1);
    std::printf("{\"%s\", ..., 0x%016llxULL,\n {\n", g.name,
                static_cast<unsigned long long>(seq.engine.event_order_hash));
    for (const std::size_t shards : kShardCounts) {
      const RunResult r = run_with_shards(g.spec(), shards);
      std::printf("  {");
      for (const std::uint64_t h : r.engine.shard_order_hashes) {
        std::printf("0x%016llxULL, ", static_cast<unsigned long long>(h));
      }
      std::printf("},\n");
    }
    std::printf(" }},\n");
  }
}

// Golden constants, derived with the probe above.  Machine-independent:
// neither engine consults wall-clock time, container iteration order or
// addresses for scheduling decisions.
std::vector<Golden> goldens() {
  return {
      {"multisend", &multisend, 0x2f83c99a5b5bcb2dULL,
       {
           {0xf836c7e8cf90de5dULL, 0x4ccb4162c86bada5ULL},
           {0xc1b1201d9dc2279dULL, 0x37c6b718de471cc5ULL,
            0x027f8d203eab3785ULL, 0x78c5cfc86dbea445ULL},
           {0x435b7042be2e9ac5ULL, 0xd3f8ed166fcb3525ULL,
            0xbd89e07c6d44eda5ULL, 0xe294fd9e273256c5ULL,
            0x4d709f9a471b8985ULL, 0xd6920ba1f00a7fa5ULL,
            0xae13ed6e4885e265ULL, 0x464570a3a1d71c05ULL},
       }},
      {"bcast", &bcast, 0x076b31edcfbcb01aULL,
       {
           {0xd8665ee54e4c4cf4ULL, 0xadcc26e46ea0db32ULL},
           {0xad2bf43899b05352ULL, 0x5ce1f42c552e4c8fULL,
            0xe9bedf60e130c1b8ULL, 0x9c7c43490dca87efULL},
           {0x1c1b0b75e10baa53ULL, 0x0b4b4eb9e187bcf7ULL,
            0xed0081069c7b8555ULL, 0x6df62e05fa8efc83ULL,
            0xacd8b0c0fb85b87dULL, 0x7798c4e0e61cc146ULL,
            0xe090342679bf0d69ULL, 0x379acb6841b90fc7ULL},
       }},
      {"skew", &skew, 0xf6c542606ba7d310ULL,
       {
           {0x2183a0521d4935bdULL, 0x94d5f9ea012d9e05ULL},
           {0xadec5f620e9e8f55ULL, 0xf371ba5d86b4e139ULL,
            0x3dd4fbaf60e3ec71ULL, 0x3b3e45338665f091ULL},
           {0x1b29b031e6c86509ULL, 0x1fe63520d1d658b1ULL,
            0x790410af38aea8b1ULL, 0x19efc0bd96510641ULL,
            0x442a2630413fa5fdULL, 0x0a2a8028d8d22dd5ULL,
            0x50eeaf4faf1301d5ULL, 0xa3bc4562e1a3cdb1ULL},
       }},
      {"barrier", &barrier, 0xdbd738ce28044686ULL,
       {
           {0xf1b1425a0d7c752cULL, 0x92a4328e9985addfULL},
           {0xdbdf17b8e0dad7eaULL, 0x7c1b6ab12ce82bdfULL,
            0xc497e289292ba80eULL, 0xd24d78311d5e4058ULL},
           {0x05ffd4fd5e8d1d47ULL, 0xa8a1f539cc9a9ca4ULL,
            0x1b9632940a5d740dULL, 0x76a89a6411c7275bULL,
            0x60ac35c1cf8f6835ULL, 0xc9d8a0542f23b33eULL,
            0x26710254f9f8edc1ULL, 0xbf34025e851191d4ULL},
       }},
  };
}

}  // namespace
}  // namespace nicmcast::harness

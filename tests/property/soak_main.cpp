// soak_driver: the full-size chaos campaign.
//
//   soak_driver --iters 1000 --threads 8 --seed 1 --json BENCH_soak.json
//
// Every iteration derives one randomized scenario (cluster size/wiring,
// tree shape, injector family, workload mix, sequence-wrap and idle-GC
// toggles) from derive_seed(base_seed, index), runs it to drain with the
// ProtocolAuditor attached to every NIC, and checks all invariants.
// Failures are re-run on the main thread (runs are deterministic) so the
// report carries the shrunk minimal reproduction.  Exit status 1 when any
// scenario fails.
#include <cstdint>
#include <cstdio>
#include <iterator>
#include <map>
#include <string>
#include <vector>

#include "harness/bench_io.hpp"
#include "harness/parallel_runner.hpp"
#include "harness/run_spec.hpp"
#include "harness/runners.hpp"
#include "sim/stats.hpp"
#include "soak.hpp"

namespace {

constexpr int kDefaultScenarios = 1000;

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// With --shards N (N > 1), every scenario additionally runs a sharded-
/// fabric cross-check: one seeded run of a randomly drawn migrated family
/// (gm_mcast, multisend, mpi_bcast, skew_bcast, barrier) on the PDES
/// fabric at 1 shard and at a per-scenario random shard count in [2, N],
/// asserting the shard-count-invariance half of the determinism contract
/// (identical deliveries and protocol totals).  The requested count may
/// exceed the scenario's leaf-block count — switch_cut clamps it, and the
/// check reports the effective count it actually ran at.  The derivation
/// uses its own mix of the scenario seed, so soak::make_spec's RNG stream
/// — and with it every pinned soak golden — is untouched.
struct ShardCheck {
  bool ok = true;
  std::size_t shards = 0;
  std::string failure;
};

ShardCheck run_sharded_crosscheck(std::uint64_t seed,
                                  std::size_t max_shards) {
  using namespace nicmcast;
  ShardCheck check;
  check.shards = 2 + mix64(seed ^ 0x5aad) % (max_shards - 1);

  harness::RunSpec spec;
  constexpr harness::Experiment kFamilies[] = {
      harness::Experiment::kGmMulticast, harness::Experiment::kMultisend,
      harness::Experiment::kMpiBcast, harness::Experiment::kSkewBcast,
      harness::Experiment::kBarrier};
  spec.experiment = kFamilies[mix64(seed ^ 0xfa417) % std::size(kFamilies)];
  spec.nodes = 24 + mix64(seed ^ 0xfab) % 233;  // 24..256 endpoints
  spec.wiring = harness::Wiring::kClos;
  spec.switch_radix = 16;
  spec.message_bytes = std::size_t{1} << (6 + mix64(seed ^ 0xb17e5) % 6);
  spec.tree = (mix64(seed ^ 0x7ee) & 1) != 0
                  ? harness::TreeShape::kBinomial
                  : harness::TreeShape::kChain;
  // The barrier rides the lossless control path; everything else soaks
  // under 0-3% uniform loss like the gm_mcast check always has.
  spec.loss_rate =
      spec.experiment == harness::Experiment::kBarrier
          ? 0.0
          : static_cast<double>(mix64(seed ^ 0x1055) % 4) * 0.01;
  if (spec.experiment == harness::Experiment::kMultisend) {
    spec.destinations = spec.nodes - 1;  // flat send: a star tree
  }
  if (spec.experiment == harness::Experiment::kSkewBcast ||
      spec.experiment == harness::Experiment::kBarrier) {
    spec.avg_skew_us = static_cast<double>(mix64(seed ^ 0x54e3) % 32);
  }
  spec.warmup = 0;
  spec.iterations = 1;
  spec.seed = seed;

  spec.shards = 1;
  const harness::RunResult base = harness::run_sharded(spec);
  spec.shards = check.shards;
  // A seed-derived coin soaks the asynchronous null-message sync on half
  // the scenarios: it must agree with the 1-shard fabric exactly like the
  // barrier does (same hashes, same totals — only the waiting differs).
  spec.async_sync = (mix64(seed ^ 0xa54c) & 1) != 0;
  const harness::RunResult sharded = harness::run_sharded(spec);
  // switch_cut may have clamped the request on a small Clos; report what
  // actually ran.
  check.shards = sharded.engine.shard_count;

  const auto mismatch = [&](const char* what, std::uint64_t a,
                            std::uint64_t b) {
    if (a == b) return;
    check.ok = false;
    check.failure += std::string(to_string(spec.experiment)) + " " + what +
                     " " + std::to_string(a) + " != " + std::to_string(b) +
                     " at " + std::to_string(check.shards) + " shards; ";
  };
  mismatch("deliveries",
           static_cast<std::uint64_t>(base.metric("deliveries")),
           static_cast<std::uint64_t>(sharded.metric("deliveries")));
  mismatch("packets_sent", base.nic_totals.packets_sent,
           sharded.nic_totals.packets_sent);
  mismatch("retransmissions", base.nic_totals.retransmissions,
           sharded.nic_totals.retransmissions);
  mismatch("crc_drops", base.nic_totals.crc_drops,
           sharded.nic_totals.crc_drops);
  mismatch("acks_sent", base.nic_totals.acks_sent,
           sharded.nic_totals.acks_sent);
  if (base.metric("delivered") != 1.0 || sharded.metric("delivered") != 1.0) {
    check.ok = false;
    check.failure += "incomplete delivery; ";
  }
  return check;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nicmcast;

  harness::BenchOptions options =
      harness::parse_bench_options(argc, argv, "soak");
  const int scenarios =
      options.iterations_or(kDefaultScenarios);

  harness::print_header(
      "Chaos soak: randomized workloads under stateful fault injection",
      "protocol invariants from the reliability design (paper sect. 6)");

  std::vector<harness::RunSpec> specs;
  specs.reserve(static_cast<std::size_t>(scenarios));
  for (int i = 0; i < scenarios; ++i) {
    harness::RunSpec spec;
    spec.experiment = harness::Experiment::kCustom;
    spec.seed = harness::derive_seed(options.base_seed,
                                     static_cast<std::size_t>(i));
    const soak::SoakSpec derived = soak::make_spec(spec.seed);
    spec.label = std::string("soak/") + soak::to_string(derived.injector);
    spec.nodes = derived.nodes;
    spec.message_bytes = derived.message_bytes;
    spec.iterations = 1;
    spec.warmup = 0;
    specs.push_back(std::move(spec));
  }

  // The runner re-derives the same seeds; keep derive_seeds on so --threads
  // never changes which scenario an index maps to.
  const std::size_t max_shards = options.shards;
  const harness::ParallelRunner runner(harness::runner_options(options));
  const std::vector<harness::RunResult> results =
      runner.run(specs, [max_shards](const harness::RunSpec& spec) {
        const soak::SoakResult r = soak::run_soak_seed(spec.seed);
        harness::RunResult out;
        out.spec = spec;
        out.set_metric("ok", r.ok ? 1.0 : 0.0);
        if (max_shards > 1) {
          const ShardCheck check =
              run_sharded_crosscheck(spec.seed, max_shards);
          out.set_metric("sharded_ok", check.ok ? 1.0 : 0.0);
          out.set_metric("sharded_shards",
                         static_cast<double>(check.shards));
        }
        out.set_metric("retransmissions",
                       static_cast<double>(r.retransmissions));
        out.set_metric("conn_resets", static_cast<double>(r.conn_resets));
        out.set_metric("conns_reclaimed",
                       static_cast<double>(r.conns_reclaimed));
        out.set_metric("data_sent", static_cast<double>(r.ledger.data_sent));
        out.set_metric("data_accepted",
                       static_cast<double>(r.ledger.data_accepted));
        out.set_metric("ctrl_sent", static_cast<double>(r.ledger.ctrl_sent));
        return out;
      });

  std::map<std::string, sim::OnlineStats> retx_per_family;
  std::vector<std::uint64_t> failed_seeds;
  std::vector<std::uint64_t> sharded_failed_seeds;
  for (const harness::RunResult& result : results) {
    sim::OnlineStats one;
    one.add(result.metric("retransmissions"));
    retx_per_family[result.spec.label].merge(one);
    if (result.metric("ok") != 1.0) failed_seeds.push_back(result.spec.seed);
    if (result.metric("sharded_ok", 1.0) != 1.0) {
      sharded_failed_seeds.push_back(result.spec.seed);
    }
  }

  sim::OnlineStats total;
  for (const auto& [family, retx] : retx_per_family) {
    std::printf("  %-18s %5zu scenarios | retx mean %7.1f max %6.0f\n",
                family.c_str(), retx.count(), retx.mean(), retx.max());
    total.merge(retx);
  }
  std::printf("  %-18s %5zu scenarios, %zu failed | retx mean %7.1f\n",
              "total", total.count(), failed_seeds.size(), total.mean());

  if (max_shards > 1) {
    std::printf("  %-18s %5zu scenarios, %zu failed (shards 2..%zu)\n",
                "sharded x-check", results.size(),
                sharded_failed_seeds.size(), max_shards);
  }

  for (const std::uint64_t seed : failed_seeds) {
    // Deterministic: replaying the seed reproduces and shrinks the failure.
    const soak::SoakResult r = soak::run_soak_seed(seed);
    std::printf("FAIL seed %llu: %s\n",
                static_cast<unsigned long long>(seed), r.failure.c_str());
  }
  for (const std::uint64_t seed : sharded_failed_seeds) {
    const ShardCheck check = run_sharded_crosscheck(seed, max_shards);
    std::printf("SHARDED FAIL seed %llu: %s\n",
                static_cast<unsigned long long>(seed),
                check.failure.c_str());
  }

  harness::write_bench_json("soak", options, results);
  return failed_seeds.empty() && sharded_failed_seeds.empty() ? 0 : 1;
}

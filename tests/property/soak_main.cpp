// soak_driver: the full-size chaos campaign.
//
//   soak_driver --iters 1000 --threads 8 --seed 1 --json BENCH_soak.json
//
// Every iteration derives one randomized scenario (cluster size/wiring,
// tree shape, injector family, workload mix, sequence-wrap and idle-GC
// toggles) from derive_seed(base_seed, index), runs it to drain with the
// ProtocolAuditor attached to every NIC, and checks all invariants.
// Failures are re-run on the main thread (runs are deterministic) so the
// report carries the shrunk minimal reproduction.  Exit status 1 when any
// scenario fails.
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "harness/bench_io.hpp"
#include "harness/parallel_runner.hpp"
#include "sim/stats.hpp"
#include "soak.hpp"

namespace {

constexpr int kDefaultScenarios = 1000;

}  // namespace

int main(int argc, char** argv) {
  using namespace nicmcast;

  harness::BenchOptions options =
      harness::parse_bench_options(argc, argv, "soak");
  const int scenarios =
      options.iterations_or(kDefaultScenarios);

  harness::print_header(
      "Chaos soak: randomized workloads under stateful fault injection",
      "protocol invariants from the reliability design (paper sect. 6)");

  std::vector<harness::RunSpec> specs;
  specs.reserve(static_cast<std::size_t>(scenarios));
  for (int i = 0; i < scenarios; ++i) {
    harness::RunSpec spec;
    spec.experiment = harness::Experiment::kCustom;
    spec.seed = harness::derive_seed(options.base_seed,
                                     static_cast<std::size_t>(i));
    const soak::SoakSpec derived = soak::make_spec(spec.seed);
    spec.label = std::string("soak/") + soak::to_string(derived.injector);
    spec.nodes = derived.nodes;
    spec.message_bytes = derived.message_bytes;
    spec.iterations = 1;
    spec.warmup = 0;
    specs.push_back(std::move(spec));
  }

  // The runner re-derives the same seeds; keep derive_seeds on so --threads
  // never changes which scenario an index maps to.
  const harness::ParallelRunner runner(harness::runner_options(options));
  const std::vector<harness::RunResult> results =
      runner.run(specs, [](const harness::RunSpec& spec) {
        const soak::SoakResult r = soak::run_soak_seed(spec.seed);
        harness::RunResult out;
        out.spec = spec;
        out.set_metric("ok", r.ok ? 1.0 : 0.0);
        out.set_metric("retransmissions",
                       static_cast<double>(r.retransmissions));
        out.set_metric("conn_resets", static_cast<double>(r.conn_resets));
        out.set_metric("conns_reclaimed",
                       static_cast<double>(r.conns_reclaimed));
        out.set_metric("data_sent", static_cast<double>(r.ledger.data_sent));
        out.set_metric("data_accepted",
                       static_cast<double>(r.ledger.data_accepted));
        out.set_metric("ctrl_sent", static_cast<double>(r.ledger.ctrl_sent));
        return out;
      });

  std::map<std::string, sim::OnlineStats> retx_per_family;
  std::vector<std::uint64_t> failed_seeds;
  for (const harness::RunResult& result : results) {
    sim::OnlineStats one;
    one.add(result.metric("retransmissions"));
    retx_per_family[result.spec.label].merge(one);
    if (result.metric("ok") != 1.0) failed_seeds.push_back(result.spec.seed);
  }

  sim::OnlineStats total;
  for (const auto& [family, retx] : retx_per_family) {
    std::printf("  %-18s %5zu scenarios | retx mean %7.1f max %6.0f\n",
                family.c_str(), retx.count(), retx.mean(), retx.max());
    total.merge(retx);
  }
  std::printf("  %-18s %5zu scenarios, %zu failed | retx mean %7.1f\n",
              "total", total.count(), failed_seeds.size(), total.mean());

  for (const std::uint64_t seed : failed_seeds) {
    // Deterministic: replaying the seed reproduces and shrinks the failure.
    const soak::SoakResult r = soak::run_soak_seed(seed);
    std::printf("FAIL seed %llu: %s\n",
                static_cast<unsigned long long>(seed), r.failure.c_str());
  }

  harness::write_bench_json("soak", options, results);
  return failed_seeds.empty() ? 0 : 1;
}

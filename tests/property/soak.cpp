#include "soak.hpp"

#include <algorithm>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "gm/cluster.hpp"
#include "gm/port.hpp"
#include "harness/experiment_util.hpp"
#include "mcast/bcast.hpp"
#include "mcast/tree.hpp"
#include "net/fault_model.hpp"
#include "sim/random.hpp"

namespace nicmcast::soak {

namespace {

constexpr net::GroupId kGroup = 1;
constexpr nic::SeqNum kWrapStart = 0xFFFFFFF4u;  // wraps within ~12 packets

gm::Payload make_payload(std::size_t n, std::uint8_t salt) {
  return harness::make_payload(n, salt);
}

gm::Payload lane(std::int64_t v) {
  gm::Payload p(8);
  for (int i = 0; i < 8; ++i) {
    p[i] = std::byte{static_cast<std::uint8_t>(
        static_cast<std::uint64_t>(v) >> (8 * i))};
  }
  return p;
}

std::size_t unicast_size(std::uint32_t tag) {
  return 40 + (static_cast<std::size_t>(tag) * 13) % 260;
}

gm::Payload unicast_payload(std::uint32_t tag) {
  return make_payload(unicast_size(tag), static_cast<std::uint8_t>(tag));
}

std::unique_ptr<net::FaultInjector> make_injector(const SoakSpec& spec,
                                                  sim::Simulator& sim) {
  // Fault intensities are bounded so no operation ever hits the
  // max_retries give-up: drop probabilities stay well below the ~0.3 that
  // would make 30 consecutive losses plausible, and blackout windows are
  // far shorter than max_retries * retransmit_timeout (~30 ms).
  sim::Rng rng(spec.seed ^ 0x9e3779b97f4a7c15ULL);
  switch (spec.injector) {
    case InjectorFamily::kNone:
      return nullptr;
    case InjectorFamily::kUniform:
      return std::make_unique<net::RandomFaults>(
          rng.uniform(0.02, 0.25), rng.uniform(0.0, 0.08), rng.fork());
    case InjectorFamily::kBurst: {
      net::GilbertElliottFaults::Params params;
      params.p_good_to_bad = rng.uniform(0.005, 0.03);
      params.p_bad_to_good = rng.uniform(0.15, 0.4);
      params.good_drop = rng.uniform(0.0, 0.02);
      params.bad_drop = rng.uniform(0.4, 0.9);
      params.bad_corrupt = rng.uniform(0.0, 0.1);
      return std::make_unique<net::GilbertElliottFaults>(params, rng.fork());
    }
    case InjectorFamily::kBlackout: {
      auto blackout = std::make_unique<net::BlackoutFaults>(
          [&sim] { return sim.now(); });
      const int windows = static_cast<int>(rng.uniform_int(1, 2));
      sim::TimePoint at = sim::TimePoint{} + sim::usec(rng.uniform(200, 900));
      for (int w = 0; w < windows; ++w) {
        const sim::Duration len = sim::usec(rng.uniform(200, 2500));
        net::LinkFilter filter;
        if (rng.chance(0.5) && spec.nodes > 1) {
          // Half the windows darken one specific link direction.
          filter.src = static_cast<net::NodeId>(
              rng.uniform_int(0, static_cast<std::int64_t>(spec.nodes) - 1));
          filter.dst = static_cast<net::NodeId>(
              rng.uniform_int(0, static_cast<std::int64_t>(spec.nodes) - 1));
        }
        blackout->add_window(at, at + len, filter);
        at = at + len + sim::usec(rng.uniform(500, 3000));
      }
      if (rng.chance(0.5)) {
        // Stack light background noise under the outages.
        auto composite = std::make_unique<net::CompositeFaults>();
        composite->add(std::move(blackout));
        composite->add(std::make_unique<net::RandomFaults>(
            rng.uniform(0.0, 0.05), rng.uniform(0.0, 0.02), rng.fork()));
        return composite;
      }
      return blackout;
    }
    case InjectorFamily::kAckTargeted: {
      net::LinkFilter filter;
      filter.traffic = net::TrafficClass::kAck;
      return std::make_unique<net::TargetedFaults>(
          filter, std::make_unique<net::RandomFaults>(
                      rng.uniform(0.15, 0.45), 0.0, rng.fork()));
    }
  }
  return nullptr;
}

mcast::Tree build_tree(const SoakSpec& spec) {
  const auto dests =
      harness::everyone_but(0, spec.nodes);
  switch (spec.tree) {
    case SoakSpec::Shape::kChain:
      return mcast::build_chain_tree(0, dests);
    case SoakSpec::Shape::kFlat:
      return mcast::build_flat_tree(0, dests);
    case SoakSpec::Shape::kBinomial:
      break;
  }
  return mcast::build_binomial_tree(0, dests);
}

struct Workload {
  std::vector<std::pair<net::NodeId, net::NodeId>> pairs;
  std::vector<net::NodeId> multisend_dests;
};

Workload derive_workload(const SoakSpec& spec) {
  sim::Rng rng(spec.seed ^ 0xc2b2ae3d27d4eb4fULL);
  Workload w;
  const auto n = static_cast<std::int64_t>(spec.nodes);
  for (int p = 0; p < spec.unicast_pairs; ++p) {
    const auto a = static_cast<net::NodeId>(rng.uniform_int(0, n - 1));
    auto b = static_cast<net::NodeId>(rng.uniform_int(0, n - 1));
    if (b == a) b = static_cast<net::NodeId>((b + 1) % spec.nodes);
    w.pairs.emplace_back(a, b);
  }
  if (spec.multisend) {
    const auto fanout = rng.uniform_int(1, std::min<std::int64_t>(5, n - 1));
    std::vector<net::NodeId> others = harness::everyone_but(0, spec.nodes);
    for (std::int64_t k = 0; k < fanout; ++k) {
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(others.size()) - 1));
      w.multisend_dests.push_back(others[pick]);
      others.erase(others.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    std::sort(w.multisend_dests.begin(), w.multisend_dests.end());
  }
  return w;
}

struct Shared {
  SoakSpec spec;
  mcast::Tree tree;
  Workload work;
  harness::SimBarrier barrier;
  std::vector<std::string> failures;
  std::size_t finished = 0;

  Shared(SoakSpec s, mcast::Tree t, Workload w)
      : spec(std::move(s)), tree(std::move(t)), work(std::move(w)),
        barrier(spec.nodes) {}

  void fail(net::NodeId me, const std::string& what) {
    failures.push_back("node" + std::to_string(me) + ": " + what);
  }
};

sim::Task<void> node_program(gm::Cluster& cl, net::NodeId me,
                             std::shared_ptr<Shared> sh) {
  const SoakSpec& spec = sh->spec;

  for (int round = 0; round < spec.rounds; ++round) {
    co_await sh->barrier.arrive();
    if (spec.barrier) co_await cl.port(me).nic_barrier(kGroup);
    gm::Payload data;
    if (me == sh->tree.root()) {
      data = make_payload(spec.message_bytes,
                          static_cast<std::uint8_t>(round));
    }
    const gm::Payload got =
        co_await mcast::nic_bcast(cl.port(me), sh->tree, kGroup,
                                  std::move(data),
                                  static_cast<std::uint32_t>(round));
    if (got != make_payload(spec.message_bytes,
                            static_cast<std::uint8_t>(round))) {
      sh->fail(me, "bcast round " + std::to_string(round) +
                       " payload mismatch");
    }
  }

  // Point-to-point chatter on port 1 (kept off port 0 so it cannot steal
  // the broadcast deliveries).
  co_await sh->barrier.arrive();
  for (std::size_t p = 0; p < sh->work.pairs.size(); ++p) {
    const auto [src, dst] = sh->work.pairs[p];
    for (int m = 0; m < spec.msgs_per_pair; ++m) {
      const auto tag =
          static_cast<std::uint32_t>(1000 + p * 16 + static_cast<std::size_t>(m));
      if (me == src) {
        const gm::SendStatus status =
            co_await cl.port(me, 1).send(dst, 1, unicast_payload(tag), tag);
        if (status != gm::SendStatus::kOk) {
          sh->fail(me, "unicast tag " + std::to_string(tag) + " failed");
        }
      }
    }
  }
  {
    std::size_t expected = 0;
    for (const auto& [src, dst] : sh->work.pairs) {
      if (dst == me) expected += static_cast<std::size_t>(spec.msgs_per_pair);
    }
    for (std::size_t k = 0; k < expected; ++k) {
      const gm::RecvMessage msg = co_await cl.port(me, 1).receive();
      if (msg.data != unicast_payload(msg.tag)) {
        sh->fail(me, "unicast tag " + std::to_string(msg.tag) +
                         " payload mismatch");
      }
    }
  }

  // One NIC-based multisend fan-out on port 2.
  co_await sh->barrier.arrive();
  if (spec.multisend) {
    const auto& dests = sh->work.multisend_dests;
    if (me == 0) {
      const gm::SendStatus status = co_await cl.port(me, 2).multisend(
          dests, 2, make_payload(spec.message_bytes, 0xAB), 7777);
      if (status != gm::SendStatus::kOk) sh->fail(me, "multisend failed");
    } else if (std::find(dests.begin(), dests.end(), me) != dests.end()) {
      const gm::RecvMessage msg = co_await cl.port(me, 2).receive();
      if (msg.data != make_payload(spec.message_bytes, 0xAB)) {
        sh->fail(me, "multisend payload mismatch");
      }
    }
  }

  // NIC-level reduction over the same group tree.
  if (spec.reduce) {
    co_await sh->barrier.arrive();
    const gm::Payload out =
        co_await cl.port(me).nic_reduce(kGroup, lane(me + 1));
    if (me == sh->tree.root()) {
      const auto n = static_cast<std::int64_t>(sh->spec.nodes);
      if (out != lane(n * (n + 1) / 2)) sh->fail(me, "reduce sum wrong");
    }
  }

  ++sh->finished;
}

void seed_wrap_sequences(gm::Cluster& cluster, const Workload& work) {
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    cluster.nic(i).debug_set_group_seq(kGroup, kWrapStart);
  }
  for (const auto& [src, dst] : work.pairs) {
    cluster.nic(src).debug_set_send_seq(1, dst, 1, kWrapStart);
    cluster.nic(dst).debug_set_recv_seq(1, src, 1, kWrapStart);
  }
  for (const net::NodeId dst : work.multisend_dests) {
    cluster.nic(0).debug_set_send_seq(2, dst, 2, kWrapStart);
    cluster.nic(dst).debug_set_recv_seq(2, 0, 2, kWrapStart);
  }
}

}  // namespace

const char* to_string(InjectorFamily family) {
  switch (family) {
    case InjectorFamily::kNone: return "none";
    case InjectorFamily::kUniform: return "uniform";
    case InjectorFamily::kBurst: return "burst";
    case InjectorFamily::kBlackout: return "blackout";
    case InjectorFamily::kAckTargeted: return "ack-targeted";
  }
  return "?";
}

std::string SoakSpec::describe() const {
  std::string s = "seed=" + std::to_string(seed);
  s += " nodes=" + std::to_string(nodes);
  s += clos ? " clos" : " switch";
  s += tree == Shape::kBinomial ? " binomial"
       : tree == Shape::kChain  ? " chain"
                                : " flat";
  s += std::string(" inj=") + to_string(injector);
  s += " rounds=" + std::to_string(rounds);
  s += " bytes=" + std::to_string(message_bytes);
  s += " pairs=" + std::to_string(unicast_pairs) + "x" +
       std::to_string(msgs_per_pair);
  if (multisend) s += " multisend";
  if (barrier) s += " barrier";
  if (reduce) s += " reduce";
  if (wrap_seqs) s += " wrap";
  if (idle_gc) s += " gc";
  return s;
}

SoakSpec make_spec(std::uint64_t seed) {
  sim::Rng rng(seed ^ 0x50a6b83b9c5d2f11ULL);
  SoakSpec s;
  s.seed = seed;
  s.nodes = static_cast<std::size_t>(rng.uniform_int(4, 20));
  s.clos = rng.chance(0.4);
  const auto shape = rng.uniform_int(0, 2);
  s.tree = shape == 0   ? SoakSpec::Shape::kBinomial
           : shape == 1 ? SoakSpec::Shape::kChain
                        : SoakSpec::Shape::kFlat;
  constexpr InjectorFamily kFamilies[] = {
      InjectorFamily::kUniform, InjectorFamily::kBurst,
      InjectorFamily::kBlackout, InjectorFamily::kAckTargeted};
  s.injector = kFamilies[rng.uniform_int(0, 3)];
  s.rounds = static_cast<int>(rng.uniform_int(2, 5));
  constexpr std::size_t kSizes[] = {1, 64, 500, 4096, 9000};
  s.message_bytes = kSizes[rng.uniform_int(0, 4)];
  s.unicast_pairs = static_cast<int>(rng.uniform_int(0, 3));
  s.msgs_per_pair = static_cast<int>(rng.uniform_int(1, 4));
  s.multisend = rng.chance(0.5);
  s.barrier = rng.chance(0.5);
  s.reduce = rng.chance(0.5);
  s.wrap_seqs = rng.chance(0.3);
  s.idle_gc = rng.chance(0.5);
  return s;
}

SoakResult run_soak(const SoakSpec& spec) {
  SoakResult result;

  gm::ClusterConfig config;
  config.nodes = spec.nodes;
  config.wiring = spec.clos ? gm::ClusterConfig::Wiring::kClos
                            : gm::ClusterConfig::Wiring::kSingleSwitch;
  config.switch_radix = spec.clos ? 8 : 16;
  config.seed = spec.seed;
  if (spec.idle_gc) {
    // Must exceed the retransmit window or a lossy-but-alive connection
    // would close mid-recovery.
    config.nic.conn_idle_timeout = sim::msec(3);
  }
  gm::Cluster cluster(config);

  nic::ProtocolAuditor auditor;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    cluster.nic(i).set_auditor(&auditor);
  }
  if (auto injector = make_injector(spec, cluster.simulator())) {
    cluster.network().set_fault_injector(std::move(injector));
  }

  auto shared = std::make_shared<Shared>(spec, build_tree(spec),
                                         derive_workload(spec));
  mcast::install_group(cluster, shared->tree, kGroup);
  if (spec.wrap_seqs) seed_wrap_sequences(cluster, shared->work);

  // Pre-post every receive buffer the workload can need.
  const std::size_t bcast_cap = std::max<std::size_t>(spec.message_bytes, 64);
  for (std::size_t node = 1; node < spec.nodes; ++node) {
    cluster.port(node).provide_receive_buffers(
        static_cast<std::size_t>(spec.rounds), bcast_cap);
  }
  for (std::size_t node = 0; node < spec.nodes; ++node) {
    std::size_t incoming = 0;
    for (const auto& [src, dst] : shared->work.pairs) {
      if (dst == node) {
        incoming += static_cast<std::size_t>(spec.msgs_per_pair);
      }
    }
    if (incoming > 0) {
      cluster.port(node, 1).provide_receive_buffers(incoming, 512);
    }
  }
  for (const net::NodeId dst : shared->work.multisend_dests) {
    cluster.port(dst, 2).provide_receive_buffers(1, bcast_cap);
  }

  cluster.run_on_all([shared](gm::Cluster& cl,
                              net::NodeId me) -> sim::Task<void> {
    return node_program(cl, me, shared);
  });
  try {
    cluster.run();
  } catch (const std::exception& e) {
    shared->failures.push_back(std::string("exception: ") + e.what());
  }

  if (shared->finished != spec.nodes) {
    shared->failures.push_back(
        "workload wedged: " + std::to_string(shared->finished) + "/" +
        std::to_string(spec.nodes) + " nodes finished");
  }
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    auditor.check_drained(cluster.nic(i));
    result.retransmissions += cluster.nic(i).stats().retransmissions;
    result.conn_resets += cluster.nic(i).stats().conn_resets;
    result.conns_reclaimed += cluster.nic(i).stats().conns_reclaimed;
    if (spec.idle_gc) {
      if (cluster.nic(i).debug_sender_conn_count() != 0 ||
          cluster.nic(i).debug_receiver_conn_count() != 0) {
        shared->failures.push_back(
            "node" + std::to_string(i) + ": connection maps not reclaimed (" +
            std::to_string(cluster.nic(i).debug_sender_conn_count()) + " tx, " +
            std::to_string(cluster.nic(i).debug_receiver_conn_count()) +
            " rx)");
      }
    }
  }

  result.events_executed = cluster.simulator().queue_stats().executed;
  result.event_order_hash = cluster.simulator().event_order_hash();
  result.routes_materialized =
      cluster.network().route_stats().routes_materialized;
  // The workload is tree- and pair-structured, so the lazy RouteTable must
  // never end up computing the full all-pairs table; if it does, something
  // reintroduced an eager all_routes()-style walk.
  const std::uint64_t full_pairs =
      static_cast<std::uint64_t>(spec.nodes) * (spec.nodes - 1);
  if (spec.nodes >= 8 && result.routes_materialized >= full_pairs) {
    shared->failures.push_back(
        "route table fully materialized: " +
        std::to_string(result.routes_materialized) + "/" +
        std::to_string(full_pairs) + " pairs");
  }
  result.ledger = auditor.ledger();
  result.ok = shared->failures.empty() && auditor.ok();
  if (!result.ok) {
    result.failure = spec.describe() + " | ";
    result.failure +=
        !shared->failures.empty() ? shared->failures.front()
                                  : auditor.violations().front();
  }
  return result;
}

SoakResult run_soak_seed(std::uint64_t seed) {
  const SoakSpec original = make_spec(seed);
  SoakResult result = run_soak(original);
  if (result.ok) return result;

  // Greedy deterministic shrink: keep a simplification only when the
  // variant still fails, so the reported spec is a minimal reproduction.
  SoakSpec spec = original;
  const auto try_shrink = [&spec, &result](auto&& mutate) {
    SoakSpec candidate = spec;
    mutate(candidate);
    const SoakResult r = run_soak(candidate);
    if (!r.ok) {
      spec = candidate;
      result = r;
    }
  };
  try_shrink([](SoakSpec& s) { s.reduce = false; });
  try_shrink([](SoakSpec& s) { s.multisend = false; });
  try_shrink([](SoakSpec& s) { s.barrier = false; });
  try_shrink([](SoakSpec& s) { s.unicast_pairs = 0; });
  try_shrink([](SoakSpec& s) { s.wrap_seqs = false; });
  try_shrink([](SoakSpec& s) { s.idle_gc = false; });
  try_shrink([](SoakSpec& s) { s.rounds = 1; });
  try_shrink([](SoakSpec& s) {
    s.message_bytes = std::min<std::size_t>(s.message_bytes, 64);
  });
  try_shrink([](SoakSpec& s) {
    s.nodes = 4;
    s.clos = false;
  });
  try_shrink([](SoakSpec& s) { s.injector = InjectorFamily::kNone; });
  return result;
}

}  // namespace nicmcast::soak

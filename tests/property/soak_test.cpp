// Deterministic slice of the chaos soak, run under ctest.
//
// Each test sweeps a fixed seed range through run_soak_seed; the full-size
// randomized campaign lives in the soak_driver binary (see CI's soak job,
// which runs it with --iters 1000).  Fixed seeds keep this suite
// reproducible: a failure here is a (seed, shrunk-spec) reproduction, not a
// flake.
#include <cstdint>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "soak.hpp"

namespace nicmcast::soak {
namespace {

void sweep(std::uint64_t first, std::uint64_t last) {
  for (std::uint64_t seed = first; seed <= last; ++seed) {
    const SoakResult result = run_soak_seed(seed);
    EXPECT_TRUE(result.ok) << "soak seed " << seed << " failed: "
                           << result.failure;
    if (!result.ok) return;  // one minimal reproduction is enough
  }
}

TEST(Soak, SeedsBatchA) { sweep(1, 25); }
TEST(Soak, SeedsBatchB) { sweep(26, 50); }
TEST(Soak, SeedsBatchC) { sweep(51, 75); }

TEST(Soak, SpecGeneratorCoversEveryFamilyAndFeature) {
  std::set<InjectorFamily> families;
  bool clos = false, wrap = false, gc = false, reduce = false;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    const SoakSpec spec = make_spec(seed);
    EXPECT_NE(spec.injector, InjectorFamily::kNone);
    EXPECT_GE(spec.nodes, 4u);
    families.insert(spec.injector);
    clos |= spec.clos;
    wrap |= spec.wrap_seqs;
    gc |= spec.idle_gc;
    reduce |= spec.reduce;
  }
  EXPECT_GE(families.size(), 3u) << "seed derivation must span >=3 injector "
                                    "families per 100 seeds";
  EXPECT_TRUE(clos && wrap && gc && reduce);
}

TEST(Soak, DescribeIsRoundTrippableByEye) {
  const SoakSpec spec = make_spec(7);
  const std::string text = spec.describe();
  EXPECT_NE(text.find("seed=7"), std::string::npos);
  EXPECT_NE(text.find("nodes="), std::string::npos);
  EXPECT_NE(text.find("inj="), std::string::npos);
}

}  // namespace
}  // namespace nicmcast::soak

// Determinism golden test: the executed (time, seq) event order of a
// fixed-seed soak is pinned by hash.
//
// The engine's FIFO tie-break at equal timestamps is load-bearing — every
// BENCH_*.json trajectory assumes a fixed seed replays the exact same
// event sequence.  These tests fail loudly if an engine change (queue
// storage, pooling, callback representation) perturbs that order.  If a
// change is *supposed* to alter scheduling (new protocol timer, different
// event shape), re-derive the constants with the probe below and say so in
// the commit message:
//
//   for seed in {1, 7, 42}: run_soak(make_spec(seed)) and print
//   event_order_hash / events_executed.
#include <cstdint>

#include <gtest/gtest.h>

#include "soak.hpp"

namespace nicmcast::soak {
namespace {

struct Golden {
  std::uint64_t seed;
  std::uint64_t event_order_hash;
  std::uint64_t events_executed;
};

// Derived once from the engine described in DESIGN.md ("Engine internals &
// memory model"); equal on every platform because the simulator never
// consults wall-clock time, iteration order of unordered containers, or
// addresses for scheduling decisions.
constexpr Golden kGolden[] = {
    {1, 0x7f7422b0c6250846ULL, 1519ULL},
    {7, 0xe0fe31b7e2581a90ULL, 718ULL},
    {42, 0xf841c47861abaed2ULL, 679ULL},
};

TEST(Determinism, FixedSeedSoakMatchesGoldenEventOrder) {
  for (const Golden& golden : kGolden) {
    const SoakResult result = run_soak(make_spec(golden.seed));
    ASSERT_TRUE(result.ok) << "soak seed " << golden.seed
                           << " failed: " << result.failure;
    EXPECT_EQ(result.event_order_hash, golden.event_order_hash)
        << "seed " << golden.seed
        << ": executed event order diverged from the pinned golden run";
    EXPECT_EQ(result.events_executed, golden.events_executed)
        << "seed " << golden.seed;
  }
}

TEST(Determinism, RepeatedRunsAreBitIdentical) {
  const SoakSpec spec = make_spec(13);
  const SoakResult first = run_soak(spec);
  const SoakResult second = run_soak(spec);
  ASSERT_TRUE(first.ok) << first.failure;
  EXPECT_EQ(first.event_order_hash, second.event_order_hash);
  EXPECT_EQ(first.events_executed, second.events_executed);
  EXPECT_EQ(first.retransmissions, second.retransmissions);
  EXPECT_EQ(first.ledger.data_sent, second.ledger.data_sent);
  EXPECT_EQ(first.ledger.events_delivered, second.ledger.events_delivered);
}

}  // namespace
}  // namespace nicmcast::soak

// Sharded-PDES determinism goldens: the per-shard hash vectors of the
// fig5-like, reliability and scale scenarios are pinned per shard count.
//
// The determinism contract for the --shards axis (DESIGN.md §4.5):
//   - shards == 1 dispatches to the classic sequential engine, so its
//     event_order_hash golden here is the same one every BENCH_*.json
//     already pins;
//   - shards > 1 cannot reproduce the sequential hash (event sequence
//     numbers are assigned per shard, so the interleaving is different by
//     construction) — instead each (scenario, shard count) pins its
//     per-shard hash vector, which IS reproducible: cross-shard messages
//     are merged in (when, src_shard, send_seq) order, never in thread
//     arrival order;
//   - protocol totals (deliveries, retransmissions, drops) are invariant
//     across shard counts, because loss is a counter hash applied at the
//     receiver.
//
// If an intentional fabric change re-times events, re-derive the constants
// with the DISABLED_PrintGoldens probe below and say so in the commit
// message:
//
//   ./test_property_sharded --gtest_also_run_disabled_tests
//       --gtest_filter='*PrintGoldens*'
#include <cstdint>
#include <cstdio>
#include <vector>

#include <gtest/gtest.h>

#include "harness/run_result.hpp"
#include "harness/run_spec.hpp"
#include "harness/runners.hpp"

namespace nicmcast::harness {
namespace {

RunSpec fig5_like() {
  RunSpec spec;
  spec.experiment = Experiment::kGmMulticast;
  spec.nodes = 64;
  spec.wiring = Wiring::kClos;
  spec.switch_radix = 16;
  spec.message_bytes = 512;
  spec.tree = TreeShape::kPostal;
  spec.warmup = 1;
  spec.iterations = 3;
  spec.seed = 1;
  return spec;
}

RunSpec reliability() {
  RunSpec spec = fig5_like();
  spec.nodes = 128;
  spec.tree = TreeShape::kBinomial;
  spec.loss_rate = 0.02;
  spec.seed = 7;
  return spec;
}

RunSpec scale() {
  RunSpec spec = fig5_like();
  spec.nodes = 256;
  spec.message_bytes = 4096;
  spec.seed = 42;
  return spec;
}

struct Golden {
  const char* name;
  RunSpec (*spec)();
  /// Classic-engine hash at shards == 1 (the pre-axis behaviour).
  std::uint64_t sequential_hash;
  /// Per-shard hash vectors for shards = 2, 4, 8 (index 0, 1, 2).
  std::vector<std::vector<std::uint64_t>> shard_hashes;
};

const std::size_t kShardCounts[] = {2, 4, 8};

std::vector<Golden> goldens();  // constants at the bottom of the file

RunResult run_with_shards(RunSpec spec, std::size_t shards) {
  spec.shards = shards;
  return run_one(spec);
}

TEST(ShardedDeterminism, SequentialHashUnchangedByTheShardsAxis) {
  for (const Golden& g : goldens()) {
    const RunResult r = run_with_shards(g.spec(), 1);
    EXPECT_EQ(r.engine.event_order_hash, g.sequential_hash)
        << g.name << ": --shards 1 must be bit-identical to the classic "
        << "engine (every checked-in BENCH hash depends on it)";
    EXPECT_EQ(r.engine.shard_count, 0u)
        << g.name << ": shards == 1 must not enter the sharded fabric";
  }
}

TEST(ShardedDeterminism, PerShardHashVectorsMatchGoldens) {
  for (const Golden& g : goldens()) {
    for (std::size_t i = 0; i < std::size(kShardCounts); ++i) {
      const std::size_t shards = kShardCounts[i];
      const RunResult r = run_with_shards(g.spec(), shards);
      ASSERT_EQ(r.engine.shard_order_hashes.size(), shards)
          << g.name << " s" << shards;
      EXPECT_EQ(r.engine.shard_order_hashes, g.shard_hashes[i])
          << g.name << " s" << shards
          << ": per-shard event order diverged from the pinned golden";
    }
  }
}

TEST(ShardedDeterminism, RepeatedShardedRunsAreBitIdentical) {
  const RunSpec spec = reliability();
  const RunResult a = run_with_shards(spec, 4);
  const RunResult b = run_with_shards(spec, 4);
  EXPECT_EQ(a.engine.shard_order_hashes, b.engine.shard_order_hashes);
  EXPECT_EQ(a.engine.event_order_hash, b.engine.event_order_hash);
  EXPECT_EQ(a.engine.cross_shard_msgs, b.engine.cross_shard_msgs);
  EXPECT_EQ(a.engine.lbts_rounds, b.engine.lbts_rounds);
  EXPECT_EQ(a.nic_totals.retransmissions, b.nic_totals.retransmissions);
}

TEST(ShardedDeterminism, ProtocolTotalsInvariantAcrossShardCounts) {
  // Lossy scenario: the counter-hash loss model must keep every protocol
  // total identical no matter how the fabric is partitioned.
  const RunSpec spec = reliability();
  const RunResult base = run_with_shards(spec, 2);
  EXPECT_GT(base.nic_totals.retransmissions, 0u);
  for (const std::size_t shards : {4u, 8u}) {
    const RunResult r = run_with_shards(spec, shards);
    EXPECT_EQ(r.metric("deliveries"), base.metric("deliveries")) << shards;
    EXPECT_EQ(r.nic_totals.packets_sent, base.nic_totals.packets_sent);
    EXPECT_EQ(r.nic_totals.retransmissions, base.nic_totals.retransmissions);
    EXPECT_EQ(r.nic_totals.crc_drops, base.nic_totals.crc_drops);
    EXPECT_EQ(r.metric("delivered"), 1.0) << shards;
  }
}

// Probe: prints the golden table in source form.  Not a test.
TEST(ShardedDeterminism, DISABLED_PrintGoldens) {
  for (const Golden& g : goldens()) {
    const RunResult seq = run_with_shards(g.spec(), 1);
    std::printf("{\"%s\", ..., 0x%016llxULL,\n {\n", g.name,
                static_cast<unsigned long long>(seq.engine.event_order_hash));
    for (const std::size_t shards : kShardCounts) {
      const RunResult r = run_with_shards(g.spec(), shards);
      std::printf("  {");
      for (const std::uint64_t h : r.engine.shard_order_hashes) {
        std::printf("0x%016llxULL, ", static_cast<unsigned long long>(h));
      }
      std::printf("},\n");
    }
    std::printf(" }},\n");
  }
}

// Golden constants, derived with the probe above.  Machine-independent:
// neither engine consults wall-clock time, container iteration order or
// addresses for scheduling decisions.
std::vector<Golden> goldens() {
  return {
      {"fig5", &fig5_like, 0x49867466cebdf50dULL,
       {
           {0x0d0c91cd6c692b1dULL, 0x193832c801327f05ULL},
           {0xdba2a14634efb5c5ULL, 0xeec311bc170ffab9ULL,
            0xf7c70fabdcf17141ULL, 0x2ed3bc1976f140e1ULL},
           {0xebd87c22fd995da9ULL, 0x8c1dc44108f361c1ULL,
            0x2e27a34862e16b71ULL, 0x823c90cbab5cb281ULL,
            0xdfe0b6798a97d88dULL, 0x3e073ce5db723345ULL,
            0xb78cb37c788e4a65ULL, 0xf8a078febd9f86c1ULL},
       }},
      {"reliability", &reliability, 0x82e9c57c0a14e0b6ULL,
       {
           {0xd136f87c6d646066ULL, 0xa1a973ea2889378fULL},
           {0x9d2a1835c5f706e4ULL, 0xf389253b1e568d4fULL,
            0x940591a6a5488675ULL, 0x7c0f5a7a23fe5f82ULL},
           {0x9451124d991c2916ULL, 0x295e6b9aab6c1cd5ULL,
            0x5f1a298e30586cfdULL, 0x03669b9398ce0dd1ULL,
            0xfcc82dd9cb370f61ULL, 0xbe7fcbe91f84f7bbULL,
            0x7867601e4eac5dd1ULL, 0xdbab5b2e9c5fdae2ULL},
       }},
      {"scale", &scale, 0x60733a4a1fbf86f5ULL,
       {
           {0x1daa3e3239ec9cc1ULL, 0x42d0e0dedce1dd55ULL},
           {0x268dc8877fcf2885ULL, 0x0ed2a02e2075a4d1ULL,
            0x940197ba31a616b9ULL, 0x5a0e12c5ac041755ULL},
           {0xf71dde054660c011ULL, 0x9b78aaa2e9cec045ULL,
            0xb4c5b84c8477d4fdULL, 0xc01236b71cda1cadULL,
            0x2f463aec81b58505ULL, 0x78edf7af7eabc445ULL,
            0x99cf9262d7fd3e5dULL, 0x1db9b6220aae5d5dULL},
       }},
  };
}

}  // namespace
}  // namespace nicmcast::harness

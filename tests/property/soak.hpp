// Chaos soak: randomized multicast/unicast/collective workloads run under
// stateful fault injectors with the ProtocolAuditor attached to every NIC.
//
// One soak scenario = one seed.  The seed deterministically derives a
// SoakSpec (cluster size and wiring, tree shape, injector family and its
// parameters, workload mix, whether sequence spaces start just below the
// 2^32 wrap, whether idle-connection GC is on); run_soak executes it and
// checks, at drain:
//   - every workload coroutine finished (nothing wedged),
//   - every payload arrived exactly once, in order, bit-exact,
//   - every ProtocolAuditor invariant held (packet ledger, token/rx-buffer
//     conservation, per-stream exactly-once acceptance, timer quiescence),
//   - with GC enabled, the connection maps drained to zero.
//
// run_soak_seed wraps run_soak with a deterministic greedy shrink: on
// failure it re-runs progressively simpler variants of the spec and reports
// the smallest one that still fails, so a soak hit arrives as a minimal
// (seed, spec) reproduction rather than a 20-node haystack.
#pragma once

#include <cstdint>
#include <string>

#include "nic/auditor.hpp"

namespace nicmcast::soak {

enum class InjectorFamily : std::uint8_t {
  kNone,        // perfect fabric (shrinking only; never drawn randomly)
  kUniform,     // i.i.d. RandomFaults
  kBurst,       // Gilbert–Elliott bursty loss
  kBlackout,    // time-windowed total/filtered outages (+ light background)
  kAckTargeted  // loss restricted to the acknowledgment path
};

[[nodiscard]] const char* to_string(InjectorFamily family);

struct SoakSpec {
  std::uint64_t seed = 1;
  std::size_t nodes = 8;
  bool clos = false;  // multistage Clos wiring instead of a single switch
  enum class Shape : std::uint8_t { kBinomial, kChain, kFlat } tree =
      Shape::kBinomial;
  InjectorFamily injector = InjectorFamily::kUniform;
  int rounds = 3;                  // broadcast rounds
  std::size_t message_bytes = 64;  // broadcast payload size
  int unicast_pairs = 1;           // concurrent point-to-point streams
  int msgs_per_pair = 2;
  bool multisend = false;  // one NIC-based multisend fan-out
  bool barrier = false;    // NIC barrier at the top of every round
  bool reduce = false;     // NIC reduction after the rounds
  bool wrap_seqs = false;  // start sequence spaces just below 2^32
  bool idle_gc = false;    // enable conn_idle_timeout reclaim

  [[nodiscard]] std::string describe() const;
};

/// Deterministically derives a randomized scenario from a seed.
[[nodiscard]] SoakSpec make_spec(std::uint64_t seed);

struct SoakResult {
  bool ok = false;
  /// Empty when ok; otherwise the first failure, prefixed with the
  /// describe() of the (possibly shrunk) spec that produced it.
  std::string failure;
  nic::ProtocolAuditor::Ledger ledger;
  std::uint64_t retransmissions = 0;
  std::uint64_t conn_resets = 0;
  std::uint64_t conns_reclaimed = 0;
  /// Simulator events executed to drain the scenario (throughput metric).
  std::uint64_t events_executed = 0;
  /// Deterministic hash of the executed (time, seq) event order: equal
  /// seeds must yield equal hashes, before and after engine changes.
  std::uint64_t event_order_hash = 0;
  /// (src, dst) routes the lazy RouteTable actually computed; a full
  /// all-pairs materialization here is itself an invariant violation.
  std::uint64_t routes_materialized = 0;
};

/// Runs one scenario to drain and checks every invariant.
[[nodiscard]] SoakResult run_soak(const SoakSpec& spec);

/// make_spec + run_soak; on failure, greedily shrinks the spec and reports
/// the smallest still-failing variant.
[[nodiscard]] SoakResult run_soak_seed(std::uint64_t seed);

}  // namespace nicmcast::soak

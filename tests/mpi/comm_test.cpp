#include "mpi/comm.hpp"

#include <gtest/gtest.h>

namespace nicmcast::mpi {
namespace {

TEST(Comm, RankNodeMapping) {
  const Comm c(3, {5, 2, 9});
  EXPECT_EQ(c.size(), 3);
  EXPECT_EQ(c.context(), 3);
  EXPECT_EQ(c.node_of(0), 5);
  EXPECT_EQ(c.node_of(2), 9);
  EXPECT_EQ(c.rank_of(2), 1);
  EXPECT_EQ(c.rank_of(7), -1);
  EXPECT_TRUE(c.contains(9));
  EXPECT_FALSE(c.contains(0));
}

TEST(Comm, OutOfRangeRankThrows) {
  const Comm c(0, {1, 2});
  EXPECT_THROW(static_cast<void>(c.node_of(2)), std::out_of_range);
  EXPECT_THROW(static_cast<void>(c.node_of(-1)), std::out_of_range);
}

TEST(Comm, EmptyMembershipRejected) {
  EXPECT_THROW(Comm(1, {}), std::invalid_argument);
}

}  // namespace
}  // namespace nicmcast::mpi

// MPI point-to-point: eager and rendezvous protocols, matching, ordering.
#include <gtest/gtest.h>

#include "mpi/mpi.hpp"

namespace nicmcast::mpi {
namespace {

Payload make_payload(std::size_t n, std::uint8_t salt = 0) {
  Payload p(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = std::byte{static_cast<std::uint8_t>(i * 131u + salt)};
  }
  return p;
}

struct Fixture {
  explicit Fixture(std::size_t nodes, MpiConfig config = {})
      : cluster(gm::ClusterConfig{.nodes = nodes}), world(cluster, config) {}
  gm::Cluster cluster;
  World world;
};

TEST(MpiP2p, EagerSendRecv) {
  Fixture f(2);
  const Payload msg = make_payload(1000);
  f.world.launch([&msg](Process& self) -> sim::Task<void> {
    if (self.rank() == 0) {
      co_await self.send(1, 42, msg);
    } else {
      const Payload got = co_await self.recv(0, 42);
      EXPECT_EQ(got, msg);
    }
  });
  f.world.run();
  EXPECT_EQ(f.world.process(1).stats().receives, 1u);
}

TEST(MpiP2p, RendezvousLargeMessage) {
  Fixture f(2);
  const Payload msg = make_payload(100'000);  // well past the eager limit
  bool received = false;
  f.world.launch([&](Process& self) -> sim::Task<void> {
    if (self.rank() == 0) {
      co_await self.send(1, 1, msg);
    } else {
      const Payload got = co_await self.recv(0, 1);
      EXPECT_EQ(got.size(), msg.size());
      EXPECT_EQ(got, msg);
      received = true;
    }
  });
  f.world.run();
  EXPECT_TRUE(received);
}

TEST(MpiP2p, EagerLimitBoundary) {
  // 16287 goes eager; 16288 goes rendezvous; both must arrive intact.
  for (std::size_t size : {16287u, 16288u}) {
    Fixture f(2);
    const Payload msg = make_payload(size);
    bool ok = false;
    f.world.launch([&](Process& self) -> sim::Task<void> {
      if (self.rank() == 0) {
        co_await self.send(1, 2, msg);
      } else {
        const Payload got = co_await self.recv(0, 2);
        EXPECT_EQ(got, msg);
        ok = true;
      }
    });
    f.world.run();
    EXPECT_TRUE(ok) << "size " << size;
  }
}

TEST(MpiP2p, TagMatchingOutOfOrder) {
  // Receiver asks for tag 9 first although tag 5 arrives first: the tag-5
  // message waits in the unexpected queue.
  Fixture f(2);
  std::vector<int> order;
  f.world.launch([&](Process& self) -> sim::Task<void> {
    if (self.rank() == 0) {
      co_await self.send(1, 5, make_payload(10, 5));
      co_await self.send(1, 9, make_payload(10, 9));
    } else {
      const Payload nine = co_await self.recv(0, 9);
      EXPECT_EQ(nine, make_payload(10, 9));
      order.push_back(9);
      const Payload five = co_await self.recv(0, 5);
      EXPECT_EQ(five, make_payload(10, 5));
      order.push_back(5);
    }
  });
  f.world.run();
  EXPECT_EQ(order, (std::vector<int>{9, 5}));
}

TEST(MpiP2p, SameTagPreservesOrder) {
  Fixture f(2);
  std::vector<std::uint8_t> salts;
  f.world.launch([&](Process& self) -> sim::Task<void> {
    if (self.rank() == 0) {
      for (std::uint8_t i = 0; i < 5; ++i) {
        co_await self.send(1, 3, make_payload(64, i));
      }
    } else {
      for (int i = 0; i < 5; ++i) {
        const Payload got = co_await self.recv(0, 3);
        salts.push_back(std::to_integer<std::uint8_t>(got[0]));
      }
    }
  });
  f.world.run();
  // Byte 0 of make_payload(_, salt) is salt itself.
  EXPECT_EQ(salts, (std::vector<std::uint8_t>{0, 1, 2, 3, 4}));
}

TEST(MpiP2p, SourceMatching) {
  Fixture f(3);
  f.world.launch([&](Process& self) -> sim::Task<void> {
    if (self.rank() == 0) {
      co_await self.send(2, 1, make_payload(8, 10));
    } else if (self.rank() == 1) {
      co_await self.send(2, 1, make_payload(8, 20));
    } else {
      // Ask for rank 1's message first regardless of arrival order.
      const Payload from1 = co_await self.recv(1, 1);
      EXPECT_EQ(std::to_integer<std::uint8_t>(from1[0]), 20);
      const Payload from0 = co_await self.recv(0, 1);
      EXPECT_EQ(std::to_integer<std::uint8_t>(from0[0]), 10);
    }
  });
  f.world.run();
}

TEST(MpiP2p, ExchangePattern) {
  // Both ranks send then receive — must not deadlock with eager traffic.
  Fixture f(2);
  int done = 0;
  f.world.launch([&](Process& self) -> sim::Task<void> {
    const int peer = 1 - self.rank();
    co_await self.send(
        peer, 7, make_payload(256, static_cast<std::uint8_t>(self.rank())));
    const Payload got = co_await self.recv(peer, 7);
    EXPECT_EQ(std::to_integer<std::uint8_t>(got[0]), peer);
    ++done;
  });
  f.world.run();
  EXPECT_EQ(done, 2);
}

TEST(MpiP2p, SubCommunicatorIsolation) {
  // The same (src, tag) in two communicators must not cross-match.
  Fixture f(2);
  const Comm& sub = f.world.create_comm({0, 1});
  f.world.launch([&](Process& self) -> sim::Task<void> {
    if (self.rank() == 0) {
      co_await self.send(self.world_comm(), 1, 4, make_payload(8, 1));
      co_await self.send(sub, 1, 4, make_payload(8, 2));
    } else {
      const Payload in_sub = co_await self.recv(sub, 0, 4);
      EXPECT_EQ(std::to_integer<std::uint8_t>(in_sub[0]), 2);
      const Payload in_world = co_await self.recv(self.world_comm(), 0, 4);
      EXPECT_EQ(std::to_integer<std::uint8_t>(in_world[0]), 1);
    }
  });
  f.world.run();
}

TEST(MpiP2p, ZeroByteMessage) {
  Fixture f(2);
  bool got_empty = false;
  f.world.launch([&](Process& self) -> sim::Task<void> {
    if (self.rank() == 0) {
      co_await self.send(1, 0, Payload{});
    } else {
      const Payload got = co_await self.recv(0, 0);
      got_empty = got.empty();
    }
  });
  f.world.run();
  EXPECT_TRUE(got_empty);
}

TEST(MpiP2p, EagerSendToSelf) {
  Fixture f(2);
  bool ok = false;
  f.world.launch([&](Process& self) -> sim::Task<void> {
    if (self.rank() != 0) co_return;
    co_await self.send(0, 9, make_payload(500));
    const Payload got = co_await self.recv(0, 9);
    ok = got == make_payload(500);
  });
  f.world.run();
  EXPECT_TRUE(ok);
}

TEST(MpiP2p, RendezvousSendToSelfRejected) {
  Fixture f(2);
  bool threw = false;
  f.world.launch([&](Process& self) -> sim::Task<void> {
    if (self.rank() != 0) co_return;
    try {
      co_await self.send(0, 9, make_payload(50'000));
    } catch (const std::logic_error&) {
      threw = true;
    }
  });
  f.world.run();
  EXPECT_TRUE(threw);
}

TEST(MpiP2p, ManyMessagesWithLoss) {
  Fixture f(2);
  f.cluster.network().set_fault_injector(
      std::make_unique<net::RandomFaults>(0.05, 0.02, sim::Rng(31)));
  const int kCount = 20;
  int received = 0;
  f.world.launch([&](Process& self) -> sim::Task<void> {
    if (self.rank() == 0) {
      for (int i = 0; i < kCount; ++i) {
        co_await self.send(1, static_cast<std::uint16_t>(i),
                           make_payload(300 + i, static_cast<std::uint8_t>(i)));
      }
    } else {
      for (int i = 0; i < kCount; ++i) {
        const Payload got =
            co_await self.recv(0, static_cast<std::uint16_t>(i));
        EXPECT_EQ(got, make_payload(300 + i, static_cast<std::uint8_t>(i)));
        ++received;
      }
    }
  });
  f.world.run();
  EXPECT_EQ(received, kCount);
}

}  // namespace
}  // namespace nicmcast::mpi

// MPI collectives: barrier, host-based and NIC-based broadcast, allreduce.
#include <gtest/gtest.h>

#include "mpi/mpi.hpp"

namespace nicmcast::mpi {
namespace {

Payload make_payload(std::size_t n, std::uint8_t salt = 0) {
  Payload p(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = std::byte{static_cast<std::uint8_t>(i * 131u + salt)};
  }
  return p;
}

struct Fixture {
  explicit Fixture(std::size_t nodes, MpiConfig config = {})
      : cluster(gm::ClusterConfig{.nodes = nodes}), world(cluster, config) {}
  gm::Cluster cluster;
  World world;
};

TEST(MpiBarrier, SynchronisesSkewedRanks) {
  Fixture f(8);
  std::vector<double> exit_times(8);
  f.world.launch([&](Process& self) -> sim::Task<void> {
    // Stagger the arrival heavily.
    co_await self.simulator().wait(sim::usec(50.0 * self.rank()));
    co_await self.barrier();
    exit_times[self.rank()] = self.simulator().now().microseconds();
  });
  f.world.run();
  // Everyone exits after the slowest entry (rank 7 at 350us)...
  for (double t : exit_times) EXPECT_GE(t, 350.0);
  // ...and within a tight window of each other.
  const auto [lo, hi] = std::minmax_element(exit_times.begin(),
                                            exit_times.end());
  EXPECT_LT(*hi - *lo, 60.0);
}

TEST(MpiBarrier, RepeatedBarriersStayMatched) {
  Fixture f(5);  // non-power-of-two
  int total = 0;
  f.world.launch([&](Process& self) -> sim::Task<void> {
    for (int i = 0; i < 10; ++i) {
      co_await self.barrier();
    }
    ++total;
  });
  f.world.run();
  EXPECT_EQ(total, 5);
  EXPECT_EQ(f.world.process(0).stats().barriers, 10u);
}

class BcastBothAlgorithms
    : public ::testing::TestWithParam<BcastAlgorithm> {};

INSTANTIATE_TEST_SUITE_P(Algorithms, BcastBothAlgorithms,
                         ::testing::Values(BcastAlgorithm::kHostBased,
                                           BcastAlgorithm::kNicBased),
                         [](const auto& param_info) {
                           return param_info.param ==
                                          BcastAlgorithm::kHostBased
                                      ? "HostBased"
                                      : "NicBased";
                         });

TEST_P(BcastBothAlgorithms, DeliversToAllRanks) {
  MpiConfig config;
  config.bcast_algorithm = GetParam();
  Fixture f(16, config);
  const Payload msg = make_payload(2000);
  int correct = 0;
  f.world.launch([&](Process& self) -> sim::Task<void> {
    Payload data(msg.size());
    if (self.rank() == 3) data = msg;
    co_await self.bcast(data, /*root=*/3);
    if (data == msg) ++correct;
  });
  f.world.run();
  EXPECT_EQ(correct, 16);
}

TEST_P(BcastBothAlgorithms, SweepSizesAndRoots) {
  MpiConfig config;
  config.bcast_algorithm = GetParam();
  Fixture f(7, config);  // odd size
  int checks = 0;
  f.world.launch([&](Process& self) -> sim::Task<void> {
    std::uint8_t salt = 0;
    for (std::size_t size : {0u, 1u, 100u, 4096u, 5000u, 16287u}) {
      for (int root : {0, 2, 6}) {
        Payload data(size);
        if (self.rank() == root) data = make_payload(size, salt);
        co_await self.bcast(data, root);
        EXPECT_EQ(data, make_payload(size, salt));
        if (self.rank() == 0) ++checks;
        ++salt;
      }
    }
  });
  f.world.run();
  EXPECT_EQ(checks, 18);
}

TEST_P(BcastBothAlgorithms, LargeMessageFallsBackToRendezvous) {
  // > eager limit: both configurations use the host-based rendezvous path
  // (paper §5: RDMA-based transfers keep the original code path).
  MpiConfig config;
  config.bcast_algorithm = GetParam();
  Fixture f(4, config);
  const Payload msg = make_payload(50'000);
  int correct = 0;
  f.world.launch([&](Process& self) -> sim::Task<void> {
    Payload data(msg.size());
    if (self.rank() == 0) data = msg;
    co_await self.bcast(data, 0);
    if (data == msg) ++correct;
  });
  f.world.run();
  EXPECT_EQ(correct, 4);
  // No multicast group was ever created.
  EXPECT_EQ(f.world.process(0).stats().groups_created, 0u);
}

TEST(MpiBcast, NicBasedCreatesGroupOnceAndReuses) {
  MpiConfig config;
  config.bcast_algorithm = BcastAlgorithm::kNicBased;
  Fixture f(8, config);
  f.world.launch([&](Process& self) -> sim::Task<void> {
    for (std::uint8_t r = 0; r < 5; ++r) {
      Payload data(512);
      if (self.rank() == 0) data = make_payload(512, r);
      co_await self.bcast(data, 0);
      EXPECT_EQ(data, make_payload(512, r));
    }
  });
  f.world.run();
  // Demand-driven: exactly one group per (comm, root), reused afterwards.
  for (int r = 0; r < 8; ++r) {
    EXPECT_EQ(f.world.process(r).stats().groups_created, 1u) << "rank " << r;
  }
  EXPECT_EQ(f.world.process(0).port().stats().mcast_sends, 5u);
}

TEST(MpiBcast, DistinctRootsGetDistinctGroups) {
  MpiConfig config;
  config.bcast_algorithm = BcastAlgorithm::kNicBased;
  Fixture f(4, config);
  f.world.launch([&](Process& self) -> sim::Task<void> {
    for (int root = 0; root < 4; ++root) {
      Payload data(100);
      if (self.rank() == root) {
        data = make_payload(100, static_cast<std::uint8_t>(root));
      }
      co_await self.bcast(data, root);
      EXPECT_EQ(data, make_payload(100, static_cast<std::uint8_t>(root)));
    }
  });
  f.world.run();
  // Each rank installed 4 groups (one per root: 3 as member + 1 as root).
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(f.world.process(r).stats().groups_created, 4u);
  }
}

TEST(MpiBcast, NicBasedFasterThanHostBasedAtMpiLevel) {
  // Figure 4's headline: the MPI-level improvement, measured after the
  // demand-driven group creation is amortised (warm-up round excluded).
  auto measure = [](BcastAlgorithm algorithm) {
    MpiConfig config;
    config.bcast_algorithm = algorithm;
    Fixture f(16, config);
    auto worst = std::make_shared<sim::Duration>();
    f.world.launch([worst](Process& self) -> sim::Task<void> {
      for (int round = 0; round < 2; ++round) {
        co_await self.barrier();
        Payload data(8192);
        if (self.rank() == 0) data = make_payload(8192);
        co_await self.bcast(data, 0);
        if (round == 1) {
          *worst = std::max(*worst, self.stats().last_bcast_time);
        }
      }
    });
    f.world.run();
    return *worst;
  };
  const sim::Duration hb = measure(BcastAlgorithm::kHostBased);
  const sim::Duration nb = measure(BcastAlgorithm::kNicBased);
  const double factor = static_cast<double>(hb.nanoseconds()) /
                        static_cast<double>(nb.nanoseconds());
  // Paper: up to 2.02 at 8KB over 16 nodes; our model overshoots a little.
  EXPECT_GT(factor, 1.5);
  EXPECT_LT(factor, 3.5);
}

TEST(MpiBcast, SubCommunicatorBroadcast) {
  MpiConfig config;
  config.bcast_algorithm = BcastAlgorithm::kNicBased;
  Fixture f(6, config);
  const Comm& evens = f.world.create_comm({0, 2, 4});
  const Payload msg = make_payload(777);
  int got = 0;
  f.world.launch([&](Process& self) -> sim::Task<void> {
    if (self.rank() % 2 != 0) co_return;  // not a member
    Payload data(msg.size());
    if (self.rank() == 0) data = msg;
    co_await self.bcast(evens, data, 0);
    if (data == msg) ++got;
  });
  f.world.run();
  EXPECT_EQ(got, 3);
}

TEST(MpiAllreduce, SumsAcrossRanks) {
  Fixture f(9);
  int correct = 0;
  f.world.launch([&](Process& self) -> sim::Task<void> {
    std::vector<std::int64_t> mine{self.rank(), 1, self.rank() * 10};
    const auto total =
        co_await self.allreduce_sum(self.world_comm(), mine);
    // sum(0..8) = 36.
    if (total == std::vector<std::int64_t>{36, 9, 360}) ++correct;
  });
  f.world.run();
  EXPECT_EQ(correct, 9);
}

TEST(MpiAllreduce, RepeatedCallsStayConsistent) {
  Fixture f(4);
  int rounds_ok = 0;
  f.world.launch([&](Process& self) -> sim::Task<void> {
    for (std::int64_t round = 0; round < 3; ++round) {
      std::vector<std::int64_t> mine{round + self.rank()};
      const auto total =
          co_await self.allreduce_sum(self.world_comm(), std::move(mine));
      // sum over ranks of (round + rank) = 4*round + 6.
      if (total == std::vector<std::int64_t>{4 * round + 6} &&
          self.rank() == 0) {
        ++rounds_ok;
      }
    }
  });
  f.world.run();
  EXPECT_EQ(rounds_ok, 3);
}

TEST(MpiBarrier, NicLevelBarrierSynchronises) {
  MpiConfig config;
  config.barrier_algorithm = BarrierAlgorithm::kNicBased;
  Fixture f(8, config);
  std::vector<double> exit_times(8);
  f.world.launch([&](Process& self) -> sim::Task<void> {
    co_await self.simulator().wait(sim::usec(40.0 * self.rank()));
    co_await self.barrier();
    exit_times[self.rank()] = self.simulator().now().microseconds();
  });
  f.world.run();
  for (double t : exit_times) EXPECT_GE(t, 280.0);  // slowest entry
  const auto [lo, hi] =
      std::minmax_element(exit_times.begin(), exit_times.end());
  EXPECT_LT(*hi - *lo, 40.0);
}

TEST(MpiBarrier, NicLevelRepeatedRounds) {
  MpiConfig config;
  config.barrier_algorithm = BarrierAlgorithm::kNicBased;
  Fixture f(6, config);
  int done = 0;
  f.world.launch([&](Process& self) -> sim::Task<void> {
    for (int i = 0; i < 8; ++i) co_await self.barrier();
    ++done;
  });
  f.world.run();
  EXPECT_EQ(done, 6);
  // One bootstrap group; 8 NIC barriers per node.
  EXPECT_EQ(f.cluster.nic(0).stats().barriers_completed, 8u);
}

TEST(MpiBarrier, NicLevelFasterThanDissemination) {
  auto measure = [](BarrierAlgorithm algorithm) {
    MpiConfig config;
    config.barrier_algorithm = algorithm;
    Fixture f(16, config);
    auto total = std::make_shared<sim::Duration>();
    f.world.launch([total](Process& self) -> sim::Task<void> {
      co_await self.barrier();  // bootstrap/warmup round
      const sim::TimePoint start = self.simulator().now();
      for (int i = 0; i < 10; ++i) co_await self.barrier();
      if (self.rank() == 0) *total = self.simulator().now() - start;
    });
    f.world.run();
    return total->microseconds() / 10.0;
  };
  const double host_us = measure(BarrierAlgorithm::kDissemination);
  const double nic_us = measure(BarrierAlgorithm::kNicBased);
  // Dissemination: log2(16) = 4 host-level rounds of p2p traffic; the NIC
  // barrier is one gather/release sweep of tiny control packets.
  EXPECT_LT(nic_us, host_us);
}

TEST(MpiBarrier, NicLevelUnderPacketLoss) {
  MpiConfig config;
  config.barrier_algorithm = BarrierAlgorithm::kNicBased;
  Fixture f(8, config);
  f.cluster.network().set_fault_injector(
      std::make_unique<net::RandomFaults>(0.08, 0.03, sim::Rng(13)));
  int done = 0;
  f.world.launch([&](Process& self) -> sim::Task<void> {
    for (int i = 0; i < 5; ++i) co_await self.barrier();
    ++done;
  });
  f.world.run();
  EXPECT_EQ(done, 8);
}

TEST(MpiBcast, RdmaMulticastDeliversLargeMessages) {
  // Extension (paper §7): NIC multicast with RDMA landing buffers above
  // the eager limit.
  MpiConfig config;
  config.bcast_algorithm = BcastAlgorithm::kNicBased;
  config.rdma_multicast = true;
  Fixture f(8, config);
  const Payload msg = make_payload(100'000);
  int correct = 0;
  f.world.launch([&](Process& self) -> sim::Task<void> {
    Payload data(msg.size());
    if (self.rank() == 0) data = msg;
    co_await self.bcast(data, 0);
    if (data == msg) ++correct;
  });
  f.world.run();
  EXPECT_EQ(correct, 8);
  // It really went down the multicast tree: the root posted two mcasts
  // (announce + bulk) and a group exists.
  EXPECT_EQ(f.world.process(0).stats().groups_created, 1u);
  EXPECT_EQ(f.world.process(0).port().stats().mcast_sends, 2u);
}

TEST(MpiBcast, RdmaMulticastRepeatedAndMixedSizes) {
  MpiConfig config;
  config.rdma_multicast = true;
  Fixture f(5, config);
  int checks = 0;
  f.world.launch([&](Process& self) -> sim::Task<void> {
    std::uint8_t salt = 1;
    for (std::size_t size : {500u, 40'000u, 16'287u, 70'000u}) {
      Payload data(size);
      if (self.rank() == 2) data = make_payload(size, salt);
      co_await self.bcast(data, 2);
      EXPECT_EQ(data, make_payload(size, salt));
      if (self.rank() == 0) ++checks;
      ++salt;
    }
  });
  f.world.run();
  EXPECT_EQ(checks, 4);
}

TEST(MpiBcast, RdmaMulticastFasterThanHostRendezvous) {
  auto measure = [](bool rdma) {
    MpiConfig config;
    config.bcast_algorithm =
        rdma ? BcastAlgorithm::kNicBased : BcastAlgorithm::kHostBased;
    config.rdma_multicast = rdma;
    Fixture f(16, config);
    auto worst = std::make_shared<sim::Duration>();
    f.world.launch([worst](Process& self) -> sim::Task<void> {
      for (int round = 0; round < 2; ++round) {
        co_await self.barrier();
        Payload data(65536);
        if (self.rank() == 0) data = make_payload(65536);
        co_await self.bcast(data, 0);
        if (round == 1) {
          *worst = std::max(*worst, self.stats().last_bcast_time);
        }
      }
    });
    f.world.run();
    return *worst;
  };
  const sim::Duration hb = measure(false);
  const sim::Duration nb = measure(true);
  // Per-packet NIC forwarding beats per-hop store-and-forward rendezvous.
  EXPECT_LT(nb.nanoseconds(), hb.nanoseconds());
}

TEST(MpiBcast, RdmaMulticastUnderLoss) {
  MpiConfig config;
  config.rdma_multicast = true;
  Fixture f(6, config);
  f.cluster.network().set_fault_injector(
      std::make_unique<net::RandomFaults>(0.03, 0.01, sim::Rng(29)));
  int correct = 0;
  f.world.launch([&](Process& self) -> sim::Task<void> {
    Payload data(50'000);
    if (self.rank() == 0) data = make_payload(50'000);
    co_await self.bcast(data, 0);
    if (data == make_payload(50'000)) ++correct;
  });
  f.world.run();
  EXPECT_EQ(correct, 6);
}

TEST(MpiBarrier, NicLevelOnSubCommunicator) {
  MpiConfig config;
  config.barrier_algorithm = BarrierAlgorithm::kNicBased;
  Fixture f(8, config);
  const Comm& odds = f.world.create_comm({1, 3, 5, 7});
  std::vector<double> exits(8, 0.0);
  f.world.launch([&](Process& self) -> sim::Task<void> {
    if (self.rank() % 2 == 0) co_return;  // not a member
    co_await self.simulator().wait(sim::usec(30.0 * self.rank()));
    co_await self.barrier(odds);
    exits[self.rank()] = self.simulator().now().microseconds();
  });
  f.world.run();
  // All members exit after the slowest (rank 7 at 210us), close together.
  for (int r : {1, 3, 5, 7}) {
    EXPECT_GE(exits[r], 210.0) << "rank " << r;
  }
  EXPECT_EQ(exits[0], 0.0);
}

TEST(MpiCollectives, NicBarrierAndNicReductionInterleave) {
  // The barrier and reduction share the same group tree and epochs must
  // stay independent across the two protocols.
  MpiConfig config;
  config.barrier_algorithm = BarrierAlgorithm::kNicBased;
  config.nic_reduction = true;
  Fixture f(6, config);
  int ok = 0;
  f.world.launch([&](Process& self) -> sim::Task<void> {
    for (std::int64_t round = 0; round < 4; ++round) {
      co_await self.barrier();
      std::vector<std::int64_t> mine{self.rank() * (round + 1)};
      const auto sum =
          co_await self.allreduce_sum(self.world_comm(), std::move(mine));
      if (sum != std::vector<std::int64_t>{15 * (round + 1)}) co_return;
    }
    ++ok;
  });
  f.world.run();
  EXPECT_EQ(ok, 6);
}

TEST(MpiAllgather, EveryBlockReachesEveryRank) {
  // The paper's §7 "Alltoall broadcast" future-work collective.
  Fixture f(6);
  int correct = 0;
  f.world.launch([&](Process& self) -> sim::Task<void> {
    Payload mine = make_payload(300, static_cast<std::uint8_t>(self.rank()));
    const auto blocks =
        co_await self.allgather(self.world_comm(), std::move(mine));
    bool ok = blocks.size() == 6;
    for (int r = 0; ok && r < 6; ++r) {
      ok = blocks[r] == make_payload(300, static_cast<std::uint8_t>(r));
    }
    if (ok) ++correct;
  });
  f.world.run();
  EXPECT_EQ(correct, 6);
}

TEST(MpiAllgather, ReusesOneGroupPerRoot) {
  MpiConfig config;
  config.bcast_algorithm = BcastAlgorithm::kNicBased;
  Fixture f(4, config);
  f.world.launch([&](Process& self) -> sim::Task<void> {
    for (int round = 0; round < 3; ++round) {
      Payload mine =
          make_payload(64, static_cast<std::uint8_t>(self.rank() + round));
      const auto blocks =
          co_await self.allgather(self.world_comm(), std::move(mine));
      EXPECT_EQ(blocks[2],
                make_payload(64, static_cast<std::uint8_t>(2 + round)));
    }
  });
  f.world.run();
  // 4 groups per rank total (one per root), created in round 0 only.
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(f.world.process(r).stats().groups_created, 4u);
  }
}

TEST(MpiAllreduce, NicReductionMatchesHostReduction) {
  // Extension: contributions folded in NIC firmware (paper §7 / ref [4]).
  for (bool nic : {false, true}) {
    MpiConfig config;
    config.nic_reduction = nic;
    Fixture f(9, config);
    int correct = 0;
    f.world.launch([&](Process& self) -> sim::Task<void> {
      std::vector<std::int64_t> mine{self.rank(), -self.rank(), 7};
      const auto total =
          co_await self.allreduce_sum(self.world_comm(), std::move(mine));
      if (total == std::vector<std::int64_t>{36, -36, 63}) ++correct;
    });
    f.world.run();
    EXPECT_EQ(correct, 9) << (nic ? "nic" : "host");
  }
}

TEST(MpiAllreduce, NicReductionCombinesInFirmware) {
  MpiConfig config;
  config.nic_reduction = true;
  Fixture f(8, config);
  f.world.launch([&](Process& self) -> sim::Task<void> {
    for (std::int64_t round = 0; round < 3; ++round) {
      std::vector<std::int64_t> mine{self.rank() + round};
      const auto total =
          co_await self.allreduce_sum(self.world_comm(), std::move(mine));
      EXPECT_EQ(total, (std::vector<std::int64_t>{28 + 8 * round}));
    }
  });
  f.world.run();
  std::uint64_t combines = 0;
  for (int n = 0; n < 8; ++n) {
    combines += f.cluster.nic(n).stats().reductions_combined;
  }
  // Each node folds its own contribution plus one partial per child:
  // n + (n-1) = 15 folds per round, over 3 rounds.
  EXPECT_EQ(combines, 45u);
}

TEST(MpiAllreduce, NicReductionUnderLoss) {
  MpiConfig config;
  config.nic_reduction = true;
  Fixture f(6, config);
  f.cluster.network().set_fault_injector(
      std::make_unique<net::RandomFaults>(0.05, 0.02, sim::Rng(37)));
  int correct = 0;
  f.world.launch([&](Process& self) -> sim::Task<void> {
    std::vector<std::int64_t> mine{1000 + self.rank()};
    const auto total =
        co_await self.allreduce_sum(self.world_comm(), std::move(mine));
    if (total == std::vector<std::int64_t>{6015}) ++correct;
  });
  f.world.run();
  EXPECT_EQ(correct, 6);
}

TEST(MpiBcast, WorksUnderPacketLoss) {
  MpiConfig config;
  config.bcast_algorithm = BcastAlgorithm::kNicBased;
  Fixture f(8, config);
  f.cluster.network().set_fault_injector(
      std::make_unique<net::RandomFaults>(0.06, 0.03, sim::Rng(17)));
  int correct = 0;
  f.world.launch([&](Process& self) -> sim::Task<void> {
    for (std::uint8_t r = 0; r < 3; ++r) {
      Payload data(3000);
      if (self.rank() == 0) data = make_payload(3000, r);
      co_await self.bcast(data, 0);
      if (data == make_payload(3000, r)) ++correct;
    }
  });
  f.world.run();
  EXPECT_EQ(correct, 24);
}

}  // namespace
}  // namespace nicmcast::mpi

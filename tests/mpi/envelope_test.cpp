#include "mpi/envelope.hpp"

#include <gtest/gtest.h>

namespace nicmcast::mpi {
namespace {

TEST(Envelope, RoundTripsAllFields) {
  for (Kind kind : {Kind::kEager, Kind::kRndvRts, Kind::kRndvCts,
                    Kind::kRndvData, Kind::kBcast, Kind::kBcastSetup,
                    Kind::kBcastSetupAck, Kind::kBarrier, Kind::kReduce}) {
    const Envelope e{kind, 0xAB, 0x1234};
    const Envelope back = Envelope::decode(e.encode());
    EXPECT_EQ(back, e);
  }
}

TEST(Envelope, ExtremeValues) {
  const Envelope e{Kind::kReduce, 0xFF, 0xFFFF};
  EXPECT_EQ(Envelope::decode(e.encode()), e);
  const Envelope zero{Kind::kEager, 0, 0};
  EXPECT_EQ(Envelope::decode(zero.encode()), zero);
}

TEST(Envelope, DistinctEnvelopesDistinctEncodings) {
  const Envelope a{Kind::kEager, 1, 5};
  const Envelope b{Kind::kBcast, 1, 5};
  const Envelope c{Kind::kEager, 2, 5};
  const Envelope d{Kind::kEager, 1, 6};
  EXPECT_NE(a.encode(), b.encode());
  EXPECT_NE(a.encode(), c.encode());
  EXPECT_NE(a.encode(), d.encode());
}

}  // namespace
}  // namespace nicmcast::mpi

// Process-skew tolerance (paper §6.3): under skew the NIC-based broadcast
// keeps host CPU time low and falling while the host-based broadcast's
// rises.
#include <gtest/gtest.h>

#include "mpi/skew.hpp"

namespace nicmcast::mpi {
namespace {

SkewConfig base_config(BcastAlgorithm algorithm, double max_skew_us,
                       std::size_t bytes = 4) {
  SkewConfig config;
  config.nodes = 16;
  config.message_bytes = bytes;
  config.max_skew = sim::usec(max_skew_us);
  config.iterations = 30;
  config.warmup = 3;
  config.algorithm = algorithm;
  return config;
}

TEST(Skew, ZeroSkewBothAlgorithmsBehave) {
  const auto hb = run_skew_experiment(base_config(BcastAlgorithm::kHostBased, 0));
  const auto nb = run_skew_experiment(base_config(BcastAlgorithm::kNicBased, 0));
  EXPECT_GT(hb.avg_bcast_cpu_us, 0.0);
  EXPECT_GT(nb.avg_bcast_cpu_us, 0.0);
  EXPECT_EQ(hb.avg_applied_skew_us, 0.0);
  // Without skew the NIC-based bcast is already cheaper on average.
  EXPECT_LT(nb.avg_bcast_cpu_us, hb.avg_bcast_cpu_us);
}

TEST(Skew, NicBasedWinsGrowsWithSkew) {
  // Figure 6(b): the improvement factor rises with average skew, up to
  // ~5.8x at 400us average skew for small messages.
  double previous_factor = 0.0;
  for (double max_skew : {200.0, 800.0, 1600.0}) {
    const auto hb =
        run_skew_experiment(base_config(BcastAlgorithm::kHostBased, max_skew));
    const auto nb =
        run_skew_experiment(base_config(BcastAlgorithm::kNicBased, max_skew));
    const double factor = hb.avg_bcast_cpu_us / nb.avg_bcast_cpu_us;
    EXPECT_GT(factor, 1.0) << "max_skew " << max_skew;
    EXPECT_GT(factor, previous_factor * 0.8)
        << "factor should broadly grow with skew";
    previous_factor = factor;
  }
  EXPECT_GT(previous_factor, 2.0);
}

TEST(Skew, HostBasedCpuTimeGrowsWithSkew) {
  const auto small =
      run_skew_experiment(base_config(BcastAlgorithm::kHostBased, 100));
  const auto large =
      run_skew_experiment(base_config(BcastAlgorithm::kHostBased, 1600));
  EXPECT_GT(large.avg_bcast_cpu_us, small.avg_bcast_cpu_us);
}

TEST(Skew, NicBasedCpuTimeShrinksWithSkew) {
  // Delayed ranks find the (NIC-forwarded) message already delivered.
  const auto small =
      run_skew_experiment(base_config(BcastAlgorithm::kNicBased, 100));
  const auto large =
      run_skew_experiment(base_config(BcastAlgorithm::kNicBased, 1600));
  EXPECT_LT(large.avg_bcast_cpu_us, small.avg_bcast_cpu_us * 1.1);
}

TEST(Skew, BenefitGrowsWithSystemSize) {
  // Figure 7: at fixed skew, bigger systems benefit more.
  auto factor_for = [](std::size_t nodes) {
    SkewConfig hb = base_config(BcastAlgorithm::kHostBased, 1600);
    hb.nodes = nodes;
    SkewConfig nb = base_config(BcastAlgorithm::kNicBased, 1600);
    nb.nodes = nodes;
    return run_skew_experiment(hb).avg_bcast_cpu_us /
           run_skew_experiment(nb).avg_bcast_cpu_us;
  };
  const double f4 = factor_for(4);
  const double f16 = factor_for(16);
  EXPECT_GT(f16, f4);
}

TEST(Skew, AppliedSkewMatchesDistribution) {
  // Uniform[-M/2, M/2] clipped at 0: mean contribution M/8.
  const auto r =
      run_skew_experiment(base_config(BcastAlgorithm::kNicBased, 800));
  EXPECT_NEAR(r.avg_applied_skew_us, 100.0, 35.0);
}

TEST(Skew, DeterministicForSeed) {
  const auto a =
      run_skew_experiment(base_config(BcastAlgorithm::kNicBased, 400));
  const auto b =
      run_skew_experiment(base_config(BcastAlgorithm::kNicBased, 400));
  EXPECT_DOUBLE_EQ(a.avg_bcast_cpu_us, b.avg_bcast_cpu_us);
}

}  // namespace
}  // namespace nicmcast::mpi

#include "nic/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace nicmcast::nic {
namespace {

TEST(Engine, RunsWorkAfterDuration) {
  sim::Simulator sim;
  Engine engine(sim, "test");
  std::vector<double> completions;
  engine.run(sim::usec(5), [&] { completions.push_back(sim.now().microseconds()); });
  sim.run();
  EXPECT_EQ(completions, (std::vector<double>{5.0}));
}

TEST(Engine, SerializesSubmissions) {
  sim::Simulator sim;
  Engine engine(sim, "test");
  std::vector<double> completions;
  auto log = [&] { completions.push_back(sim.now().microseconds()); };
  engine.run(sim::usec(5), log);
  engine.run(sim::usec(3), log);
  engine.run(sim::usec(2), log);
  sim.run();
  EXPECT_EQ(completions, (std::vector<double>{5.0, 8.0, 10.0}));
}

TEST(Engine, IdleGapResetsStart) {
  sim::Simulator sim;
  Engine engine(sim, "test");
  std::vector<double> completions;
  auto log = [&] { completions.push_back(sim.now().microseconds()); };
  engine.run(sim::usec(2), log);
  sim.schedule_after(sim::usec(10), [&] { engine.run(sim::usec(2), log); });
  sim.run();
  EXPECT_EQ(completions, (std::vector<double>{2.0, 12.0}));
}

TEST(Engine, SubmissionWhileBusyQueuesFromFreeInstant) {
  sim::Simulator sim;
  Engine engine(sim, "test");
  std::vector<double> completions;
  auto log = [&] { completions.push_back(sim.now().microseconds()); };
  engine.run(sim::usec(10), log);
  sim.schedule_after(sim::usec(4), [&] { engine.run(sim::usec(1), log); });
  sim.run();
  EXPECT_EQ(completions, (std::vector<double>{10.0, 11.0}));
}

TEST(Engine, ReportsBusyState) {
  sim::Simulator sim;
  Engine engine(sim, "test");
  EXPECT_FALSE(engine.busy());
  engine.run(sim::usec(5), [] {});
  EXPECT_TRUE(engine.busy());
  sim.run();
  EXPECT_FALSE(engine.busy());
}

TEST(Engine, AccumulatesBusyTime) {
  sim::Simulator sim;
  Engine engine(sim, "test");
  engine.run(sim::usec(5), [] {});
  engine.run(sim::usec(7), [] {});
  sim.run();
  EXPECT_EQ(engine.total_busy(), sim::usec(12));
}

TEST(Engine, ZeroDurationWorkRunsImmediately) {
  sim::Simulator sim;
  Engine engine(sim, "test");
  bool ran = false;
  engine.run(sim::Duration{0}, [&] { ran = true; });
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.now(), sim::TimePoint{0});
}

}  // namespace
}  // namespace nicmcast::nic

// NIC-level barrier (extension; paper §7): gather/release in firmware,
// epochs, skewed arrivals, loss of arrives and releases.
#include <gtest/gtest.h>

#include "nic_test_util.hpp"

namespace nicmcast::nic {
namespace {

using testing::TestCluster;

constexpr net::GroupId kGroup = 7;

/// 0 -> {1, 2}, 1 -> {3}.
void setup_tree(TestCluster& c) {
  c.nic(0).set_group(kGroup, GroupEntry{0, kNoNode, {1, 2}});
  c.nic(1).set_group(kGroup, GroupEntry{0, 0, {3}});
  c.nic(2).set_group(kGroup, GroupEntry{0, 0, {}});
  c.nic(3).set_group(kGroup, GroupEntry{0, 1, {}});
}

std::vector<HostEvent> barrier_events(TestCluster& c, std::size_t node) {
  std::vector<HostEvent> out;
  for (auto& ev : c.drain_events(node)) {
    if (ev.type == HostEvent::Type::kBarrierDone ||
        ev.type == HostEvent::Type::kSendFailed) {
      out.push_back(ev);
    }
  }
  return out;
}

TEST(NicBarrier, AllNodesReleasedOnce) {
  TestCluster c(4);
  setup_tree(c);
  for (net::NodeId n = 0; n < 4; ++n) {
    c.nic(n).post_barrier(0, kGroup, 100 + n);
  }
  c.sim.run();
  for (std::size_t n = 0; n < 4; ++n) {
    const auto evs = barrier_events(c, n);
    ASSERT_EQ(evs.size(), 1u) << "node " << n;
    EXPECT_EQ(evs[0].type, HostEvent::Type::kBarrierDone);
    EXPECT_EQ(evs[0].handle, 100 + n);
    EXPECT_EQ(c.nic(n).stats().barriers_completed, 1u);
  }
}

TEST(NicBarrier, NobodyReleasedUntilLastArrives) {
  TestCluster c(4);
  setup_tree(c);
  // Everyone but node 3 arrives immediately.
  for (net::NodeId n = 0; n < 3; ++n) {
    c.nic(n).post_barrier(0, kGroup, 100 + n);
  }
  c.sim.run_for(sim::usec(500));
  for (std::size_t n = 0; n < 4; ++n) {
    EXPECT_TRUE(barrier_events(c, n).empty()) << "node " << n;
  }
  // The straggler arrives 500us late; everyone releases.
  c.nic(3).post_barrier(0, kGroup, 103);
  c.sim.run();
  for (std::size_t n = 0; n < 4; ++n) {
    EXPECT_EQ(barrier_events(c, n).size(), 1u) << "node " << n;
  }
}

TEST(NicBarrier, RepeatedEpochsStayInLockstep) {
  TestCluster c(4);
  setup_tree(c);
  // Hosts re-enter as soon as they are released, 5 rounds.
  auto host = [](TestCluster& cl, net::NodeId me) -> sim::Task<void> {
    for (OpHandle round = 0; round < 5; ++round) {
      cl.nic(me).post_barrier(0, kGroup, 1000 * (me + 1) + round);
      for (;;) {
        HostEvent ev = co_await cl.nic(me).events(0).pop();
        if (ev.type == HostEvent::Type::kBarrierDone) {
          if (ev.handle != 1000 * (me + 1) + round) {
            throw std::logic_error("wrong round released");
          }
          break;
        }
      }
    }
  };
  for (net::NodeId n = 0; n < 4; ++n) {
    c.sim.spawn(host(c, n));
  }
  c.sim.run();
  for (std::size_t n = 0; n < 4; ++n) {
    EXPECT_EQ(c.nic(n).stats().barriers_completed, 5u) << "node " << n;
  }
}

TEST(NicBarrier, LostArriveRecoveredByResend) {
  NicConfig config;
  config.retransmit_timeout = sim::usec(200);
  TestCluster c(4, config);
  setup_tree(c);
  auto faults = std::make_unique<net::ScriptedFaults>();
  faults->add_rule({.type = net::PacketType::kBarrier, .src = 3},
                   net::FaultAction::kDrop);
  c.network.set_fault_injector(std::move(faults));
  for (net::NodeId n = 0; n < 4; ++n) {
    c.nic(n).post_barrier(0, kGroup, 100 + n);
  }
  c.sim.run();
  for (std::size_t n = 0; n < 4; ++n) {
    EXPECT_EQ(barrier_events(c, n).size(), 1u) << "node " << n;
  }
  EXPECT_GE(c.nic(3).stats().barrier_resends, 1u);
}

TEST(NicBarrier, LostReleaseRecoveredByRerelease) {
  NicConfig config;
  config.retransmit_timeout = sim::usec(200);
  TestCluster c(4, config);
  setup_tree(c);
  auto faults = std::make_unique<net::ScriptedFaults>();
  // Drop the release from node 1 to node 3.
  faults->add_predicate_rule(
      [](const net::Packet& p) {
        return p.header.type == net::PacketType::kBarrier &&
               p.header.src == 1 && p.header.dst == 3 &&
               p.header.msg_offset == 1;
      },
      net::FaultAction::kDrop);
  c.network.set_fault_injector(std::move(faults));
  for (net::NodeId n = 0; n < 4; ++n) {
    c.nic(n).post_barrier(0, kGroup, 100 + n);
  }
  c.sim.run();
  // Node 3 missed the release but its resent arrive for the old epoch
  // triggers a direct re-release from node 1.
  EXPECT_EQ(barrier_events(c, 3).size(), 1u);
  EXPECT_GE(c.nic(3).stats().barrier_resends, 1u);
}

TEST(NicBarrier, RandomLossStressManyRounds) {
  NicConfig config;
  config.retransmit_timeout = sim::usec(150);
  TestCluster c(4, config);
  setup_tree(c);
  c.network.set_fault_injector(
      std::make_unique<net::RandomFaults>(0.10, 0.05, sim::Rng(21)));
  auto host = [](TestCluster& cl, net::NodeId me) -> sim::Task<void> {
    for (OpHandle round = 0; round < 8; ++round) {
      cl.nic(me).post_barrier(0, kGroup, 100 * (me + 1) + round);
      for (;;) {
        HostEvent ev = co_await cl.nic(me).events(0).pop();
        if (ev.type == HostEvent::Type::kBarrierDone) break;
        if (ev.type == HostEvent::Type::kSendFailed) {
          throw std::logic_error("barrier failed under recoverable loss");
        }
      }
    }
  };
  for (net::NodeId n = 0; n < 4; ++n) c.sim.spawn(host(c, n));
  c.sim.run();
  for (std::size_t n = 0; n < 4; ++n) {
    EXPECT_EQ(c.nic(n).stats().barriers_completed, 8u) << "node " << n;
  }
}

TEST(NicBarrier, HostNeverInvolvedAtIntermediateBetweenEntryAndExit) {
  // Node 1 (intermediate) posts its arrival, then its host goes silent —
  // the gather of node 3's arrive and the forwarding of the release happen
  // in node 1's NIC alone.
  TestCluster c(4);
  setup_tree(c);
  c.nic(1).post_barrier(0, kGroup, 101);
  c.sim.run_for(sim::usec(100));
  c.nic(0).post_barrier(0, kGroup, 100);
  c.nic(2).post_barrier(0, kGroup, 102);
  c.nic(3).post_barrier(0, kGroup, 103);
  c.sim.run();
  EXPECT_EQ(barrier_events(c, 3).size(), 1u);
  EXPECT_EQ(barrier_events(c, 1).size(), 1u);
}

TEST(NicBarrier, InvalidPostsRejected) {
  TestCluster c(4);
  setup_tree(c);
  EXPECT_THROW(c.nic(0).post_barrier(0, 999, 1), std::logic_error);
  EXPECT_THROW(c.nic(0).post_barrier(9, kGroup, 1), std::out_of_range);
  EXPECT_THROW(c.nic(0).post_barrier(1, kGroup, 1),
               std::logic_error);  // wrong port (protection)
  c.nic(0).post_barrier(0, kGroup, 1);
  EXPECT_THROW(c.nic(0).post_barrier(0, kGroup, 2),
               std::logic_error);  // double entry
}

TEST(NicBarrier, UnreachableParentFailsAfterRetries) {
  NicConfig config;
  config.retransmit_timeout = sim::usec(100);
  config.max_retries = 3;
  TestCluster c(4, config);
  setup_tree(c);
  auto faults = std::make_unique<net::ScriptedFaults>();
  faults->add_rule({.type = net::PacketType::kBarrier}, net::FaultAction::kDrop,
                   100000);
  c.network.set_fault_injector(std::move(faults));
  for (net::NodeId n = 0; n < 4; ++n) {
    c.nic(n).post_barrier(0, kGroup, 100 + n);
  }
  c.sim.run();
  const auto evs = barrier_events(c, 3);
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].type, HostEvent::Type::kSendFailed);
}

TEST(NicBarrier, WideFlatTree) {
  const std::size_t n = 8;
  TestCluster c(n);
  GroupEntry root_entry{0, kNoNode, {}};
  for (net::NodeId i = 1; i < n; ++i) root_entry.children.push_back(i);
  c.nic(0).set_group(kGroup, root_entry);
  for (net::NodeId i = 1; i < n; ++i) {
    c.nic(i).set_group(kGroup, GroupEntry{0, 0, {}});
  }
  for (net::NodeId i = 0; i < n; ++i) {
    c.nic(i).post_barrier(0, kGroup, 100 + i);
  }
  c.sim.run();
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(barrier_events(c, i).size(), 1u) << "node " << i;
  }
}

}  // namespace
}  // namespace nicmcast::nic

// NIC-based multisend: one posting, one host DMA, replica chaining through
// the GM-2 descriptor callback — versus host-based multiple unicasts.
#include <gtest/gtest.h>

#include "nic_test_util.hpp"

namespace nicmcast::nic {
namespace {

using testing::TestCluster;
using testing::make_payload;

TEST(Multisend, AllDestinationsReceiveIdenticalData) {
  TestCluster c(5);
  for (std::size_t i = 1; i < 5; ++i) c.post_buffers(i, 1, 4096);
  const Payload msg = make_payload(256);
  c.nic(0).post_multisend(MultisendRequest{0, {1, 2, 3, 4}, 0, msg, 5, 1});
  c.sim.run();
  for (std::size_t i = 1; i < 5; ++i) {
    const auto recv = c.drain_events(i);
    ASSERT_EQ(recv.size(), 1u) << "node " << i;
    EXPECT_EQ(recv[0].data, msg);
    EXPECT_EQ(recv[0].tag, 5u);
  }
}

TEST(Multisend, SingleCompletionEventAfterAllAcks) {
  TestCluster c(4);
  for (std::size_t i = 1; i < 4; ++i) c.post_buffers(i, 1, 4096);
  c.nic(0).post_multisend(MultisendRequest{0, {1, 2, 3}, 0, make_payload(64),
                                           0, 42});
  c.sim.run();
  const auto sent = c.drain_events(0);
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].type, HostEvent::Type::kMultisendComplete);
  EXPECT_EQ(sent[0].handle, 42u);
}

TEST(Multisend, HeaderRewritesCountReplicas) {
  TestCluster c(5);
  for (std::size_t i = 1; i < 5; ++i) c.post_buffers(i, 1, 4096);
  c.nic(0).post_multisend(
      MultisendRequest{0, {1, 2, 3, 4}, 0, make_payload(64), 0, 1});
  c.sim.run();
  // One packet, 4 destinations: 3 rewrites (first replica is built fresh).
  EXPECT_EQ(c.nic(0).stats().header_rewrites, 3u);
  EXPECT_EQ(c.nic(0).stats().packets_sent, 4u);
}

TEST(Multisend, MultiPacketMessageToMultipleDests) {
  TestCluster c(4);
  for (std::size_t i = 1; i < 4; ++i) c.post_buffers(i, 1, 20000);
  const Payload msg = make_payload(9000);  // 3 packets
  c.nic(0).post_multisend(MultisendRequest{0, {1, 2, 3}, 0, msg, 0, 1});
  c.sim.run();
  for (std::size_t i = 1; i < 4; ++i) {
    const auto recv = c.drain_events(i);
    ASSERT_EQ(recv.size(), 1u);
    EXPECT_EQ(recv[0].data, msg);
  }
  // 3 packets x 3 dests.
  EXPECT_EQ(c.nic(0).stats().packets_sent, 9u);
  EXPECT_EQ(c.nic(0).stats().header_rewrites, 6u);
}

TEST(Multisend, FasterThanHostBasedUnicastsForSmallMessages) {
  // The paper's Figure 3: NIC-based multisend saves the repeated send-token
  // processing for small messages.
  auto measure = [](bool nic_based) {
    TestCluster c(5);
    for (std::size_t i = 1; i < 5; ++i) c.post_buffers(i, 1, 4096);
    const Payload msg = make_payload(64);
    if (nic_based) {
      c.nic(0).post_multisend(MultisendRequest{0, {1, 2, 3, 4}, 0, msg, 0, 1});
    } else {
      for (std::uint32_t i = 1; i < 5; ++i) {
        c.nic(0).post_send(SendRequest{0, static_cast<net::NodeId>(i), 0, msg,
                                       0, i});
      }
    }
    // Latency to the LAST destination's receive event.
    sim::TimePoint last{0};
    for (std::size_t i = 1; i < 5; ++i) {
      c.sim.spawn([](TestCluster& cl, std::size_t node,
                     sim::TimePoint& t) -> sim::Task<void> {
        co_await cl.nic(node).events(0).pop();
        t = std::max(t, cl.sim.now());
      }(c, i, last));
    }
    c.sim.run();
    return last;
  };
  const sim::TimePoint host_based = measure(false);
  const sim::TimePoint nic_based = measure(true);
  EXPECT_LT(nic_based.nanoseconds(), host_based.nanoseconds());
  // Figure 3(b): improvement factor around 2 for small messages, 4 dests.
  const double factor = static_cast<double>(host_based.nanoseconds()) /
                        static_cast<double>(nic_based.nanoseconds());
  EXPECT_GT(factor, 1.4);
  EXPECT_LT(factor, 2.6);
}

TEST(Multisend, AblationMultipleTokensSlowerButCorrect) {
  auto run = [](bool multiple_tokens) {
    NicOptions options;
    options.multisend_uses_multiple_tokens = multiple_tokens;
    TestCluster c(5, NicConfig{}, options);
    for (std::size_t i = 1; i < 5; ++i) c.post_buffers(i, 1, 4096);
    c.nic(0).post_multisend(
        MultisendRequest{0, {1, 2, 3, 4}, 0, make_payload(64), 0, 1});
    sim::TimePoint last{0};
    for (std::size_t i = 1; i < 5; ++i) {
      c.sim.spawn([](TestCluster& cl, std::size_t node,
                     sim::TimePoint& t) -> sim::Task<void> {
        co_await cl.nic(node).events(0).pop();
        t = std::max(t, cl.sim.now());
      }(c, i, last));
    }
    c.sim.run();
    struct Result {
      sim::TimePoint last;
      std::uint64_t rewrites;
      std::size_t completions;
    };
    return Result{last, c.nic(0).stats().header_rewrites,
                  c.drain_events(0).size()};
  };
  const auto chained = run(false);
  const auto tokens = run(true);
  EXPECT_EQ(tokens.completions, 1u);
  EXPECT_EQ(tokens.rewrites, 0u);       // never uses the callback path
  EXPECT_EQ(chained.rewrites, 3u);
  EXPECT_LT(chained.last.nanoseconds(), tokens.last.nanoseconds());
}

TEST(Multisend, ReplicaLossRetransmittedToThatDestinationOnly) {
  TestCluster c(4);
  for (std::size_t i = 1; i < 4; ++i) c.post_buffers(i, 1, 4096);
  auto faults = std::make_unique<net::ScriptedFaults>();
  faults->add_rule({.type = net::PacketType::kData, .dst = 2},
                   net::FaultAction::kDrop);
  c.network.set_fault_injector(std::move(faults));
  c.nic(0).post_multisend(MultisendRequest{0, {1, 2, 3}, 0, make_payload(64),
                                           0, 1});
  c.sim.run();
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(c.drain_events(i).size(), 1u) << "node " << i;
  }
  EXPECT_EQ(c.nic(0).stats().retransmissions, 1u);
  EXPECT_EQ(c.nic(1).stats().duplicate_drops, 0u);
  EXPECT_EQ(c.nic(3).stats().duplicate_drops, 0u);
  ASSERT_EQ(c.drain_events(0).size(), 1u);
}

TEST(Multisend, SingleDestinationDegeneratesToUnicast) {
  TestCluster c(2);
  c.post_buffers(1, 1, 4096);
  c.nic(0).post_multisend(MultisendRequest{0, {1}, 0, make_payload(64), 0, 1});
  c.sim.run();
  EXPECT_EQ(c.drain_events(1).size(), 1u);
  EXPECT_EQ(c.nic(0).stats().header_rewrites, 0u);
}

TEST(Multisend, EmptyDestinationListRejected) {
  TestCluster c(2);
  EXPECT_THROW(
      c.nic(0).post_multisend(MultisendRequest{0, {}, 0, make_payload(8), 0, 1}),
      std::invalid_argument);
}

TEST(Multisend, InterleavesWithPointToPointTraffic) {
  TestCluster c(4);
  for (std::size_t i = 1; i < 4; ++i) c.post_buffers(i, 2, 4096);
  c.nic(0).post_multisend(MultisendRequest{0, {1, 2, 3}, 0, make_payload(64, 1),
                                           1, 1});
  c.nic(0).post_send(SendRequest{0, 1, 0, make_payload(64, 2), 2, 2});
  c.sim.run();
  const auto at1 = c.drain_events(1);
  ASSERT_EQ(at1.size(), 2u);
  // Same connection (port 0 -> node1 port 0): order preserved.
  EXPECT_EQ(at1[0].tag, 1u);
  EXPECT_EQ(at1[1].tag, 2u);
  EXPECT_EQ(c.drain_events(0).size(), 2u);
}

}  // namespace
}  // namespace nicmcast::nic

// Point-to-point GM transport: delivery, assembly, ordering, tokens,
// protection and completion events.
#include <gtest/gtest.h>

#include "nic_test_util.hpp"

namespace nicmcast::nic {
namespace {

using testing::TestCluster;
using testing::make_payload;

TEST(Unicast, SmallMessageDelivered) {
  TestCluster c(2);
  c.post_buffers(1, 1, 4096);
  const Payload msg = make_payload(64);
  c.nic(0).post_send(SendRequest{0, 1, 0, msg, /*tag=*/7, /*handle=*/1});
  c.sim.run();

  const auto recv = c.drain_events(1);
  ASSERT_EQ(recv.size(), 1u);
  EXPECT_EQ(recv[0].type, HostEvent::Type::kRecvComplete);
  EXPECT_EQ(recv[0].src, 0);
  EXPECT_EQ(recv[0].tag, 7u);
  EXPECT_EQ(recv[0].data, msg);

  const auto sent = c.drain_events(0);
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].type, HostEvent::Type::kSendComplete);
  EXPECT_EQ(sent[0].handle, 1u);
}

TEST(Unicast, OneWayLatencyMatchesCostModel) {
  TestCluster c(2);
  c.post_buffers(1, 1, 4096);
  c.nic(0).post_send(SendRequest{0, 1, 0, make_payload(1), 0, 1});
  sim::TimePoint recv_time{0};
  bool got = false;
  c.sim.spawn([](TestCluster& cl, sim::TimePoint& t, bool& flag)
                  -> sim::Task<void> {
    co_await cl.nic(1).events(0).pop();
    t = cl.sim.now();
    flag = true;
  }(c, recv_time, got));
  c.sim.run();
  ASSERT_TRUE(got);
  // Calibration (DESIGN.md §5): GM-2 class one-way small-message latency,
  // ~6-9us on the paper's hardware.
  EXPECT_GT(recv_time.microseconds(), 5.0);
  EXPECT_LT(recv_time.microseconds(), 9.0);
}

TEST(Unicast, MultiPacketMessageReassembled) {
  TestCluster c(2);
  c.post_buffers(1, 1, 20000);
  const Payload msg = make_payload(10000);  // 3 packets at 4096
  c.nic(0).post_send(SendRequest{0, 1, 0, msg, 0, 1});
  c.sim.run();
  const auto recv = c.drain_events(1);
  ASSERT_EQ(recv.size(), 1u);
  EXPECT_EQ(recv[0].data, msg);
  // 3 data packets crossed the wire (plus acks).
  EXPECT_GE(c.nic(0).stats().packets_sent, 3u);
}

TEST(Unicast, ExactPacketBoundarySizes) {
  for (std::size_t size : {4096u, 8192u, 4097u, 4095u}) {
    TestCluster c(2);
    c.post_buffers(1, 1, 2 * size);
    const Payload msg = make_payload(size);
    c.nic(0).post_send(SendRequest{0, 1, 0, msg, 0, 1});
    c.sim.run();
    const auto recv = c.drain_events(1);
    ASSERT_EQ(recv.size(), 1u) << "size " << size;
    EXPECT_EQ(recv[0].data, msg) << "size " << size;
  }
}

TEST(Unicast, ZeroByteMessage) {
  TestCluster c(2);
  c.post_buffers(1, 1, 64);
  c.nic(0).post_send(SendRequest{0, 1, 0, Payload{}, 3, 1});
  c.sim.run();
  const auto recv = c.drain_events(1);
  ASSERT_EQ(recv.size(), 1u);
  EXPECT_TRUE(recv[0].data.empty());
  EXPECT_EQ(recv[0].tag, 3u);
  EXPECT_EQ(c.drain_events(0).size(), 1u);  // send completes too
}

TEST(Unicast, MessagesDeliveredInOrder) {
  TestCluster c(2);
  c.post_buffers(1, 5, 4096);
  for (std::uint32_t i = 0; i < 5; ++i) {
    c.nic(0).post_send(
        SendRequest{0, 1, 0, make_payload(100, static_cast<std::uint8_t>(i)),
                    i, 10 + i});
  }
  c.sim.run();
  const auto recv = c.drain_events(1);
  ASSERT_EQ(recv.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(recv[i].tag, i);
    EXPECT_EQ(recv[i].data, make_payload(100, static_cast<std::uint8_t>(i)));
  }
}

TEST(Unicast, BidirectionalTraffic) {
  TestCluster c(2);
  c.post_buffers(0, 1, 4096);
  c.post_buffers(1, 1, 4096);
  c.nic(0).post_send(SendRequest{0, 1, 0, make_payload(200, 1), 0, 1});
  c.nic(1).post_send(SendRequest{0, 0, 0, make_payload(300, 2), 0, 2});
  c.sim.run();
  const auto at0 = c.drain_events(0);
  const auto at1 = c.drain_events(1);
  ASSERT_EQ(at0.size(), 2u);  // recv + send-complete
  ASSERT_EQ(at1.size(), 2u);
}

TEST(Unicast, DistinctPortsAreIsolated) {
  TestCluster c(2);
  c.nic(1).post_recv_buffer(RecvBuffer{2, 4096, 50});
  c.nic(0).post_send(SendRequest{1, 1, 2, make_payload(64), 9, 1});
  c.sim.run();
  // Event arrives on port 2, not port 0.
  EXPECT_TRUE(c.drain_events(1).empty());
  auto ev = c.nic(1).events(2).try_pop();
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->tag, 9u);
  EXPECT_EQ(ev->handle, 50u);
}

TEST(Unicast, NoBufferStallsUntilPosted) {
  TestCluster c(2);
  c.nic(0).post_send(SendRequest{0, 1, 0, make_payload(64), 0, 1});
  c.sim.run_for(sim::usec(500));
  EXPECT_TRUE(c.drain_events(1).empty());
  EXPECT_GE(c.nic(1).stats().no_token_drops, 1u);
  // Host finally posts a buffer; the Go-back-N retransmission delivers.
  c.post_buffers(1, 1, 4096);
  c.sim.run();
  const auto recv = c.drain_events(1);
  ASSERT_EQ(recv.size(), 1u);
  EXPECT_EQ(recv[0].data, make_payload(64));
  EXPECT_GE(c.nic(0).stats().retransmissions, 1u);
}

TEST(Unicast, SendTokensConsumedAndReleased) {
  TestCluster c(2);
  const std::size_t total = c.nic(0).config().send_tokens_per_port;
  EXPECT_EQ(c.nic(0).send_tokens_available(0), total);
  c.post_buffers(1, 1, 4096);
  c.nic(0).post_send(SendRequest{0, 1, 0, make_payload(64), 0, 1});
  EXPECT_EQ(c.nic(0).send_tokens_available(0), total - 1);
  c.sim.run();
  EXPECT_EQ(c.nic(0).send_tokens_available(0), total);
}

TEST(Unicast, TokenPoolExhaustionThrows) {
  TestCluster c(2);
  const std::size_t total = c.nic(0).config().send_tokens_per_port;
  for (std::size_t i = 0; i < total; ++i) {
    c.nic(0).post_send(SendRequest{0, 1, 0, make_payload(8), 0, 100 + i});
  }
  EXPECT_THROW(
      c.nic(0).post_send(SendRequest{0, 1, 0, make_payload(8), 0, 999}),
      std::logic_error);
}

TEST(Unicast, InvalidPostsRejected) {
  TestCluster c(2);
  EXPECT_THROW(c.nic(0).post_send(SendRequest{9, 1, 0, {}, 0, 1}),
               std::out_of_range);
  EXPECT_THROW(c.nic(0).post_send(SendRequest{0, 0, 0, {}, 0, 1}),
               std::logic_error);  // self-send
  EXPECT_THROW(c.nic(0).post_recv_buffer(RecvBuffer{9, 64, 1}),
               std::out_of_range);
}

TEST(Unicast, DuplicateHandleRejected) {
  TestCluster c(2);
  c.nic(0).post_send(SendRequest{0, 1, 0, make_payload(8), 0, 7});
  EXPECT_THROW(c.nic(0).post_send(SendRequest{0, 1, 0, make_payload(8), 0, 7}),
               std::logic_error);
}

TEST(Unicast, BuffersMatchedBySizeNotFifo) {
  // GM size-matching: an undersized buffer at the head of the queue is
  // skipped in favour of a later buffer that fits.
  TestCluster c(2);
  c.nic(1).post_recv_buffer(RecvBuffer{0, 16, 70});    // too small
  c.nic(1).post_recv_buffer(RecvBuffer{0, 4096, 71});  // fits
  c.nic(0).post_send(SendRequest{0, 1, 0, make_payload(64), 0, 1});
  c.sim.run();
  const auto recv = c.drain_events(1);
  ASSERT_EQ(recv.size(), 1u);
  EXPECT_EQ(recv[0].handle, 71u);
  // The small buffer is still posted for a future small message.
  EXPECT_EQ(c.nic(1).recv_buffers_posted(0), 1u);
}

TEST(Unicast, NoFittingBufferStallsUntilOnePosted) {
  TestCluster c(2);
  c.post_buffers(1, 4, 16);  // plenty of buffers, all too small
  c.nic(0).post_send(SendRequest{0, 1, 0, make_payload(64), 0, 1});
  c.sim.run_for(sim::usec(500));
  EXPECT_TRUE(c.drain_events(1).empty());
  EXPECT_GE(c.nic(1).stats().no_token_drops, 1u);
  c.nic(1).post_recv_buffer(RecvBuffer{0, 4096, 99});
  c.sim.run();
  const auto recv = c.drain_events(1);
  ASSERT_EQ(recv.size(), 1u);
  EXPECT_EQ(recv[0].handle, 99u);
}

TEST(Unicast, SequenceWraparound) {
  TestCluster c(2);
  c.post_buffers(1, 3, 4096);
  // Start both ends 2 packets before the 32-bit wrap point.
  c.nic(0).debug_set_send_seq(0, 1, 0, 0xFFFFFFFEu);
  c.nic(1).debug_set_recv_seq(0, 0, 0, 0xFFFFFFFEu);
  for (std::uint32_t i = 0; i < 3; ++i) {
    c.nic(0).post_send(
        SendRequest{0, 1, 0, make_payload(50, static_cast<std::uint8_t>(i)),
                    i, 1 + i});
  }
  c.sim.run();
  const auto recv = c.drain_events(1);
  ASSERT_EQ(recv.size(), 3u);  // messages cross the wrap cleanly
  for (std::uint32_t i = 0; i < 3; ++i) EXPECT_EQ(recv[i].tag, i);
  EXPECT_EQ(c.drain_events(0).size(), 3u);
}

TEST(Unicast, LargeTransferBandwidthBound) {
  TestCluster c(2);
  c.post_buffers(1, 1, 1 << 20);
  const std::size_t size = 256 * 1024;
  c.nic(0).post_send(SendRequest{0, 1, 0, make_payload(size), 0, 1});
  sim::TimePoint recv_time{0};
  c.sim.spawn([](TestCluster& cl, sim::TimePoint& t) -> sim::Task<void> {
    co_await cl.nic(1).events(0).pop();
    t = cl.sim.now();
  }(c, recv_time));
  c.sim.run();
  // Wire-limited: >= size / 250 MB/s ~= 1049us; some overhead on top, but
  // pipelining should keep it within ~25%.
  const double wire_us = static_cast<double>(size) / 250.0;
  EXPECT_GT(recv_time.microseconds(), wire_us);
  EXPECT_LT(recv_time.microseconds(), wire_us * 1.25);
}

TEST(Unicast, EngineUtilisationAccounted) {
  TestCluster c(2);
  c.post_buffers(1, 1, 4096);
  EXPECT_EQ(c.nic(0).cpu_busy_time(), sim::Duration{0});
  c.nic(0).post_send(SendRequest{0, 1, 0, make_payload(4096), 0, 1});
  c.sim.run();
  // Sender CPU: at least the send-token processing; receiver CPU: at
  // least the per-packet receive processing.
  EXPECT_GE(c.nic(0).cpu_busy_time(),
            c.nic(0).config().send_token_processing);
  EXPECT_GE(c.nic(1).cpu_busy_time(),
            c.nic(1).config().recv_packet_processing);
  // Utilisation stays far below wall time for a single message.
  EXPECT_LT(c.nic(0).cpu_busy_time().nanoseconds(),
            c.sim.now().nanoseconds());
}

TEST(Unicast, SendTokenHighWaterMark) {
  TestCluster c(2);
  c.post_buffers(1, 3, 4096);
  for (OpHandle h = 1; h <= 3; ++h) {
    c.nic(0).post_send(SendRequest{0, 1, 0, make_payload(64), 0, h});
  }
  c.sim.run();
  EXPECT_EQ(c.nic(0).stats().send_tokens_in_use_high_water, 3u);
  EXPECT_EQ(c.nic(0).send_tokens_available(0),
            c.nic(0).config().send_tokens_per_port);
}

TEST(Unicast, StatsCountTraffic) {
  TestCluster c(2);
  c.post_buffers(1, 1, 4096);
  c.nic(0).post_send(SendRequest{0, 1, 0, make_payload(100), 0, 1});
  c.sim.run();
  EXPECT_EQ(c.nic(0).stats().packets_sent, 1u);
  EXPECT_EQ(c.nic(1).stats().acks_sent, 1u);
  EXPECT_EQ(c.nic(1).stats().packets_received, 1u);
  EXPECT_EQ(c.nic(0).stats().retransmissions, 0u);
}

}  // namespace
}  // namespace nicmcast::nic

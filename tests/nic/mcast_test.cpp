// NIC-based multicast: group tables, forwarding without host involvement,
// per-group/per-child reliability, pipelining, protection, deadlock policy.
#include <gtest/gtest.h>

#include "nic_test_util.hpp"

namespace nicmcast::nic {
namespace {

using testing::TestCluster;
using testing::make_payload;

constexpr net::GroupId kGroup = 7;

/// Programs a two-level tree: 0 -> {1, 2}, 1 -> {3}.
void setup_tree(TestCluster& c) {
  c.nic(0).set_group(kGroup, GroupEntry{0, kNoNode, {1, 2}});
  c.nic(1).set_group(kGroup, GroupEntry{0, 0, {3}});
  c.nic(2).set_group(kGroup, GroupEntry{0, 0, {}});
  c.nic(3).set_group(kGroup, GroupEntry{0, 1, {}});
}

TEST(Mcast, TreeDeliversToAllDestinations) {
  TestCluster c(4);
  setup_tree(c);
  for (std::size_t i = 1; i < 4; ++i) c.post_buffers(i, 1, 4096);
  const Payload msg = make_payload(512);
  c.nic(0).post_mcast_send(McastSendRequest{0, kGroup, msg, 9, 1});
  c.sim.run();
  for (std::size_t i = 1; i < 4; ++i) {
    const auto recv = c.drain_events(i);
    ASSERT_EQ(recv.size(), 1u) << "node " << i;
    EXPECT_EQ(recv[0].type, HostEvent::Type::kMcastRecvComplete);
    EXPECT_EQ(recv[0].data, msg);
    EXPECT_EQ(recv[0].group, kGroup);
    EXPECT_EQ(recv[0].tag, 9u);
  }
}

TEST(Mcast, RootCompletesAfterChildrenAck) {
  TestCluster c(4);
  setup_tree(c);
  for (std::size_t i = 1; i < 4; ++i) c.post_buffers(i, 1, 4096);
  c.nic(0).post_mcast_send(McastSendRequest{0, kGroup, make_payload(64), 0, 5});
  c.sim.run();
  const auto sent = c.drain_events(0);
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].type, HostEvent::Type::kMcastSendComplete);
  EXPECT_EQ(sent[0].handle, 5u);
}

TEST(Mcast, IntermediateNicForwardsWithoutHostInvolvement) {
  TestCluster c(4);
  setup_tree(c);
  // Node 1's buffer is posted (receive token present), but its "host"
  // never reads the event queue — forwarding must still reach node 3.
  for (std::size_t i = 1; i < 4; ++i) c.post_buffers(i, 1, 4096);
  c.nic(0).post_mcast_send(McastSendRequest{0, kGroup, make_payload(64), 0, 1});
  c.sim.run();
  EXPECT_EQ(c.nic(1).stats().forwards, 1u);
  EXPECT_EQ(c.drain_events(3).size(), 1u);
}

TEST(Mcast, MultiPacketMessageForwardedAndReassembled) {
  TestCluster c(4);
  setup_tree(c);
  for (std::size_t i = 1; i < 4; ++i) c.post_buffers(i, 1, 20000);
  const Payload msg = make_payload(12000);  // 3 packets
  c.nic(0).post_mcast_send(McastSendRequest{0, kGroup, msg, 0, 1});
  c.sim.run();
  for (std::size_t i = 1; i < 4; ++i) {
    const auto recv = c.drain_events(i);
    ASSERT_EQ(recv.size(), 1u) << "node " << i;
    EXPECT_EQ(recv[0].data, msg);
  }
  EXPECT_EQ(c.nic(1).stats().forwards, 3u);  // per-packet forwarding
}

TEST(Mcast, ForwardingPipelinesPackets) {
  // The leaf must get the message well before "two sequential full-message
  // hops" — intermediate NICs forward each packet as it lands (paper §3).
  TestCluster c(3);
  c.nic(0).set_group(kGroup, GroupEntry{0, kNoNode, {1}});
  c.nic(1).set_group(kGroup, GroupEntry{0, 0, {2}});
  c.nic(2).set_group(kGroup, GroupEntry{0, 1, {}});
  c.post_buffers(1, 1, 65536);
  c.post_buffers(2, 1, 65536);
  const std::size_t size = 16384;  // 4 packets
  c.nic(0).post_mcast_send(McastSendRequest{0, kGroup, make_payload(size), 0, 1});
  sim::TimePoint mid{0};
  sim::TimePoint leaf{0};
  c.sim.spawn([](TestCluster& cl, std::size_t node,
                 sim::TimePoint& t) -> sim::Task<void> {
    co_await cl.nic(node).events(0).pop();
    t = cl.sim.now();
  }(c, 1, mid));
  c.sim.spawn([](TestCluster& cl, std::size_t node,
                 sim::TimePoint& t) -> sim::Task<void> {
    co_await cl.nic(node).events(0).pop();
    t = cl.sim.now();
  }(c, 2, leaf));
  c.sim.run();
  // Pipelined: the leaf completes roughly one packet-time after the
  // intermediate, far less than a full extra message time (~66us).
  const double gap_us = leaf.microseconds() - mid.microseconds();
  EXPECT_GT(gap_us, 0.0);
  EXPECT_LT(gap_us, 30.0);
}

TEST(Mcast, SameSeqToAllChildrenAndPerChildAcks) {
  TestCluster c(4);
  c.nic(0).set_group(kGroup, GroupEntry{0, kNoNode, {1, 2, 3}});
  for (std::size_t i = 1; i < 4; ++i) {
    c.nic(static_cast<net::NodeId>(i))
        .set_group(kGroup, GroupEntry{0, 0, {}});
    c.post_buffers(i, 1, 4096);
  }
  c.nic(0).post_mcast_send(McastSendRequest{0, kGroup, make_payload(64), 0, 1});
  c.sim.run();
  // One packet, three replicas (2 rewrites + forward count 0 at root).
  EXPECT_EQ(c.nic(0).stats().packets_sent, 3u);
  EXPECT_EQ(c.nic(0).stats().header_rewrites, 2u);
  EXPECT_EQ(c.drain_events(0).size(), 1u);
}

TEST(Mcast, LossTowardsOneChildRetransmitsOnlyThatChild) {
  TestCluster c(4);
  c.nic(0).set_group(kGroup, GroupEntry{0, kNoNode, {1, 2, 3}});
  for (std::size_t i = 1; i < 4; ++i) {
    c.nic(static_cast<net::NodeId>(i))
        .set_group(kGroup, GroupEntry{0, 0, {}});
    c.post_buffers(i, 1, 4096);
  }
  auto faults = std::make_unique<net::ScriptedFaults>();
  faults->add_rule({.type = net::PacketType::kMcastData, .dst = 2},
                   net::FaultAction::kDrop);
  c.network.set_fault_injector(std::move(faults));
  c.nic(0).post_mcast_send(McastSendRequest{0, kGroup, make_payload(64), 0, 1});
  c.sim.run();
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(c.drain_events(i).size(), 1u) << "node " << i;
  }
  // Selective retransmission: one packet to node 2 only; nodes 1 and 3
  // never see duplicates.
  EXPECT_EQ(c.nic(0).stats().retransmissions, 1u);
  EXPECT_EQ(c.nic(1).stats().duplicate_drops, 0u);
  EXPECT_EQ(c.nic(3).stats().duplicate_drops, 0u);
  EXPECT_EQ(c.drain_events(0).size(), 1u);
}

TEST(Mcast, LossAtForwardHopRecoveredByIntermediate) {
  TestCluster c(4);
  setup_tree(c);
  for (std::size_t i = 1; i < 4; ++i) c.post_buffers(i, 1, 4096);
  auto faults = std::make_unique<net::ScriptedFaults>();
  // Drop the forwarded packet 1 -> 3.
  faults->add_rule({.type = net::PacketType::kMcastData, .src = 1, .dst = 3},
                   net::FaultAction::kDrop);
  c.network.set_fault_injector(std::move(faults));
  c.nic(0).post_mcast_send(McastSendRequest{0, kGroup, make_payload(64), 0, 1});
  c.sim.run();
  EXPECT_EQ(c.drain_events(3).size(), 1u);
  // The retransmission came from node 1 (host-memory replica), not node 0.
  EXPECT_EQ(c.nic(1).stats().retransmissions, 1u);
  EXPECT_EQ(c.nic(0).stats().retransmissions, 0u);
}

TEST(Mcast, ForwardRetransmitOfNonFirstPacketKeepsContent) {
  // Regression: a forwarded record's replica buffer holds one packet, but
  // its retransmission was once sliced with the whole-message offset —
  // out-of-bounds garbage for any packet after the first.  Drop the THIRD
  // forwarded packet (offset 8192) at the forward hop and verify content.
  NicConfig config;
  config.retransmit_timeout = sim::usec(200);
  TestCluster c(3, config);
  c.nic(0).set_group(kGroup, GroupEntry{0, kNoNode, {1}});
  c.nic(1).set_group(kGroup, GroupEntry{0, 0, {2}});
  c.nic(2).set_group(kGroup, GroupEntry{0, 1, {}});
  c.post_buffers(1, 1, 20000);
  c.post_buffers(2, 1, 20000);
  auto faults = std::make_unique<net::ScriptedFaults>();
  faults->add_predicate_rule(
      [](const net::Packet& p) {
        return p.header.type == net::PacketType::kMcastData &&
               p.header.src == 1 && p.header.dst == 2 &&
               p.header.msg_offset == 8192;
      },
      net::FaultAction::kDrop);
  c.network.set_fault_injector(std::move(faults));
  const Payload msg = testing::make_payload(15000);
  c.nic(0).post_mcast_send(McastSendRequest{0, kGroup, msg, 0, 1});
  c.sim.run();
  const auto recv = c.drain_events(2);
  ASSERT_EQ(recv.size(), 1u);
  EXPECT_EQ(recv[0].data, msg);
  EXPECT_GE(c.nic(1).stats().retransmissions, 1u);
}

TEST(Mcast, SequentialMessagesStayOrderedPerGroup) {
  TestCluster c(4);
  setup_tree(c);
  for (std::size_t i = 1; i < 4; ++i) c.post_buffers(i, 4, 4096);
  for (std::uint32_t m = 0; m < 4; ++m) {
    c.nic(0).post_mcast_send(McastSendRequest{
        0, kGroup, make_payload(100, static_cast<std::uint8_t>(m)), m,
        static_cast<OpHandle>(1 + m)});
  }
  c.sim.run();
  for (std::size_t i = 1; i < 4; ++i) {
    const auto recv = c.drain_events(i);
    ASSERT_EQ(recv.size(), 4u) << "node " << i;
    for (std::uint32_t m = 0; m < 4; ++m) {
      EXPECT_EQ(recv[m].tag, m) << "node " << i;
      EXPECT_EQ(recv[m].data,
                make_payload(100, static_cast<std::uint8_t>(m)));
    }
  }
  EXPECT_EQ(c.drain_events(0).size(), 4u);
}

TEST(Mcast, RandomLossStressAllDeliver) {
  TestCluster c(4);
  setup_tree(c);
  const int kMessages = 10;
  for (std::size_t i = 1; i < 4; ++i) c.post_buffers(i, kMessages, 8192);
  c.network.set_fault_injector(
      std::make_unique<net::RandomFaults>(0.12, 0.05, sim::Rng(5)));
  for (std::uint32_t m = 0; m < kMessages; ++m) {
    c.nic(0).post_mcast_send(McastSendRequest{
        0, kGroup, make_payload(700 + 41 * m, static_cast<std::uint8_t>(m)),
        m, static_cast<OpHandle>(1 + m)});
  }
  c.sim.run();
  for (std::size_t i = 1; i < 4; ++i) {
    const auto recv = c.drain_events(i);
    ASSERT_EQ(recv.size(), static_cast<std::size_t>(kMessages)) << i;
    for (std::uint32_t m = 0; m < kMessages; ++m) {
      EXPECT_EQ(recv[m].tag, m) << "ordering broken at node " << i;
      EXPECT_EQ(recv[m].data,
                make_payload(700 + 41 * m, static_cast<std::uint8_t>(m)));
    }
  }
  EXPECT_EQ(c.drain_events(0).size(), static_cast<std::size_t>(kMessages));
}

TEST(Mcast, LateGroupCreationRecovered) {
  // Demand-driven group creation: node 2's host programs its NIC late (it
  // is skewed); the parent's retransmissions deliver once the entry lands.
  NicConfig config;
  config.retransmit_timeout = sim::usec(200);
  TestCluster c(3, config);
  c.nic(0).set_group(kGroup, GroupEntry{0, kNoNode, {1, 2}});
  c.nic(1).set_group(kGroup, GroupEntry{0, 0, {}});
  c.post_buffers(1, 1, 4096);
  c.post_buffers(2, 1, 4096);
  c.nic(0).post_mcast_send(McastSendRequest{0, kGroup, make_payload(64), 0, 1});
  // 1ms later the lagging host finally creates the group.
  c.sim.schedule_after(sim::msec(1), [&] {
    c.nic(2).set_group(kGroup, GroupEntry{0, 0, {}});
  });
  c.sim.run();
  EXPECT_EQ(c.drain_events(1).size(), 1u);
  EXPECT_EQ(c.drain_events(2).size(), 1u);
  EXPECT_EQ(c.drain_events(0).size(), 1u);
  EXPECT_GE(c.nic(0).stats().retransmissions, 1u);
}

TEST(Mcast, DeepChainDelivers) {
  const std::size_t n = 8;
  TestCluster c(n);
  for (std::size_t i = 0; i < n; ++i) {
    GroupEntry entry;
    entry.port = 0;
    entry.parent = i == 0 ? kNoNode : static_cast<net::NodeId>(i - 1);
    if (i + 1 < n) entry.children = {static_cast<net::NodeId>(i + 1)};
    c.nic(i).set_group(kGroup, entry);
    if (i > 0) c.post_buffers(i, 1, 4096);
  }
  const Payload msg = make_payload(256);
  c.nic(0).post_mcast_send(McastSendRequest{0, kGroup, msg, 0, 1});
  c.sim.run();
  for (std::size_t i = 1; i < n; ++i) {
    const auto recv = c.drain_events(i);
    ASSERT_EQ(recv.size(), 1u) << "node " << i;
    EXPECT_EQ(recv[0].data, msg);
  }
}

TEST(Mcast, EmptyTreeCompletesImmediately) {
  TestCluster c(2);
  c.nic(0).set_group(kGroup, GroupEntry{0, kNoNode, {}});
  c.nic(0).post_mcast_send(McastSendRequest{0, kGroup, make_payload(64), 0, 1});
  c.sim.run();
  const auto sent = c.drain_events(0);
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].type, HostEvent::Type::kMcastSendComplete);
}

TEST(Mcast, ProtectionViolationsRejected) {
  TestCluster c(2);
  c.nic(0).set_group(kGroup, GroupEntry{1, kNoNode, {1}});  // port 1 owns
  EXPECT_THROW(
      c.nic(0).post_mcast_send(McastSendRequest{0, kGroup, {}, 0, 1}),
      std::logic_error);  // posted from port 0
  EXPECT_THROW(
      c.nic(0).post_mcast_send(McastSendRequest{0, 999, {}, 0, 1}),
      std::logic_error);  // unknown group
  EXPECT_THROW(c.nic(0).set_group(net::kNoGroup, GroupEntry{0, kNoNode, {}}),
               std::invalid_argument);
  EXPECT_THROW(c.nic(0).set_group(8, GroupEntry{0, kNoNode, {0}}),
               std::logic_error);  // own child
}

TEST(Mcast, NonRootCannotInitiate) {
  TestCluster c(3);
  c.nic(1).set_group(kGroup, GroupEntry{0, 0, {2}});
  EXPECT_THROW(
      c.nic(1).post_mcast_send(McastSendRequest{0, kGroup, {}, 0, 1}),
      std::logic_error);
}

TEST(Mcast, GroupLifecycle) {
  TestCluster c(2);
  EXPECT_FALSE(c.nic(0).has_group(kGroup));
  c.nic(0).set_group(kGroup, GroupEntry{0, kNoNode, {1}});
  EXPECT_TRUE(c.nic(0).has_group(kGroup));
  c.nic(0).remove_group(kGroup);
  EXPECT_FALSE(c.nic(0).has_group(kGroup));
  c.nic(0).remove_group(kGroup);  // idempotent
}

TEST(Mcast, RemoveGroupWithTrafficInFlightRejected) {
  TestCluster c(2);
  c.nic(0).set_group(kGroup, GroupEntry{0, kNoNode, {1}});
  c.nic(1).set_group(kGroup, GroupEntry{0, 0, {}});
  c.post_buffers(1, 1, 16384);
  // 4 packets take ~66us on the wire, leaving a wide window where send
  // records are outstanding.
  c.nic(0).post_mcast_send(
      McastSendRequest{0, kGroup, make_payload(16384), 0, 1});
  c.sim.run_for(sim::usec(30));
  EXPECT_THROW(c.nic(0).remove_group(kGroup), std::logic_error);
  c.sim.run();
  c.nic(0).remove_group(kGroup);  // fine after quiescing
}

TEST(Mcast, ForwardingNeedsNoSendTokens) {
  // The chosen design transforms the receive token: exhaust node 1's send
  // tokens entirely and the forward still proceeds immediately.
  TestCluster c(4);
  setup_tree(c);
  for (std::size_t i = 1; i < 4; ++i) c.post_buffers(i, 1, 4096);
  c.post_buffers(0, 16, 4096);
  // Burn every send token at the intermediate node on sends to node 0
  // that cannot complete quickly (node 0 has no buffers posted... it does;
  // instead occupy with real sends and DON'T run the sim yet).
  const std::size_t total = c.nic(1).config().send_tokens_per_port;
  for (std::size_t i = 0; i < total; ++i) {
    c.nic(1).post_send(SendRequest{0, 2, 0, make_payload(8), 0, 500 + i});
  }
  EXPECT_EQ(c.nic(1).send_tokens_available(0), 0u);
  c.post_buffers(2, total, 4096);
  c.nic(0).post_mcast_send(McastSendRequest{0, kGroup, make_payload(64), 0, 1});
  c.sim.run();
  EXPECT_EQ(c.drain_events(3).size(), 1u);
  EXPECT_EQ(c.nic(1).stats().forwards, 1u);
}

TEST(Mcast, AblationForwardingStallsWithoutTokens) {
  // The rejected design: forwards draw from the send-token pool and stall
  // while it is empty (paper §5 calls this deadlock-prone).
  NicOptions options;
  options.forwarding_uses_send_tokens = true;
  NicConfig config;
  config.send_tokens_per_port = 2;
  TestCluster c(4, config, options);
  setup_tree(c);
  for (std::size_t i = 1; i < 4; ++i) c.post_buffers(i, 4, 4096);
  // Node 1 burns both tokens on sends to node 2; buffers at node 2 exist,
  // so they complete — but only after a round trip.
  c.nic(1).post_send(SendRequest{0, 2, 0, make_payload(2048), 0, 500});
  c.nic(1).post_send(SendRequest{0, 2, 0, make_payload(2048), 0, 501});
  c.nic(0).post_mcast_send(McastSendRequest{0, kGroup, make_payload(64), 0, 1});
  c.sim.run();
  // Correctness is preserved (the stall resolves when a token frees)...
  EXPECT_EQ(c.drain_events(3).size(), 1u);
  // ...but the trace shows the forward stalled at least once.
  EXPECT_EQ(c.nic(1).stats().forwards, 1u);
}

TEST(Mcast, StagingBuffersReturnAfterForwardAndRdma) {
  // Chosen §5 policy: the packet's SRAM buffer frees once the RDMA and
  // every forwarding transmission finished; steady-state usage stays tiny
  // even for long streams through an intermediate.
  NicConfig config;
  config.nic_rx_buffers = 4;
  TestCluster c(3, config);
  c.nic(0).set_group(kGroup, GroupEntry{0, kNoNode, {1}});
  c.nic(1).set_group(kGroup, GroupEntry{0, 0, {2}});
  c.nic(2).set_group(kGroup, GroupEntry{0, 1, {}});
  c.post_buffers(1, 1, 65536);
  c.post_buffers(2, 1, 65536);
  const Payload msg = make_payload(65536);  // 16 packets >> 4 buffers
  c.nic(0).post_mcast_send(McastSendRequest{0, kGroup, msg, 0, 1});
  c.sim.run();
  const auto recv = c.drain_events(2);
  ASSERT_EQ(recv.size(), 1u);
  EXPECT_EQ(recv[0].data, msg);
  // The pool cycled: never exhausted, nothing refused.
  EXPECT_EQ(c.nic(1).stats().nic_buffer_drops, 0u);
  EXPECT_LE(c.nic(1).stats().rx_buffers_high_water, 4u);
}

TEST(Mcast, NaiveBufferHoldingBlocksHealthySiblings) {
  // The §5 "naive solution": pin each forwarded packet's buffer until all
  // children acked.  A SLOW child (host posts its receive buffer late)
  // then freezes the intermediate's SRAM pool, which refuses packets from
  // upstream and starves the HEALTHY sibling too — the paper's "will slow
  // down the receiver or even block the network".  The chosen policy
  // releases at forward-completion, so the healthy sibling is unaffected.
  auto run = [](bool naive) {
    NicConfig config;
    config.nic_rx_buffers = 3;
    config.retransmit_timeout = sim::usec(300);
    config.max_retries = 1000;
    NicOptions options;
    options.hold_buffers_until_acked = naive;
    TestCluster c(4, config, options);
    // 0 -> 1 -> {2, 3}; node 3 is the laggard.
    c.nic(0).set_group(kGroup, GroupEntry{0, kNoNode, {1}});
    c.nic(1).set_group(kGroup, GroupEntry{0, 0, {2, 3}});
    c.nic(2).set_group(kGroup, GroupEntry{0, 1, {}});
    c.nic(3).set_group(kGroup, GroupEntry{0, 1, {}});
    c.post_buffers(1, 1, 65536);
    c.post_buffers(2, 1, 65536);
    // Node 3's host posts its buffer 2ms late (process skew).
    c.sim.schedule_after(sim::msec(2), [&c] { c.post_buffers(3, 1, 65536); });
    const Payload msg = make_payload(65536);
    c.nic(0).post_mcast_send(McastSendRequest{0, kGroup, msg, 0, 1});
    sim::TimePoint healthy_done{0};
    c.sim.spawn([](TestCluster& cl, sim::TimePoint& t) -> sim::Task<void> {
      co_await cl.nic(2).events(0).pop();
      t = cl.sim.now();
    }(c, healthy_done));
    c.sim.run();
    struct Result {
      sim::TimePoint healthy;
      std::uint64_t refused;
      std::size_t laggard_msgs;
    };
    return Result{healthy_done, c.nic(1).stats().nic_buffer_drops,
                  c.drain_events(3).size()};
  };
  const auto chosen = run(false);
  const auto naive = run(true);
  // Both eventually deliver everywhere.
  EXPECT_EQ(chosen.laggard_msgs, 1u);
  EXPECT_EQ(naive.laggard_msgs, 1u);
  // Chosen: the healthy sibling is done well before the laggard's 2ms
  // wake-up; naive: it is dragged past it, with far more refusals (the
  // fan-out-2 hop is output-rate-bound either way, so the chosen policy
  // may see some transient refusals too).
  EXPECT_LT(chosen.healthy.microseconds(), 2000.0);
  EXPECT_GT(naive.healthy.microseconds(), 2000.0);
  EXPECT_GT(naive.healthy.nanoseconds(),
            3 * chosen.healthy.nanoseconds() / 2);
  EXPECT_GT(naive.refused, chosen.refused);
}

TEST(Mcast, TwoConcurrentGroupsDoNotInterfere) {
  TestCluster c(4);
  const net::GroupId g1 = 11;
  const net::GroupId g2 = 22;
  c.nic(0).set_group(g1, GroupEntry{0, kNoNode, {1, 2, 3}});
  c.nic(3).set_group(g2, GroupEntry{0, kNoNode, {0, 1, 2}});
  for (net::NodeId i = 0; i < 4; ++i) {
    if (i != 0) c.nic(i).set_group(g1, GroupEntry{0, 0, {}});
    if (i != 3) c.nic(i).set_group(g2, GroupEntry{0, 3, {}});
    c.post_buffers(i, 2, 4096);
  }
  c.nic(0).post_mcast_send(McastSendRequest{0, g1, make_payload(64, 1), 1, 1});
  c.nic(3).post_mcast_send(McastSendRequest{0, g2, make_payload(64, 2), 2, 2});
  c.sim.run();
  // Nodes 1 and 2 received both groups' messages.
  for (net::NodeId i : {net::NodeId{1}, net::NodeId{2}}) {
    const auto recv = c.drain_events(i);
    ASSERT_EQ(recv.size(), 2u) << "node " << i;
    EXPECT_NE(recv[0].group, recv[1].group);
  }
  // Roots received the other root's message plus their own completion.
  for (net::NodeId i : {net::NodeId{0}, net::NodeId{3}}) {
    EXPECT_EQ(c.drain_events(i).size(), 2u) << "node " << i;
  }
}

TEST(Mcast, GroupSequenceWrapDeliversEverythingInOrder) {
  // Seed the whole tree's group sequence space just below 2^32: forwarding
  // seq assignment, per-child cumulative acks and duplicate detection must
  // all survive the wrap, under loss.
  NicConfig config;
  config.send_tokens_per_port = 32;
  TestCluster c(4, config);
  setup_tree(c);
  for (std::size_t i = 0; i < 4; ++i) {
    c.nic(i).debug_set_group_seq(kGroup, 0xFFFFFFF8u);
  }
  const int kMessages = 12;
  for (std::size_t i = 1; i < 4; ++i) c.post_buffers(i, kMessages, 4096);
  c.network.set_fault_injector(
      std::make_unique<net::RandomFaults>(0.05, 0.02, sim::Rng(23)));
  for (int m = 0; m < kMessages; ++m) {
    c.nic(0).post_mcast_send(McastSendRequest{
        0, kGroup, make_payload(256 + m * 7, static_cast<std::uint8_t>(m)),
        static_cast<std::uint32_t>(m), static_cast<OpHandle>(1 + m)});
  }
  c.sim.run();
  for (std::size_t i = 1; i < 4; ++i) {
    const auto recv = c.drain_events(i);
    ASSERT_EQ(recv.size(), static_cast<std::size_t>(kMessages))
        << "node " << i;
    for (int m = 0; m < kMessages; ++m) {
      EXPECT_EQ(recv[m].tag, static_cast<std::uint32_t>(m))
          << "node " << i << " order broken";
      EXPECT_EQ(recv[m].data,
                make_payload(256 + m * 7, static_cast<std::uint8_t>(m)));
    }
  }
  EXPECT_EQ(c.drain_events(0).size(), static_cast<std::size_t>(kMessages));
}

TEST(Mcast, RemoveGroupWithStalledForwardRefused) {
  // Regression: under the token-based forwarding ablation a stalled
  // DeferredForward could outlive its group — remove_group erased the group
  // state and the token-release restart path then crashed dereferencing it.
  // Teardown with a stalled forward must be refused as traffic-in-flight,
  // and the forward must still complete once the token frees up.
  NicConfig config;
  config.send_tokens_per_port = 1;
  NicOptions options;
  options.forwarding_uses_send_tokens = true;
  TestCluster c(3, config, options);
  c.nic(0).set_group(kGroup, GroupEntry{0, kNoNode, {1}});
  c.nic(1).set_group(kGroup, GroupEntry{0, 0, {2}});
  c.nic(2).set_group(kGroup, GroupEntry{0, 1, {}});
  c.post_buffers(0, 1, 4096);
  c.post_buffers(1, 1, 4096);
  c.post_buffers(2, 1, 4096);
  // Pin node 1's only send token: its unicast to node 0 is dropped twice,
  // so that operation holds the token across two retransmit timeouts.
  auto faults = std::make_unique<net::ScriptedFaults>();
  faults->add_rule({.type = net::PacketType::kData, .src = 1},
                   net::FaultAction::kDrop, 2);
  c.network.set_fault_injector(std::move(faults));
  c.nic(1).post_send(SendRequest{0, 0, 0, make_payload(64), 0, 1});
  const Payload msg = make_payload(256, 3);
  c.nic(0).post_mcast_send(McastSendRequest{0, kGroup, msg, 0, 2});
  c.sim.schedule_after(sim::usec(200), [&c] {
    ASSERT_EQ(c.nic(1).debug_deferred_forward_count(), 1u);
    EXPECT_THROW(c.nic(1).remove_group(kGroup), std::logic_error);
  });
  c.sim.run();
  // The token came back once the unicast completed and the stalled forward
  // restarted through the still-live group.
  const auto recv = c.drain_events(2);
  ASSERT_EQ(recv.size(), 1u);
  EXPECT_EQ(recv[0].data, msg);
  EXPECT_EQ(c.nic(1).debug_deferred_forward_count(), 0u);
}

}  // namespace
}  // namespace nicmcast::nic

// The paper's "Protection" feature (§2): several user processes share one
// NIC through separate ports; one process must not be able to touch
// another's NIC state, and concurrent per-port traffic must not cross.
// Plus the §5 "Deadlock" argument: id-ordered trees make cyclic
// parent-child waits impossible even under receive-token scarcity.
#include <gtest/gtest.h>

#include "mcast/tree.hpp"
#include "nic_test_util.hpp"

namespace nicmcast::nic {
namespace {

using testing::TestCluster;
using testing::make_payload;

TEST(Protection, PortsHaveIsolatedEventQueues) {
  TestCluster c(2);
  c.nic(1).post_recv_buffer(RecvBuffer{0, 4096, 1});
  c.nic(1).post_recv_buffer(RecvBuffer{2, 4096, 2});
  c.nic(0).post_send(SendRequest{0, 1, 0, make_payload(64, 1), 0, 1});
  c.nic(0).post_send(SendRequest{2, 1, 2, make_payload(64, 2), 0, 2});
  c.sim.run();
  const auto port0 = c.drain_events(1);
  ASSERT_EQ(port0.size(), 1u);
  EXPECT_EQ(port0[0].data, make_payload(64, 1));
  auto ev = c.nic(1).events(2).try_pop();
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->data, make_payload(64, 2));
}

TEST(Protection, GroupsAreOwnedByTheirPort) {
  TestCluster c(2);
  c.nic(0).set_group(5, GroupEntry{1, kNoNode, {1}});
  // A different port on the same NIC cannot multicast, barrier or reduce
  // on port 1's group.
  EXPECT_THROW(c.nic(0).post_mcast_send(McastSendRequest{0, 5, {}, 0, 1}),
               std::logic_error);
  EXPECT_THROW(c.nic(0).post_barrier(0, 5, 1), std::logic_error);
  EXPECT_THROW(c.nic(0).post_reduce(0, 5, Payload(8), 1), std::logic_error);
}

TEST(Protection, PerPortSendTokenPoolsAreIndependent) {
  NicConfig config;
  config.send_tokens_per_port = 2;
  TestCluster c(2, config);
  // Exhaust port 0's pool...
  c.nic(0).post_send(SendRequest{0, 1, 0, make_payload(8), 0, 1});
  c.nic(0).post_send(SendRequest{0, 1, 0, make_payload(8), 0, 2});
  EXPECT_EQ(c.nic(0).send_tokens_available(0), 0u);
  // ...port 2's pool is untouched and still usable.
  EXPECT_EQ(c.nic(0).send_tokens_available(2), 2u);
  c.nic(1).post_recv_buffer(RecvBuffer{2, 4096, 9});
  c.nic(0).post_send(SendRequest{2, 1, 2, make_payload(8), 0, 3});
  c.post_buffers(1, 2, 4096);
  c.sim.run();
  EXPECT_EQ(c.nic(0).send_tokens_available(0), 2u);
  EXPECT_EQ(c.nic(0).send_tokens_available(2), 2u);
}

TEST(Protection, ConcurrentGroupsOnDistinctPortsOfOneNic) {
  // Two "processes" (ports 0 and 1) on every node, each with its own
  // multicast group over the same physical NICs; payloads never cross.
  TestCluster c(3);
  const net::GroupId ga = 10;
  const net::GroupId gb = 20;
  c.nic(0).set_group(ga, GroupEntry{0, kNoNode, {1, 2}});
  c.nic(1).set_group(ga, GroupEntry{0, 0, {}});
  c.nic(2).set_group(ga, GroupEntry{0, 0, {}});
  c.nic(2).set_group(gb, GroupEntry{1, kNoNode, {0, 1}});
  c.nic(0).set_group(gb, GroupEntry{1, 2, {}});
  c.nic(1).set_group(gb, GroupEntry{1, 2, {}});
  for (net::NodeId n = 0; n < 3; ++n) {
    c.nic(n).post_recv_buffer(RecvBuffer{0, 4096, OpHandle{100} + n});
    c.nic(n).post_recv_buffer(RecvBuffer{1, 4096, OpHandle{200} + n});
  }
  c.nic(0).post_mcast_send(McastSendRequest{0, ga, make_payload(100, 1), 1, 1});
  c.nic(2).post_mcast_send(McastSendRequest{1, gb, make_payload(100, 2), 2, 2});
  c.sim.run();
  // Port 0 inboxes: only group A traffic.
  for (net::NodeId n : {net::NodeId{1}, net::NodeId{2}}) {
    const auto evs = c.drain_events(n);
    ASSERT_EQ(evs.size(), 1u) << "node " << n;
    EXPECT_EQ(evs[0].group, ga);
    EXPECT_EQ(evs[0].data, make_payload(100, 1));
  }
  // Port 1 inboxes: only group B traffic.
  for (net::NodeId n : {net::NodeId{0}, net::NodeId{1}}) {
    auto ev = c.nic(n).events(1).try_pop();
    ASSERT_TRUE(ev.has_value()) << "node " << n;
    EXPECT_EQ(ev->group, gb);
    EXPECT_EQ(ev->data, make_payload(100, 2));
  }
}

TEST(Deadlock, OpposingMulticastsUnderTokenScarcityMakeProgress) {
  // The paper's §5 scenario: concurrent broadcasts whose trees include
  // each other's nodes, with each node down to its LAST receive token.
  // Because every builder enforces "child id > parent id unless the parent
  // is the root", the parent-child relation cannot close a cycle and both
  // multicasts complete.
  TestCluster c(4);
  const net::GroupId ga = 1;  // root 0: 0 -> 1 -> 2 -> 3 (ascending chain)
  c.nic(0).set_group(ga, GroupEntry{0, kNoNode, {1}});
  c.nic(1).set_group(ga, GroupEntry{0, 0, {2}});
  c.nic(2).set_group(ga, GroupEntry{0, 1, {3}});
  c.nic(3).set_group(ga, GroupEntry{0, 2, {}});
  // root 3: 3 -> {0, 1, 2} — root may feed smaller ids directly, but no
  // non-root parent has a larger id than its child.
  const net::GroupId gb = 2;
  c.nic(3).set_group(gb, GroupEntry{0, kNoNode, {0, 1, 2}});
  c.nic(0).set_group(gb, GroupEntry{0, 3, {}});
  c.nic(1).set_group(gb, GroupEntry{0, 3, {}});
  c.nic(2).set_group(gb, GroupEntry{0, 3, {}});

  // Exactly ONE receive buffer per node: the scarce-receive-token regime.
  for (net::NodeId n = 0; n < 4; ++n) {
    c.nic(n).post_recv_buffer(RecvBuffer{0, 4096, OpHandle{50} + n});
  }
  c.nic(0).post_mcast_send(McastSendRequest{0, ga, make_payload(512, 1), 1, 1});
  c.nic(3).post_mcast_send(McastSendRequest{0, gb, make_payload(512, 2), 2, 2});
  // First buffers get consumed; hosts repost as messages land (client
  // responsibility, paper §5).  The monitor also records the roots'
  // completion events (6 deliveries expected: A->1,2,3 and B->0,1,2).
  auto root_a_done = std::make_shared<bool>(false);
  auto root_b_done = std::make_shared<bool>(false);
  c.sim.spawn([](TestCluster& cl, std::shared_ptr<bool> a,
                 std::shared_ptr<bool> b) -> sim::Task<void> {
    while (!(*a && *b)) {
      for (net::NodeId n = 0; n < 4; ++n) {
        auto& ch = cl.nic(n).events(0);
        while (auto ev = ch.try_pop()) {
          if (ev->type == HostEvent::Type::kMcastRecvComplete) {
            cl.nic(n).post_recv_buffer(RecvBuffer{0, 4096, 90});
            if (ev->group == 1 && ev->data != make_payload(512, 1)) {
              throw std::logic_error("group A payload corrupted");
            }
            if (ev->group == 2 && ev->data != make_payload(512, 2)) {
              throw std::logic_error("group B payload corrupted");
            }
          } else if (ev->type == HostEvent::Type::kMcastSendComplete) {
            if (n == 0) *a = true;
            if (n == 3) *b = true;
          }
        }
      }
      co_await cl.sim.wait(sim::usec(20));
    }
  }(c, root_a_done, root_b_done));
  // Bounded time: a deadlock would leave retransmission timers churning
  // past this horizon with the roots' operations incomplete.
  c.sim.run_until(sim::TimePoint{sim::msec(50).nanoseconds()});
  EXPECT_TRUE(*root_a_done);
  EXPECT_TRUE(*root_b_done);
}

TEST(Deadlock, TreeBuildersRefuseNothingButOrderingHolds) {
  // Sanity net: every canned builder, any member set — the invariant that
  // makes the above theorem apply is structural, not situational.
  for (std::uint64_t seed = 100; seed < 110; ++seed) {
    sim::Rng rng(seed);
    std::vector<net::NodeId> members;
    for (net::NodeId i = 0; i < 32; ++i) {
      if (rng.chance(0.5)) members.push_back(i);
    }
    if (members.size() < 3) continue;
    const net::NodeId root = members[members.size() / 2];
    std::vector<net::NodeId> dests = members;
    std::erase(dests, root);
    EXPECT_TRUE(
        mcast::build_binomial_tree(root, dests).satisfies_id_ordering());
    EXPECT_TRUE(mcast::build_chain_tree(root, dests).satisfies_id_ordering());
  }
}

}  // namespace
}  // namespace nicmcast::nic

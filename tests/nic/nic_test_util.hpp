// Shared fixture helpers for NIC-level tests: a small cluster of NICs on a
// single-switch network, payload generators and event drains.
#pragma once

#include <memory>
#include <vector>

#include "net/network.hpp"
#include "net/topology.hpp"
#include "nic/nic.hpp"
#include "sim/simulator.hpp"

namespace nicmcast::nic::testing {

struct TestCluster {
  explicit TestCluster(std::size_t n, NicConfig config = {},
                       NicOptions options = {},
                       net::NetworkConfig net_config = {})
      : network(sim, net::Topology::single_switch(n), net_config) {
    nics.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      nics.push_back(std::make_unique<Nic>(
          sim, network, static_cast<net::NodeId>(i), config, options));
    }
  }

  Nic& nic(std::size_t i) { return *nics.at(i); }

  /// Posts `count` receive buffers of `capacity` bytes on port 0 of node i.
  void post_buffers(std::size_t node, std::size_t count, std::size_t capacity,
                    OpHandle first_handle = 1000) {
    for (std::size_t k = 0; k < count; ++k) {
      nic(node).post_recv_buffer(
          RecvBuffer{0, capacity, first_handle + k});
    }
  }

  /// Drains every event currently queued on port 0 of node i.
  std::vector<HostEvent> drain_events(std::size_t node) {
    std::vector<HostEvent> out;
    auto& ch = nic(node).events(0);
    while (auto ev = ch.try_pop()) out.push_back(std::move(*ev));
    return out;
  }

  sim::Simulator sim;
  net::Network network;
  std::vector<std::unique_ptr<Nic>> nics;
};

/// Deterministic payload: byte i = (i * 131 + salt) & 0xff.
inline Payload make_payload(std::size_t n, std::uint8_t salt = 0) {
  Payload p(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = std::byte{static_cast<std::uint8_t>(i * 131u + salt)};
  }
  return p;
}

inline bool payload_equals(const Payload& a, const Payload& b) {
  return a == b;
}

}  // namespace nicmcast::nic::testing

// NIC-level reduction (extension; paper §7 / "NIC-Based Reduction in
// Myrinet Clusters"): lane-wise combining in firmware, epochs, reliability.
#include <gtest/gtest.h>

#include "nic_test_util.hpp"

namespace nicmcast::nic {
namespace {

using testing::TestCluster;

constexpr net::GroupId kGroup = 7;

/// 0 -> {1, 2}, 1 -> {3}.
void setup_tree(TestCluster& c) {
  c.nic(0).set_group(kGroup, GroupEntry{0, kNoNode, {1, 2}});
  c.nic(1).set_group(kGroup, GroupEntry{0, 0, {3}});
  c.nic(2).set_group(kGroup, GroupEntry{0, 0, {}});
  c.nic(3).set_group(kGroup, GroupEntry{0, 1, {}});
}

Payload encode(std::vector<std::int64_t> values) {
  Payload p(values.size() * 8);
  for (std::size_t v = 0; v < values.size(); ++v) {
    auto raw = static_cast<std::uint64_t>(values[v]);
    for (int i = 0; i < 8; ++i) {
      p[v * 8 + i] = std::byte{static_cast<std::uint8_t>(raw >> (8 * i))};
    }
  }
  return p;
}

std::vector<std::int64_t> decode(const Payload& p) {
  std::vector<std::int64_t> values(p.size() / 8);
  for (std::size_t v = 0; v < values.size(); ++v) {
    std::uint64_t raw = 0;
    for (int i = 0; i < 8; ++i) {
      raw |= std::to_integer<std::uint64_t>(p[v * 8 + i]) << (8 * i);
    }
    values[v] = static_cast<std::int64_t>(raw);
  }
  return values;
}

/// Posts one contribution per node and returns the root's result.
std::vector<std::int64_t> run_reduce(TestCluster& c,
                                     std::vector<Payload> contributions) {
  for (net::NodeId n = 0; n < contributions.size(); ++n) {
    c.nic(n).post_reduce(0, kGroup, std::move(contributions[n]), 100 + n);
  }
  c.sim.run();
  for (auto& ev : c.drain_events(0)) {
    if (ev.type == HostEvent::Type::kReduceDone) return decode(ev.data);
  }
  throw std::logic_error("no kReduceDone at root");
}

TEST(NicReduce, SumsAcrossTheTree) {
  TestCluster c(4);
  setup_tree(c);
  const auto sum = run_reduce(
      c, {encode({1, 10}), encode({2, 20}), encode({3, 30}), encode({4, 40})});
  EXPECT_EQ(sum, (std::vector<std::int64_t>{10, 100}));
  // Non-roots saw their contribution absorbed.
  for (std::size_t n = 1; n < 4; ++n) {
    bool complete = false;
    for (auto& ev : c.drain_events(n)) {
      if (ev.type == HostEvent::Type::kSendComplete) complete = true;
    }
    EXPECT_TRUE(complete) << "node " << n;
  }
}

TEST(NicReduce, NegativeValuesAndZero) {
  TestCluster c(4);
  setup_tree(c);
  const auto sum = run_reduce(c, {encode({-5}), encode({3}), encode({0}),
                                  encode({-8})});
  EXPECT_EQ(sum, (std::vector<std::int64_t>{-10}));
}

TEST(NicReduce, CombinesInFirmwareNotAtHosts) {
  TestCluster c(4);
  setup_tree(c);
  run_reduce(c, {encode({1}), encode({1}), encode({1}), encode({1})});
  // Node 1 combined its own + node 3's contribution (2 combines);
  // node 0 combined its own + nodes 1 and 2's partials (3 combines).
  EXPECT_EQ(c.nic(1).stats().reductions_combined, 2u);
  EXPECT_EQ(c.nic(0).stats().reductions_combined, 3u);
  // No reduce data ever reached a non-root host.
  for (std::size_t n = 1; n < 4; ++n) {
    for (auto& ev : c.drain_events(n)) {
      EXPECT_NE(ev.type, HostEvent::Type::kReduceDone);
    }
  }
}

TEST(NicReduce, SkewedArrivalsStillExact) {
  TestCluster c(4);
  setup_tree(c);
  c.nic(2).post_reduce(0, kGroup, encode({200}), 2);
  c.sim.run_for(sim::usec(300));
  c.nic(3).post_reduce(0, kGroup, encode({300}), 3);
  c.sim.run_for(sim::usec(300));
  c.nic(0).post_reduce(0, kGroup, encode({0}), 0);
  c.sim.run_for(sim::usec(300));
  c.nic(1).post_reduce(0, kGroup, encode({100}), 1);
  c.sim.run();
  for (auto& ev : c.drain_events(0)) {
    if (ev.type == HostEvent::Type::kReduceDone) {
      EXPECT_EQ(decode(ev.data), (std::vector<std::int64_t>{600}));
      return;
    }
  }
  FAIL() << "root never completed";
}

TEST(NicReduce, RepeatedEpochs) {
  TestCluster c(4);
  setup_tree(c);
  auto host = [](TestCluster& cl, net::NodeId me) -> sim::Task<void> {
    for (std::int64_t round = 1; round <= 4; ++round) {
      cl.nic(me).post_reduce(0, kGroup, encode({round * (me + 1)}),
                             100 * (me + 1) + round);
      for (;;) {
        HostEvent ev = co_await cl.nic(me).events(0).pop();
        if (me == 0 && ev.type == HostEvent::Type::kReduceDone) {
          // sum over nodes of round*(n+1) = round * 10.
          if (decode(ev.data) != std::vector<std::int64_t>{round * 10}) {
            throw std::logic_error("wrong sum in round");
          }
          break;
        }
        if (me != 0 && ev.type == HostEvent::Type::kSendComplete) break;
      }
    }
  };
  for (net::NodeId n = 0; n < 4; ++n) c.sim.spawn(host(c, n));
  c.sim.run();
}

TEST(NicReduce, LostContributionResent) {
  NicConfig config;
  config.retransmit_timeout = sim::usec(200);
  TestCluster c(4, config);
  setup_tree(c);
  auto faults = std::make_unique<net::ScriptedFaults>();
  faults->add_rule({.type = net::PacketType::kReduce, .src = 3},
                   net::FaultAction::kDrop);
  c.network.set_fault_injector(std::move(faults));
  const auto sum = run_reduce(
      c, {encode({1}), encode({2}), encode({3}), encode({4})});
  EXPECT_EQ(sum, (std::vector<std::int64_t>{10}));
  EXPECT_GE(c.nic(3).stats().reduce_resends, 1u);
}

TEST(NicReduce, LostAckDoesNotDoubleCount) {
  NicConfig config;
  config.retransmit_timeout = sim::usec(200);
  TestCluster c(4, config);
  setup_tree(c);
  auto faults = std::make_unique<net::ScriptedFaults>();
  faults->add_rule({.type = net::PacketType::kReduceAck},
                   net::FaultAction::kDrop);
  c.network.set_fault_injector(std::move(faults));
  const auto sum = run_reduce(
      c, {encode({1}), encode({2}), encode({3}), encode({4})});
  // The duplicate resend must be re-acked, never re-combined.
  EXPECT_EQ(sum, (std::vector<std::int64_t>{10}));
}

TEST(NicReduce, RandomLossStress) {
  NicConfig config;
  config.retransmit_timeout = sim::usec(150);
  TestCluster c(4, config);
  setup_tree(c);
  c.network.set_fault_injector(
      std::make_unique<net::RandomFaults>(0.10, 0.05, sim::Rng(23)));
  const auto sum = run_reduce(
      c, {encode({7, -1}), encode({8, -2}), encode({9, -3}),
          encode({10, -4})});
  EXPECT_EQ(sum, (std::vector<std::int64_t>{34, -10}));
}

TEST(NicReduce, InvalidPostsRejected) {
  TestCluster c(4);
  setup_tree(c);
  EXPECT_THROW(c.nic(0).post_reduce(0, 999, encode({1}), 1),
               std::logic_error);
  EXPECT_THROW(c.nic(0).post_reduce(9, kGroup, encode({1}), 1),
               std::out_of_range);
  EXPECT_THROW(c.nic(0).post_reduce(1, kGroup, encode({1}), 1),
               std::logic_error);  // protection: wrong port
  EXPECT_THROW(c.nic(0).post_reduce(0, kGroup, Payload(7), 1),
               std::invalid_argument);  // not 8-byte lanes
  EXPECT_THROW(c.nic(0).post_reduce(0, kGroup, Payload{}, 1),
               std::invalid_argument);
  c.nic(0).post_reduce(0, kGroup, encode({1}), 1);
  EXPECT_THROW(c.nic(0).post_reduce(0, kGroup, encode({2}), 2),
               std::logic_error);  // double entry
}

TEST(NicReduce, WideVector) {
  TestCluster c(4);
  setup_tree(c);
  std::vector<std::int64_t> v(256);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<std::int64_t>(i);
  }
  const auto sum = run_reduce(c, {encode(v), encode(v), encode(v), encode(v)});
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(sum[i], static_cast<std::int64_t>(4 * i));
  }
}

}  // namespace
}  // namespace nicmcast::nic

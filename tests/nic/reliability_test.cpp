// Go-back-N reliability under injected faults: drops, corruption, lost
// acks, bursty loss, peer death.
#include <gtest/gtest.h>

#include "nic_test_util.hpp"

namespace nicmcast::nic {
namespace {

using testing::TestCluster;
using testing::make_payload;

std::unique_ptr<net::ScriptedFaults> scripted() {
  return std::make_unique<net::ScriptedFaults>();
}

TEST(Reliability, DroppedDataPacketRetransmitted) {
  TestCluster c(2);
  c.post_buffers(1, 1, 4096);
  auto faults = scripted();
  faults->add_rule({.type = net::PacketType::kData}, net::FaultAction::kDrop);
  c.network.set_fault_injector(std::move(faults));
  const Payload msg = make_payload(128);
  c.nic(0).post_send(SendRequest{0, 1, 0, msg, 0, 1});
  c.sim.run();
  const auto recv = c.drain_events(1);
  ASSERT_EQ(recv.size(), 1u);
  EXPECT_EQ(recv[0].data, msg);
  EXPECT_EQ(c.nic(0).stats().retransmissions, 1u);
  EXPECT_EQ(c.drain_events(0).size(), 1u);  // send still completes
}

TEST(Reliability, CorruptedPacketDroppedByCrcAndRecovered) {
  TestCluster c(2);
  c.post_buffers(1, 1, 4096);
  auto faults = scripted();
  faults->add_rule({.type = net::PacketType::kData},
                   net::FaultAction::kCorrupt);
  c.network.set_fault_injector(std::move(faults));
  c.nic(0).post_send(SendRequest{0, 1, 0, make_payload(128), 0, 1});
  c.sim.run();
  EXPECT_EQ(c.nic(1).stats().crc_drops, 1u);
  ASSERT_EQ(c.drain_events(1).size(), 1u);
  EXPECT_GE(c.nic(0).stats().retransmissions, 1u);
}

TEST(Reliability, LostAckCausesDuplicateWhichIsReAcked) {
  TestCluster c(2);
  c.post_buffers(1, 1, 4096);
  auto faults = scripted();
  faults->add_rule({.type = net::PacketType::kAck}, net::FaultAction::kDrop);
  c.network.set_fault_injector(std::move(faults));
  c.nic(0).post_send(SendRequest{0, 1, 0, make_payload(128), 0, 1});
  c.sim.run();
  // Exactly one receive event despite the duplicate data packet.
  EXPECT_EQ(c.drain_events(1).size(), 1u);
  EXPECT_EQ(c.nic(1).stats().duplicate_drops, 1u);
  // Sender eventually completes off the re-ack.
  const auto sent = c.drain_events(0);
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].type, HostEvent::Type::kSendComplete);
}

TEST(Reliability, MidMessageLossTriggersGoBackN) {
  TestCluster c(2);
  c.post_buffers(1, 1, 20000);
  auto faults = scripted();
  // Drop the second packet (seq=1) of a 3-packet message.
  faults->add_rule({.type = net::PacketType::kData, .seq = 1},
                   net::FaultAction::kDrop);
  c.network.set_fault_injector(std::move(faults));
  const Payload msg = make_payload(10000);
  c.nic(0).post_send(SendRequest{0, 1, 0, msg, 0, 1});
  c.sim.run();
  const auto recv = c.drain_events(1);
  ASSERT_EQ(recv.size(), 1u);
  EXPECT_EQ(recv[0].data, msg);
  // Packet 2 arrived out of order and was discarded, then 1 and 2 were
  // both retransmitted (Go-back-N window resend).
  EXPECT_GE(c.nic(1).stats().out_of_order_drops, 1u);
  EXPECT_GE(c.nic(0).stats().retransmissions, 2u);
}

TEST(Reliability, RandomLossStressStillDeliversEverything) {
  NicConfig config;
  config.send_tokens_per_port = 64;  // post the whole burst at once
  TestCluster c(2, config);
  const int kMessages = 30;
  c.post_buffers(1, kMessages, 8192);
  c.network.set_fault_injector(
      std::make_unique<net::RandomFaults>(0.10, 0.05, sim::Rng(99)));
  for (int i = 0; i < kMessages; ++i) {
    c.nic(0).post_send(SendRequest{
        0, 1, 0, make_payload(500 + i * 37, static_cast<std::uint8_t>(i)),
        static_cast<std::uint32_t>(i), static_cast<OpHandle>(1 + i)});
  }
  c.sim.run();
  const auto recv = c.drain_events(1);
  ASSERT_EQ(recv.size(), static_cast<std::size_t>(kMessages));
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_EQ(recv[i].tag, static_cast<std::uint32_t>(i)) << "order broken";
    EXPECT_EQ(recv[i].data,
              make_payload(500 + i * 37, static_cast<std::uint8_t>(i)));
  }
  EXPECT_EQ(c.drain_events(0).size(), static_cast<std::size_t>(kMessages));
  EXPECT_GT(c.nic(0).stats().retransmissions, 0u);
}

TEST(Reliability, UnreachablePeerFailsTheOperation) {
  NicConfig config;
  config.retransmit_timeout = sim::usec(100);
  config.max_retries = 3;
  TestCluster c(2, config);
  c.post_buffers(1, 1, 4096);
  auto faults = scripted();
  faults->add_rule({.type = net::PacketType::kData}, net::FaultAction::kDrop,
                   1000);  // black-hole every data packet
  c.network.set_fault_injector(std::move(faults));
  c.nic(0).post_send(SendRequest{0, 1, 0, make_payload(64), 0, 1});
  c.sim.run();
  const auto sent = c.drain_events(0);
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].type, HostEvent::Type::kSendFailed);
  EXPECT_EQ(sent[0].handle, 1u);
  // The send token came back despite the failure.
  EXPECT_EQ(c.nic(0).send_tokens_available(0),
            c.nic(0).config().send_tokens_per_port);
}

TEST(Reliability, RetriesBoundedUnderTotalBlackout) {
  NicConfig config;
  config.retransmit_timeout = sim::usec(100);
  config.max_retries = 5;
  TestCluster c(2, config);
  auto faults = scripted();
  faults->add_rule({}, net::FaultAction::kDrop, 1'000'000);
  c.network.set_fault_injector(std::move(faults));
  c.nic(0).post_send(SendRequest{0, 1, 0, make_payload(64), 0, 1});
  c.sim.run();
  EXPECT_LE(c.nic(0).stats().retransmissions, 5u);
}

TEST(Reliability, BackToBackLossOnSamePacket) {
  TestCluster c(2);
  c.post_buffers(1, 1, 4096);
  auto faults = scripted();
  faults->add_rule({.type = net::PacketType::kData, .seq = 0},
                   net::FaultAction::kDrop, 3);  // drop 3 attempts
  c.network.set_fault_injector(std::move(faults));
  c.nic(0).post_send(SendRequest{0, 1, 0, make_payload(64), 0, 1});
  c.sim.run();
  ASSERT_EQ(c.drain_events(1).size(), 1u);
  EXPECT_EQ(c.nic(0).stats().retransmissions, 3u);
}

TEST(Reliability, ConcurrentConnectionsIsolated) {
  // Loss on the 0->1 connection must not disturb 0->2 (per-connection
  // Go-back-N state).
  TestCluster c(3);
  c.post_buffers(1, 1, 4096);
  c.post_buffers(2, 1, 4096);
  auto faults = scripted();
  faults->add_rule({.type = net::PacketType::kData, .dst = 1},
                   net::FaultAction::kDrop, 2);
  c.network.set_fault_injector(std::move(faults));
  c.nic(0).post_send(SendRequest{0, 1, 0, make_payload(64, 1), 0, 1});
  c.nic(0).post_send(SendRequest{0, 2, 0, make_payload(64, 2), 0, 2});

  sim::TimePoint t2{0};
  c.sim.spawn([](TestCluster& cl, sim::TimePoint& t) -> sim::Task<void> {
    co_await cl.nic(2).events(0).pop();
    t = cl.sim.now();
  }(c, t2));
  c.sim.run();
  ASSERT_EQ(c.drain_events(1).size(), 1u);
  // Node 2 was not delayed by node 1's retransmission timeout.
  EXPECT_LT(t2.microseconds(), 100.0);
}

TEST(Reliability, UnicastSurvivesSequenceWrapUnderLoss) {
  // Start the connection's sequence space just below 2^32 so the Go-back-N
  // window, cumulative acks and duplicate detection all straddle the wrap,
  // with enough loss that retransmission comparisons cross it too.
  NicConfig config;
  config.send_tokens_per_port = 64;
  TestCluster c(2, config);
  const int kMessages = 32;
  c.post_buffers(1, kMessages, 4096);
  c.nic(0).debug_set_send_seq(0, 1, 0, 0xFFFFFFF0u);
  c.nic(1).debug_set_recv_seq(0, 0, 0, 0xFFFFFFF0u);
  c.network.set_fault_injector(
      std::make_unique<net::RandomFaults>(0.10, 0.05, sim::Rng(17)));
  for (int i = 0; i < kMessages; ++i) {
    c.nic(0).post_send(SendRequest{
        0, 1, 0, make_payload(200 + i * 13, static_cast<std::uint8_t>(i)),
        static_cast<std::uint32_t>(i), static_cast<OpHandle>(1 + i)});
  }
  c.sim.run();
  const auto recv = c.drain_events(1);
  ASSERT_EQ(recv.size(), static_cast<std::size_t>(kMessages));
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_EQ(recv[i].tag, static_cast<std::uint32_t>(i)) << "order broken";
    EXPECT_EQ(recv[i].data,
              make_payload(200 + i * 13, static_cast<std::uint8_t>(i)));
  }
  EXPECT_EQ(c.drain_events(0).size(), static_cast<std::size_t>(kMessages));
}

TEST(Reliability, ConnectionRecoversAfterMaxRetriesFailure) {
  // Regression: a max-retries failure cleared the sender's window but left
  // next_seq ahead of the receiver's expected_seq, permanently wedging the
  // connection — every subsequent send was discarded as out-of-order and
  // timed out too.  The kCtrl reset handshake re-seats the receiver.
  NicConfig config;
  config.retransmit_timeout = sim::usec(100);
  config.max_retries = 3;
  TestCluster c(2, config);
  c.post_buffers(1, 1, 4096);
  auto faults = scripted();
  // Eat exactly the first message's attempts: initial send + 3 retries.
  faults->add_rule({.type = net::PacketType::kData}, net::FaultAction::kDrop,
                   4);
  c.network.set_fault_injector(std::move(faults));
  c.nic(0).post_send(SendRequest{0, 1, 0, make_payload(64), 0, 1});
  c.sim.run();
  auto sent = c.drain_events(0);
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].type, HostEvent::Type::kSendFailed);
  EXPECT_EQ(c.nic(0).stats().conn_resets, 1u);

  // The connection must be usable again after the failure.
  const Payload msg = make_payload(128, 7);
  c.nic(0).post_send(SendRequest{0, 1, 0, msg, 1, 2});
  c.sim.run();
  sent = c.drain_events(0);
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].type, HostEvent::Type::kSendComplete);
  const auto recv = c.drain_events(1);
  ASSERT_EQ(recv.size(), 1u);
  EXPECT_EQ(recv[0].data, msg);
}

TEST(Reliability, IdleConnectionsReclaimed) {
  // Regression: per-peer connection state was never reclaimed — a
  // long-lived node leaked an entry for every peer it ever talked to.
  NicConfig config;
  config.conn_idle_timeout = sim::msec(5);
  TestCluster c(3, config);
  c.post_buffers(1, 1, 4096);
  c.post_buffers(2, 1, 4096);
  c.nic(0).post_send(SendRequest{0, 1, 0, make_payload(64, 1), 0, 1});
  c.nic(0).post_send(SendRequest{0, 2, 0, make_payload(64, 2), 0, 2});
  c.sim.run();  // delivery + acks, then the idle close handshakes
  EXPECT_EQ(c.drain_events(1).size(), 1u);
  EXPECT_EQ(c.drain_events(2).size(), 1u);
  EXPECT_EQ(c.nic(0).debug_sender_conn_count(), 0u);
  EXPECT_EQ(c.nic(1).debug_receiver_conn_count(), 0u);
  EXPECT_EQ(c.nic(2).debug_receiver_conn_count(), 0u);
  EXPECT_EQ(c.nic(0).stats().conns_reclaimed, 2u);
}

TEST(Reliability, IdleCloseRetriesAfterLossBurstSwallowsHandshake) {
  // Found by the chaos soak (burst injector): when every packet of an idle
  // close handshake fell inside a loss burst, the sender exhausted
  // max_retries, gave up, and stranded the connection entry forever.  The
  // close must re-arm the idle timer and try again once the burst clears.
  NicConfig config;
  config.conn_idle_timeout = sim::msec(5);
  config.retransmit_timeout = sim::usec(100);
  config.max_retries = 3;
  TestCluster c(2, config);
  c.post_buffers(1, 1, 4096);
  auto faults = scripted();
  // Swallow the whole first handshake: initial CloseReq + 3 retries.
  faults->add_rule({.type = net::PacketType::kCtrl}, net::FaultAction::kDrop,
                   4);
  c.network.set_fault_injector(std::move(faults));
  c.nic(0).post_send(SendRequest{0, 1, 0, make_payload(64, 1), 0, 1});
  c.sim.run();
  EXPECT_EQ(c.drain_events(1).size(), 1u);
  EXPECT_EQ(c.nic(0).debug_sender_conn_count(), 0u);
  EXPECT_EQ(c.nic(1).debug_receiver_conn_count(), 0u);
  EXPECT_EQ(c.nic(0).stats().conns_reclaimed, 1u);
}

TEST(Reliability, IdleReclaimDisabledByDefault) {
  TestCluster c(2);
  c.post_buffers(1, 1, 4096);
  c.nic(0).post_send(SendRequest{0, 1, 0, make_payload(64), 0, 1});
  c.sim.run();
  EXPECT_EQ(c.nic(0).debug_sender_conn_count(), 1u);
  EXPECT_EQ(c.nic(1).debug_receiver_conn_count(), 1u);
  EXPECT_EQ(c.nic(0).stats().conns_reclaimed, 0u);
}

TEST(Reliability, NewTrafficAbortsIdleCloseAndResyncs) {
  // A send posted while a close handshake is in flight must abort the close
  // and proactively resync (the peer may have erased its state already),
  // then the connection drains and is reclaimed on the next idle period.
  NicConfig config;
  config.conn_idle_timeout = sim::msec(5);
  TestCluster c(2, config);
  c.post_buffers(1, 2, 4096);
  auto faults = scripted();
  // Lose the first CloseReq so the handshake is still open at t=5.5ms.
  faults->add_rule({.type = net::PacketType::kCtrl}, net::FaultAction::kDrop,
                   1);
  c.network.set_fault_injector(std::move(faults));
  c.nic(0).post_send(SendRequest{0, 1, 0, make_payload(64, 1), 0, 1});
  const Payload second = make_payload(96, 2);
  c.sim.schedule_after(sim::msec(5) + sim::usec(500), [&c, &second] {
    c.nic(0).post_send(SendRequest{0, 1, 0, second, 0, 2});
  });
  c.sim.run();
  const auto recv = c.drain_events(1);
  ASSERT_EQ(recv.size(), 2u);
  EXPECT_EQ(recv[1].data, second);
  EXPECT_EQ(c.nic(0).stats().conn_resets, 1u);
  // Once the second message drained, the idle close retried and reclaimed.
  EXPECT_EQ(c.nic(0).debug_sender_conn_count(), 0u);
  EXPECT_EQ(c.nic(0).stats().conns_reclaimed, 1u);
}

}  // namespace
}  // namespace nicmcast::nic

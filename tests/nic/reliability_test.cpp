// Go-back-N reliability under injected faults: drops, corruption, lost
// acks, bursty loss, peer death.
#include <gtest/gtest.h>

#include "nic_test_util.hpp"

namespace nicmcast::nic {
namespace {

using testing::TestCluster;
using testing::make_payload;

std::unique_ptr<net::ScriptedFaults> scripted() {
  return std::make_unique<net::ScriptedFaults>();
}

TEST(Reliability, DroppedDataPacketRetransmitted) {
  TestCluster c(2);
  c.post_buffers(1, 1, 4096);
  auto faults = scripted();
  faults->add_rule({.type = net::PacketType::kData}, net::FaultAction::kDrop);
  c.network.set_fault_injector(std::move(faults));
  const Payload msg = make_payload(128);
  c.nic(0).post_send(SendRequest{0, 1, 0, msg, 0, 1});
  c.sim.run();
  const auto recv = c.drain_events(1);
  ASSERT_EQ(recv.size(), 1u);
  EXPECT_EQ(recv[0].data, msg);
  EXPECT_EQ(c.nic(0).stats().retransmissions, 1u);
  EXPECT_EQ(c.drain_events(0).size(), 1u);  // send still completes
}

TEST(Reliability, CorruptedPacketDroppedByCrcAndRecovered) {
  TestCluster c(2);
  c.post_buffers(1, 1, 4096);
  auto faults = scripted();
  faults->add_rule({.type = net::PacketType::kData},
                   net::FaultAction::kCorrupt);
  c.network.set_fault_injector(std::move(faults));
  c.nic(0).post_send(SendRequest{0, 1, 0, make_payload(128), 0, 1});
  c.sim.run();
  EXPECT_EQ(c.nic(1).stats().crc_drops, 1u);
  ASSERT_EQ(c.drain_events(1).size(), 1u);
  EXPECT_GE(c.nic(0).stats().retransmissions, 1u);
}

TEST(Reliability, LostAckCausesDuplicateWhichIsReAcked) {
  TestCluster c(2);
  c.post_buffers(1, 1, 4096);
  auto faults = scripted();
  faults->add_rule({.type = net::PacketType::kAck}, net::FaultAction::kDrop);
  c.network.set_fault_injector(std::move(faults));
  c.nic(0).post_send(SendRequest{0, 1, 0, make_payload(128), 0, 1});
  c.sim.run();
  // Exactly one receive event despite the duplicate data packet.
  EXPECT_EQ(c.drain_events(1).size(), 1u);
  EXPECT_EQ(c.nic(1).stats().duplicate_drops, 1u);
  // Sender eventually completes off the re-ack.
  const auto sent = c.drain_events(0);
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].type, HostEvent::Type::kSendComplete);
}

TEST(Reliability, MidMessageLossTriggersGoBackN) {
  TestCluster c(2);
  c.post_buffers(1, 1, 20000);
  auto faults = scripted();
  // Drop the second packet (seq=1) of a 3-packet message.
  faults->add_rule({.type = net::PacketType::kData, .seq = 1},
                   net::FaultAction::kDrop);
  c.network.set_fault_injector(std::move(faults));
  const Payload msg = make_payload(10000);
  c.nic(0).post_send(SendRequest{0, 1, 0, msg, 0, 1});
  c.sim.run();
  const auto recv = c.drain_events(1);
  ASSERT_EQ(recv.size(), 1u);
  EXPECT_EQ(recv[0].data, msg);
  // Packet 2 arrived out of order and was discarded, then 1 and 2 were
  // both retransmitted (Go-back-N window resend).
  EXPECT_GE(c.nic(1).stats().out_of_order_drops, 1u);
  EXPECT_GE(c.nic(0).stats().retransmissions, 2u);
}

TEST(Reliability, RandomLossStressStillDeliversEverything) {
  NicConfig config;
  config.send_tokens_per_port = 64;  // post the whole burst at once
  TestCluster c(2, config);
  const int kMessages = 30;
  c.post_buffers(1, kMessages, 8192);
  c.network.set_fault_injector(
      std::make_unique<net::RandomFaults>(0.10, 0.05, sim::Rng(99)));
  for (int i = 0; i < kMessages; ++i) {
    c.nic(0).post_send(SendRequest{
        0, 1, 0, make_payload(500 + i * 37, static_cast<std::uint8_t>(i)),
        static_cast<std::uint32_t>(i), static_cast<OpHandle>(1 + i)});
  }
  c.sim.run();
  const auto recv = c.drain_events(1);
  ASSERT_EQ(recv.size(), static_cast<std::size_t>(kMessages));
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_EQ(recv[i].tag, static_cast<std::uint32_t>(i)) << "order broken";
    EXPECT_EQ(recv[i].data,
              make_payload(500 + i * 37, static_cast<std::uint8_t>(i)));
  }
  EXPECT_EQ(c.drain_events(0).size(), static_cast<std::size_t>(kMessages));
  EXPECT_GT(c.nic(0).stats().retransmissions, 0u);
}

TEST(Reliability, UnreachablePeerFailsTheOperation) {
  NicConfig config;
  config.retransmit_timeout = sim::usec(100);
  config.max_retries = 3;
  TestCluster c(2, config);
  c.post_buffers(1, 1, 4096);
  auto faults = scripted();
  faults->add_rule({.type = net::PacketType::kData}, net::FaultAction::kDrop,
                   1000);  // black-hole every data packet
  c.network.set_fault_injector(std::move(faults));
  c.nic(0).post_send(SendRequest{0, 1, 0, make_payload(64), 0, 1});
  c.sim.run();
  const auto sent = c.drain_events(0);
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].type, HostEvent::Type::kSendFailed);
  EXPECT_EQ(sent[0].handle, 1u);
  // The send token came back despite the failure.
  EXPECT_EQ(c.nic(0).send_tokens_available(0),
            c.nic(0).config().send_tokens_per_port);
}

TEST(Reliability, RetriesBoundedUnderTotalBlackout) {
  NicConfig config;
  config.retransmit_timeout = sim::usec(100);
  config.max_retries = 5;
  TestCluster c(2, config);
  auto faults = scripted();
  faults->add_rule({}, net::FaultAction::kDrop, 1'000'000);
  c.network.set_fault_injector(std::move(faults));
  c.nic(0).post_send(SendRequest{0, 1, 0, make_payload(64), 0, 1});
  c.sim.run();
  EXPECT_LE(c.nic(0).stats().retransmissions, 5u);
}

TEST(Reliability, BackToBackLossOnSamePacket) {
  TestCluster c(2);
  c.post_buffers(1, 1, 4096);
  auto faults = scripted();
  faults->add_rule({.type = net::PacketType::kData, .seq = 0},
                   net::FaultAction::kDrop, 3);  // drop 3 attempts
  c.network.set_fault_injector(std::move(faults));
  c.nic(0).post_send(SendRequest{0, 1, 0, make_payload(64), 0, 1});
  c.sim.run();
  ASSERT_EQ(c.drain_events(1).size(), 1u);
  EXPECT_EQ(c.nic(0).stats().retransmissions, 3u);
}

TEST(Reliability, ConcurrentConnectionsIsolated) {
  // Loss on the 0->1 connection must not disturb 0->2 (per-connection
  // Go-back-N state).
  TestCluster c(3);
  c.post_buffers(1, 1, 4096);
  c.post_buffers(2, 1, 4096);
  auto faults = scripted();
  faults->add_rule({.type = net::PacketType::kData, .dst = 1},
                   net::FaultAction::kDrop, 2);
  c.network.set_fault_injector(std::move(faults));
  c.nic(0).post_send(SendRequest{0, 1, 0, make_payload(64, 1), 0, 1});
  c.nic(0).post_send(SendRequest{0, 2, 0, make_payload(64, 2), 0, 2});

  sim::TimePoint t2{0};
  c.sim.spawn([](TestCluster& cl, sim::TimePoint& t) -> sim::Task<void> {
    co_await cl.nic(2).events(0).pop();
    t = cl.sim.now();
  }(c, t2));
  c.sim.run();
  ASSERT_EQ(c.drain_events(1).size(), 1u);
  // Node 2 was not delayed by node 1's retransmission timeout.
  EXPECT_LT(t2.microseconds(), 100.0);
}

}  // namespace
}  // namespace nicmcast::nic

#include "nic/sequence.hpp"

#include <gtest/gtest.h>

namespace nicmcast::nic {
namespace {

TEST(Sequence, BasicOrdering) {
  EXPECT_TRUE(seq_before(1, 2));
  EXPECT_FALSE(seq_before(2, 1));
  EXPECT_FALSE(seq_before(5, 5));
}

TEST(Sequence, BeforeEq) {
  EXPECT_TRUE(seq_before_eq(5, 5));
  EXPECT_TRUE(seq_before_eq(4, 5));
  EXPECT_FALSE(seq_before_eq(6, 5));
}

TEST(Sequence, WrapAroundOrdering) {
  const SeqNum near_max = 0xFFFFFFFFu;
  EXPECT_TRUE(seq_before(near_max, 0));       // max precedes wrapped 0
  EXPECT_TRUE(seq_before(near_max - 5, near_max));
  EXPECT_TRUE(seq_before(near_max, 5));
  EXPECT_FALSE(seq_before(5, near_max));
}

TEST(Sequence, DistanceAcrossWrap) {
  EXPECT_EQ(seq_distance(0xFFFFFFFFu, 1), 2u);
  EXPECT_EQ(seq_distance(10, 10), 0u);
  EXPECT_EQ(seq_distance(10, 15), 5u);
}

TEST(Sequence, HalfSpaceBoundary) {
  // Elements more than 2^31 apart invert the comparison — that is the
  // inherent limit of serial-number arithmetic, sanity-check it holds.
  EXPECT_TRUE(seq_before(0, 0x7FFFFFFFu));
  EXPECT_FALSE(seq_before(0, 0x80000001u));  // "before" flips past half-space
}

}  // namespace
}  // namespace nicmcast::nic

#include "nic/sequence.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/random.hpp"

namespace nicmcast::nic {
namespace {

TEST(Sequence, BasicOrdering) {
  EXPECT_TRUE(seq_before(1, 2));
  EXPECT_FALSE(seq_before(2, 1));
  EXPECT_FALSE(seq_before(5, 5));
}

TEST(Sequence, BeforeEq) {
  EXPECT_TRUE(seq_before_eq(5, 5));
  EXPECT_TRUE(seq_before_eq(4, 5));
  EXPECT_FALSE(seq_before_eq(6, 5));
}

TEST(Sequence, WrapAroundOrdering) {
  const SeqNum near_max = 0xFFFFFFFFu;
  EXPECT_TRUE(seq_before(near_max, 0));       // max precedes wrapped 0
  EXPECT_TRUE(seq_before(near_max - 5, near_max));
  EXPECT_TRUE(seq_before(near_max, 5));
  EXPECT_FALSE(seq_before(5, near_max));
}

TEST(Sequence, DistanceAcrossWrap) {
  EXPECT_EQ(seq_distance(0xFFFFFFFFu, 1), 2u);
  EXPECT_EQ(seq_distance(10, 10), 0u);
  EXPECT_EQ(seq_distance(10, 15), 5u);
}

TEST(Sequence, HalfSpaceBoundary) {
  // Elements more than 2^31 apart invert the comparison — that is the
  // inherent limit of serial-number arithmetic, sanity-check it holds.
  EXPECT_TRUE(seq_before(0, 0x7FFFFFFFu));
  EXPECT_FALSE(seq_before(0, 0x80000001u));  // "before" flips past half-space
}

// Property: for any base point and any pair of small forward offsets, the
// ordering predicates agree with the offsets — independent of where the base
// sits in the 32-bit space, including both sides of the 2^32 wrap and the
// zero crossing.
TEST(Sequence, PropertyOrderingMatchesOffsetsEverywhere) {
  sim::Rng rng(2024);
  const std::vector<SeqNum> bases = {
      0u,          1u,          2u,           0x7FFFFFFEu, 0x7FFFFFFFu,
      0x80000000u, 0x80000001u, 0xFFFFFFF0u,  0xFFFFFFFEu, 0xFFFFFFFFu};
  for (SeqNum base : bases) {
    for (int trial = 0; trial < 2000; ++trial) {
      const auto i = static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 20));
      const auto j = static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 20));
      const SeqNum a = base + i;
      const SeqNum b = base + j;
      EXPECT_EQ(seq_before(a, b), i < j)
          << "base=" << base << " i=" << i << " j=" << j;
      EXPECT_EQ(seq_before_eq(a, b), i <= j)
          << "base=" << base << " i=" << i << " j=" << j;
      EXPECT_EQ(seq_distance(a, b), b - a);
    }
  }
}

// Property: walking any window of consecutive seqs across the wrap keeps
// every Go-back-N acceptance/ack comparison consistent: each seq precedes
// its successor, cumulative-ack containment holds, and distance telescopes.
TEST(Sequence, PropertyConsecutiveWindowAcrossWrap) {
  for (const SeqNum start : {0xFFFFFFC0u, 0xFFFFFFFFu, 0u}) {
    SeqNum s = start;
    for (int step = 0; step < 256; ++step, ++s) {
      EXPECT_TRUE(seq_before(s, s + 1));
      EXPECT_FALSE(seq_before(s + 1, s));
      EXPECT_TRUE(seq_before_eq(s, s + 1));
      // A cumulative ack for s+1 covers a record holding s (the release
      // test the retransmit path performs).
      EXPECT_TRUE(seq_before(s, s + 1) && seq_before_eq(s + 1, s + 1));
      EXPECT_EQ(seq_distance(start, s + 1),
                static_cast<std::uint32_t>(step + 1));
    }
  }
}

}  // namespace
}  // namespace nicmcast::nic

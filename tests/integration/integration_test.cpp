// Full-stack integration: MPI applications over the complete simulated
// stack (coroutines -> MPI -> GM -> NIC firmware -> wormhole network),
// with topology variations, faults, skew and cross-layer consistency.
#include <gtest/gtest.h>

#include "mpi/mpi.hpp"
#include "mpi/skew.hpp"

namespace nicmcast {
namespace {

using mpi::Payload;

Payload make_payload(std::size_t n, std::uint8_t salt = 0) {
  Payload p(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = std::byte{static_cast<std::uint8_t>(i * 131u + salt)};
  }
  return p;
}

TEST(Integration, MpiAppOverClosWithLoss) {
  // 24 ranks across a Clos of radix-8 switches, 3% drop + 1% corruption:
  // a bcast + allreduce loop must still be exact.
  gm::ClusterConfig cluster_config;
  cluster_config.nodes = 24;
  cluster_config.wiring = gm::ClusterConfig::Wiring::kClos;
  cluster_config.switch_radix = 8;
  gm::Cluster cluster(cluster_config);
  cluster.network().set_fault_injector(
      std::make_unique<net::RandomFaults>(0.03, 0.01, sim::Rng(3)));
  mpi::World world(cluster, {});

  int ok = 0;
  world.launch([&ok](mpi::Process& self) -> sim::Task<void> {
    std::int64_t acc = 0;
    for (int round = 0; round < 3; ++round) {
      Payload blob(1000);
      if (self.rank() == 0) {
        blob = make_payload(1000, static_cast<std::uint8_t>(round));
      }
      co_await self.bcast(blob, 0);
      if (blob != make_payload(1000, static_cast<std::uint8_t>(round))) {
        co_return;  // corrupted -> ok never incremented
      }
      std::vector<std::int64_t> mine{self.rank() + round};
      const auto sum =
          co_await self.allreduce_sum(self.world_comm(), std::move(mine));
      acc += sum.at(0);
    }
    // sum over 24 ranks of (rank + round) = 276 + 24*round.
    if (acc == (276 + 0) + (276 + 24) + (276 + 48)) ++ok;
  });
  world.run();
  EXPECT_EQ(ok, 24);
}

TEST(Integration, ConcurrentCommunicatorsAndCrossTraffic) {
  // Two overlapping sub-communicators broadcast concurrently while other
  // ranks exchange point-to-point messages; no cross-talk.
  gm::Cluster cluster(gm::ClusterConfig{.nodes = 8});
  mpi::World world(cluster, {});
  const mpi::Comm& evens = world.create_comm({0, 2, 4, 6});
  const mpi::Comm& odds = world.create_comm({1, 3, 5, 7});

  int good = 0;
  world.launch([&](mpi::Process& self) -> sim::Task<void> {
    const bool even = self.rank() % 2 == 0;
    const mpi::Comm& mine = even ? evens : odds;
    for (int round = 0; round < 4; ++round) {
      const std::uint8_t salt =
          static_cast<std::uint8_t>(round * 2 + (even ? 0 : 1));
      Payload data(500);
      if (mine.rank_of(self.port().node()) == 0) {
        data = make_payload(500, salt);
      }
      co_await self.bcast(mine, data, 0);
      if (data != make_payload(500, salt)) co_return;

      // Cross-traffic: neighbours exchange p2p messages mid-stream.
      const int peer = self.rank() ^ 1;
      co_await self.send(peer, static_cast<std::uint16_t>(round),
                         make_payload(64, salt));
      const Payload got =
          co_await self.recv(peer, static_cast<std::uint16_t>(round));
      const std::uint8_t peer_salt =
          static_cast<std::uint8_t>(round * 2 + (even ? 1 : 0));
      if (got != make_payload(64, peer_salt)) co_return;
    }
    ++good;
  });
  world.run();
  EXPECT_EQ(good, 8);
}

TEST(Integration, CrossLayerStatsConsistency) {
  gm::Cluster cluster(gm::ClusterConfig{.nodes = 6});
  mpi::World world(cluster, {});
  world.launch([](mpi::Process& self) -> sim::Task<void> {
    Payload data(2000);
    if (self.rank() == 2) data = make_payload(2000);
    co_await self.bcast(data, 2);
    co_await self.barrier();
  });
  world.run();

  // Every packet the network delivered was received (or CRC-dropped) by
  // some NIC; none vanished.
  const auto& net_stats = cluster.network().stats();
  std::uint64_t nic_received = 0;
  std::uint64_t nic_sent = 0;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    nic_received += cluster.nic(i).stats().packets_received +
                    cluster.nic(i).stats().crc_drops;
    nic_sent += cluster.nic(i).stats().packets_sent;
  }
  EXPECT_EQ(net_stats.packets_injected, nic_sent);
  EXPECT_EQ(net_stats.packets_delivered, nic_received);
  EXPECT_EQ(net_stats.packets_injected,
            net_stats.packets_delivered + net_stats.packets_dropped);
}

TEST(Integration, DeterministicEndToEnd) {
  auto fingerprint = [] {
    gm::Cluster cluster(gm::ClusterConfig{.nodes = 10, .seed = 77});
    cluster.network().set_fault_injector(std::make_unique<net::RandomFaults>(
        0.05, 0.02, sim::Rng(99)));
    mpi::World world(cluster, {});
    world.launch([](mpi::Process& self) -> sim::Task<void> {
      for (int r = 0; r < 3; ++r) {
        Payload data(777);
        if (self.rank() == r) data = make_payload(777);
        co_await self.bcast(data, r);
        co_await self.barrier();
      }
    });
    world.run();
    return cluster.simulator().now().nanoseconds();
  };
  EXPECT_EQ(fingerprint(), fingerprint());
}

TEST(Integration, SkewAndLossTogether) {
  // The skew-tolerance mechanism must survive a lossy fabric too.
  gm::Cluster cluster(gm::ClusterConfig{.nodes = 8});
  cluster.network().set_fault_injector(
      std::make_unique<net::RandomFaults>(0.04, 0.02, sim::Rng(5)));
  mpi::World world(cluster, {});
  int ok = 0;
  world.launch([&ok](mpi::Process& self) -> sim::Task<void> {
    sim::Rng rng(500 + self.rank());
    for (int round = 0; round < 5; ++round) {
      co_await self.barrier();
      if (self.rank() != 0) {
        co_await self.simulator().wait(sim::usec(rng.uniform(0, 300)));
      }
      Payload data(1200);
      if (self.rank() == 0) {
        data = make_payload(1200, static_cast<std::uint8_t>(round));
      }
      co_await self.bcast(data, 0);
      if (data != make_payload(1200, static_cast<std::uint8_t>(round))) {
        co_return;
      }
    }
    ++ok;
  });
  world.run();
  EXPECT_EQ(ok, 8);
}

TEST(Integration, ManyGroupsManyRoots) {
  // Stress demand-driven group creation: every rank broadcasts in every
  // round-robin slot over world plus a sub-communicator.
  gm::Cluster cluster(gm::ClusterConfig{.nodes = 6});
  mpi::World world(cluster, {});
  const mpi::Comm& first_half = world.create_comm({0, 1, 2});
  int ok = 0;
  world.launch([&](mpi::Process& self) -> sim::Task<void> {
    for (int root = 0; root < 6; ++root) {
      Payload data(128);
      if (self.rank() == root) {
        data = make_payload(128, static_cast<std::uint8_t>(root));
      }
      co_await self.bcast(data, root);
      if (data != make_payload(128, static_cast<std::uint8_t>(root))) {
        co_return;
      }
    }
    if (self.rank() < 3) {
      for (int root = 0; root < 3; ++root) {
        Payload data(64);
        if (first_half.rank_of(self.port().node()) == root) {
          data = make_payload(64, static_cast<std::uint8_t>(40 + root));
        }
        co_await self.bcast(first_half, data, root);
        if (data != make_payload(64, static_cast<std::uint8_t>(40 + root))) {
          co_return;
        }
      }
    }
    ++ok;
  });
  world.run();
  EXPECT_EQ(ok, 6);
  // World groups: 6 per rank; sub-comm groups: +3 for ranks 0-2.
  EXPECT_EQ(world.process(0).stats().groups_created, 9u);
  EXPECT_EQ(world.process(5).stats().groups_created, 6u);
}

}  // namespace
}  // namespace nicmcast

// Calibration pins: the derived quantities of the cost model that the
// paper's figures depend on.  If a change to the NIC/network constants
// moves these out of band, the reproduced figures change shape — fail
// loudly here rather than silently in bench output.
//
// DESIGN.md §5 records the calibration targets and their sources.
#include <gtest/gtest.h>

#include "gm/cluster.hpp"
#include "mcast/bcast.hpp"
#include "mcast/postal_tree.hpp"
#include "mpi/skew.hpp"

namespace nicmcast {
namespace {

using gm::Cluster;
using gm::ClusterConfig;
using gm::Payload;

std::vector<net::NodeId> everyone_but(net::NodeId root, std::size_t n) {
  std::vector<net::NodeId> v;
  for (net::NodeId i = 0; i < n; ++i) {
    if (i != root) v.push_back(i);
  }
  return v;
}

double one_way_latency_us(std::size_t bytes) {
  Cluster c(ClusterConfig{.nodes = 2});
  c.port(1).provide_receive_buffer(std::max<std::size_t>(bytes, 64));
  auto arrived = std::make_shared<sim::TimePoint>();
  c.simulator().spawn([](Cluster& cl, std::size_t n) -> sim::Task<void> {
    co_await cl.port(0).send(1, 0, Payload(n), 0);
  }(c, bytes));
  c.simulator().spawn([](Cluster& cl,
                         std::shared_ptr<sim::TimePoint> t) -> sim::Task<void> {
    co_await cl.port(1).receive();
    *t = cl.simulator().now();
  }(c, arrived));
  c.run();
  return arrived->microseconds();
}

double mcast_latency_us(std::size_t nodes, std::size_t bytes,
                        bool nic_based) {
  Cluster c(ClusterConfig{.nodes = nodes});
  const auto dests = everyone_but(0, nodes);
  const mcast::Tree tree =
      nic_based ? mcast::build_postal_tree(
                      0, dests,
                      mcast::PostalCostModel::nic_based(
                          bytes, nic::NicConfig{}, net::NetworkConfig{}))
                : mcast::build_binomial_tree(0, dests);
  if (nic_based) mcast::install_group(c, tree, 1);
  for (net::NodeId n = 1; n < nodes; ++n) {
    c.port(n).provide_receive_buffer(std::max<std::size_t>(bytes, 64));
  }
  auto last = std::make_shared<sim::TimePoint>();
  c.run_on_all([tree, bytes, nic_based, last](Cluster& cl,
                                              net::NodeId me)
                   -> sim::Task<void> {
    Payload data;
    if (me == 0) data = Payload(bytes);
    Payload got;
    if (nic_based) {
      got = co_await mcast::nic_bcast(cl.port(me), tree, 1, std::move(data),
                                      0);
    } else {
      got = co_await mcast::host_bcast(cl.port(me), tree, std::move(data),
                                       0);
    }
    if (got.size() != bytes) throw std::logic_error("bad payload");
    *last = std::max(*last, cl.simulator().now());
  });
  c.run();
  return last->microseconds();
}

TEST(Calibration, OneWaySmallMessageLatency) {
  // GM-2 on LANai-9 class hardware: ~7-8us one-way for tiny messages.
  const double us = one_way_latency_us(1);
  EXPECT_GT(us, 6.0);
  EXPECT_LT(us, 9.0);
}

TEST(Calibration, OneWayLatencyGrowsWithSize) {
  const double small = one_way_latency_us(8);
  const double mid = one_way_latency_us(4096);
  const double large = one_way_latency_us(16384);
  EXPECT_LT(small, mid);
  EXPECT_LT(mid, large);
  // 16KB one-way dominated by 4 packets of wire time (~66us) plus
  // overheads; the paper-era GM measured ~90-110us.
  EXPECT_GT(large, 70.0);
  EXPECT_LT(large, 110.0);
}

TEST(Calibration, Fig5FactorBandsAt16Nodes) {
  const double hb512 = mcast_latency_us(16, 512, false);
  const double nb512 = mcast_latency_us(16, 512, true);
  const double f512 = hb512 / nb512;
  const double hb2k = mcast_latency_us(16, 2048, false);
  const double nb2k = mcast_latency_us(16, 2048, true);
  const double f2k = hb2k / nb2k;
  const double hb16k = mcast_latency_us(16, 16384, false);
  const double nb16k = mcast_latency_us(16, 16384, true);
  const double f16k = hb16k / nb16k;

  // Paper: 1.48 / dip / 1.86.  Our model overshoots but must keep the
  // ordering: NB always wins, dip at 2KB, maximum at 16KB.
  EXPECT_GT(f512, 1.5);
  EXPECT_GT(f2k, 1.2);
  EXPECT_GT(f16k, f512);
  EXPECT_LT(f2k, f512);
  EXPECT_LT(f2k, f16k);
  // Absolute host-based scale should match the paper's Figure 5(a) axis
  // (HB-16 at 16KB lands in the upper half of the 0-700us range).
  EXPECT_GT(hb16k, 500.0);
  EXPECT_LT(hb16k, 1000.0);
}

TEST(Calibration, PostalTreeShapeSweep) {
  const nic::NicConfig nic;
  const net::NetworkConfig net;
  const auto dests = everyone_but(0, 16);
  std::size_t last_fanout = 16;
  for (std::size_t bytes : {4u, 512u, 2048u, 4096u, 16384u}) {
    const auto tree = mcast::build_postal_tree(
        0, dests, mcast::PostalCostModel::nic_based(bytes, nic, net));
    // Fan-out decreases (weakly) with message size.
    EXPECT_LE(tree.max_fanout(), last_fanout) << bytes;
    last_fanout = tree.max_fanout();
    EXPECT_TRUE(tree.satisfies_id_ordering());
  }
  EXPECT_LE(last_fanout, 2u);  // 16KB: narrow tree
}

TEST(Calibration, SkewCurveAnchors) {
  auto run = [](double max_skew_us, mpi::BcastAlgorithm algo) {
    mpi::SkewConfig config;
    config.nodes = 16;
    config.message_bytes = 4;
    config.max_skew = sim::usec(max_skew_us);
    config.iterations = 25;
    config.warmup = 3;
    config.algorithm = algo;
    return run_skew_experiment(config).avg_bcast_cpu_us;
  };
  // Anchor: at 400us mean |skew| (max_skew = 1600), host-based average CPU
  // time lands near the paper's ~130us; NIC-based stays far below.
  const double hb400 = run(1600, mpi::BcastAlgorithm::kHostBased);
  const double nb400 = run(1600, mpi::BcastAlgorithm::kNicBased);
  EXPECT_GT(hb400, 90.0);
  EXPECT_LT(hb400, 190.0);
  EXPECT_LT(nb400, 25.0);
  // The small-skew dip: both algorithms benefit from a little skew.
  const double hb0 = run(0, mpi::BcastAlgorithm::kHostBased);
  const double hb_small = run(100, mpi::BcastAlgorithm::kHostBased);
  EXPECT_LT(hb_small, hb0);
}

TEST(Calibration, MultisendFactorBand) {
  // Fig 3 anchor: 64B to 4 destinations, NB/HB in [1.6, 2.3] (paper 2.05).
  auto measure = [](bool nb) {
    Cluster c(ClusterConfig{.nodes = 5});
    for (net::NodeId n = 1; n < 5; ++n) {
      c.port(n).provide_receive_buffer(4096);
    }
    auto done = std::make_shared<sim::TimePoint>();
    c.simulator().spawn([](Cluster& cl, bool nic_based,
                           std::shared_ptr<sim::TimePoint> t)
                            -> sim::Task<void> {
      if (nic_based) {
        std::vector<net::NodeId> dests{1, 2, 3, 4};
        co_await cl.port(0).multisend(std::move(dests), 0, Payload(64), 0);
      } else {
        std::vector<nic::OpHandle> handles;
        for (net::NodeId d = 1; d < 5; ++d) {
          co_await cl.simulator().wait(
              cl.port(0).nic().config().host_post_overhead);
          handles.push_back(cl.port(0).post_send_nowait(d, 0, Payload(64), 0));
        }
        for (auto h : handles) co_await cl.port(0).wait_completion(h);
      }
      *t = cl.simulator().now();
    }(c, nb, done));
    c.run();
    return done->microseconds();
  };
  const double factor = measure(false) / measure(true);
  EXPECT_GT(factor, 1.6);
  EXPECT_LT(factor, 2.3);
}

TEST(Calibration, StreamingBandwidthNearWireRate) {
  Cluster c(ClusterConfig{.nodes = 2});
  const int chunks = 32;
  const std::size_t chunk = 16384;
  c.port(1).provide_receive_buffers(chunks, chunk);
  auto done = std::make_shared<sim::TimePoint>();
  c.simulator().spawn([](Cluster& cl, int n, std::size_t size)
                          -> sim::Task<void> {
    std::vector<nic::OpHandle> handles;
    for (int i = 0; i < n; ++i) {
      while (!cl.port(0).can_post_nowait()) {
        co_await cl.simulator().wait(sim::usec(5));
      }
      handles.push_back(cl.port(0).post_send_nowait(1, 0, Payload(size), 0));
    }
    for (auto h : handles) co_await cl.port(0).wait_completion(h);
  }(c, chunks, chunk));
  c.simulator().spawn([](Cluster& cl, int n,
                         std::shared_ptr<sim::TimePoint> t) -> sim::Task<void> {
    for (int i = 0; i < n; ++i) co_await cl.port(1).receive();
    *t = cl.simulator().now();
  }(c, chunks, done));
  c.run();
  const double mbps =
      static_cast<double>(chunk) * chunks / done->microseconds();
  // Myrinet-2000 wire rate is 250MB/s; GM sustained ~240+.
  EXPECT_GT(mbps, 230.0);
  EXPECT_LE(mbps, 250.0);
}

}  // namespace
}  // namespace nicmcast

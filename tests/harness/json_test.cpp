// JSON writer/parser tests: escaping, number formatting, insertion order,
// round-tripping and strict parse errors.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "harness/json.hpp"

namespace nicmcast::harness::json {
namespace {

TEST(JsonEscape, ControlAndSpecialCharacters) {
  EXPECT_EQ(escape("plain"), "plain");
  EXPECT_EQ(escape("a\"b"), "a\\\"b");
  EXPECT_EQ(escape("a\\b"), "a\\\\b");
  EXPECT_EQ(escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(escape("tab\there"), "tab\\there");
  EXPECT_EQ(escape("\r\f\b"), "\\r\\f\\b");
  EXPECT_EQ(escape(std::string_view("\x01\x1f", 2)), "\\u0001\\u001f");
  // UTF-8 passes through byte-for-byte.
  EXPECT_EQ(escape("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(JsonNumber, FormattingRules) {
  EXPECT_EQ(format_number(0.0), "0");
  EXPECT_EQ(format_number(42.0), "42");
  EXPECT_EQ(format_number(-7.0), "-7");
  EXPECT_EQ(format_number(0.5), "0.5");
  EXPECT_EQ(format_number(1.25), "1.25");
  // Shortest round-trip representation survives a parse.
  const double v = 0.1 + 0.2;
  EXPECT_EQ(Value::parse(format_number(v)).as_number(), v);
  EXPECT_THROW((void)format_number(std::nan("")), std::invalid_argument);
  EXPECT_THROW((void)format_number(std::numeric_limits<double>::infinity()),
               std::invalid_argument);
}

TEST(JsonValue, ObjectPreservesInsertionOrder) {
  Value v = Value::object();
  v["zebra"] = 1;
  v["apple"] = 2;
  v["mango"] = 3;
  EXPECT_EQ(v.dump(), R"({"zebra":1,"apple":2,"mango":3})");
  v["apple"] = 20;  // update in place, order unchanged
  EXPECT_EQ(v.dump(), R"({"zebra":1,"apple":20,"mango":3})");
}

TEST(JsonValue, PrettyPrint) {
  Value v = Value::object();
  v["a"] = Value::array();
  v["a"].push_back(1);
  v["a"].push_back(true);
  EXPECT_EQ(v.dump(2), "{\n  \"a\": [\n    1,\n    true\n  ]\n}");
  EXPECT_EQ(Value::object().dump(2), "{}");
  EXPECT_EQ(Value::array().dump(2), "[]");
}

TEST(JsonValue, RoundTrip) {
  Value v = Value::object();
  v["null"] = nullptr;
  v["flag"] = false;
  v["num"] = -12.75;
  v["big"] = 1e300;
  v["str"] = "with \"quotes\" and \\ and \n";
  v["arr"] = Value::array();
  v["arr"].push_back("nested");
  v["arr"].push_back(Value::object());
  EXPECT_EQ(Value::parse(v.dump()), v);
  EXPECT_EQ(Value::parse(v.dump(4)), v);
}

TEST(JsonParse, AcceptsEscapesAndUnicode) {
  EXPECT_EQ(Value::parse(R"("aAb")").as_string(), "aAb");
  // Surrogate pair -> 4-byte UTF-8 (U+1F600).
  EXPECT_EQ(Value::parse(R"("😀")").as_string(),
            "\xf0\x9f\x98\x80");
  EXPECT_EQ(Value::parse(R"("\n\t\\\"")").as_string(), "\n\t\\\"");
  EXPECT_EQ(Value::parse("-0.5e2").as_number(), -50.0);
  EXPECT_TRUE(Value::parse("null").is_null());
  EXPECT_EQ(Value::parse(" [ 1 , 2 ] ").size(), 2u);
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_THROW((void)Value::parse(""), ParseError);
  EXPECT_THROW((void)Value::parse("{"), ParseError);
  EXPECT_THROW((void)Value::parse("[1,]"), ParseError);
  EXPECT_THROW((void)Value::parse("{\"a\":}"), ParseError);
  EXPECT_THROW((void)Value::parse("tru"), ParseError);
  EXPECT_THROW((void)Value::parse("1 2"), ParseError);  // trailing junk
  EXPECT_THROW((void)Value::parse("\"unterminated"), ParseError);
  EXPECT_THROW((void)Value::parse("\"bad\\x\""), ParseError);
  EXPECT_THROW((void)Value::parse(R"("\ud800 unpaired")"), ParseError);
  try {
    (void)Value::parse("[1, x]");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.offset(), 4u);
  }
}

TEST(JsonValue, AccessorsThrowOnTypeMismatch) {
  Value v = Value::object();
  v["k"] = 1;
  EXPECT_THROW((void)v.at("missing"), std::out_of_range);
  EXPECT_TRUE(v.contains("k"));
  EXPECT_FALSE(v.contains("missing"));
  EXPECT_THROW((void)v.at("k").as_string(), std::logic_error);
  EXPECT_THROW((void)v.at("k").size(), std::logic_error);
}

}  // namespace
}  // namespace nicmcast::harness::json

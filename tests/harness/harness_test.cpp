// Harness tests: sweep expansion order, deterministic seed derivation, and
// the load-bearing ParallelRunner property — results are bit-identical no
// matter how many worker threads execute the specs.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <vector>

#include "harness/bench_io.hpp"
#include "harness/experiment_util.hpp"
#include "harness/parallel_runner.hpp"
#include "harness/runners.hpp"
#include "harness/sweep.hpp"

namespace nicmcast::harness {
namespace {

TEST(Sweep, FirstAxisVariesSlowest) {
  RunSpec base;
  const auto specs = Sweep(base)
                         .message_sizes({16, 64})
                         .node_counts({4, 8})
                         .algos({Algo::kHostBased, Algo::kNicBased})
                         .build();
  ASSERT_EQ(specs.size(), 8u);
  // size is outermost, algo innermost.
  EXPECT_EQ(specs[0].message_bytes, 16u);
  EXPECT_EQ(specs[0].nodes, 4u);
  EXPECT_EQ(specs[0].algo, Algo::kHostBased);
  EXPECT_EQ(specs[1].algo, Algo::kNicBased);
  EXPECT_EQ(specs[2].nodes, 8u);
  EXPECT_EQ(specs[3].nodes, 8u);
  EXPECT_EQ(specs[4].message_bytes, 64u);
  EXPECT_EQ(specs[7].message_bytes, 64u);
  EXPECT_EQ(specs[7].nodes, 8u);
  EXPECT_EQ(specs[7].algo, Algo::kNicBased);
}

TEST(Sweep, DestinationCountsCoupleNodes) {
  RunSpec base;
  base.experiment = Experiment::kMultisend;
  const auto specs = Sweep(base).destination_counts({3, 8}).build();
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].destinations, 3u);
  EXPECT_EQ(specs[0].nodes, 4u);
  EXPECT_EQ(specs[1].destinations, 8u);
  EXPECT_EQ(specs[1].nodes, 9u);
}

TEST(DeriveSeed, StableAndWellSpread) {
  EXPECT_EQ(derive_seed(1, 0), derive_seed(1, 0));
  EXPECT_NE(derive_seed(1, 0), derive_seed(1, 1));
  EXPECT_NE(derive_seed(1, 0), derive_seed(2, 0));
  EXPECT_NE(derive_seed(1, 0), 0u);
  // Never hands the engine the degenerate all-zero seed.
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_NE(derive_seed(0, i), 0u);
  }
}

TEST(ParallelRunner, AppliesDerivedSeedsInSpecOrder) {
  RunSpec base;
  base.experiment = Experiment::kCustom;
  const std::vector<RunSpec> specs(5, base);
  RunnerOptions options;
  options.threads = 3;
  options.base_seed = 99;
  const auto results =
      ParallelRunner(options).run(specs, [](const RunSpec& spec) {
        RunResult r;
        r.spec = spec;
        return r;
      });
  ASSERT_EQ(results.size(), 5u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].spec.seed, derive_seed(99, i));
  }
}

TEST(ParallelRunner, HonoursPresetSeedsWhenDerivationOff) {
  RunSpec spec;
  spec.experiment = Experiment::kCustom;
  spec.seed = 1234;
  RunnerOptions options;
  options.derive_seeds = false;
  const auto results =
      ParallelRunner(options).run({spec}, [](const RunSpec& s) {
        RunResult r;
        r.spec = s;
        return r;
      });
  EXPECT_EQ(results[0].spec.seed, 1234u);
}

TEST(ParallelRunner, RethrowsWorkerException) {
  RunSpec base;
  base.experiment = Experiment::kCustom;
  base.label = "boom";
  const std::vector<RunSpec> specs(4, base);
  RunnerOptions options;
  options.threads = 2;
  EXPECT_THROW(
      (void)ParallelRunner(options).run(specs,
                                        [](const RunSpec&) -> RunResult {
                                          throw std::runtime_error("boom");
                                        }),
      std::runtime_error);
}

TEST(ParallelRunner, CustomExperimentNeedsCustomRunFn) {
  RunSpec spec;
  spec.experiment = Experiment::kCustom;
  EXPECT_THROW((void)ParallelRunner().run({spec}), std::invalid_argument);
}

// The acceptance property: a sweep executed on 1 thread and on 8 threads
// produces byte-identical latency samples, NIC counters and metrics.
TEST(ParallelRunner, ThreadCountDoesNotChangeResults) {
  RunSpec base;
  base.experiment = Experiment::kGmMulticast;
  base.nodes = 4;
  base.warmup = 1;
  base.iterations = 3;
  const auto specs = Sweep(base)
                         .message_sizes({16, 4096})
                         .algos({Algo::kHostBased, Algo::kNicBased})
                         .build();

  RunnerOptions serial;
  serial.threads = 1;
  RunnerOptions parallel;
  parallel.threads = 8;
  const auto a = ParallelRunner(serial).run(specs);
  const auto b = ParallelRunner(parallel).run(specs);

  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].spec.seed, b[i].spec.seed);
    ASSERT_EQ(a[i].latency_us.count(), b[i].latency_us.count());
    for (std::size_t s = 0; s < a[i].latency_us.count(); ++s) {
      EXPECT_EQ(a[i].latency_us.samples()[s], b[i].latency_us.samples()[s]);
    }
    EXPECT_EQ(a[i].nic_totals.packets_sent, b[i].nic_totals.packets_sent);
    EXPECT_EQ(a[i].nic_totals.packets_received,
              b[i].nic_totals.packets_received);
    EXPECT_EQ(a[i].nic_totals.forwards, b[i].nic_totals.forwards);
    EXPECT_EQ(a[i].nic_totals.acks_sent, b[i].nic_totals.acks_sent);
    EXPECT_EQ(a[i].nic_totals.retransmissions,
              b[i].nic_totals.retransmissions);
    ASSERT_EQ(a[i].metrics.size(), b[i].metrics.size());
    for (std::size_t m = 0; m < a[i].metrics.size(); ++m) {
      EXPECT_EQ(a[i].metrics[m].first, b[i].metrics[m].first);
      EXPECT_EQ(a[i].metrics[m].second, b[i].metrics[m].second);
    }
  }
  // And the whole JSON document (modulo the recorded thread count).
  BenchOptions opts1;
  opts1.threads = 1;
  BenchOptions opts8;
  opts8.threads = 8;
  auto doc1 = bench_document("determinism", opts1, a);
  auto doc8 = bench_document("determinism", opts8, b);
  EXPECT_EQ(doc1.at("runs").dump(), doc8.at("runs").dump());
}

TEST(Runners, SkewBcastReportsNicTotals) {
  RunSpec spec;
  spec.experiment = Experiment::kSkewBcast;
  spec.nodes = 4;
  spec.message_bytes = 8;
  spec.warmup = 1;
  spec.iterations = 2;
  const RunResult r = run_skew_bcast(spec);
  EXPECT_GT(r.nic_totals.packets_sent, 0u);
  EXPECT_GT(r.metric("avg_bcast_cpu_us"), 0.0);
}

TEST(Runners, GmMcastDeliversBitExactPayloads) {
  RunSpec spec;
  spec.experiment = Experiment::kGmMulticast;
  spec.nodes = 4;
  spec.message_bytes = 256;
  spec.warmup = 1;
  spec.iterations = 2;
  const RunResult r = run_one(spec);
  EXPECT_EQ(r.metric("delivered"), 1.0);
  EXPECT_EQ(r.latency_us.count(), 2u);
  EXPECT_GT(r.mean_us(), 0.0);
}

TEST(BenchIo, DocumentMatchesSchema) {
  RunSpec spec;
  spec.experiment = Experiment::kGmMulticast;
  spec.nodes = 4;
  spec.warmup = 0;
  spec.iterations = 1;
  spec.seed = 0xFFFFFFFFFFFFFFFFull;  // needs string encoding to survive
  const auto results =
      ParallelRunner(RunnerOptions{.threads = 1, .derive_seeds = false})
          .run({spec});

  BenchOptions options;
  const auto doc = bench_document("unit", options, results);
  EXPECT_EQ(doc.at("schema").as_string(), "nicmcast-bench-v1");
  EXPECT_EQ(doc.at("bench").as_string(), "unit");
  EXPECT_EQ(doc.at("threads").as_number(), 1.0);
  ASSERT_EQ(doc.at("runs").size(), 1u);

  const auto& run = doc.at("runs").as_array()[0];
  EXPECT_EQ(run.at("spec").at("experiment").as_string(), "gm_mcast");
  EXPECT_EQ(run.at("spec").at("seed").as_string(), "18446744073709551615");
  EXPECT_TRUE(run.at("latency_us").is_object());
  EXPECT_EQ(run.at("latency_us").at("count").as_number(), 1.0);
  EXPECT_TRUE(run.at("nic").at("packets_sent").as_number() > 0);
  EXPECT_TRUE(run.at("metrics").contains("delivered"));

  // The document survives a parse round-trip unchanged.
  const auto reparsed = json::Value::parse(doc.dump(2));
  EXPECT_EQ(reparsed, doc);
}

TEST(BenchIo, EmptySeriesSerialisesAsNull) {
  RunResult r;
  r.spec.experiment = Experiment::kSkewBcast;
  r.set_metric("avg_bcast_cpu_us", 12.5);
  const auto v = result_to_json(r);
  EXPECT_TRUE(v.at("latency_us").is_null());
  EXPECT_EQ(v.at("metrics").at("avg_bcast_cpu_us").as_number(), 12.5);
}

// Regression: with a 16-bit NodeId this loop never terminated at
// n == 65536 (the counter wrapped to 0 before reaching the bound) and any
// id past the wrap aliased a lower endpoint.
TEST(ExperimentUtil, EveryoneButTerminatesAndStaysDistinctPastSixtyFourK) {
  const std::size_t n = 65536 + 3;
  const std::vector<net::NodeId> dests = everyone_but(0, n);
  ASSERT_EQ(dests.size(), n - 1);
  EXPECT_EQ(dests.front(), 1u);
  EXPECT_EQ(dests.back(), 65538u);
  // Strictly increasing == no wrap-around aliasing anywhere in the range.
  EXPECT_TRUE(std::is_sorted(dests.begin(), dests.end()));
  EXPECT_EQ(std::adjacent_find(dests.begin(), dests.end()), dests.end());
}

}  // namespace
}  // namespace nicmcast::harness

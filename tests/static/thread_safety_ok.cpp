// Compile-only proof that the concurrency-contract annotations accept the
// sanctioned usage patterns.  Built with
//   -fsyntax-only -Wthread-safety -Wthread-safety-beta
//   -Werror=thread-safety-analysis
// under Clang (tests/static/CMakeLists.txt); must compile cleanly.
#include "sim/spsc_channel.hpp"
#include "sim/thread_annotations.hpp"

namespace nicmcast::sim {

// Producer pushes while holding the producer role; consumer drains while
// holding the consumer role.  This is the shape every shard worker uses.
inline int roles_allow_the_contractual_split(SpscChannel<int>& ch) {
  {
    RoleGuard claim(ch.producer_role());
    (void)ch.try_push(7);
  }
  int out = 0;
  int sum = 0;
  RoleGuard claim(ch.consumer_role());
  while (ch.try_pop(out)) sum += out;
  if (const int* head = ch.try_peek()) sum += *head;
  return ch.empty() ? sum : -sum;
}

// A worker lambda cannot inherit the spawner's capabilities (the analysis
// is intraprocedural); assert_held() re-states the structural guarantee.
inline void lambda_reasserts_its_role(SpscChannel<int>& ch) {
  auto drain = [&ch] {
    ch.consumer_role().assert_held();
    int out = 0;
    while (ch.try_pop(out)) {
    }
  };
  drain();
}

// Mutex-guarded state through the annotated wrapper.
struct Spill {
  Mutex mu;
  int pending NM_GUARDED_BY(mu) = 0;

  void add(int n) {
    MutexLock lock(mu);
    pending += n;
  }
};

}  // namespace nicmcast::sim

// Compile-only proof that the concurrency contract is ENFORCED, not just
// documented: holding the consumer role does not license try_push(), which
// requires the producer role.  Under
//   -fsyntax-only -Wthread-safety -Wthread-safety-beta
//   -Werror=thread-safety-analysis
// this translation unit must FAIL to compile (ctest WILL_FAIL).  If it
// ever compiles, the annotations on SpscChannel have regressed.
#include "sim/spsc_channel.hpp"
#include "sim/thread_annotations.hpp"

namespace nicmcast::sim {

inline void consumer_must_not_push(SpscChannel<int>& ch) {
  RoleGuard claim(ch.consumer_role());
  (void)ch.try_push(41);  // wrong side of the channel: producer-only call
}

}  // namespace nicmcast::sim

#include "net/sharded_fabric.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "net/topology.hpp"

namespace nicmcast::net {
namespace {

// Binomial spanning tree in flat-array form: parent(r) clears r's highest
// set bit; children are emitted in increasing-subtree-size order, matching
// the classic construction.
FabricTree binomial_tree(std::size_t n) {
  FabricTree tree;
  tree.root = 0;
  tree.parent.assign(n, FabricTree::kNoParent);
  std::vector<std::vector<NodeId>> kids(n);
  for (std::size_t r = 1; r < n; ++r) {
    std::size_t high = 1;
    while (high * 2 <= r) high *= 2;
    const std::size_t p = r - high;
    tree.parent[r] = static_cast<NodeId>(p);
    kids[p].push_back(static_cast<NodeId>(r));
  }
  tree.child_off.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    tree.child_off[i + 1] =
        tree.child_off[i] + static_cast<std::uint32_t>(kids[i].size());
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (const NodeId c : kids[i]) tree.children.push_back(c);
  }
  return tree;
}

FabricOptions small_options(std::uint64_t seed, double loss = 0.0) {
  FabricOptions options;
  options.message_bytes = 512;
  options.warmup = 1;
  options.iterations = 2;
  options.loss_rate = loss;
  options.seed = seed;
  return options;
}

FabricResult run_fabric(std::size_t nodes, std::size_t shards,
                        std::uint64_t seed, double loss = 0.0) {
  ShardedFabric fabric(Topology::clos(nodes, 16), binomial_tree(nodes),
                       small_options(seed, loss), shards);
  return fabric.run();
}

TEST(ShardedFabric, DeliversToEveryNodeEveryIteration) {
  const FabricResult r = run_fabric(64, 2, 42);
  // 3 iterations (1 warmup + 2 timed) x 63 receivers.
  EXPECT_EQ(r.deliveries, 63u * 3u);
  EXPECT_EQ(r.latency_us.size(), 2u);
  for (const double us : r.latency_us) EXPECT_GT(us, 0.0);
  EXPECT_EQ(r.nic_totals.retransmissions, 0u);
  EXPECT_EQ(r.nic_totals.acks_sent, 63u * 3u);
  EXPECT_GT(r.cross_shard_msgs, 0u);
  EXPECT_GT(r.lbts_rounds, 0u);
  EXPECT_GT(r.cross_links, 0u);
}

TEST(ShardedFabric, ProtocolCountersInvariantAcrossShardCounts) {
  // The determinism contract's cross-shard-count guarantee: loss decisions
  // are counter-hashed, so every protocol-level total is identical no
  // matter how the fabric is cut.
  const FabricResult base = run_fabric(128, 1, 7, 0.02);
  EXPECT_GT(base.nic_totals.retransmissions, 0u);
  EXPECT_GT(base.nic_totals.crc_drops, 0u);
  for (const std::size_t shards : {2u, 4u, 8u}) {
    const FabricResult r = run_fabric(128, shards, 7, 0.02);
    EXPECT_EQ(r.deliveries, base.deliveries) << shards << " shards";
    EXPECT_EQ(r.nic_totals.packets_sent, base.nic_totals.packets_sent);
    EXPECT_EQ(r.nic_totals.packets_received,
              base.nic_totals.packets_received);
    EXPECT_EQ(r.nic_totals.retransmissions,
              base.nic_totals.retransmissions);
    EXPECT_EQ(r.nic_totals.crc_drops, base.nic_totals.crc_drops);
    EXPECT_EQ(r.nic_totals.acks_sent, base.nic_totals.acks_sent);
    EXPECT_EQ(r.nic_totals.forwards, base.nic_totals.forwards);
    EXPECT_EQ(r.nic_totals.header_rewrites,
              base.nic_totals.header_rewrites);
  }
}

TEST(ShardedFabric, RepeatableHashVectorPerShardCount) {
  for (const std::size_t shards : {1u, 2u, 4u}) {
    const FabricResult a = run_fabric(64, shards, 1);
    const FabricResult b = run_fabric(64, shards, 1);
    EXPECT_EQ(a.shard_order_hashes, b.shard_order_hashes)
        << shards << " shards";
    EXPECT_EQ(a.merged_order_hash, b.merged_order_hash);
    EXPECT_EQ(a.lbts_rounds, b.lbts_rounds);
    EXPECT_EQ(a.cross_shard_msgs, b.cross_shard_msgs);
    ASSERT_EQ(a.shard_order_hashes.size(), shards);
    ASSERT_EQ(a.shard_wheel_occupancy_peak.size(), shards);
  }
}

TEST(ShardedFabric, LatencyStableAcrossShardCounts) {
  // Segment boundaries may shift contention resolution by nanoseconds, but
  // an uncontended small-cluster broadcast must agree to well under 1%.
  const FabricResult base = run_fabric(64, 1, 3);
  for (const std::size_t shards : {2u, 4u}) {
    const FabricResult r = run_fabric(64, shards, 3);
    ASSERT_EQ(r.latency_us.size(), base.latency_us.size());
    for (std::size_t i = 0; i < r.latency_us.size(); ++i) {
      EXPECT_NEAR(r.latency_us[i], base.latency_us[i],
                  base.latency_us[i] * 0.01);
    }
  }
}

TEST(ShardedFabric, DescriptorPoolRecyclesPerShard) {
  const FabricResult r = run_fabric(64, 4, 9);
  EXPECT_GT(r.nic_totals.descriptor_allocs, 0u);
  EXPECT_GT(r.nic_totals.descriptor_reuses, 0u);
  // Pools are shard-local: allocations stay bounded by per-shard
  // concurrency, far below one per send.
  EXPECT_LT(r.nic_totals.descriptor_allocs,
            r.nic_totals.packets_sent / 4);
}

TEST(ShardedFabric, RejectsMismatchedTree) {
  EXPECT_THROW(ShardedFabric(Topology::clos(64, 16), binomial_tree(32),
                             small_options(1), 2),
               std::invalid_argument);
}

}  // namespace
}  // namespace nicmcast::net

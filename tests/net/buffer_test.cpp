#include "net/buffer.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "net/packet.hpp"

namespace nicmcast::net {
namespace {

std::vector<std::byte> ramp(std::size_t n) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::byte>(i & 0xff);
  return v;
}

TEST(Buffer, DefaultIsEmpty) {
  Buffer b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.data(), nullptr);
}

TEST(Buffer, TakeAdoptsBytesWithoutCopy) {
  std::vector<std::byte> bytes = ramp(64);
  const std::byte* raw = bytes.data();
  Buffer b = Buffer::take(std::move(bytes));
  EXPECT_EQ(b.size(), 64u);
  // Zero-copy: the block is the adopted vector's storage.
  EXPECT_EQ(b.data(), raw);
}

TEST(Buffer, CopyOfMakesAnIndependentBlock) {
  std::vector<std::byte> bytes = ramp(16);
  Buffer a = Buffer::copy_of(bytes);
  Buffer b = Buffer::copy_of(bytes);
  EXPECT_EQ(a, b);                       // same content
  EXPECT_FALSE(a.shares_block_with(b));  // distinct allocations
}

TEST(Buffer, CopiesAndSlicesAliasOneBlock) {
  Buffer whole = Buffer::take(ramp(128));
  Buffer copy = whole;
  Buffer fragment = whole.slice(32, 64);
  Buffer refragment = fragment.slice(8, 8);
  EXPECT_TRUE(copy.shares_block_with(whole));
  EXPECT_TRUE(fragment.shares_block_with(whole));
  EXPECT_TRUE(refragment.shares_block_with(whole));
  // Slices view the right window of the shared bytes.
  EXPECT_EQ(fragment.size(), 64u);
  EXPECT_EQ(fragment[0], whole[32]);
  EXPECT_EQ(refragment[0], whole[40]);
}

TEST(Buffer, SliceOutsideViewThrows) {
  Buffer whole = Buffer::take(ramp(32));
  Buffer inner = whole.slice(16, 16);
  EXPECT_THROW((void)whole.slice(16, 17), std::out_of_range);
  // A slice's bounds are relative to the *view*, not the block: the block
  // has 32 bytes but the view only 16.
  EXPECT_THROW((void)inner.slice(0, 17), std::out_of_range);
  EXPECT_NO_THROW((void)inner.slice(0, 16));
}

TEST(Buffer, BlockOutlivesOriginalHandle) {
  Buffer fragment;
  {
    Buffer whole = Buffer::take(ramp(64));
    fragment = whole.slice(60, 4);
  }  // `whole` gone; the refcount keeps the block alive
  EXPECT_EQ(fragment.size(), 4u);
  EXPECT_EQ(fragment[0], static_cast<std::byte>(60));
}

TEST(Buffer, ToVectorCopiesTheViewedWindow) {
  Buffer whole = Buffer::take(ramp(16));
  const std::vector<std::byte> out = whole.slice(4, 8).to_vector();
  ASSERT_EQ(out.size(), 8u);
  EXPECT_EQ(out.front(), static_cast<std::byte>(4));
  EXPECT_EQ(out.back(), static_cast<std::byte>(11));
}

// Fault injection flips Packet::corrupted and must never touch the shared
// bytes — every other holder of the block would see the mutation.
TEST(Buffer, CorruptionIsAFlagNotAMutation) {
  Buffer message = Buffer::take(ramp(256));
  Packet in_transit;
  in_transit.payload = message.slice(0, 128);
  Packet retransmit_copy;
  retransmit_copy.payload = message.slice(0, 128);

  in_transit.corrupted = true;  // what FaultModel does to a packet

  EXPECT_FALSE(retransmit_copy.corrupted);
  EXPECT_TRUE(in_transit.payload.shares_block_with(retransmit_copy.payload));
  EXPECT_EQ(in_transit.payload, retransmit_copy.payload);  // bytes untouched
  EXPECT_EQ(message[5], static_cast<std::byte>(5));
}

TEST(Buffer, RefCountTracksViewsOfOneBlock) {
  Buffer whole = Buffer::take(ramp(64));
  EXPECT_EQ(whole.block_ref_count(), 1u);
  {
    const Buffer a = whole.slice(0, 16);
    const Buffer b = a;  // copy shares too
    EXPECT_EQ(whole.block_ref_count(), 3u);
    EXPECT_TRUE(b.shares_block_with(whole));
  }
  EXPECT_EQ(whole.block_ref_count(), 1u);
  Buffer moved = std::move(whole);  // move transfers, no bump
  EXPECT_EQ(moved.block_ref_count(), 1u);
}

// The sharded engine posts payload slices to other shards, where they are
// released while siblings are still referenced on the owning shard.  With
// the pre-atomic refcount this was a TSan-visible data race (and a
// potential double-free); the test hammers exactly that pattern and is
// built in the TSan CI job.
TEST(Buffer, CrossThreadSliceReleaseIsRaceFree) {
  constexpr int kRounds = 64;
  constexpr int kThreads = 4;
  constexpr int kSlicesPerThread = 128;
  for (int round = 0; round < kRounds; ++round) {
    Buffer message = Buffer::take(ramp(4096));
    std::vector<std::vector<Buffer>> per_thread(kThreads);
    for (auto& slices : per_thread) {
      for (int i = 0; i < kSlicesPerThread; ++i) {
        slices.push_back(
            message.slice(static_cast<std::size_t>(i % 32) * 128, 128));
      }
    }
    std::atomic<std::uint64_t> bytes_seen{0};
    {
      std::vector<std::jthread> workers;
      for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&bytes_seen, mine = std::move(per_thread[
                                  static_cast<std::size_t>(t)])]() mutable {
          std::uint64_t sum = 0;
          for (Buffer& slice : mine) {
            sum += static_cast<std::uint64_t>(slice[0]);
            slice = Buffer{};  // release on this thread
          }
          bytes_seen.fetch_add(sum, std::memory_order_relaxed);
        });
      }
      // The original drops its reference while workers still hold slices.
      message = Buffer{};
    }
    EXPECT_GT(bytes_seen.load(std::memory_order_relaxed), 0u);
  }
}

}  // namespace
}  // namespace nicmcast::net

#include "net/packet.hpp"

#include <gtest/gtest.h>

namespace nicmcast::net {
namespace {

TEST(Packet, WireSizeAddsFraming) {
  Packet p;
  p.payload = Buffer::filled(100, std::byte{0});
  EXPECT_EQ(p.wire_size(24), 124u);
  EXPECT_EQ(p.payload_size(), 100u);
}

TEST(Packet, EmptyPayloadStillHasFraming) {
  Packet p;
  EXPECT_EQ(p.wire_size(24), 24u);
}

TEST(Packet, DescribeIncludesKeyFields) {
  Packet p;
  p.header.type = PacketType::kMcastData;
  p.header.src = 3;
  p.header.dst = 7;
  p.header.seq = 42;
  p.header.group = 9;
  p.payload = Buffer::filled(64, std::byte{0});
  const std::string d = p.describe();
  EXPECT_NE(d.find("MCAST"), std::string::npos);
  EXPECT_NE(d.find("3->7"), std::string::npos);
  EXPECT_NE(d.find("seq=42"), std::string::npos);
  EXPECT_NE(d.find("grp=9"), std::string::npos);
  EXPECT_NE(d.find("len=64"), std::string::npos);
}

TEST(Packet, DescribeOmitsGroupForPointToPoint) {
  Packet p;
  p.header.group = kNoGroup;
  EXPECT_EQ(p.describe().find("grp="), std::string::npos);
}

TEST(PacketTypeNames, AllCovered) {
  EXPECT_STREQ(to_string(PacketType::kData), "DATA");
  EXPECT_STREQ(to_string(PacketType::kAck), "ACK");
  EXPECT_STREQ(to_string(PacketType::kMcastData), "MCAST");
  EXPECT_STREQ(to_string(PacketType::kMcastAck), "MACK");
  EXPECT_STREQ(to_string(PacketType::kCtrl), "CTRL");
}

TEST(Packet, DefaultHeaderIsPointToPointData) {
  Packet p;
  EXPECT_EQ(p.header.type, PacketType::kData);
  EXPECT_EQ(p.header.group, kNoGroup);
  EXPECT_FALSE(p.corrupted);
}

}  // namespace
}  // namespace nicmcast::net

#include "net/fault_model.hpp"

#include <gtest/gtest.h>

namespace nicmcast::net {
namespace {

Packet make_packet(NodeId src, NodeId dst, std::uint32_t seq,
                   PacketType type = PacketType::kData,
                   GroupId group = kNoGroup) {
  Packet p;
  p.header.src = src;
  p.header.dst = dst;
  p.header.seq = seq;
  p.header.type = type;
  p.header.group = group;
  return p;
}

TEST(NoFaults, AlwaysClean) {
  NoFaults f;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(f.on_packet(make_packet(0, 1, i)), FaultAction::kNone);
  }
}

TEST(RandomFaults, ZeroProbabilityNeverFaults) {
  RandomFaults f(0.0, 0.0, sim::Rng(1));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(f.on_packet(make_packet(0, 1, i)), FaultAction::kNone);
  }
}

TEST(RandomFaults, CertainDropAlwaysDrops) {
  RandomFaults f(1.0, 0.0, sim::Rng(1));
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(f.on_packet(make_packet(0, 1, i)), FaultAction::kDrop);
  }
}

TEST(RandomFaults, RatesApproximatelyRespected) {
  RandomFaults f(0.1, 0.05, sim::Rng(7));
  int drops = 0;
  int corrupts = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    switch (f.on_packet(make_packet(0, 1, i))) {
      case FaultAction::kDrop: ++drops; break;
      case FaultAction::kCorrupt: ++corrupts; break;
      case FaultAction::kNone: break;
    }
  }
  EXPECT_NEAR(static_cast<double>(drops) / n, 0.10, 0.01);
  EXPECT_NEAR(static_cast<double>(corrupts) / n, 0.05, 0.01);
}

TEST(RandomFaults, DeterministicForSeed) {
  RandomFaults a(0.5, 0.0, sim::Rng(42));
  RandomFaults b(0.5, 0.0, sim::Rng(42));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.on_packet(make_packet(0, 1, i)),
              b.on_packet(make_packet(0, 1, i)));
  }
}

TEST(ScriptedFaults, MatchesSeqOnce) {
  ScriptedFaults f;
  f.add_rule({.seq = 5}, FaultAction::kDrop);
  EXPECT_EQ(f.on_packet(make_packet(0, 1, 4)), FaultAction::kNone);
  EXPECT_EQ(f.on_packet(make_packet(0, 1, 5)), FaultAction::kDrop);
  // Rule exhausted: the retransmission of seq 5 passes.
  EXPECT_EQ(f.on_packet(make_packet(0, 1, 5)), FaultAction::kNone);
  EXPECT_EQ(f.pending(), 0u);
}

TEST(ScriptedFaults, CountedRule) {
  ScriptedFaults f;
  f.add_rule({.dst = 3}, FaultAction::kDrop, 2);
  EXPECT_EQ(f.on_packet(make_packet(0, 3, 0)), FaultAction::kDrop);
  EXPECT_EQ(f.on_packet(make_packet(0, 3, 1)), FaultAction::kDrop);
  EXPECT_EQ(f.on_packet(make_packet(0, 3, 2)), FaultAction::kNone);
}

TEST(ScriptedFaults, MatchOnTypeAndGroup) {
  ScriptedFaults f;
  f.add_rule({.type = PacketType::kMcastData, .group = 7},
             FaultAction::kCorrupt, 100);
  EXPECT_EQ(f.on_packet(make_packet(0, 1, 0, PacketType::kData, 7)),
            FaultAction::kNone);
  EXPECT_EQ(f.on_packet(make_packet(0, 1, 0, PacketType::kMcastData, 8)),
            FaultAction::kNone);
  EXPECT_EQ(f.on_packet(make_packet(0, 1, 0, PacketType::kMcastData, 7)),
            FaultAction::kCorrupt);
}

TEST(ScriptedFaults, FirstLiveRuleWins) {
  ScriptedFaults f;
  f.add_rule({.seq = 1}, FaultAction::kDrop);
  f.add_rule({.src = 0}, FaultAction::kCorrupt, 100);
  EXPECT_EQ(f.on_packet(make_packet(0, 1, 1)), FaultAction::kDrop);
  // First rule exhausted; second now applies.
  EXPECT_EQ(f.on_packet(make_packet(0, 1, 1)), FaultAction::kCorrupt);
}

TEST(ScriptedFaults, PredicateRule) {
  ScriptedFaults f;
  f.add_predicate_rule(
      [](const Packet& p) { return p.payload.size() > 100; },
      FaultAction::kDrop, 1);
  Packet small = make_packet(0, 1, 0);
  small.payload.resize(10);
  Packet big = make_packet(0, 1, 1);
  big.payload.resize(200);
  EXPECT_EQ(f.on_packet(small), FaultAction::kNone);
  EXPECT_EQ(f.on_packet(big), FaultAction::kDrop);
  EXPECT_EQ(f.on_packet(big), FaultAction::kNone);  // exhausted
}

TEST(ScriptedFaults, EmptyMatchMatchesEverything) {
  ScriptedFaults f;
  f.add_rule({}, FaultAction::kDrop, 3);
  EXPECT_EQ(f.on_packet(make_packet(9, 2, 77)), FaultAction::kDrop);
  EXPECT_EQ(f.pending(), 2u);
}

}  // namespace
}  // namespace nicmcast::net

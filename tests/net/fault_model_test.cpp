#include "net/fault_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

namespace nicmcast::net {
namespace {

Packet make_packet(NodeId src, NodeId dst, std::uint32_t seq,
                   PacketType type = PacketType::kData,
                   GroupId group = kNoGroup) {
  Packet p;
  p.header.src = src;
  p.header.dst = dst;
  p.header.seq = seq;
  p.header.type = type;
  p.header.group = group;
  return p;
}

TEST(NoFaults, AlwaysClean) {
  NoFaults f;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(f.on_packet(make_packet(0, 1, i)), FaultAction::kNone);
  }
}

TEST(RandomFaults, ZeroProbabilityNeverFaults) {
  RandomFaults f(0.0, 0.0, sim::Rng(1));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(f.on_packet(make_packet(0, 1, i)), FaultAction::kNone);
  }
}

TEST(RandomFaults, CertainDropAlwaysDrops) {
  RandomFaults f(1.0, 0.0, sim::Rng(1));
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(f.on_packet(make_packet(0, 1, i)), FaultAction::kDrop);
  }
}

TEST(RandomFaults, RatesApproximatelyRespected) {
  RandomFaults f(0.1, 0.05, sim::Rng(7));
  int drops = 0;
  int corrupts = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    switch (f.on_packet(make_packet(0, 1, i))) {
      case FaultAction::kDrop: ++drops; break;
      case FaultAction::kCorrupt: ++corrupts; break;
      case FaultAction::kNone: break;
    }
  }
  EXPECT_NEAR(static_cast<double>(drops) / n, 0.10, 0.01);
  EXPECT_NEAR(static_cast<double>(corrupts) / n, 0.05, 0.01);
}

TEST(RandomFaults, DeterministicForSeed) {
  RandomFaults a(0.5, 0.0, sim::Rng(42));
  RandomFaults b(0.5, 0.0, sim::Rng(42));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.on_packet(make_packet(0, 1, i)),
              b.on_packet(make_packet(0, 1, i)));
  }
}

TEST(ScriptedFaults, MatchesSeqOnce) {
  ScriptedFaults f;
  f.add_rule({.seq = 5}, FaultAction::kDrop);
  EXPECT_EQ(f.on_packet(make_packet(0, 1, 4)), FaultAction::kNone);
  EXPECT_EQ(f.on_packet(make_packet(0, 1, 5)), FaultAction::kDrop);
  // Rule exhausted: the retransmission of seq 5 passes.
  EXPECT_EQ(f.on_packet(make_packet(0, 1, 5)), FaultAction::kNone);
  EXPECT_EQ(f.pending(), 0u);
}

TEST(ScriptedFaults, CountedRule) {
  ScriptedFaults f;
  f.add_rule({.dst = 3}, FaultAction::kDrop, 2);
  EXPECT_EQ(f.on_packet(make_packet(0, 3, 0)), FaultAction::kDrop);
  EXPECT_EQ(f.on_packet(make_packet(0, 3, 1)), FaultAction::kDrop);
  EXPECT_EQ(f.on_packet(make_packet(0, 3, 2)), FaultAction::kNone);
}

TEST(ScriptedFaults, MatchOnTypeAndGroup) {
  ScriptedFaults f;
  f.add_rule({.type = PacketType::kMcastData, .group = 7},
             FaultAction::kCorrupt, 100);
  EXPECT_EQ(f.on_packet(make_packet(0, 1, 0, PacketType::kData, 7)),
            FaultAction::kNone);
  EXPECT_EQ(f.on_packet(make_packet(0, 1, 0, PacketType::kMcastData, 8)),
            FaultAction::kNone);
  EXPECT_EQ(f.on_packet(make_packet(0, 1, 0, PacketType::kMcastData, 7)),
            FaultAction::kCorrupt);
}

TEST(ScriptedFaults, FirstLiveRuleWins) {
  ScriptedFaults f;
  f.add_rule({.seq = 1}, FaultAction::kDrop);
  f.add_rule({.src = 0}, FaultAction::kCorrupt, 100);
  EXPECT_EQ(f.on_packet(make_packet(0, 1, 1)), FaultAction::kDrop);
  // First rule exhausted; second now applies.
  EXPECT_EQ(f.on_packet(make_packet(0, 1, 1)), FaultAction::kCorrupt);
}

TEST(ScriptedFaults, PredicateRule) {
  ScriptedFaults f;
  f.add_predicate_rule(
      [](const Packet& p) { return p.payload.size() > 100; },
      FaultAction::kDrop, 1);
  Packet small = make_packet(0, 1, 0);
  small.payload = Buffer::filled(10, std::byte{0});
  Packet big = make_packet(0, 1, 1);
  big.payload = Buffer::filled(200, std::byte{0});
  EXPECT_EQ(f.on_packet(small), FaultAction::kNone);
  EXPECT_EQ(f.on_packet(big), FaultAction::kDrop);
  EXPECT_EQ(f.on_packet(big), FaultAction::kNone);  // exhausted
}

TEST(ScriptedFaults, EmptyMatchMatchesEverything) {
  ScriptedFaults f;
  f.add_rule({}, FaultAction::kDrop, 3);
  EXPECT_EQ(f.on_packet(make_packet(9, 2, 77)), FaultAction::kDrop);
  EXPECT_EQ(f.pending(), 2u);
}

TEST(TrafficClassification, AcksVsData) {
  EXPECT_EQ(traffic_class(PacketType::kAck), TrafficClass::kAck);
  EXPECT_EQ(traffic_class(PacketType::kMcastAck), TrafficClass::kAck);
  EXPECT_EQ(traffic_class(PacketType::kReduceAck), TrafficClass::kAck);
  EXPECT_EQ(traffic_class(PacketType::kData), TrafficClass::kData);
  EXPECT_EQ(traffic_class(PacketType::kMcastData), TrafficClass::kData);
  EXPECT_EQ(traffic_class(PacketType::kCtrl), TrafficClass::kData);
  EXPECT_EQ(traffic_class(PacketType::kBarrier), TrafficClass::kData);
  EXPECT_EQ(traffic_class(PacketType::kReduce), TrafficClass::kData);
}

TEST(LinkFilter, EmptyFilterMatchesEverything) {
  LinkFilter f;
  EXPECT_TRUE(f.matches(make_packet(0, 1, 0)));
  EXPECT_TRUE(f.matches(make_packet(5, 3, 9, PacketType::kMcastAck)));
}

TEST(LinkFilter, RestrictsByEndpointAndDirection) {
  const LinkFilter f{.src = 2, .dst = 3, .traffic = TrafficClass::kData};
  EXPECT_TRUE(f.matches(make_packet(2, 3, 0)));
  EXPECT_FALSE(f.matches(make_packet(3, 2, 0)));  // reverse direction
  EXPECT_FALSE(f.matches(make_packet(2, 4, 0)));
  EXPECT_FALSE(f.matches(make_packet(2, 3, 0, PacketType::kAck)));
}

TEST(GilbertElliott, CleanWhileGoodStateIsAbsorbing) {
  GilbertElliottFaults::Params params;
  params.p_good_to_bad = 0.0;  // never enters the bad state
  GilbertElliottFaults f(params, sim::Rng(3));
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_EQ(f.on_packet(make_packet(0, 1, 0)), FaultAction::kNone);
  }
  EXPECT_FALSE(f.in_bad_state());
}

TEST(GilbertElliott, ProducesLossBursts) {
  GilbertElliottFaults::Params params;
  params.p_good_to_bad = 0.02;
  params.p_bad_to_good = 0.2;  // mean burst length 5 packets
  params.bad_drop = 1.0;
  params.bad_corrupt = 0.0;
  GilbertElliottFaults f(params, sim::Rng(11));
  int drops = 0;
  int run = 0;
  int longest_run = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    if (f.on_packet(make_packet(0, 1, 0)) == FaultAction::kDrop) {
      ++drops;
      longest_run = std::max(longest_run, ++run);
    } else {
      run = 0;
    }
  }
  // Stationary bad-state probability is 0.02/(0.02+0.2) ~ 9%, all dropped.
  EXPECT_NEAR(static_cast<double>(drops) / n, 0.09, 0.03);
  // Bursty, not i.i.d.: consecutive-loss runs far beyond what independent
  // 9% loss would produce in this sample.
  EXPECT_GE(longest_run, 5);
}

TEST(GilbertElliott, DeterministicForSeed) {
  GilbertElliottFaults a({}, sim::Rng(42));
  GilbertElliottFaults b({}, sim::Rng(42));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.on_packet(make_packet(0, 1, 0)),
              b.on_packet(make_packet(0, 1, 0)));
  }
}

TEST(TargetedFaults, OnlyMatchingTrafficReachesInner) {
  TargetedFaults f({.src = 0, .dst = 1},
                   std::make_unique<RandomFaults>(1.0, 0.0, sim::Rng(1)));
  EXPECT_EQ(f.on_packet(make_packet(0, 1, 0)), FaultAction::kDrop);
  EXPECT_EQ(f.on_packet(make_packet(1, 0, 0)), FaultAction::kNone);
  EXPECT_EQ(f.on_packet(make_packet(0, 2, 0)), FaultAction::kNone);
}

TEST(TargetedFaults, AckPathOnlyLeavesDataUntouched) {
  TargetedFaults f({.traffic = TrafficClass::kAck},
                   std::make_unique<RandomFaults>(1.0, 0.0, sim::Rng(1)));
  EXPECT_EQ(f.on_packet(make_packet(1, 0, 0, PacketType::kAck)),
            FaultAction::kDrop);
  EXPECT_EQ(f.on_packet(make_packet(1, 0, 0, PacketType::kMcastAck)),
            FaultAction::kDrop);
  EXPECT_EQ(f.on_packet(make_packet(0, 1, 0)), FaultAction::kNone);
}

TEST(BlackoutFaults, DropsOnlyInsideWindows) {
  sim::TimePoint now{0};
  BlackoutFaults f([&now] { return now; });
  f.add_window(sim::TimePoint{100}, sim::TimePoint{200});
  f.add_window(sim::TimePoint{500}, sim::TimePoint{600});

  EXPECT_EQ(f.on_packet(make_packet(0, 1, 0)), FaultAction::kNone);
  now = sim::TimePoint{100};  // window start is inclusive
  EXPECT_EQ(f.on_packet(make_packet(0, 1, 0)), FaultAction::kDrop);
  now = sim::TimePoint{199};
  EXPECT_EQ(f.on_packet(make_packet(0, 1, 0)), FaultAction::kDrop);
  now = sim::TimePoint{200};  // window end is exclusive
  EXPECT_EQ(f.on_packet(make_packet(0, 1, 0)), FaultAction::kNone);
  now = sim::TimePoint{550};
  EXPECT_EQ(f.on_packet(make_packet(0, 1, 0)), FaultAction::kDrop);
}

TEST(BlackoutFaults, WindowFilterSparesOtherLinks) {
  sim::TimePoint now{150};
  BlackoutFaults f([&now] { return now; });
  f.add_window(sim::TimePoint{100}, sim::TimePoint{200}, {.src = 0, .dst = 1});
  EXPECT_EQ(f.on_packet(make_packet(0, 1, 0)), FaultAction::kDrop);
  EXPECT_EQ(f.on_packet(make_packet(1, 0, 0)), FaultAction::kNone);
  EXPECT_EQ(f.on_packet(make_packet(2, 3, 0)), FaultAction::kNone);
}

TEST(CompositeFaults, FirstNonCleanActionWins) {
  auto scripted_corrupt = std::make_unique<ScriptedFaults>();
  scripted_corrupt->add_rule({.seq = 7}, FaultAction::kCorrupt, 100);
  auto scripted_drop = std::make_unique<ScriptedFaults>();
  scripted_drop->add_rule({.seq = 7}, FaultAction::kDrop, 100);
  scripted_drop->add_rule({.seq = 8}, FaultAction::kDrop, 100);

  CompositeFaults f;
  f.add(std::move(scripted_corrupt));
  f.add(std::move(scripted_drop));
  EXPECT_EQ(f.on_packet(make_packet(0, 1, 7)), FaultAction::kCorrupt);
  EXPECT_EQ(f.on_packet(make_packet(0, 1, 8)), FaultAction::kDrop);
  EXPECT_EQ(f.on_packet(make_packet(0, 1, 9)), FaultAction::kNone);
}

}  // namespace
}  // namespace nicmcast::net

#include "net/network.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace nicmcast::net {
namespace {

struct RecordingSink final : PacketSink {
  struct Arrival {
    Packet packet;
    sim::TimePoint when;
  };
  sim::Simulator* sim = nullptr;
  std::vector<Arrival> arrivals;

  void packet_arrived(Packet packet) override {
    arrivals.push_back(Arrival{std::move(packet), sim->now()});
  }
};

class NetworkTest : public ::testing::Test {
 protected:
  void attach_all(Network& net, std::size_t n) {
    sinks_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      sinks_[i].sim = &sim_;
      net.attach(static_cast<NodeId>(i), sinks_[i]);
    }
  }

  Packet make_packet(NodeId src, NodeId dst, std::size_t bytes,
                     std::uint32_t seq = 0) {
    Packet p;
    p.header.src = src;
    p.header.dst = dst;
    p.header.seq = seq;
    p.payload = Buffer::filled(bytes, std::byte{0xab});
    return p;
  }

  sim::Simulator sim_;
  std::deque<RecordingSink> sinks_;
};

TEST_F(NetworkTest, DeliversPacketWithExpectedLatency) {
  Network net(sim_, Topology::single_switch(4));
  attach_all(net, 4);
  const auto timing = net.transmit(make_packet(0, 1, 1000));
  // ser = (1000 + 24) / 250 MB/s = 4.096us (+1ns rounding); 2 hops * 0.3us.
  EXPECT_NEAR(timing.tx_done.microseconds(), 4.096, 0.01);
  EXPECT_NEAR(timing.arrival.microseconds(), 4.696, 0.01);
  EXPECT_TRUE(timing.delivered);
  sim_.run();
  ASSERT_EQ(sinks_[1].arrivals.size(), 1u);
  EXPECT_EQ(sinks_[1].arrivals[0].when, timing.arrival);
  EXPECT_EQ(sinks_[1].arrivals[0].packet.payload.size(), 1000u);
}

TEST_F(NetworkTest, PayloadContentSurvivesTransit) {
  Network net(sim_, Topology::back_to_back());
  attach_all(net, 2);
  Packet p = make_packet(0, 1, 8);
  std::vector<std::byte> bytes(8);
  for (std::size_t i = 0; i < 8; ++i) bytes[i] = std::byte{std::uint8_t(i)};
  p.payload = Buffer::take(std::move(bytes));
  net.transmit(std::move(p));
  sim_.run();
  ASSERT_EQ(sinks_[1].arrivals.size(), 1u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(sinks_[1].arrivals[0].packet.payload[i],
              std::byte{std::uint8_t(i)});
  }
}

TEST_F(NetworkTest, BackToBackHasOneHop) {
  Network net(sim_, Topology::back_to_back());
  attach_all(net, 2);
  const auto t = net.transmit(make_packet(0, 1, 0));
  // ser = 24B/250MBps = 0.096us; 1 hop.
  EXPECT_NEAR(t.arrival.microseconds() - t.tx_done.microseconds(), 0.3, 1e-6);
}

TEST_F(NetworkTest, SameLinkTransmissionsSerialize) {
  Network net(sim_, Topology::single_switch(4));
  attach_all(net, 4);
  const auto t1 = net.transmit(make_packet(0, 1, 4096));
  const auto t2 = net.transmit(make_packet(0, 2, 4096));
  // Both use link 0->switch; the second must wait for the first.
  EXPECT_GE(t2.tx_done.nanoseconds(),
            t1.tx_done.nanoseconds() + (t1.tx_done - sim::TimePoint{0}).nanoseconds() - 1);
  EXPECT_GE((t2.arrival - t1.arrival).nanoseconds(), 0);
  sim_.run();
  EXPECT_EQ(sinks_[1].arrivals.size(), 1u);
  EXPECT_EQ(sinks_[2].arrivals.size(), 1u);
}

TEST_F(NetworkTest, DisjointPathsDoNotInterfere) {
  Network net(sim_, Topology::single_switch(4));
  attach_all(net, 4);
  const auto t1 = net.transmit(make_packet(0, 1, 4096));
  const auto t2 = net.transmit(make_packet(2, 3, 4096));
  EXPECT_EQ(t1.tx_done, t2.tx_done);
  EXPECT_EQ(t1.arrival, t2.arrival);
}

TEST_F(NetworkTest, FanInContendsOnDestinationLink) {
  Network net(sim_, Topology::single_switch(4));
  attach_all(net, 4);
  const auto t1 = net.transmit(make_packet(0, 3, 4096));
  const auto t2 = net.transmit(make_packet(1, 3, 4096));
  // Different source links, same switch->3 link: arrivals serialize.
  EXPECT_GT(t2.arrival.nanoseconds(), t1.arrival.nanoseconds());
}

TEST_F(NetworkTest, SelfTransmitIsRejected) {
  Network net(sim_, Topology::single_switch(4));
  attach_all(net, 4);
  EXPECT_THROW(net.transmit(make_packet(1, 1, 0)), std::logic_error);
}

TEST_F(NetworkTest, MissingSinkIsAnError) {
  Network net(sim_, Topology::single_switch(4));
  // only node 0 attached
  sinks_.resize(1);
  sinks_[0].sim = &sim_;
  net.attach(0, sinks_[0]);
  EXPECT_THROW(net.transmit(make_packet(0, 1, 0)), std::logic_error);
}

TEST_F(NetworkTest, DroppedPacketNeverArrives) {
  Network net(sim_, Topology::single_switch(4));
  attach_all(net, 4);
  auto faults = std::make_unique<ScriptedFaults>();
  faults->add_rule({.seq = 1}, FaultAction::kDrop);
  net.set_fault_injector(std::move(faults));
  const auto t1 = net.transmit(make_packet(0, 1, 100, 0));
  const auto t2 = net.transmit(make_packet(0, 1, 100, 1));
  EXPECT_TRUE(t1.delivered);
  EXPECT_FALSE(t2.delivered);
  sim_.run();
  EXPECT_EQ(sinks_[1].arrivals.size(), 1u);
  EXPECT_EQ(net.stats().packets_dropped, 1u);
  EXPECT_EQ(net.stats().packets_delivered, 1u);
}

TEST_F(NetworkTest, CorruptedPacketArrivesMarked) {
  Network net(sim_, Topology::single_switch(4));
  attach_all(net, 4);
  auto faults = std::make_unique<ScriptedFaults>();
  faults->add_rule({}, FaultAction::kCorrupt);
  net.set_fault_injector(std::move(faults));
  net.transmit(make_packet(0, 1, 100));
  sim_.run();
  ASSERT_EQ(sinks_[1].arrivals.size(), 1u);
  EXPECT_TRUE(sinks_[1].arrivals[0].packet.corrupted);
  EXPECT_EQ(net.stats().packets_corrupted, 1u);
}

TEST_F(NetworkTest, StatsCountPayloadBytes) {
  Network net(sim_, Topology::single_switch(4));
  attach_all(net, 4);
  net.transmit(make_packet(0, 1, 300));
  net.transmit(make_packet(1, 2, 700));
  sim_.run();
  EXPECT_EQ(net.stats().packets_injected, 2u);
  EXPECT_EQ(net.stats().payload_bytes_delivered, 1000u);
}

TEST_F(NetworkTest, SerializationTimeMatchesBandwidth) {
  Network net(sim_, Topology::single_switch(2));
  // 4096 + 24 framing at 250 MB/s = 16.48us.
  EXPECT_NEAR(net.serialization_time(4096).microseconds(), 16.48, 0.01);
}

TEST_F(NetworkTest, LargerPacketsTakeLonger) {
  Network net(sim_, Topology::single_switch(4));
  attach_all(net, 4);
  const auto small = net.transmit(make_packet(0, 1, 64));
  sim_.run();
  const sim::Duration small_latency = sinks_[1].arrivals[0].when - sim::TimePoint{0};

  sim::Simulator sim2;
  Network net2(sim2, Topology::single_switch(4));
  RecordingSink sink;
  sink.sim = &sim2;
  net2.attach(1, sink);
  net2.attach(0, sink);  // unused
  net2.transmit(make_packet(0, 1, 4096));
  sim2.run();
  EXPECT_GT(sink.arrivals[0].when.nanoseconds(), small_latency.nanoseconds());
  static_cast<void>(small);
}

TEST_F(NetworkTest, ClosCrossLeafLatencyHigherThanSameLeaf) {
  Network net(sim_, Topology::clos(32, 8));
  attach_all(net, 32);
  const auto near = net.transmit(make_packet(0, 1, 100));   // same leaf
  const auto far = net.transmit(make_packet(0, 31, 100));   // via spine
  EXPECT_GT(far.arrival.nanoseconds(), near.arrival.nanoseconds());
  sim_.run();
}

TEST_F(NetworkTest, NullFaultInjectorRejected) {
  Network net(sim_, Topology::single_switch(2));
  EXPECT_THROW(net.set_fault_injector(nullptr), std::invalid_argument);
}

TEST_F(NetworkTest, BringUpMaterializesNoRoutes) {
  // Construction must not walk the all-pairs table; routes appear only as
  // traffic needs them (the 4096-node scale bench depends on this).
  Network net(sim_, Topology::clos(32, 8));
  attach_all(net, 32);
  EXPECT_EQ(net.route_stats().routes_materialized, 0u);

  net.transmit(make_packet(0, 31, 64));
  EXPECT_EQ(net.route_stats().routes_materialized, 1u);
  net.transmit(make_packet(0, 31, 64));  // cached: still one pair
  EXPECT_EQ(net.route_stats().routes_materialized, 1u);
  net.transmit(make_packet(31, 0, 64));  // reverse is its own pair
  EXPECT_EQ(net.route_stats().routes_materialized, 2u);
  sim_.run();
}

}  // namespace
}  // namespace nicmcast::net

#include "net/partition.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "net/topology.hpp"

namespace nicmcast::net {
namespace {

TEST(SwitchCut, RejectsZeroShards) {
  const Topology topo = Topology::single_switch(4);
  EXPECT_THROW(switch_cut(topo, 0), std::invalid_argument);
}

TEST(SwitchCut, SingleShardOwnsEverything) {
  const Topology topo = Topology::clos(64, 16);
  const FabricPartition part = switch_cut(topo, 1);
  EXPECT_EQ(part.shards, 1u);
  EXPECT_EQ(part.cross_links, 0u);
  for (const std::uint32_t s : part.vertex_shard) EXPECT_EQ(s, 0u);
  for (const std::uint32_t s : part.link_owner) EXPECT_EQ(s, 0u);
}

TEST(SwitchCut, LookaheadIsHopLatency) {
  NetworkConfig config;
  config.hop_latency = sim::usec(0.7);
  const FabricPartition part =
      switch_cut(Topology::single_switch(4), 2, config);
  EXPECT_EQ(part.lookahead, sim::usec(0.7));
}

TEST(SwitchCut, EndpointsStayWithTheirLeafSwitch) {
  // clos(64, 16): 8 leaves x 8 endpoints, 8 spines.
  const Topology topo = Topology::clos(64, 16);
  const FabricPartition part = switch_cut(topo, 4, {});
  ASSERT_EQ(part.vertex_shard.size(), topo.vertex_count());

  // Every endpoint shares a shard with at least one adjacent switch, and
  // endpoints cabled to the same leaf share a shard with each other.
  for (LinkId l = 0; l < topo.link_count(); ++l) {
    const LinkDesc& link = topo.link(l);
    if (topo.is_endpoint(link.from) && !topo.is_endpoint(link.to)) {
      EXPECT_EQ(part.vertex_shard[link.from], part.vertex_shard[link.to])
          << "endpoint " << link.from << " split from its leaf " << link.to;
    }
  }

  // All 4 shards are populated, and endpoint blocks are contiguous (leaves
  // are dealt in blocks, and clos() creates leaves in endpoint order).
  std::set<std::uint32_t> used;
  for (std::size_t e = 0; e < topo.endpoint_count(); ++e) {
    used.insert(part.vertex_shard[e]);
    if (e > 0) {
      EXPECT_LE(part.vertex_shard[e - 1], part.vertex_shard[e]);
    }
  }
  EXPECT_EQ(used.size(), 4u);
}

TEST(SwitchCut, LinkOwnerIsSourceVertexShard) {
  const Topology topo = Topology::clos(128, 16);
  const FabricPartition part = switch_cut(topo, 8, {});
  std::uint64_t cross = 0;
  for (LinkId l = 0; l < topo.link_count(); ++l) {
    const LinkDesc& link = topo.link(l);
    EXPECT_EQ(part.link_owner[l], part.vertex_shard[link.from]);
    if (part.vertex_shard[link.from] != part.vertex_shard[link.to]) ++cross;
  }
  EXPECT_EQ(part.cross_links, cross);
  EXPECT_GT(part.cross_links, 0u);  // leaves uplink to spines across shards
}

TEST(SwitchCut, BackToBackSplitsEndpointsDirectly) {
  const Topology topo = Topology::back_to_back();
  const FabricPartition part = switch_cut(topo, 2, {});
  EXPECT_EQ(part.vertex_shard[0], 0u);
  EXPECT_EQ(part.vertex_shard[1], 1u);
  EXPECT_EQ(part.cross_links, 2u);  // both directions of the one cable
}

TEST(SwitchCut, MoreShardsThanLeavesClampsToTheLeafBlockCount) {
  // single_switch(8): one leaf switch, 13 shards requested.  Everything
  // must collapse onto one shard — the old behaviour kept shards = 13 and
  // left 12 workers spinning through LBTS rounds with nothing to do.
  const Topology topo = Topology::single_switch(8);
  const FabricPartition part = switch_cut(topo, 13, {});
  EXPECT_EQ(part.shards, 1u);
  for (std::size_t e = 0; e < topo.endpoint_count(); ++e) {
    EXPECT_EQ(part.vertex_shard[e], part.vertex_shard[topo.endpoint_count()]);
  }
  EXPECT_EQ(part.cross_links, 0u);
}

TEST(SwitchCut, ClampedPartitionPopulatesEveryShard) {
  // clos(64, 32): 4 leaf blocks of 16.  Requesting 8 shards used to leave
  // shards 1/3/5/7 without a single endpoint; now the cut clamps to 4 and
  // every shard owns at least one endpoint.
  const Topology topo = Topology::clos(64, 32);
  const FabricPartition part = switch_cut(topo, 8, {});
  EXPECT_EQ(part.shards, 4u);
  std::set<std::uint32_t> used;
  for (std::size_t e = 0; e < topo.endpoint_count(); ++e) {
    used.insert(part.vertex_shard[e]);
  }
  EXPECT_EQ(used.size(), part.shards);
}

TEST(SwitchCut, ChannelLookaheadMatrixCoversEveryShardPair) {
  NetworkConfig config;
  config.hop_latency = sim::usec(0.7);
  const Topology topo = Topology::clos(128, 16);
  const FabricPartition part = switch_cut(topo, 8, config);
  ASSERT_EQ(part.shards, 8u);
  ASSERT_EQ(part.channel_lookahead.size(), 64u);  // shards^2, row-major
  // Links carry the uniform hop latency, so every connected pair's entry is
  // exactly hop_latency == the global lookahead, and unconnected pairs fall
  // back to the same global floor.  (A future per-link latency model would
  // differentiate them — this pins the derivation, not just the constant.)
  for (std::size_t from = 0; from < part.shards; ++from) {
    for (std::size_t to = 0; to < part.shards; ++to) {
      EXPECT_EQ(part.channel_lookahead_of(from, to), sim::usec(0.7))
          << from << "->" << to;
      EXPECT_GE(part.channel_lookahead_of(from, to), part.lookahead)
          << from << "->" << to
          << ": a channel promise below the global floor is unsound";
    }
  }
}

TEST(SwitchCut, ChannelLookaheadSingleShardIsOneEntry) {
  const FabricPartition part = switch_cut(Topology::single_switch(4), 1, {});
  ASSERT_EQ(part.channel_lookahead.size(), 1u);
  EXPECT_EQ(part.channel_lookahead_of(0, 0), part.lookahead);
}

TEST(SwitchCut, ChannelLookaheadClampedPartitionMatchesShards) {
  // The clamp (8 requested -> 4 effective) must size the matrix by the
  // effective shard count.
  const Topology topo = Topology::clos(64, 32);
  const FabricPartition part = switch_cut(topo, 8, {});
  ASSERT_EQ(part.shards, 4u);
  EXPECT_EQ(part.channel_lookahead.size(), 16u);
}

TEST(SwitchCut, BackToBackClampsToTheEndpointCount) {
  const Topology topo = Topology::back_to_back();
  const FabricPartition part = switch_cut(topo, 5, {});
  EXPECT_EQ(part.shards, 2u);  // one endpoint per shard is the ceiling
  EXPECT_NE(part.vertex_shard[0], part.vertex_shard[1]);
}

}  // namespace
}  // namespace nicmcast::net

#include "net/topology.hpp"

#include <gtest/gtest.h>

#include <set>

namespace nicmcast::net {
namespace {

TEST(Topology, BackToBackRouteIsOneLink) {
  const Topology t = Topology::back_to_back();
  EXPECT_EQ(t.endpoint_count(), 2u);
  const Route r = t.route(0, 1);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(t.link(r[0]).from, 0u);
  EXPECT_EQ(t.link(r[0]).to, 1u);
}

TEST(Topology, RouteToSelfIsEmpty) {
  const Topology t = Topology::single_switch(4);
  EXPECT_TRUE(t.route(2, 2).empty());
}

TEST(Topology, SingleSwitchRoutesAreTwoLinks) {
  const Topology t = Topology::single_switch(16);
  for (NodeId i = 0; i < 16; ++i) {
    for (NodeId j = 0; j < 16; ++j) {
      if (i == j) continue;
      const Route r = t.route(i, j);
      EXPECT_EQ(r.size(), 2u) << i << "->" << j;
      EXPECT_EQ(t.link(r.front()).from, i);
      EXPECT_EQ(t.link(r.back()).to, j);
    }
  }
}

TEST(Topology, RouteLinksAreContiguous) {
  const Topology t = Topology::clos(32, 8);
  const Route r = t.route(0, 31);
  ASSERT_FALSE(r.empty());
  for (std::size_t i = 1; i < r.size(); ++i) {
    EXPECT_EQ(t.link(r[i - 1]).to, t.link(r[i]).from);
  }
}

TEST(Topology, ClosSmallFallsBackToSingleSwitch) {
  const Topology t = Topology::clos(8, 16);
  EXPECT_EQ(t.route(0, 7).size(), 2u);
}

TEST(Topology, ClosSameLeafIsTwoHops) {
  // radix 8 -> 4 endpoints per leaf; nodes 0..3 share a leaf.
  const Topology t = Topology::clos(32, 8);
  EXPECT_EQ(t.route(0, 3).size(), 2u);
}

TEST(Topology, ClosCrossLeafIsFourHops) {
  // leaf -> spine -> leaf: 4 links endpoint to endpoint.
  const Topology t = Topology::clos(32, 8);
  EXPECT_EQ(t.route(0, 31).size(), 4u);
}

TEST(Topology, ClosConnectsAllPairs) {
  const Topology t = Topology::clos(20, 8);
  for (NodeId i = 0; i < 20; ++i) {
    for (NodeId j = 0; j < 20; ++j) {
      if (i == j) continue;
      EXPECT_NO_THROW(static_cast<void>(t.route(i, j)));
    }
  }
}

TEST(Topology, RoutesNeverCutThroughEndpoints) {
  const Topology t = Topology::clos(32, 8);
  for (NodeId i : {NodeId{0}, NodeId{5}, NodeId{17}}) {
    for (NodeId j : {NodeId{3}, NodeId{12}, NodeId{31}}) {
      if (i == j) continue;
      const Route r = t.route(i, j);
      for (std::size_t k = 0; k + 1 < r.size(); ++k) {
        EXPECT_FALSE(t.is_endpoint(t.link(r[k]).to));
      }
    }
  }
}

TEST(Topology, AllRoutesMatrixShape) {
  const Topology t = Topology::single_switch(4);
  const auto routes = t.all_routes();
  ASSERT_EQ(routes.size(), 4u);
  for (NodeId i = 0; i < 4; ++i) {
    ASSERT_EQ(routes[i].size(), 4u);
    EXPECT_TRUE(routes[i][i].empty());
  }
  EXPECT_EQ(routes[1][3].size(), 2u);
}

TEST(Topology, DisconnectedThrows) {
  Topology t(3);
  t.add_cable(0, 1);
  EXPECT_THROW(static_cast<void>(t.route(0, 2)), std::runtime_error);
}

TEST(Topology, InvalidArgumentsThrow) {
  EXPECT_THROW(Topology t(0), std::invalid_argument);
  EXPECT_THROW(Topology::clos(32, 7), std::invalid_argument);
  Topology t(2);
  EXPECT_THROW(t.add_cable(0, 99), std::out_of_range);
  EXPECT_THROW(static_cast<void>(t.route(0, 5)), std::out_of_range);
}

TEST(Topology, CableCreatesBothDirections) {
  Topology t(2);
  const LinkId id = t.add_cable(0, 1);
  EXPECT_EQ(t.link_count(), 2u);
  EXPECT_EQ(t.link(id).from, 0u);
  EXPECT_EQ(t.link(id + 1).from, 1u);
  EXPECT_EQ(t.link(id + 1).to, 0u);
}

TEST(Topology, ForwardAndReverseRoutesUseDistinctLinks) {
  const Topology t = Topology::single_switch(3);
  const Route fwd = t.route(0, 1);
  const Route rev = t.route(1, 0);
  std::set<LinkId> fwd_set(fwd.begin(), fwd.end());
  for (LinkId l : rev) {
    EXPECT_FALSE(fwd_set.contains(l));
  }
}

// ---- RouteTable -----------------------------------------------------------

TEST(RouteTable, MatchesEagerRoutesOnEveryTopology) {
  const Topology topos[] = {Topology::back_to_back(),
                            Topology::single_switch(16),
                            Topology::clos(32, 8), Topology::clos(40, 16)};
  for (const Topology& t : topos) {
    RouteTable table(t);
    const auto eager = t.all_routes();
    const std::size_t n = t.endpoint_count();
    for (NodeId i = 0; i < n; ++i) {
      for (NodeId j = 0; j < n; ++j) {
        const RouteView v = table.route(i, j);
        ASSERT_EQ(v.to_route(), eager[i][j])
            << i << "->" << j << " (n=" << n << ")";
        ASSERT_EQ(v.size(), eager[i][j].size());
      }
    }
  }
}

TEST(RouteTable, LazyPerSourceFill) {
  const Topology t = Topology::clos(32, 8);
  RouteTable table(t);
  EXPECT_EQ(table.stats().routes_materialized, 0u);
  EXPECT_EQ(table.stats().sources_touched, 0u);

  (void)table.route(0, 31);
  EXPECT_EQ(table.stats().routes_materialized, 1u);
  EXPECT_EQ(table.stats().sources_touched, 1u);

  // Repeat lookups are cache hits, not recomputations.
  (void)table.route(0, 31);
  EXPECT_EQ(table.stats().routes_materialized, 1u);

  (void)table.route(5, 2);
  EXPECT_EQ(table.stats().routes_materialized, 2u);
  EXPECT_EQ(table.stats().sources_touched, 2u);

  // Self routes are free.
  EXPECT_TRUE(table.route(7, 7).empty());
  EXPECT_EQ(table.stats().routes_materialized, 2u);
}

TEST(RouteTable, InternsSharedPrefixSpans) {
  // Destinations behind the same leaf switch share the source's path to
  // that leaf; the second route must reuse the interned span instead of
  // storing its full hop sequence again.
  const Topology t = Topology::clos(32, 8);  // 4 endpoints per leaf
  RouteTable table(t);
  const RouteView a = table.route(0, 28);  // cross-leaf: 4 links
  ASSERT_EQ(a.size(), 4u);
  const std::uint64_t stored_after_first = table.stats().links_stored;
  EXPECT_EQ(table.stats().links_shared, 0u);

  const RouteView b = table.route(0, 29);  // same destination leaf
  ASSERT_EQ(b.size(), 4u);
  EXPECT_GT(table.stats().links_shared, 0u);
  // The second route stored strictly fewer new links than its length.
  EXPECT_LT(table.stats().links_stored - stored_after_first, b.size());
  // Shared prefix: identical links up to the destination leaf.
  EXPECT_EQ(a[0], b[0]);
  EXPECT_EQ(a[1], b[1]);
  EXPECT_NE(a[3], b[3]);  // different final hop
}

TEST(RouteTable, ViewsStayValidAsArenaGrows) {
  const Topology t = Topology::single_switch(32);
  RouteTable table(t);
  const RouteView first = table.route(0, 1);
  const Route snapshot = first.to_route();
  for (NodeId j = 2; j < 32; ++j) {
    (void)table.route(0, j);  // grows the source arena
  }
  EXPECT_EQ(first.to_route(), snapshot);  // offsets, not pointers
}

// Regression for the pre-widening NodeId wrap: with a 16-bit id,
// endpoint 65536 aliased endpoint 0 and id loops never terminated at
// n == 65536.  The 32-bit id keeps every id below the guard distinct,
// and construction rejects counts the id width cannot address.
TEST(Topology, EndpointCountsBeyondTheIdWidthAreRejected) {
  static_assert(sizeof(NodeId) >= 4,
                ">65536-endpoint fabrics require a 32-bit NodeId");
  // The ctor allocates nothing per endpoint, so the boundary is testable.
  EXPECT_NO_THROW(Topology{Topology::max_addressable_endpoints()});
  EXPECT_THROW(Topology{Topology::max_addressable_endpoints() + 1},
               std::invalid_argument);
}

TEST(Topology, IdsPastTheOldSixteenBitWrapStayDistinct) {
  const std::size_t n = 65536 + 64;
  std::set<NodeId> seen;
  for (std::size_t i = 0; i < n; ++i) {  // wrapped forever with 16-bit ids
    seen.insert(static_cast<NodeId>(i));
  }
  EXPECT_EQ(seen.size(), n);  // 16-bit ids aliased 65536 -> 0 here
  EXPECT_NE(static_cast<NodeId>(65536), static_cast<NodeId>(0));
}

TEST(RouteTable, ThrowsLikeTopologyRoute) {
  Topology t(3);
  t.add_cable(0, 1);
  RouteTable table(t);
  EXPECT_THROW((void)table.route(0, 5), std::out_of_range);
  EXPECT_THROW((void)table.route(0, 2), std::runtime_error);
  // A failed destination must not poison later lookups.
  EXPECT_EQ(table.route(0, 1).size(), 1u);
}

}  // namespace
}  // namespace nicmcast::net

// Focused tests of the wormhole channel model's subtleties: the
// small-packet (control) bypass, cut-through hop accounting across deeper
// fabrics, and cross-traffic contention on shared Clos links.
#include <gtest/gtest.h>

#include <deque>

#include "net/network.hpp"

namespace nicmcast::net {
namespace {

struct RecordingSink final : PacketSink {
  sim::Simulator* sim = nullptr;
  std::vector<std::pair<Packet, sim::TimePoint>> arrivals;
  void packet_arrived(Packet packet) override {
    arrivals.emplace_back(std::move(packet), sim->now());
  }
};

struct Rig {
  explicit Rig(Topology topology) : network(sim, std::move(topology)) {
    sinks.resize(network.topology().endpoint_count());
    for (NodeId i = 0; i < sinks.size(); ++i) {
      sinks[i].sim = &sim;
      network.attach(i, sinks[i]);
    }
  }
  Packet make(NodeId src, NodeId dst, std::size_t bytes,
              PacketType type = PacketType::kData) {
    Packet p;
    p.header.src = src;
    p.header.dst = dst;
    p.header.type = type;
    p.payload = Buffer::filled(bytes, std::byte{1});
    return p;
  }
  sim::Simulator sim;
  Network network;
  std::deque<RecordingSink> sinks;
};

TEST(ChannelModel, ControlPacketBypassesBusyPath) {
  // A long data packet occupies 0->switch; a 0-byte ack injected right
  // after must NOT wait for it (flit interleaving), while a second data
  // packet must.
  Rig r(Topology::single_switch(4));
  const auto data = r.network.transmit(r.make(0, 1, 4096));
  const auto ack = r.network.transmit(r.make(0, 2, 0, PacketType::kAck));
  const auto data2 = r.network.transmit(r.make(0, 3, 4096));
  EXPECT_LT(ack.arrival.nanoseconds(), data.arrival.nanoseconds());
  EXPECT_GT(data2.arrival.nanoseconds(), data.arrival.nanoseconds());
  r.sim.run();
}

TEST(ChannelModel, ControlPacketDoesNotReserveTheLink) {
  // The bypassed ack must leave no occupancy footprint: a data packet
  // right behind it starts as if the ack never existed.
  Rig a(Topology::single_switch(2));
  a.network.transmit(a.make(0, 1, 0, PacketType::kAck));
  const auto with_ack = a.network.transmit(a.make(0, 1, 4096));

  Rig b(Topology::single_switch(2));
  const auto without_ack = b.network.transmit(b.make(0, 1, 4096));
  EXPECT_EQ(with_ack.arrival.nanoseconds(),
            without_ack.arrival.nanoseconds());
}

TEST(ChannelModel, BypassThresholdIsConfigurable) {
  NetworkConfig config;
  config.small_packet_bypass_bytes = 0;  // nothing bypasses
  sim::Simulator sim;
  Network net(sim, Topology::single_switch(2), config);
  RecordingSink sink;
  sink.sim = &sim;
  net.attach(0, sink);
  net.attach(1, sink);
  Packet big;
  big.header.src = 0;
  big.header.dst = 1;
  big.payload = Buffer::filled(4096, std::byte{1});
  Packet ack;
  ack.header.src = 0;
  ack.header.dst = 1;
  ack.header.type = PacketType::kAck;
  const auto t_big = net.transmit(big);
  const auto t_ack = net.transmit(ack);
  // With no bypass, the ack queues behind the data packet.
  EXPECT_GT(t_ack.arrival.nanoseconds(), t_big.arrival.nanoseconds());
  sim.run();
}

TEST(ChannelModel, DeeperFabricsAddHopLatencyOnly) {
  Rig flat(Topology::single_switch(4));       // 2 hops
  Rig clos(Topology::clos(32, 8));            // 4 hops cross-leaf
  const auto near = flat.network.transmit(flat.make(0, 1, 1000));
  const auto far = clos.network.transmit(clos.make(0, 31, 1000));
  const double hop_us =
      NetworkConfig{}.hop_latency.microseconds();
  EXPECT_NEAR(far.arrival.microseconds() - near.arrival.microseconds(),
              2 * hop_us, 1e-6);
  flat.sim.run();
  clos.sim.run();
}

TEST(ChannelModel, SpineContentionSerialisesCrossLeafFlows) {
  // Two cross-leaf flows from one leaf share the leaf's uplink pool; with
  // a radix-4 Clos (2 uplinks) a third concurrent flow must queue.
  Rig r(Topology::clos(8, 4));  // 2 endpoints/leaf, 2 spines
  const auto f1 = r.network.transmit(r.make(0, 6, 4096));
  const auto f2 = r.network.transmit(r.make(1, 7, 4096));
  // Same-leaf sources 0 and 1 use distinct access links, and BFS routes
  // both via the first spine — so they serialise on the leaf->spine link.
  EXPECT_NE(f1.arrival.nanoseconds(), f2.arrival.nanoseconds());
  r.sim.run();
}

TEST(ChannelModel, SelfContainedOccupancyPerDirection) {
  // Full duplex: a big transfer 0->1 does not delay 1->0.
  Rig r(Topology::single_switch(2));
  const auto fwd = r.network.transmit(r.make(0, 1, 4096));
  const auto rev = r.network.transmit(r.make(1, 0, 4096));
  EXPECT_EQ(fwd.arrival.nanoseconds(), rev.arrival.nanoseconds());
  r.sim.run();
}

}  // namespace
}  // namespace nicmcast::net

// Extension — scalability study (paper §7: the scheme "requires minimum
// memory and processor resources at the NIC, which promises good
// scalability"; GM "can support clusters of over 10,000 nodes").
//
// Sweeps the GM-level multicast from 8 to 128 nodes on radix-16 Clos
// fabrics and reports the NIC-based improvement factor, the tree shapes
// the postal model picks, and the NIC-level barrier against the host-level
// dissemination barrier at the same sizes.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "harness/bench_io.hpp"
#include "harness/run_spec.hpp"

namespace nicmcast::bench {
namespace {

using namespace nicmcast::harness;

// Seven runs per node count; a hand-built spec list (not a cartesian grid).
constexpr std::size_t kRunsPerScale = 7;

std::vector<RunSpec> specs_for(std::size_t nodes, int iterations) {
  RunSpec mcast;
  mcast.experiment = Experiment::kGmMulticast;
  mcast.nodes = nodes;
  mcast.warmup = 2;
  mcast.iterations = iterations;

  std::vector<RunSpec> specs;
  for (auto [bytes, algo, tree] :
       {std::tuple{std::size_t{512}, Algo::kHostBased, TreeShape::kBinomial},
        std::tuple{std::size_t{512}, Algo::kNicBased, TreeShape::kPostal},
        std::tuple{std::size_t{16384}, Algo::kHostBased, TreeShape::kBinomial},
        std::tuple{std::size_t{16384}, Algo::kNicBased, TreeShape::kPostal},
        std::tuple{std::size_t{16384}, Algo::kNicBased, TreeShape::kChain}}) {
    RunSpec s = mcast;
    s.message_bytes = bytes;
    s.algo = algo;
    s.tree = tree;
    specs.push_back(std::move(s));
  }

  RunSpec barrier;
  barrier.experiment = Experiment::kBarrier;
  barrier.nodes = nodes;
  barrier.iterations = 10;
  barrier.algo = Algo::kHostBased;  // dissemination
  specs.push_back(barrier);
  barrier.algo = Algo::kNicBased;
  specs.push_back(barrier);
  return specs;
}

void run(const BenchOptions& options) {
  print_header(
      "Extension — scalability sweep (Clos fabrics up to 128 nodes)",
      "Paper §7: minimal NIC state, no centralized manager => the benefit "
      "should grow with system size.");
  const std::vector<std::size_t> scales{8, 16, 32, 64, 128};
  const int iterations = options.iterations > 0 ? options.iterations : 10;

  std::vector<RunSpec> specs;
  for (std::size_t nodes : scales) {
    auto batch = specs_for(nodes, iterations);
    specs.insert(specs.end(), std::make_move_iterator(batch.begin()),
                 std::make_move_iterator(batch.end()));
  }
  const auto results = ParallelRunner(runner_options(options)).run(specs);

  std::printf("%6s | %26s | %36s | %21s\n", "nodes",
              "512B mcast HB/NB/factor",
              "16KB mcast HB/NB-postal/NB-chain/best", "barrier host/NIC");
  for (std::size_t ni = 0; ni < scales.size(); ++ni) {
    const std::size_t at = ni * kRunsPerScale;
    const double hb_s = results[at + 0].mean_us();
    const double nb_s = results[at + 1].mean_us();
    const double hb_l = results[at + 2].mean_us();
    const double nb_postal = results[at + 3].mean_us();
    const double nb_chain = results[at + 4].mean_us();
    const double nb_best = std::min(nb_postal, nb_chain);
    const double bar_host = results[at + 5].metric("wall_us_per_round");
    const double bar_nic = results[at + 6].metric("wall_us_per_round");
    std::printf(
        "%6zu | %8.1f %7.1f %7.2fx | %8.1f %8.1f %8.1f %6.2fx | %8.1f %8.1f\n",
        scales[ni], hb_s, nb_s, hb_s / nb_s, hb_l, nb_postal, nb_chain,
        hb_l / nb_best, bar_host, bar_nic);
  }
  std::printf(
      "\nShape check: the small-message factor and the NIC barrier's edge\n"
      "persist at every scale.  For 16KB the fan-out-2 postal tree leaves\n"
      "no wire headroom (each hop emits twice its input rate), so Clos\n"
      "spine contention past 16 nodes saturates it; a fan-out-1 chain\n"
      "restores the win at 32 nodes, and past 64 nodes large-message NB\n"
      "needs topology-aware trees — construction the paper explicitly\n"
      "scopes out ('our intent is not to study the effects of hardware\n"
      "topology', §5).\n");

  write_bench_json("ext_scalability", options, results);
}

}  // namespace
}  // namespace nicmcast::bench

int main(int argc, char** argv) {
  nicmcast::bench::run(
      nicmcast::harness::parse_bench_options(argc, argv, "ext_scalability"));
  return 0;
}

// Extension — scalability study (paper §7: the scheme "requires minimum
// memory and processor resources at the NIC, which promises good
// scalability"; GM "can support clusters of over 10,000 nodes").
//
// Two phases:
//  1. the latency sweep: GM-level multicast from 8 to 128 nodes on radix-16
//     Clos fabrics — NIC-based improvement factor, tree shapes, NIC barrier
//     vs host dissemination barrier;
//  2. the scale sweep: single NIC-based multicasts on 128 -> 512 -> 2048 ->
//     4096-node Clos fabrics at radix 16 and 32, timed sequentially, with
//     per-point events/sec, process peak RSS, and the engine's lazy-route /
//     timing-wheel counters in the JSON ("scale-<nodes>x<radix>" labels).
//     The 128/512 points are pinned (exact event_order_hash + events/sec
//     floor) by scripts/check_bench_regression.py --scale in CI, which caps
//     the sweep with --max-nodes to stay fast; the larger points document
//     wall clock and memory.  A full all-pairs route table at 4096 nodes
//     would hold 4096*4095 routes; the engine's routes_materialized counter
//     in the JSON shows what the lazy RouteTable actually computed.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#if defined(__linux__)
#include <sys/resource.h>
#endif

#include "harness/bench_io.hpp"
#include "harness/parallel_runner.hpp"
#include "harness/run_spec.hpp"
#include "harness/runners.hpp"

namespace nicmcast::bench {
namespace {

using namespace nicmcast::harness;

/// Process peak RSS in KiB (0 where unsupported).  Monotonic, so the scale
/// sweep runs smallest point first and each reading is effectively that
/// point's high water.
std::uint64_t peak_rss_kb() {
#if defined(__linux__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    return static_cast<std::uint64_t>(usage.ru_maxrss);
  }
#endif
  return 0;
}

// Seven runs per node count; a hand-built spec list (not a cartesian grid).
constexpr std::size_t kRunsPerScale = 7;

std::vector<RunSpec> specs_for(std::size_t nodes, int iterations) {
  RunSpec mcast;
  mcast.experiment = Experiment::kGmMulticast;
  mcast.nodes = nodes;
  mcast.warmup = 2;
  mcast.iterations = iterations;

  std::vector<RunSpec> specs;
  for (auto [bytes, algo, tree] :
       {std::tuple{std::size_t{512}, Algo::kHostBased, TreeShape::kBinomial},
        std::tuple{std::size_t{512}, Algo::kNicBased, TreeShape::kPostal},
        std::tuple{std::size_t{16384}, Algo::kHostBased, TreeShape::kBinomial},
        std::tuple{std::size_t{16384}, Algo::kNicBased, TreeShape::kPostal},
        std::tuple{std::size_t{16384}, Algo::kNicBased, TreeShape::kChain}}) {
    RunSpec s = mcast;
    s.message_bytes = bytes;
    s.algo = algo;
    s.tree = tree;
    specs.push_back(std::move(s));
  }

  RunSpec barrier;
  barrier.experiment = Experiment::kBarrier;
  barrier.nodes = nodes;
  barrier.iterations = 10;
  barrier.algo = Algo::kHostBased;  // dissemination
  specs.push_back(barrier);
  barrier.algo = Algo::kNicBased;
  specs.push_back(barrier);
  return specs;
}

/// One scale-sweep point: a NIC-based multicast on an `nodes`-endpoint
/// radix-`radix` Clos, run sequentially so wall clock and RSS are its own.
RunResult run_scale_point(const BenchOptions& options, std::size_t nodes,
                          std::size_t radix, std::size_t index) {
  RunSpec spec;
  spec.experiment = Experiment::kGmMulticast;
  spec.label = "scale-" + std::to_string(nodes) + "x" + std::to_string(radix);
  spec.nodes = nodes;
  spec.wiring = Wiring::kClos;
  spec.switch_radix = radix;
  spec.message_bytes = 512;
  spec.algo = Algo::kNicBased;
  spec.tree = TreeShape::kPostal;
  spec.warmup = 1;
  spec.iterations = 2;
  spec.seed = derive_seed(options.base_seed, 1000 + index);

  // NOLINTNEXTLINE(nicmcast-wall-clock): host wall time measures bench throughput, not simulated time
  const auto start = std::chrono::steady_clock::now();
  RunResult result = run_gm_mcast(spec);
  const double wall_s =
      // NOLINTNEXTLINE(nicmcast-wall-clock): host wall time measures bench throughput, not simulated time
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const auto events = static_cast<double>(result.engine.events_executed);
  const double full_pairs =
      static_cast<double>(nodes) * static_cast<double>(nodes - 1);
  result.set_metric("events", events);
  result.set_metric("wall_ms", wall_s * 1e3);
  result.set_metric("events_per_sec", events / wall_s);
  result.set_metric("peak_rss_kb", static_cast<double>(peak_rss_kb()));
  result.set_metric("full_pairs", full_pairs);
  return result;
}

/// One sharded-sweep point.  shards == 1 goes through run_one and thus the
/// classic sequential engine — the bit-identical baseline the determinism
/// contract pins — while shards > 1 runs the conservative-PDES fabric.
/// `async` switches the engine to asynchronous null-message sync ("-async"
/// label suffix): the same hashes and lbts_rounds by construction, so the
/// JSON twin rows are a pure synchronization-cost comparison.
RunResult run_sharded_point(const BenchOptions& options, std::size_t nodes,
                            std::size_t radix, std::size_t shards,
                            bool async) {
  RunSpec spec;
  spec.experiment = Experiment::kGmMulticast;
  spec.label = "pshard-" + std::to_string(nodes) + "x" + std::to_string(radix) +
               "-s" + std::to_string(shards) + (async ? "-async" : "");
  spec.async_sync = async;
  spec.nodes = nodes;
  spec.wiring = Wiring::kClos;
  spec.switch_radix = radix;
  spec.message_bytes = 512;
  spec.algo = Algo::kNicBased;
  // Binomial, not postal: flat-array construction stays trivial at 65536
  // endpoints and both engines build the identical tree.
  spec.tree = TreeShape::kBinomial;
  spec.warmup = 1;
  spec.iterations = 2;
  spec.shards = shards;
  // Seeded per node count (not per point): every shard count of one fabric
  // answers for the same seeded scenario, which is what makes the
  // cross-shard-count invariance rows in BENCH_scale.json comparable.
  spec.seed = derive_seed(options.base_seed, 3000 + nodes);

  // NOLINTNEXTLINE(nicmcast-wall-clock): host wall time measures bench throughput, not simulated time
  const auto start = std::chrono::steady_clock::now();
  RunResult result = run_one(spec);
  const double wall_s =
      // NOLINTNEXTLINE(nicmcast-wall-clock): host wall time measures bench throughput, not simulated time
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const auto events = static_cast<double>(result.engine.events_executed);
  result.set_metric("events", events);
  result.set_metric("wall_ms", wall_s * 1e3);
  result.set_metric("events_per_sec", events / wall_s);
  result.set_metric("peak_rss_kb", static_cast<double>(peak_rss_kb()));
  result.set_metric("full_pairs",
                    static_cast<double>(nodes) *
                        static_cast<double>(nodes - 1));
  return result;
}

void run_sharded_sweep(const BenchOptions& options,
                       std::vector<RunResult>& results) {
  struct Point {
    std::size_t nodes;
    std::size_t shards;
    bool async;
  };
  // shards == 1 points are the classic-engine baselines.  65536 keeps no
  // classic baseline: it dates from the 16-bit NodeId days (the coroutine
  // stack topped out one node short), and re-baselining now would redate
  // every recorded comparison — the widened id is covered by the multisend
  // family sweep below instead.  The "-async" twins rerun the same seeded
  // scenario under null-message sync (identical hashes and rounds; the
  // blocked_waits column is the synchronization-stall report).
  const std::vector<Point> points{
      {512, 1, false},   {512, 4, false}, {512, 4, true},  // CI-pinned trio
      {4096, 1, false},  {4096, 4, false},
      {16384, 1, false}, {16384, 2, false}, {16384, 4, false},
      {16384, 4, true},                                    // the ISSUE fabric
      {16384, 8, false},
      {32768, 1, false}, {32768, 4, false},
      {65536, 2, false}, {65536, 4, false}, {65536, 4, true}, {65536, 8, false},
  };

  std::printf("\n%22s | %10s | %9s | %12s | %11s | %9s | %9s\n",
              "sharded point", "events", "wall ms", "events/s", "x-shard msg",
              "lbts rnds", "blk waits");
  std::size_t skipped = 0;
  for (const auto& [nodes, shards, async] : points) {
    if (options.max_nodes != 0 && nodes > options.max_nodes) {
      ++skipped;
      continue;
    }
    const std::size_t effective = options.shards_or(shards);
    const bool eff_async = options.async_or(async);
    RunResult r = run_sharded_point(options, nodes, 16, effective, eff_async);
    std::printf(
        "%11zux16-s%zu%-6s | %10.0f | %9.1f | %12.0f | %11llu | %9llu | %9llu\n",
        nodes, effective, eff_async ? "-async" : "", r.metric("events"),
        r.metric("wall_ms"), r.metric("events_per_sec"),
        static_cast<unsigned long long>(r.engine.cross_shard_msgs),
        static_cast<unsigned long long>(r.engine.lbts_rounds),
        static_cast<unsigned long long>(r.engine.blocked_waits));
    results.push_back(std::move(r));
  }
  if (skipped > 0) {
    std::printf("  (%zu points above --max-nodes %zu skipped)\n", skipped,
                options.max_nodes);
  }
}

/// One migrated-coroutine-family point: the paper's flat NIC-based
/// multisend (Fig. 3's star, no forwarding) on the sharded fabric.
/// shards == 1 dispatches to the classic gm::Cluster coroutine stack, the
/// bit-identical baseline; `batch` additionally turns on the batched
/// per-shard LBTS horizons, whose only observable is fewer barrier rounds
/// ("-bh" label suffix; lbts_rounds in the JSON carries the before/after).
RunResult run_multisend_point(const BenchOptions& options, std::size_t nodes,
                              std::size_t radix, std::size_t shards,
                              bool batch, bool async) {
  RunSpec spec;
  spec.experiment = Experiment::kMultisend;
  spec.label = "msend-" + std::to_string(nodes) + "x" + std::to_string(radix) +
               "-s" + std::to_string(shards) + (batch ? "-bh" : "") +
               (async ? "-async" : "");
  spec.async_sync = async;
  spec.nodes = nodes;
  spec.destinations = nodes - 1;
  spec.wiring = Wiring::kClos;
  spec.switch_radix = radix;
  spec.message_bytes = 512;
  spec.algo = Algo::kNicBased;
  spec.warmup = 1;
  spec.iterations = 2;
  spec.shards = shards;
  spec.batch_horizons = batch;
  // Seeded per node count, like the pshard points: every shard count (and
  // both horizon modes) of one fabric answers for the same seeded scenario.
  spec.seed = derive_seed(options.base_seed, 5000 + nodes);

  // NOLINTNEXTLINE(nicmcast-wall-clock): host wall time measures bench throughput, not simulated time
  const auto start = std::chrono::steady_clock::now();
  RunResult result = run_one(spec);
  const double wall_s =
      // NOLINTNEXTLINE(nicmcast-wall-clock): host wall time measures bench throughput, not simulated time
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const auto events = static_cast<double>(result.engine.events_executed);
  result.set_metric("events", events);
  result.set_metric("wall_ms", wall_s * 1e3);
  result.set_metric("events_per_sec", events / wall_s);
  result.set_metric("peak_rss_kb", static_cast<double>(peak_rss_kb()));
  result.set_metric("full_pairs",
                    static_cast<double>(nodes) *
                        static_cast<double>(nodes - 1));
  return result;
}

void run_family_sweep(const BenchOptions& options,
                      std::vector<RunResult>& results) {
  struct Point {
    std::size_t nodes;
    std::size_t shards;
    bool batch;
    bool async;
  };
  // The msend-512 s1/s4 pair is CI-pinned like the pshard pair.  16384 and
  // 65536 document the migrated family at fabric sizes the coroutine stack
  // reaches slowly (16384) or only since the 32-bit NodeId (65536); the
  // "-bh" twins rerun the same seeded scenario with batched horizons, so
  // the lbts_rounds delta in the JSON is the LBTS-batching report, and the
  // "-async" twins rerun it under null-message sync (same hashes and
  // rounds; blocked_waits vs 3 * rounds * shards barrier rendezvous is the
  // stall report).  "-bh-async" composes both at the ISSUE's 16384 fabric.
  const std::vector<Point> points{
      {512, 1, false, false},  {512, 4, false, false},    // CI-pinned pair
      {512, 4, false, true},                              // CI-pinned async
      {16384, 1, false, false}, {16384, 4, false, false},
      {16384, 4, false, true},  {16384, 4, true, false},
      {16384, 4, true, true},
      {65536, 4, false, false}, {65536, 4, false, true}, {65536, 4, true, false},
  };

  std::printf("\n%25s | %10s | %9s | %12s | %11s | %9s | %9s\n",
              "multisend point", "events", "wall ms", "events/s",
              "x-shard msg", "lbts rnds", "blk waits");
  std::size_t skipped = 0;
  for (const auto& [nodes, shards, batch, async] : points) {
    if (options.max_nodes != 0 && nodes > options.max_nodes) {
      ++skipped;
      continue;
    }
    const std::size_t effective = options.shards_or(shards);
    const bool eff_async = options.async_or(async);
    RunResult r =
        run_multisend_point(options, nodes, 16, effective, batch, eff_async);
    std::printf(
        "%12zux16-s%zu%-9s | %10.0f | %9.1f | %12.0f | %11llu | %9llu | %9llu\n",
        nodes, effective,
        (std::string(batch ? "-bh" : "") + (eff_async ? "-async" : ""))
            .c_str(),
        r.metric("events"), r.metric("wall_ms"), r.metric("events_per_sec"),
        static_cast<unsigned long long>(r.engine.cross_shard_msgs),
        static_cast<unsigned long long>(r.engine.lbts_rounds),
        static_cast<unsigned long long>(r.engine.blocked_waits));
    results.push_back(std::move(r));
  }
  if (skipped > 0) {
    std::printf("  (%zu points above --max-nodes %zu skipped)\n", skipped,
                options.max_nodes);
  }
}

void run_scale_sweep(const BenchOptions& options,
                     std::vector<RunResult>& results) {
  struct Point {
    std::size_t nodes;
    std::size_t radix;
  };
  const std::vector<Point> points{{128, 16}, {128, 32}, {512, 16}, {512, 32},
                                  {2048, 16}, {2048, 32}, {4096, 16},
                                  {4096, 32}};

  std::printf("\n%12s | %10s | %9s | %12s | %12s | %11s\n", "scale point",
              "events", "wall ms", "events/s", "routes (lazy)", "peak RSS");
  std::size_t skipped = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto [nodes, radix] = points[i];
    if (options.max_nodes != 0 && nodes > options.max_nodes) {
      ++skipped;
      continue;
    }
    RunResult r = run_scale_point(options, nodes, radix, i);
    std::printf("%8zux%-3zu | %10.0f | %9.1f | %12.0f | %6llu/%-6.0f | %8.0f KB\n",
                nodes, radix, r.metric("events"), r.metric("wall_ms"),
                r.metric("events_per_sec"),
                static_cast<unsigned long long>(r.engine.routes_materialized),
                r.metric("full_pairs"), r.metric("peak_rss_kb"));
    results.push_back(std::move(r));
  }
  if (skipped > 0) {
    std::printf("  (%zu points above --max-nodes %zu skipped)\n", skipped,
                options.max_nodes);
  }
}

void run(const BenchOptions& options) {
  print_header(
      "Extension — scalability sweep (Clos fabrics up to 128 nodes)",
      "Paper §7: minimal NIC state, no centralized manager => the benefit "
      "should grow with system size.");
  const std::vector<std::size_t> scales{8, 16, 32, 64, 128};
  const int iterations = options.iterations_or(10);

  std::vector<RunSpec> specs;
  for (std::size_t nodes : scales) {
    auto batch = specs_for(nodes, iterations);
    specs.insert(specs.end(), std::make_move_iterator(batch.begin()),
                 std::make_move_iterator(batch.end()));
  }
  auto results = ParallelRunner(runner_options(options)).run(specs);

  std::printf("%6s | %26s | %36s | %21s\n", "nodes",
              "512B mcast HB/NB/factor",
              "16KB mcast HB/NB-postal/NB-chain/best", "barrier host/NIC");
  for (std::size_t ni = 0; ni < scales.size(); ++ni) {
    const std::size_t at = ni * kRunsPerScale;
    const double hb_s = results[at + 0].mean_us();
    const double nb_s = results[at + 1].mean_us();
    const double hb_l = results[at + 2].mean_us();
    const double nb_postal = results[at + 3].mean_us();
    const double nb_chain = results[at + 4].mean_us();
    const double nb_best = std::min(nb_postal, nb_chain);
    const double bar_host = results[at + 5].metric("wall_us_per_round");
    const double bar_nic = results[at + 6].metric("wall_us_per_round");
    std::printf(
        "%6zu | %8.1f %7.1f %7.2fx | %8.1f %8.1f %8.1f %6.2fx | %8.1f %8.1f\n",
        scales[ni], hb_s, nb_s, hb_s / nb_s, hb_l, nb_postal, nb_chain,
        hb_l / nb_best, bar_host, bar_nic);
  }
  std::printf(
      "\nShape check: the small-message factor and the NIC barrier's edge\n"
      "persist at every scale.  For 16KB the fan-out-2 postal tree leaves\n"
      "no wire headroom (each hop emits twice its input rate), so Clos\n"
      "spine contention past 16 nodes saturates it; a fan-out-1 chain\n"
      "restores the win at 32 nodes, and past 64 nodes large-message NB\n"
      "needs topology-aware trees — construction the paper explicitly\n"
      "scopes out ('our intent is not to study the effects of hardware\n"
      "topology', §5).\n");

  print_header(
      "Extension — scale sweep (128 -> 4096-node Clos, radix 16/32)",
      "Timing-wheel scheduler + lazy interned routes: memory and events/sec "
      "at fabric sizes the eager all-pairs table could not reach.");
  run_scale_sweep(options, results);

  print_header(
      "Extension — sharded PDES sweep (512 -> 65536-node Clos, radix 16)",
      "Conservative synchronization at switch-cut granularity: s1 = the "
      "classic sequential engine, s>1 = the sharded fabric "
      "(DESIGN.md 4.5).");
  run_sharded_sweep(options, results);

  print_header(
      "Extension — migrated-family sharded sweep (flat multisend, 512 -> "
      "65536-node Clos)",
      "The coroutine experiment families on the conservative-PDES fabric "
      "(DESIGN.md 4.6): s1 = the gm::Cluster stack, s>1 = the sharded "
      "fabric; -bh = batched LBTS horizons.");
  run_family_sweep(options, results);

  write_bench_json("ext_scalability", options, results);
}

}  // namespace
}  // namespace nicmcast::bench

int main(int argc, char** argv) {
  nicmcast::bench::run(
      nicmcast::harness::parse_bench_options(argc, argv, "ext_scalability"));
  return 0;
}

// Extension — scalability study (paper §7: the scheme "requires minimum
// memory and processor resources at the NIC, which promises good
// scalability"; GM "can support clusters of over 10,000 nodes").
//
// Sweeps the GM-level multicast from 8 to 128 nodes on radix-16 Clos
// fabrics and reports the NIC-based improvement factor, the tree shapes
// the postal model picks, and the NIC-level barrier against the host-level
// dissemination barrier at the same sizes.
#include <cstdio>

#include "bench_util.hpp"
#include "mpi/mpi.hpp"

namespace nicmcast::bench {
namespace {

enum class NbTree { kPostal, kChain };

double mcast_us(std::size_t nodes, std::size_t bytes, bool nic_based,
                NbTree nb_tree = NbTree::kPostal) {
  gm::ClusterConfig config;
  config.nodes = nodes;
  config.wiring = nodes > 16 ? gm::ClusterConfig::Wiring::kClos
                             : gm::ClusterConfig::Wiring::kSingleSwitch;
  gm::Cluster cluster(config);
  const auto dests = everyone_but(0, nodes);
  mcast::Tree tree = mcast::build_binomial_tree(0, dests);
  if (nic_based) {
    tree = nb_tree == NbTree::kChain
               ? mcast::build_chain_tree(0, dests)
               : mcast::build_postal_tree(
                     0, dests,
                     mcast::PostalCostModel::nic_based(
                         bytes, nic::NicConfig{}, net::NetworkConfig{}));
  }
  if (nic_based) mcast::install_group(cluster, tree, 1);
  const int warmup = 2;
  const int iterations = 10;
  for (net::NodeId n = 1; n < nodes; ++n) {
    cluster.port(n).provide_receive_buffers(warmup + iterations,
                                            std::max<std::size_t>(bytes, 64));
  }
  auto barrier = std::make_shared<SimBarrier>(nodes);
  auto done =
      std::make_shared<std::vector<sim::TimePoint>>(warmup + iterations);
  auto started =
      std::make_shared<std::vector<sim::TimePoint>>(warmup + iterations);
  cluster.run_on_all([tree, bytes, nic_based, barrier, done, started, warmup,
                      iterations](gm::Cluster& cl,
                                  net::NodeId me) -> sim::Task<void> {
    for (int iter = 0; iter < warmup + iterations; ++iter) {
      co_await barrier->arrive();
      if (me == 0) (*started)[iter] = cl.simulator().now();
      gm::Payload data;
      if (me == 0) data = make_payload(bytes, static_cast<std::uint8_t>(iter));
      gm::Payload got;
      if (nic_based) {
        got = co_await mcast::nic_bcast(cl.port(me), tree, 1, std::move(data),
                                        static_cast<std::uint32_t>(iter));
      } else {
        got = co_await mcast::host_bcast(cl.port(me), tree, std::move(data),
                                         static_cast<std::uint32_t>(iter));
      }
      if (got.size() != bytes) throw std::logic_error("bad payload");
      auto& d = (*done)[iter];
      d = std::max(d, cl.simulator().now());
    }
  });
  cluster.run();
  sim::OnlineStats stats;
  for (int iter = warmup; iter < warmup + iterations; ++iter) {
    stats.add(((*done)[iter] - (*started)[iter]).microseconds());
  }
  return stats.mean();
}

double barrier_us(std::size_t nodes, mpi::BarrierAlgorithm algorithm) {
  gm::ClusterConfig cluster_config;
  cluster_config.nodes = nodes;
  cluster_config.wiring = nodes > 16 ? gm::ClusterConfig::Wiring::kClos
                                     : gm::ClusterConfig::Wiring::kSingleSwitch;
  gm::Cluster cluster(cluster_config);
  mpi::MpiConfig config;
  config.barrier_algorithm = algorithm;
  mpi::World world(cluster, config);
  auto total = std::make_shared<sim::Duration>();
  world.launch([total](mpi::Process& self) -> sim::Task<void> {
    co_await self.barrier();  // bootstrap
    const sim::TimePoint start = self.simulator().now();
    for (int i = 0; i < 10; ++i) co_await self.barrier();
    if (self.rank() == 0) *total = self.simulator().now() - start;
  });
  world.run();
  return total->microseconds() / 10.0;
}

void run() {
  print_header(
      "Extension — scalability sweep (Clos fabrics up to 128 nodes)",
      "Paper §7: minimal NIC state, no centralized manager => the benefit "
      "should grow with system size.");
  std::printf("%6s | %26s | %36s | %21s\n", "nodes",
              "512B mcast HB/NB/factor",
              "16KB mcast HB/NB-postal/NB-chain/best", "barrier host/NIC");
  for (std::size_t nodes : {8u, 16u, 32u, 64u, 128u}) {
    const double hb_s = mcast_us(nodes, 512, false);
    const double nb_s = mcast_us(nodes, 512, true);
    const double hb_l = mcast_us(nodes, 16384, false);
    const double nb_postal = mcast_us(nodes, 16384, true, NbTree::kPostal);
    const double nb_chain = mcast_us(nodes, 16384, true, NbTree::kChain);
    const double nb_best = std::min(nb_postal, nb_chain);
    const double bar_host =
        barrier_us(nodes, mpi::BarrierAlgorithm::kDissemination);
    const double bar_nic = barrier_us(nodes, mpi::BarrierAlgorithm::kNicBased);
    std::printf(
        "%6zu | %8.1f %7.1f %7.2fx | %8.1f %8.1f %8.1f %6.2fx | %8.1f %8.1f\n",
        nodes, hb_s, nb_s, hb_s / nb_s, hb_l, nb_postal, nb_chain,
        hb_l / nb_best, bar_host, bar_nic);
  }
  std::printf(
      "\nShape check: the small-message factor and the NIC barrier's edge\n"
      "persist at every scale.  For 16KB the fan-out-2 postal tree leaves\n"
      "no wire headroom (each hop emits twice its input rate), so Clos\n"
      "spine contention past 16 nodes saturates it; a fan-out-1 chain\n"
      "restores the win at 32 nodes, and past 64 nodes large-message NB\n"
      "needs topology-aware trees — construction the paper explicitly\n"
      "scopes out ('our intent is not to study the effects of hardware\n"
      "topology', §5).\n");
}

}  // namespace
}  // namespace nicmcast::bench

int main() {
  nicmcast::bench::run();
  return 0;
}

// Extension — NIC-based reduction: "Is It Beneficial?" (the title of the
// authors' companion paper, ref [4], and the §7 Allreduce future work).
//
// Allreduce = reduce + broadcast.  The NIC variant folds contributions in
// LANai firmware on the way up; the host variant receives every partial
// into host memory and adds there.  The 133 MHz LANai combines slowly
// (~100 MB/s) while the host adds at memory speed — so the NIC wins on
// small vectors (fewer host crossings) and loses on large ones (slow
// lane-adds serialise on the NIC CPU): the same crossover ref [4] reports.
#include <cstdio>

#include "bench_util.hpp"
#include "mpi/mpi.hpp"

namespace nicmcast::bench {
namespace {

double allreduce_us(std::size_t nodes, std::size_t lanes, bool nic) {
  gm::Cluster cluster(gm::ClusterConfig{.nodes = nodes});
  mpi::MpiConfig config;
  config.nic_reduction = nic;
  mpi::World world(cluster, config);

  const int warmup = 2;
  const int iterations = 15;
  auto barrier = std::make_shared<SimBarrier>(nodes);
  auto done =
      std::make_shared<std::vector<sim::TimePoint>>(warmup + iterations);
  auto started =
      std::make_shared<std::vector<sim::TimePoint>>(warmup + iterations);
  world.launch([barrier, done, started, lanes, warmup, iterations,
                nodes](mpi::Process& self) -> sim::Task<void> {
    for (int iter = 0; iter < warmup + iterations; ++iter) {
      co_await barrier->arrive();
      if (self.rank() == 0) (*started)[iter] = self.simulator().now();
      std::vector<std::int64_t> mine(lanes, self.rank() + iter);
      const auto sum =
          co_await self.allreduce_sum(self.world_comm(), std::move(mine));
      const auto expected = static_cast<std::int64_t>(
          nodes * (nodes - 1) / 2 + nodes * iter);
      if (sum.at(0) != expected) {
        throw std::logic_error("allreduce bench: wrong sum");
      }
      auto& d = (*done)[iter];
      d = std::max(d, self.simulator().now());
    }
  });
  world.run();

  sim::OnlineStats stats;
  for (int iter = warmup; iter < warmup + iterations; ++iter) {
    stats.add(((*done)[iter] - (*started)[iter]).microseconds());
  }
  return stats.mean();
}

void run() {
  print_header(
      "Extension — NIC-based reduction: is it beneficial? (16 nodes)",
      "Paper §7 + ref [4]: firmware folding wins for small vectors, the "
      "slow LANai loses for large ones.");
  std::printf("%10s | %14s | %14s | %6s\n", "lanes(x8B)", "host-lvl(us)",
              "NIC-lvl(us)", "factor");
  for (std::size_t lanes : {1u, 4u, 16u, 64u, 256u, 1024u, 2048u}) {
    const double host = allreduce_us(16, lanes, false);
    const double nic = allreduce_us(16, lanes, true);
    std::printf("%10zu | %14.1f | %14.1f | %6.2f\n", lanes, host, nic,
                host / nic);
  }
  std::printf(
      "\nShape check: factor > 1 for small vectors, crossing below 1 as\n"
      "the vector grows (the LANai's ~100MB/s lane-adds serialise).\n");
}

}  // namespace
}  // namespace nicmcast::bench

int main() {
  nicmcast::bench::run();
  return 0;
}

// Extension — NIC-based reduction: "Is It Beneficial?" (the title of the
// authors' companion paper, ref [4], and the §7 Allreduce future work).
//
// Allreduce = reduce + broadcast.  The NIC variant folds contributions in
// LANai firmware on the way up; the host variant receives every partial
// into host memory and adds there.  The 133 MHz LANai combines slowly
// (~100 MB/s) while the host adds at memory speed — so the NIC wins on
// small vectors (fewer host crossings) and loses on large ones (slow
// lane-adds serialise on the NIC CPU): the same crossover ref [4] reports.
#include <cstdio>
#include <vector>

#include "harness/bench_io.hpp"
#include "harness/sweep.hpp"

namespace nicmcast::bench {
namespace {

using namespace nicmcast::harness;

void run(const BenchOptions& options) {
  print_header(
      "Extension — NIC-based reduction: is it beneficial? (16 nodes)",
      "Paper §7 + ref [4]: firmware folding wins for small vectors, the "
      "slow LANai loses for large ones.");
  const std::vector<std::size_t> lane_counts{1, 4, 16, 64, 256, 1024, 2048};

  RunSpec base;
  base.experiment = Experiment::kAllreduce;
  base.warmup = 2;
  base.iterations = options.iterations_or(15);

  const auto specs = Sweep(base)
                         .lane_counts(lane_counts)
                         .algos({Algo::kHostBased, Algo::kNicBased})
                         .build();
  const auto results = ParallelRunner(runner_options(options)).run(specs);

  std::printf("%10s | %14s | %14s | %6s\n", "lanes(x8B)", "host-lvl(us)",
              "NIC-lvl(us)", "factor");
  for (std::size_t li = 0; li < lane_counts.size(); ++li) {
    const double host = results[li * 2].mean_us();
    const double nic = results[li * 2 + 1].mean_us();
    std::printf("%10zu | %14.1f | %14.1f | %6.2f\n", lane_counts[li], host,
                nic, host / nic);
  }
  std::printf(
      "\nShape check: factor > 1 for small vectors, crossing below 1 as\n"
      "the vector grows (the LANai's ~100MB/s lane-adds serialise).\n");

  write_bench_json("ext_nic_reduction", options, results);
}

}  // namespace
}  // namespace nicmcast::bench

int main(int argc, char** argv) {
  nicmcast::bench::run(
      nicmcast::harness::parse_bench_options(argc, argv, "ext_nic_reduction"));
  return 0;
}

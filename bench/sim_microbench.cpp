// google-benchmark microbenchmarks of the simulation engine itself: event
// queue throughput, coroutine spawn/resume cost, and a full 16-node
// multicast simulation per iteration.  These guard the simulator's own
// performance so the figure benches stay fast.
#include <benchmark/benchmark.h>

#include "harness/experiment_util.hpp"
#include "harness/runners.hpp"
#include "sim/simulator.hpp"

namespace nicmcast::bench {
namespace {

using namespace nicmcast::harness;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < state.range(0); ++i) {
      sim.schedule_after(sim::usec((i * 7) % 100), [] {});
    }
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(10000);

void BM_CoroutineDelayChain(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    sim.spawn([](sim::Simulator& s, int hops) -> sim::Task<void> {
      for (int i = 0; i < hops; ++i) {
        co_await s.wait(sim::usec(1));
      }
    }(sim, static_cast<int>(state.range(0))));
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CoroutineDelayChain)->Arg(1000);

void BM_ChannelPingPong(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    sim::Channel<int> a;
    sim::Channel<int> b;
    const int rounds = static_cast<int>(state.range(0));
    sim.spawn([](sim::Channel<int>& tx, sim::Channel<int>& rx,
                 int n) -> sim::Task<void> {
      for (int i = 0; i < n; ++i) {
        tx.push(i);
        co_await rx.pop();
      }
    }(a, b, rounds));
    sim.spawn([](sim::Channel<int>& rx, sim::Channel<int>& tx,
                 int n) -> sim::Task<void> {
      for (int i = 0; i < n; ++i) {
        co_await rx.pop();
        tx.push(i);
      }
    }(a, b, rounds));
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChannelPingPong)->Arg(1000);

void BM_FullMulticast16Nodes(benchmark::State& state) {
  RunSpec spec;
  spec.experiment = Experiment::kGmMulticast;
  spec.nodes = 16;
  spec.message_bytes = static_cast<std::size_t>(state.range(0));
  spec.algo = Algo::kNicBased;
  spec.tree = TreeShape::kPostal;
  spec.warmup = 0;
  spec.iterations = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_gm_mcast(spec).mean_us());
  }
}
BENCHMARK(BM_FullMulticast16Nodes)->Arg(64)->Arg(16384);

void BM_PostalTreeConstruction(benchmark::State& state) {
  const auto dests = everyone_but(0, static_cast<std::size_t>(state.range(0)));
  const auto cost = mcast::PostalCostModel::nic_based(512, nic::NicConfig{},
                                                      net::NetworkConfig{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(mcast::build_postal_tree(0, dests, cost));
  }
}
BENCHMARK(BM_PostalTreeConstruction)->Arg(16)->Arg(256)->Arg(4096);

}  // namespace
}  // namespace nicmcast::bench

BENCHMARK_MAIN();

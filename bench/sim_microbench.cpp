// Engine-throughput regression bench.
//
// Where the figure benches reproduce the paper, this bench watches the
// simulator itself: end-to-end events/sec through the four hot paths the
// engine optimises (raw event-queue churn, coroutine resumption, NIC-based
// multicast forwarding, and the chaos-soak protocol mix).  Every scenario
// is fixed-seed and fully deterministic, so the executed-event count is a
// constant and only the wall clock varies run to run.
//
//   sim_microbench [--json PATH] [--seed S] [--iters R]
//
//   --iters R  timing repetitions per scenario (default 3); the fastest
//              repetition is reported, which is the standard way to damp
//              scheduler noise on shared CI runners.
//
// The JSON document (nicmcast-bench-v1) carries one run per scenario with
// metrics {events, wall_ms, events_per_sec} plus the engine counter block;
// BENCH_simperf.json pins before/after entries of exactly this shape and
// the CI bench-smoke job compares a fresh run against it.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/bench_io.hpp"
#include "harness/parallel_runner.hpp"
#include "harness/runners.hpp"
#include "perf_counters.hpp"
#include "sim/simulator.hpp"
#include "soak.hpp"

namespace {

using namespace nicmcast;

double seconds_since(std::chrono::steady_clock::time_point start) {
  // NOLINTNEXTLINE(nicmcast-wall-clock): host wall time measures bench throughput, not simulated time
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// What one timed repetition of a scenario produced.  `events` and the
/// engine counters are identical across repetitions (runs are
/// deterministic); only `wall_s` varies.
struct Repetition {
  double wall_s = 0.0;
  std::uint64_t events = 0;
  harness::EngineCounters engine;
  bench::PerfCounters::Reading perf;  // zeros unless --perf-counters
};

void fill_engine(const sim::Simulator& sim, harness::EngineCounters& engine) {
  const sim::EventQueue::Stats& q = sim.queue_stats();
  engine.events_scheduled = q.scheduled;
  engine.events_executed = q.executed;
  engine.events_cancelled = q.cancelled;
  engine.heap_actions = q.heap_actions;
  engine.pool_slots = q.pool_slots;
  engine.wheel_occupancy_peak = q.wheel_occupancy_peak;
  engine.wheel_cascades = q.wheel_cascades;
  engine.overflow_scheduled = q.overflow_scheduled;
  engine.overflow_promotions = q.overflow_promotions;
  engine.event_order_hash = sim.event_order_hash();
}

// ---- Scenario 1: raw event-queue churn ------------------------------------
//
// A ring of self-rescheduling callbacks, the pure schedule/pop cycle with
// no protocol on top.  Every 8th firing also schedules a decoy and cancels
// it, so the cancellation path is part of the measured loop.

struct ChurnNode {
  sim::Simulator* sim = nullptr;
  std::uint64_t remaining = 0;

  void fire() {
    if (remaining == 0) return;
    --remaining;
    if ((remaining & 7u) == 0) {
      const sim::EventId decoy = sim->schedule_after(sim::usec(5), [] {});
      sim->cancel(decoy);
    }
    sim->schedule_after(sim::nsec(100), [this] { fire(); });
  }
};

Repetition run_event_churn() {
  constexpr std::size_t kRing = 64;
  constexpr std::uint64_t kFiringsPerNode = 20'000;

  sim::Simulator sim;
  std::deque<ChurnNode> ring;  // deque: stable addresses for [this] captures
  // NOLINTNEXTLINE(nicmcast-wall-clock): host wall time measures bench throughput, not simulated time
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kRing; ++i) {
    ChurnNode& node = ring.emplace_back();
    node.sim = &sim;
    node.remaining = kFiringsPerNode;
    sim.schedule_after(sim::nsec(static_cast<std::int64_t>(i)),
                       [&node] { node.fire(); });
  }
  sim.run();

  Repetition rep;
  rep.wall_s = seconds_since(start);
  fill_engine(sim, rep.engine);
  rep.events = rep.engine.events_executed;
  return rep;
}

// ---- Scenario 2: coroutine delay chains -----------------------------------
//
// Every co_await sim.wait() is one scheduled callback resuming a coroutine
// frame; this is the path every simulated host program lives on.

sim::Task<void> delay_chain(sim::Simulator& sim, int hops) {
  for (int i = 0; i < hops; ++i) {
    co_await sim.wait(sim::nsec(50));
  }
}

Repetition run_coroutine_chain() {
  constexpr std::size_t kChains = 64;
  constexpr int kHops = 20'000;

  sim::Simulator sim;
  // NOLINTNEXTLINE(nicmcast-wall-clock): host wall time measures bench throughput, not simulated time
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kChains; ++i) {
    sim.spawn(delay_chain(sim, kHops), "chain" + std::to_string(i));
  }
  sim.run();

  Repetition rep;
  rep.wall_s = seconds_since(start);
  fill_engine(sim, rep.engine);
  rep.events = rep.engine.events_executed;
  return rep;
}

// ---- Scenario 3: NIC-based multicast forwarding ---------------------------
//
// The paper's headline path: a 32-node Clos cluster broadcasting 16 KiB
// messages over a postal tree with NIC forwarding, run through the stock
// harness runner (cluster construction included, as the figure benches do).

Repetition run_mcast_forwarding(std::uint64_t base_seed) {
  harness::RunSpec spec;
  spec.experiment = harness::Experiment::kGmMulticast;
  spec.label = "mcast-forwarding";
  spec.nodes = 32;
  spec.message_bytes = 16 * 1024;
  spec.algo = harness::Algo::kNicBased;
  spec.tree = harness::TreeShape::kPostal;
  spec.warmup = 2;
  spec.iterations = 20;
  spec.seed = harness::derive_seed(base_seed, 0);

  // NOLINTNEXTLINE(nicmcast-wall-clock): host wall time measures bench throughput, not simulated time
  const auto start = std::chrono::steady_clock::now();
  const harness::RunResult result = harness::run_gm_mcast(spec);
  Repetition rep;
  rep.wall_s = seconds_since(start);
  rep.engine = result.engine;
  rep.events = result.engine.events_executed;
  if (result.metric("delivered") != 1.0) {
    throw std::logic_error("sim_microbench: multicast payload corrupted");
  }
  return rep;
}

// ---- Scenario 4: chaos-soak protocol mix ----------------------------------
//
// A fixed slice of the randomized soak campaign: small messages, faults,
// retransmissions, control handshakes — the workload where event-queue and
// descriptor churn dominate over payload size.

Repetition run_chaos_soak(std::uint64_t base_seed) {
  constexpr std::size_t kScenarios = 150;
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;

  Repetition rep;
  rep.engine.event_order_hash = 0xcbf29ce484222325ULL;
  // NOLINTNEXTLINE(nicmcast-wall-clock): host wall time measures bench throughput, not simulated time
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kScenarios; ++i) {
    const std::uint64_t seed = harness::derive_seed(base_seed, i);
    const soak::SoakResult result = soak::run_soak(soak::make_spec(seed));
    if (!result.ok) {
      throw std::logic_error("sim_microbench: soak scenario failed: " +
                             result.failure);
    }
    rep.events += result.events_executed;
    rep.engine.event_order_hash =
        (rep.engine.event_order_hash ^ result.event_order_hash) * kPrime;
  }
  rep.wall_s = seconds_since(start);
  rep.engine.events_executed = rep.events;
  return rep;
}

// ---- Driver ---------------------------------------------------------------

template <typename Body>
harness::RunResult time_scenario(const char* name, int repeats,
                                 std::uint64_t base_seed,
                                 bench::PerfCounters* counters, Body&& body) {
  Repetition best;
  for (int r = 0; r < repeats; ++r) {
    if (counters) counters->start();
    Repetition rep = body();
    if (counters) rep.perf = counters->stop();
    // The fastest repetition's hardware counters travel with it, so the
    // cache/branch-miss columns describe the same run as wall_ms.
    if (r == 0 || rep.wall_s < best.wall_s) best = rep;
  }
  const double events_per_sec = static_cast<double>(best.events) / best.wall_s;
  std::printf("  %-18s %12llu events | %8.1f ms | %10.0f events/s\n", name,
              static_cast<unsigned long long>(best.events), best.wall_s * 1e3,
              events_per_sec);

  harness::RunResult out;
  out.spec.experiment = harness::Experiment::kCustom;
  out.spec.label = name;
  out.spec.seed = base_seed;
  out.spec.warmup = 0;
  out.spec.iterations = repeats;
  out.engine = best.engine;
  out.set_metric("events", static_cast<double>(best.events));
  out.set_metric("wall_ms", best.wall_s * 1e3);
  out.set_metric("events_per_sec", events_per_sec);
  // Optional columns: only under --perf-counters, so default documents
  // stay byte-identical to the pinned goldens.
  if (counters) {
    out.set_metric("cache_misses", static_cast<double>(best.perf.cache_misses));
    out.set_metric("branch_misses",
                   static_cast<double>(best.perf.branch_misses));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  harness::BenchOptions options =
      harness::parse_bench_options(argc, argv, "sim_microbench");
  const int repeats = options.iterations_or(3);

  harness::print_header(
      "Simulator engine microbench: end-to-end events/sec",
      "engine hot paths (event queue, coroutines, forwarding, soak mix)");

  bench::PerfCounters perf_counters;
  bench::PerfCounters* counters =
      options.perf_counters ? &perf_counters : nullptr;
  if (counters && !perf_counters.ok()) {
    std::printf("note: hardware perf counters unavailable; "
                "cache/branch-miss columns will read 0\n");
  }

  std::vector<harness::RunResult> results;
  if (options.selected("event-churn")) {
    results.push_back(time_scenario("event-churn", repeats, options.base_seed,
                                    counters,
                                    [] { return run_event_churn(); }));
  }
  if (options.selected("coroutine-chain")) {
    results.push_back(time_scenario("coroutine-chain", repeats,
                                    options.base_seed, counters,
                                    [] { return run_coroutine_chain(); }));
  }
  if (options.selected("mcast-forwarding")) {
    results.push_back(time_scenario(
        "mcast-forwarding", repeats, options.base_seed, counters,
        [&] { return run_mcast_forwarding(options.base_seed); }));
  }
  if (options.selected("chaos-soak")) {
    results.push_back(time_scenario(
        "chaos-soak", repeats, options.base_seed, counters,
        [&] { return run_chaos_soak(options.base_seed); }));
  }

  harness::write_bench_json("sim_microbench", options, results);
  return 0;
}

// Ablation of the spanning-tree topology (paper §5, "The Spanning Tree"):
// the message-size-dependent optimal postal tree against fixed shapes
// (binomial, chain, flat) for the NIC-based multicast on 16 nodes.
//
// Expected: the postal tree tracks the best fixed shape at every size —
// flat-ish for small messages (cheap replicas, shallow depth wins),
// narrow and deeper for large messages (wire-bound replicas).
#include <cstdio>
#include <vector>

#include "harness/bench_io.hpp"
#include "harness/experiment_util.hpp"
#include "harness/sweep.hpp"

namespace nicmcast::bench {
namespace {

using namespace nicmcast::harness;

void run(const BenchOptions& options) {
  print_header(
      "Ablation — spanning-tree shapes for the NIC-based multicast (16 "
      "nodes)",
      "Optimal (postal, size-dependent) vs binomial vs chain vs flat.");
  const std::vector<std::size_t> sizes{4, 64, 512, 2048, 4096, 16384};
  const std::vector<TreeShape> shapes{TreeShape::kPostal, TreeShape::kBinomial,
                                      TreeShape::kChain, TreeShape::kFlat};

  RunSpec base;
  base.experiment = Experiment::kGmMulticast;
  base.nodes = 16;
  base.algo = Algo::kNicBased;
  base.iterations = options.iterations_or(25);

  const auto specs =
      Sweep(base).message_sizes(sizes).trees(shapes).build();
  const auto results = ParallelRunner(runner_options(options)).run(specs);

  std::printf("%8s | %10s %10s %10s %10s | %s\n", "size(B)", "postal",
              "binomial", "chain", "flat", "postal shape");
  const auto dests = everyone_but(0, base.nodes);
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    const std::size_t idx = si * shapes.size();
    const mcast::Tree postal = build_tree(results[idx].spec, dests);
    std::printf("%8zu | %9.2f %10.2f %10.2f %10.2f | depth=%zu fanout=%zu\n",
                sizes[si], results[idx].mean_us(), results[idx + 1].mean_us(),
                results[idx + 2].mean_us(), results[idx + 3].mean_us(),
                postal.depth(), postal.max_fanout());
  }
  std::printf(
      "\nShape check: the postal tree is never materially worse than the\n"
      "best fixed shape; small sizes favour wide/shallow, large sizes\n"
      "favour narrow/deeper trees.\n");

  write_bench_json("ablation_trees", options, results);
}

}  // namespace
}  // namespace nicmcast::bench

int main(int argc, char** argv) {
  nicmcast::bench::run(
      nicmcast::harness::parse_bench_options(argc, argv, "ablation_trees"));
  return 0;
}

// Ablation of the spanning-tree topology (paper §5, "The Spanning Tree"):
// the message-size-dependent optimal postal tree against fixed shapes
// (binomial, chain, flat) for the NIC-based multicast on 16 nodes.
//
// Expected: the postal tree tracks the best fixed shape at every size —
// flat-ish for small messages (cheap replicas, shallow depth wins),
// narrow and deeper for large messages (wire-bound replicas).
#include <cstdio>

#include "bench_util.hpp"

namespace nicmcast::bench {
namespace {

void run() {
  print_header(
      "Ablation — spanning-tree shapes for the NIC-based multicast (16 "
      "nodes)",
      "Optimal (postal, size-dependent) vs binomial vs chain vs flat.");
  const std::size_t n = 16;
  const auto dests = everyone_but(0, n);

  std::printf("%8s | %10s %10s %10s %10s | %s\n", "size(B)", "postal",
              "binomial", "chain", "flat", "postal shape");
  for (std::size_t bytes : {4u, 64u, 512u, 2048u, 4096u, 16384u}) {
    McastLatencyConfig config;
    config.nodes = n;
    config.message_bytes = bytes;
    config.nic_based = true;
    config.iterations = 25;

    const auto cost = mcast::PostalCostModel::nic_based(
        bytes, nic::NicConfig{}, net::NetworkConfig{});
    const mcast::Tree postal = mcast::build_postal_tree(0, dests, cost);

    const double t_postal = measure_mcast_latency_us(config, postal);
    const double t_binomial = measure_mcast_latency_us(
        config, mcast::build_binomial_tree(0, dests));
    const double t_chain =
        measure_mcast_latency_us(config, mcast::build_chain_tree(0, dests));
    const double t_flat =
        measure_mcast_latency_us(config, mcast::build_flat_tree(0, dests));

    std::printf("%8zu | %9.2f %10.2f %10.2f %10.2f | depth=%zu fanout=%zu\n",
                bytes, t_postal, t_binomial, t_chain, t_flat, postal.depth(),
                postal.max_fanout());
  }
  std::printf(
      "\nShape check: the postal tree is never materially worse than the\n"
      "best fixed shape; small sizes favour wide/shallow, large sizes\n"
      "favour narrow/deeper trees.\n");
}

}  // namespace
}  // namespace nicmcast::bench

int main() {
  nicmcast::bench::run();
  return 0;
}

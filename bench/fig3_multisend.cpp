// Figure 3: NIC-based multisend vs host-based multiple unicasts.
//
// Paper methodology (§6.1): the source transmits a message to 3, 4 or 8
// destinations and waits until the last destination acknowledges (= the
// GM operation completes).  Reported: latency and NB/HB improvement factor
// per message size.  Paper landmarks: factor up to 2.05 for <=128 B to 4
// destinations; decays with size and levels off slightly below 1.
#include <cstdio>
#include <vector>

#include "harness/bench_io.hpp"
#include "harness/experiment_util.hpp"
#include "harness/sweep.hpp"

namespace nicmcast::bench {
namespace {

using namespace nicmcast::harness;

void run(const BenchOptions& options) {
  print_header(
      "Figure 3 — NIC-based multisend vs host-based multiple unicasts",
      "Paper: improvement up to 2.05x for <=128B to 4 dests; levels off "
      "slightly below 1 for large messages.");
  const std::vector<std::size_t> dest_counts{3, 4, 8};
  const std::vector<std::size_t> sizes = paper_sizes();

  RunSpec base;
  base.experiment = Experiment::kMultisend;
  base.iterations = options.iterations_or(40);

  const auto specs = Sweep(base)
                         .message_sizes(sizes)
                         .destination_counts(dest_counts)
                         .algos({Algo::kHostBased, Algo::kNicBased})
                         .build();
  const auto results = ParallelRunner(runner_options(options)).run(specs);

  std::printf("%8s", "size(B)");
  for (std::size_t k : dest_counts) {
    std::printf(" | HB-%zu(us) NB-%zu(us) factor", k, k);
  }
  std::printf("\n");

  for (std::size_t si = 0; si < sizes.size(); ++si) {
    std::printf("%8zu", sizes[si]);
    for (std::size_t ki = 0; ki < dest_counts.size(); ++ki) {
      const std::size_t idx = (si * dest_counts.size() + ki) * 2;
      const double hb = results[idx].mean_us();
      const double nb = results[idx + 1].mean_us();
      std::printf(" | %9.2f %9.2f %6.2f", hb, nb, hb / nb);
    }
    std::printf("\n");
  }
  std::printf(
      "\nShape check: factor peaks at small sizes, decays with size,\n"
      "and approaches (slightly below) 1 at multi-packet sizes.\n");

  write_bench_json("fig3_multisend", options, results);
}

}  // namespace
}  // namespace nicmcast::bench

int main(int argc, char** argv) {
  nicmcast::bench::run(
      nicmcast::harness::parse_bench_options(argc, argv, "fig3_multisend"));
  return 0;
}

// Figure 3: NIC-based multisend vs host-based multiple unicasts.
//
// Paper methodology (§6.1): the source transmits a message to 3, 4 or 8
// destinations and waits until the last destination acknowledges (= the
// GM operation completes).  Reported: latency and NB/HB improvement factor
// per message size.  Paper landmarks: factor up to 2.05 for <=128 B to 4
// destinations; decays with size and levels off slightly below 1.
#include <cstdio>

#include "bench_util.hpp"

namespace nicmcast::bench {
namespace {

struct Point {
  double hb_us = 0;
  double nb_us = 0;
};

double measure_us(std::size_t dests, std::size_t bytes, bool nic_based) {
  gm::Cluster cluster(gm::ClusterConfig{.nodes = dests + 1});
  const int warmup = 4;
  const int iterations = 40;
  for (std::size_t node = 1; node <= dests; ++node) {
    cluster.port(node).provide_receive_buffers(
        warmup + iterations, std::max<std::size_t>(bytes, 64));
  }
  sim::OnlineStats stats;
  cluster.simulator().spawn([](gm::Cluster& cl, std::size_t k,
                               std::size_t size, bool nb, int wu, int iters,
                               sim::OnlineStats& out) -> sim::Task<void> {
    gm::Port& port = cl.port(0);
    std::vector<net::NodeId> targets;
    for (std::size_t d = 1; d <= k; ++d) {
      targets.push_back(static_cast<net::NodeId>(d));
    }
    for (int iter = 0; iter < wu + iters; ++iter) {
      const sim::TimePoint start = cl.simulator().now();
      if (nb) {
        // One posting; the NIC chains replicas via descriptor callbacks.
        std::vector<net::NodeId> copy = targets;
        const gm::SendStatus st = co_await port.multisend(
            std::move(copy), 0, make_payload(size), 0);
        if (st != gm::SendStatus::kOk) throw std::runtime_error("ms failed");
      } else {
        // Host-based: post one send per destination back to back, then
        // wait for every acknowledgment.
        std::vector<nic::OpHandle> handles;
        for (net::NodeId t : targets) {
          co_await cl.simulator().wait(
              port.nic().config().host_post_overhead);
          handles.push_back(
              port.post_send_nowait(t, 0, make_payload(size), 0));
        }
        for (nic::OpHandle h : handles) {
          if (co_await port.wait_completion(h) != gm::SendStatus::kOk) {
            throw std::runtime_error("send failed");
          }
        }
      }
      if (iter >= wu) {
        out.add((cl.simulator().now() - start).microseconds());
      }
    }
  }(cluster, dests, bytes, nic_based, warmup, iterations, stats));
  cluster.run();
  return stats.mean();
}

void run() {
  print_header(
      "Figure 3 — NIC-based multisend vs host-based multiple unicasts",
      "Paper: improvement up to 2.05x for <=128B to 4 dests; levels off "
      "slightly below 1 for large messages.");
  const std::vector<std::size_t> dest_counts{3, 4, 8};

  std::printf("%8s", "size(B)");
  for (std::size_t k : dest_counts) {
    std::printf(" | HB-%zu(us) NB-%zu(us) factor", k, k);
  }
  std::printf("\n");

  for (std::size_t bytes : paper_sizes()) {
    std::printf("%8zu", bytes);
    for (std::size_t k : dest_counts) {
      const double hb = measure_us(k, bytes, false);
      const double nb = measure_us(k, bytes, true);
      std::printf(" | %9.2f %9.2f %6.2f", hb, nb, hb / nb);
    }
    std::printf("\n");
  }
  std::printf(
      "\nShape check: factor peaks at small sizes, decays with size,\n"
      "and approaches (slightly below) 1 at multi-packet sizes.\n");
}

}  // namespace
}  // namespace nicmcast::bench

int main() {
  nicmcast::bench::run();
  return 0;
}

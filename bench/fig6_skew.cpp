// Figure 6: average host CPU time of MPI_Bcast under process skew, 16
// nodes, small messages (2/4/8 B) — host-based vs NIC-based.
//
// Paper landmarks: below ~40 us of skew both curves dip (skew overlaps
// with transmission); beyond that the host-based CPU time RISES (delayed
// ancestors keep whole subtrees spinning) while the NIC-based time FALLS
// (the NIC forwards regardless); improvement up to 5.82x at 400 us average
// skew.  Large-message companion sweep (2-8 KB) included, per the TR.
#include <cstdio>
#include <vector>

#include "harness/bench_io.hpp"
#include "harness/sweep.hpp"

namespace nicmcast::bench {
namespace {

using namespace nicmcast::harness;

const std::vector<double> kSkews{0.0,   10.0,  25.0,  50.0,
                                 100.0, 200.0, 300.0, 400.0};
const std::vector<std::size_t> kSizes{2, 4, 8, 2048, 4096, 8192};

void print_table(const std::vector<RunResult>& results, std::size_t first_size,
                 std::size_t n_sizes) {
  std::printf("%10s", "skew(us)");
  for (std::size_t si = first_size; si < first_size + n_sizes; ++si) {
    std::printf(" | HB-%-4zuB NB-%-4zuB factor", kSizes[si], kSizes[si]);
  }
  std::printf("\n");
  for (std::size_t ki = 0; ki < kSkews.size(); ++ki) {
    std::printf("%10.0f", kSkews[ki]);
    for (std::size_t si = first_size; si < first_size + n_sizes; ++si) {
      const std::size_t idx = (ki * kSizes.size() + si) * 2;
      const double hb = results[idx].metric("avg_bcast_cpu_us");
      const double nb = results[idx + 1].metric("avg_bcast_cpu_us");
      std::printf(" | %7.1f %7.1f %6.2f", hb, nb, hb / nb);
    }
    std::printf("\n");
  }
}

void run(const BenchOptions& options) {
  print_header(
      "Figure 6 — average host CPU time in MPI_Bcast vs process skew (16 "
      "nodes)",
      "Paper: HB rises past ~40us skew, NB falls; improvement up to 5.82x "
      "at 400us for 2-8B (and ~2.9x for 2KB).");

  RunSpec base;
  base.experiment = Experiment::kSkewBcast;
  base.iterations = options.iterations_or(40);

  const auto specs = Sweep(base)
                         .skews_us(kSkews)
                         .message_sizes(kSizes)
                         .algos({Algo::kHostBased, Algo::kNicBased})
                         .build();
  const auto results = ParallelRunner(runner_options(options)).run(specs);

  std::printf("\n--- small messages (Figure 6) ---\n");
  print_table(results, 0, 3);
  std::printf("\n--- large messages (technical-report companion) ---\n");
  print_table(results, 3, 3);
  std::printf(
      "\nShape check: HB average CPU time grows with skew; NB stays low /"
      "\nfalls; the improvement factor grows with skew.\n");

  write_bench_json("fig6_skew", options, results);
}

}  // namespace
}  // namespace nicmcast::bench

int main(int argc, char** argv) {
  nicmcast::bench::run(
      nicmcast::harness::parse_bench_options(argc, argv, "fig6_skew"));
  return 0;
}

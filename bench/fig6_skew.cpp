// Figure 6: average host CPU time of MPI_Bcast under process skew, 16
// nodes, small messages (2/4/8 B) — host-based vs NIC-based.
//
// Paper landmarks: below ~40 us of skew both curves dip (skew overlaps
// with transmission); beyond that the host-based CPU time RISES (delayed
// ancestors keep whole subtrees spinning) while the NIC-based time FALLS
// (the NIC forwards regardless); improvement up to 5.82x at 400 us average
// skew.  Large-message companion sweep (2-8 KB) included, per the TR.
#include <cstdio>

#include "bench_util.hpp"
#include "mpi/skew.hpp"

namespace nicmcast::bench {
namespace {

mpi::SkewResult measure(std::size_t bytes, double avg_skew_us,
                        mpi::BcastAlgorithm algorithm,
                        std::size_t nodes = 16) {
  mpi::SkewConfig config;
  config.nodes = nodes;
  config.message_bytes = bytes;
  // "Average skew" on the x-axis = mean |skew| of uniform[-M/2, M/2],
  // i.e. M/4 (the positive half averages M/4 and is applied; the negative
  // half is clipped to an immediate call).
  config.max_skew = sim::usec(avg_skew_us * 4.0);
  config.iterations = 40;
  config.warmup = 4;
  config.algorithm = algorithm;
  return run_skew_experiment(config);
}

void sweep(const std::vector<std::size_t>& sizes) {
  std::printf("%10s", "skew(us)");
  for (std::size_t b : sizes) {
    std::printf(" | HB-%-4zuB NB-%-4zuB factor", b, b);
  }
  std::printf("\n");
  for (double skew : {0.0, 10.0, 25.0, 50.0, 100.0, 200.0, 300.0, 400.0}) {
    std::printf("%10.0f", skew);
    for (std::size_t bytes : sizes) {
      const auto hb = measure(bytes, skew, mpi::BcastAlgorithm::kHostBased);
      const auto nb = measure(bytes, skew, mpi::BcastAlgorithm::kNicBased);
      std::printf(" | %7.1f %7.1f %6.2f", hb.avg_bcast_cpu_us,
                  nb.avg_bcast_cpu_us,
                  hb.avg_bcast_cpu_us / nb.avg_bcast_cpu_us);
    }
    std::printf("\n");
  }
}

void run() {
  print_header(
      "Figure 6 — average host CPU time in MPI_Bcast vs process skew (16 "
      "nodes)",
      "Paper: HB rises past ~40us skew, NB falls; improvement up to 5.82x "
      "at 400us for 2-8B (and ~2.9x for 2KB).");
  std::printf("\n--- small messages (Figure 6) ---\n");
  sweep({2, 4, 8});
  std::printf("\n--- large messages (technical-report companion) ---\n");
  sweep({2048, 4096, 8192});
  std::printf(
      "\nShape check: HB average CPU time grows with skew; NB stays low /"
      "\nfalls; the improvement factor grows with skew.\n");
}

}  // namespace
}  // namespace nicmcast::bench

int main() {
  nicmcast::bench::run();
  return 0;
}

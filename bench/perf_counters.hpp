// Hardware cache-miss / branch-miss sampling for the engine benches.
//
// The microarchitecture pass (DESIGN.md §4.7) is about cache behaviour,
// so the microbench records PERF_COUNT_HW_CACHE_MISSES and
// PERF_COUNT_HW_BRANCH_MISSES alongside events/sec.  Counting uses the
// Linux perf_event_open syscall on the calling process itself, which
// kernel.perf_event_paranoid <= 2 permits without privileges.
//
// Degradation is graceful by design: off-Linux, on kernels that refuse
// the syscall, or on VMs without a PMU, every reading is zero and ok()
// is false — the bench still runs and the JSON columns just read 0.
// check_bench_regression.py treats the columns as optional for the same
// reason.
#pragma once

#include <cstdint>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>
#endif

namespace nicmcast::bench {

class PerfCounters {
 public:
  struct Reading {
    std::uint64_t cache_misses = 0;
    std::uint64_t branch_misses = 0;
  };

#if defined(__linux__)
  PerfCounters()
      : cache_fd_(open_counter(PERF_COUNT_HW_CACHE_MISSES)),
        branch_fd_(open_counter(PERF_COUNT_HW_BRANCH_MISSES)) {}

  ~PerfCounters() {
    if (cache_fd_ >= 0) ::close(cache_fd_);
    if (branch_fd_ >= 0) ::close(branch_fd_);
  }

  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

  /// True when at least one hardware counter opened.
  [[nodiscard]] bool ok() const { return cache_fd_ >= 0 || branch_fd_ >= 0; }

  /// Zeroes and enables the counters.  Call immediately before the timed
  /// region.
  void start() {
    reset_and_enable(cache_fd_);
    reset_and_enable(branch_fd_);
  }

  /// Disables the counters and returns what the timed region cost.
  Reading stop() {
    Reading reading;
    reading.cache_misses = disable_and_read(cache_fd_);
    reading.branch_misses = disable_and_read(branch_fd_);
    return reading;
  }

 private:
  static int open_counter(std::uint64_t config) {
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.type = PERF_TYPE_HARDWARE;
    attr.size = sizeof(attr);
    attr.config = config;
    attr.disabled = 1;
    attr.exclude_kernel = 1;  // paranoid<=2 allows user-space-only counting
    attr.exclude_hv = 1;
    attr.inherit = 1;  // runner worker threads count too
    return static_cast<int>(
        ::syscall(SYS_perf_event_open, &attr, /*pid=*/0, /*cpu=*/-1,
                  /*group_fd=*/-1, /*flags=*/0UL));
  }

  static void reset_and_enable(int fd) {
    if (fd < 0) return;
    ::ioctl(fd, PERF_EVENT_IOC_RESET, 0);
    ::ioctl(fd, PERF_EVENT_IOC_ENABLE, 0);
  }

  static std::uint64_t disable_and_read(int fd) {
    if (fd < 0) return 0;
    ::ioctl(fd, PERF_EVENT_IOC_DISABLE, 0);
    std::uint64_t value = 0;
    if (::read(fd, &value, sizeof(value)) != sizeof(value)) return 0;
    return value;
  }

  int cache_fd_ = -1;
  int branch_fd_ = -1;
#else
  // Non-Linux stub: benches compile and run, every reading is zero.
  [[nodiscard]] bool ok() const { return false; }
  void start() {}
  Reading stop() { return {}; }
#endif
};

}  // namespace nicmcast::bench

// Extension (paper §7 future work): "NIC-based multicast using remote DMA
// operations" — broadcasts ABOVE the 16287-byte eager limit.
//
// Compares the paper's fallback (host-based binomial rendezvous: per-hop
// RTS/CTS handshakes and full store-and-forward) against the RDMA
// multicast (announce/ready once, then the payload streams down the tree
// with per-packet NIC forwarding into pre-registered buffers, zero host
// copies).
#include <cstdio>
#include <vector>

#include "harness/bench_io.hpp"
#include "harness/sweep.hpp"

namespace nicmcast::bench {
namespace {

using namespace nicmcast::harness;

void run(const BenchOptions& options) {
  print_header(
      "Extension — RDMA-based NIC multicast for >16KB broadcasts (16 "
      "nodes)",
      "Paper §7 future work: \"the NIC-based multicast using remote DMA "
      "operations\".");
  const std::vector<std::size_t> sizes{32768, 65536, 131072, 262144, 524288};

  RunSpec base;
  base.experiment = Experiment::kMpiBcast;
  base.warmup = 2;
  base.iterations = options.iterations_or(10);

  const auto specs =
      Sweep(base)
          .message_sizes(sizes)
          .axis(std::vector<bool>{false, true},
                [](RunSpec& s, bool rdma) {
                  s.rdma = rdma;
                  s.algo = rdma ? Algo::kNicBased : Algo::kHostBased;
                })
          .build();
  const auto results = ParallelRunner(runner_options(options)).run(specs);

  std::printf("%9s | %14s | %14s | %6s\n", "size(B)", "HB rndv(us)",
              "NB rdma(us)", "factor");
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    const double hb = results[si * 2].mean_us();
    const double nb = results[si * 2 + 1].mean_us();
    std::printf("%9zu | %14.1f | %14.1f | %6.2f\n", sizes[si], hb, nb,
                hb / nb);
  }
  std::printf(
      "\nShape check: the RDMA multicast's pipelined forwarding keeps the\n"
      "advantage growing with message size, while the rendezvous baseline\n"
      "pays a full store-and-forward plus handshake per hop.\n");

  write_bench_json("ext_rdma_mcast", options, results);
}

}  // namespace
}  // namespace nicmcast::bench

int main(int argc, char** argv) {
  nicmcast::bench::run(
      nicmcast::harness::parse_bench_options(argc, argv, "ext_rdma_mcast"));
  return 0;
}

// Extension (paper §7 future work): "NIC-based multicast using remote DMA
// operations" — broadcasts ABOVE the 16287-byte eager limit.
//
// Compares the paper's fallback (host-based binomial rendezvous: per-hop
// RTS/CTS handshakes and full store-and-forward) against the RDMA
// multicast (announce/ready once, then the payload streams down the tree
// with per-packet NIC forwarding into pre-registered buffers, zero host
// copies).
#include <cstdio>

#include "bench_util.hpp"
#include "mpi/mpi.hpp"

namespace nicmcast::bench {
namespace {

double measure_us(std::size_t nodes, std::size_t bytes, bool rdma) {
  gm::Cluster cluster(gm::ClusterConfig{.nodes = nodes});
  mpi::MpiConfig config;
  config.bcast_algorithm =
      rdma ? mpi::BcastAlgorithm::kNicBased : mpi::BcastAlgorithm::kHostBased;
  config.rdma_multicast = rdma;
  mpi::World world(cluster, config);

  const int warmup = 2;
  const int iterations = 10;
  auto barrier = std::make_shared<SimBarrier>(nodes);
  auto done =
      std::make_shared<std::vector<sim::TimePoint>>(warmup + iterations);
  auto started =
      std::make_shared<std::vector<sim::TimePoint>>(warmup + iterations);
  world.launch([barrier, done, started, bytes, warmup,
                iterations](mpi::Process& self) -> sim::Task<void> {
    for (int iter = 0; iter < warmup + iterations; ++iter) {
      co_await barrier->arrive();
      if (self.rank() == 0) (*started)[iter] = self.simulator().now();
      mpi::Payload data(bytes);
      if (self.rank() == 0) {
        data = make_payload(bytes, static_cast<std::uint8_t>(iter));
      }
      co_await self.bcast(data, 0);
      if (data != make_payload(bytes, static_cast<std::uint8_t>(iter))) {
        throw std::logic_error("rdma bench: corrupted broadcast");
      }
      auto& d = (*done)[iter];
      d = std::max(d, self.simulator().now());
    }
  });
  world.run();

  sim::OnlineStats stats;
  for (int iter = warmup; iter < warmup + iterations; ++iter) {
    stats.add(((*done)[iter] - (*started)[iter]).microseconds());
  }
  return stats.mean();
}

void run() {
  print_header(
      "Extension — RDMA-based NIC multicast for >16KB broadcasts (16 "
      "nodes)",
      "Paper §7 future work: \"the NIC-based multicast using remote DMA "
      "operations\".");
  std::printf("%9s | %14s | %14s | %6s\n", "size(B)", "HB rndv(us)",
              "NB rdma(us)", "factor");
  for (std::size_t bytes : {32768u, 65536u, 131072u, 262144u, 524288u}) {
    const double hb = measure_us(16, bytes, false);
    const double nb = measure_us(16, bytes, true);
    std::printf("%9zu | %14.1f | %14.1f | %6.2f\n", bytes, hb, nb, hb / nb);
  }
  std::printf(
      "\nShape check: the RDMA multicast's pipelined forwarding keeps the\n"
      "advantage growing with message size, while the rendezvous baseline\n"
      "pays a full store-and-forward plus handshake per hop.\n");
}

}  // namespace
}  // namespace nicmcast::bench

int main() {
  nicmcast::bench::run();
  return 0;
}

// §6.1 regression claim: "the modification [adding multicast support] has
// no noticeable impact on the performance of non-multicast communications."
//
// We measure point-to-point latency and streaming bandwidth with (a) a bare
// cluster and (b) a cluster with multicast groups installed and a multicast
// recently completed, and show the point-to-point numbers are identical.
#include <cstdio>

#include "bench_util.hpp"

namespace nicmcast::bench {
namespace {

struct PtpNumbers {
  double latency_us = 0;   // one-way, averaged
  double bandwidth_mbps = 0;  // 1MB stream
};

PtpNumbers measure(bool with_multicast_state) {
  gm::Cluster cluster(gm::ClusterConfig{.nodes = 4});
  if (with_multicast_state) {
    // Install a group and run one multicast so all the multicast machinery
    // has been exercised on these NICs.
    const auto tree = mcast::build_binomial_tree(0, {1, 2, 3});
    mcast::install_group(cluster, tree, 77);
    for (net::NodeId n = 1; n < 4; ++n) {
      cluster.port(n).provide_receive_buffer(4096);
    }
    cluster.run_on_all([tree](gm::Cluster& cl,
                              net::NodeId me) -> sim::Task<void> {
      gm::Payload data;
      if (me == 0) data = make_payload(512);
      gm::Payload got = co_await mcast::nic_bcast(cl.port(me), tree, 77,
                                                  std::move(data), 1);
      if (got.size() != 512) throw std::logic_error("warmup mcast failed");
    });
    cluster.run();
  }

  PtpNumbers out;
  const int iters = 50;
  cluster.port(1).provide_receive_buffers(iters + 2, 4096);

  // One-way latency, 1-byte messages.
  sim::OnlineStats lat;
  cluster.simulator().spawn([](gm::Cluster& cl, int n,
                               sim::OnlineStats& stats) -> sim::Task<void> {
    for (int i = 0; i < n; ++i) {
      const sim::TimePoint start = cl.simulator().now();
      co_await cl.port(0).send(1, 0, gm::Payload(1), 0);
      stats.add((cl.simulator().now() - start).microseconds());
    }
  }(cluster, iters, lat));
  cluster.simulator().spawn([](gm::Cluster& cl, int n) -> sim::Task<void> {
    for (int i = 0; i < n; ++i) {
      co_await cl.port(1).receive();
    }
  }(cluster, iters));
  cluster.run();
  out.latency_us = lat.mean();

  // Streaming bandwidth: 64 x 16KB messages.
  const std::size_t chunk = 16384;
  const int chunks = 64;
  cluster.port(1).provide_receive_buffers(chunks, chunk);
  auto t0 = std::make_shared<sim::TimePoint>(cluster.simulator().now());
  auto t1 = std::make_shared<sim::TimePoint>();
  cluster.simulator().spawn([](gm::Cluster& cl, int n, std::size_t size,
                               std::shared_ptr<sim::TimePoint> start)
                                -> sim::Task<void> {
    *start = cl.simulator().now();
    std::vector<nic::OpHandle> handles;
    for (int i = 0; i < n; ++i) {
      co_await cl.simulator().wait(cl.port(0).nic().config().host_post_overhead);
      while (!cl.port(0).can_post_nowait()) {
        co_await cl.simulator().wait(sim::usec(5));
      }
      handles.push_back(
          cl.port(0).post_send_nowait(1, 0, gm::Payload(size), 0));
    }
    for (auto h : handles) co_await cl.port(0).wait_completion(h);
  }(cluster, chunks, chunk, t0));
  cluster.simulator().spawn([](gm::Cluster& cl, int n,
                               std::shared_ptr<sim::TimePoint> done)
                                -> sim::Task<void> {
    for (int i = 0; i < n; ++i) co_await cl.port(1).receive();
    *done = cl.simulator().now();
  }(cluster, chunks, t1));
  cluster.run();
  out.bandwidth_mbps = static_cast<double>(chunk) * chunks /
                       (*t1 - *t0).microseconds();
  return out;
}

void run() {
  print_header(
      "Point-to-point regression — multicast support must not slow "
      "unicast traffic",
      "Paper §6.1: \"no noticeable impact on the performance of "
      "non-multicast communications\".");
  const PtpNumbers bare = measure(false);
  const PtpNumbers loaded = measure(true);
  std::printf("%-28s | %12s | %16s\n", "configuration", "latency(us)",
              "bandwidth(MB/s)");
  std::printf("%-28s | %12.3f | %16.1f\n", "bare GM", bare.latency_us,
              bare.bandwidth_mbps);
  std::printf("%-28s | %12.3f | %16.1f\n", "with multicast installed",
              loaded.latency_us, loaded.bandwidth_mbps);
  const bool identical =
      bare.latency_us == loaded.latency_us &&
      bare.bandwidth_mbps == loaded.bandwidth_mbps;
  std::printf("\nResult: point-to-point numbers are %s.\n",
              identical ? "IDENTICAL (claim reproduced)" : "DIFFERENT");
}

}  // namespace
}  // namespace nicmcast::bench

int main() {
  nicmcast::bench::run();
  return 0;
}

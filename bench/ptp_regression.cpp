// §6.1 regression claim: "the modification [adding multicast support] has
// no noticeable impact on the performance of non-multicast communications."
//
// We measure point-to-point latency and streaming bandwidth with (a) a bare
// cluster and (b) a cluster with multicast groups installed and a multicast
// recently completed, and show the point-to-point numbers are identical.
// Both runs must execute with the SAME seed, so seed derivation is off.
#include <cstdio>
#include <memory>
#include <vector>

#include "harness/bench_io.hpp"
#include "harness/experiment_util.hpp"
#include "mcast/bcast.hpp"

namespace nicmcast::bench {
namespace {

using namespace nicmcast::harness;

RunResult measure(const RunSpec& spec) {
  const bool with_multicast_state = spec.aux != 0;
  gm::Cluster cluster(cluster_config(spec));
  if (with_multicast_state) {
    // Install a group and run one multicast so all the multicast machinery
    // has been exercised on these NICs.
    const auto tree = mcast::build_binomial_tree(0, {1, 2, 3});
    mcast::install_group(cluster, tree, 77);
    for (net::NodeId n = 1; n < 4; ++n) {
      cluster.port(n).provide_receive_buffer(4096);
    }
    cluster.run_on_all([tree](gm::Cluster& cl,
                              net::NodeId me) -> sim::Task<void> {
      gm::Payload data;
      if (me == 0) data = make_payload(512);
      gm::Payload got = co_await mcast::nic_bcast(cl.port(me), tree, 77,
                                                  std::move(data), 1);
      if (got.size() != 512) throw std::logic_error("warmup mcast failed");
    });
    cluster.run();
  }

  RunResult out;
  out.spec = spec;
  const int iters = spec.iterations;
  cluster.port(1).provide_receive_buffers(
      static_cast<std::size_t>(iters) + 2, 4096);

  // One-way latency, 1-byte messages.
  cluster.simulator().spawn([](gm::Cluster& cl, int n,
                               sim::Series& stats) -> sim::Task<void> {
    for (int i = 0; i < n; ++i) {
      const sim::TimePoint start = cl.simulator().now();
      co_await cl.port(0).send(1, 0, gm::Payload(1), 0);
      stats.add((cl.simulator().now() - start).microseconds());
    }
  }(cluster, iters, out.latency_us));
  cluster.simulator().spawn([](gm::Cluster& cl, int n) -> sim::Task<void> {
    for (int i = 0; i < n; ++i) {
      co_await cl.port(1).receive();
    }
  }(cluster, iters));
  cluster.run();

  // Streaming bandwidth: 64 x 16KB messages.
  const std::size_t chunk = 16384;
  const int chunks = 64;
  cluster.port(1).provide_receive_buffers(chunks, chunk);
  auto t0 = std::make_shared<sim::TimePoint>(cluster.simulator().now());
  auto t1 = std::make_shared<sim::TimePoint>();
  cluster.simulator().spawn([](gm::Cluster& cl, int n, std::size_t size,
                               std::shared_ptr<sim::TimePoint> start)
                                -> sim::Task<void> {
    *start = cl.simulator().now();
    std::vector<nic::OpHandle> handles;
    for (int i = 0; i < n; ++i) {
      co_await cl.simulator().wait(cl.port(0).nic().config().host_post_overhead);
      while (!cl.port(0).can_post_nowait()) {
        co_await cl.simulator().wait(sim::usec(5));
      }
      handles.push_back(
          cl.port(0).post_send_nowait(1, 0, gm::Payload(size), 0));
    }
    for (auto h : handles) co_await cl.port(0).wait_completion(h);
  }(cluster, chunks, chunk, t0));
  cluster.simulator().spawn([](gm::Cluster& cl, int n,
                               std::shared_ptr<sim::TimePoint> done)
                                -> sim::Task<void> {
    for (int i = 0; i < n; ++i) co_await cl.port(1).receive();
    *done = cl.simulator().now();
  }(cluster, chunks, t1));
  cluster.run();
  out.set_metric("bandwidth_mbps", static_cast<double>(chunk) * chunks /
                                       (*t1 - *t0).microseconds());
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    nic::accumulate(out.nic_totals, cluster.nic(i).stats());
  }
  return out;
}

void run(const BenchOptions& options) {
  print_header(
      "Point-to-point regression — multicast support must not slow "
      "unicast traffic",
      "Paper §6.1: \"no noticeable impact on the performance of "
      "non-multicast communications\".");

  RunSpec base;
  base.experiment = Experiment::kCustom;
  base.nodes = 4;
  base.warmup = 0;
  base.iterations = options.iterations_or(50);

  RunSpec bare = base;
  bare.label = "bare";
  bare.aux = 0;
  RunSpec loaded = base;
  loaded.label = "with_mcast_state";
  loaded.aux = 1;

  // The IDENTICAL claim compares the two configurations under the same
  // seed, so per-run seed derivation stays off.
  RunnerOptions runner = runner_options(options);
  runner.derive_seeds = false;
  const auto results =
      ParallelRunner(runner).run({bare, loaded}, measure);

  std::printf("%-28s | %12s | %16s\n", "configuration", "latency(us)",
              "bandwidth(MB/s)");
  std::printf("%-28s | %12.3f | %16.1f\n", "bare GM", results[0].mean_us(),
              results[0].metric("bandwidth_mbps"));
  std::printf("%-28s | %12.3f | %16.1f\n", "with multicast installed",
              results[1].mean_us(), results[1].metric("bandwidth_mbps"));
  const bool identical =
      results[0].mean_us() == results[1].mean_us() &&
      results[0].metric("bandwidth_mbps") ==
          results[1].metric("bandwidth_mbps");
  std::printf("\nResult: point-to-point numbers are %s.\n",
              identical ? "IDENTICAL (claim reproduced)" : "DIFFERENT");

  write_bench_json("ptp_regression", options, results);
}

}  // namespace
}  // namespace nicmcast::bench

int main(int argc, char** argv) {
  nicmcast::bench::run(
      nicmcast::harness::parse_bench_options(argc, argv, "ptp_regression"));
  return 0;
}

// Ablation of the paper's §5 design alternatives:
//
//  (1) Multisend implementation — alternative 1 (one send token per
//      destination: saves only the host postings) vs the chosen
//      alternative 2 (descriptor-callback replica chain).  Alternative 3
//      (rewrite behind the transmit DMA) is modelled as alternative 2 with
//      a near-zero rewrite cost, giving its upper bound.
//
//  (2) Forwarding token policy — the chosen receive-token transform (no
//      extra NIC resource) vs drawing from the free send-token pool, which
//      stalls forwarding when the pool is empty (the deadlock-prone
//      rejected design).
#include <cstdio>

#include "bench_util.hpp"

namespace nicmcast::bench {
namespace {

double multisend_us(std::size_t bytes, nic::NicOptions options,
                    nic::NicConfig config = {}) {
  gm::ClusterConfig cluster_config;
  cluster_config.nodes = 5;
  cluster_config.nic = config;
  cluster_config.nic_options = options;
  gm::Cluster cluster(cluster_config);
  const int warmup = 3;
  const int iters = 30;
  for (std::size_t n = 1; n < 5; ++n) {
    cluster.port(n).provide_receive_buffers(warmup + iters,
                                            std::max<std::size_t>(bytes, 64));
  }
  sim::OnlineStats stats;
  cluster.simulator().spawn(
      [](gm::Cluster& cl, std::size_t size, int wu, int n,
         sim::OnlineStats& out) -> sim::Task<void> {
        for (int i = 0; i < wu + n; ++i) {
          const sim::TimePoint start = cl.simulator().now();
          std::vector<net::NodeId> dests{1, 2, 3, 4};
          const gm::SendStatus st = co_await cl.port(0).multisend(
              std::move(dests), 0, make_payload(size), 0);
          if (st != gm::SendStatus::kOk) throw std::runtime_error("fail");
          if (i >= wu) {
            out.add((cl.simulator().now() - start).microseconds());
          }
        }
      }(cluster, bytes, warmup, iters, stats));
  cluster.run();
  return stats.mean();
}

void multisend_ablation() {
  std::printf("\n--- multisend alternatives (4 destinations) ---\n");
  std::printf("%8s | %12s | %12s | %12s\n", "size(B)", "alt1 tokens",
              "alt2 chain", "alt3 bound");
  for (std::size_t bytes : {8u, 64u, 512u, 4096u, 16384u}) {
    nic::NicOptions tokens;
    tokens.multisend_uses_multiple_tokens = true;
    const double alt1 = multisend_us(bytes, tokens);
    const double alt2 = multisend_us(bytes, {});
    nic::NicConfig free_rewrite;
    free_rewrite.header_rewrite = sim::usec(0.02);
    const double alt3 = multisend_us(bytes, {}, free_rewrite);
    std::printf("%8zu | %9.2fus | %9.2fus | %9.2fus\n", bytes, alt1, alt2,
                alt3);
  }
  std::printf("Chosen: alternative 2 — saves the per-destination token\n"
              "processing; alternative 3 could shave the rewrite cost but\n"
              "needs risky DMA-engine timing (left as future work in the\n"
              "paper).\n");
}

double forward_policy_us(bool pool_tokens, std::size_t busy_sends) {
  nic::NicConfig config;
  config.send_tokens_per_port = 4;
  nic::NicOptions options;
  options.forwarding_uses_send_tokens = pool_tokens;
  gm::ClusterConfig cluster_config;
  cluster_config.nodes = 4;
  cluster_config.nic = config;
  cluster_config.nic_options = options;
  gm::Cluster cluster(cluster_config);

  // Chain 0 -> 1 -> 2 -> 3; node 1 concurrently runs point-to-point sends
  // that occupy its send-token pool.
  mcast::Tree tree(0);
  tree.add_edge(0, 1);
  tree.add_edge(1, 2);
  tree.add_edge(2, 3);
  mcast::install_group(cluster, tree, 9);
  for (net::NodeId n = 1; n < 4; ++n) {
    cluster.port(n).provide_receive_buffers(busy_sends + 4, 8192);
  }
  cluster.port(0).provide_receive_buffers(busy_sends + 4, 8192);

  auto leaf_done = std::make_shared<sim::TimePoint>();
  // Node 1's competing unicast traffic (posted before the multicast).
  cluster.simulator().spawn([](gm::Cluster& cl,
                               std::size_t k) -> sim::Task<void> {
    std::vector<nic::OpHandle> handles;
    for (std::size_t i = 0; i < k; ++i) {
      handles.push_back(cl.port(1).post_send_nowait(0, 0, gm::Payload(4096), 7));
    }
    for (auto h : handles) co_await cl.port(1).wait_completion(h);
  }(cluster, busy_sends));

  cluster.run_on_all([tree, leaf_done](gm::Cluster& cl,
                                       net::NodeId me) -> sim::Task<void> {
    gm::Payload data;
    if (me == 0) data = make_payload(1024);
    gm::Payload got = co_await mcast::nic_bcast(cl.port(me), tree, 9,
                                                std::move(data), 1);
    if (got.size() != 1024) throw std::logic_error("ablation bcast failed");
    if (me == 3) *leaf_done = cl.simulator().now();
  });
  cluster.run();
  return leaf_done->microseconds();
}

void forwarding_ablation() {
  std::printf("\n--- forwarding token policy (chain, node 1 busy with "
              "unicasts, 4-token pool) ---\n");
  std::printf("%18s | %16s | %16s\n", "competing sends",
              "recv-token(us)", "send-pool(us)");
  for (std::size_t busy : {0u, 2u, 4u}) {
    const double transform = forward_policy_us(false, busy);
    const double pool = forward_policy_us(true, busy);
    std::printf("%18zu | %16.2f | %16.2f\n", busy, transform, pool);
  }
  std::printf("Chosen: transforming the receive token — forwarding never\n"
              "competes for send tokens, so the leaf latency is flat no\n"
              "matter how busy the intermediate host is.  The pool variant\n"
              "stalls (and in cyclic configurations can deadlock).\n");
}

double buffer_policy_us(bool naive, std::size_t pool) {
  // 0 -> 1 -> {2, 3}; node 3's host posts its receive buffer 2ms late.
  // Reported: when the HEALTHY sibling (node 2) gets the full message.
  nic::NicConfig config;
  config.nic_rx_buffers = pool;
  config.retransmit_timeout = sim::usec(300);
  config.max_retries = 1000;
  nic::NicOptions options;
  options.hold_buffers_until_acked = naive;
  gm::ClusterConfig cluster_config;
  cluster_config.nodes = 4;
  cluster_config.nic = config;
  cluster_config.nic_options = options;
  gm::Cluster cluster(cluster_config);
  mcast::Tree tree(0);
  tree.add_edge(0, 1);
  tree.add_edge(1, 2);
  tree.add_edge(1, 3);
  mcast::install_group(cluster, tree, 9);
  cluster.port(1).provide_receive_buffer(65536);
  cluster.port(2).provide_receive_buffer(65536);
  cluster.simulator().schedule_after(sim::msec(2), [&cluster] {
    cluster.port(3).provide_receive_buffer(65536);
  });
  auto healthy_done = std::make_shared<sim::TimePoint>();
  cluster.run_on_all([tree, healthy_done](gm::Cluster& cl,
                                          net::NodeId me) -> sim::Task<void> {
    gm::Payload data;
    if (me == 0) data = make_payload(65536);
    gm::Payload got = co_await mcast::nic_bcast(cl.port(me), tree, 9,
                                                std::move(data), 1);
    if (got.size() != 65536) throw std::logic_error("bcast corrupted");
    if (me == 2) *healthy_done = cl.simulator().now();
  });
  cluster.run();
  return healthy_done->microseconds();
}

void buffer_policy_ablation() {
  std::printf("\n--- staging-buffer release policy (64KB, one child 2ms "
              "late) ---\n");
  std::printf("%10s | %22s | %22s\n", "SRAM pool",
              "healthy sibling, fwd(us)", "healthy sibling, hold(us)");
  for (std::size_t pool : {2u, 4u, 8u, 32u}) {
    const double chosen = buffer_policy_us(false, pool);
    const double naive = buffer_policy_us(true, pool);
    std::printf("%10zu | %22.1f | %22.1f\n", pool, chosen, naive);
  }
  std::printf("Chosen: release once forwarding (and the RDMA) finished —\n"
              "the host replica covers retransmissions, so a slow child\n"
              "never starves its siblings.  The naive hold-until-acked\n"
              "policy pins the pool behind the laggard and drags the\n"
              "healthy subtree past its wake-up (the paper's \"slow down\n"
              "the receiver or even block the network\").\n");
}

}  // namespace
}  // namespace nicmcast::bench

int main() {
  nicmcast::bench::print_header(
      "Ablation — the paper's §5 design alternatives",
      "Multisend: tokens vs callback chain vs rewrite bound; forwarding: "
      "receive-token transform vs send-token pool; staging-buffer policy.");
  nicmcast::bench::multisend_ablation();
  nicmcast::bench::forwarding_ablation();
  nicmcast::bench::buffer_policy_ablation();
  return 0;
}

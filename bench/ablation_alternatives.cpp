// Ablation of the paper's §5 design alternatives:
//
//  (1) Multisend implementation — alternative 1 (one send token per
//      destination: saves only the host postings) vs the chosen
//      alternative 2 (descriptor-callback replica chain).  Alternative 3
//      (rewrite behind the transmit DMA) is modelled as alternative 2 with
//      a near-zero rewrite cost, giving its upper bound.
//
//  (2) Forwarding token policy — the chosen receive-token transform (no
//      extra NIC resource) vs drawing from the free send-token pool, which
//      stalls forwarding when the pool is empty (the deadlock-prone
//      rejected design).
//
//  (3) Staging-buffer release policy — release once forwarding finished
//      (chosen; the host replica covers retransmissions) vs holding the
//      SRAM buffer until every child acked (pins the pool behind laggards).
#include <cstdio>
#include <memory>
#include <vector>

#include "harness/bench_io.hpp"
#include "harness/experiment_util.hpp"
#include "harness/runners.hpp"
#include "mcast/bcast.hpp"

namespace nicmcast::bench {
namespace {

using namespace nicmcast::harness;

// Chain 0 -> 1 -> 2 -> 3; node 1 concurrently runs point-to-point sends
// (spec.aux of them) that occupy its send-token pool.  Reported: when the
// leaf got the full message.
RunResult forward_policy(const RunSpec& spec) {
  gm::Cluster cluster(cluster_config(spec));
  const std::size_t busy_sends = spec.aux;

  mcast::Tree tree(0);
  tree.add_edge(0, 1);
  tree.add_edge(1, 2);
  tree.add_edge(2, 3);
  mcast::install_group(cluster, tree, 9);
  for (net::NodeId n = 1; n < 4; ++n) {
    cluster.port(n).provide_receive_buffers(busy_sends + 4, 8192);
  }
  cluster.port(0).provide_receive_buffers(busy_sends + 4, 8192);

  auto leaf_done = std::make_shared<sim::TimePoint>();
  // Node 1's competing unicast traffic (posted before the multicast).
  cluster.simulator().spawn([](gm::Cluster& cl,
                               std::size_t k) -> sim::Task<void> {
    std::vector<nic::OpHandle> handles;
    for (std::size_t i = 0; i < k; ++i) {
      handles.push_back(cl.port(1).post_send_nowait(0, 0, gm::Payload(4096), 7));
    }
    for (auto h : handles) co_await cl.port(1).wait_completion(h);
  }(cluster, busy_sends));

  cluster.run_on_all([tree, leaf_done](gm::Cluster& cl,
                                       net::NodeId me) -> sim::Task<void> {
    gm::Payload data;
    if (me == 0) data = make_payload(1024);
    gm::Payload got = co_await mcast::nic_bcast(cl.port(me), tree, 9,
                                                std::move(data), 1);
    if (got.size() != 1024) throw std::logic_error("ablation bcast failed");
    if (me == 3) *leaf_done = cl.simulator().now();
  });
  cluster.run();

  RunResult out;
  out.spec = spec;
  out.latency_us.add(leaf_done->microseconds());
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    nic::accumulate(out.nic_totals, cluster.nic(i).stats());
  }
  return out;
}

// 0 -> 1 -> {2, 3}; node 3's host posts its receive buffer 2ms late.
// Reported: when the HEALTHY sibling (node 2) gets the full message.
RunResult buffer_policy(const RunSpec& spec) {
  gm::Cluster cluster(cluster_config(spec));
  mcast::Tree tree(0);
  tree.add_edge(0, 1);
  tree.add_edge(1, 2);
  tree.add_edge(1, 3);
  mcast::install_group(cluster, tree, 9);
  cluster.port(1).provide_receive_buffer(65536);
  cluster.port(2).provide_receive_buffer(65536);
  cluster.simulator().schedule_after(sim::msec(2), [&cluster] {
    cluster.port(3).provide_receive_buffer(65536);
  });
  auto healthy_done = std::make_shared<sim::TimePoint>();
  cluster.run_on_all([tree, healthy_done](gm::Cluster& cl,
                                          net::NodeId me) -> sim::Task<void> {
    gm::Payload data;
    if (me == 0) data = make_payload(65536);
    gm::Payload got = co_await mcast::nic_bcast(cl.port(me), tree, 9,
                                                std::move(data), 1);
    if (got.size() != 65536) throw std::logic_error("bcast corrupted");
    if (me == 2) *healthy_done = cl.simulator().now();
  });
  cluster.run();

  RunResult out;
  out.spec = spec;
  out.latency_us.add(healthy_done->microseconds());
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    nic::accumulate(out.nic_totals, cluster.nic(i).stats());
  }
  return out;
}

RunResult dispatch(const RunSpec& spec) {
  if (spec.experiment != Experiment::kCustom) return run_one(spec);
  if (spec.label == "forward_policy") return forward_policy(spec);
  return buffer_policy(spec);
}

void run(const BenchOptions& options) {
  print_header(
      "Ablation — the paper's §5 design alternatives",
      "Multisend: tokens vs callback chain vs rewrite bound; forwarding: "
      "receive-token transform vs send-token pool; staging-buffer policy.");
  const std::vector<std::size_t> ms_sizes{8, 64, 512, 4096, 16384};
  const std::vector<std::size_t> busy_counts{0, 2, 4};
  const std::vector<std::size_t> pools{2, 4, 8, 32};

  std::vector<RunSpec> specs;

  // Part 1: multisend alternatives (stock kMultisend runner; the variants
  // differ only in the NIC config/options a spec already carries).
  RunSpec ms;
  ms.experiment = Experiment::kMultisend;
  ms.destinations = 4;
  ms.nodes = 5;
  ms.warmup = 3;
  ms.iterations = options.iterations_or(30);
  for (std::size_t bytes : ms_sizes) {
    ms.message_bytes = bytes;
    ms.label = "alt1_tokens";
    ms.nic = {};
    ms.nic_options = {};
    ms.nic_options.multisend_uses_multiple_tokens = true;
    specs.push_back(ms);
    ms.label = "alt2_chain";
    ms.nic_options = {};
    specs.push_back(ms);
    ms.label = "alt3_bound";
    ms.nic.header_rewrite = sim::usec(0.02);
    specs.push_back(ms);
    ms.nic = {};
  }
  const std::size_t part2_at = specs.size();

  // Part 2: forwarding token policy.
  RunSpec fwd;
  fwd.experiment = Experiment::kCustom;
  fwd.label = "forward_policy";
  fwd.nodes = 4;
  fwd.nic.send_tokens_per_port = 4;
  for (std::size_t busy : busy_counts) {
    fwd.aux = busy;
    fwd.nic_options.forwarding_uses_send_tokens = false;
    specs.push_back(fwd);
    fwd.nic_options.forwarding_uses_send_tokens = true;
    specs.push_back(fwd);
  }
  const std::size_t part3_at = specs.size();

  // Part 3: staging-buffer release policy (64KB, one child 2ms late).
  RunSpec buf;
  buf.experiment = Experiment::kCustom;
  buf.label = "buffer_policy";
  buf.nodes = 4;
  buf.message_bytes = 65536;
  buf.nic.retransmit_timeout = sim::usec(300);
  buf.nic.max_retries = 1000;
  for (std::size_t pool : pools) {
    buf.aux = pool;
    buf.nic.nic_rx_buffers = pool;
    buf.nic_options.hold_buffers_until_acked = false;
    specs.push_back(buf);
    buf.nic_options.hold_buffers_until_acked = true;
    specs.push_back(buf);
  }

  const auto results =
      ParallelRunner(runner_options(options)).run(specs, dispatch);

  std::printf("\n--- multisend alternatives (4 destinations) ---\n");
  std::printf("%8s | %12s | %12s | %12s\n", "size(B)", "alt1 tokens",
              "alt2 chain", "alt3 bound");
  for (std::size_t si = 0; si < ms_sizes.size(); ++si) {
    const std::size_t idx = si * 3;
    std::printf("%8zu | %9.2fus | %9.2fus | %9.2fus\n", ms_sizes[si],
                results[idx].mean_us(), results[idx + 1].mean_us(),
                results[idx + 2].mean_us());
  }
  std::printf("Chosen: alternative 2 — saves the per-destination token\n"
              "processing; alternative 3 could shave the rewrite cost but\n"
              "needs risky DMA-engine timing (left as future work in the\n"
              "paper).\n");

  std::printf("\n--- forwarding token policy (chain, node 1 busy with "
              "unicasts, 4-token pool) ---\n");
  std::printf("%18s | %16s | %16s\n", "competing sends",
              "recv-token(us)", "send-pool(us)");
  for (std::size_t bi = 0; bi < busy_counts.size(); ++bi) {
    const std::size_t idx = part2_at + bi * 2;
    std::printf("%18zu | %16.2f | %16.2f\n", busy_counts[bi],
                results[idx].mean_us(), results[idx + 1].mean_us());
  }
  std::printf("Chosen: transforming the receive token — forwarding never\n"
              "competes for send tokens, so the leaf latency is flat no\n"
              "matter how busy the intermediate host is.  The pool variant\n"
              "stalls (and in cyclic configurations can deadlock).\n");

  std::printf("\n--- staging-buffer release policy (64KB, one child 2ms "
              "late) ---\n");
  std::printf("%10s | %22s | %22s\n", "SRAM pool",
              "healthy sibling, fwd(us)", "healthy sibling, hold(us)");
  for (std::size_t pi = 0; pi < pools.size(); ++pi) {
    const std::size_t idx = part3_at + pi * 2;
    std::printf("%10zu | %22.1f | %22.1f\n", pools[pi],
                results[idx].mean_us(), results[idx + 1].mean_us());
  }
  std::printf("Chosen: release once forwarding (and the RDMA) finished —\n"
              "the host replica covers retransmissions, so a slow child\n"
              "never starves its siblings.  The naive hold-until-acked\n"
              "policy pins the pool behind the laggard and drags the\n"
              "healthy subtree past its wake-up (the paper's \"slow down\n"
              "the receiver or even block the network\").\n");

  write_bench_json("ablation_alternatives", options, results);
}

}  // namespace
}  // namespace nicmcast::bench

int main(int argc, char** argv) {
  nicmcast::bench::run(nicmcast::harness::parse_bench_options(
      argc, argv, "ablation_alternatives"));
  return 0;
}

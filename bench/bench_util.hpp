// Shared benchmark plumbing: the paper's measurement methodology (warm-up
// iterations, averaged timed iterations, latency to the last destination)
// plus table printing helpers.
#pragma once

#include <cstdio>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "gm/cluster.hpp"
#include "mcast/bcast.hpp"
#include "mcast/postal_tree.hpp"
#include "sim/stats.hpp"

namespace nicmcast::bench {

inline gm::Payload make_payload(std::size_t n, std::uint8_t salt = 0) {
  gm::Payload p(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = std::byte{static_cast<std::uint8_t>(i * 131u + salt)};
  }
  return p;
}

inline std::vector<net::NodeId> everyone_but(net::NodeId root,
                                             std::size_t n) {
  std::vector<net::NodeId> v;
  for (net::NodeId i = 0; i < n; ++i) {
    if (i != root) v.push_back(i);
  }
  return v;
}

/// Zero-cost simulation-side barrier used to align iterations exactly
/// (the paper used warm-up rounds; determinism lets us do better).
class SimBarrier {
 public:
  explicit SimBarrier(std::size_t parties) : parties_(parties) {}
  sim::Task<void> arrive() {
    if (++count_ == parties_) {
      count_ = 0;
      gate_.release();
    } else {
      co_await gate_.wait();
    }
  }

 private:
  std::size_t parties_;
  std::size_t count_ = 0;
  sim::Gate gate_;
};

/// The paper's GM-level multicast latency methodology: iterate broadcasts
/// over a fixed tree; the latency of one iteration is the instant the last
/// node finished (max over leaf-ack choices).  Warm-up iterations are
/// discarded; the rest are averaged.
struct McastLatencyConfig {
  std::size_t nodes = 16;
  std::size_t message_bytes = 128;
  bool nic_based = true;
  int warmup = 4;
  int iterations = 40;
};

inline double measure_mcast_latency_us(const McastLatencyConfig& config,
                                       const mcast::Tree& tree) {
  gm::Cluster cluster(gm::ClusterConfig{.nodes = config.nodes});
  const net::GroupId group = 1;
  if (config.nic_based) mcast::install_group(cluster, tree, group);
  const int total = config.warmup + config.iterations;
  for (net::NodeId node : tree.nodes()) {
    if (node != tree.root()) {
      cluster.port(node).provide_receive_buffers(
          total, std::max<std::size_t>(config.message_bytes, 64));
    }
  }

  auto iteration_done = std::make_shared<std::vector<sim::TimePoint>>(total);
  auto iteration_started =
      std::make_shared<std::vector<sim::TimePoint>>(total);
  auto barrier = std::make_shared<SimBarrier>(tree.size());

  cluster.run_on_all([config, tree, group, iteration_done, iteration_started,
                      barrier](gm::Cluster& cl,
                               net::NodeId me) -> sim::Task<void> {
    const int total_iters = config.warmup + config.iterations;
    for (int iter = 0; iter < total_iters; ++iter) {
      co_await barrier->arrive();
      if (me == tree.root()) {
        (*iteration_started)[iter] = cl.simulator().now();
      }
      gm::Payload data;
      if (me == tree.root()) {
        data = make_payload(config.message_bytes,
                            static_cast<std::uint8_t>(iter));
      }
      gm::Payload got;
      if (config.nic_based) {
        got = co_await mcast::nic_bcast(cl.port(me), tree, group,
                                        std::move(data),
                                        static_cast<std::uint32_t>(iter));
      } else {
        got = co_await mcast::host_bcast(cl.port(me), tree, std::move(data),
                                         static_cast<std::uint32_t>(iter));
      }
      if (got.size() != config.message_bytes) {
        throw std::logic_error("bench: broadcast payload corrupted");
      }
      auto& done = (*iteration_done)[iter];
      done = std::max(done, cl.simulator().now());
    }
  });
  cluster.run();

  sim::OnlineStats stats;
  for (int iter = config.warmup; iter < total; ++iter) {
    stats.add(((*iteration_done)[iter] - (*iteration_started)[iter])
                  .microseconds());
  }
  return stats.mean();
}

/// Standard message-size sweep used by the paper's figures.
inline std::vector<std::size_t> paper_sizes() {
  return {1,   4,    16,   64,   128,  256,   512,
          1024, 2048, 4096, 8192, 16384};
}

inline void print_header(const std::string& title,
                         const std::string& paper_reference) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("%s\n", paper_reference.c_str());
  std::printf("================================================================\n");
}

}  // namespace nicmcast::bench

// Figure 7: improvement factor of the NIC-based broadcast's host CPU time
// under a fixed 400 us average skew, as a function of system size, for 4 B
// and 4 KB messages.
//
// Paper landmark: the factor grows with the number of nodes for both
// message sizes — larger systems benefit more.
#include <cstdio>

#include "bench_util.hpp"
#include "mpi/skew.hpp"

namespace nicmcast::bench {
namespace {

double factor(std::size_t nodes, std::size_t bytes) {
  auto run_one = [&](mpi::BcastAlgorithm algorithm) {
    mpi::SkewConfig config;
    config.nodes = nodes;
    config.message_bytes = bytes;
    config.max_skew = sim::usec(400.0 * 4.0);  // 400us mean |skew|
    config.iterations = 40;
    config.warmup = 4;
    config.algorithm = algorithm;
    return run_skew_experiment(config).avg_bcast_cpu_us;
  };
  return run_one(mpi::BcastAlgorithm::kHostBased) /
         run_one(mpi::BcastAlgorithm::kNicBased);
}

void run() {
  print_header(
      "Figure 7 — skew-tolerance improvement factor vs system size "
      "(400us average skew)",
      "Paper: the factor grows with node count for both 4B and 4KB.");
  std::printf("%8s | %10s | %10s\n", "nodes", "4B factor", "4KB factor");
  for (std::size_t nodes : {4u, 8u, 12u, 16u}) {
    std::printf("%8zu | %10.2f | %10.2f\n", nodes, factor(nodes, 4),
                factor(nodes, 4096));
  }
  std::printf("\nShape check: both columns increase monotonically (modulo\n"
              "sampling noise) with system size.\n");
}

}  // namespace
}  // namespace nicmcast::bench

int main() {
  nicmcast::bench::run();
  return 0;
}

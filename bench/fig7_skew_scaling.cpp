// Figure 7: improvement factor of the NIC-based broadcast's host CPU time
// under a fixed 400 us average skew, as a function of system size, for 4 B
// and 4 KB messages.
//
// Paper landmark: the factor grows with the number of nodes for both
// message sizes — larger systems benefit more.
#include <cstdio>
#include <vector>

#include "harness/bench_io.hpp"
#include "harness/sweep.hpp"

namespace nicmcast::bench {
namespace {

using namespace nicmcast::harness;

void run(const BenchOptions& options) {
  print_header(
      "Figure 7 — skew-tolerance improvement factor vs system size "
      "(400us average skew)",
      "Paper: the factor grows with node count for both 4B and 4KB.");
  const std::vector<std::size_t> node_counts{4, 8, 12, 16};
  const std::vector<std::size_t> sizes{4, 4096};

  RunSpec base;
  base.experiment = Experiment::kSkewBcast;
  base.avg_skew_us = 400.0;
  base.iterations = options.iterations_or(40);

  const auto specs = Sweep(base)
                         .node_counts(node_counts)
                         .message_sizes(sizes)
                         .algos({Algo::kHostBased, Algo::kNicBased})
                         .build();
  const auto results = ParallelRunner(runner_options(options)).run(specs);

  std::printf("%8s | %10s | %10s\n", "nodes", "4B factor", "4KB factor");
  for (std::size_t ni = 0; ni < node_counts.size(); ++ni) {
    std::printf("%8zu", node_counts[ni]);
    for (std::size_t si = 0; si < sizes.size(); ++si) {
      const std::size_t idx = (ni * sizes.size() + si) * 2;
      const double hb = results[idx].metric("avg_bcast_cpu_us");
      const double nb = results[idx + 1].metric("avg_bcast_cpu_us");
      std::printf(" | %10.2f", hb / nb);
    }
    std::printf("\n");
  }
  std::printf("\nShape check: both columns increase monotonically (modulo\n"
              "sampling noise) with system size.\n");

  write_bench_json("fig7_skew_scaling", options, results);
}

}  // namespace
}  // namespace nicmcast::bench

int main(int argc, char** argv) {
  nicmcast::bench::run(
      nicmcast::harness::parse_bench_options(argc, argv, "fig7_skew_scaling"));
  return 0;
}

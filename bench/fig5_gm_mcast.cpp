// Figure 5: GM-level multicast latency, NIC-based (optimal postal tree,
// NIC forwarding) vs host-based (binomial tree, host forwarding), for 4, 8
// and 16 nodes across message sizes.
//
// Paper landmarks (16 nodes): factor >= 1.48 for <= 512 B, up to 1.86 at
// 16 KB, with a dip at 2-4 KB (single-packet messages get neither the
// multisend nor the pipelining benefit).
#include <cstdio>

#include "bench_util.hpp"

namespace nicmcast::bench {
namespace {

void run() {
  print_header(
      "Figure 5 — GM-level multicast: NIC-based vs host-based",
      "Paper (16 nodes): >=1.48x for <=512B, up to 1.86x at 16KB, dip at "
      "2-4KB.");
  const std::vector<std::size_t> node_counts{4, 8, 16};

  std::printf("%8s", "size(B)");
  for (std::size_t n : node_counts) {
    std::printf(" | HB-%-2zu(us) NB-%-2zu(us) factor", n, n);
  }
  std::printf("\n");

  for (std::size_t bytes : paper_sizes()) {
    std::printf("%8zu", bytes);
    for (std::size_t n : node_counts) {
      McastLatencyConfig config;
      config.nodes = n;
      config.message_bytes = bytes;
      config.iterations = 30;

      const auto dests = everyone_but(0, n);
      config.nic_based = false;
      const double hb = measure_mcast_latency_us(
          config, mcast::build_binomial_tree(0, dests));

      config.nic_based = true;
      const auto cost = mcast::PostalCostModel::nic_based(
          bytes, nic::NicConfig{}, net::NetworkConfig{});
      const double nb = measure_mcast_latency_us(
          config, mcast::build_postal_tree(0, dests, cost));

      std::printf(" | %9.2f %9.2f %6.2f", hb, nb, hb / nb);
    }
    std::printf("\n");
  }
  std::printf(
      "\nShape check: NB wins at every size; the factor dips for 2-4KB\n"
      "single-packet messages and peaks at 16KB (per-packet forwarding\n"
      "pipelining), growing with system size.\n");
}

}  // namespace
}  // namespace nicmcast::bench

int main() {
  nicmcast::bench::run();
  return 0;
}

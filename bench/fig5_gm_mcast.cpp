// Figure 5: GM-level multicast latency, NIC-based (optimal postal tree,
// NIC forwarding) vs host-based (binomial tree, host forwarding), for 4, 8
// and 16 nodes across message sizes.
//
// Paper landmarks (16 nodes): factor >= 1.48 for <= 512 B, up to 1.86 at
// 16 KB, with a dip at 2-4 KB (single-packet messages get neither the
// multisend nor the pipelining benefit).
#include <cstdio>
#include <vector>

#include "harness/bench_io.hpp"
#include "harness/experiment_util.hpp"
#include "harness/sweep.hpp"

namespace nicmcast::bench {
namespace {

using namespace nicmcast::harness;

void run(const BenchOptions& options) {
  print_header(
      "Figure 5 — GM-level multicast: NIC-based vs host-based",
      "Paper (16 nodes): >=1.48x for <=512B, up to 1.86x at 16KB, dip at "
      "2-4KB.");
  const std::vector<std::size_t> node_counts{4, 8, 16};
  const std::vector<std::size_t> sizes = paper_sizes();

  RunSpec base;
  base.experiment = Experiment::kGmMulticast;
  base.iterations = options.iterations_or(30);

  // Host-based runs use the binomial tree, NIC-based the cost-modelled
  // postal tree — a coupled axis, host first so each table cell reads
  // (HB, NB) consecutively.
  const auto specs =
      Sweep(base)
          .message_sizes(sizes)
          .node_counts(node_counts)
          .axis(std::vector<Algo>{Algo::kHostBased, Algo::kNicBased},
                [&options](RunSpec& s, Algo a) {
                  s.algo = a;
                  s.tree = a == Algo::kNicBased ? TreeShape::kPostal
                                                : TreeShape::kBinomial;
                  // Only the NIC-based points exist on the sharded fabric;
                  // host-based forwarding stays on the classic engine.
                  s.shards = a == Algo::kNicBased ? options.shards_or(1) : 1;
                })
          .build();
  const auto results = ParallelRunner(runner_options(options)).run(specs);

  std::printf("%8s", "size(B)");
  for (std::size_t n : node_counts) {
    std::printf(" | HB-%-2zu(us) NB-%-2zu(us) factor", n, n);
  }
  std::printf("\n");

  for (std::size_t si = 0; si < sizes.size(); ++si) {
    std::printf("%8zu", sizes[si]);
    for (std::size_t ni = 0; ni < node_counts.size(); ++ni) {
      const std::size_t idx = (si * node_counts.size() + ni) * 2;
      const double hb = results[idx].mean_us();
      const double nb = results[idx + 1].mean_us();
      std::printf(" | %9.2f %9.2f %6.2f", hb, nb, hb / nb);
    }
    std::printf("\n");
  }
  std::printf(
      "\nShape check: NB wins at every size; the factor dips for 2-4KB\n"
      "single-packet messages and peaks at 16KB (per-packet forwarding\n"
      "pipelining), growing with system size.\n");

  write_bench_json("fig5_gm_mcast", options, results);
}

}  // namespace
}  // namespace nicmcast::bench

int main(int argc, char** argv) {
  nicmcast::bench::run(
      nicmcast::harness::parse_bench_options(argc, argv, "fig5_gm_mcast"));
  return 0;
}

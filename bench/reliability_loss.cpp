// Reliability under injected faults: multicast latency, retransmission
// volume and delivery success across packet drop/corruption rates.
//
// The paper's scheme is "reliable" by construction (§5: per-group sequence
// numbers, per-child cumulative acks, timeout + selective retransmission);
// this bench quantifies the cost of that reliability as the fabric degrades
// — real Myrinet's bit-error rate is tiny, but the machinery must hold up
// far beyond it.
#include <cstdio>

#include "bench_util.hpp"

namespace nicmcast::bench {
namespace {

struct LossResult {
  double mean_latency_us = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t crc_drops = 0;
  bool all_delivered = true;
};

LossResult measure(double drop_rate, double corrupt_rate) {
  const std::size_t n = 8;
  nic::NicConfig config;
  config.retransmit_timeout = sim::usec(300);  // shorten recovery for bench
  gm::ClusterConfig cluster_config;
  cluster_config.nodes = n;
  cluster_config.nic = config;
  gm::Cluster cluster(cluster_config);
  cluster.network().set_fault_injector(std::make_unique<net::RandomFaults>(
      drop_rate, corrupt_rate, sim::Rng(42)));

  const auto dests = everyone_but(0, n);
  const mcast::Tree tree = mcast::build_binomial_tree(0, dests);
  mcast::install_group(cluster, tree, 3);
  const int rounds = 30;
  for (net::NodeId node = 1; node < n; ++node) {
    cluster.port(node).provide_receive_buffers(rounds, 4096);
  }

  auto barrier = std::make_shared<SimBarrier>(n);
  auto result = std::make_shared<LossResult>();
  auto lat = std::make_shared<sim::OnlineStats>();
  cluster.run_on_all([tree, barrier, result, lat,
                      rounds](gm::Cluster& cl,
                              net::NodeId me) -> sim::Task<void> {
    for (int r = 0; r < rounds; ++r) {
      co_await barrier->arrive();
      const sim::TimePoint start = cl.simulator().now();
      gm::Payload data;
      if (me == 0) {
        data = make_payload(2048, static_cast<std::uint8_t>(r));
      }
      gm::Payload got =
          co_await mcast::nic_bcast(cl.port(me), tree, 3, std::move(data),
                                    static_cast<std::uint32_t>(r));
      if (got != make_payload(2048, static_cast<std::uint8_t>(r))) {
        result->all_delivered = false;
      }
      if (me == 0) {
        lat->add((cl.simulator().now() - start).microseconds());
      }
    }
  });
  cluster.run();

  result->mean_latency_us = lat->mean();
  for (std::size_t i = 0; i < n; ++i) {
    result->retransmissions += cluster.nic(i).stats().retransmissions;
    result->crc_drops += cluster.nic(i).stats().crc_drops;
  }
  return *result;
}

void run() {
  print_header(
      "Reliability — NIC-based multicast under fabric faults (8 nodes, "
      "2KB, 30 rounds)",
      "Every payload must arrive intact and in order at every node, at any "
      "loss rate.");
  std::printf("%10s %10s | %14s %8s %9s | %s\n", "drop", "corrupt",
              "latency(us)", "retx", "crc-drop", "delivered");
  for (auto [drop, corrupt] : std::vector<std::pair<double, double>>{
           {0.0, 0.0}, {0.001, 0.0005}, {0.01, 0.005}, {0.05, 0.02},
           {0.10, 0.05}}) {
    const LossResult r = measure(drop, corrupt);
    std::printf("%9.2f%% %9.2f%% | %14.2f %8llu %9llu | %s\n", drop * 100,
                corrupt * 100, r.mean_latency_us,
                static_cast<unsigned long long>(r.retransmissions),
                static_cast<unsigned long long>(r.crc_drops),
                r.all_delivered ? "ALL OK" : "CORRUPTED");
  }
  std::printf(
      "\nShape check: latency and retransmissions grow with the fault\n"
      "rate; payload integrity and ordering never break.\n");
}

}  // namespace
}  // namespace nicmcast::bench

int main() {
  nicmcast::bench::run();
  return 0;
}

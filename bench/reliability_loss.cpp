// Reliability under injected faults: multicast latency, retransmission
// volume and delivery success across packet drop/corruption rates and
// fault-injector families.
//
// The paper's scheme is "reliable" by construction (§5: per-group sequence
// numbers, per-child cumulative acks, timeout + selective retransmission);
// this bench quantifies the cost of that reliability as the fabric degrades
// — real Myrinet's bit-error rate is tiny, but the machinery must hold up
// far beyond it.  Beyond i.i.d. loss, the sweep now covers the stateful
// injectors the chaos soak uses: Gilbert–Elliott bursts (same stationary
// drop rate, very different clustering), loss confined to the ack path
// (data always arrives; only the sender's evidence is destroyed), and
// periodic total blackouts (every retransmission inside the window dies).
#include <cstdio>
#include <utility>
#include <vector>

#include "harness/bench_io.hpp"
#include "harness/sweep.hpp"

namespace nicmcast::bench {
namespace {

using namespace nicmcast::harness;

void run(const BenchOptions& options) {
  print_header(
      "Reliability — NIC-based multicast under fabric faults (8 nodes, "
      "2KB, 30 rounds)",
      "Every payload must arrive intact and in order at every node, under "
      "any loss pattern.");
  const std::vector<std::pair<double, double>> rates{
      {0.001, 0.0005}, {0.01, 0.005}, {0.05, 0.02}, {0.10, 0.05}};
  const std::vector<FaultFamily> families{
      FaultFamily::kUniform, FaultFamily::kBurst, FaultFamily::kAckTargeted,
      FaultFamily::kBlackout};

  RunSpec base;
  base.experiment = Experiment::kGmMulticast;
  base.nodes = 8;
  base.message_bytes = 2048;
  base.algo = Algo::kNicBased;
  base.tree = TreeShape::kBinomial;
  base.warmup = 0;  // fault-recovery cost is part of the measurement
  base.iterations = options.iterations_or(30);
  base.nic.retransmit_timeout = sim::usec(300);  // shorten recovery for bench

  // One clean baseline row, then the full family x rate grid.
  std::vector<RunSpec> specs;
  specs.push_back(base);
  const auto grid =
      Sweep(base)
          .axis(families,
                [](RunSpec& s, FaultFamily f) { s.faults = f; })
          .axis(rates,
                [](RunSpec& s, const std::pair<double, double>& r) {
                  s.loss_rate = r.first;
                  s.corrupt_rate = r.second;
                })
          .build();
  specs.insert(specs.end(), grid.begin(), grid.end());
  const auto results = ParallelRunner(runner_options(options)).run(specs);

  std::printf("%-13s %7s %8s | %14s %8s %9s | %s\n", "faults", "drop",
              "corrupt", "latency(us)", "retx", "crc-drop", "delivered");
  for (const RunResult& r : results) {
    std::printf("%-13s %6.2f%% %7.2f%% | %14.2f %8llu %9llu | %s\n",
                std::string(to_string(r.spec.faults)).c_str(),
                r.spec.loss_rate * 100, r.spec.corrupt_rate * 100, r.mean_us(),
                static_cast<unsigned long long>(r.nic_totals.retransmissions),
                static_cast<unsigned long long>(r.nic_totals.crc_drops),
                r.metric("delivered") == 1.0 ? "ALL OK" : "CORRUPTED");
  }
  std::printf(
      "\nShape check: latency and retransmissions grow with the fault rate\n"
      "in every family — bursts cluster the recovery cost, ack-path loss\n"
      "turns into pure duplicate suppression, blackouts stall whole rounds\n"
      "— while payload integrity and ordering never break.\n");

  write_bench_json("reliability_loss", options, results);
}

}  // namespace
}  // namespace nicmcast::bench

int main(int argc, char** argv) {
  nicmcast::bench::run(
      nicmcast::harness::parse_bench_options(argc, argv, "reliability_loss"));
  return 0;
}

// Extension — NIC-level barrier (paper §7 / Buntinas et al., "Fast
// NIC-Level Barrier over Myrinet/GM"): arrivals gathered and the release
// propagated entirely in NIC firmware, vs the host-level dissemination
// barrier, under increasing process skew.
//
// Unlike the multicast, a barrier's blocking time is inherently straggler-
// bound — every rank must wait for the last arrival no matter who relays
// it.  So the NIC barrier's advantage is in the synchronisation machinery
// itself (one firmware gather/release vs log2(n) host-level exchange
// rounds): large at zero skew, and washed out as skew dominates — the NIC
// version never pays more, but cannot make stragglers arrive earlier.
#include <cstdio>
#include <vector>

#include "harness/bench_io.hpp"
#include "harness/sweep.hpp"

namespace nicmcast::bench {
namespace {

using namespace nicmcast::harness;

void run(const BenchOptions& options) {
  print_header(
      "Extension — NIC-level barrier vs host-level dissemination",
      "Paper §7 / ref [6]: gather+release in firmware; hosts only enter "
      "and leave.");
  const std::vector<std::size_t> node_counts{4, 8, 16, 32};
  const std::vector<double> skews{0.0, 100.0, 400.0};
  const std::vector<Algo> algos{Algo::kHostBased, Algo::kNicBased};

  RunSpec base;
  base.experiment = Experiment::kBarrier;
  base.iterations = options.iterations_or(20);

  // Part 1: wall latency per barrier at zero skew, across node counts.
  auto specs = Sweep(base).node_counts(node_counts).algos(algos).build();
  const std::size_t part2_at = specs.size();

  // Part 2: mean blocked time under skew at 16 nodes.
  base.nodes = 16;
  for (RunSpec& s :
       Sweep(base).skews_us(skews).algos(algos).build()) {
    specs.push_back(std::move(s));
  }
  const auto results = ParallelRunner(runner_options(options)).run(specs);

  std::printf("--- latency per barrier, no skew ---\n");
  std::printf("%6s | %10s | %10s | %6s\n", "nodes", "host(us)", "nic(us)",
              "factor");
  for (std::size_t ni = 0; ni < node_counts.size(); ++ni) {
    const double host = results[ni * 2].metric("wall_us_per_round");
    const double nic = results[ni * 2 + 1].metric("wall_us_per_round");
    std::printf("%6zu | %10.2f | %10.2f | %6.2f\n", node_counts[ni], host,
                nic, host / nic);
  }

  std::printf("\n--- mean time blocked in the barrier under skew "
              "(16 nodes) ---\n");
  std::printf("%10s | %10s | %10s | %6s\n", "skew(us)", "host(us)",
              "nic(us)", "factor");
  for (std::size_t ki = 0; ki < skews.size(); ++ki) {
    const double host = results[part2_at + ki * 2].mean_us();
    const double nic = results[part2_at + ki * 2 + 1].mean_us();
    std::printf("%10.0f | %10.2f | %10.2f | %6.2f\n", skews[ki], host, nic,
                host / nic);
  }
  std::printf(
      "\nShape check: the NIC barrier wins on latency, more so at larger\n"
      "node counts; under skew both algorithms converge to the straggler\n"
      "bound (a barrier must wait for the last arrival), with the NIC\n"
      "version never slower.\n");

  write_bench_json("ext_nic_barrier", options, results);
}

}  // namespace
}  // namespace nicmcast::bench

int main(int argc, char** argv) {
  nicmcast::bench::run(
      nicmcast::harness::parse_bench_options(argc, argv, "ext_nic_barrier"));
  return 0;
}

// Extension — NIC-level barrier (paper §7 / Buntinas et al., "Fast
// NIC-Level Barrier over Myrinet/GM"): arrivals gathered and the release
// propagated entirely in NIC firmware, vs the host-level dissemination
// barrier, under increasing process skew.
//
// Unlike the multicast, a barrier's blocking time is inherently straggler-
// bound — every rank must wait for the last arrival no matter who relays
// it.  So the NIC barrier's advantage is in the synchronisation machinery
// itself (one firmware gather/release vs log2(n) host-level exchange
// rounds): large at zero skew, and washed out as skew dominates — the NIC
// version never pays more, but cannot make stragglers arrive earlier.
#include <cstdio>

#include "bench_util.hpp"
#include "mpi/mpi.hpp"

namespace nicmcast::bench {
namespace {

struct Result {
  double latency_us = 0;    // barrier wall time, no skew
  double cpu_us = 0;        // mean time blocked in barrier under skew
};

Result measure(std::size_t nodes, mpi::BarrierAlgorithm algorithm,
               double max_skew_us) {
  gm::Cluster cluster(gm::ClusterConfig{.nodes = nodes});
  mpi::MpiConfig config;
  config.barrier_algorithm = algorithm;
  mpi::World world(cluster, config);

  const int rounds = 20;
  auto wall = std::make_shared<sim::Duration>();
  auto cpu = std::make_shared<sim::OnlineStats>();
  world.launch([wall, cpu, rounds, max_skew_us,
                algorithm](mpi::Process& self) -> sim::Task<void> {
    sim::Rng rng(42 + self.rank());
    co_await self.barrier(self.world_comm(), algorithm);  // bootstrap
    const sim::TimePoint start = self.simulator().now();
    for (int i = 0; i < rounds; ++i) {
      if (max_skew_us > 0 && self.rank() != 0) {
        co_await self.simulator().wait(
            sim::usec(rng.uniform(0, max_skew_us)));
      }
      const sim::TimePoint entered = self.simulator().now();
      co_await self.barrier(self.world_comm(), algorithm);
      cpu->add((self.simulator().now() - entered).microseconds());
    }
    if (self.rank() == 0) *wall = self.simulator().now() - start;
  });
  world.run();
  return Result{wall->microseconds() / rounds, cpu->mean()};
}

void run() {
  print_header(
      "Extension — NIC-level barrier vs host-level dissemination",
      "Paper §7 / ref [6]: gather+release in firmware; hosts only enter "
      "and leave.");
  std::printf("--- latency per barrier, no skew ---\n");
  std::printf("%6s | %10s | %10s | %6s\n", "nodes", "host(us)", "nic(us)",
              "factor");
  for (std::size_t nodes : {4u, 8u, 16u, 32u}) {
    const double host =
        measure(nodes, mpi::BarrierAlgorithm::kDissemination, 0).latency_us;
    const double nic =
        measure(nodes, mpi::BarrierAlgorithm::kNicBased, 0).latency_us;
    std::printf("%6zu | %10.2f | %10.2f | %6.2f\n", nodes, host, nic,
                host / nic);
  }
  std::printf("\n--- mean time blocked in the barrier under skew "
              "(16 nodes) ---\n");
  std::printf("%10s | %10s | %10s | %6s\n", "skew(us)", "host(us)",
              "nic(us)", "factor");
  for (double skew : {0.0, 100.0, 400.0}) {
    const double host =
        measure(16, mpi::BarrierAlgorithm::kDissemination, skew).cpu_us;
    const double nic =
        measure(16, mpi::BarrierAlgorithm::kNicBased, skew).cpu_us;
    std::printf("%10.0f | %10.2f | %10.2f | %6.2f\n", skew, host, nic,
                host / nic);
  }
  std::printf(
      "\nShape check: the NIC barrier wins on latency, more so at larger\n"
      "node counts; under skew both algorithms converge to the straggler\n"
      "bound (a barrier must wait for the last arrival), with the NIC\n"
      "version never slower.\n");
}

}  // namespace
}  // namespace nicmcast::bench

int main() {
  nicmcast::bench::run();
  return 0;
}

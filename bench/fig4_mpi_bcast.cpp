// Figure 4: MPI-level broadcast latency, NIC-based multicast vs the
// traditional host-based binomial MPI_Bcast, for 4, 8 and 16 ranks.
//
// Paper landmarks: improvement up to 2.02x at 8 KB over 16 nodes; the
// largest eager message is 16287 B, where the receive-side copy causes a
// final dip.  Messages above the eager limit use the rendezvous host path
// in both configurations.
#include <cstdio>
#include <vector>

#include "harness/bench_io.hpp"
#include "harness/experiment_util.hpp"
#include "harness/sweep.hpp"

namespace nicmcast::bench {
namespace {

using namespace nicmcast::harness;

void run(const BenchOptions& options) {
  print_header(
      "Figure 4 — MPI-level MPI_Bcast: NIC-based vs host-based",
      "Paper: up to 2.02x at 8KB over 16 nodes; eager limit 16287B (dip "
      "from the receive-side copy).");
  const std::vector<std::size_t> node_counts{4, 8, 16};
  std::vector<std::size_t> sizes = paper_sizes();
  sizes.back() = 16287;  // the largest eager-mode message (paper §6.2)

  RunSpec base;
  base.experiment = Experiment::kMpiBcast;
  base.warmup = 3;  // covers demand-driven group creation
  base.iterations = options.iterations_or(25);

  const auto specs = Sweep(base)
                         .message_sizes(sizes)
                         .node_counts(node_counts)
                         .algos({Algo::kHostBased, Algo::kNicBased})
                         .build();
  const auto results = ParallelRunner(runner_options(options)).run(specs);

  std::printf("%8s", "size(B)");
  for (std::size_t n : node_counts) {
    std::printf(" | HB-%-2zu(us) NB-%-2zu(us) factor", n, n);
  }
  std::printf("\n");

  for (std::size_t si = 0; si < sizes.size(); ++si) {
    std::printf("%8zu", sizes[si]);
    for (std::size_t ni = 0; ni < node_counts.size(); ++ni) {
      const std::size_t idx = (si * node_counts.size() + ni) * 2;
      const double hb = results[idx].mean_us();
      const double nb = results[idx + 1].mean_us();
      std::printf(" | %9.2f %9.2f %6.2f", hb, nb, hb / nb);
    }
    std::printf("\n");
  }
  std::printf(
      "\nShape check: mirrors the GM-level trend (Figure 5); the final\n"
      "row (16287B, the eager limit) shows the copy-cost dip.\n");

  write_bench_json("fig4_mpi_bcast", options, results);
}

}  // namespace
}  // namespace nicmcast::bench

int main(int argc, char** argv) {
  nicmcast::bench::run(
      nicmcast::harness::parse_bench_options(argc, argv, "fig4_mpi_bcast"));
  return 0;
}

// Figure 4: MPI-level broadcast latency, NIC-based multicast vs the
// traditional host-based binomial MPI_Bcast, for 4, 8 and 16 ranks.
//
// Paper landmarks: improvement up to 2.02x at 8 KB over 16 nodes; the
// largest eager message is 16287 B, where the receive-side copy causes a
// final dip.  Messages above the eager limit use the rendezvous host path
// in both configurations.
#include <cstdio>

#include "bench_util.hpp"
#include "mpi/mpi.hpp"

namespace nicmcast::bench {
namespace {

double measure_us(std::size_t nodes, std::size_t bytes,
                  mpi::BcastAlgorithm algorithm) {
  gm::Cluster cluster(gm::ClusterConfig{.nodes = nodes});
  mpi::MpiConfig config;
  config.bcast_algorithm = algorithm;
  mpi::World world(cluster, config);

  const int warmup = 3;  // covers demand-driven group creation
  const int iterations = 25;
  auto barrier = std::make_shared<SimBarrier>(nodes);
  auto done = std::make_shared<std::vector<sim::TimePoint>>(
      warmup + iterations);
  auto started = std::make_shared<std::vector<sim::TimePoint>>(
      warmup + iterations);

  world.launch([barrier, done, started, bytes, warmup,
                iterations](mpi::Process& self) -> sim::Task<void> {
    for (int iter = 0; iter < warmup + iterations; ++iter) {
      co_await barrier->arrive();
      if (self.rank() == 0) (*started)[iter] = self.simulator().now();
      mpi::Payload data(bytes);
      if (self.rank() == 0) {
        data = make_payload(bytes, static_cast<std::uint8_t>(iter));
      }
      co_await self.bcast(data, 0);
      if (data != make_payload(bytes, static_cast<std::uint8_t>(iter))) {
        throw std::logic_error("fig4: corrupted broadcast");
      }
      auto& d = (*done)[iter];
      d = std::max(d, self.simulator().now());
    }
  });
  world.run();

  sim::OnlineStats stats;
  for (int iter = warmup; iter < warmup + iterations; ++iter) {
    stats.add(((*done)[iter] - (*started)[iter]).microseconds());
  }
  return stats.mean();
}

void run() {
  print_header(
      "Figure 4 — MPI-level MPI_Bcast: NIC-based vs host-based",
      "Paper: up to 2.02x at 8KB over 16 nodes; eager limit 16287B (dip "
      "from the receive-side copy).");
  const std::vector<std::size_t> node_counts{4, 8, 16};
  std::vector<std::size_t> sizes = paper_sizes();
  sizes.back() = 16287;  // the largest eager-mode message (paper §6.2)

  std::printf("%8s", "size(B)");
  for (std::size_t n : node_counts) {
    std::printf(" | HB-%-2zu(us) NB-%-2zu(us) factor", n, n);
  }
  std::printf("\n");

  for (std::size_t bytes : sizes) {
    std::printf("%8zu", bytes);
    for (std::size_t n : node_counts) {
      const double hb = measure_us(n, bytes, mpi::BcastAlgorithm::kHostBased);
      const double nb = measure_us(n, bytes, mpi::BcastAlgorithm::kNicBased);
      std::printf(" | %9.2f %9.2f %6.2f", hb, nb, hb / nb);
    }
    std::printf("\n");
  }
  std::printf(
      "\nShape check: mirrors the GM-level trend (Figure 5); the final\n"
      "row (16287B, the eager limit) shows the copy-cost dip.\n");
}

}  // namespace
}  // namespace nicmcast::bench

int main() {
  nicmcast::bench::run();
  return 0;
}

// nicmcast command-line experiment driver.
//
// Runs one configurable experiment on the simulated Myrinet/GM cluster and
// prints a result line (or a sweep table).  Everything the figure benches
// do, but parameterised from the shell:
//
//   nicmcast_cli mcast   --nodes 16 --size 512 --algo nic --tree postal
//   nicmcast_cli mcast   --nodes 16 --size 512 --algo host --loss 0.02
//   nicmcast_cli bcast   --nodes 16 --size 8192 --algo host --skew 400
//   nicmcast_cli barrier --nodes 32 --algo nic
//   nicmcast_cli sweep   --nodes 16 --iters 30
//
// Exit code 0 on success; 2 on bad usage.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "mcast/bcast.hpp"
#include "mcast/postal_tree.hpp"
#include "mpi/skew.hpp"
#include "sim/stats.hpp"

using namespace nicmcast;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  [[nodiscard]] std::size_t get_u(const std::string& key,
                                  std::size_t fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : std::stoul(it->second);
  }
  [[nodiscard]] double get_d(const std::string& key, double fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : std::stod(it->second);
  }
};

int usage() {
  std::fprintf(stderr,
               "usage: nicmcast_cli <mcast|bcast|barrier|sweep> [options]\n"
               "  common: --nodes N --size BYTES --iters K --loss P "
               "--seed S\n"
               "  mcast:  --algo nic|host --tree postal|binomial|chain|flat\n"
               "  bcast:  --algo nic|host --skew AVG_US (MPI level)\n"
               "  barrier:--algo nic|host\n");
  return 2;
}

mcast::Tree build_tree(const std::string& shape, std::size_t nodes,
                       std::size_t size) {
  std::vector<net::NodeId> dests;
  for (net::NodeId i = 1; i < nodes; ++i) dests.push_back(i);
  if (shape == "binomial") return mcast::build_binomial_tree(0, dests);
  if (shape == "chain") return mcast::build_chain_tree(0, dests);
  if (shape == "flat") return mcast::build_flat_tree(0, dests);
  return mcast::build_postal_tree(
      0, dests,
      mcast::PostalCostModel::nic_based(size, nic::NicConfig{},
                                        net::NetworkConfig{}));
}

double run_gm_mcast(std::size_t nodes, std::size_t size, bool nic_based,
                    const std::string& tree_shape, double loss,
                    std::uint64_t seed, int iters) {
  gm::ClusterConfig config;
  config.nodes = nodes;
  config.seed = seed;
  config.wiring = nodes > 16 ? gm::ClusterConfig::Wiring::kClos
                             : gm::ClusterConfig::Wiring::kSingleSwitch;
  gm::Cluster cluster(config);
  if (loss > 0) {
    cluster.network().set_fault_injector(std::make_unique<net::RandomFaults>(
        loss, loss / 2, sim::Rng(seed)));
  }
  const mcast::Tree tree =
      build_tree(nic_based ? tree_shape : "binomial", nodes, size);
  if (nic_based) mcast::install_group(cluster, tree, 1);
  const int warmup = 2;
  for (net::NodeId n = 1; n < nodes; ++n) {
    cluster.port(n).provide_receive_buffers(warmup + iters,
                                            std::max<std::size_t>(size, 64));
  }
  auto stats = std::make_shared<sim::OnlineStats>();
  auto count = std::make_shared<int>(0);
  auto start = std::make_shared<sim::TimePoint>();
  auto done = std::make_shared<sim::TimePoint>();
  auto gate = std::make_shared<sim::Gate>();
  // One extra round-trip through the barrier finalises the last
  // iteration's `done` before it is sampled.
  cluster.run_on_all([=, &tree](gm::Cluster& cl,
                                net::NodeId me) -> sim::Task<void> {
    for (int iter = 0; iter <= warmup + iters; ++iter) {
      if (++*count == static_cast<int>(cl.size())) {
        *count = 0;
        gate->release();
      } else {
        co_await gate->wait();
      }
      // Everyone has passed the previous iteration: its `done` is final.
      if (me == 0 && iter > warmup) {
        stats->add((*done - *start).microseconds());
      }
      if (iter == warmup + iters) co_return;
      if (me == 0) {
        *start = cl.simulator().now();
        *done = cl.simulator().now();
      }
      gm::Payload data;
      if (me == 0) data = gm::Payload(size, std::byte{0x11});
      gm::Payload got;
      if (nic_based) {
        got = co_await mcast::nic_bcast(cl.port(me), tree, 1, std::move(data),
                                        static_cast<std::uint32_t>(iter));
      } else {
        got = co_await mcast::host_bcast(cl.port(me), tree, std::move(data),
                                         static_cast<std::uint32_t>(iter));
      }
      if (got.size() != size) throw std::logic_error("payload corrupted");
      *done = std::max(*done, cl.simulator().now());
    }
  });
  cluster.run();
  return stats->mean();
}

int cmd_mcast(const Args& args) {
  const std::size_t nodes = args.get_u("nodes", 16);
  const std::size_t size = args.get_u("size", 512);
  const bool nic_based = args.get("algo", "nic") == "nic";
  const std::string tree = args.get("tree", "postal");
  const double loss = args.get_d("loss", 0.0);
  const auto seed = static_cast<std::uint64_t>(args.get_u("seed", 1));
  const int iters = static_cast<int>(args.get_u("iters", 20));
  const double us =
      run_gm_mcast(nodes, size, nic_based, tree, loss, seed, iters);
  std::printf("gm-mcast nodes=%zu size=%zuB algo=%s tree=%s loss=%.3f: "
              "%.2f us\n",
              nodes, size, nic_based ? "nic" : "host",
              nic_based ? tree.c_str() : "binomial", loss, us);
  return 0;
}

int cmd_bcast(const Args& args) {
  mpi::SkewConfig config;
  config.nodes = args.get_u("nodes", 16);
  config.message_bytes = args.get_u("size", 4);
  config.max_skew = sim::usec(args.get_d("skew", 0.0) * 4.0);
  config.iterations = static_cast<int>(args.get_u("iters", 30));
  config.algorithm = args.get("algo", "nic") == "nic"
                         ? mpi::BcastAlgorithm::kNicBased
                         : mpi::BcastAlgorithm::kHostBased;
  config.seed = static_cast<std::uint64_t>(args.get_u("seed", 7));
  const auto result = mpi::run_skew_experiment(config);
  std::printf("mpi-bcast nodes=%zu size=%zuB algo=%s avg-skew=%.0fus: "
              "avg CPU time in MPI_Bcast %.2f us (max %.2f us)\n",
              config.nodes, config.message_bytes,
              config.algorithm == mpi::BcastAlgorithm::kNicBased ? "nic"
                                                                 : "host",
              result.avg_applied_skew_us, result.avg_bcast_cpu_us,
              result.max_bcast_cpu_us);
  return 0;
}

int cmd_barrier(const Args& args) {
  const std::size_t nodes = args.get_u("nodes", 16);
  const bool nic = args.get("algo", "nic") == "nic";
  gm::ClusterConfig cluster_config;
  cluster_config.nodes = nodes;
  cluster_config.wiring = nodes > 16 ? gm::ClusterConfig::Wiring::kClos
                                     : gm::ClusterConfig::Wiring::kSingleSwitch;
  gm::Cluster cluster(cluster_config);
  mpi::MpiConfig config;
  config.barrier_algorithm = nic ? mpi::BarrierAlgorithm::kNicBased
                                 : mpi::BarrierAlgorithm::kDissemination;
  mpi::World world(cluster, config);
  const int rounds = static_cast<int>(args.get_u("iters", 20));
  auto total = std::make_shared<sim::Duration>();
  world.launch([total, rounds](mpi::Process& self) -> sim::Task<void> {
    co_await self.barrier();
    const sim::TimePoint start = self.simulator().now();
    for (int i = 0; i < rounds; ++i) co_await self.barrier();
    if (self.rank() == 0) *total = self.simulator().now() - start;
  });
  world.run();
  std::printf("barrier nodes=%zu algo=%s: %.2f us per round\n", nodes,
              nic ? "nic" : "host", total->microseconds() / rounds);
  return 0;
}

int cmd_sweep(const Args& args) {
  const std::size_t nodes = args.get_u("nodes", 16);
  const int iters = static_cast<int>(args.get_u("iters", 20));
  const double loss = args.get_d("loss", 0.0);
  std::printf("%8s | %10s | %10s | %6s\n", "size(B)", "host(us)", "nic(us)",
              "factor");
  for (std::size_t size : {4u, 64u, 512u, 2048u, 4096u, 8192u, 16384u}) {
    const double hb =
        run_gm_mcast(nodes, size, false, "binomial", loss, 1, iters);
    const double nb = run_gm_mcast(nodes, size, true, "postal", loss, 1,
                                   iters);
    std::printf("%8zu | %10.2f | %10.2f | %6.2f\n", size, hb, nb, hb / nb);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  Args args;
  args.command = argv[1];
  for (int i = 2; i + 1 < argc; i += 2) {
    const char* key = argv[i];
    if (std::strncmp(key, "--", 2) != 0) return usage();
    args.options[key + 2] = argv[i + 1];
  }
  try {
    if (args.command == "mcast") return cmd_mcast(args);
    if (args.command == "bcast") return cmd_bcast(args);
    if (args.command == "barrier") return cmd_barrier(args);
    if (args.command == "sweep") return cmd_sweep(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}

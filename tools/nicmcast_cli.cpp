// nicmcast command-line experiment driver.
//
// Runs one configurable experiment on the simulated Myrinet/GM cluster and
// prints a result line (or a sweep table).  Everything the figure benches
// do, but parameterised from the shell; every command is a RunSpec executed
// by the shared harness, so --json and --threads work everywhere:
//
//   nicmcast_cli mcast   --nodes 16 --size 512 --algo nic --tree postal
//   nicmcast_cli mcast   --nodes 16 --size 512 --algo host --loss 0.02
//   nicmcast_cli bcast   --nodes 16 --size 8192 --algo host --skew 400
//   nicmcast_cli barrier --nodes 32 --algo nic
//   nicmcast_cli sweep   --nodes 16 --iters 30 --threads 4 --json out.json
//
// Exit code 0 on success; 2 on bad usage.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "harness/bench_io.hpp"
#include "harness/sweep.hpp"

using namespace nicmcast;
using namespace nicmcast::harness;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  [[nodiscard]] std::size_t get_u(const std::string& key,
                                  std::size_t fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : std::stoul(it->second);
  }
  [[nodiscard]] double get_d(const std::string& key, double fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : std::stod(it->second);
  }
};

int usage() {
  std::fprintf(stderr,
               "usage: nicmcast_cli <mcast|bcast|barrier|sweep> [options]\n"
               "  common: --nodes N --size BYTES --iters K --loss P "
               "--seed S\n"
               "          --threads N --json PATH\n"
               "  mcast:  --algo nic|host --tree postal|binomial|chain|flat\n"
               "  bcast:  --algo nic|host --skew AVG_US (MPI level)\n"
               "  barrier:--algo nic|host\n");
  return 2;
}

TreeShape parse_tree(const std::string& shape) {
  if (shape == "binomial") return TreeShape::kBinomial;
  if (shape == "chain") return TreeShape::kChain;
  if (shape == "flat") return TreeShape::kFlat;
  return TreeShape::kPostal;
}

/// Shared flags -> BenchOptions; the --seed is honoured verbatim for the
/// single-run commands (derive_seeds off) and used as the derivation base
/// for the sweep.
BenchOptions bench_options(const Args& args) {
  BenchOptions options;
  options.threads = static_cast<unsigned>(args.get_u("threads", 1));
  if (options.threads == 0) options.threads = 1;
  options.json_path = args.get("json", "");
  options.base_seed = static_cast<std::uint64_t>(args.get_u("seed", 1));
  return options;
}

std::vector<RunResult> run_single(const RunSpec& spec,
                                  const BenchOptions& options) {
  RunnerOptions runner = runner_options(options);
  runner.derive_seeds = false;  // honour --seed exactly
  return ParallelRunner(runner).run({spec});
}

int cmd_mcast(const Args& args) {
  const BenchOptions options = bench_options(args);
  RunSpec spec;
  spec.experiment = Experiment::kGmMulticast;
  spec.nodes = args.get_u("nodes", 16);
  spec.message_bytes = args.get_u("size", 512);
  spec.algo = args.get("algo", "nic") == "nic" ? Algo::kNicBased
                                               : Algo::kHostBased;
  spec.tree = spec.algo == Algo::kNicBased
                  ? parse_tree(args.get("tree", "postal"))
                  : TreeShape::kBinomial;
  spec.loss_rate = args.get_d("loss", 0.0);
  spec.corrupt_rate = spec.loss_rate / 2;
  spec.seed = options.base_seed;
  spec.warmup = 2;
  spec.iterations = static_cast<int>(args.get_u("iters", 20));
  const auto results = run_single(spec, options);
  std::printf("gm-mcast nodes=%zu size=%zuB algo=%s tree=%s loss=%.3f: "
              "%.2f us\n",
              spec.nodes, spec.message_bytes,
              std::string(to_string(spec.algo)).c_str(),
              std::string(to_string(spec.tree)).c_str(), spec.loss_rate,
              results[0].mean_us());
  write_bench_json("nicmcast_cli_mcast", options, results);
  return 0;
}

int cmd_bcast(const Args& args) {
  const BenchOptions options = bench_options(args);
  RunSpec spec;
  spec.experiment = Experiment::kSkewBcast;
  spec.nodes = args.get_u("nodes", 16);
  spec.message_bytes = args.get_u("size", 4);
  spec.avg_skew_us = args.get_d("skew", 0.0);
  spec.iterations = static_cast<int>(args.get_u("iters", 30));
  spec.algo = args.get("algo", "nic") == "nic" ? Algo::kNicBased
                                               : Algo::kHostBased;
  spec.seed = static_cast<std::uint64_t>(args.get_u("seed", 7));
  const auto results = run_single(spec, options);
  std::printf("mpi-bcast nodes=%zu size=%zuB algo=%s avg-skew=%.0fus: "
              "avg CPU time in MPI_Bcast %.2f us (max %.2f us)\n",
              spec.nodes, spec.message_bytes,
              std::string(to_string(spec.algo)).c_str(),
              results[0].metric("avg_applied_skew_us"),
              results[0].metric("avg_bcast_cpu_us"),
              results[0].metric("max_bcast_cpu_us"));
  write_bench_json("nicmcast_cli_bcast", options, results);
  return 0;
}

int cmd_barrier(const Args& args) {
  const BenchOptions options = bench_options(args);
  RunSpec spec;
  spec.experiment = Experiment::kBarrier;
  spec.nodes = args.get_u("nodes", 16);
  spec.algo = args.get("algo", "nic") == "nic" ? Algo::kNicBased
                                               : Algo::kHostBased;
  spec.seed = options.base_seed;
  spec.iterations = static_cast<int>(args.get_u("iters", 20));
  const auto results = run_single(spec, options);
  std::printf("barrier nodes=%zu algo=%s: %.2f us per round\n", spec.nodes,
              std::string(to_string(spec.algo)).c_str(),
              results[0].metric("wall_us_per_round"));
  write_bench_json("nicmcast_cli_barrier", options, results);
  return 0;
}

int cmd_sweep(const Args& args) {
  const BenchOptions options = bench_options(args);
  const std::vector<std::size_t> sizes{4, 64, 512, 2048, 4096, 8192, 16384};

  RunSpec base;
  base.experiment = Experiment::kGmMulticast;
  base.nodes = args.get_u("nodes", 16);
  base.loss_rate = args.get_d("loss", 0.0);
  base.corrupt_rate = base.loss_rate / 2;
  base.warmup = 2;
  base.iterations = static_cast<int>(args.get_u("iters", 20));

  const auto specs =
      Sweep(base)
          .message_sizes(sizes)
          .axis(std::vector<Algo>{Algo::kHostBased, Algo::kNicBased},
                [](RunSpec& s, Algo a) {
                  s.algo = a;
                  s.tree = a == Algo::kNicBased ? TreeShape::kPostal
                                                : TreeShape::kBinomial;
                })
          .build();
  const auto results = ParallelRunner(runner_options(options)).run(specs);

  std::printf("%8s | %10s | %10s | %6s\n", "size(B)", "host(us)", "nic(us)",
              "factor");
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    const double hb = results[si * 2].mean_us();
    const double nb = results[si * 2 + 1].mean_us();
    std::printf("%8zu | %10.2f | %10.2f | %6.2f\n", sizes[si], hb, nb,
                hb / nb);
  }
  write_bench_json("nicmcast_cli_sweep", options, results);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  Args args;
  args.command = argv[1];
  for (int i = 2; i + 1 < argc; i += 2) {
    const char* key = argv[i];
    if (std::strncmp(key, "--", 2) != 0) return usage();
    args.options[key + 2] = argv[i + 1];
  }
  try {
    if (args.command == "mcast") return cmd_mcast(args);
    if (args.command == "bcast") return cmd_bcast(args);
    if (args.command == "barrier") return cmd_barrier(args);
    if (args.command == "sweep") return cmd_sweep(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}

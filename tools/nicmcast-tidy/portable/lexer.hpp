// Minimal C++ tokenizer for the portable nicmcast-* analyzer.
//
// The real enforcement engine is the clang-tidy plugin next door in
// plugin/ — full semantic analysis over the AST.  This lexer exists so the
// same check family can run where no clang development environment is
// available (the default build container has only g++): it produces a
// token stream with source positions, strips comments and literals, and
// records `NOLINT(<check>): reason`-style suppressions (current-line and
// next-line forms) so both engines honour the same annotations.  It is deliberately not a preprocessor: directives are
// skipped line-wise, macros are not expanded.  The checks built on top are
// conservative textual approximations of the AST checks and share their
// names, fixtures, and diagnostics format.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace nicmcast::tidy {

struct Token {
  enum class Kind {
    kIdentifier,  // identifiers and keywords alike
    kNumber,
    kString,    // string literal (any encoding prefix, raw or not)
    kCharLit,   // character literal
    kPunct,     // one operator/punctuator per token ("::", "->", "<=", ...)
    kEndOfFile,
  };
  Kind kind = Kind::kEndOfFile;
  std::string_view text;  // view into the lexed source
  int line = 0;           // 1-based
  int col = 0;            // 1-based
};

/// One `NOLINT(<check>)`-family annotation.  `checks` empty means "all
/// checks" (a bare suppression — which nicmcast-bare-nolint rejects).
struct Nolint {
  int line = 0;  // the line the suppression applies to
  std::vector<std::string> checks;
  // Metadata for nicmcast-bare-nolint.  `comment_line`/`col` locate the
  // keyword itself (for next-line suppressions they differ from `line`);
  // `has_checks` is true only for a non-empty explicit check list, and
  // `has_justification` when prose follows the list on the same comment.
  int comment_line = 0;
  int col = 1;
  bool has_checks = false;
  bool has_justification = false;
};

struct LexResult {
  std::vector<Token> tokens;  // terminated by a kEndOfFile token
  std::vector<Nolint> nolints;
};

/// Tokenizes `source`.  The returned tokens view into `source`, which must
/// outlive the result.  Comments, whitespace and preprocessor directives
/// are consumed; suppression comments (current-line and next-line forms)
/// are recorded with the line they suppress.
[[nodiscard]] LexResult lex(std::string_view source);

/// True when `nolints` suppresses `check` on `line`.
[[nodiscard]] bool is_suppressed(const std::vector<Nolint>& nolints, int line,
                                 std::string_view check);

}  // namespace nicmcast::tidy

// The nicmcast-* determinism- and concurrency-contract checks, portable
// engine.
//
// Nine checks.  Eight mirror the clang-tidy plugin in ../plugin (same
// names, same fixtures, same `NOLINT(<check>): reason` annotations); the
// ninth, nicmcast-bare-nolint, audits the annotations themselves and is
// portable-engine-only:
//
//   nicmcast-nondeterministic-iteration  range-for over an unordered
//       container whose body feeds an ordering-sensitive sink (schedules
//       events, emits trace, appends to a log) — iteration order leaks
//       into event_order_hash.
//   nicmcast-pointer-order               ordered containers keyed on
//       pointers, std::hash<T*>, relational comparisons of raw pointers,
//       reinterpret_cast pointer-value folds — address-dependent order.
//   nicmcast-wall-clock                  std::chrono::*_clock::now, rand,
//       std::random_device, argless time()/clock() outside src/harness/
//       seeding — host time is not simulated time.
//   nicmcast-descriptor-escape           a DescriptorRef or net::Buffer
//       borrowed in a completion callback escaping by raw pointer or
//       by-reference capture into work that outlives the callback.
//   nicmcast-inline-function-capture     sim::InlineFunction captures
//       whose lower-bound size already exceeds the inline budget, or that
//       capture raw pooled pointers by value.
//   nicmcast-memory-order-audit          std::atomic operations that rely
//       on the implicit seq_cst default instead of passing an explicit
//       std::memory_order (including ++/--/= operator sugar), and relaxed
//       loads guarding a branch that publishes non-atomic state.
//   nicmcast-shard-state-escape          non-atomic members written from a
//       worker-thread lambda without a channel or lock in between —
//       shard-confined state escaping its owner.
//   nicmcast-thread-nondeterminism       thread_local state, thread-id
//       queries (std::this_thread::get_id, pthread_self, gettid) and
//       std::thread::id-keyed types: results that vary with --shards.
//   nicmcast-bare-nolint                 a suppression comment that names
//       no specific check or carries no trailing justification; it must
//       read `NOLINT(<check>): reason` so the waiver stays reviewable.
//
// The engine is two-pass: collect_declarations() over every input file
// builds a name -> kind table (so auditor.cpp's loop over a member
// declared in nic.hpp still resolves), then run_checks() walks each file's
// token stream.  Everything here is a conservative textual approximation;
// the clang plugin is the precise implementation.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "lexer.hpp"

namespace nicmcast::tidy {

struct Diagnostic {
  std::string file;
  int line = 0;
  int col = 0;
  std::string check;
  std::string message;
};

enum class VarKind {
  kOther,
  kUnorderedContainer,  // std::unordered_{map,set,multimap,multiset}
  kPointer,             // any T* declaration
  kBuffer,              // net::Buffer
  kDescriptorRef,       // nic::DescriptorRef
  kPooledRawPtr,        // PacketDescriptor*
  kInlineFunction,      // sim::InlineFunction<Sig, N>
  kAtomic,              // std::atomic<T>
  kThreadContainer,     // std::vector<std::thread | std::jthread>
};

struct VarInfo {
  VarKind kind = VarKind::kOther;
  std::string type_text;  // flattened declaration type, for diagnostics
  std::size_t inline_budget = 0;  // kInlineFunction: the declared N
};

/// Identifier name -> what its declaration(s) said it is.  Name-keyed on
/// purpose: the portable engine has no scopes, so a member declared in one
/// header resolves in every file that iterates it.  Collisions make the
/// checks more conservative, never less.
using SymbolTable = std::unordered_map<std::string, VarInfo>;

struct CheckOptions {
  /// Checks to run; empty means all nine.
  std::vector<std::string> enabled;
  /// Call names that make unordered iteration order observable.  The
  /// defaults cover the simulator's schedulers, tracers and log appends.
  std::vector<std::string> iteration_sinks = {
      "schedule",  "schedule_at", "schedule_after", "emit",
      "emit_trace", "trace",      "send",           "send_packet",
      "post",      "enqueue",     "push_back",      "violation",
  };
  /// Path prefixes (relative, '/'-separated) where nicmcast-wall-clock is
  /// allowed: harness seeding and host-throughput measurement live here.
  std::vector<std::string> wall_clock_allowed = {"src/harness/"};
  /// Default inline budget when an InlineFunction context does not name
  /// one (sim::InlineFunction's default InlineBytes).
  std::size_t inline_budget = 88;
};

/// Pass 1: fold `source`'s declarations into `symbols`.
void collect_declarations(std::string_view source, SymbolTable& symbols);

/// Pass 2: run the enabled checks over one file.  `path` should be
/// repo-relative; it is matched against wall_clock_allowed and echoed in
/// diagnostics.
[[nodiscard]] std::vector<Diagnostic> run_checks(const std::string& path,
                                                 std::string_view source,
                                                 const SymbolTable& symbols,
                                                 const CheckOptions& options);

}  // namespace nicmcast::tidy

// nicmcast_lint — portable driver for the nicmcast-* determinism checks.
//
// Usage:
//   nicmcast_lint [options] file.cpp [file.hpp ...]
//
// Options:
//   --check NAME                 run only NAME (repeatable; default: all)
//   --check-first N              only report findings for the first N
//                                files; the rest contribute declarations
//                                (pass-1 context) but are not checked.
//                                Lets a parallel driver shard pass 2
//                                without losing cross-file symbol kinds.
//   --allow-wall-clock-under P   extra path prefix where wall-clock reads
//                                are allowed (repeatable; src/harness/ is
//                                always allowed)
//   --inline-budget N            default InlineFunction inline bytes (88)
//   --root DIR                   strip DIR/ from reported paths
//   --list-checks                print the check names and exit
//
// Output is one clang-tidy-style line per finding:
//   path:line:col: warning: message [check-name]
// Exit status: 0 clean, 1 findings, 2 usage/IO error.
//
// All input files are scanned for declarations before any is checked, so
// iteration over a member declared in a header is recognized in the .cpp
// that loops over it.  Pass the whole source set for best results (the
// scripts/run_static_analysis.py driver does).
#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "checks.hpp"

namespace {

constexpr const char* kCheckNames[] = {
    "nicmcast-nondeterministic-iteration", "nicmcast-pointer-order",
    "nicmcast-wall-clock", "nicmcast-descriptor-escape",
    "nicmcast-inline-function-capture", "nicmcast-memory-order-audit",
    "nicmcast-shard-state-escape", "nicmcast-thread-nondeterminism",
    "nicmcast-bare-nolint"};

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

std::string relative_to(const std::string& path, const std::string& root) {
  if (root.empty()) return path;
  std::string prefix = root;
  if (prefix.back() != '/') prefix += '/';
  if (path.rfind(prefix, 0) == 0) return path.substr(prefix.size());
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  nicmcast::tidy::CheckOptions options;
  std::string root;
  std::vector<std::string> files;
  std::size_t check_first = 0;  // 0: check every input file

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "nicmcast_lint: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--check") {
      options.enabled.emplace_back(next());
    } else if (arg == "--check-first") {
      check_first = std::stoul(next());
    } else if (arg == "--allow-wall-clock-under") {
      options.wall_clock_allowed.emplace_back(next());
    } else if (arg == "--inline-budget") {
      options.inline_budget = std::stoul(next());
    } else if (arg == "--root") {
      root = next();
    } else if (arg == "--list-checks") {
      for (const char* name : kCheckNames) std::cout << name << "\n";
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: nicmcast_lint [--check NAME]... "
                   "[--check-first N] "
                   "[--allow-wall-clock-under PREFIX]... "
                   "[--inline-budget N] [--root DIR] files...\n";
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "nicmcast_lint: unknown option " << arg << "\n";
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::cerr << "nicmcast_lint: no input files\n";
    return 2;
  }

  // Pass 1: declarations from every file, so cross-file members resolve.
  nicmcast::tidy::SymbolTable symbols;
  std::vector<std::string> sources(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (!read_file(files[i], sources[i])) {
      std::cerr << "nicmcast_lint: cannot read " << files[i] << "\n";
      return 2;
    }
    nicmcast::tidy::collect_declarations(sources[i], symbols);
  }

  // Pass 2: checks (optionally over only the first --check-first files;
  // the rest were pass-1 context).
  const std::size_t check_count =
      check_first == 0 ? files.size() : std::min(check_first, files.size());
  std::size_t findings = 0;
  for (std::size_t i = 0; i < check_count; ++i) {
    const std::string rel = relative_to(files[i], root);
    for (const auto& d : nicmcast::tidy::run_checks(rel, sources[i], symbols,
                                                    options)) {
      std::cout << d.file << ":" << d.line << ":" << d.col
                << ": warning: " << d.message << " [" << d.check << "]\n";
      ++findings;
    }
  }
  return findings == 0 ? 0 : 1;
}

#include "lexer.hpp"

#include <algorithm>
#include <cctype>

namespace nicmcast::tidy {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-char punctuators, longest first so maximal munch works with a
// simple prefix scan.
constexpr std::string_view kPuncts[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "<<", ">>", "<=", ">=", "==",
    "!=", "&&",   "||",  "++",  "--", "+=", "-=", "*=", "/=", "%=", "&=",
    "|=", "^=",   ".*",
};

// True when any justification prose remains in `rest` once the separator
// punctuation after a check list is stripped.
bool has_prose(std::string_view rest) {
  for (const char c : rest) {
    if (std::isalnum(static_cast<unsigned char>(c))) return true;
  }
  return false;
}

// Parses a suppression comment's body starting right after the keyword:
// either nothing (suppress all) or "(check-a, check-b)", optionally
// followed by a justification.  Fills checks/has_checks/has_justification.
void parse_nolint_body(std::string_view rest, Nolint& out) {
  if (rest.empty() || rest.front() != '(') {
    // Bare suppression of every check; any trailing prose is its (still
    // insufficient — there is no check name) justification.
    out.has_justification = has_prose(rest);
    return;
  }
  const std::size_t close = rest.find(')');
  std::string_view body =
      rest.substr(1, close == std::string_view::npos ? rest.size() - 1
                                                     : close - 1);
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t comma = body.find(',', pos);
    if (comma == std::string_view::npos) comma = body.size();
    std::string_view item = body.substr(pos, comma - pos);
    while (!item.empty() && std::isspace(static_cast<unsigned char>(
                                item.front()))) {
      item.remove_prefix(1);
    }
    while (!item.empty() &&
           std::isspace(static_cast<unsigned char>(item.back()))) {
      item.remove_suffix(1);
    }
    if (!item.empty()) out.checks.emplace_back(item);
    pos = comma + 1;
  }
  out.has_checks = !out.checks.empty();
  // An empty check list suppresses nothing per clang-tidy; represent
  // that as a sentinel no one matches.
  if (out.checks.empty()) out.checks.emplace_back("\x01none");
  if (close != std::string_view::npos) {
    out.has_justification = has_prose(rest.substr(close + 1));
  }
}

void scan_comment_for_nolint(std::string_view comment, int line, int col,
                             std::vector<Nolint>& nolints) {
  Nolint n;
  std::size_t keyword_end = 0;
  const std::size_t next = comment.find("NOLINTNEXTLINE");
  if (next != std::string_view::npos) {
    n.line = line + 1;
    n.col = col + static_cast<int>(next);
    keyword_end = next + 14;
  } else {
    const std::size_t plain = comment.find("NOLINT");
    if (plain == std::string_view::npos) return;
    n.line = line;
    n.col = col + static_cast<int>(plain);
    keyword_end = plain + 6;
  }
  n.comment_line = line;
  parse_nolint_body(comment.substr(keyword_end), n);
  nolints.push_back(std::move(n));
}

}  // namespace

LexResult lex(std::string_view src) {
  LexResult out;
  std::size_t i = 0;
  int line = 1;
  int col = 1;
  bool at_line_start = true;  // only whitespace seen so far on this line

  auto advance = [&](std::size_t n) {
    for (std::size_t k = 0; k < n && i < src.size(); ++k, ++i) {
      if (src[i] == '\n') {
        ++line;
        col = 1;
        at_line_start = true;
      } else {
        ++col;
      }
    }
  };

  auto push = [&](Token::Kind kind, std::size_t begin, std::size_t length,
                  int tline, int tcol) {
    out.tokens.push_back(
        Token{kind, src.substr(begin, length), tline, tcol});
  };

  while (i < src.size()) {
    const char c = src[i];

    if (c == '\n' || std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }

    // Preprocessor directive: skip to end of line, honouring backslash
    // continuations.  (Directives never carry determinism contracts.)
    if (c == '#' && at_line_start) {
      while (i < src.size()) {
        const std::size_t eol = src.find('\n', i);
        if (eol == std::string_view::npos) {
          advance(src.size() - i);
          break;
        }
        const bool continued = eol > i && src[eol - 1] == '\\';
        advance(eol - i + 1);
        if (!continued) break;
      }
      continue;
    }
    at_line_start = false;

    // Line comment.
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      std::size_t eol = src.find('\n', i);
      if (eol == std::string_view::npos) eol = src.size();
      scan_comment_for_nolint(src.substr(i, eol - i), line, col,
                              out.nolints);
      advance(eol - i);
      continue;
    }

    // Block comment.  A suppression inside applies to the line the
    // comment starts on (matches clang-tidy's behaviour closely enough).
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      std::size_t end = src.find("*/", i + 2);
      if (end == std::string_view::npos) end = src.size();
      scan_comment_for_nolint(src.substr(i, end - i), line, col,
                              out.nolints);
      advance(std::min(end + 2, src.size()) - i);
      continue;
    }

    // Raw string literal: R"delim( ... )delim", with optional encoding
    // prefix already consumed as part of an identifier-looking token below,
    // so check for the R"-form here first.
    if ((c == 'R' || c == 'L' || c == 'u' || c == 'U') &&
        src.substr(i).size() > 2) {
      std::string_view rest = src.substr(i);
      std::size_t p = 0;
      if (rest[p] == 'u' && p + 1 < rest.size() && rest[p + 1] == '8') ++p;
      if ((rest[p] == 'L' || rest[p] == 'u' || rest[p] == 'U') &&
          p + 1 < rest.size() && rest[p + 1] == 'R') {
        ++p;
      }
      if (rest[p] == 'R' && p + 1 < rest.size() && rest[p + 1] == '"') {
        const std::size_t open = rest.find('(', p + 2);
        if (open != std::string_view::npos) {
          std::string closer = ")";
          closer += std::string(rest.substr(p + 2, open - (p + 2)));
          closer += '"';
          std::size_t close = rest.find(closer, open + 1);
          if (close == std::string_view::npos) close = rest.size();
          const std::size_t total =
              std::min(close + closer.size(), rest.size());
          push(Token::Kind::kString, i, total, line, col);
          advance(total);
          continue;
        }
      }
    }

    // Ordinary string / char literal (with escape handling).
    if (c == '"' || c == '\'') {
      const int tline = line;
      const int tcol = col;
      std::size_t j = i + 1;
      while (j < src.size() && src[j] != c) {
        if (src[j] == '\\' && j + 1 < src.size()) ++j;
        if (src[j] == '\n') break;  // unterminated; resync at newline
        ++j;
      }
      const std::size_t total = std::min(j + 1, src.size()) - i;
      push(c == '"' ? Token::Kind::kString : Token::Kind::kCharLit, i, total,
           tline, tcol);
      advance(total);
      continue;
    }

    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < src.size() && ident_char(src[j])) ++j;
      push(Token::Kind::kIdentifier, i, j - i, line, col);
      advance(j - i);
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < src.size() &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      std::size_t j = i + 1;
      while (j < src.size() &&
             (ident_char(src[j]) || src[j] == '.' || src[j] == '\'' ||
              ((src[j] == '+' || src[j] == '-') &&
               (src[j - 1] == 'e' || src[j - 1] == 'E' || src[j - 1] == 'p' ||
                src[j - 1] == 'P')))) {
        ++j;
      }
      push(Token::Kind::kNumber, i, j - i, line, col);
      advance(j - i);
      continue;
    }

    // Punctuator: longest match from the table, else a single char.
    std::size_t len = 1;
    for (std::string_view p : kPuncts) {
      if (src.substr(i, p.size()) == p) {
        len = p.size();
        break;
      }
    }
    push(Token::Kind::kPunct, i, len, line, col);
    advance(len);
  }

  out.tokens.push_back(Token{Token::Kind::kEndOfFile, {}, line, col});
  return out;
}

bool is_suppressed(const std::vector<Nolint>& nolints, int line,
                   std::string_view check) {
  for (const Nolint& n : nolints) {
    if (n.line != line) continue;
    if (n.checks.empty()) return true;  // bare: suppresses everything
    for (const std::string& c : n.checks) {
      if (c == check || c == "*") return true;
    }
  }
  return false;
}

}  // namespace nicmcast::tidy

#include "lexer.hpp"

#include <algorithm>
#include <cctype>

namespace nicmcast::tidy {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-char punctuators, longest first so maximal munch works with a
// simple prefix scan.
constexpr std::string_view kPuncts[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "<<", ">>", "<=", ">=", "==",
    "!=", "&&",   "||",  "++",  "--", "+=", "-=", "*=", "/=", "%=", "&=",
    "|=", "^=",   ".*",
};

// Parses the body of a NOLINT comment starting right after the keyword:
// either nothing (suppress all) or "(check-a, check-b)".
std::vector<std::string> parse_nolint_checks(std::string_view rest) {
  std::vector<std::string> checks;
  if (rest.empty() || rest.front() != '(') return checks;  // all checks
  const std::size_t close = rest.find(')');
  std::string_view body =
      rest.substr(1, close == std::string_view::npos ? rest.size() - 1
                                                     : close - 1);
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t comma = body.find(',', pos);
    if (comma == std::string_view::npos) comma = body.size();
    std::string_view item = body.substr(pos, comma - pos);
    while (!item.empty() && std::isspace(static_cast<unsigned char>(
                                item.front()))) {
      item.remove_prefix(1);
    }
    while (!item.empty() &&
           std::isspace(static_cast<unsigned char>(item.back()))) {
      item.remove_suffix(1);
    }
    if (!item.empty()) checks.emplace_back(item);
    pos = comma + 1;
  }
  // "NOLINT()" suppresses nothing per clang-tidy; represent that as a
  // sentinel no one matches.
  if (checks.empty()) checks.emplace_back("\x01none");
  return checks;
}

void scan_comment_for_nolint(std::string_view comment, int line,
                             std::vector<Nolint>& nolints) {
  const std::size_t next = comment.find("NOLINTNEXTLINE");
  if (next != std::string_view::npos) {
    nolints.push_back(Nolint{
        line + 1,
        parse_nolint_checks(comment.substr(next + 14))});
    return;
  }
  const std::size_t plain = comment.find("NOLINT");
  if (plain != std::string_view::npos) {
    nolints.push_back(
        Nolint{line, parse_nolint_checks(comment.substr(plain + 6))});
  }
}

}  // namespace

LexResult lex(std::string_view src) {
  LexResult out;
  std::size_t i = 0;
  int line = 1;
  int col = 1;
  bool at_line_start = true;  // only whitespace seen so far on this line

  auto advance = [&](std::size_t n) {
    for (std::size_t k = 0; k < n && i < src.size(); ++k, ++i) {
      if (src[i] == '\n') {
        ++line;
        col = 1;
        at_line_start = true;
      } else {
        ++col;
      }
    }
  };

  auto push = [&](Token::Kind kind, std::size_t begin, std::size_t length,
                  int tline, int tcol) {
    out.tokens.push_back(
        Token{kind, src.substr(begin, length), tline, tcol});
  };

  while (i < src.size()) {
    const char c = src[i];

    if (c == '\n' || std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }

    // Preprocessor directive: skip to end of line, honouring backslash
    // continuations.  (Directives never carry determinism contracts.)
    if (c == '#' && at_line_start) {
      while (i < src.size()) {
        const std::size_t eol = src.find('\n', i);
        if (eol == std::string_view::npos) {
          advance(src.size() - i);
          break;
        }
        const bool continued = eol > i && src[eol - 1] == '\\';
        advance(eol - i + 1);
        if (!continued) break;
      }
      continue;
    }
    at_line_start = false;

    // Line comment.
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      std::size_t eol = src.find('\n', i);
      if (eol == std::string_view::npos) eol = src.size();
      scan_comment_for_nolint(src.substr(i, eol - i), line, out.nolints);
      advance(eol - i);
      continue;
    }

    // Block comment.  A NOLINT inside applies to the line the comment
    // starts on (matches clang-tidy's behaviour closely enough).
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      std::size_t end = src.find("*/", i + 2);
      if (end == std::string_view::npos) end = src.size();
      scan_comment_for_nolint(src.substr(i, end - i), line, out.nolints);
      advance(std::min(end + 2, src.size()) - i);
      continue;
    }

    // Raw string literal: R"delim( ... )delim", with optional encoding
    // prefix already consumed as part of an identifier-looking token below,
    // so check for the R"-form here first.
    if ((c == 'R' || c == 'L' || c == 'u' || c == 'U') &&
        src.substr(i).size() > 2) {
      std::string_view rest = src.substr(i);
      std::size_t p = 0;
      if (rest[p] == 'u' && p + 1 < rest.size() && rest[p + 1] == '8') ++p;
      if ((rest[p] == 'L' || rest[p] == 'u' || rest[p] == 'U') &&
          p + 1 < rest.size() && rest[p + 1] == 'R') {
        ++p;
      }
      if (rest[p] == 'R' && p + 1 < rest.size() && rest[p + 1] == '"') {
        const std::size_t open = rest.find('(', p + 2);
        if (open != std::string_view::npos) {
          std::string closer = ")";
          closer += std::string(rest.substr(p + 2, open - (p + 2)));
          closer += '"';
          std::size_t close = rest.find(closer, open + 1);
          if (close == std::string_view::npos) close = rest.size();
          const std::size_t total =
              std::min(close + closer.size(), rest.size());
          push(Token::Kind::kString, i, total, line, col);
          advance(total);
          continue;
        }
      }
    }

    // Ordinary string / char literal (with escape handling).
    if (c == '"' || c == '\'') {
      const int tline = line;
      const int tcol = col;
      std::size_t j = i + 1;
      while (j < src.size() && src[j] != c) {
        if (src[j] == '\\' && j + 1 < src.size()) ++j;
        if (src[j] == '\n') break;  // unterminated; resync at newline
        ++j;
      }
      const std::size_t total = std::min(j + 1, src.size()) - i;
      push(c == '"' ? Token::Kind::kString : Token::Kind::kCharLit, i, total,
           tline, tcol);
      advance(total);
      continue;
    }

    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < src.size() && ident_char(src[j])) ++j;
      push(Token::Kind::kIdentifier, i, j - i, line, col);
      advance(j - i);
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < src.size() &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      std::size_t j = i + 1;
      while (j < src.size() &&
             (ident_char(src[j]) || src[j] == '.' || src[j] == '\'' ||
              ((src[j] == '+' || src[j] == '-') &&
               (src[j - 1] == 'e' || src[j - 1] == 'E' || src[j - 1] == 'p' ||
                src[j - 1] == 'P')))) {
        ++j;
      }
      push(Token::Kind::kNumber, i, j - i, line, col);
      advance(j - i);
      continue;
    }

    // Punctuator: longest match from the table, else a single char.
    std::size_t len = 1;
    for (std::string_view p : kPuncts) {
      if (src.substr(i, p.size()) == p) {
        len = p.size();
        break;
      }
    }
    push(Token::Kind::kPunct, i, len, line, col);
    advance(len);
  }

  out.tokens.push_back(Token{Token::Kind::kEndOfFile, {}, line, col});
  return out;
}

bool is_suppressed(const std::vector<Nolint>& nolints, int line,
                   std::string_view check) {
  for (const Nolint& n : nolints) {
    if (n.line != line) continue;
    if (n.checks.empty()) return true;  // bare NOLINT
    for (const std::string& c : n.checks) {
      if (c == check || c == "*") return true;
    }
  }
  return false;
}

}  // namespace nicmcast::tidy

#include "checks.hpp"

#include <algorithm>
#include <array>
#include <string>
#include <utility>

namespace nicmcast::tidy {

namespace {

using Toks = std::vector<Token>;

bool is_id(const Token& t, std::string_view s) {
  return t.kind == Token::Kind::kIdentifier && t.text == s;
}
bool is_p(const Token& t, std::string_view s) {
  return t.kind == Token::Kind::kPunct && t.text == s;
}

bool any_of_ids(const Token& t, std::initializer_list<std::string_view> set) {
  if (t.kind != Token::Kind::kIdentifier) return false;
  return std::find(set.begin(), set.end(), t.text) != set.end();
}

template <std::size_t N>
bool any_of_ids(const Token& t, const std::string_view (&set)[N]) {
  if (t.kind != Token::Kind::kIdentifier) return false;
  return std::find(set, set + N, t.text) != set + N;
}

constexpr std::string_view kUnorderedNames[] = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

constexpr std::string_view kScheduleNames[] = {
    "schedule", "schedule_at", "schedule_after", "at", "after", "defer",
    "post"};

/// Index of the token matching the opener at `open` ('(', '[' or '{'), or
/// toks.size() when unbalanced.
std::size_t match_paren(const Toks& toks, std::size_t open) {
  const std::string_view o = toks[open].text;
  const std::string_view c = o == "(" ? ")" : o == "[" ? "]" : "}";
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (is_p(toks[i], o)) ++depth;
    if (is_p(toks[i], c) && --depth == 0) return i;
  }
  return toks.size();
}

/// Index just past the '>' matching the '<' at `lt` (handles ">>"), or
/// `lt + 1` when this is not a balanced template argument list.
std::size_t skip_angles(const Toks& toks, std::size_t lt) {
  int depth = 0;
  for (std::size_t i = lt; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (is_p(t, "<")) ++depth;
    if (is_p(t, ">")) --depth;
    if (is_p(t, ">>")) depth -= 2;
    if (depth <= 0) return i + 1;
    if (is_p(t, ";") || is_p(t, "{") || t.kind == Token::Kind::kEndOfFile) {
      break;  // statement ended: '<' was a comparison, not a template
    }
  }
  return lt + 1;
}

/// Lower-bound byte size of a captured value, from its declaration text.
std::size_t size_estimate(std::string_view type) {
  auto has = [&](std::string_view s) {
    return type.find(s) != std::string_view::npos;
  };
  if (has("*")) return 8;
  if (has("Buffer")) return 32;    // shared_ptr + offset + size
  if (has("Packet")) return 64;    // header + payload view, lower bound
  if (has("DescriptorRef")) return 8;
  if (has("string")) return 32;
  if (has("vector")) return 24;
  if (has("shared_ptr")) return 16;
  if (has("function")) return 32;
  if (has("uint64") || has("int64") || has("size_t") || has("double") ||
      has("long") || has("TimePoint") || has("Duration") ||
      has("ptrdiff")) {
    return 8;
  }
  if (has("uint16") || has("int16") || has("short")) return 2;
  if (has("uint8") || has("int8") || has("char") || has("bool") ||
      has("byte")) {
    return 1;
  }
  if (has("uint32") || has("int32") || has("int") || has("unsigned") ||
      has("float")) {
    return 4;
  }
  return 8;  // unknown: pointer-sized lower bound
}

bool looks_like_type_name(std::string_view s) {
  static constexpr std::string_view kBuiltins[] = {
      "int",   "char",   "short", "long",  "unsigned", "signed",
      "float", "double", "void",  "auto",  "bool",     "wchar_t",
  };
  for (std::string_view b : kBuiltins) {
    if (s == b) return true;
  }
  if (s.size() > 2 && s.substr(s.size() - 2) == "_t") return true;
  return !s.empty() && s.front() >= 'A' && s.front() <= 'Z';
}

struct Lambda {
  std::size_t intro = 0;      // '['
  std::size_t intro_end = 0;  // matching ']'
  std::size_t params_open = 0, params_close = 0;  // 0,0 when absent
  std::size_t body_open = 0, body_close = 0;      // '{' ... '}'
};

std::vector<Lambda> find_lambdas(const Toks& toks) {
  std::vector<Lambda> out;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_p(toks[i], "[")) continue;
    if (is_p(toks[i + 1], "[")) continue;  // attribute [[...]]
    if (i > 0) {
      const Token& prev = toks[i - 1];
      const bool keyword_before =
          any_of_ids(prev, {"return", "co_return", "co_yield", "case",
                            "else", "do", "in"});
      if (!keyword_before &&
          (prev.kind == Token::Kind::kNumber ||
           prev.kind == Token::Kind::kString ||
           (prev.kind == Token::Kind::kIdentifier) ||
           is_p(prev, ")") || is_p(prev, "]") || is_p(prev, "["))) {
        continue;  // subscript, not a lambda introducer
      }
    }
    Lambda l;
    l.intro = i;
    l.intro_end = match_paren(toks, i);
    if (l.intro_end >= toks.size()) continue;
    std::size_t j = l.intro_end + 1;
    if (j < toks.size() && is_p(toks[j], "(")) {
      l.params_open = j;
      l.params_close = match_paren(toks, j);
      if (l.params_close >= toks.size()) continue;
      j = l.params_close + 1;
    }
    // Skip specifiers (mutable, noexcept(...), -> Type) up to the body.
    bool gave_up = false;
    while (j < toks.size() && !is_p(toks[j], "{")) {
      const Token& t = toks[j];
      if (is_p(t, ";") || is_p(t, ",") || is_p(t, ")") || is_p(t, "}") ||
          is_p(t, "]") || t.kind == Token::Kind::kEndOfFile) {
        gave_up = true;  // no body: not a lambda after all
        break;
      }
      if (is_p(t, "(")) {
        j = match_paren(toks, j) + 1;  // noexcept(...)
        continue;
      }
      if (is_p(t, "<")) {
        j = skip_angles(toks, j);  // -> Container<T>
        continue;
      }
      ++j;
    }
    if (gave_up || j >= toks.size()) continue;
    l.body_open = j;
    l.body_close = match_paren(toks, j);
    if (l.body_close >= toks.size()) continue;
    out.push_back(l);
  }
  return out;
}

struct Ctx {
  const std::string& path;
  const Toks& toks;
  const std::vector<Nolint>& nolints;
  const SymbolTable& sym;
  const CheckOptions& opt;
  std::vector<Diagnostic>& out;
};

bool check_enabled(const CheckOptions& opt, std::string_view name) {
  if (opt.enabled.empty()) return true;
  return std::find(opt.enabled.begin(), opt.enabled.end(), name) !=
         opt.enabled.end();
}

void report(Ctx& ctx, const Token& at, std::string_view check,
            std::string message) {
  if (!check_enabled(ctx.opt, check)) return;
  if (is_suppressed(ctx.nolints, at.line, check)) return;
  ctx.out.push_back(Diagnostic{ctx.path, at.line, at.col, std::string(check),
                               std::move(message)});
}

VarKind kind_of(const Ctx& ctx, std::string_view name) {
  auto it = ctx.sym.find(std::string(name));
  return it == ctx.sym.end() ? VarKind::kOther : it->second.kind;
}

bool is_pointer_var(const Ctx& ctx, const Token& t) {
  if (t.kind != Token::Kind::kIdentifier) return false;
  const VarKind k = kind_of(ctx, t.text);
  return k == VarKind::kPointer || k == VarKind::kPooledRawPtr;
}

// ---------------------------------------------------------------------------
// nicmcast-nondeterministic-iteration
// ---------------------------------------------------------------------------

void check_nondeterministic_iteration(Ctx& ctx) {
  constexpr std::string_view kName = "nicmcast-nondeterministic-iteration";
  const Toks& toks = ctx.toks;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_id(toks[i], "for") || !is_p(toks[i + 1], "(")) continue;
    const std::size_t close = match_paren(toks, i + 1);
    if (close >= toks.size()) continue;
    // The range-for colon sits at depth 1 inside the for-parens.
    std::size_t colon = 0;
    int depth = 0;
    for (std::size_t j = i + 1; j < close; ++j) {
      if (is_p(toks[j], "(") || is_p(toks[j], "[") || is_p(toks[j], "{")) {
        ++depth;
      } else if (is_p(toks[j], ")") || is_p(toks[j], "]") ||
                 is_p(toks[j], "}")) {
        --depth;
      } else if (depth == 1 && is_p(toks[j], ":")) {
        colon = j;
        break;
      }
    }
    if (colon == 0) continue;  // classic for loop

    // Only identifiers at the top level of the range expression count:
    // `sorted_keys(nic.sender_conns_)` is the sanctioned fix, and there the
    // container name sits inside the call's parens, one level down.
    std::string container;
    int range_depth = 1;  // depth of the for-parens themselves
    for (std::size_t j = colon + 1; j < close; ++j) {
      if (is_p(toks[j], "(") || is_p(toks[j], "[") || is_p(toks[j], "{")) {
        ++range_depth;
      } else if (is_p(toks[j], ")") || is_p(toks[j], "]") ||
                 is_p(toks[j], "}")) {
        --range_depth;
      }
      if (range_depth != 1) continue;
      if (toks[j].kind != Token::Kind::kIdentifier) continue;
      if (any_of_ids(toks[j], kUnorderedNames) ||
          kind_of(ctx, toks[j].text) == VarKind::kUnorderedContainer) {
        container = std::string(toks[j].text);  // keep the last match:
        // `nic.sender_conns_` resolves to the member, not the object
      }
    }
    if (container.empty()) continue;

    std::size_t body_begin = close + 1;
    std::size_t body_end;
    if (body_begin < toks.size() && is_p(toks[body_begin], "{")) {
      body_end = match_paren(toks, body_begin);
    } else {
      body_end = body_begin;
      while (body_end < toks.size() && !is_p(toks[body_end], ";")) {
        if (is_p(toks[body_end], "(") || is_p(toks[body_end], "{")) {
          body_end = match_paren(toks, body_end);
        }
        ++body_end;
      }
    }

    for (std::size_t j = body_begin; j < body_end && j + 1 < toks.size();
         ++j) {
      if (toks[j].kind != Token::Kind::kIdentifier ||
          !is_p(toks[j + 1], "(")) {
        continue;
      }
      const auto& sinks = ctx.opt.iteration_sinks;
      if (std::find(sinks.begin(), sinks.end(), toks[j].text) ==
          sinks.end()) {
        continue;
      }
      report(ctx, toks[i], kName,
             "range-for over unordered container '" + container +
                 "' calls ordering-sensitive '" +
                 std::string(toks[j].text) +
                 "' in its body; hash-map order leaks into "
                 "event_order_hash — iterate a sorted copy of the keys");
      break;  // one diagnostic per loop
    }
  }
}

// ---------------------------------------------------------------------------
// nicmcast-pointer-order
// ---------------------------------------------------------------------------

void check_pointer_order(Ctx& ctx) {
  constexpr std::string_view kName = "nicmcast-pointer-order";
  const Toks& toks = ctx.toks;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];

    // std::map<T*, ...> / std::set<T*> — address-ordered containers.
    if (any_of_ids(t, {"map", "set", "multimap", "multiset"}) &&
        is_p(toks[i + 1], "<") &&
        !(i > 0 && (is_p(toks[i - 1], ".") || is_p(toks[i - 1], "->")))) {
      int depth = 0;
      bool key_is_pointer = false;
      for (std::size_t j = i + 1; j < toks.size(); ++j) {
        if (is_p(toks[j], "<")) ++depth;
        if (is_p(toks[j], ">") || is_p(toks[j], ">>")) break;
        if (depth == 1 && is_p(toks[j], ",")) break;  // end of key type
        if (depth == 1 && is_p(toks[j], "*")) key_is_pointer = true;
      }
      if (key_is_pointer) {
        report(ctx, t, kName,
               "ordered container keyed on pointer values; iteration order "
               "follows allocation addresses, which differ across runs — "
               "key on a stable id instead");
      }
    }

    // std::hash<T*>
    if (is_id(t, "hash") && is_p(toks[i + 1], "<") && i >= 2 &&
        is_p(toks[i - 1], "::") && is_id(toks[i - 2], "std")) {
      const std::size_t end = skip_angles(toks, i + 1);
      for (std::size_t j = i + 1; j + 1 < end; ++j) {
        if (is_p(toks[j], "*")) {
          report(ctx, t, kName,
                 "std::hash over a pointer type feeds addresses into "
                 "deterministic state; hash a stable id instead");
          break;
        }
      }
    }

    // p1 < p2 on raw pointers.  Each operand must END at the neighbouring
    // token: `from >= topo_->endpoint_count()` compares a member call, not
    // the pointer, and `p < q[0]` compares an element.
    const bool right_operand_extends =
        i + 2 < toks.size() &&
        (is_p(toks[i + 2], "->") || is_p(toks[i + 2], ".") ||
         is_p(toks[i + 2], "(") || is_p(toks[i + 2], "[") ||
         is_p(toks[i + 2], "::"));
    if ((is_p(t, "<") || is_p(t, ">") || is_p(t, "<=") || is_p(t, ">=")) &&
        i > 0 && is_pointer_var(ctx, toks[i - 1]) &&
        is_pointer_var(ctx, toks[i + 1]) && !right_operand_extends) {
      report(ctx, t, kName,
             "relational comparison of raw pointers '" +
                 std::string(toks[i - 1].text) + "' and '" +
                 std::string(toks[i + 1].text) +
                 "' orders by allocation address");
    }

    // reinterpret_cast<std::uintptr_t>(...) — pointer-value fold.
    if (any_of_ids(t, {"reinterpret_cast", "bit_cast"}) &&
        is_p(toks[i + 1], "<")) {
      const std::size_t end = skip_angles(toks, i + 1);
      for (std::size_t j = i + 1; j + 1 < end; ++j) {
        if (toks[j].kind == Token::Kind::kIdentifier &&
            toks[j].text.find("intptr") != std::string_view::npos) {
          report(ctx, t, kName,
                 "pointer value folded into an integer; the result is "
                 "address-dependent and must not reach deterministic "
                 "state");
          break;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// nicmcast-wall-clock
// ---------------------------------------------------------------------------

void check_wall_clock(Ctx& ctx) {
  constexpr std::string_view kName = "nicmcast-wall-clock";
  for (const std::string& prefix : ctx.opt.wall_clock_allowed) {
    if (ctx.path.rfind(prefix, 0) == 0) return;
  }
  const Toks& toks = ctx.toks;

  // True when toks[i] is a plain (or std::-qualified) call, not a member
  // or foreign-namespace one.
  auto free_call = [&](std::size_t i) {
    if (i == 0) return true;
    const Token& prev = toks[i - 1];
    if (is_p(prev, ".") || is_p(prev, "->")) return false;
    if (is_p(prev, "::")) {
      return i >= 2 && is_id(toks[i - 2], "std");
    }
    // An identifier right before the name means a declaration
    // (`int rand();`, `long time(long base)`), not a call — unless it is
    // a statement keyword that can legally precede an expression.
    if (prev.kind == Token::Kind::kIdentifier &&
        !any_of_ids(prev, {"return", "co_return", "co_yield", "co_await",
                           "throw", "else", "do"})) {
      return false;
    }
    return true;
  };

  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];

    if (any_of_ids(t, {"steady_clock", "system_clock",
                       "high_resolution_clock"}) &&
        is_p(toks[i + 1], "::") && i + 2 < toks.size() &&
        is_id(toks[i + 2], "now")) {
      report(ctx, t, kName,
             "wall-clock read (" + std::string(t.text) +
                 "::now) in deterministic code; simulated time comes from "
                 "the scheduler, host timing belongs in src/harness/");
    }

    if (is_id(t, "random_device")) {
      report(ctx, t, kName,
             "std::random_device injects nondeterminism; derive randomness "
             "from the run seed (sim::Rng)");
    }

    if (any_of_ids(t, {"rand", "srand"}) && is_p(toks[i + 1], "(") &&
        free_call(i)) {
      report(ctx, t, kName,
             std::string(t.text) +
                 "() uses hidden global state; derive randomness from the "
                 "run seed (sim::Rng)");
    }

    if (is_id(t, "time") && is_p(toks[i + 1], "(") && free_call(i)) {
      const std::size_t a = i + 2;
      const bool argless =
          a < toks.size() &&
          (is_p(toks[a], ")") ||
           ((is_id(toks[a], "nullptr") || is_id(toks[a], "NULL") ||
             toks[a].text == "0") &&
            a + 1 < toks.size() && is_p(toks[a + 1], ")")));
      if (argless) {
        report(ctx, t, kName,
               "time() reads the wall clock; seed-derived values keep "
               "replays bit-identical");
      }
    }

    if (is_id(t, "clock") && is_p(toks[i + 1], "(") && i + 2 < toks.size() &&
        is_p(toks[i + 2], ")") && free_call(i)) {
      report(ctx, t, kName, "clock() reads host CPU time in deterministic "
                            "code; use simulated time");
    }

    if (any_of_ids(t, {"gettimeofday", "clock_gettime", "timespec_get",
                       "localtime", "gmtime"}) &&
        is_p(toks[i + 1], "(") && free_call(i)) {
      report(ctx, t, kName,
             std::string(t.text) + "() reads the wall clock in "
                                   "deterministic code");
    }
  }
}

// ---------------------------------------------------------------------------
// Lambda capture parsing (shared by the last two checks)
// ---------------------------------------------------------------------------

struct Capture {
  bool by_ref = false;
  bool is_default = false;           // [&] or [=]
  std::string name;                  // empty for defaults / this
  std::string init_root;             // for init-captures: first identifier
  bool init_has_deref_escape = false;  // init expr contains "&*"
  const Token* at = nullptr;
};

std::vector<Capture> parse_captures(const Toks& toks, const Lambda& l) {
  std::vector<Capture> out;
  std::size_t entry_begin = l.intro + 1;
  int depth = 0;
  for (std::size_t i = l.intro + 1; i <= l.intro_end; ++i) {
    const bool at_end = i == l.intro_end;
    if (!at_end) {
      if (is_p(toks[i], "(") || is_p(toks[i], "[") || is_p(toks[i], "{")) {
        ++depth;
      }
      if (is_p(toks[i], ")") || is_p(toks[i], "]") || is_p(toks[i], "}")) {
        --depth;
      }
    }
    if (!at_end && !(depth == 0 && is_p(toks[i], ","))) continue;

    const std::size_t b = entry_begin;
    const std::size_t e = i;  // [b, e)
    entry_begin = i + 1;
    if (b >= e) continue;

    Capture c;
    c.at = &toks[b];
    std::size_t j = b;
    if (is_p(toks[j], "&")) {
      c.by_ref = true;
      ++j;
    } else if (is_p(toks[j], "=")) {
      c.is_default = true;
      out.push_back(c);
      continue;
    } else if (is_p(toks[j], "*")) {
      ++j;  // *this
    }
    if (j >= e) {
      c.is_default = c.by_ref;  // bare '&'
      out.push_back(c);
      continue;
    }
    if (toks[j].kind == Token::Kind::kIdentifier) {
      c.name = std::string(toks[j].text);
      ++j;
    }
    if (j < e && is_p(toks[j], "=")) {  // init-capture
      for (std::size_t k = j + 1; k < e; ++k) {
        if (toks[k].kind == Token::Kind::kIdentifier &&
            c.init_root.empty()) {
          c.init_root = std::string(toks[k].text);
        }
        if (is_p(toks[k], "&") && k + 1 < e && is_p(toks[k + 1], "*")) {
          c.init_has_deref_escape = true;
        }
      }
    }
    out.push_back(c);
  }
  return out;
}

// ---------------------------------------------------------------------------
// nicmcast-descriptor-escape
// ---------------------------------------------------------------------------

void check_descriptor_escape(Ctx& ctx, const std::vector<Lambda>& lambdas) {
  constexpr std::string_view kName = "nicmcast-descriptor-escape";
  const Toks& toks = ctx.toks;

  for (const Lambda& l : lambdas) {
    // Completion-callback shape: a DescriptorRef parameter.
    std::vector<std::string> ref_params;
    if (l.params_open != 0) {
      for (std::size_t j = l.params_open + 1; j < l.params_close; ++j) {
        if (!is_id(toks[j], "DescriptorRef")) continue;
        std::size_t k = j + 1;
        while (k < l.params_close &&
               (is_p(toks[k], "&") || is_p(toks[k], "*") ||
                is_id(toks[k], "const"))) {
          ++k;
        }
        if (k < l.params_close &&
            toks[k].kind == Token::Kind::kIdentifier) {
          ref_params.emplace_back(toks[k].text);
        }
      }
    }

    for (const std::string& param : ref_params) {
      for (std::size_t j = l.body_open; j < l.body_close; ++j) {
        // &*d — raw pointer to the pooled descriptor escapes.
        if (is_p(toks[j], "&") && j + 2 < l.body_close &&
            is_p(toks[j + 1], "*") && is_id(toks[j + 2], param)) {
          report(ctx, toks[j], kName,
                 "raw pointer into pooled descriptor '" + param +
                     "' taken inside its completion callback; the "
                     "descriptor recycles when the last DescriptorRef "
                     "drops — keep the ref instead");
        }
        // PacketDescriptor* raw = ... inside the callback.
        if (is_id(toks[j], "PacketDescriptor") && j + 3 < l.body_close &&
            is_p(toks[j + 1], "*") &&
            toks[j + 2].kind == Token::Kind::kIdentifier &&
            is_p(toks[j + 3], "=")) {
          report(ctx, toks[j], kName,
                 "raw PacketDescriptor* bound inside a completion "
                 "callback; store a DescriptorRef so the pool cannot "
                 "recycle it underneath you");
        }
      }
      // The ref captured by reference into a nested closure.
      for (const Lambda& inner : lambdas) {
        if (inner.intro <= l.body_open || inner.intro_end >= l.body_close) {
          continue;
        }
        for (const Capture& c : parse_captures(toks, inner)) {
          if (c.by_ref && c.name == param) {
            report(ctx, *c.at, kName,
                   "DescriptorRef '" + param +
                       "' captured by reference into a closure that can "
                       "outlive the completion callback; capture by value "
                       "to take a reference");
          }
        }
      }
    }

    // Any lambda handed to deferred work that borrows a Buffer or
    // DescriptorRef by reference.
    bool escaping_context = false;
    for (std::size_t j = l.intro; j-- > 0;) {
      if (is_p(toks[j], ";") || is_p(toks[j], "{") || is_p(toks[j], "}")) {
        break;
      }
      if (toks[j].kind == Token::Kind::kIdentifier && j + 1 < toks.size()) {
        if (any_of_ids(toks[j], kScheduleNames) && is_p(toks[j + 1], "(")) {
          escaping_context = true;
          break;
        }
        if (toks[j].text.rfind("on_", 0) == 0 && is_p(toks[j + 1], "=")) {
          escaping_context = true;
          break;
        }
      }
    }
    if (!escaping_context) continue;
    for (const Capture& c : parse_captures(toks, l)) {
      if (!c.by_ref || c.name.empty()) continue;
      const VarKind k = kind_of(ctx, c.name);
      if (k == VarKind::kBuffer) {
        report(ctx, *c.at, kName,
               "net::Buffer '" + c.name +
                   "' captured by reference into deferred work; capture "
                   "by value — a Buffer copy is a refcount bump, and the "
                   "reference dangles once the enclosing scope unwinds");
      } else if (k == VarKind::kDescriptorRef) {
        report(ctx, *c.at, kName,
               "DescriptorRef '" + c.name +
                   "' captured by reference into deferred work; capture "
                   "by value to hold a pool reference for the callback's "
                   "lifetime");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// nicmcast-inline-function-capture
// ---------------------------------------------------------------------------

void check_inline_function_capture(Ctx& ctx,
                                   const std::vector<Lambda>& lambdas) {
  constexpr std::string_view kName = "nicmcast-inline-function-capture";
  const Toks& toks = ctx.toks;

  // Budget named directly in an InlineFunction<Sig, N> spelling near `at`.
  auto budget_from_angles = [&](std::size_t lt) -> std::size_t {
    const std::size_t end = skip_angles(toks, lt);
    int depth = 0;
    std::size_t last_comma = 0;
    for (std::size_t j = lt; j + 1 < end; ++j) {
      if (is_p(toks[j], "<") || is_p(toks[j], "(")) ++depth;
      if (is_p(toks[j], ">") || is_p(toks[j], ")")) --depth;
      if (depth == 1 && is_p(toks[j], ",")) last_comma = j;
    }
    if (last_comma != 0 && last_comma + 1 < end &&
        toks[last_comma + 1].kind == Token::Kind::kNumber) {
      return static_cast<std::size_t>(
          std::stoul(std::string(toks[last_comma + 1].text)));
    }
    return ctx.opt.inline_budget;
  };

  for (const Lambda& l : lambdas) {
    // Is this lambda becoming an InlineFunction?  Look back through the
    // enclosing statement for (a) an InlineFunction spelling, (b) a
    // scheduler call, or (c) assignment to a declared InlineFunction.
    bool context = false;
    std::size_t budget = ctx.opt.inline_budget;
    for (std::size_t j = l.intro; j-- > 0;) {
      if (is_p(toks[j], ";") || is_p(toks[j], "{") || is_p(toks[j], "}")) {
        break;
      }
      if (toks[j].kind != Token::Kind::kIdentifier) continue;
      if (toks[j].text == "InlineFunction") {
        context = true;
        if (j + 1 < toks.size() && is_p(toks[j + 1], "<")) {
          budget = budget_from_angles(j + 1);
        }
        break;
      }
      if (any_of_ids(toks[j], kScheduleNames) && j + 1 < toks.size() &&
          is_p(toks[j + 1], "(")) {
        context = true;
        break;
      }
      auto it = ctx.sym.find(std::string(toks[j].text));
      if (it != ctx.sym.end() &&
          it->second.kind == VarKind::kInlineFunction &&
          j + 1 < toks.size() && is_p(toks[j + 1], "=")) {
        context = true;
        budget = it->second.inline_budget != 0 ? it->second.inline_budget
                                               : ctx.opt.inline_budget;
        break;
      }
    }
    if (!context) continue;

    std::size_t total = 0;
    for (const Capture& c : parse_captures(toks, l)) {
      if (c.is_default) continue;  // unknown set; keep the lower bound
      if (c.name.empty()) {
        total += 8;  // this / *this
        continue;
      }
      if (c.by_ref) {
        total += 8;
        continue;
      }
      const std::string& lookup = c.init_root.empty() ? c.name : c.init_root;
      auto it = ctx.sym.find(lookup);
      const VarKind k = it == ctx.sym.end() ? VarKind::kOther
                                            : it->second.kind;
      if (k == VarKind::kPooledRawPtr || c.init_has_deref_escape) {
        report(ctx, *c.at, kName,
               "capture '" + c.name +
                   "' stores a raw pooled pointer by value; pooled "
                   "storage recycles — capture the owning "
                   "DescriptorRef instead");
      }
      total += it == ctx.sym.end() ? 8 : size_estimate(it->second.type_text);
    }
    if (total > budget) {
      report(ctx, toks[l.intro], kName,
             "lambda captures at least " + std::to_string(total) +
                 " bytes but the InlineFunction inline budget is " +
                 std::to_string(budget) +
                 "; this callable heap-allocates on every construction — "
                 "shrink the capture or batch state behind one pointer");
    }
  }
}

// ---------------------------------------------------------------------------
// nicmcast-memory-order-audit
// ---------------------------------------------------------------------------

// Member names that only std::atomic has: an implicit-order call on one of
// these is an atomic RMW whatever the receiver's declared type is.
constexpr std::string_view kAtomicRmwNames[] = {
    "fetch_add", "fetch_sub", "fetch_and", "fetch_or", "fetch_xor",
    "compare_exchange_weak", "compare_exchange_strong"};

constexpr std::string_view kWriteOps[] = {"=",  "+=", "-=", "&=",
                                          "|=", "^=", "++", "--"};

bool is_write_op(const Token& t) {
  return t.kind == Token::Kind::kPunct &&
         std::find(std::begin(kWriteOps), std::end(kWriteOps), t.text) !=
             std::end(kWriteOps);
}

bool parens_name_an_order(const Toks& toks, std::size_t open,
                          std::size_t close) {
  for (std::size_t j = open + 1; j < close && j < toks.size(); ++j) {
    if (toks[j].kind == Token::Kind::kIdentifier &&
        toks[j].text.find("memory_order") != std::string_view::npos) {
      return true;
    }
  }
  return false;
}

/// [body_begin, body_end) of the statement or block controlled by the
/// construct whose condition closes at `close`.
std::pair<std::size_t, std::size_t> controlled_body(const Toks& toks,
                                                    std::size_t close) {
  std::size_t begin = close + 1;
  std::size_t end = begin;
  if (begin < toks.size() && is_p(toks[begin], "{")) {
    end = match_paren(toks, begin);
  } else {
    while (end < toks.size() && !is_p(toks[end], ";")) {
      if (is_p(toks[end], "(") || is_p(toks[end], "{")) {
        end = match_paren(toks, end);
        if (end >= toks.size()) break;
      }
      ++end;
    }
  }
  return {begin, std::min(end, toks.size())};
}

/// True when toks[j] writes a trailing-underscore member that is not an
/// atomic (members follow the `name_` convention repo-wide, so this is the
/// portable stand-in for "publishes non-atomic state").
bool writes_nonatomic_member(const Ctx& ctx, std::size_t j) {
  const Toks& toks = ctx.toks;
  const Token& t = toks[j];
  if (t.kind != Token::Kind::kIdentifier || t.text.size() < 2 ||
      t.text.back() != '_') {
    return false;
  }
  if (kind_of(ctx, t.text) == VarKind::kAtomic) return false;
  const bool suffix_write = j + 1 < toks.size() && is_write_op(toks[j + 1]);
  const bool prefix_write =
      j > 0 && (is_p(toks[j - 1], "++") || is_p(toks[j - 1], "--"));
  if (!suffix_write && !prefix_write) return false;
  // Declaration guard: `Foo done_ = ...` initializes, it does not publish.
  if (j > 0 && (toks[j - 1].kind == Token::Kind::kIdentifier ||
                is_p(toks[j - 1], ">"))) {
    return false;
  }
  return true;
}

void check_memory_order_audit(Ctx& ctx) {
  constexpr std::string_view kName = "nicmcast-memory-order-audit";
  const Toks& toks = ctx.toks;

  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];

    // Member-call form: x_.load(...), block->refs.fetch_add(...).
    if (t.kind == Token::Kind::kIdentifier && i + 3 < toks.size() &&
        (is_p(toks[i + 1], ".") || is_p(toks[i + 1], "->")) &&
        toks[i + 2].kind == Token::Kind::kIdentifier &&
        is_p(toks[i + 3], "(")) {
      const Token& op = toks[i + 2];
      const bool rmw = any_of_ids(op, kAtomicRmwNames);
      const bool plain = any_of_ids(op, {"load", "store", "exchange"}) &&
                         kind_of(ctx, t.text) == VarKind::kAtomic;
      if (rmw || plain) {
        const std::size_t close = match_paren(toks, i + 3);
        if (close < toks.size() &&
            !parens_name_an_order(toks, i + 3, close)) {
          report(ctx, op, kName,
                 "atomic " + std::string(op.text) +
                     "() relies on the implicit seq_cst default; pass an "
                     "explicit std::memory_order and justify it "
                     "(DESIGN.md §4.9)");
        }
      }
    }

    if (kind_of(ctx, t.text) != VarKind::kAtomic) continue;

    // Operator sugar: ++x_, x_ += n, x_ = v are seq_cst RMWs/stores.
    const bool declared_here =
        i > 0 && (is_p(toks[i - 1], ">") ||
                  toks[i - 1].kind == Token::Kind::kIdentifier);
    const bool suffix_write = is_write_op(toks[i + 1]);
    const bool prefix_write =
        i > 0 && (is_p(toks[i - 1], "++") || is_p(toks[i - 1], "--"));
    if ((suffix_write && !declared_here) || prefix_write) {
      report(ctx, t, kName,
             "operator access to atomic '" + std::string(t.text) +
                 "' is an implicit seq_cst operation; spell it as "
                 "load()/store()/fetch_*() with an explicit "
                 "std::memory_order");
      continue;
    }

    // Implicit-conversion read in a condition: `if (flag_)` and
    // `while (!flag_)` are seq_cst loads in disguise.
    const bool closes_cond = is_p(toks[i + 1], ")") ||
                             is_p(toks[i + 1], "&&") ||
                             is_p(toks[i + 1], "||");
    if (closes_cond && i > 0) {
      std::size_t k = i - 1;
      if (is_p(toks[k], "!") && k > 0) --k;
      if (is_p(toks[k], "(") && k > 0 &&
          any_of_ids(toks[k - 1], {"if", "while"})) {
        report(ctx, t, kName,
               "atomic '" + std::string(t.text) +
                   "' read through implicit conversion (a seq_cst load); "
                   "call load() with an explicit std::memory_order");
      }
    }
  }

  // A relaxed load must not guard a branch that publishes non-atomic
  // state: relaxed carries no happens-before edge, so readers of the
  // published state race with everything before the flag's store.  The
  // Buffer refcount's `fetch_sub(acq_rel) == 1 -> delete` is the shape
  // this protects (DESIGN.md §4.9).
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_id(toks[i], "if") || !is_p(toks[i + 1], "(")) continue;
    const std::size_t close = match_paren(toks, i + 1);
    if (close >= toks.size()) continue;
    const Token* relaxed_load = nullptr;
    for (std::size_t j = i + 2; j + 1 < close; ++j) {
      if (!is_id(toks[j], "load") || !is_p(toks[j + 1], "(")) continue;
      const std::size_t lclose = match_paren(toks, j + 1);
      for (std::size_t k = j + 2; k < lclose && k < close; ++k) {
        if (toks[k].kind == Token::Kind::kIdentifier &&
            toks[k].text.find("relaxed") != std::string_view::npos) {
          relaxed_load = &toks[j];
          break;
        }
      }
      if (relaxed_load != nullptr) break;
    }
    if (relaxed_load == nullptr) continue;

    const auto [body_begin, body_end] = controlled_body(toks, close);
    for (std::size_t j = body_begin; j < body_end; ++j) {
      if (is_id(toks[j], "delete") || writes_nonatomic_member(ctx, j)) {
        report(ctx, *relaxed_load, kName,
               "relaxed load guards a branch that publishes non-atomic "
               "state; the load carries no happens-before edge — acquire "
               "here (paired with a release on the store side) or move "
               "the publication behind a proper synchronizer");
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// nicmcast-shard-state-escape
// ---------------------------------------------------------------------------

constexpr std::string_view kThreadSpawnNames[] = {"thread", "jthread",
                                                  "async"};
constexpr std::string_view kLockNames[] = {"lock_guard", "unique_lock",
                                           "scoped_lock", "shared_lock",
                                           "MutexLock"};

void check_shard_state_escape(Ctx& ctx, const std::vector<Lambda>& lambdas) {
  constexpr std::string_view kName = "nicmcast-shard-state-escape";
  const Toks& toks = ctx.toks;

  for (const Lambda& l : lambdas) {
    // Worker-thread body?  The enclosing statement constructs a thread or
    // appends to a declared thread container.
    bool spawned = false;
    for (std::size_t j = l.intro; j-- > 0;) {
      if (is_p(toks[j], ";") || is_p(toks[j], "{") || is_p(toks[j], "}")) {
        break;
      }
      if (toks[j].kind != Token::Kind::kIdentifier) continue;
      if (any_of_ids(toks[j], kThreadSpawnNames) ||
          kind_of(ctx, toks[j].text) == VarKind::kThreadContainer) {
        spawned = true;
        break;
      }
    }
    if (!spawned) continue;

    // A lock in the body is the sanctioned sharing path; the clang
    // thread-safety annotations (NM_GUARDED_BY) take it from there.
    bool locked = false;
    for (std::size_t j = l.body_open + 1; j < l.body_close; ++j) {
      if (any_of_ids(toks[j], kLockNames)) {
        locked = true;
        break;
      }
    }
    if (locked) continue;

    for (std::size_t j = l.body_open + 1; j < l.body_close; ++j) {
      // Nested closures are their own execution context (typically a
      // post()ed closure, i.e. channel-mediated); their own backward scan
      // judges them.
      bool skipped_nested = false;
      for (const Lambda& inner : lambdas) {
        if (inner.intro > l.body_open && inner.body_close < l.body_close &&
            j >= inner.intro && j <= inner.body_close) {
          j = inner.body_close;
          skipped_nested = true;
          break;
        }
      }
      if (skipped_nested) continue;

      if (writes_nonatomic_member(ctx, j)) {
        report(ctx, toks[j], kName,
               "non-atomic state '" + std::string(toks[j].text) +
                   "' written from a worker-thread lambda; shard state is "
                   "owner-confined — post() it through a channel, make it "
                   "an atomic with an explicit order, or guard it with a "
                   "Mutex + NM_GUARDED_BY");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// nicmcast-thread-nondeterminism
// ---------------------------------------------------------------------------

void check_thread_nondeterminism(Ctx& ctx) {
  constexpr std::string_view kName = "nicmcast-thread-nondeterminism";
  const Toks& toks = ctx.toks;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];

    if (is_id(t, "thread_local")) {
      report(ctx, t, kName,
             "thread_local state varies with the worker count; keep "
             "per-shard state in the shard's own structures so --shards "
             "cannot change results");
      continue;
    }

    if (i + 2 < toks.size() && is_p(toks[i + 1], "::")) {
      if (is_id(t, "this_thread") && is_id(toks[i + 2], "get_id")) {
        report(ctx, t, kName,
               "std::this_thread::get_id() keys behaviour on scheduler "
               "identity, which differs across runs and shard counts; use "
               "the shard index instead");
        continue;
      }
      if (any_of_ids(t, {"thread", "jthread"}) && is_id(toks[i + 2], "id")) {
        report(ctx, t, kName,
               "std::thread::id values are scheduler-assigned and vary "
               "across runs; key state on the shard index instead");
        continue;
      }
    }

    if (is_id(t, "get_id") && i + 1 < toks.size() &&
        is_p(toks[i + 1], "(") && i > 0 &&
        (is_p(toks[i - 1], ".") || is_p(toks[i - 1], "->"))) {
      report(ctx, t, kName,
             "thread get_id() leaks scheduler identity into simulator "
             "state; key on the shard index instead");
      continue;
    }

    if (any_of_ids(t, {"pthread_self", "gettid"}) && i + 1 < toks.size() &&
        is_p(toks[i + 1], "(")) {
      report(ctx, t, kName,
             std::string(t.text) +
                 "() leaks OS thread identity into simulator state; key "
                 "on the shard index instead");
    }
  }
}

// ---------------------------------------------------------------------------
// nicmcast-bare-nolint
// ---------------------------------------------------------------------------

void check_bare_nolint(Ctx& ctx) {
  constexpr std::string_view kName = "nicmcast-bare-nolint";
  if (!check_enabled(ctx.opt, kName)) return;
  for (const Nolint& n : ctx.nolints) {
    if (n.has_checks && n.has_justification) continue;
    const char* what = !n.has_checks ? "names no specific check"
                                     : "carries no justification";
    // Emitted directly, not through report(): a suppression must not be
    // able to waive the audit of suppressions.
    ctx.out.push_back(Diagnostic{
        ctx.path, n.comment_line, n.col, std::string(kName),
        std::string("suppression ") + what +
            "; write `NOLINT(<check>): <reason>` so the waived contract "
            "and its rationale stay reviewable"});
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Pass 1: declaration harvesting
// ---------------------------------------------------------------------------

void collect_declarations(std::string_view source, SymbolTable& symbols) {
  const LexResult lexed = lex(source);
  const Toks& toks = lexed.tokens;

  auto flat_type = [&](std::size_t b, std::size_t e) {
    std::string out;
    for (std::size_t j = b; j < e && j < toks.size(); ++j) {
      out += toks[j].text;
    }
    return out;
  };

  // Records `name` unless a stronger kind is already known (unordered
  // container beats generic pointer, etc. — first writer wins per kind
  // precedence, keeping pass order irrelevant).
  auto record = [&](std::string_view name, VarKind kind,
                    std::string type_text, std::size_t budget = 0) {
    VarInfo& info = symbols[std::string(name)];
    if (info.kind == VarKind::kOther || info.kind == VarKind::kPointer) {
      info.kind = kind;
      info.type_text = std::move(type_text);
      info.inline_budget = budget;
    }
  };

  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Token::Kind::kIdentifier) continue;
    const bool after_tag =
        i > 0 && (is_id(toks[i - 1], "class") || is_id(toks[i - 1], "struct"));
    if (after_tag) continue;

    // std::unordered_map<...> name / fn(...)
    if (any_of_ids(t, kUnorderedNames) && is_p(toks[i + 1], "<")) {
      std::size_t j = skip_angles(toks, i + 1);
      const std::size_t type_end = j;
      while (j < toks.size() &&
             (is_p(toks[j], "&") || is_p(toks[j], "*") ||
              is_id(toks[j], "const"))) {
        ++j;
      }
      if (j + 1 < toks.size() && toks[j].kind == Token::Kind::kIdentifier &&
          (is_p(toks[j + 1], ";") || is_p(toks[j + 1], "=") ||
           is_p(toks[j + 1], ",") || is_p(toks[j + 1], ")") ||
           is_p(toks[j + 1], "{") || is_p(toks[j + 1], "("))) {
        record(toks[j].text, VarKind::kUnorderedContainer,
               flat_type(i, type_end));
      }
      continue;
    }

    // DescriptorRef name / net::Buffer name.
    if ((is_id(t, "DescriptorRef") || is_id(t, "Buffer")) &&
        !(i + 1 < toks.size() && is_p(toks[i + 1], "::"))) {
      std::size_t j = i + 1;
      while (j < toks.size() &&
             (is_p(toks[j], "&") || is_id(toks[j], "const"))) {
        ++j;
      }
      if (j + 1 < toks.size() && toks[j].kind == Token::Kind::kIdentifier &&
          (is_p(toks[j + 1], ";") || is_p(toks[j + 1], "=") ||
           is_p(toks[j + 1], ",") || is_p(toks[j + 1], ")") ||
           is_p(toks[j + 1], "{") || is_p(toks[j + 1], "("))) {
        record(toks[j].text,
               is_id(t, "Buffer") ? VarKind::kBuffer
                                  : VarKind::kDescriptorRef,
               std::string(t.text));
      }
      continue;
    }

    // InlineFunction<Sig, N> name — remember the member's budget.
    if (is_id(t, "InlineFunction") && is_p(toks[i + 1], "<")) {
      const std::size_t end = skip_angles(toks, i + 1);
      int depth = 0;
      std::size_t last_comma = 0;
      for (std::size_t j = i + 1; j + 1 < end; ++j) {
        if (is_p(toks[j], "<") || is_p(toks[j], "(")) ++depth;
        if (is_p(toks[j], ">") || is_p(toks[j], ")")) --depth;
        if (depth == 1 && is_p(toks[j], ",")) last_comma = j;
      }
      std::size_t budget = 0;
      if (last_comma != 0 && last_comma + 1 < end &&
          toks[last_comma + 1].kind == Token::Kind::kNumber) {
        budget = static_cast<std::size_t>(
            std::stoul(std::string(toks[last_comma + 1].text)));
      }
      std::size_t j = end;
      while (j < toks.size() &&
             (is_p(toks[j], "&") || is_id(toks[j], "const"))) {
        ++j;
      }
      if (j + 1 < toks.size() && toks[j].kind == Token::Kind::kIdentifier &&
          (is_p(toks[j + 1], ";") || is_p(toks[j + 1], "=") ||
           is_p(toks[j + 1], ",") || is_p(toks[j + 1], ")") ||
           is_p(toks[j + 1], "{"))) {
        record(toks[j].text, VarKind::kInlineFunction, "InlineFunction",
               budget);
      }
      continue;
    }

    // std::atomic<T> name — the memory-order audit's subjects.
    if (is_id(t, "atomic") && is_p(toks[i + 1], "<")) {
      std::size_t j = skip_angles(toks, i + 1);
      const std::size_t type_end = j;
      while (j < toks.size() &&
             (is_p(toks[j], "&") || is_p(toks[j], "*") ||
              is_id(toks[j], "const"))) {
        ++j;
      }
      if (j + 1 < toks.size() && toks[j].kind == Token::Kind::kIdentifier &&
          (is_p(toks[j + 1], ";") || is_p(toks[j + 1], "=") ||
           is_p(toks[j + 1], ",") || is_p(toks[j + 1], ")") ||
           is_p(toks[j + 1], "{"))) {
        record(toks[j].text, VarKind::kAtomic, flat_type(i, type_end));
      }
      continue;
    }

    // std::vector<std::jthread> pool — a thread-spawn context for the
    // shard-state-escape check.
    if (is_id(t, "vector") && is_p(toks[i + 1], "<")) {
      const std::size_t end = skip_angles(toks, i + 1);
      bool of_threads = false;
      for (std::size_t j = i + 2; j + 1 < end; ++j) {
        if (any_of_ids(toks[j], {"thread", "jthread"})) {
          of_threads = true;
          break;
        }
      }
      if (of_threads) {
        std::size_t j = end;
        while (j < toks.size() &&
               (is_p(toks[j], "&") || is_id(toks[j], "const"))) {
          ++j;
        }
        if (j + 1 < toks.size() &&
            toks[j].kind == Token::Kind::kIdentifier &&
            (is_p(toks[j + 1], ";") || is_p(toks[j + 1], "=") ||
             is_p(toks[j + 1], ",") || is_p(toks[j + 1], ")") ||
             is_p(toks[j + 1], "{") || is_p(toks[j + 1], "("))) {
          record(toks[j].text, VarKind::kThreadContainer,
                 flat_type(i, end));
        }
        continue;
      }
    }

    // T* name — generic pointer declaration (type-looking T only, so a
    // multiplication `a * b` does not register b as a pointer).
    if (looks_like_type_name(t.text) && is_p(toks[i + 1], "*") &&
        i + 3 < toks.size() &&
        toks[i + 2].kind == Token::Kind::kIdentifier &&
        (is_p(toks[i + 3], "=") || is_p(toks[i + 3], ";") ||
         is_p(toks[i + 3], ",") || is_p(toks[i + 3], ")"))) {
      record(toks[i + 2].text,
             is_id(t, "PacketDescriptor") ? VarKind::kPooledRawPtr
                                          : VarKind::kPointer,
             std::string(t.text) + "*");
    }
  }
}

std::vector<Diagnostic> run_checks(const std::string& path,
                                   std::string_view source,
                                   const SymbolTable& symbols,
                                   const CheckOptions& options) {
  const LexResult lexed = lex(source);
  std::vector<Diagnostic> out;
  Ctx ctx{path, lexed.tokens, lexed.nolints, symbols, options, out};

  check_nondeterministic_iteration(ctx);
  check_pointer_order(ctx);
  check_wall_clock(ctx);
  const std::vector<Lambda> lambdas = find_lambdas(lexed.tokens);
  check_descriptor_escape(ctx, lambdas);
  check_inline_function_capture(ctx, lambdas);
  check_memory_order_audit(ctx);
  check_shard_state_escape(ctx, lambdas);
  check_thread_nondeterminism(ctx);
  check_bare_nolint(ctx);

  std::sort(out.begin(), out.end(), [](const Diagnostic& a,
                                       const Diagnostic& b) {
    if (a.line != b.line) return a.line < b.line;
    if (a.col != b.col) return a.col < b.col;
    return a.check < b.check;
  });
  return out;
}

}  // namespace nicmcast::tidy

// Fixture-driven tests for the nicmcast-* determinism checks.
//
// Every fixture under fixtures/ annotates the lines it expects flagged
// with `// EXPECT: <check-name>`; all other lines must stay clean.  The
// tests run the portable engine in-process and compare the (line, check)
// sets exactly — both directions, so a silent check regression (missed
// positive) and an overeager check (flagged negative) both fail.
//
// The clang-tidy plugin engine runs over the same fixtures and the same
// EXPECT annotations via scripts/check_fixtures.py in the static-analysis
// CI job, where a clang toolchain is available.
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "checks.hpp"
#include "lexer.hpp"

namespace nicmcast::tidy {
namespace {

using LineCheck = std::pair<int, std::string>;

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(NICMCAST_TIDY_FIXTURE_DIR) + "/" +
                           name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open fixture " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::set<LineCheck> expected_findings(const std::string& source) {
  std::set<LineCheck> out;
  std::istringstream in(source);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t at = line.find("// EXPECT: ");
    if (at == std::string::npos) continue;
    std::string check = line.substr(at + 11);
    const std::size_t end = check.find_first_of(" \t\r");
    if (end != std::string::npos) check = check.substr(0, end);
    out.emplace(lineno, check);
  }
  return out;
}

std::set<LineCheck> actual_findings(const std::string& name,
                                    const std::string& source) {
  SymbolTable symbols;
  collect_declarations(source, symbols);
  std::set<LineCheck> out;
  for (const Diagnostic& d :
       run_checks(name, source, symbols, CheckOptions{})) {
    out.emplace(d.line, d.check);
  }
  return out;
}

void run_fixture(const std::string& name) {
  const std::string source = read_fixture(name);
  ASSERT_FALSE(source.empty());
  const std::set<LineCheck> expected = expected_findings(source);
  const std::set<LineCheck> actual = actual_findings(name, source);

  for (const LineCheck& want : expected) {
    EXPECT_TRUE(actual.count(want) != 0)
        << name << ":" << want.first << " expected a " << want.second
        << " diagnostic but the check stayed silent";
  }
  for (const LineCheck& got : actual) {
    EXPECT_TRUE(expected.count(got) != 0)
        << name << ":" << got.first << " unexpected " << got.second
        << " diagnostic on a line meant to be clean";
  }
}

TEST(NicmcastTidyFixtures, NondeterministicIteration) {
  run_fixture("nondeterministic_iteration.cpp");
}

TEST(NicmcastTidyFixtures, PointerOrder) { run_fixture("pointer_order.cpp"); }

TEST(NicmcastTidyFixtures, WallClock) { run_fixture("wall_clock.cpp"); }

TEST(NicmcastTidyFixtures, DescriptorEscape) {
  run_fixture("descriptor_escape.cpp");
}

TEST(NicmcastTidyFixtures, InlineFunctionCapture) {
  run_fixture("inline_function_capture.cpp");
}

TEST(NicmcastTidyFixtures, MemoryOrderAudit) {
  run_fixture("memory_order_audit.cpp");
}

TEST(NicmcastTidyFixtures, ShardStateEscape) {
  run_fixture("shard_state_escape.cpp");
}

TEST(NicmcastTidyFixtures, ThreadNondeterminism) {
  run_fixture("thread_nondeterminism.cpp");
}

// Portable-engine-only fixture (the clang plugin cannot see comments);
// scripts/check_fixtures.py skips it via the PORTABLE-ONLY marker when
// driving the clang engine.
TEST(NicmcastTidyFixtures, BareNolint) { run_fixture("bare_nolint.cpp"); }

// Every fixture must exercise both polarities: at least one EXPECT line
// (the check fires) and at least one function-bearing clean line (the
// check knows when to stay silent).
TEST(NicmcastTidyFixtures, FixturesCoverBothPolarities) {
  for (const char* name :
       {"nondeterministic_iteration.cpp", "pointer_order.cpp",
        "wall_clock.cpp", "descriptor_escape.cpp",
        "inline_function_capture.cpp", "memory_order_audit.cpp",
        "shard_state_escape.cpp", "thread_nondeterminism.cpp",
        "bare_nolint.cpp"}) {
    const std::string source = read_fixture(name);
    EXPECT_GE(expected_findings(source).size(), 3u)
        << name << " should seed several positive cases";
    EXPECT_NE(source.find("negative"), std::string::npos)
        << name << " should carry negative cases too";
  }
}

// --- Engine unit tests: suppression and lexer behaviour -------------------

TEST(NicmcastTidySuppression, NolintOnLine) {
  const std::string src = "long f() { return time(nullptr); }  "
                          "// NOLINT(nicmcast-wall-clock): fixture\n";
  SymbolTable symbols;
  collect_declarations(src, symbols);
  EXPECT_TRUE(run_checks("x.cpp", src, symbols, CheckOptions{}).empty());
}

// A bare suppression still silences the other checks — but it is itself a
// nicmcast-bare-nolint finding, and that finding cannot be suppressed by
// the very comment it indicts.
TEST(NicmcastTidySuppression, BareNolintSuppressesOthersButIsFlagged) {
  const std::string src = "long f() { return time(nullptr); }  // NOLINT\n";
  SymbolTable symbols;
  const auto diags = run_checks("x.cpp", src, symbols, CheckOptions{});
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].check, "nicmcast-bare-nolint");
}

TEST(NicmcastTidySuppression, CheckNameWithoutJustificationIsFlagged) {
  const std::string src = "long f() { return time(nullptr); }  "
                          "// NOLINT(nicmcast-wall-clock)\n";
  SymbolTable symbols;
  const auto diags = run_checks("x.cpp", src, symbols, CheckOptions{});
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].check, "nicmcast-bare-nolint");
}

TEST(NicmcastTidySuppression, NolintNextLine) {
  const std::string src =
      "// NOLINTNEXTLINE(nicmcast-wall-clock): fixture\n"
      "long f() { return time(nullptr); }\n";
  SymbolTable symbols;
  EXPECT_TRUE(run_checks("x.cpp", src, symbols, CheckOptions{}).empty());
}

TEST(NicmcastTidySuppression, WrongCheckNameDoesNotSuppress) {
  const std::string src = "long f() { return time(nullptr); }  "
                          "// NOLINT(nicmcast-pointer-order): wrong one\n";
  SymbolTable symbols;
  const auto diags = run_checks("x.cpp", src, symbols, CheckOptions{});
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].check, "nicmcast-wall-clock");
}

TEST(NicmcastTidyPaths, WallClockAllowedUnderHarness) {
  const std::string src = "long f() { return time(nullptr); }\n";
  SymbolTable symbols;
  EXPECT_TRUE(
      run_checks("src/harness/bench_io.cpp", src, symbols, CheckOptions{})
          .empty());
  EXPECT_EQ(
      run_checks("src/nic/nic.cpp", src, symbols, CheckOptions{}).size(),
      1u);
}

TEST(NicmcastTidyLexer, TokensCarryPositions) {
  const LexResult r = lex("int x = 1;\nfoo(bar);\n");
  ASSERT_GE(r.tokens.size(), 8u);
  EXPECT_EQ(r.tokens[0].text, "int");
  EXPECT_EQ(r.tokens[0].line, 1);
  EXPECT_EQ(r.tokens[4].text, ";");
  EXPECT_EQ(r.tokens[5].text, "foo");
  EXPECT_EQ(r.tokens[5].line, 2);
}

TEST(NicmcastTidyLexer, CommentsStringsAndPreprocessorAreSkipped) {
  const LexResult r = lex("#include <unordered_map>\n"
                          "// rand() in a comment\n"
                          "/* time(nullptr) */\n"
                          "const char* s = \"rand()\";\n");
  for (const Token& t : r.tokens) {
    EXPECT_NE(t.text, "rand");
    EXPECT_NE(t.text, "unordered_map");
  }
}

TEST(NicmcastTidyLexer, RawStringsAreOneToken) {
  const LexResult r = lex("auto s = R\"(time(nullptr))\";\n");
  SymbolTable symbols;
  EXPECT_TRUE(run_checks("x.cpp", "auto s = R\"(time(nullptr))\";\n",
                         symbols, CheckOptions{})
                  .empty());
  bool found_string = false;
  for (const Token& t : r.tokens) {
    if (t.kind == Token::Kind::kString) found_string = true;
  }
  EXPECT_TRUE(found_string);
}

}  // namespace
}  // namespace nicmcast::tidy

//===--- PointerOrderCheck.h - nicmcast-tidy --------------------*- C++ -*-===//
#ifndef NICMCAST_TIDY_POINTER_ORDER_CHECK_H
#define NICMCAST_TIDY_POINTER_ORDER_CHECK_H

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::nicmcast {

/// Flags constructs whose behaviour depends on pointer values, which vary
/// across runs with ASLR and allocation history:
///   - relational comparison of raw pointers (`a < b`)
///   - std::map / std::set keyed on pointer types
///   - std::hash<T*>
///   - reinterpret_cast / bit_cast of a pointer to an integer
/// Deterministic replay requires stable ids instead.
class PointerOrderCheck : public ClangTidyCheck {
public:
  using ClangTidyCheck::ClangTidyCheck;
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
};

} // namespace clang::tidy::nicmcast

#endif // NICMCAST_TIDY_POINTER_ORDER_CHECK_H

//===--- WallClockCheck.h - nicmcast-tidy -----------------------*- C++ -*-===//
#ifndef NICMCAST_TIDY_WALL_CLOCK_CHECK_H
#define NICMCAST_TIDY_WALL_CLOCK_CHECK_H

#include <string>
#include <vector>

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::nicmcast {

/// Forbids wall-clock and global-entropy reads outside the harness:
/// chrono clock ::now(), rand()/srand(), std::random_device, argless
/// time(), clock(), gettimeofday() and friends.  Simulated time comes from
/// the scheduler and randomness from the run seed; host clocks make replays
/// diverge.
///
/// Options:
///   AllowedPathPrefixes: semicolon-separated path prefixes (relative to
///   the repo root) where host timing is legitimate.  Default: src/harness/.
class WallClockCheck : public ClangTidyCheck {
public:
  WallClockCheck(StringRef Name, ClangTidyContext *Context);
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

private:
  bool isAllowedPath(SourceLocation Loc, const SourceManager &SM) const;

  const std::string RawAllowed;
  std::vector<std::string> AllowedPrefixes;
};

} // namespace clang::tidy::nicmcast

#endif // NICMCAST_TIDY_WALL_CLOCK_CHECK_H

//===--- MemoryOrderAuditCheck.cpp - nicmcast-tidy ------------------------===//

#include "MemoryOrderAuditCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::nicmcast {

namespace {

// std::atomic<T> and the base it inherits the member set from.
AST_MATCHER_FUNCTION(ast_matchers::internal::Matcher<CXXRecordDecl>,
                     atomicClass) {
  return cxxRecordDecl(hasAnyName("::std::atomic", "::std::__atomic_base",
                                  "::std::atomic_flag"));
}

bool isMemoryOrderType(QualType QT) {
  if (QT.isNull())
    return false;
  const auto *ED = QT.getCanonicalType()->getAs<EnumType>();
  if (ED == nullptr || ED->getDecl() == nullptr)
    return false;
  const auto *ND = dyn_cast<NamedDecl>(ED->getDecl());
  return ND != nullptr && ND->getName() == "memory_order";
}

/// True when the call spells at least one std::memory_order argument in
/// the source (a CXXDefaultArgExpr is the implicit seq_cst default, which
/// is exactly what the check forbids).
bool hasExplicitOrderArg(const CallExpr *Call) {
  for (const Expr *Arg : Call->arguments()) {
    if (isa<CXXDefaultArgExpr>(Arg))
      continue;
    if (isMemoryOrderType(Arg->getType()))
      return true;
  }
  return false;
}

bool isAtomicQualType(QualType QT) {
  if (QT.isNull())
    return false;
  if (QT->isAtomicType())
    return true;
  const auto *RD = QT.getCanonicalType()->getAsCXXRecordDecl();
  return RD != nullptr && RD->getName() == "atomic";
}

} // namespace

void MemoryOrderAuditCheck::registerMatchers(MatchFinder *Finder) {
  // Named-member form: x.load(), refs.fetch_add(1), ... with no explicit
  // order argument (the default-arg case is detected in check()).
  Finder->addMatcher(
      cxxMemberCallExpr(
          callee(cxxMethodDecl(
              hasAnyName("load", "store", "exchange", "fetch_add",
                         "fetch_sub", "fetch_and", "fetch_or", "fetch_xor",
                         "compare_exchange_weak", "compare_exchange_strong",
                         "test_and_set", "clear", "wait"),
              ofClass(atomicClass()))))
          .bind("member"),
      this);

  // Operator sugar: flag_ = v, ++count_, count_ += n and the implicit
  // conversion read `if (flag_)` — all sugar over seq_cst operations.
  Finder->addMatcher(
      cxxOperatorCallExpr(callee(cxxMethodDecl(ofClass(atomicClass()))))
          .bind("sugar"),
      this);
  Finder->addMatcher(
      cxxMemberCallExpr(callee(cxxConversionDecl(ofClass(atomicClass()))))
          .bind("sugar"),
      this);

  // A relaxed load guarding a publication: the branch deletes or stores to
  // a non-atomic member, yet the flag read provides no acquire edge.
  const auto RelaxedLoad =
      cxxMemberCallExpr(
          callee(cxxMethodDecl(hasName("load"), ofClass(atomicClass()))),
          hasAnyArgument(ignoringImplicit(declRefExpr(to(namedDecl(
              hasAnyName("memory_order_relaxed", "relaxed")))))))
          .bind("rload");
  const auto PublishesNonAtomic = anyOf(
      hasDescendant(cxxDeleteExpr()),
      hasDescendant(binaryOperator(
          isAssignmentOperator(),
          hasLHS(memberExpr(member(fieldDecl().bind("pubfield")))))));
  Finder->addMatcher(
      ifStmt(hasCondition(expr(anyOf(RelaxedLoad,
                                     hasDescendant(RelaxedLoad)))),
             hasThen(stmt(PublishesNonAtomic))),
      this);
}

void MemoryOrderAuditCheck::check(const MatchFinder::MatchResult &Result) {
  if (const auto *Member =
          Result.Nodes.getNodeAs<CXXMemberCallExpr>("member")) {
    if (!hasExplicitOrderArg(Member)) {
      diag(Member->getExprLoc(),
           "atomic operation relies on the implicit seq_cst default; pass "
           "an explicit std::memory_order and justify it (DESIGN.md §4.9)");
    }
    return;
  }

  if (const auto *Sugar = Result.Nodes.getNodeAs<CallExpr>("sugar")) {
    diag(Sugar->getExprLoc(),
         "operator access to a std::atomic is an implicit seq_cst "
         "operation; spell it as load()/store()/fetch_*() with an explicit "
         "std::memory_order");
    return;
  }

  if (const auto *Load =
          Result.Nodes.getNodeAs<CXXMemberCallExpr>("rload")) {
    // The publication only races when the published state is not itself
    // an atomic; a relaxed store to another atomic is a separate site the
    // member matcher already audits.
    if (const auto *Field = Result.Nodes.getNodeAs<FieldDecl>("pubfield")) {
      if (isAtomicQualType(Field->getType()))
        return;
    }
    diag(Load->getExprLoc(),
         "relaxed load guards a branch that publishes non-atomic state; "
         "the load carries no happens-before edge — acquire here (paired "
         "with a release on the store side) or move the publication "
         "behind a proper synchronizer");
  }
}

} // namespace clang::tidy::nicmcast

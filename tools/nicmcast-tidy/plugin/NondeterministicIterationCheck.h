//===--- NondeterministicIterationCheck.h - nicmcast-tidy -------*- C++ -*-===//
#ifndef NICMCAST_TIDY_NONDETERMINISTIC_ITERATION_CHECK_H
#define NICMCAST_TIDY_NONDETERMINISTIC_ITERATION_CHECK_H

#include <string>
#include <vector>

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::nicmcast {

/// Flags range-for loops over unordered associative containers whose body
/// feeds an ordering-sensitive sink (event scheduling, trace emission,
/// violation/log appends).  Hash-map iteration order depends on the hash
/// seed and allocation history, so anything appended per-element in that
/// order leaks host nondeterminism into event_order_hash and replay logs.
///
/// Options:
///   Sinks: semicolon-separated callee names treated as ordering-sensitive.
class NondeterministicIterationCheck : public ClangTidyCheck {
public:
  NondeterministicIterationCheck(StringRef Name, ClangTidyContext *Context);
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }

private:
  const std::string RawSinks;
  std::vector<std::string> Sinks;
};

} // namespace clang::tidy::nicmcast

#endif // NICMCAST_TIDY_NONDETERMINISTIC_ITERATION_CHECK_H

//===--- MemoryOrderAuditCheck.h - nicmcast-tidy ----------------*- C++ -*-===//
#ifndef NICMCAST_TIDY_MEMORY_ORDER_AUDIT_CHECK_H
#define NICMCAST_TIDY_MEMORY_ORDER_AUDIT_CHECK_H

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::nicmcast {

/// Enforces the concurrency contract's memory-order rules (DESIGN.md §4.9):
///
///  * every std::atomic load/store/exchange/fetch_*/compare_exchange call
///    must pass an explicit std::memory_order — the seq_cst default hides
///    the reasoning the contract requires at each site;
///  * atomic operator sugar (=, ++, --, +=, implicit conversion reads) is
///    an implicit seq_cst operation and is flagged the same way;
///  * a memory_order_relaxed load must not guard a branch that publishes
///    non-atomic state (deletes, or stores to non-atomic members): relaxed
///    carries no happens-before edge, so observers race with everything
///    sequenced before the corresponding store.
class MemoryOrderAuditCheck : public ClangTidyCheck {
public:
  using ClangTidyCheck::ClangTidyCheck;
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

} // namespace clang::tidy::nicmcast

#endif // NICMCAST_TIDY_MEMORY_ORDER_AUDIT_CHECK_H

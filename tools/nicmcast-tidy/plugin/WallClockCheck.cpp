//===--- WallClockCheck.cpp - nicmcast-tidy -------------------------------===//

#include "WallClockCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/Basic/SourceManager.h"

using namespace clang::ast_matchers;

namespace clang::tidy::nicmcast {

WallClockCheck::WallClockCheck(StringRef Name, ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      RawAllowed(Options.get("AllowedPathPrefixes", "src/harness/")) {
  SmallVector<StringRef, 8> Parts;
  StringRef(RawAllowed).split(Parts, ';', /*MaxSplit=*/-1,
                              /*KeepEmpty=*/false);
  for (StringRef P : Parts)
    AllowedPrefixes.push_back(P.trim().str());
}

void WallClockCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "AllowedPathPrefixes", RawAllowed);
}

void WallClockCheck::registerMatchers(MatchFinder *Finder) {
  // steady_clock::now() and friends.
  Finder->addMatcher(
      callExpr(callee(cxxMethodDecl(
                   hasName("now"),
                   ofClass(hasAnyName("::std::chrono::steady_clock",
                                      "::std::chrono::system_clock",
                                      "::std::chrono::high_resolution_clock")))))
          .bind("now"),
      this);

  // Global entropy / wall-clock C calls.  Only free functions match: a
  // simulation model's own member named rand() or time() is fine.
  Finder->addMatcher(
      callExpr(callee(functionDecl(
                   hasAnyName("::rand", "::srand", "::clock",
                              "::gettimeofday", "::clock_gettime",
                              "::timespec_get", "::localtime", "::gmtime"),
                   unless(cxxMethodDecl()))))
          .bind("entropy"),
      this);

  // time(nullptr) / time(0) / time() — the wall-clock read spelling.
  Finder->addMatcher(
      callExpr(callee(functionDecl(hasName("::time"),
                                   unless(cxxMethodDecl()))))
          .bind("time"),
      this);

  // std::random_device pulls from host entropy at construction.
  Finder->addMatcher(
      varDecl(hasType(qualType(hasUnqualifiedDesugaredType(recordType(
                  hasDeclaration(cxxRecordDecl(
                      hasName("::std::random_device"))))))))
          .bind("rd"),
      this);
}

bool WallClockCheck::isAllowedPath(SourceLocation Loc,
                                   const SourceManager &SM) const {
  const StringRef File = SM.getFilename(SM.getExpansionLoc(Loc));
  for (const std::string &Prefix : AllowedPrefixes) {
    if (File.contains(Prefix))
      return true;
  }
  return false;
}

void WallClockCheck::check(const MatchFinder::MatchResult &Result) {
  const SourceManager &SM = *Result.SourceManager;

  if (const auto *Now = Result.Nodes.getNodeAs<CallExpr>("now")) {
    if (isAllowedPath(Now->getBeginLoc(), SM))
      return;
    diag(Now->getBeginLoc(),
         "wall-clock read in deterministic code; simulated time comes from "
         "the scheduler, host timing belongs in src/harness/");
    return;
  }

  if (const auto *Call = Result.Nodes.getNodeAs<CallExpr>("entropy")) {
    if (isAllowedPath(Call->getBeginLoc(), SM))
      return;
    const auto *Callee = Call->getDirectCallee();
    diag(Call->getBeginLoc(),
         "'%0' reads host clock or entropy in deterministic code; derive "
         "time from the scheduler and randomness from the run seed")
        << (Callee ? Callee->getNameAsString() : std::string("<callee>"));
    return;
  }

  if (const auto *Time = Result.Nodes.getNodeAs<CallExpr>("time")) {
    if (isAllowedPath(Time->getBeginLoc(), SM))
      return;
    // Only the argless / null-destination spelling is the wall-clock read.
    bool Argless = Time->getNumArgs() == 0;
    if (Time->getNumArgs() == 1) {
      const Expr *Arg = Time->getArg(0)->IgnoreParenImpCasts();
      Argless = Arg->isNullPointerConstant(*Result.Context,
                                           Expr::NPC_ValueDependentIsNull) !=
                Expr::NPCK_NotNull;
    }
    if (Argless)
      diag(Time->getBeginLoc(),
           "time() reads the wall clock; seed-derived values keep replays "
           "bit-identical");
    return;
  }

  if (const auto *RD = Result.Nodes.getNodeAs<VarDecl>("rd")) {
    if (isAllowedPath(RD->getLocation(), SM))
      return;
    diag(RD->getLocation(),
         "std::random_device injects nondeterminism; derive randomness "
         "from the run seed (sim::Rng)");
  }
}

} // namespace clang::tidy::nicmcast

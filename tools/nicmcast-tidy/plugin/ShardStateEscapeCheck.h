//===--- ShardStateEscapeCheck.h - nicmcast-tidy ----------------*- C++ -*-===//
#ifndef NICMCAST_TIDY_SHARD_STATE_ESCAPE_CHECK_H
#define NICMCAST_TIDY_SHARD_STATE_ESCAPE_CHECK_H

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::nicmcast {

/// Flags non-atomic members written from a worker-thread lambda (one
/// handed to std::thread/std::jthread/std::async or appended to a thread
/// container) without a lock in the body.  Shard state in the PDES core is
/// owner-confined: cross-shard communication goes through SpscChannels,
/// shared flags are atomics with explicit orders, and anything else takes
/// a Mutex + NM_GUARDED_BY.  A bare member store from a worker body is the
/// escape hatch this closes.
class ShardStateEscapeCheck : public ClangTidyCheck {
public:
  using ClangTidyCheck::ClangTidyCheck;
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

} // namespace clang::tidy::nicmcast

#endif // NICMCAST_TIDY_SHARD_STATE_ESCAPE_CHECK_H

//===--- InlineFunctionCaptureCheck.h - nicmcast-tidy -----------*- C++ -*-===//
#ifndef NICMCAST_TIDY_INLINE_FUNCTION_CAPTURE_CHECK_H
#define NICMCAST_TIDY_INLINE_FUNCTION_CAPTURE_CHECK_H

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::nicmcast {

/// Flags lambdas converted to sim::InlineFunction whose closure exceeds
/// the InlineFunction's inline byte budget (the conversion would fail to
/// compile or, for the unchecked path, heap-allocate and break the
/// allocation-free event loop), and lambdas capturing raw pooled pointers
/// (PacketDescriptor*) by value, which dangle once the pool recycles.
///
/// Unlike the portable engine's lower-bound estimate, this check reads the
/// closure type's actual layout from the AST, so its byte counts are exact.
class InlineFunctionCaptureCheck : public ClangTidyCheck {
public:
  using ClangTidyCheck::ClangTidyCheck;
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
};

} // namespace clang::tidy::nicmcast

#endif // NICMCAST_TIDY_INLINE_FUNCTION_CAPTURE_CHECK_H

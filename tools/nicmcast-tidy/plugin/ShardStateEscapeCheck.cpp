//===--- ShardStateEscapeCheck.cpp - nicmcast-tidy ------------------------===//

#include "ShardStateEscapeCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::nicmcast {

namespace {

bool typeNameContains(QualType QT, StringRef Needle) {
  if (QT.isNull())
    return false;
  return StringRef(QT.getCanonicalType().getAsString()).contains(Needle);
}

/// True when the lambda body takes any recognized lock — the sanctioned
/// sharing path, which the clang thread-safety annotations then verify.
bool bodyTakesLock(const Stmt *Body, ASTContext &Ctx) {
  const auto Locks = match(
      findAll(varDecl(hasType(qualType(hasUnqualifiedDesugaredType(
          recordType(hasDeclaration(cxxRecordDecl(hasAnyName(
              "::std::lock_guard", "::std::unique_lock",
              "::std::scoped_lock", "::std::shared_lock",
              "::nicmcast::sim::MutexLock"))))))))),
      *Body, Ctx);
  return !Locks.empty();
}

} // namespace

void ShardStateEscapeCheck::registerMatchers(MatchFinder *Finder) {
  // Lambdas constructed directly into a thread object...
  Finder->addMatcher(
      lambdaExpr(hasAncestor(cxxConstructExpr(hasDeclaration(
                     cxxConstructorDecl(ofClass(hasAnyName(
                         "::std::thread", "::std::jthread")))))))
          .bind("lambda"),
      this);
  // ...or handed to std::async / appended to a thread container.  The
  // receiver type is validated in check() for the append case.
  Finder->addMatcher(
      lambdaExpr(hasAncestor(
                     callExpr(callee(functionDecl(hasAnyName(
                                 "emplace_back", "push_back", "async"))))
                         .bind("spawncall")))
          .bind("lambda"),
      this);
}

void ShardStateEscapeCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Lambda = Result.Nodes.getNodeAs<LambdaExpr>("lambda");
  if (Lambda == nullptr || Lambda->getBody() == nullptr)
    return;
  ASTContext &Ctx = *Result.Context;

  if (const auto *Spawn = Result.Nodes.getNodeAs<CallExpr>("spawncall")) {
    // emplace_back on a non-thread container is not a spawn site.
    if (const auto *Member = dyn_cast<CXXMemberCallExpr>(Spawn)) {
      if (!typeNameContains(Member->getObjectType(), "thread"))
        return;
    }
  }

  const Stmt *Body = Lambda->getBody();
  if (bodyTakesLock(Body, Ctx))
    return;

  // Member writes through the captured `this` (or any member expression):
  // assignments and increments to fields whose type is not an atomic.
  auto FlagField = [&](const MemberExpr *LHS, SourceLocation Loc) {
    const auto *Field = dyn_cast_or_null<FieldDecl>(LHS->getMemberDecl());
    if (Field == nullptr)
      return;
    if (typeNameContains(Field->getType(), "atomic"))
      return;
    diag(Loc, "non-atomic state '%0' written from a worker-thread lambda; "
              "shard state is owner-confined — post() it through a "
              "channel, make it an atomic with an explicit order, or "
              "guard it with a Mutex + NM_GUARDED_BY")
        << Field->getName();
  };

  for (const auto &M : match(
           findAll(binaryOperator(isAssignmentOperator(),
                                  hasLHS(memberExpr().bind("lhs")))
                       .bind("write")),
           *Body, Ctx)) {
    const auto *LHS = M.getNodeAs<MemberExpr>("lhs");
    const auto *Write = M.getNodeAs<BinaryOperator>("write");
    if (LHS != nullptr && Write != nullptr)
      FlagField(LHS, Write->getOperatorLoc());
  }
  for (const auto &M : match(
           findAll(unaryOperator(hasAnyOperatorName("++", "--"),
                                 hasUnaryOperand(memberExpr().bind("lhs")))
                       .bind("write")),
           *Body, Ctx)) {
    const auto *LHS = M.getNodeAs<MemberExpr>("lhs");
    const auto *Write = M.getNodeAs<UnaryOperator>("write");
    if (LHS != nullptr && Write != nullptr)
      FlagField(LHS, Write->getOperatorLoc());
  }
}

} // namespace clang::tidy::nicmcast

//===--- DescriptorEscapeCheck.h - nicmcast-tidy ----------------*- C++ -*-===//
#ifndef NICMCAST_TIDY_DESCRIPTOR_ESCAPE_CHECK_H
#define NICMCAST_TIDY_DESCRIPTOR_ESCAPE_CHECK_H

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::nicmcast {

/// Flags pooled descriptor / buffer borrows that escape their completion
/// callback without taking a reference:
///   - `&*ref` — stripping the DescriptorRef to a raw PacketDescriptor*
///   - capturing a DescriptorRef or net::Buffer by reference in a lambda
///     handed to the scheduler (schedule / schedule_at / post / defer) or
///     stored in an on_* completion slot
/// The pool recycles the descriptor as soon as the refcount drops; an
/// escaped raw pointer or by-ref capture then reads recycled memory.
class DescriptorEscapeCheck : public ClangTidyCheck {
public:
  using ClangTidyCheck::ClangTidyCheck;
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
};

} // namespace clang::tidy::nicmcast

#endif // NICMCAST_TIDY_DESCRIPTOR_ESCAPE_CHECK_H

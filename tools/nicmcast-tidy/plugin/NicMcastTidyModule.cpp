//===--- NicMcastTidyModule.cpp - nicmcast-* check registration -----------===//
//
// Registers the determinism-contract checks as a clang-tidy module, loaded
// with `clang-tidy -load NicMcastTidyModule.so -checks=nicmcast-*`.
// (The portable-only nicmcast-bare-nolint check has no AST twin here.)
//
// The portable engine in ../portable implements the same checks for
// build environments without a clang toolchain; the two engines share
// check names, fixtures and suppression-comment semantics.
//
//===----------------------------------------------------------------------===//

#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

#include "DescriptorEscapeCheck.h"
#include "InlineFunctionCaptureCheck.h"
#include "MemoryOrderAuditCheck.h"
#include "NondeterministicIterationCheck.h"
#include "PointerOrderCheck.h"
#include "ShardStateEscapeCheck.h"
#include "ThreadNondeterminismCheck.h"
#include "WallClockCheck.h"

namespace clang::tidy::nicmcast {

class NicMcastTidyModule : public ClangTidyModule {
public:
  void addCheckFactories(ClangTidyCheckFactories &Factories) override {
    Factories.registerCheck<NondeterministicIterationCheck>(
        "nicmcast-nondeterministic-iteration");
    Factories.registerCheck<PointerOrderCheck>("nicmcast-pointer-order");
    Factories.registerCheck<WallClockCheck>("nicmcast-wall-clock");
    Factories.registerCheck<DescriptorEscapeCheck>(
        "nicmcast-descriptor-escape");
    Factories.registerCheck<InlineFunctionCaptureCheck>(
        "nicmcast-inline-function-capture");
    Factories.registerCheck<MemoryOrderAuditCheck>(
        "nicmcast-memory-order-audit");
    Factories.registerCheck<ShardStateEscapeCheck>(
        "nicmcast-shard-state-escape");
    Factories.registerCheck<ThreadNondeterminismCheck>(
        "nicmcast-thread-nondeterminism");
  }
};

} // namespace clang::tidy::nicmcast

namespace clang::tidy {

static ClangTidyModuleRegistry::Add<nicmcast::NicMcastTidyModule>
    X("nicmcast-module", "Determinism-contract checks for the nicmcast "
                         "simulator.");

// Anchor so -load keeps the module object file.
volatile int NicMcastTidyModuleAnchorSource = 0;

} // namespace clang::tidy

//===--- ThreadNondeterminismCheck.h - nicmcast-tidy ------------*- C++ -*-===//
#ifndef NICMCAST_TIDY_THREAD_NONDETERMINISM_CHECK_H
#define NICMCAST_TIDY_THREAD_NONDETERMINISM_CHECK_H

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::nicmcast {

/// Flags thread-identity leaks into simulator state: thread_local
/// variables, std::this_thread::get_id() / thread.get_id() /
/// pthread_self() / gettid() calls, and std::thread::id-typed
/// declarations (including id-keyed containers).  The sharded PDES core
/// must produce identical results for every --shards value; anything
/// keyed on scheduler-assigned identity cannot.
class ThreadNondeterminismCheck : public ClangTidyCheck {
public:
  using ClangTidyCheck::ClangTidyCheck;
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

} // namespace clang::tidy::nicmcast

#endif // NICMCAST_TIDY_THREAD_NONDETERMINISM_CHECK_H

//===--- ThreadNondeterminismCheck.cpp - nicmcast-tidy --------------------===//

#include "ThreadNondeterminismCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::nicmcast {

void ThreadNondeterminismCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(
      varDecl(hasThreadStorageDuration()).bind("tls"), this);

  Finder->addMatcher(
      callExpr(callee(functionDecl(hasName("::std::this_thread::get_id"))))
          .bind("getid"),
      this);
  Finder->addMatcher(
      cxxMemberCallExpr(callee(cxxMethodDecl(
                            hasName("get_id"),
                            ofClass(hasAnyName("::std::thread",
                                               "::std::jthread")))))
          .bind("getid"),
      this);
  Finder->addMatcher(
      callExpr(callee(functionDecl(hasAnyName("::pthread_self", "::gettid"),
                                   unless(cxxMethodDecl()))))
          .bind("osid"),
      this);

  // std::thread::id spelled as a declaration type — a member, variable or
  // container key built on scheduler identity.  Restricted to variables
  // and fields: a function whose signature merely mentions the type (a
  // join helper taking std::thread&, say) stores nothing.
  const auto ThreadIdRecord = qualType(hasUnqualifiedDesugaredType(
      recordType(hasDeclaration(cxxRecordDecl(hasName("::std::thread::id"))))));
  Finder->addMatcher(
      varDecl(hasType(qualType(anyOf(ThreadIdRecord,
                                     hasDescendant(ThreadIdRecord)))))
          .bind("idtype"),
      this);
  Finder->addMatcher(
      fieldDecl(hasType(qualType(anyOf(ThreadIdRecord,
                                       hasDescendant(ThreadIdRecord)))))
          .bind("idtype"),
      this);
}

void ThreadNondeterminismCheck::check(
    const MatchFinder::MatchResult &Result) {
  if (const auto *TLS = Result.Nodes.getNodeAs<VarDecl>("tls")) {
    diag(TLS->getLocation(),
         "thread_local state varies with the worker count; keep per-shard "
         "state in the shard's own structures so --shards cannot change "
         "results");
    return;
  }
  if (const auto *Call = Result.Nodes.getNodeAs<CallExpr>("getid")) {
    diag(Call->getExprLoc(),
         "thread get_id() keys behaviour on scheduler identity, which "
         "differs across runs and shard counts; use the shard index "
         "instead");
    return;
  }
  if (const auto *Call = Result.Nodes.getNodeAs<CallExpr>("osid")) {
    diag(Call->getExprLoc(),
         "OS thread identity leaks into simulator state; key on the shard "
         "index instead");
    return;
  }
  if (const auto *VD = Result.Nodes.getNodeAs<ValueDecl>("idtype")) {
    diag(VD->getLocation(),
         "std::thread::id values are scheduler-assigned and vary across "
         "runs; key state on the shard index instead");
  }
}

} // namespace clang::tidy::nicmcast

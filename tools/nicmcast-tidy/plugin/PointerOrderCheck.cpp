//===--- PointerOrderCheck.cpp - nicmcast-tidy ----------------------------===//

#include "PointerOrderCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::nicmcast {

void PointerOrderCheck::registerMatchers(MatchFinder *Finder) {
  // a < b on raw pointers.  std::less<T*> and friends are intentionally
  // not modelled: the contract bans ordering on addresses, and the
  // idiomatic violations in this codebase are the bare operators.
  Finder->addMatcher(
      binaryOperator(
          hasAnyOperatorName("<", ">", "<=", ">="),
          hasLHS(expr(hasType(qualType(isAnyPointer())))),
          hasRHS(expr(hasType(qualType(isAnyPointer())))))
          .bind("cmp"),
      this);

  // std::map / std::set keyed on a pointer type: iteration order is
  // allocation order.
  Finder->addMatcher(
      varDecl(hasType(qualType(hasUnqualifiedDesugaredType(recordType(
                  hasDeclaration(classTemplateSpecializationDecl(
                      hasAnyName("::std::map", "::std::set",
                                 "::std::multimap", "::std::multiset"),
                      hasTemplateArgument(
                          0, refersToType(qualType(isAnyPointer()))))))))))
          .bind("ptrkeyed"),
      this);

  // std::hash<T*> folds an address into deterministic state.
  Finder->addMatcher(
      loc(templateSpecializationType(hasDeclaration(
              classTemplateSpecializationDecl(
                  hasName("::std::hash"),
                  hasTemplateArgument(
                      0, refersToType(qualType(isAnyPointer())))))))
          .bind("hashptr"),
      this);

  // reinterpret_cast<uintptr_t>(p) (and C-style equivalents resolved to
  // a reinterpret cast) — a pointer-value fold.
  Finder->addMatcher(
      cxxReinterpretCastExpr(
          hasSourceExpression(hasType(qualType(isAnyPointer()))),
          hasDestinationType(isInteger()))
          .bind("ptrcast"),
      this);
}

void PointerOrderCheck::check(const MatchFinder::MatchResult &Result) {
  if (const auto *Cmp = Result.Nodes.getNodeAs<BinaryOperator>("cmp")) {
    diag(Cmp->getOperatorLoc(),
         "relational comparison of raw pointers orders by allocation "
         "address; compare stable ids instead");
    return;
  }
  if (const auto *Var = Result.Nodes.getNodeAs<VarDecl>("ptrkeyed")) {
    diag(Var->getLocation(),
         "ordered container keyed on pointer values; iteration order "
         "follows allocation addresses, which differ across runs — key on "
         "a stable id instead");
    return;
  }
  if (const auto *Loc =
          Result.Nodes.getNodeAs<TypeLoc>("hashptr")) {
    diag(Loc->getBeginLoc(),
         "std::hash over a pointer type feeds addresses into deterministic "
         "state; hash a stable id instead");
    return;
  }
  if (const auto *Cast =
          Result.Nodes.getNodeAs<CXXReinterpretCastExpr>("ptrcast")) {
    diag(Cast->getBeginLoc(),
         "casting a pointer to an integer folds the allocation address "
         "into a value; use a stable id instead");
  }
}

} // namespace clang::tidy::nicmcast

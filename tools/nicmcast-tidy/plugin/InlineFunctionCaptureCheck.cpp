//===--- InlineFunctionCaptureCheck.cpp - nicmcast-tidy -------------------===//

#include "InlineFunctionCaptureCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/AST/DeclTemplate.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::nicmcast {

void InlineFunctionCaptureCheck::registerMatchers(MatchFinder *Finder) {
  // A lambda converted into an InlineFunction<Sig, InlineBytes>.  The
  // converting constructor makes every conversion a CXXConstructExpr,
  // whether it appears in a schedule(...) argument, an on_* member
  // assignment, or an initializer.
  Finder->addMatcher(
      cxxConstructExpr(
          hasDeclaration(cxxConstructorDecl(ofClass(
              classTemplateSpecializationDecl(hasName("InlineFunction"))
                  .bind("spec")))),
          hasDescendant(lambdaExpr().bind("lambda")))
          .bind("ctor"),
      this);
}

void InlineFunctionCaptureCheck::check(
    const MatchFinder::MatchResult &Result) {
  const auto *Spec =
      Result.Nodes.getNodeAs<ClassTemplateSpecializationDecl>("spec");
  const auto *Lambda = Result.Nodes.getNodeAs<LambdaExpr>("lambda");
  if (!Spec || !Lambda)
    return;
  ASTContext &Ctx = *Result.Context;

  // InlineFunction<Signature, InlineBytes>: budget is the first integral
  // template argument (position-independent so a reordered parameter list
  // keeps working).
  uint64_t Budget = 0;
  for (const TemplateArgument &Arg : Spec->getTemplateArgs().asArray()) {
    if (Arg.getKind() == TemplateArgument::Integral) {
      Budget = Arg.getAsIntegral().getZExtValue();
      break;
    }
  }
  if (Budget == 0)
    return;

  const CXXRecordDecl *Closure = Lambda->getLambdaClass();
  if (Closure && Closure->isCompleteDefinition() &&
      !Closure->isDependentType()) {
    const uint64_t ClosureBytes =
        Ctx.getTypeSizeInChars(Ctx.getRecordType(Closure)).getQuantity();
    if (ClosureBytes > Budget) {
      diag(Lambda->getBeginLoc(),
           "lambda closure is %0 bytes but this InlineFunction inlines at "
           "most %1; trim the capture list or box shared state")
          << static_cast<unsigned>(ClosureBytes)
          << static_cast<unsigned>(Budget);
    }
  }

  // Raw pooled pointers captured by value dangle once the pool recycles
  // the descriptor; the DescriptorRef wrapper is the sanctioned capture.
  for (const LambdaCapture &Cap : Lambda->captures()) {
    if (Cap.getCaptureKind() != LCK_ByCopy || !Cap.capturesVariable())
      continue;
    const auto *Var = dyn_cast<VarDecl>(Cap.getCapturedVar());
    if (!Var)
      continue;
    const QualType QT = Var->getType().getCanonicalType();
    if (!QT->isPointerType())
      continue;
    const auto *Pointee = QT->getPointeeType()->getAsCXXRecordDecl();
    if (!Pointee || Pointee->getName() != "PacketDescriptor")
      continue;
    diag(Cap.getLocation(),
         "capturing raw pooled pointer '%0' by value; the pool may recycle "
         "the descriptor before the callback runs — capture a "
         "DescriptorRef instead")
        << Var->getName();
  }
}

} // namespace clang::tidy::nicmcast

//===--- DescriptorEscapeCheck.cpp - nicmcast-tidy ------------------------===//

#include "DescriptorEscapeCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::nicmcast {

namespace {

bool isBorrowedRecord(QualType QT) {
  const auto *Record = QT.getCanonicalType()->getAsCXXRecordDecl();
  if (!Record)
    return false;
  const StringRef Name = Record->getName();
  return Name == "DescriptorRef" || Name == "Buffer";
}

} // namespace

void DescriptorEscapeCheck::registerMatchers(MatchFinder *Finder) {
  // &*ref — strips the refcount and yields a raw pooled pointer.  The
  // operand is DescriptorRef::operator*.
  Finder->addMatcher(
      unaryOperator(
          hasOperatorName("&"),
          hasUnaryOperand(cxxOperatorCallExpr(
              hasOverloadedOperatorName("*"),
              hasArgument(0, expr(hasType(cxxRecordDecl(
                                 hasName("DescriptorRef"))))))))
          .bind("strip"),
      this);

  // A lambda with at least one by-reference capture, handed to a
  // scheduling entry point.  Which captures are the problem is decided in
  // check(), where the capture list is walked.
  Finder->addMatcher(
      callExpr(callee(functionDecl(hasAnyName(
                   "schedule", "schedule_at", "schedule_after", "at",
                   "after", "defer", "post"))),
               forEachArgumentWithParam(
                   hasDescendant(lambdaExpr().bind("lambda")),
                   parmVarDecl()))
          .bind("sched"),
      this);
}

void DescriptorEscapeCheck::check(const MatchFinder::MatchResult &Result) {
  if (const auto *Strip = Result.Nodes.getNodeAs<UnaryOperator>("strip")) {
    diag(Strip->getOperatorLoc(),
         "taking the address through a DescriptorRef yields a raw pooled "
         "pointer that outlives the borrow; pass the DescriptorRef (it "
         "holds the reference)");
    return;
  }

  const auto *Lambda = Result.Nodes.getNodeAs<LambdaExpr>("lambda");
  if (!Lambda)
    return;
  for (const LambdaCapture &Cap : Lambda->captures()) {
    if (Cap.getCaptureKind() != LCK_ByRef || !Cap.capturesVariable())
      continue;
    const auto *Var = dyn_cast<VarDecl>(Cap.getCapturedVar());
    if (!Var || !isBorrowedRecord(Var->getType()))
      continue;
    diag(Cap.getLocation(),
         "'%0' is captured by reference into a deferred callback; the "
         "borrow ends when the enclosing callback returns — capture by "
         "value to take a reference")
        << Var->getName();
  }
}

} // namespace clang::tidy::nicmcast

//===--- NondeterministicIterationCheck.cpp - nicmcast-tidy ---------------===//

#include "NondeterministicIterationCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::nicmcast {

namespace {

constexpr char kDefaultSinks[] =
    "schedule;schedule_at;schedule_after;emit;emit_trace;trace;send;"
    "send_packet;post;enqueue;push_back;violation";

std::vector<std::string> splitList(StringRef Raw) {
  std::vector<std::string> Out;
  SmallVector<StringRef, 16> Parts;
  Raw.split(Parts, ';', /*MaxSplit=*/-1, /*KeepEmpty=*/false);
  for (StringRef P : Parts)
    Out.push_back(P.trim().str());
  return Out;
}

} // namespace

NondeterministicIterationCheck::NondeterministicIterationCheck(
    StringRef Name, ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      RawSinks(Options.get("Sinks", kDefaultSinks)),
      Sinks(splitList(RawSinks)) {}

void NondeterministicIterationCheck::storeOptions(
    ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "Sinks", RawSinks);
}

void NondeterministicIterationCheck::registerMatchers(MatchFinder *Finder) {
  // The range init must BE the unordered container (possibly via member
  // access), not merely mention one: wrapping the container in a call that
  // materialises a sorted copy — `sorted_keys(conns_)` — is the sanctioned
  // fix and must stay clean.
  const auto UnorderedContainer = qualType(hasUnqualifiedDesugaredType(
      recordType(hasDeclaration(classTemplateSpecializationDecl(hasAnyName(
          "::std::unordered_map", "::std::unordered_set",
          "::std::unordered_multimap", "::std::unordered_multiset"))))));

  std::vector<StringRef> SinkRefs(Sinks.begin(), Sinks.end());
  const auto Sink =
      callExpr(callee(functionDecl(hasAnyName(SinkRefs)))).bind("sink");

  Finder->addMatcher(
      cxxForRangeStmt(
          hasRangeInit(expr(ignoringImplicit(
              anyOf(declRefExpr(hasType(UnorderedContainer)),
                    memberExpr(hasType(UnorderedContainer)))))),
          hasDescendant(Sink))
          .bind("loop"),
      this);
}

void NondeterministicIterationCheck::check(
    const MatchFinder::MatchResult &Result) {
  const auto *Loop = Result.Nodes.getNodeAs<CXXForRangeStmt>("loop");
  const auto *Sink = Result.Nodes.getNodeAs<CallExpr>("sink");
  if (!Loop || !Sink)
    return;
  const auto *Callee = Sink->getDirectCallee();
  diag(Loop->getForLoc(),
       "range-for over unordered container calls ordering-sensitive '%0' "
       "in its body; hash-map order leaks into event_order_hash — iterate "
       "a sorted copy of the keys")
      << (Callee ? Callee->getNameAsString() : std::string("<sink>"));
}

} // namespace clang::tidy::nicmcast

// Fixture: nicmcast-descriptor-escape
//
// Positive cases: a DescriptorRef borrowed by a completion callback
// escaping as a raw pointer or by-reference capture, and a net::Buffer
// captured by reference into deferred work.  Negative cases: the
// sanctioned patterns — use the ref inside the callback, capture by
// value (refcount bump) when state must outlive the scope.
#include "stubs.hpp"

namespace fixture {

using nicmcast::net::Buffer;
using nicmcast::nic::DescriptorRef;
using nicmcast::nic::PacketDescriptor;

struct Engine {
  PacketDescriptor* parked = nullptr;
  template <typename F>
  void schedule_at(long when, F&& fn);
};

void positive_raw_pointer_escape(Engine& eng, PacketDescriptor& d0) {
  d0.on_tx_complete = [&eng](DescriptorRef d) {
    eng.parked = &*d;  // EXPECT: nicmcast-descriptor-escape
  };
}

void positive_raw_pointer_binding(PacketDescriptor& d0) {
  d0.on_tx_complete = [](DescriptorRef d) {
    PacketDescriptor* raw = &*d;  // EXPECT: nicmcast-descriptor-escape
    raw->header = 1;
  };
}

void positive_ref_capture_into_nested_closure(Engine& eng,
                                              PacketDescriptor& d0) {
  d0.on_tx_complete = [&eng](DescriptorRef d) {
    eng.schedule_at(5, [&d] { (void)d->header; });  // EXPECT: nicmcast-descriptor-escape
  };
}

void positive_buffer_by_ref_into_deferred_work(Engine& eng) {
  Buffer payload;
  eng.schedule_at(9, [&payload] { (void)payload.data(); });  // EXPECT: nicmcast-descriptor-escape
}

void negative_use_inside_callback(PacketDescriptor& d0) {
  d0.on_tx_complete = [](DescriptorRef d) {
    d->header = 2;  // borrowing through the ref inside the callback is fine
  };
}

void negative_value_capture_takes_a_reference(Engine& eng,
                                              PacketDescriptor& d0) {
  d0.on_tx_complete = [&eng](DescriptorRef d) {
    eng.schedule_at(7, [d] { (void)d->header; });  // copy bumps the refcount
  };
}

void negative_buffer_by_value(Engine& eng) {
  Buffer payload;
  eng.schedule_at(9, [payload] { (void)payload.size(); });
}

}  // namespace fixture

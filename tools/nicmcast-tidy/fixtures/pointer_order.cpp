// Fixture: nicmcast-pointer-order
//
// Positive cases: ordered containers keyed on pointer values, std::hash
// over a pointer type, relational comparison of raw pointers, and a
// pointer-value fold into an integer.  Negative cases: pointer equality,
// ordering by a stable id, and pointers as mapped (non-key) values.
#include "stubs.hpp"

namespace fixture {

struct Node {
  int id;
};

std::map<Node*, int> positive_weight_by_node;  // EXPECT: nicmcast-pointer-order
std::set<Node*> positive_active_nodes;         // EXPECT: nicmcast-pointer-order

std::map<int, Node*> negative_node_by_id;  // pointer as value, key is stable

bool positive_pointer_compare(Node* a, Node* b) {
  return a < b;  // EXPECT: nicmcast-pointer-order
}

std::uintptr_t positive_pointer_fold(Node* n) {
  return reinterpret_cast<std::uintptr_t>(n);  // EXPECT: nicmcast-pointer-order
}

std::size_t positive_pointer_hash(Node* n) {
  return std::hash<Node*>{}(n);  // EXPECT: nicmcast-pointer-order
}

bool negative_pointer_equality(Node* a, Node* b) {
  return a == b;  // identity tests are address-stable within one run
}

bool negative_stable_id_compare(Node* a, Node* b) {
  return a->id < b->id;
}

std::size_t negative_id_hash(Node* n) {
  return std::hash<int>{}(n->id);
}

}  // namespace fixture

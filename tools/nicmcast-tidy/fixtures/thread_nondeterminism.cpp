// Fixture: nicmcast-thread-nondeterminism
//
// The sharded PDES core must produce identical results for every --shards
// value.  Anything keyed on scheduler-assigned thread identity —
// thread_local storage, get_id(), std::thread::id members or map keys,
// pthread_self()/gettid() — cannot, so it may not reach simulator state.
#include "stubs.hpp"

namespace fixture {

long positive_thread_local_counter() {
  thread_local long calls = 0;  // EXPECT: nicmcast-thread-nondeterminism
  calls += 1;
  return calls;
}

auto positive_this_thread_get_id() {
  return std::this_thread::get_id();  // EXPECT: nicmcast-thread-nondeterminism
}

auto positive_member_get_id(std::thread& worker) {
  return worker.get_id();  // EXPECT: nicmcast-thread-nondeterminism
}

unsigned long positive_pthread_self() {
  return pthread_self();  // EXPECT: nicmcast-thread-nondeterminism
}

struct Tracker {
  std::thread::id owner_;  // EXPECT: nicmcast-thread-nondeterminism
  std::unordered_map<std::thread::id, long> per_thread_;  // EXPECT: nicmcast-thread-nondeterminism
};

// negative: shard-indexed state carries the same information
// deterministically, and plain thread lifecycle calls are fine.
struct ShardLocal {
  std::vector<long> per_shard_totals;
};

void negative_join(std::thread& worker) { worker.join(); }

long negative_static_counter() {
  static long calls = 0;
  calls += 1;
  return calls;
}

}  // namespace fixture

// Fixture: nicmcast-nondeterministic-iteration
//
// Positive cases: range-for over an unordered container whose body feeds
// an ordering-sensitive sink (scheduling, trace emission, log appends).
// Negative cases: order-free folds over the same containers, and ordered
// containers feeding the same sinks.
//
// Lines expected to be flagged carry an EXPECT annotation naming the
// check; every other line must stay clean under both engines.
#include "stubs.hpp"

namespace fixture {

struct Sim {
  void schedule(int when);
  void emit_trace(const char* message);
};

struct State {
  std::unordered_map<int, int> deadline_by_node;
  std::unordered_set<int> members;
  std::vector<int> replay_order;
  std::vector<int> audit_log;
  Sim sim;

  void positive_schedules_in_hash_order() {
    for (const auto& entry : deadline_by_node) {  // EXPECT: nicmcast-nondeterministic-iteration
      sim.schedule(entry.second);
    }
  }

  void positive_traces_in_hash_order() {
    for (const int member : members) {  // EXPECT: nicmcast-nondeterministic-iteration
      sim.emit_trace("visiting member");
      (void)member;
    }
  }

  void positive_appends_to_log_in_hash_order() {
    for (const auto& entry : deadline_by_node) {  // EXPECT: nicmcast-nondeterministic-iteration
      audit_log.push_back(entry.first);
    }
  }

  int negative_order_free_fold() {
    int widest = 0;
    for (const auto& entry : deadline_by_node) {
      widest = entry.second > widest ? entry.second : widest;
    }
    return widest;
  }

  void negative_ordered_container_feeds_sink() {
    for (const int when : replay_order) {
      sim.schedule(when);
    }
  }

  void negative_suppressed() {
    // Deliberate and order-independent in aggregate; suppression mirrors
    // the annotation style the repo uses for audited sites.
    // NOLINTNEXTLINE(nicmcast-nondeterministic-iteration): order-independent aggregate
    for (const auto& entry : deadline_by_node) {
      sim.schedule(entry.second);
    }
  }
};

}  // namespace fixture

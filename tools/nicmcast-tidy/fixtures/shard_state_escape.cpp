// Fixture: nicmcast-shard-state-escape
//
// Shard state is owner-confined: a lambda handed to a worker thread must
// not write the owner's non-atomic members.  Cross-shard effects travel
// through channels (post()), atomics with explicit orders, or a Mutex the
// lambda visibly takes.
#include "stubs.hpp"

namespace fixture {

struct Shard {
  long deliveries_ = 0;
  std::atomic<long> acks_{0};
  std::mutex mu_;
  long guarded_total_ = 0;

  void positive_write_from_jthread() {
    std::jthread worker([this] { deliveries_ += 1; });  // EXPECT: nicmcast-shard-state-escape
    worker.join();
  }

  void positive_write_from_thread() {
    std::thread worker([this] { deliveries_ = 7; });  // EXPECT: nicmcast-shard-state-escape
    worker.join();
  }

  void positive_increment_from_pool() {
    std::vector<std::jthread> pool;
    pool.emplace_back([this] { ++deliveries_; });  // EXPECT: nicmcast-shard-state-escape
  }

  void negative_atomic_from_worker() {
    std::jthread worker(
        [this] { acks_.fetch_add(1, std::memory_order_relaxed); });
    worker.join();
  }

  void negative_locked_from_worker() {
    std::jthread worker([this] {
      std::lock_guard<std::mutex> lock(mu_);
      guarded_total_ += 1;
    });
    worker.join();
  }

  long negative_lambda_stays_on_owner() {
    auto bump = [this] { deliveries_ += 1; };
    bump();
    return deliveries_;
  }

  void negative_local_state_in_worker() {
    std::jthread worker([] {
      long scratch = 0;
      scratch += 1;
    });
    worker.join();
  }
};

}  // namespace fixture

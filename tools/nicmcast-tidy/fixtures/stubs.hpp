// Minimal stand-in declarations so the check fixtures parse standalone —
// under clang-tidy (plugin engine, full AST) with no real system headers,
// and under nicmcast_lint (portable engine, which skips #include lines and
// reads the declarations the fixtures make themselves).
//
// Only what the fixtures touch is declared, with the same names and shapes
// as the real types: the plugin's matchers are keyed on qualified names
// (::std::unordered_map, ::nicmcast::nic::DescriptorRef, ...), so the
// namespaces here must match the real ones.
#pragma once

namespace std {

using size_t = decltype(sizeof(0));
using uint64_t = unsigned long long;
using uintptr_t = unsigned long;

template <typename T>
struct hash {
  size_t operator()(const T&) const;
};

template <typename T1, typename T2>
struct pair {
  T1 first;
  T2 second;
};

template <typename T>
class vector {
 public:
  void push_back(const T&);
  template <typename... A>
  void emplace_back(A&&...);
  T* begin();
  T* end();
  const T* begin() const;
  const T* end() const;
  size_t size() const;
};

template <typename K, typename V, typename H = hash<K>>
class unordered_map {
 public:
  using value_type = pair<const K, V>;
  struct iterator {
    value_type& operator*() const;
    iterator& operator++();
    bool operator!=(const iterator&) const;
  };
  iterator begin() const;
  iterator end() const;
  V& operator[](const K&);
  size_t size() const;
};

template <typename K, typename H = hash<K>>
class unordered_set {
 public:
  struct iterator {
    const K& operator*() const;
    iterator& operator++();
    bool operator!=(const iterator&) const;
  };
  iterator begin() const;
  iterator end() const;
};

template <typename K, typename V>
class map {
 public:
  V& operator[](const K&);
};

template <typename K>
class set {
 public:
  void insert(const K&);
};

namespace chrono {
struct steady_clock {
  struct time_point {
    long ticks;
  };
  static time_point now();
};
struct system_clock {
  struct time_point {
    long ticks;
  };
  static time_point now();
};
struct high_resolution_clock {
  struct time_point {
    long ticks;
  };
  static time_point now();
};
}  // namespace chrono

struct random_device {
  unsigned operator()();
};

// C++17-style plain enum: both engines key on the `memory_order` name and
// the `memory_order_*` enumerator spellings.
enum memory_order {
  memory_order_relaxed,
  memory_order_consume,
  memory_order_acquire,
  memory_order_release,
  memory_order_acq_rel,
  memory_order_seq_cst,
};

template <typename T>
class atomic {
 public:
  atomic();
  atomic(T);
  T load(memory_order = memory_order_seq_cst) const;
  void store(T, memory_order = memory_order_seq_cst);
  T exchange(T, memory_order = memory_order_seq_cst);
  T fetch_add(T, memory_order = memory_order_seq_cst);
  T fetch_sub(T, memory_order = memory_order_seq_cst);
  bool compare_exchange_weak(T&, T, memory_order = memory_order_seq_cst);
  bool compare_exchange_strong(T&, T, memory_order = memory_order_seq_cst);
  T operator=(T);
  T operator++();
  T operator++(int);
  T operator--();
  T operator+=(T);
  operator T() const;
};

class thread {
 public:
  class id {
   public:
    bool operator==(const id&) const;
  };
  thread();
  template <typename F>
  explicit thread(F);
  id get_id() const;
  void join();
};

class jthread {
 public:
  jthread();
  template <typename F>
  explicit jthread(F);
  thread::id get_id() const;
  void join();
};

namespace this_thread {
thread::id get_id();
}  // namespace this_thread

class mutex {
 public:
  void lock();
  void unlock();
};

template <typename M>
class lock_guard {
 public:
  explicit lock_guard(M&);
};

}  // namespace std

struct fixture_timeval;
struct fixture_timezone;
extern "C" {
unsigned long pthread_self(void);
int gettid(void);
long time(long*);
int rand(void);
void srand(unsigned);
long clock(void);
int gettimeofday(fixture_timeval*, fixture_timezone*);
}

namespace nicmcast {

namespace sim {
template <typename Signature, std::size_t InlineBytes = 88>
class InlineFunction;

template <typename R, typename... Args, std::size_t InlineBytes>
class InlineFunction<R(Args...), InlineBytes> {
 public:
  InlineFunction();
  InlineFunction(InlineFunction&&);
  InlineFunction& operator=(InlineFunction&&);
  // Implicit converting constructor, like the real one: assigning a lambda
  // constructs a temporary here first, which is what the plugin matches.
  template <typename F>
  InlineFunction(F&& f);  // NOLINT(google-explicit-constructor): mirrors the real type
  R operator()(Args...);
};
}  // namespace sim

namespace net {
class Buffer {
 public:
  Buffer();
  const unsigned char* data() const;
  std::size_t size() const;
};
}  // namespace net

namespace nic {
struct PacketDescriptor;

class DescriptorRef {
 public:
  PacketDescriptor* operator->() const;
  PacketDescriptor& operator*() const;
  explicit operator bool() const;
};

struct PacketDescriptor {
  sim::InlineFunction<void(DescriptorRef), 48> on_tx_complete;
  int header;
};
}  // namespace nic

}  // namespace nicmcast

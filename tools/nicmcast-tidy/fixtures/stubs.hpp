// Minimal stand-in declarations so the check fixtures parse standalone —
// under clang-tidy (plugin engine, full AST) with no real system headers,
// and under nicmcast_lint (portable engine, which skips #include lines and
// reads the declarations the fixtures make themselves).
//
// Only what the fixtures touch is declared, with the same names and shapes
// as the real types: the plugin's matchers are keyed on qualified names
// (::std::unordered_map, ::nicmcast::nic::DescriptorRef, ...), so the
// namespaces here must match the real ones.
#pragma once

namespace std {

using size_t = decltype(sizeof(0));
using uint64_t = unsigned long long;
using uintptr_t = unsigned long;

template <typename T>
struct hash {
  size_t operator()(const T&) const;
};

template <typename T1, typename T2>
struct pair {
  T1 first;
  T2 second;
};

template <typename T>
class vector {
 public:
  void push_back(const T&);
  T* begin();
  T* end();
  const T* begin() const;
  const T* end() const;
  size_t size() const;
};

template <typename K, typename V, typename H = hash<K>>
class unordered_map {
 public:
  using value_type = pair<const K, V>;
  struct iterator {
    value_type& operator*() const;
    iterator& operator++();
    bool operator!=(const iterator&) const;
  };
  iterator begin() const;
  iterator end() const;
  V& operator[](const K&);
  size_t size() const;
};

template <typename K, typename H = hash<K>>
class unordered_set {
 public:
  struct iterator {
    const K& operator*() const;
    iterator& operator++();
    bool operator!=(const iterator&) const;
  };
  iterator begin() const;
  iterator end() const;
};

template <typename K, typename V>
class map {
 public:
  V& operator[](const K&);
};

template <typename K>
class set {
 public:
  void insert(const K&);
};

namespace chrono {
struct steady_clock {
  struct time_point {
    long ticks;
  };
  static time_point now();
};
struct system_clock {
  struct time_point {
    long ticks;
  };
  static time_point now();
};
struct high_resolution_clock {
  struct time_point {
    long ticks;
  };
  static time_point now();
};
}  // namespace chrono

struct random_device {
  unsigned operator()();
};

}  // namespace std

struct fixture_timeval;
struct fixture_timezone;
extern "C" {
long time(long*);
int rand(void);
void srand(unsigned);
long clock(void);
int gettimeofday(fixture_timeval*, fixture_timezone*);
}

namespace nicmcast {

namespace sim {
template <typename Signature, std::size_t InlineBytes = 88>
class InlineFunction;

template <typename R, typename... Args, std::size_t InlineBytes>
class InlineFunction<R(Args...), InlineBytes> {
 public:
  InlineFunction();
  InlineFunction(InlineFunction&&);
  InlineFunction& operator=(InlineFunction&&);
  // Implicit converting constructor, like the real one: assigning a lambda
  // constructs a temporary here first, which is what the plugin matches.
  template <typename F>
  InlineFunction(F&& f);  // NOLINT
  R operator()(Args...);
};
}  // namespace sim

namespace net {
class Buffer {
 public:
  Buffer();
  const unsigned char* data() const;
  std::size_t size() const;
};
}  // namespace net

namespace nic {
struct PacketDescriptor;

class DescriptorRef {
 public:
  PacketDescriptor* operator->() const;
  PacketDescriptor& operator*() const;
  explicit operator bool() const;
};

struct PacketDescriptor {
  sim::InlineFunction<void(DescriptorRef), 48> on_tx_complete;
  int header;
};
}  // namespace nic

}  // namespace nicmcast

// Fixture: nicmcast-wall-clock
//
// Positive cases: every wall-clock/global-entropy source the contract
// bans outside src/harness/ — chrono clock reads, rand/srand,
// std::random_device, argless time(), clock(), gettimeofday.  Negative
// cases: member functions that merely share those names, and time()
// with a real destination argument (still host state, but that spelling
// only appears in the harness, which is path-allowed anyway).
#include "stubs.hpp"

namespace fixture {

long positive_steady_clock() {
  auto t = std::chrono::steady_clock::now();  // EXPECT: nicmcast-wall-clock
  return t.ticks;
}

long positive_system_clock() {
  auto t = std::chrono::system_clock::now();  // EXPECT: nicmcast-wall-clock
  return t.ticks;
}

long positive_high_resolution_clock() {
  auto t = std::chrono::high_resolution_clock::now();  // EXPECT: nicmcast-wall-clock
  return t.ticks;
}

int positive_rand() {
  return rand();  // EXPECT: nicmcast-wall-clock
}

void positive_srand(unsigned seed) {
  srand(seed);  // EXPECT: nicmcast-wall-clock
}

unsigned positive_random_device() {
  std::random_device entropy;  // EXPECT: nicmcast-wall-clock
  return entropy();
}

long positive_argless_time() {
  return time(nullptr);  // EXPECT: nicmcast-wall-clock
}

long positive_clock() {
  return clock();  // EXPECT: nicmcast-wall-clock
}

int positive_gettimeofday(fixture_timeval* tv) {
  return gettimeofday(tv, nullptr);  // EXPECT: nicmcast-wall-clock
}

struct SkewModel {
  // Same spellings, but members of the simulation model: these are
  // simulated quantities, not host clock reads.
  int rand();
  long time(long base);
  long clock_offset;
};

long negative_member_lookalikes(SkewModel& model) {
  return model.rand() + model.time(4) + model.clock_offset;
}

long negative_suppressed() {
  return time(nullptr);  // NOLINT(nicmcast-wall-clock) calibration probe
}

}  // namespace fixture

// Fixture: nicmcast-inline-function-capture
//
// Positive cases: a scheduled lambda whose captures already exceed the
// 88-byte inline budget on a lower-bound estimate, an on_tx_complete
// callback exceeding its tighter 48-byte budget, and a raw pooled
// pointer captured by value.  Negative cases: small captures, by-ref
// captures, and holding the pool reference by value (the sanctioned
// pattern).
#include "stubs.hpp"

namespace fixture {

using nicmcast::nic::DescriptorRef;
using nicmcast::nic::PacketDescriptor;
using nicmcast::sim::InlineFunction;

struct Wheel {
  template <typename F>
  void schedule_at(long when, F&& fn);
};

struct Replica {
  InlineFunction<void(), 48> on_tx_complete;
};

void positive_budget_overflow(Wheel& wheel) {
  std::uint64_t f0 = 0, f1 = 1, f2 = 2, f3 = 3, f4 = 4, f5 = 5;
  std::uint64_t f6 = 6, f7 = 7, f8 = 8, f9 = 9, f10 = 10, f11 = 11;
  wheel.schedule_at(1, [f0, f1, f2, f3, f4, f5, f6, f7, f8, f9, f10, f11] {  // EXPECT: nicmcast-inline-function-capture
    (void)f0, (void)f1, (void)f2, (void)f3, (void)f4, (void)f5;
    (void)f6, (void)f7, (void)f8, (void)f9, (void)f10, (void)f11;
  });
}

void positive_member_budget_overflow(Replica& replica) {
  std::uint64_t s0 = 0, s1 = 1, s2 = 2, s3 = 3, s4 = 4, s5 = 5, s6 = 6;
  replica.on_tx_complete = [s0, s1, s2, s3, s4, s5, s6] {  // EXPECT: nicmcast-inline-function-capture
    (void)s0, (void)s1, (void)s2, (void)s3, (void)s4, (void)s5, (void)s6;
  };
}

void positive_raw_pooled_pointer_capture(Wheel& wheel, DescriptorRef held) {
  PacketDescriptor* raw = &*held;
  wheel.schedule_at(2, [raw] { raw->header = 3; });  // EXPECT: nicmcast-inline-function-capture
}

void negative_small_capture(Wheel& wheel) {
  std::uint64_t seq = 7;
  void* self = nullptr;
  wheel.schedule_at(3, [seq, self] { (void)seq, (void)self; });
}

void negative_ref_captures_fit(Wheel& wheel) {
  std::uint64_t a0 = 0, a1 = 1, a2 = 2, a3 = 3, a4 = 4, a5 = 5;
  std::uint64_t a6 = 6, a7 = 7, a8 = 8, a9 = 9, a10 = 10, a11 = 11;
  wheel.schedule_at(4, [&a0, &a1, &a2, &a3] {
    (void)a0, (void)a1, (void)a2, (void)a3;
  });
  (void)a4, (void)a5, (void)a6, (void)a7, (void)a8, (void)a9;
  (void)a10, (void)a11;
}

void negative_descriptor_ref_by_value(Wheel& wheel, DescriptorRef held) {
  wheel.schedule_at(5, [held] { held->header = 4; });
}

void negative_explicit_inline_function_within_budget() {
  std::uint64_t seq = 9;
  InlineFunction<void(), 88> slot = [seq] { (void)seq; };
  slot();
}

}  // namespace fixture

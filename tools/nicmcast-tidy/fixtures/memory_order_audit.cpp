// Fixture: nicmcast-memory-order-audit
//
// Every atomic access must spell its std::memory_order; the implicit
// seq_cst default hides the author's intent and makes later relaxation
// reviews impossible.  Relaxed loads additionally must not guard
// publication of non-atomic state (the acquire side of a release/acquire
// handoff cannot be relaxed).
#include "stubs.hpp"

namespace fixture {

struct Engine {
  std::atomic<int> counter_{0};
  std::atomic<bool> flag_{false};
  std::atomic<bool> other_{false};
  int* payload_ = nullptr;
  long published_ = 0;

  int positive_implicit_load() {
    return counter_.load();  // EXPECT: nicmcast-memory-order-audit
  }

  void positive_implicit_store(int v) {
    counter_.store(v);  // EXPECT: nicmcast-memory-order-audit
  }

  void positive_implicit_rmw() {
    counter_.fetch_add(1);  // EXPECT: nicmcast-memory-order-audit
  }

  void positive_implicit_cas(int& want) {
    counter_.compare_exchange_weak(want, 0);  // EXPECT: nicmcast-memory-order-audit
  }

  void positive_operator_store() {
    flag_ = true;  // EXPECT: nicmcast-memory-order-audit
  }

  void positive_operator_increment() {
    ++counter_;  // EXPECT: nicmcast-memory-order-audit
  }

  bool positive_implicit_read() {
    if (flag_) {  // EXPECT: nicmcast-memory-order-audit
      return true;
    }
    return false;
  }

  void positive_relaxed_guards_delete() {
    if (flag_.load(std::memory_order_relaxed)) {  // EXPECT: nicmcast-memory-order-audit
      delete payload_;
    }
  }

  void positive_relaxed_guards_publication(long v) {
    if (flag_.load(std::memory_order_relaxed)) {  // EXPECT: nicmcast-memory-order-audit
      published_ = v;
    }
  }

  int negative_explicit_load() const {
    return counter_.load(std::memory_order_acquire);
  }

  void negative_explicit_store(int v) {
    counter_.store(v, std::memory_order_release);
  }

  void negative_explicit_rmw() {
    counter_.fetch_add(1, std::memory_order_relaxed);
  }

  bool negative_relaxed_guard_without_publication() {
    if (flag_.load(std::memory_order_relaxed)) {
      return true;
    }
    return false;
  }

  void negative_relaxed_guard_atomic_write() {
    if (flag_.load(std::memory_order_relaxed)) {
      other_.store(true, std::memory_order_relaxed);
    }
  }

  int negative_suppressed() {
    return counter_.load();  // NOLINT(nicmcast-memory-order-audit): fixture proves suppression works
  }
};

}  // namespace fixture

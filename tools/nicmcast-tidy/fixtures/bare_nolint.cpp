// PORTABLE-ONLY: nicmcast-bare-nolint audits suppression comments, which
// the clang-tidy plugin never sees (comments are stripped before the AST);
// scripts/check_fixtures.py skips this fixture for the clang engine.
//
// Fixture: nicmcast-bare-nolint
//
// A suppression is a waived contract: it must name the check it waives and
// say why, or reviewers cannot tell a deliberate exception from a leftover
// hack.  The expectations live in separate line comments so they do not
// become the suppression's own justification text.
#include "stubs.hpp"

namespace fixture {

long positive_bare(long v); /* NOLINT */  // EXPECT: nicmcast-bare-nolint

long positive_named_but_unjustified(long v); /* NOLINT(nicmcast-wall-clock) */  // EXPECT: nicmcast-bare-nolint

long positive_empty_check_list(long v); /* NOLINT() */  // EXPECT: nicmcast-bare-nolint

long positive_prose_without_check(long v); /* NOLINT: legacy path */  // EXPECT: nicmcast-bare-nolint

// negative: a named check plus a justification is the reviewable form,
// and it still suppresses what it names.
long negative_compliant() {
  return time(nullptr);  // NOLINT(nicmcast-wall-clock): fixture exercises the compliant form
}

}  // namespace fixture

#!/usr/bin/env python3
"""Repo-wide nicmcast-* static analysis driver.

Runs the determinism-contract checks over the tree and fails on any
finding not recorded in the baseline file.  Two engines, picked
automatically:

  - clang-tidy plugin: used when a clang-tidy binary and the built
    NicMcastTidyModule.so are both available (the CI static-analysis job).
    Also enables the curated upstream checks from .clang-tidy.
  - portable engine (nicmcast_lint): plain-C++ reimplementation of the
    nicmcast-* checks; runs anywhere the repo builds.

Modes:

  scripts/run_static_analysis.py                 # full tree
  scripts/run_static_analysis.py --diff origin/main   # changed files only
                                                 # (the pre-push check)
  scripts/run_static_analysis.py --jobs 8        # shard pass 2 across
                                                 # 8 engine processes
  scripts/run_static_analysis.py \
      --checks nicmcast-memory-order-audit,nicmcast-shard-state-escape

The baseline (scripts/static_analysis_baseline.txt) lists findings that
are acknowledged and suppressed, one `path:check` per line.  The gate is
therefore "zero NEW findings", so the sweep never has to be all-or-
nothing.  Refresh it with --update-baseline after an intentional change.
A baseline entry whose path no longer exists is a hard error: it means
the acknowledged finding was deleted but its waiver kept, and the stale
line would silently re-suppress a future finding at a revived path.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import os
import pathlib
import re
import shutil
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE = REPO_ROOT / "scripts" / "static_analysis_baseline.txt"

SOURCE_DIRS = ["src", "tests", "bench", "examples", "tools"]
EXCLUDE_PARTS = ("tools/nicmcast-tidy/fixtures",)
SOURCE_SUFFIXES = {".cpp", ".hpp"}

FINDING_RE = re.compile(
    r"^(?P<path>[^:]+):(?P<line>\d+):(?P<col>\d+): warning: .*"
    r"\[(?P<check>[a-z][a-z0-9.-]*)[,\]]"
)


def repo_sources() -> list[pathlib.Path]:
    files: list[pathlib.Path] = []
    for top in SOURCE_DIRS:
        for path in sorted((REPO_ROOT / top).rglob("*")):
            if path.suffix not in SOURCE_SUFFIXES:
                continue
            rel = path.relative_to(REPO_ROOT).as_posix()
            if any(part in rel for part in EXCLUDE_PARTS):
                continue
            files.append(path)
    return files


def diff_sources(base: str) -> list[pathlib.Path]:
    proc = subprocess.run(
        ["git", "diff", "--name-only", "--diff-filter=d", base, "--"],
        cwd=REPO_ROOT, capture_output=True, text=True, check=True)
    files = []
    for name in proc.stdout.splitlines():
        path = REPO_ROOT / name
        if path.suffix not in SOURCE_SUFFIXES or not path.exists():
            continue
        if any(part in name for part in EXCLUDE_PARTS):
            continue
        files.append(path)
    return files


def find_lint_bin(args) -> pathlib.Path | None:
    if args.lint_bin:
        return pathlib.Path(args.lint_bin)
    for build in (args.build_dir, REPO_ROOT / "build"):
        if not build:
            continue
        cand = pathlib.Path(build) / "tools" / "nicmcast-tidy" / \
            "nicmcast_lint"
        if cand.exists():
            return cand
    return None


def find_plugin(args) -> pathlib.Path | None:
    if args.plugin:
        return pathlib.Path(args.plugin)
    for build in (args.build_dir, REPO_ROOT / "build"):
        if not build:
            continue
        cand = pathlib.Path(build) / "tools" / "nicmcast-tidy" / \
            "NicMcastTidyModule.so"
        if cand.exists():
            return cand
    return None


def shard(items: list, jobs: int) -> list[list]:
    """Round-robin split preserving per-shard sorted order well enough."""
    out = [items[i::jobs] for i in range(jobs)]
    return [s for s in out if s]


def run_clang_engine(args, files: list[pathlib.Path],
                     plugin: pathlib.Path) -> list[str]:
    build_dir = args.build_dir or (REPO_ROOT / "build")
    base = [args.clang_tidy, "-load", str(plugin), "-p", str(build_dir),
            "--quiet"]
    if args.checks:
        base.append("-checks=-*," + ",".join(args.checks))
    sources = [str(f) for f in files if f.suffix == ".cpp"]
    if not sources:
        return []

    def one(chunk: list[str]) -> str:
        proc = subprocess.run(base + chunk, capture_output=True, text=True,
                              cwd=REPO_ROOT)
        return proc.stdout

    lines: list[str] = []
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        for out in pool.map(one, shard(sources, args.jobs)):
            lines += out.splitlines()
    return lines


def run_portable_engine(args, files: list[pathlib.Path],
                        lint_bin: pathlib.Path) -> list[str]:
    base = [str(lint_bin), "--root", str(REPO_ROOT)]
    for check in args.checks:
        base += ["--check", check]
    sources = [str(f) for f in files]

    def one(chunk: list[str]) -> str:
        # The chunk is checked; every other file still feeds pass-1
        # declarations, so sharding cannot change what a check knows
        # about cross-file symbol kinds.
        rest = [s for s in sources if s not in set(chunk)]
        cmd = base + ["--check-first", str(len(chunk))] + chunk + rest
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              cwd=REPO_ROOT)
        if proc.returncode not in (0, 1):
            sys.stderr.write(proc.stdout + proc.stderr)
            raise SystemExit("nicmcast_lint crashed")
        return proc.stdout

    lines: list[str] = []
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        for out in pool.map(one, shard(sources, args.jobs)):
            lines += out.splitlines()
    return lines


def parse_findings(lines: list[str]) -> list[tuple[str, int, str, str]]:
    out = []
    for line in lines:
        m = FINDING_RE.match(line)
        if not m:
            continue
        path = pathlib.Path(m.group("path"))
        if path.is_absolute():
            try:
                path = path.relative_to(REPO_ROOT)
            except ValueError:
                continue  # system header noise from upstream checks
        out.append((path.as_posix(), int(m.group("line")),
                    m.group("check"), line.strip()))
    return out


def load_baseline() -> set[str]:
    if not BASELINE.exists():
        return set()
    out = set()
    for line in BASELINE.read_text().splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            out.add(line)
    return out


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--diff", metavar="BASE",
                        help="only analyse files changed since BASE")
    parser.add_argument("--engine", choices=["auto", "clang", "portable"],
                        default="auto")
    parser.add_argument("--clang-tidy", default="clang-tidy")
    parser.add_argument("--plugin",
                        help="path to NicMcastTidyModule.so")
    parser.add_argument("--lint-bin", help="path to nicmcast_lint")
    parser.add_argument("--build-dir",
                        help="build tree (compile_commands.json, built "
                             "engine binaries)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="record current findings as accepted")
    parser.add_argument("--jobs", "-j", type=int, default=1,
                        help="engine processes to run in parallel "
                             "(0 = CPU count)")
    parser.add_argument("--checks",
                        help="comma-separated check names to run "
                             "(default: all)")
    args = parser.parse_args()
    if args.jobs == 0:
        args.jobs = os.cpu_count() or 1
    if args.jobs < 1:
        parser.error("--jobs must be >= 0")
    args.checks = [c for c in (args.checks or "").split(",") if c]

    files = diff_sources(args.diff) if args.diff else repo_sources()
    if not files:
        print("static-analysis: no files to analyse")
        return 0

    engine = args.engine
    plugin = find_plugin(args)
    lint_bin = find_lint_bin(args)
    if engine == "auto":
        has_clang = plugin is not None and \
            shutil.which(args.clang_tidy) is not None
        engine = "clang" if has_clang else "portable"

    if engine == "clang":
        if plugin is None:
            raise SystemExit("clang engine requested but "
                             "NicMcastTidyModule.so not found")
        lines = run_clang_engine(args, files, plugin)
    else:
        if lint_bin is None:
            raise SystemExit(
                "nicmcast_lint not found; build it first "
                "(cmake --build build --target nicmcast_lint) or pass "
                "--lint-bin")
        lines = run_portable_engine(args, files, lint_bin)

    findings = parse_findings(lines)

    if args.update_baseline:
        keys = sorted({f"{path}:{check}" for path, _, check, _ in findings})
        BASELINE.write_text(
            "# Acknowledged static-analysis findings (path:check), one per"
            " line.\n# Regenerate with scripts/run_static_analysis.py"
            " --update-baseline.\n" + "".join(k + "\n" for k in keys))
        print(f"baseline updated: {len(keys)} entrie(s)")
        return 0

    baseline = load_baseline()
    stale = [entry for entry in sorted(baseline)
             if not (REPO_ROOT / entry.rsplit(":", 1)[0]).exists()]
    if stale:
        for entry in stale:
            print(f"stale baseline entry (path gone): {entry}",
                  file=sys.stderr)
        print(f"static-analysis: {len(stale)} stale baseline entrie(s) in "
              f"{BASELINE.relative_to(REPO_ROOT)}; remove them or rerun "
              "--update-baseline", file=sys.stderr)
        return 1
    fresh = [f for f in findings
             if f"{f[0]}:{f[2]}" not in baseline]

    scope = f"{len(files)} file(s)" + (f" changed since {args.diff}"
                                       if args.diff else "")
    if not fresh:
        suppressed = len(findings) - len(fresh)
        note = f" ({suppressed} baselined)" if suppressed else ""
        print(f"static-analysis [{engine}]: clean over {scope}{note}")
        return 0

    for _, _, _, raw in fresh:
        print(raw)
    print(f"static-analysis [{engine}]: {len(fresh)} new finding(s) over "
          f"{scope}", file=sys.stderr)
    return 1


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python3
"""Gate bench results against a checked-in BENCH_*.json trajectory.

Usage:
  check_bench_regression.py <fresh.json> <BENCH_simperf.json>
  check_bench_regression.py --scale <fresh.json> <BENCH_scale.json>

Default mode (sim_microbench vs BENCH_simperf.json), two checks per
scenario against the *last* trajectory entry (the current engine):

  1. event_order_hash must match exactly.  The executed (time, seq) event
     order is the determinism contract — it is machine-independent, so any
     mismatch is a real engine-behaviour change and fails hard.  Update the
     trajectory and the determinism golden test together if the change is
     intentional.
  Entries may additionally record cache_misses / branch_misses columns
  (from --perf-counters runs).  These are optional and informational in
  both directions: a baseline without them gates a fresh run that has
  them, and vice versa — hardware counters are host-dependent and read 0
  where perf_event_open is unavailable, so they are never gated.

  2. events_per_sec must not drop more than the threshold (default 20%)
     below the recorded value.  Wall-clock throughput does vary with runner
     hardware; the generous threshold absorbs that, while a >20% drop on
     every scenario still catches "someone re-introduced a heap allocation
     per event" class regressions.

--scale mode (ext_scalability vs BENCH_scale.json) applies the same two
checks, but only to scenarios the baseline marks "pinned" (the 128- and
512-node points plus the pshard-512 shards-axis pair; CI caps the sweep
with --max-nodes so the larger points never run there).  Unpinned points
are checked only when present, and only for route memory:
routes_materialized must stay >= 10x below the all-pairs route count
(full_pairs), the lazy-RouteTable guarantee the 4096-node sweep exists to
demonstrate.  Missing unpinned points are fine; missing pinned points fail.

Sharded scenarios (the "pshard-<nodes>x<radix>-s<shards>" and
"msend-<nodes>x<radix>-s<shards>" labels from the --shards axis): a
baseline entry that records "shard_order_hashes" also pins the full
per-shard hash vector exactly — the sharded half of the determinism
contract.  The merged event_order_hash check covers the fold; the vector
check localises a divergence to the shard that re-timed.

--scale mode also sanity-checks the whole baseline trajectory, not just
the entry it gates against: every recorded sharded scenario must pin a
hash vector consistent with its shard count.  Entries recorded before the
shards axis existed carry no sharded counters at all — that is legal
history and is skipped, never failed.

The --sync axis ("…-async" labels, recorded with "sync": "async"): async
scenarios must carry the null-message counters (null_msgs_sent,
blocked_waits) — the values are timing-dependent and therefore only
informational, but their *presence* is gated, both in the baseline and in
the fresh run.  And within any trajectory entry, an async scenario's
hashes must equal its barrier twin's (the same label minus the "-async"
suffix): the asynchronous protocol replays the barrier round schedule
exactly, so a divergence means the determinism contract broke, not that a
new lineage appeared.
"""
import json
import sys

THRESHOLD = 0.80  # fresh events/sec must be >= 80% of the recorded value
ROUTE_FACTOR = 10  # lazy routes must undercut all-pairs by at least this


def check_hash_and_eps(label, want, run, failures):
    got_hash = run["engine"]["event_order_hash"]
    if got_hash != want["event_order_hash"]:
        failures.append(
            f"{label}: event_order_hash {got_hash} != recorded "
            f"{want['event_order_hash']} (determinism contract broken)")
    want_vector = want.get("shard_order_hashes")
    if want_vector is not None:
        got_vector = run["engine"].get("shard_order_hashes")
        if got_vector != want_vector:
            diverged = [
                i for i, (a, b) in enumerate(
                    zip(got_vector or [], want_vector))
                if a != b
            ] or "all"
            failures.append(
                f"{label}: per-shard hash vector diverged from the recorded "
                f"golden (shards {diverged}); the sharded determinism "
                f"contract is broken")
    # Optional microarchitecture columns (recorded by --perf-counters runs):
    # informational only, never gated — hardware counts vary by host and
    # read 0 on machines without a PMU or with perf_event_open locked down.
    for key in ("cache_misses", "branch_misses"):
        if key in want:
            got = run["metrics"].get(key)
            got_text = f"{got:,.0f}" if got is not None else "n/a"
            print(f"{label}:   {key} {got_text} "
                  f"(recorded {want[key]:,.0f}; informational)")
    got_eps = run["metrics"]["events_per_sec"]
    floor = THRESHOLD * want["events_per_sec"]
    verdict = "ok" if got_eps >= floor else "REGRESSED"
    print(f"{label}: {got_eps:,.0f} ev/s vs recorded "
          f"{want['events_per_sec']:,} (floor {floor:,.0f}) -> {verdict}")
    if got_eps < floor:
        failures.append(
            f"{label}: {got_eps:,.0f} ev/s is more than 20% below the "
            f"recorded {want['events_per_sec']:,}")


def check_async_counters(label, want, run, failures):
    """Gate the *presence* of the async-sync counters, print the values.

    How often a receiver actually blocked (and therefore demanded a null
    message) depends on thread timing, so the values legitimately vary
    between runs and are never compared.  Losing the keys entirely means
    the sync-axis instrumentation or JSON plumbing regressed.
    """
    engine = run["engine"]
    for key in ("null_msgs_sent", "blocked_waits"):
        got = engine.get(key)
        if got is None:
            failures.append(
                f"{label}: async-mode run reports no '{key}' counter; the "
                f"sync-axis instrumentation regressed")
            continue
        rec = want.get(key)
        rec_text = f"{int(rec):,}" if rec is not None else "n/a"
        print(f"{label}:   {key} {int(got):,} "
              f"(recorded {rec_text}; informational)")


def check_route_memory(label, run, failures):
    routes = run["engine"]["routes_materialized"]
    full_pairs = run["metrics"]["full_pairs"]
    ok = routes * ROUTE_FACTOR <= full_pairs
    print(f"{label}: {routes:,} routes materialized vs {full_pairs:,.0f} "
          f"all-pairs -> {'ok' if ok else 'TOO MANY'}")
    if not ok:
        failures.append(
            f"{label}: {routes:,} materialized routes is not >= "
            f"{ROUTE_FACTOR}x below the {full_pairs:,.0f} all-pairs table")


def check_trajectory_history(trajectory, failures):
    """Validate the sharded pins across the whole recorded trajectory.

    Pre-shards-axis entries record no sharded counters (no "shards" field,
    or a sharded label without "shard_order_hashes" — shards == 1 runs on
    the sequential engine and never has a vector).  Those entries are
    history, not breakage: skip them.  An entry that does pin a vector must
    pin one hash per shard, or the golden can never be matched.
    """
    for i, entry in enumerate(trajectory):
        for label, want in entry["scenarios"].items():
            shards = want.get("shards", 0)
            vector = want.get("shard_order_hashes")
            if shards <= 1 or vector is None:
                if shards > 1:
                    print(f"trajectory[{i}] {label}: recorded before "
                          f"sharded counters existed -> skipped")
                continue
            if len(vector) != shards:
                failures.append(
                    f"trajectory[{i}] {label}: pins {len(vector)} shard "
                    f"hashes for {shards} shards; the golden is unmatchable")
        for label, want in entry["scenarios"].items():
            if want.get("sync") != "async":
                continue
            for key in ("null_msgs_sent", "blocked_waits"):
                if key not in want:
                    failures.append(
                        f"trajectory[{i}] {label}: async scenario records "
                        f"no '{key}' counter")
            if not label.endswith("-async"):
                failures.append(
                    f"trajectory[{i}] {label}: sync=async scenarios use "
                    f"the '-async' label suffix")
                continue
            twin = entry["scenarios"].get(label[:-len("-async")])
            if twin is None:
                continue  # an async point need not have a recorded twin
            if (want.get("event_order_hash") != twin.get("event_order_hash")
                    or want.get("shard_order_hashes")
                    != twin.get("shard_order_hashes")):
                failures.append(
                    f"trajectory[{i}] {label}: hashes differ from the "
                    f"barrier twin; async must replay the barrier round "
                    f"schedule bit-exactly")


def main() -> int:
    args = sys.argv[1:]
    scale_mode = "--scale" in args
    if scale_mode:
        args.remove("--scale")
    if len(args) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    fresh_doc = json.load(open(args[0]))
    baseline_doc = json.load(open(args[1]))

    recorded = baseline_doc["trajectory"][-1]["scenarios"]
    fresh = {run["spec"]["label"]: run for run in fresh_doc["runs"]}

    failures = []
    if scale_mode:
        check_trajectory_history(baseline_doc["trajectory"], failures)
    for label, want in recorded.items():
        run = fresh.get(label)
        pinned = want.get("pinned", True)
        if run is None:
            if scale_mode and not pinned:
                print(f"{label}: not run (capped sweep) -> skipped")
                continue
            failures.append(f"{label}: scenario missing from fresh run")
            continue
        if not scale_mode or pinned:
            check_hash_and_eps(label, want, run, failures)
        if scale_mode and want.get("sync") == "async":
            check_async_counters(label, want, run, failures)
        if scale_mode:
            check_route_memory(label, run, failures)

    if failures:
        print("\nbench regression check FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nbench regression check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Gate sim_microbench results against the checked-in BENCH_simperf.json.

Usage: check_bench_regression.py <fresh.json> <BENCH_simperf.json>

Two checks per scenario, against the *last* trajectory entry (the current
engine):

  1. event_order_hash must match exactly.  The executed (time, seq) event
     order is the determinism contract — it is machine-independent, so any
     mismatch is a real engine-behaviour change and fails hard.  Update the
     trajectory and the determinism golden test together if the change is
     intentional.
  2. events_per_sec must not drop more than the threshold (default 20%)
     below the recorded value.  Wall-clock throughput does vary with runner
     hardware; the generous threshold absorbs that, while a >20% drop on
     every scenario still catches "someone re-introduced a heap allocation
     per event" class regressions.
"""
import json
import sys

THRESHOLD = 0.80  # fresh events/sec must be >= 80% of the recorded value


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    fresh_doc = json.load(open(sys.argv[1]))
    baseline_doc = json.load(open(sys.argv[2]))

    recorded = baseline_doc["trajectory"][-1]["scenarios"]
    fresh = {run["spec"]["label"]: run for run in fresh_doc["runs"]}

    failures = []
    for label, want in recorded.items():
        run = fresh.get(label)
        if run is None:
            failures.append(f"{label}: scenario missing from fresh run")
            continue
        got_hash = run["engine"]["event_order_hash"]
        if got_hash != want["event_order_hash"]:
            failures.append(
                f"{label}: event_order_hash {got_hash} != recorded "
                f"{want['event_order_hash']} (determinism contract broken)")
        got_eps = run["metrics"]["events_per_sec"]
        floor = THRESHOLD * want["events_per_sec"]
        verdict = "ok" if got_eps >= floor else "REGRESSED"
        print(f"{label}: {got_eps:,.0f} ev/s vs recorded "
              f"{want['events_per_sec']:,} (floor {floor:,.0f}) -> {verdict}")
        if got_eps < floor:
            failures.append(
                f"{label}: {got_eps:,.0f} ev/s is more than 20% below the "
                f"recorded {want['events_per_sec']:,}")

    if failures:
        print("\nbench regression check FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nbench regression check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Run a nicmcast-* engine over the check fixtures and diff against EXPECT.

Every fixture under tools/nicmcast-tidy/fixtures/ annotates the lines it
expects flagged with `// EXPECT: <check-name>`.  This script runs one of
the two engines over each fixture and fails if the produced (line, check)
set differs from the annotated one in either direction.

The portable engine is exercised the same way in-process by the gtest
fixture tests; this script exists so CI can assert the *clang-tidy plugin*
produces the same findings:

    scripts/check_fixtures.py --engine clang \
        --clang-tidy clang-tidy-18 \
        --plugin build/tools/nicmcast-tidy/NicMcastTidyModule.so

    scripts/check_fixtures.py --engine portable \
        --lint-bin build/tools/nicmcast-tidy/nicmcast_lint
"""

from __future__ import annotations

import argparse
import pathlib
import re
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
FIXTURE_DIR = REPO_ROOT / "tools" / "nicmcast-tidy" / "fixtures"

FINDING_RE = re.compile(
    r"^(?P<path>[^:]+):(?P<line>\d+):(?P<col>\d+): warning: .*"
    r"\[(?P<check>nicmcast-[a-z-]+)[,\]]"
)
EXPECT_RE = re.compile(r"// EXPECT: (?P<check>[a-z][a-z0-9-]*)")


def expected_findings(fixture: pathlib.Path) -> set[tuple[int, str]]:
    out = set()
    for lineno, line in enumerate(
        fixture.read_text().splitlines(), start=1
    ):
        m = EXPECT_RE.search(line)
        if m:
            out.add((lineno, m.group("check")))
    return out


def parse_findings(output: str, fixture: pathlib.Path) -> set[tuple[int, str]]:
    out = set()
    for line in output.splitlines():
        m = FINDING_RE.match(line)
        if not m:
            continue
        if pathlib.Path(m.group("path")).name != fixture.name:
            continue  # ignore findings reported against headers
        out.add((int(m.group("line")), m.group("check")))
    return out


def run_clang_engine(args, fixture: pathlib.Path) -> str:
    cmd = [
        args.clang_tidy,
        "-load",
        args.plugin,
        "-checks=-*,nicmcast-*",
        str(fixture),
        "--",
        "-std=c++20",
        f"-I{FIXTURE_DIR}",
    ]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    # clang-tidy exits non-zero on hard errors only; compile errors in the
    # stub header would surface here.
    if "error:" in proc.stderr or "error:" in proc.stdout:
        sys.stderr.write(proc.stdout + proc.stderr)
        raise SystemExit(f"clang-tidy failed to parse {fixture.name}")
    return proc.stdout


def run_portable_engine(args, fixture: pathlib.Path) -> str:
    cmd = [args.lint_bin, "--root", str(REPO_ROOT), str(fixture)]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode not in (0, 1):
        sys.stderr.write(proc.stdout + proc.stderr)
        raise SystemExit(f"nicmcast_lint failed on {fixture.name}")
    return proc.stdout


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--engine", choices=["clang", "portable"],
                        required=True)
    parser.add_argument("--clang-tidy", default="clang-tidy")
    parser.add_argument("--plugin", help="path to NicMcastTidyModule.so")
    parser.add_argument("--lint-bin", help="path to nicmcast_lint")
    args = parser.parse_args()

    if args.engine == "clang" and not args.plugin:
        parser.error("--engine clang requires --plugin")
    if args.engine == "portable" and not args.lint_bin:
        parser.error("--engine portable requires --lint-bin")

    fixtures = sorted(FIXTURE_DIR.glob("*.cpp"))
    if not fixtures:
        raise SystemExit(f"no fixtures under {FIXTURE_DIR}")

    failures = 0
    skipped = 0
    for fixture in fixtures:
        # A fixture whose first line carries PORTABLE-ONLY exercises a
        # check with no clang-tidy twin (comment-level audits the AST
        # engine cannot see); only the portable engine runs it.
        if args.engine == "clang" and "PORTABLE-ONLY" in fixture.read_text(
        ).partition("\n")[0]:
            print(f"[skip] {fixture.name}: portable-engine-only")
            skipped += 1
            continue
        expected = expected_findings(fixture)
        if args.engine == "clang":
            output = run_clang_engine(args, fixture)
        else:
            output = run_portable_engine(args, fixture)
        actual = parse_findings(output, fixture)

        missing = expected - actual
        surplus = actual - expected
        status = "ok" if not missing and not surplus else "FAIL"
        print(f"[{status}] {fixture.name}: expected {len(expected)}, "
              f"got {len(actual)}")
        for line, check in sorted(missing):
            failures += 1
            print(f"  missing  {fixture.name}:{line} [{check}]")
        for line, check in sorted(surplus):
            failures += 1
            print(f"  surplus  {fixture.name}:{line} [{check}]")

    if failures:
        print(f"{failures} fixture expectation(s) violated", file=sys.stderr)
        return 1
    print(f"all {len(fixtures) - skipped} fixtures match under the "
          f"{args.engine} engine ({skipped} portable-only skipped)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

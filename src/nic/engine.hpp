// A serialised hardware engine (LANai CPU, SDMA, RDMA).
//
// Work items execute strictly in submission order, each occupying the
// engine for its stated duration.  Submitting while busy queues implicitly:
// the reservation starts when the engine frees up.  This is what makes the
// slow-NIC-processor effect real: every send-token translation, header
// rewrite and ack competes for the one LANai CPU.
#pragma once

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace nicmcast::nic {

class Engine {
 public:
  Engine(sim::Simulator& sim, const char* name) : sim_(sim), name_(name) {}
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Reserves the engine for `busy` starting at the earliest free instant
  /// and runs `on_complete` when the reservation ends.  Returns the
  /// completion time.  The callback goes straight into the event queue's
  /// inline-storage Action — no std::function wrapper, no heap allocation
  /// for the hot NIC captures.
  sim::TimePoint run(sim::Duration busy, sim::EventQueue::Action on_complete) {
    const sim::TimePoint start = std::max(sim_.now(), free_at_);
    free_at_ = start + busy;
    sim_.schedule_at(free_at_, std::move(on_complete));
    total_busy_ += busy;
    return free_at_;
  }

  /// Books a future-dated reservation computed by a collapsed fast-path
  /// chain: the engine is occupied until `until` and `busy` of utilisation
  /// is charged, with no completion event (the caller already knows every
  /// completion instant).
  void reserve(sim::TimePoint until, sim::Duration busy) {
    free_at_ = std::max(free_at_, until);
    total_busy_ += busy;
  }

  [[nodiscard]] sim::TimePoint free_at() const { return free_at_; }
  [[nodiscard]] bool busy() const { return free_at_ > sim_.now(); }
  /// Cumulative busy time — utilisation statistics for the benches.
  [[nodiscard]] sim::Duration total_busy() const { return total_busy_; }
  [[nodiscard]] const char* name() const { return name_; }

 private:
  sim::Simulator& sim_;
  const char* name_;
  sim::TimePoint free_at_{0};
  sim::Duration total_busy_{0};
};

}  // namespace nicmcast::nic

// NIC cost model.
//
// Calibrated against the paper's testbed: 133 MHz LANai 9.1 on a 66 MHz /
// 64-bit PCI bus (528 MB/s), GM-2.0 alpha1.  The two numbers that drive the
// headline results are the per-send-token processing time (saved by the
// NIC-based multisend) and the header-rewrite cost (the "small overhead...
// wide bars" of the paper's Figure 2b).  DESIGN.md §5 records the
// calibration targets.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/time.hpp"

namespace nicmcast::nic {

/// Process-wide default for NicConfig::uncontended_fast_path (the
/// --fast-path bench flag).  Set once at startup, before any cluster or
/// RunSpec is built, so every NicConfig constructed afterwards inherits it.
inline bool& default_uncontended_fast_path() {
  static bool enabled = false;
  return enabled;
}

struct NicConfig {
  /// Host-side cost of constructing + posting one send event ("the host
  /// overhead over GM is less than 1us", paper §5).
  sim::Duration host_post_overhead = sim::usec(0.4);
  /// PIO latency for a host write to reach NIC memory.
  sim::Duration host_to_nic_delay = sim::usec(0.3);

  /// LANai: translate a send event into a send token and set up the DMA.
  /// This is the per-request processing the multisend amortises.
  sim::Duration send_token_processing = sim::usec(3.6);
  /// LANai: per-packet handling inside a multi-packet message.
  sim::Duration per_packet_processing = sim::usec(0.3);
  /// LANai: translate a posted receive descriptor into a receive token.
  sim::Duration recv_token_processing = sim::usec(0.2);
  /// LANai: rewrite a queued packet descriptor's header for the next
  /// destination (the GM-2 callback-handler path; paper §5 alternative 2).
  sim::Duration header_rewrite = sim::usec(0.3);
  /// LANai: set up forwarding of a received multicast packet — group-table
  /// lookup, receive-token transform into a send token, send-record
  /// creation (paper §5, "Messages Forwarding").
  sim::Duration forward_processing = sim::usec(5.0);
  /// LANai: per received packet — sequence check, token lookup.
  sim::Duration recv_packet_processing = sim::usec(1.2);
  /// LANai: generate or absorb an acknowledgment.
  sim::Duration ack_processing = sim::usec(0.4);
  /// NIC -> host receive-event DMA plus host wakeup/poll cost.
  sim::Duration event_delivery = sim::usec(0.7);

  /// Host <-> NIC DMA bandwidth (66 MHz x 64 bit PCI).
  double host_dma_mbps = 528.0;
  /// DMA engine startup cost per transfer.
  sim::Duration dma_startup = sim::usec(0.5);

  /// Largest GM packet payload (paper §6.1: "maximum packet size in GM is
  /// 4096 bytes").
  std::size_t max_packet_payload = 4096;

  /// Go-back-N retransmission timeout.  Real GM uses ~50ms+; a smaller
  /// value keeps simulated fault-recovery runs short without changing the
  /// protocol's behaviour.
  sim::Duration retransmit_timeout = sim::msec(1.0);
  /// Retransmissions per record before the NIC declares the peer dead and
  /// fails the operation back to the host.
  std::size_t max_retries = 30;

  /// Idle sender-connection reclaim: once a connection has had no
  /// outstanding send records for this long, the NIC runs a kCtrl
  /// close handshake with the peer and erases both endpoints' Go-back-N
  /// state (the maps would otherwise grow with every peer ever talked to).
  /// Duration{0} (the default) disables reclaim.
  sim::Duration conn_idle_timeout = sim::Duration{0};

  /// LANai lane-combine bandwidth for NIC-level reduction (extension;
  /// paper §7 / "NIC-Based Reduction in Myrinet Clusters").  The 133 MHz
  /// LANai loads, adds and stores each 8-byte lane — slow enough that NIC
  /// reduction only pays off for small vectors, exactly as that paper
  /// found.
  double nic_combine_mbps = 100.0;

  /// Send tokens per port (paper §5: drawing forwarding tokens from this
  /// finite pool is the rejected, deadlock-prone alternative).
  std::size_t send_tokens_per_port = 16;

  /// Shard this NIC lives on in a sharded (PDES) run; 0 in sequential
  /// runs.  Tagged into trace output so a per-shard timeline can be teased
  /// apart when debugging cross-shard scheduling.
  std::uint32_t shard = 0;

  /// Expected peer-connection population: how many distinct (port, peer,
  /// peer port) connections this NIC is likely to hold at once.  The
  /// sender/receiver Go-back-N tables pre-reserve to this at construction
  /// so steady-state traffic never rehashes mid-packet; growth past the
  /// hint still works and is counted in NicStats::map_growths.  0 skips
  /// the reservation (gm::Cluster defaults it to min(nodes, 64)).
  std::size_t expected_peers = 0;

  /// Opt-in modelling approximation (default off): when a replica chain
  /// starts while the LANai CPU is idle, every header rewrite begins the
  /// instant the previous replica clears the transmit DMA engine, so all
  /// injection instants are computable up front.  The fast path then
  /// transmits each replica future-dated in one pass instead of chaining
  /// two events per hop (tx-complete + rewrite completion) — the only
  /// events left are the deliveries the network schedules anyway.  Wire
  /// timings match the chained path when nothing contends mid-chain; when
  /// something would have (a competing flow grabbing the uplink or the
  /// LANai between replicas), the fast path wins the arbitration instead.
  /// Its event lineage differs, so determinism goldens are pinned per mode.
  bool uncontended_fast_path = default_uncontended_fast_path();

  /// NIC SRAM packet-staging buffers.  Each accepted data packet occupies
  /// one until its RDMA (and, at intermediate nodes, its forwarding
  /// transmissions) complete.  The paper's §5 rationale for releasing at
  /// forward-completion: "the NIC receive buffer is a limited resource,
  /// and holding on to one or more receive buffers will slow down the
  /// receiver or even block the network."
  std::size_t nic_rx_buffers = 32;
};

}  // namespace nicmcast::nic

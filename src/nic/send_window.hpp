// Struct-of-arrays Go-back-N window.
//
// The per-packet work on a send window touches two fields: the cumulative
// ack compares front sequence numbers, and every wire transmission
// re-stamps one record's injection time (the on_transmit scan).  Stored
// as an array of full records — payload view, rebuilt header, completion
// bookkeeping — each of those touches drags a whole cache line per record
// through the scan.  SendWindow splits the window into two lockstep rings:
//
//   hot:  {seq, sent_at}            16 bytes, four records per cache line
//   cold: payload/header/handle     visited only on pop, retransmission
//                                   or failure
//
// Both rings are RingDeques, so the allocation-free drain/refill behaviour
// of the previous layout is unchanged; only the memory layout moved.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>

#include "nic/sequence.hpp"
#include "sim/ring_deque.hpp"
#include "sim/time.hpp"

namespace nicmcast::nic {

/// The fields every ack-prune, timer-arm and wire-restamp scan reads.
struct HotRecord {
  SeqNum seq = 0;
  sim::TimePoint sent_at{};
};

template <typename Cold>
class SendWindow {
 public:
  [[nodiscard]] bool empty() const { return hot_.empty(); }
  [[nodiscard]] std::size_t size() const { return hot_.size(); }

  void push_back(SeqNum seq, sim::TimePoint sent_at, Cold cold) {
    hot_.push_back(HotRecord{seq, sent_at});
    cold_.push_back(std::move(cold));
  }

  void pop_front() {
    hot_.pop_front();
    cold_.pop_front();
  }

  void clear() {
    hot_.clear();
    cold_.clear();
  }

  [[nodiscard]] SeqNum front_seq() const { return hot_.front().seq; }
  [[nodiscard]] sim::TimePoint front_sent_at() const {
    return hot_.front().sent_at;
  }
  [[nodiscard]] Cold& front_cold() { return cold_.front(); }
  [[nodiscard]] const Cold& front_cold() const { return cold_.front(); }

  [[nodiscard]] HotRecord& hot(std::size_t i) { return hot_[i]; }
  [[nodiscard]] const HotRecord& hot(std::size_t i) const { return hot_[i]; }
  [[nodiscard]] Cold& cold(std::size_t i) { return cold_[i]; }
  [[nodiscard]] const Cold& cold(std::size_t i) const { return cold_[i]; }

  /// Timers measure from the wire, not from record creation: re-stamps the
  /// newest record with its true injection time.
  void stamp_back(sim::TimePoint sent_at) { hot_.back().sent_at = sent_at; }

  /// Re-stamps record `seq`'s wire time after a (possibly queued) replica
  /// left the link.  Records are in ascending seq order and the touched one
  /// is usually at the back — the packet just handed to the wire — so the
  /// scan runs backwards over the hot ring only and stops as soon as it
  /// passes where `seq` would sit (already pruned by a racing ack).
  void touch(SeqNum seq, sim::TimePoint sent_at) {
    for (std::size_t i = hot_.size(); i-- > 0;) {
      HotRecord& h = hot_[i];
      if (h.seq == seq) {
        h.sent_at = std::max(h.sent_at, sent_at);
        return;
      }
      if (seq_before(h.seq, seq)) return;
    }
  }

 private:
  sim::RingDeque<HotRecord> hot_;
  sim::RingDeque<Cold> cold_;
};

}  // namespace nicmcast::nic

// Protocol invariant auditor.
//
// An observer the chaos soak (and any test) attaches to every NIC in a
// cluster.  It cross-checks the reliability protocol from outside the
// protocol's own bookkeeping: a ledger of packets sent / accepted / events
// delivered, exactly-once in-order acceptance per connection and per group,
// send-token and NIC-SRAM conservation against the configured pools, and a
// drain check (no unacked records, no armed timers, no half-open handshakes
// once the simulator has nothing left to do).  A NIC with no auditor
// attached pays one pointer compare per hook site.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "net/packet.hpp"
#include "nic/sequence.hpp"
#include "nic/types.hpp"

namespace nicmcast::nic {

class Nic;

class ProtocolAuditor {
 public:
  /// Cluster-wide traffic ledger, by packet class.
  struct Ledger {
    std::uint64_t data_sent = 0;       // kData + kMcastData leaving any NIC
    std::uint64_t data_accepted = 0;   // in-sequence acceptances
    std::uint64_t acks_sent = 0;       // kAck + kMcastAck + kReduceAck
    std::uint64_t ctrl_sent = 0;       // kCtrl handshake packets
    std::uint64_t other_sent = 0;      // barrier / reduce traffic
    std::uint64_t events_delivered = 0;
    std::uint64_t send_failures = 0;   // kSendFailed events seen
    std::uint64_t conn_resets = 0;     // receiver-side resyncs applied
  };

  // ---- Hooks (called by attached NICs) ----
  void on_packet_sent(const Nic& nic, const net::Packet& packet);
  /// An in-sequence data packet was accepted (unicast or multicast).  This
  /// is where exactly-once in-order delivery is enforced: per stream the
  /// accepted seqs must be exactly 0, 1, 2, ... (wrap-aware), with no gap
  /// and no repeat.
  void on_data_accepted(const Nic& nic, const net::Packet& packet);
  /// The receiver applied a connection reset: the stream's expectation
  /// jumps to `expected` (the sender abandoned everything before it).
  void on_conn_reset(const Nic& nic, net::PortId port, net::NodeId src,
                     net::PortId src_port, SeqNum expected);
  void on_event(const Nic& nic, net::PortId port, const HostEvent& event);
  void on_send_tokens(const Nic& nic, net::PortId port, std::size_t in_use);
  void on_rx_buffers(const Nic& nic, std::size_t in_use);

  // ---- Final checks ----
  /// Call once per NIC after the simulator drained.  Verifies quiescence:
  /// no send tokens or SRAM buffers in use, no unacked records, no armed
  /// timer handles, no pending operations, no stalled forwards, no
  /// half-open ctrl handshakes, no abandoned partial message assemblies.
  void check_drained(const Nic& nic);

  [[nodiscard]] bool ok() const { return violations_.empty(); }
  [[nodiscard]] const std::vector<std::string>& violations() const {
    return violations_;
  }
  [[nodiscard]] const Ledger& ledger() const { return ledger_; }
  /// First `max_lines` violations, one per line (empty string when ok).
  [[nodiscard]] std::string report(std::size_t max_lines = 12) const;

 private:
  // (node, is-multicast, conn_key-or-group) -> next seq this stream must
  // accept.  Streams appear on first acceptance; unicast streams may also
  // be (re)positioned by a connection reset.
  using StreamKey = std::tuple<net::NodeId, bool, std::uint64_t>;

  // The per-stream ledger is only probed point-wise (never iterated), so a
  // hash map beats the red-black tree on the soak's hot acceptance path.
  struct StreamKeyHash {
    std::size_t operator()(const StreamKey& key) const noexcept {
      // FNV-1a over the three fields, folded into 64 bits.
      std::uint64_t h = 0xcbf29ce484222325ULL;
      const auto mix = [&h](std::uint64_t v) {
        h = (h ^ v) * 0x100000001b3ULL;
      };
      mix(std::get<0>(key));
      mix(std::get<1>(key) ? 1 : 0);
      mix(std::get<2>(key));
      return static_cast<std::size_t>(h);
    }
  };

  void violation(const Nic& nic, std::string what);

  std::unordered_map<StreamKey, SeqNum, StreamKeyHash> expected_;
  Ledger ledger_;
  std::vector<std::string> violations_;
};

}  // namespace nicmcast::nic

#include "nic/auditor.hpp"

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "nic/nic.hpp"

namespace nicmcast::nic {

namespace {

// Drain violations are appended to a report that replay tests diff, so
// they must come out in a stable order; the connection/group tables are
// unordered_maps whose iteration order follows the hash seed.
template <typename Map>
std::vector<typename Map::key_type> sorted_keys(const Map& map) {
  std::vector<typename Map::key_type> keys;
  keys.reserve(map.size());
  for (const auto& [key, value] : map) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

bool is_data(net::PacketType t) {
  return t == net::PacketType::kData || t == net::PacketType::kMcastData;
}

bool is_ack(net::PacketType t) {
  return t == net::PacketType::kAck || t == net::PacketType::kMcastAck ||
         t == net::PacketType::kReduceAck;
}

}  // namespace

void ProtocolAuditor::violation(const Nic& nic, std::string what) {
  violations_.push_back("node" + std::to_string(nic.id()) + ": " +
                        std::move(what));
}

void ProtocolAuditor::on_packet_sent(const Nic& nic,
                                     const net::Packet& packet) {
  if (is_data(packet.header.type)) {
    ++ledger_.data_sent;
  } else if (is_ack(packet.header.type)) {
    ++ledger_.acks_sent;
  } else if (packet.header.type == net::PacketType::kCtrl) {
    ++ledger_.ctrl_sent;
  } else {
    ++ledger_.other_sent;
  }
  // Every packet a NIC injects must carry that NIC as its source — the ack
  // and forwarding paths both rewrite src, and a violation here means a
  // stale header escaped onto the wire.
  if (packet.header.src != nic.id()) {
    violation(nic, "sent packet with foreign src " +
                       std::to_string(packet.header.src) + " (" +
                       packet.describe() + ")");
  }
  if (is_data(packet.header.type) &&
      packet.header.msg_offset + packet.payload.size() >
          packet.header.msg_length) {
    violation(nic, "data packet overruns its message: " + packet.describe());
  }
}

void ProtocolAuditor::on_data_accepted(const Nic& nic,
                                       const net::Packet& packet) {
  ++ledger_.data_accepted;
  const bool mcast = packet.header.type == net::PacketType::kMcastData;
  const std::uint64_t stream =
      mcast ? packet.header.group
            : Nic::conn_key(packet.header.dst_port, packet.header.src,
                            packet.header.src_port);
  const StreamKey key{nic.id(), mcast, stream};
  auto [it, first] = expected_.try_emplace(key, packet.header.seq);
  if (!first && packet.header.seq != it->second) {
    violation(nic, std::string(mcast ? "group" : "connection") +
                       " accepted seq " + std::to_string(packet.header.seq) +
                       " but " + std::to_string(it->second) +
                       " was next (duplicate or out-of-order acceptance)");
  }
  it->second = packet.header.seq + 1;
}

void ProtocolAuditor::on_conn_reset(const Nic& nic, net::PortId port,
                                    net::NodeId src, net::PortId src_port,
                                    SeqNum expected) {
  ++ledger_.conn_resets;
  const StreamKey key{nic.id(), false, Nic::conn_key(port, src, src_port)};
  // The sender abandoned everything before `expected`; acceptance resumes
  // there.  A reset that moved the expectation backwards would re-open the
  // door to duplicate delivery.
  auto it = expected_.find(key);
  if (it != expected_.end() && seq_before(expected, it->second)) {
    violation(nic, "connection reset moved expectation backwards: " +
                       std::to_string(it->second) + " -> " +
                       std::to_string(expected));
  }
  expected_[key] = expected;
}

void ProtocolAuditor::on_event(const Nic& nic, net::PortId port,
                               const HostEvent& event) {
  ++ledger_.events_delivered;
  if (event.type == HostEvent::Type::kSendFailed) ++ledger_.send_failures;
  if (port >= nic.num_ports()) {
    violation(nic, "event delivered to nonexistent port " +
                       std::to_string(port));
  }
}

void ProtocolAuditor::on_send_tokens(const Nic& nic, net::PortId port,
                                     std::size_t in_use) {
  if (in_use > nic.config().send_tokens_per_port) {
    violation(nic, "send-token conservation broken on port " +
                       std::to_string(port) + ": " + std::to_string(in_use) +
                       " in use, pool is " +
                       std::to_string(nic.config().send_tokens_per_port));
  }
}

void ProtocolAuditor::on_rx_buffers(const Nic& nic, std::size_t in_use) {
  if (in_use > nic.config().nic_rx_buffers) {
    violation(nic, "rx-buffer conservation broken: " +
                       std::to_string(in_use) + " in use, pool is " +
                       std::to_string(nic.config().nic_rx_buffers));
  }
}

void ProtocolAuditor::check_drained(const Nic& nic) {
  for (std::size_t p = 0; p < nic.ports_.size(); ++p) {
    if (nic.ports_[p]->send_tokens_in_use != 0) {
      violation(nic, "port " + std::to_string(p) + " still holds " +
                         std::to_string(nic.ports_[p]->send_tokens_in_use) +
                         " send token(s) at drain");
    }
  }
  if (nic.rx_buffers_in_use_ != 0) {
    violation(nic, std::to_string(nic.rx_buffers_in_use_) +
                       " NIC rx staging buffer(s) still in use at drain");
  }
  if (!nic.pending_ops_.empty()) {
    violation(nic, std::to_string(nic.pending_ops_.size()) +
                       " pending operation(s) never completed nor failed");
  }
  if (!nic.deferred_forwards_.empty()) {
    violation(nic, std::to_string(nic.deferred_forwards_.size()) +
                       " forward(s) still stalled at drain");
  }
  for (const std::uint64_t key : sorted_keys(nic.sender_conns_)) {
    const auto& conn = nic.sender_conns_.at(key);
    const std::string peer = "conn to node" +
                             std::to_string(Nic::conn_peer(key));
    if (!conn.records.empty()) {
      violation(nic, peer + ": " + std::to_string(conn.records.size()) +
                         " unacked send record(s) at drain");
    }
    // Timer quiescence: at drain every scheduled event has fired, so any
    // still-set handle is leaked bookkeeping.
    if (conn.timer) violation(nic, peer + ": retransmit timer armed at drain");
    if (conn.ctrl_timer) violation(nic, peer + ": ctrl timer armed at drain");
    if (conn.idle_timer) violation(nic, peer + ": idle timer armed at drain");
    // A ctrl handshake either completes or gives up (ctrl -> kNone); a
    // pending state with no timer to drive it would hang forever.
    if (conn.ctrl != Nic::Ctrl::kNone) {
      violation(nic, peer + ": ctrl handshake still open at drain");
    }
  }
  for (const std::uint64_t key : sorted_keys(nic.receiver_conns_)) {
    const auto& conn = nic.receiver_conns_.at(key);
    if (conn.assembly && !conn.assembly->fully_accepted()) {
      violation(nic, "conn from node" + std::to_string(Nic::conn_peer(key)) +
                         ": partially assembled message stalled at drain");
    }
  }
  for (const net::GroupId group_id : sorted_keys(nic.groups_)) {
    const auto& group = nic.groups_.at(group_id);
    const std::string label = "group " + std::to_string(group_id);
    if (!group.records.empty()) {
      violation(nic, label + ": " + std::to_string(group.records.size()) +
                         " unacked forwarding record(s) at drain");
    }
    if (group.timer) violation(nic, label + ": group timer armed at drain");
    if (group.barrier.resend_timer) {
      violation(nic, label + ": barrier resend timer armed at drain");
    }
    if (group.reduce.resend_timer) {
      violation(nic, label + ": reduce resend timer armed at drain");
    }
    if (group.assembly && !group.assembly->fully_accepted()) {
      violation(nic,
                label + ": partially assembled message stalled at drain");
    }
  }
}

std::string ProtocolAuditor::report(std::size_t max_lines) const {
  std::string out;
  for (std::size_t i = 0; i < violations_.size() && i < max_lines; ++i) {
    out += violations_[i];
    out += '\n';
  }
  if (violations_.size() > max_lines) {
    out += "... and " + std::to_string(violations_.size() - max_lines) +
           " more violation(s)\n";
  }
  return out;
}

}  // namespace nicmcast::nic

// Wrap-safe 32-bit sequence-number arithmetic (RFC 1982 style).
//
// GM sequence spaces are per connection / per multicast group and
// unbounded over a long run, so all comparisons must tolerate wraparound.
#pragma once

#include <cstdint>

namespace nicmcast::nic {

using SeqNum = std::uint32_t;

/// True when `a` precedes `b` in wrap-around order.
[[nodiscard]] constexpr bool seq_before(SeqNum a, SeqNum b) {
  return static_cast<std::int32_t>(a - b) < 0;
}

/// True when `a` is `b` or precedes it.
[[nodiscard]] constexpr bool seq_before_eq(SeqNum a, SeqNum b) {
  return a == b || seq_before(a, b);
}

/// Forward distance from `a` to `b` (b - a in sequence space).
[[nodiscard]] constexpr std::uint32_t seq_distance(SeqNum a, SeqNum b) {
  return b - a;
}

}  // namespace nicmcast::nic

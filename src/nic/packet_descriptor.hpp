// GM-2's "myrinet packet descriptor" with a callback handler.
//
// The paper's multisend and forwarding mechanisms are built on exactly this
// GM-2.0-alpha feature (paper §4): every queued packet carries a descriptor
// whose callback fires when the transmit DMA engine completes.  The callback
// may rewrite the header (next destination) and queue the same descriptor
// again instead of freeing it — that re-queue is what replaces per-
// destination send-token processing with a cheap header rewrite.
#pragma once

#include <functional>
#include <memory>

#include "net/packet.hpp"

namespace nicmcast::nic {

struct PacketDescriptor;
using DescriptorRef = std::shared_ptr<PacketDescriptor>;

struct PacketDescriptor {
  net::Packet packet;
  /// Invoked when the transmit DMA engine has pushed the last byte of this
  /// packet onto the wire.  Empty => the descriptor is freed.
  std::function<void(DescriptorRef)> on_tx_complete;
};

[[nodiscard]] inline DescriptorRef make_descriptor(net::Packet packet) {
  auto d = std::make_shared<PacketDescriptor>();
  d->packet = std::move(packet);
  return d;
}

}  // namespace nicmcast::nic

// GM-2's "myrinet packet descriptor" with a callback handler.
//
// The paper's multisend and forwarding mechanisms are built on exactly this
// GM-2.0-alpha feature (paper §4): every queued packet carries a descriptor
// whose callback fires when the transmit DMA engine completes.  The callback
// may rewrite the header (next destination) and queue the same descriptor
// again instead of freeing it — that re-queue is what replaces per-
// destination send-token processing with a cheap header rewrite.
//
// Descriptors are pooled per NIC, exactly like the real firmware's fixed
// descriptor ring: DescriptorRef is an intrusive refcount, and when the
// last reference drops the descriptor's payload view and callback are
// released and the storage is recycled through a free list instead of
// going back to the heap.  A NIC allocates only as many descriptors as it
// ever has concurrently in flight (NicStats::descriptor_allocs); everything
// after that is a reuse (NicStats::descriptor_reuses).
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "net/packet.hpp"
#include "sim/inline_function.hpp"

namespace nicmcast::nic {

struct PacketDescriptor;
class DescriptorPool;
class DescriptorRef;

struct PacketDescriptor {
  net::Packet packet;
  /// Invoked when the transmit DMA engine has pushed the last byte of this
  /// packet onto the wire.  Empty => the descriptor is freed on last unref.
  /// 48 inline bytes covers the replica-chain capture (this + chain state).
  sim::InlineFunction<void(DescriptorRef), 48> on_tx_complete;

 private:
  friend class DescriptorPool;
  friend class DescriptorRef;
  DescriptorPool* pool_ = nullptr;
  PacketDescriptor* next_free_ = nullptr;
  std::uint32_t refs_ = 0;
};

/// Intrusive smart reference to a pooled descriptor.  Copying bumps the
/// refcount; the last destruction returns the descriptor to its pool.
class DescriptorRef {
 public:
  DescriptorRef() = default;
  DescriptorRef(const DescriptorRef& other) : d_(other.d_) {
    if (d_ != nullptr) ++d_->refs_;
  }
  DescriptorRef(DescriptorRef&& other) noexcept : d_(other.d_) {
    other.d_ = nullptr;
  }
  DescriptorRef& operator=(const DescriptorRef& other) {
    if (this != &other) {
      reset();
      d_ = other.d_;
      if (d_ != nullptr) ++d_->refs_;
    }
    return *this;
  }
  DescriptorRef& operator=(DescriptorRef&& other) noexcept {
    if (this != &other) {
      reset();
      d_ = other.d_;
      other.d_ = nullptr;
    }
    return *this;
  }
  ~DescriptorRef() { reset(); }

  [[nodiscard]] PacketDescriptor* operator->() const { return d_; }
  [[nodiscard]] PacketDescriptor& operator*() const { return *d_; }
  [[nodiscard]] explicit operator bool() const { return d_ != nullptr; }

  inline void reset();

 private:
  friend class DescriptorPool;
  explicit DescriptorRef(PacketDescriptor* d) : d_(d) {}
  PacketDescriptor* d_ = nullptr;
};

/// Per-NIC descriptor free list.  Storage is owned here (stable addresses);
/// the free list threads through the descriptors themselves.
class DescriptorPool {
 public:
  DescriptorPool() = default;
  DescriptorPool(const DescriptorPool&) = delete;
  DescriptorPool& operator=(const DescriptorPool&) = delete;

  [[nodiscard]] DescriptorRef acquire(net::Packet packet) {
    PacketDescriptor* d;
    if (free_ != nullptr) {
      d = free_;
      free_ = d->next_free_;
      ++reuses_;
    } else {
      storage_.push_back(std::make_unique<PacketDescriptor>());
      d = storage_.back().get();
      d->pool_ = this;
      ++allocs_;
    }
    d->packet = std::move(packet);
    d->refs_ = 1;
    return DescriptorRef{d};
  }

  [[nodiscard]] std::uint64_t allocs() const { return allocs_; }
  [[nodiscard]] std::uint64_t reuses() const { return reuses_; }

 private:
  friend class DescriptorRef;
  void release(PacketDescriptor* d) {
    // Drop the payload's block reference and the callback's captures now —
    // a parked descriptor must not pin a message block alive.
    d->packet = net::Packet{};
    d->on_tx_complete = nullptr;
    d->next_free_ = free_;
    free_ = d;
  }

  std::vector<std::unique_ptr<PacketDescriptor>> storage_;
  PacketDescriptor* free_ = nullptr;
  std::uint64_t allocs_ = 0;
  std::uint64_t reuses_ = 0;
};

inline void DescriptorRef::reset() {
  if (d_ != nullptr && --d_->refs_ == 0) {
    d_->pool_->release(d_);
  }
  d_ = nullptr;
}

}  // namespace nicmcast::nic

// The LANai firmware model: GM's reliable ordered transport plus the
// paper's NIC-based multisend and multicast-forwarding extensions.
//
// Engines: one LANai CPU (every token translation, sequence check, ack and
// header rewrite serialises here), an SDMA engine (host -> NIC over PCI), an
// RDMA engine (NIC -> host), and the wire itself (modelled by the Network's
// link occupancy).
//
// Reliability: per-connection Go-back-N exactly as GM does it — send
// records with timeout/retransmission, cumulative acks, receivers accept
// only the expected sequence number.  The multicast extension keeps, per
// group: a receive sequence number (from the parent), a send sequence number
// (to the children) and an array of per-child acknowledged sequence numbers;
// a timeout retransmits only to the children that have not acked (paper §5,
// "Reliability and In Order Delivery").
//
// Deadlock policy (paper §5, "Deadlock"): no credit-based flow control;
// forwarding transforms the receive token instead of drawing from the send-
// token pool.  Setting NicOptions::forwarding_uses_send_tokens replicates
// the rejected alternative for the ablation study.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "net/network.hpp"
#include "net/packet.hpp"
#include "nic/config.hpp"
#include "nic/engine.hpp"
#include "nic/packet_descriptor.hpp"
#include "nic/send_window.hpp"
#include "nic/sequence.hpp"
#include "nic/types.hpp"
#include "sim/flat_map.hpp"
#include "sim/ring_deque.hpp"
#include "sim/simulator.hpp"

namespace nicmcast::nic {

class ProtocolAuditor;

struct NicOptions {
  std::size_t num_ports = 4;
  /// Ablation: make the forwarding path grab tokens from the free send-token
  /// pool (the deadlock-prone alternative the paper rejects).  Forwards
  /// stall while the pool is empty.
  bool forwarding_uses_send_tokens = false;
  /// Ablation: disable the descriptor-callback replica chain and process one
  /// full send token per destination (the paper's alternative 1).
  bool multisend_uses_multiple_tokens = false;
  /// Ablation: the "naive solution" of §5 — keep the received packet's NIC
  /// staging buffer until every child acknowledges, instead of releasing it
  /// once the forwarding transmissions (and the host RDMA) are done.
  bool hold_buffers_until_acked = false;
};

class Nic final : public net::PacketSink {
 public:
  Nic(sim::Simulator& sim, net::Network& network, net::NodeId id,
      NicConfig config = {}, NicOptions options = {});

  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  // ---- Host-facing interface (called by the GM library layer) ----
  // These model writes that have already crossed the PCI bus; the GM layer
  // charges host-side overhead and enforces send-token availability before
  // calling.

  void post_send(SendRequest request);
  void post_multisend(MultisendRequest request);
  void post_mcast_send(McastSendRequest request);
  void post_recv_buffer(RecvBuffer buffer);

  /// NIC-level barrier arrival (extension; paper §7).  The host announces
  /// it reached the barrier for `group`'s current epoch; the NICs gather
  /// arrivals up the tree and the root's NIC releases everyone — no host
  /// involvement between entry and the kBarrierDone event.
  void post_barrier(net::PortId port, net::GroupId group, OpHandle handle);

  /// NIC-level reduction contribution (extension; paper §7 / "NIC-Based
  /// Reduction in Myrinet Clusters").  `data` is a vector of 8-byte
  /// little-endian integer lanes; the NICs fold children's contributions
  /// lane-wise as they arrive and forward the partial sum up the tree.
  /// Completion: non-root hosts get kSendComplete when the parent absorbs
  /// their combined value; the root host gets kReduceDone carrying the
  /// cluster-wide sum.  All ranks must contribute equal-size vectors.
  void post_reduce(net::PortId port, net::GroupId group, Payload data,
                   OpHandle handle);

  /// Preposts/updates the spanning-tree entry for `group` in the NIC group
  /// table.  Constant-time for the NIC; the host built the tree.
  void set_group(net::GroupId group, GroupEntry entry);
  [[nodiscard]] bool has_group(net::GroupId group) const;
  /// Drops a group's table entry (communicator teardown).  Outstanding
  /// traffic for the group must have quiesced.
  void remove_group(net::GroupId group);

  /// The receive-event queue of a port.  Host processes co_await on this.
  [[nodiscard]] sim::Channel<HostEvent>& events(net::PortId port);

  // ---- Introspection ----

  [[nodiscard]] net::NodeId id() const { return id_; }
  [[nodiscard]] const NicConfig& config() const { return config_; }
  [[nodiscard]] const NicStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t num_ports() const { return ports_.size(); }
  [[nodiscard]] std::size_t send_tokens_available(net::PortId port) const;
  [[nodiscard]] std::size_t recv_buffers_posted(net::PortId port) const;
  /// Cumulative LANai CPU busy time (NIC utilisation benches).
  [[nodiscard]] sim::Duration cpu_busy_time() const {
    return cpu_.total_busy();
  }

  // ---- Network-facing interface ----
  void packet_arrived(net::Packet packet) override;

  // ---- Protocol auditing ----
  /// Attaches an invariant auditor (nullptr detaches).  Not owned; must
  /// outlive the NIC.  With no auditor attached every hook is one pointer
  /// compare.
  void set_auditor(ProtocolAuditor* auditor) { auditor_ = auditor; }

  // ---- Test hooks ----
  // Forces connection sequence counters so tests can exercise 32-bit
  // wraparound without sending 4 billion packets.
  void debug_set_send_seq(net::PortId port, net::NodeId dest,
                          net::PortId dest_port, SeqNum seq) {
    sender_conns_[conn_key(port, dest, dest_port)].next_seq = seq;
  }
  void debug_set_recv_seq(net::PortId port, net::NodeId src,
                          net::PortId src_port, SeqNum seq) {
    receiver_conns_[conn_key(port, src, src_port)].expected_seq = seq;
  }
  /// Forces a group's whole sequence space (recv, send, per-child acked) so
  /// soak runs can drive the multicast path across the 2^32 wrap.  Call on
  /// every member NIC right after the group is installed.
  void debug_set_group_seq(net::GroupId group, SeqNum seq);
  [[nodiscard]] std::size_t debug_sender_conn_count() const {
    return sender_conns_.size();
  }
  [[nodiscard]] std::size_t debug_receiver_conn_count() const {
    return receiver_conns_.size();
  }
  [[nodiscard]] std::size_t debug_deferred_forward_count() const {
    return deferred_forwards_.size();
  }

 private:
  friend class ProtocolAuditor;
  // Shared, immutable message bytes; send records reference this instead of
  // copying the payload per destination.  Fragments slice views out of the
  // same block, so retransmission and multicast forwarding never duplicate
  // payload bytes (see net/buffer.hpp).
  using MessageRef = net::Buffer;

  // Staging-buffer release hooks (RDMA done, last replica on the wire).
  // 32 inline bytes holds `this` plus a shared counter without the heap
  // allocation std::function paid for the same capture.
  using ReleaseFn = sim::InlineFunction<void(), 32>;

  struct Fragment {
    std::uint32_t offset = 0;
    std::uint32_t length = 0;
  };

  // -- Point-to-point Go-back-N state --

  // Cold half of a point-to-point send record: everything retransmission
  // and completion need, but the steady-state ack/restamp scans never
  // touch.  The hot {seq, sent_at} pair lives in the SendWindow's parallel
  // ring (nic/send_window.hpp).
  struct SendRecord {
    MessageRef message;
    Fragment fragment;
    net::PacketHeader header;  // re-created on retransmission
    std::uint32_t retries = 0;
    OpHandle handle = 0;
  };

  // kCtrl handshake a sender connection may have in flight: a reset
  // (resynchronise the receiver after a max-retries failure left next_seq
  // ahead of its expected_seq) or a close (reclaim an idle connection's
  // state on both ends).  At most one runs at a time per connection.
  enum class Ctrl : std::uint8_t { kNone, kReset, kClose };

  struct SenderConn {
    SeqNum next_seq = 0;
    // In seq order, all unacked.  The hot/cold rings keep their slots
    // across window drain/refill, so steady-state record churn never
    // touches the heap.
    SendWindow<SendRecord> records;
    std::optional<sim::EventId> timer;
    Ctrl ctrl = Ctrl::kNone;
    SeqNum ctrl_seq = 0;  // seq carried by the outstanding ctrl request
    std::uint32_t ctrl_retries = 0;
    std::optional<sim::EventId> ctrl_timer;
    std::optional<sim::EventId> idle_timer;  // armed when records drain
  };

  // One in-flight incoming message.  `accepted` counts bytes the receive
  // path has sequenced (claim/boundary decisions happen here); `received`
  // counts bytes the RDMA engine has landed in host memory.  Back-to-back
  // messages overlap: message m+1's packets can be accepted while message
  // m's RDMA is still draining, so each packet's completion must target its
  // own message's assembly — hence shared ownership.
  struct Assembly {
    RecvBuffer buffer;
    Payload data;
    std::size_t accepted = 0;
    std::size_t received = 0;
    std::uint32_t tag = 0;

    [[nodiscard]] bool fully_accepted() const {
      return accepted >= data.size();
    }
    [[nodiscard]] bool fully_received() const {
      return received >= data.size();
    }
  };
  using AssemblyRef = std::shared_ptr<Assembly>;

  struct ReceiverConn {
    SeqNum expected_seq = 0;
    AssemblyRef assembly;  // the message currently being sequenced
  };

  // -- Multicast group state --

  // Cold half of a multicast send record (hot pair in the SendWindow).
  struct GroupRecord {
    MessageRef message;
    Fragment fragment;
    net::PacketHeader header;
    std::uint32_t retries = 0;
    OpHandle handle = 0;  // root only; 0 for forwarded records
    // Ablation mode: the forward grabbed a send token to release on prune.
    bool holds_token = false;
    // Naive-buffer ablation: the packet's staging buffer is pinned until
    // this record is pruned (all children acked).
    bool holds_rx_buffer = false;
  };

  // NIC-level barrier state (extension; paper §7 / Buntinas et al.'s
  // "Fast NIC-Level Barrier").  A round completes at a node when its host
  // has arrived AND every child's arrive was seen; then the node reports
  // up (arrive to parent) or, at the root, releases down the tree.
  // Reliability: a non-root resends its arrive every timeout until it
  // sees the release (the release is the implicit ack); a parent answers
  // stale arrives for past epochs with an immediate re-release.
  struct BarrierState {
    SeqNum epoch = 0;                 // current (not yet released) round
    std::vector<bool> child_arrived;  // indexed like entry.children
    bool host_posted = false;         // set synchronously at post time
    bool host_arrived = false;
    OpHandle handle = 0;              // host completion cookie
    std::optional<sim::EventId> resend_timer;
    std::uint32_t resends = 0;
  };

  // NIC-level reduction state (extension).  Contributions are combined
  // lane-wise on the LANai as they arrive; the partial sum travels up the
  // tree once the local host and every child have contributed.
  // Reliability mirrors the barrier: the upward packet is resent until the
  // parent's explicit kReduceAck; duplicates of already-absorbed
  // contributions are re-acked without re-combining.
  struct ReduceState {
    SeqNum epoch = 0;
    std::vector<bool> child_arrived;
    bool host_posted = false;   // synchronous double-entry guard
    bool host_arrived = false;
    Payload accumulator;        // lane-wise sum of everything absorbed
    OpHandle handle = 0;
    bool sent_up = false;
    std::optional<sim::EventId> resend_timer;
    std::uint32_t resends = 0;
  };

  struct GroupState {
    GroupEntry entry;
    SeqNum recv_seq = 0;  // next expected from the parent
    SeqNum send_seq = 0;  // next to assign towards the children
    std::vector<SeqNum> child_next_acked;  // per child: next seq they expect
    SendWindow<GroupRecord> records;  // pooled hot/cold, same as SenderConn
    AssemblyRef assembly;
    std::optional<sim::EventId> timer;
    BarrierState barrier;
    ReduceState reduce;
  };

  // -- Operation completion accounting --

  struct PendingOp {
    HostEvent::Type complete_type = HostEvent::Type::kSendComplete;
    net::PortId port = 0;
    std::uint64_t remaining = 0;  // packet-destination acks outstanding
    bool failed = false;
  };

  struct Port {
    sim::Channel<HostEvent> events;
    std::deque<RecvBuffer> recv_buffers;
    std::size_t send_tokens_in_use = 0;
  };

  // -- Key packing for connection maps --
  // Field-lexicographic (my_port, peer, peer_port): the peer field is 32
  // bits wide to match the widened NodeId, and the sorted-key drain audit
  // order is unchanged for all ids that fit the old 16-bit field.
  static std::uint64_t conn_key(net::PortId my_port, net::NodeId peer,
                                net::PortId peer_port) {
    return (static_cast<std::uint64_t>(my_port) << 40) |
           (static_cast<std::uint64_t>(peer) << 8) |
           static_cast<std::uint64_t>(peer_port);
  }
  static net::PortId conn_my_port(std::uint64_t key) {
    return static_cast<net::PortId>(key >> 40);
  }
  static net::NodeId conn_peer(std::uint64_t key) {
    return static_cast<net::NodeId>((key >> 8) & 0xFFFFFFFFu);
  }
  static net::PortId conn_peer_port(std::uint64_t key) {
    return static_cast<net::PortId>(key & 0xFF);
  }

  // -- Send path --
  [[nodiscard]] std::vector<Fragment> fragment_message(std::size_t size) const;
  void start_unicast_packets(net::PortId port, net::NodeId dest,
                             net::PortId dest_port, MessageRef message,
                             std::uint32_t tag, OpHandle handle);
  void sdma_then(std::size_t bytes, sim::EventQueue::Action next);
  void send_data_packet(net::PortId port, net::NodeId dest,
                        net::PortId dest_port, const MessageRef& message,
                        Fragment fragment, std::uint32_t tag, OpHandle handle);
  /// Checks out a pooled descriptor for `packet` (counted in NicStats).
  DescriptorRef make_descriptor(net::Packet packet);
  net::Network::TxTiming transmit(DescriptorRef descriptor,
                                  sim::TimePoint not_before = sim::TimePoint{0});
  net::Packet build_packet(const net::PacketHeader& header,
                           const MessageRef& message, Fragment fragment);

  // -- Multisend / multicast replica chain --
  // Inline-storage callables sized for this file's captures (a MessageRef
  // view + fragment + handles); anything bigger spills to the heap and is
  // counted by the engine's heap_actions stat.
  using PrepareFn = sim::InlineFunction<void(net::Packet&, net::NodeId), 64>;
  using OnTransmitFn = sim::InlineFunction<
      void(const net::Packet&, const net::Network::TxTiming&), 64>;
  // `prepare` retargets the descriptor before each replica; `on_transmit`
  // (optional) reports the wire timing of each replica so callers can stamp
  // their send records with the true injection time (long streams queue on
  // the wire far behind the CPU, and retransmission timers must measure
  // from the wire, not from record creation).
  void start_replica_chain(DescriptorRef descriptor,
                           std::vector<net::NodeId> dests, PrepareFn prepare,
                           OnTransmitFn on_transmit = nullptr);
  void touch_group_record(net::GroupId group_id, SeqNum seq,
                          sim::TimePoint sent_at);

  void launch_mcast_packet(net::GroupId group_id, GroupState& group,
                           const MessageRef& message, Fragment fragment,
                           std::uint32_t tag, OpHandle handle);
  // `on_forwarded` (optional) fires once the last replica left the wire —
  // the chosen staging-buffer release point; null in the naive ablation
  // (the record pins the buffer until all children ack).
  void start_forward(net::GroupId group_id, const net::Packet& packet,
                     ReleaseFn on_forwarded);
  void begin_forward_chain(net::GroupId group_id, const net::Packet& packet,
                           bool holds_token, ReleaseFn on_forwarded);

  // -- Receive path --
  void handle_data(const net::Packet& packet);
  void handle_ack(const net::Packet& packet);
  void handle_mcast_data(const net::Packet& packet);
  void handle_mcast_ack(const net::Packet& packet);

  // -- NIC-level barrier --
  void handle_barrier(const net::Packet& packet);
  void barrier_check_complete(net::GroupId group_id);
  void barrier_send_arrive(net::GroupId group_id);
  void barrier_release(net::GroupId group_id, SeqNum epoch);
  void barrier_resend_timeout(net::GroupId group_id);

  // -- NIC-level reduction --
  void handle_reduce(const net::Packet& packet);
  void handle_reduce_ack(const net::Packet& packet);
  void reduce_combine(net::GroupId group_id, const net::Buffer& contribution);
  void reduce_check_complete(net::GroupId group_id);
  void reduce_send_up(net::GroupId group_id);
  void reduce_resend_timeout(net::GroupId group_id);
  void send_ack(const net::Packet& data_packet, SeqNum cumulative_seq);
  // Ensures `slot` holds the assembly for the message `packet` belongs to,
  // claiming a fresh receive buffer at message boundaries.  Returns false
  // when no fitting buffer is posted (receiver overrun).
  bool ensure_assembly(net::PortId port, AssemblyRef& slot,
                       const net::Packet& packet);
  // `on_rdma_done` (optional) fires when this packet's RDMA completes —
  // used to return the NIC staging buffer.
  void accept_payload(net::PortId port, AssemblyRef assembly,
                      const net::Packet& packet, HostEvent::Type event_type,
                      ReleaseFn on_rdma_done = nullptr);

  // -- kCtrl connection handshakes (reset after failure; idle close) --
  void handle_ctrl(const net::Packet& packet);
  void begin_conn_reset(std::uint64_t key);
  void send_ctrl(std::uint64_t key, std::uint32_t subtype, SeqNum seq);
  void arm_ctrl_timer(std::uint64_t key);
  void ctrl_timeout(std::uint64_t key);
  // New traffic on a connection: cancels the idle timer and aborts (with a
  // resync) any close handshake in flight.  Call before assigning seqs.
  void conn_activity(std::uint64_t key, SenderConn& conn);
  void arm_idle_timer(std::uint64_t key);
  void idle_timeout(std::uint64_t key);

  // -- Reliability --
  void arm_conn_timer(std::uint64_t key);
  void conn_timeout(std::uint64_t key);
  void arm_group_timer(net::GroupId group_id);
  void group_timeout(net::GroupId group_id);
  void retransmit_record(const net::PacketHeader& header,
                         const MessageRef& message, Fragment fragment);
  void fail_operation(OpHandle handle);

  // -- Completion --
  void op_packet_acked(OpHandle handle);
  void deliver_event(net::PortId port, HostEvent event);

  // -- Send tokens --
  void consume_send_token(net::PortId port);
  void release_send_token(net::PortId port);

  // -- NIC SRAM staging buffers --
  [[nodiscard]] bool acquire_rx_buffer();
  void release_rx_buffer();

  [[nodiscard]] bool has_deferred_forward(net::GroupId group) const;

  /// Emits a trace record.  `build` (a callable returning the message)
  /// runs only when the category is enabled, so hot packet paths pay one
  /// branch for disabled tracing, never string formatting.
  template <typename Build>
  void trace(const char* category, Build&& build) {
    if (sim_.tracer().enabled(category)) {
      emit_trace(category, build());
    }
  }
  void emit_trace(const char* category, const std::string& message);

  sim::Simulator& sim_;
  net::Network& network_;
  net::NodeId id_;
  NicConfig config_;
  NicOptions options_;

  Engine cpu_;
  Engine sdma_;
  Engine rdma_;

  std::vector<std::unique_ptr<Port>> ports_;
  // Flat open-addressing tables (sim/flat_map.hpp): inline probe index,
  // pooled entries with stable references, insertion-order iteration.
  // Pre-reserved from NicConfig::expected_peers at construction; any
  // rehash after that shows up in NicStats::map_growths.
  sim::FlatMap<std::uint64_t, SenderConn> sender_conns_;
  sim::FlatMap<std::uint64_t, ReceiverConn> receiver_conns_;
  sim::FlatMap<net::GroupId, GroupState> groups_;
  sim::FlatMap<OpHandle, PendingOp> pending_ops_;
  // Forwards stalled on send-token exhaustion (ablation mode only).
  struct DeferredForward {
    net::GroupId group;
    net::Packet packet;
    ReleaseFn on_forwarded;
  };
  std::deque<DeferredForward> deferred_forwards_;
  std::size_t rx_buffers_in_use_ = 0;

  ProtocolAuditor* auditor_ = nullptr;
  DescriptorPool descriptors_;
  NicStats stats_;
};

}  // namespace nicmcast::nic

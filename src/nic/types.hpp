// Host <-> NIC interface types.
//
// These mirror GM's host-visible objects: send events, receive descriptors,
// the receive-event queue, and (new in this work) multisend / multicast send
// events plus the NIC-resident group table that the host preposts spanning
// trees into.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "net/packet.hpp"

namespace nicmcast::nic {

using Payload = std::vector<std::byte>;

/// Host-side cookie identifying an operation in completion events.
using OpHandle = std::uint64_t;

constexpr net::NodeId kNoNode = std::numeric_limits<net::NodeId>::max();

/// Point-to-point send event (GM's gm_send_with_callback).
struct SendRequest {
  net::PortId port = 0;
  net::NodeId dest = 0;
  net::PortId dest_port = 0;
  Payload data;
  std::uint32_t tag = 0;
  OpHandle handle = 0;
};

/// NIC-based multisend: one host posting, one host->NIC DMA, replicas to
/// every destination via packet-descriptor callback re-queueing (paper §5,
/// "Sending of Multiple Message Replicas", chosen alternative 2).
struct MultisendRequest {
  net::PortId port = 0;
  std::vector<net::NodeId> dests;
  net::PortId dest_port = 0;
  Payload data;
  std::uint32_t tag = 0;
  OpHandle handle = 0;
};

/// NIC-based multicast send over a preposted group tree.
struct McastSendRequest {
  net::PortId port = 0;
  net::GroupId group = net::kNoGroup;
  Payload data;
  std::uint32_t tag = 0;
  OpHandle handle = 0;
};

/// A registered receive buffer preposted to the NIC (receive token once
/// translated).  The multicast path reuses these tokens at intermediate
/// nodes both to land data in host memory and as the retransmission source.
struct RecvBuffer {
  net::PortId port = 0;
  std::size_t capacity = 0;
  OpHandle handle = 0;
};

/// Spanning-tree entry preposted into the NIC group table (paper §5, "the
/// host generates a spanning tree and inserts it into a group table stored
/// in the NIC").
struct GroupEntry {
  net::PortId port = 0;  // owning port; other ports may not touch the group
  net::NodeId parent = kNoNode;  // kNoNode at the root
  std::vector<net::NodeId> children;
};

/// NIC -> host completion/receive events (GM receive-event queue).
struct HostEvent {
  enum class Type {
    kSendComplete,       // all packets of a unicast message acked
    kMultisendComplete,  // every destination acked every packet
    kMcastSendComplete,  // every child acked every packet (root)
    kRecvComplete,       // unicast message landed in a host buffer
    kMcastRecvComplete,  // multicast message landed in a host buffer
    kBarrierDone,        // NIC-level barrier released at this node
    kReduceDone,         // NIC-level reduction result (root only; has data)
    kSendFailed,         // retries exhausted (peer unreachable)
  };

  Type type = Type::kSendComplete;
  OpHandle handle = 0;       // send handle or receive-buffer handle
  net::NodeId src = 0;       // message origin (receive events)
  net::PortId src_port = 0;
  net::GroupId group = net::kNoGroup;
  std::uint32_t tag = 0;
  Payload data;              // received payload

  [[nodiscard]] std::string describe() const {
    switch (type) {
      case Type::kSendComplete: return "send-complete";
      case Type::kMultisendComplete: return "multisend-complete";
      case Type::kMcastSendComplete: return "mcast-send-complete";
      case Type::kRecvComplete: return "recv-complete";
      case Type::kMcastRecvComplete: return "mcast-recv-complete";
      case Type::kBarrierDone: return "barrier-done";
      case Type::kReduceDone: return "reduce-done";
      case Type::kSendFailed: return "send-failed";
    }
    return "?";
  }
};

/// Counters exposed for tests and the benchmark harness.
struct NicStats {
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_received = 0;
  std::uint64_t crc_drops = 0;
  std::uint64_t out_of_order_drops = 0;
  std::uint64_t no_token_drops = 0;
  std::uint64_t duplicate_drops = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t forwards = 0;       // packets forwarded by the NIC
  std::uint64_t header_rewrites = 0;
  std::uint64_t send_tokens_in_use_high_water = 0;
  std::uint64_t barriers_completed = 0;   // NIC-level barrier releases seen
  std::uint64_t barrier_resends = 0;      // arrive retransmissions
  std::uint64_t reductions_combined = 0;  // contributions folded in firmware
  std::uint64_t reduce_resends = 0;
  std::uint64_t nic_buffer_drops = 0;     // packets refused: SRAM pool empty
  std::uint64_t rx_buffers_high_water = 0;
  std::uint64_t ctrl_packets = 0;      // kCtrl reset/close handshake packets
  std::uint64_t conn_resets = 0;       // reset handshakes initiated
  std::uint64_t conns_reclaimed = 0;   // idle sender connections closed
  // -- memory-model observability (perf trajectory, not protocol state) --
  std::uint64_t descriptor_allocs = 0;   // descriptor pool grew by one
  std::uint64_t descriptor_reuses = 0;   // descriptor served from free list
  std::uint64_t payload_bytes_copied = 0;  // bytes physically memcpy'd
  std::uint64_t payload_refs = 0;          // zero-copy buffer shares instead
  std::uint64_t map_growths = 0;  // conn/group/op table rehashes after setup
};

/// Memberwise sum — aggregates per-NIC counters into cluster-wide totals
/// (high-water marks are summed too: the totals are a traffic-volume view,
/// not a point-in-time snapshot).
inline void accumulate(NicStats& into, const NicStats& from) {
  into.packets_sent += from.packets_sent;
  into.packets_received += from.packets_received;
  into.crc_drops += from.crc_drops;
  into.out_of_order_drops += from.out_of_order_drops;
  into.no_token_drops += from.no_token_drops;
  into.duplicate_drops += from.duplicate_drops;
  into.acks_sent += from.acks_sent;
  into.retransmissions += from.retransmissions;
  into.forwards += from.forwards;
  into.header_rewrites += from.header_rewrites;
  into.send_tokens_in_use_high_water += from.send_tokens_in_use_high_water;
  into.barriers_completed += from.barriers_completed;
  into.barrier_resends += from.barrier_resends;
  into.reductions_combined += from.reductions_combined;
  into.reduce_resends += from.reduce_resends;
  into.nic_buffer_drops += from.nic_buffer_drops;
  into.rx_buffers_high_water += from.rx_buffers_high_water;
  into.ctrl_packets += from.ctrl_packets;
  into.conn_resets += from.conn_resets;
  into.conns_reclaimed += from.conns_reclaimed;
  into.descriptor_allocs += from.descriptor_allocs;
  into.descriptor_reuses += from.descriptor_reuses;
  into.payload_bytes_copied += from.payload_bytes_copied;
  into.payload_refs += from.payload_refs;
  into.map_growths += from.map_growths;
}

}  // namespace nicmcast::nic

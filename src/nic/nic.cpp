#include "nic/nic.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "nic/auditor.hpp"

namespace nicmcast::nic {

namespace {

// kCtrl subtypes, carried in msg_offset (the same discriminator trick the
// barrier uses for arrive/release).  Reset: after a max-retries failure the
// sender's next_seq is ahead of the receiver's expected_seq and every later
// send would be dropped as out-of-order; the request re-seats the receiver
// at the carried seq.  Close: reclaims an idle connection's Go-back-N state
// on both ends.
constexpr std::uint32_t kCtrlResetReq = 0;
constexpr std::uint32_t kCtrlResetAck = 1;
constexpr std::uint32_t kCtrlCloseReq = 2;
constexpr std::uint32_t kCtrlCloseAck = 3;

/// Builds the reverse-direction header for an acknowledgment of `data`.
net::PacketHeader ack_header_for(const net::Packet& data, SeqNum cumulative) {
  net::PacketHeader h;
  h.type = data.header.type == net::PacketType::kMcastData
               ? net::PacketType::kMcastAck
               : net::PacketType::kAck;
  h.src = data.header.dst;
  h.dst = data.header.src;
  h.src_port = data.header.dst_port;
  h.dst_port = data.header.src_port;
  h.seq = cumulative;
  h.group = data.header.group;
  return h;
}

}  // namespace

Nic::Nic(sim::Simulator& sim, net::Network& network, net::NodeId id,
         NicConfig config, NicOptions options)
    : sim_(sim),
      network_(network),
      id_(id),
      config_(config),
      options_(options),
      cpu_(sim, "lanai"),
      sdma_(sim, "sdma"),
      rdma_(sim, "rdma") {
  if (options_.num_ports == 0) {
    throw std::invalid_argument("NIC needs at least one port");
  }
  ports_.reserve(options_.num_ports);
  for (std::size_t i = 0; i < options_.num_ports; ++i) {
    ports_.push_back(std::make_unique<Port>());
  }
  // Pre-size the Go-back-N tables to the expected peer population so the
  // packet path never pays a rehash; anything that does grow past the hint
  // is churn worth seeing, so every table reports into one counter.
  if (config_.expected_peers > 0) {
    sender_conns_.reserve(config_.expected_peers);
    receiver_conns_.reserve(config_.expected_peers);
  }
  sender_conns_.bind_growth_counter(&stats_.map_growths);
  receiver_conns_.bind_growth_counter(&stats_.map_growths);
  groups_.bind_growth_counter(&stats_.map_growths);
  pending_ops_.bind_growth_counter(&stats_.map_growths);
  network_.attach(id_, *this);
}

// ---------------------------------------------------------------------------
// Host-facing interface
// ---------------------------------------------------------------------------

void Nic::post_send(SendRequest request) {
  if (request.port >= ports_.size()) {
    throw std::out_of_range("post_send: bad port");
  }
  if (request.dest == id_) {
    throw std::logic_error("post_send: self-send must be handled by the "
                           "library layer, not the NIC");
  }
  consume_send_token(request.port);
  // Zero-copy host-post boundary: the request's bytes become the shared
  // block every fragment, record and retransmission will reference.
  MessageRef message = net::Buffer::take(std::move(request.data));
  const auto fragments = fragment_message(message.size());
  auto [it, inserted] = pending_ops_.emplace(
      request.handle, PendingOp{HostEvent::Type::kSendComplete, request.port,
                                fragments.size(), false});
  if (!inserted) throw std::logic_error("post_send: duplicate handle");
  trace("nic", [&] {
    return "send token posted, " + std::to_string(message.size()) +
           "B to node " + std::to_string(request.dest);
  });
  cpu_.run(config_.send_token_processing,
           [this, request = std::move(request), message] {
             start_unicast_packets(request.port, request.dest,
                                   request.dest_port, message, request.tag,
                                   request.handle);
           });
}

void Nic::post_multisend(MultisendRequest request) {
  if (request.port >= ports_.size()) {
    throw std::out_of_range("post_multisend: bad port");
  }
  if (request.dests.empty()) {
    throw std::invalid_argument("post_multisend: empty destination list");
  }
  consume_send_token(request.port);
  MessageRef message = net::Buffer::take(std::move(request.data));
  const auto fragments = fragment_message(message.size());
  auto [it, inserted] = pending_ops_.emplace(
      request.handle,
      PendingOp{HostEvent::Type::kMultisendComplete, request.port,
                fragments.size() * request.dests.size(), false});
  if (!inserted) throw std::logic_error("post_multisend: duplicate handle");

  if (options_.multisend_uses_multiple_tokens) {
    // Ablation (paper §5 alternative 1): one full send-token translation
    // and one host DMA per destination; saves only the host postings.
    for (net::NodeId dest : request.dests) {
      cpu_.run(config_.send_token_processing,
               [this, port = request.port, dest,
                dest_port = request.dest_port, message, tag = request.tag,
                handle = request.handle] {
                 start_unicast_packets(port, dest, dest_port, message, tag,
                                       handle);
               });
    }
    return;
  }

  // Chosen design (alternative 2): one token translation, one host DMA per
  // packet, then replica chaining through the descriptor callback.
  cpu_.run(config_.send_token_processing, [this, request = std::move(request),
                                           message, fragments] {
    for (const Fragment frag : fragments) {
      sdma_then(frag.length, [this, request, message, frag] {
        net::PacketHeader header;
        header.type = net::PacketType::kData;
        header.src = id_;
        header.src_port = request.port;
        header.dst_port = request.dest_port;
        header.msg_offset = frag.offset;
        header.msg_length = static_cast<std::uint32_t>(message.size());
        header.tag = request.tag;
        auto descriptor = make_descriptor(build_packet(header, message, frag));
        start_replica_chain(
            descriptor, request.dests,
            [this, message, frag, handle = request.handle](net::Packet& p,
                                                           net::NodeId dest) {
              // Per-replica: aim at the next destination and stamp the
              // per-connection Go-back-N sequence number + send record.
              p.header.dst = dest;
              const std::uint64_t key =
                  conn_key(p.header.src_port, dest, p.header.dst_port);
              SenderConn& conn = sender_conns_[key];
              conn_activity(key, conn);
              p.header.seq = conn.next_seq++;
              conn.records.push_back(
                  p.header.seq, sim_.now(),
                  SendRecord{message, frag, p.header, 0, handle});
            },
            [this](const net::Packet& p,
                   const net::Network::TxTiming& timing) {
              const std::uint64_t key = conn_key(p.header.src_port,
                                                 p.header.dst,
                                                 p.header.dst_port);
              SenderConn& conn = sender_conns_[key];
              conn.records.touch(p.header.seq, timing.tx_done);
              arm_conn_timer(key);
            });
      });
    }
  });
}

void Nic::post_mcast_send(McastSendRequest request) {
  if (request.port >= ports_.size()) {
    throw std::out_of_range("post_mcast_send: bad port");
  }
  auto it = groups_.find(request.group);
  if (it == groups_.end()) {
    throw std::logic_error("post_mcast_send: unknown group");
  }
  GroupState& group = it->second;
  if (group.entry.port != request.port) {
    throw std::logic_error("post_mcast_send: protection violation — group "
                           "belongs to another port");
  }
  if (group.entry.parent != kNoNode) {
    throw std::logic_error("post_mcast_send: only the tree root initiates "
                           "a multicast");
  }
  consume_send_token(request.port);
  MessageRef message = net::Buffer::take(std::move(request.data));
  const auto fragments = fragment_message(message.size());
  auto [op_it, inserted] = pending_ops_.emplace(
      request.handle, PendingOp{HostEvent::Type::kMcastSendComplete,
                                request.port, fragments.size(), false});
  if (!inserted) throw std::logic_error("post_mcast_send: duplicate handle");
  trace("mcast", [&] {
    return "mcast send posted grp=" + std::to_string(request.group) + " " +
           std::to_string(message.size()) + "B";
  });

  cpu_.run(config_.send_token_processing,
           [this, group_id = request.group, message, fragments,
            tag = request.tag, handle = request.handle] {
             for (const Fragment frag : fragments) {
               sdma_then(frag.length,
                         [this, group_id, message, frag, tag, handle] {
                           launch_mcast_packet(group_id, groups_.at(group_id),
                                               message, frag, tag, handle);
                         });
             }
           });
}

void Nic::post_barrier(net::PortId port, net::GroupId group,
                       OpHandle handle) {
  if (port >= ports_.size()) {
    throw std::out_of_range("post_barrier: bad port");
  }
  auto it = groups_.find(group);
  if (it == groups_.end()) {
    throw std::logic_error("post_barrier: unknown group");
  }
  if (it->second.entry.port != port) {
    throw std::logic_error("post_barrier: protection violation — group "
                           "belongs to another port");
  }
  if (it->second.barrier.host_posted) {
    throw std::logic_error("post_barrier: round already entered");
  }
  it->second.barrier.host_posted = true;
  cpu_.run(config_.ack_processing, [this, group, handle] {
    GroupState& g = groups_.at(group);
    g.barrier.host_arrived = true;
    g.barrier.handle = handle;
    barrier_check_complete(group);
  });
}

void Nic::post_reduce(net::PortId port, net::GroupId group, Payload data,
                      OpHandle handle) {
  if (port >= ports_.size()) {
    throw std::out_of_range("post_reduce: bad port");
  }
  if (data.empty() || data.size() % 8 != 0) {
    throw std::invalid_argument("post_reduce: data must be 8-byte lanes");
  }
  auto it = groups_.find(group);
  if (it == groups_.end()) {
    throw std::logic_error("post_reduce: unknown group");
  }
  if (it->second.entry.port != port) {
    throw std::logic_error("post_reduce: protection violation — group "
                           "belongs to another port");
  }
  if (it->second.reduce.host_posted) {
    throw std::logic_error("post_reduce: round already entered");
  }
  it->second.reduce.host_posted = true;
  // The contribution crosses the PCI bus like any send payload.
  sdma_then(data.size(),
            [this, group, data = net::Buffer::take(std::move(data)), handle] {
    GroupState& g = groups_.at(group);
    reduce_combine(group, data);
    g.reduce.host_arrived = true;
    g.reduce.handle = handle;
    reduce_check_complete(group);
  });
}

void Nic::post_recv_buffer(RecvBuffer buffer) {
  if (buffer.port >= ports_.size()) {
    throw std::out_of_range("post_recv_buffer: bad port");
  }
  cpu_.run(config_.recv_token_processing, [this, buffer] {
    ports_[buffer.port]->recv_buffers.push_back(buffer);
  });
}

void Nic::set_group(net::GroupId group, GroupEntry entry) {
  if (group == net::kNoGroup) {
    throw std::invalid_argument("set_group: kNoGroup is reserved");
  }
  if (entry.port >= ports_.size()) {
    throw std::out_of_range("set_group: bad port");
  }
  for (net::NodeId child : entry.children) {
    if (child == id_) {
      throw std::logic_error("set_group: node cannot be its own child");
    }
  }
  GroupState& state = groups_[group];
  if (!state.records.empty() || has_deferred_forward(group) ||
      (state.assembly && !state.assembly->fully_received())) {
    throw std::logic_error("set_group: group has traffic in flight");
  }
  state.entry = std::move(entry);
  state.child_next_acked.assign(state.entry.children.size(), 0);
  state.recv_seq = 0;
  state.send_seq = 0;
  state.barrier = BarrierState{};
  state.barrier.child_arrived.assign(state.entry.children.size(), false);
  state.reduce = ReduceState{};
  state.reduce.child_arrived.assign(state.entry.children.size(), false);
}

bool Nic::has_group(net::GroupId group) const {
  return groups_.contains(group);
}

void Nic::remove_group(net::GroupId group) {
  auto it = groups_.find(group);
  if (it == groups_.end()) return;
  // A forward stalled on send-token exhaustion (ablation mode) is traffic
  // in flight too: erasing the group under it would leave the deferred
  // entry pointing at nothing and crash the token-release restart path.
  if (!it->second.records.empty() || has_deferred_forward(group) ||
      (it->second.assembly && !it->second.assembly->fully_received())) {
    throw std::logic_error("remove_group: group has traffic in flight");
  }
  if (it->second.timer) sim_.cancel(*it->second.timer);
  if (it->second.barrier.resend_timer) {
    sim_.cancel(*it->second.barrier.resend_timer);
  }
  if (it->second.reduce.resend_timer) {
    sim_.cancel(*it->second.reduce.resend_timer);
  }
  groups_.erase(it);
}

bool Nic::has_deferred_forward(net::GroupId group) const {
  for (const DeferredForward& deferred : deferred_forwards_) {
    if (deferred.group == group) return true;
  }
  return false;
}

void Nic::debug_set_group_seq(net::GroupId group, SeqNum seq) {
  GroupState& state = groups_.at(group);
  state.recv_seq = seq;
  state.send_seq = seq;
  std::fill(state.child_next_acked.begin(), state.child_next_acked.end(),
            seq);
}

sim::Channel<HostEvent>& Nic::events(net::PortId port) {
  return ports_.at(port)->events;
}

std::size_t Nic::send_tokens_available(net::PortId port) const {
  return config_.send_tokens_per_port - ports_.at(port)->send_tokens_in_use;
}

std::size_t Nic::recv_buffers_posted(net::PortId port) const {
  return ports_.at(port)->recv_buffers.size();
}

// ---------------------------------------------------------------------------
// Send path
// ---------------------------------------------------------------------------

std::vector<Nic::Fragment> Nic::fragment_message(std::size_t size) const {
  std::vector<Fragment> fragments;
  if (size == 0) {
    fragments.push_back(Fragment{0, 0});
    return fragments;
  }
  for (std::size_t offset = 0; offset < size;
       offset += config_.max_packet_payload) {
    const std::size_t len =
        std::min(config_.max_packet_payload, size - offset);
    fragments.push_back(Fragment{static_cast<std::uint32_t>(offset),
                                 static_cast<std::uint32_t>(len)});
  }
  return fragments;
}

void Nic::start_unicast_packets(net::PortId port, net::NodeId dest,
                                net::PortId dest_port, MessageRef message,
                                std::uint32_t tag, OpHandle handle) {
  for (const Fragment frag : fragment_message(message.size())) {
    sdma_then(frag.length, [this, port, dest, dest_port, message, frag, tag,
                            handle] {
      send_data_packet(port, dest, dest_port, message, frag, tag, handle);
    });
  }
}

void Nic::sdma_then(std::size_t bytes, sim::EventQueue::Action next) {
  const sim::Duration busy =
      config_.dma_startup + config_.per_packet_processing +
      sim::transfer_time(bytes, config_.host_dma_mbps);
  sdma_.run(busy, std::move(next));
}

DescriptorRef Nic::make_descriptor(net::Packet packet) {
  DescriptorRef descriptor = descriptors_.acquire(std::move(packet));
  stats_.descriptor_allocs = descriptors_.allocs();
  stats_.descriptor_reuses = descriptors_.reuses();
  return descriptor;
}

void Nic::send_data_packet(net::PortId port, net::NodeId dest,
                           net::PortId dest_port, const MessageRef& message,
                           Fragment fragment, std::uint32_t tag,
                           OpHandle handle) {
  const std::uint64_t key = conn_key(port, dest, dest_port);
  SenderConn& conn = sender_conns_[key];
  conn_activity(key, conn);

  net::PacketHeader header;
  header.type = net::PacketType::kData;
  header.src = id_;
  header.dst = dest;
  header.src_port = port;
  header.dst_port = dest_port;
  header.seq = conn.next_seq++;
  header.msg_offset = fragment.offset;
  header.msg_length = static_cast<std::uint32_t>(message.size());
  header.tag = tag;

  conn.records.push_back(header.seq, sim_.now(),
                         SendRecord{message, fragment, header, 0, handle});
  const auto timing =
      transmit(make_descriptor(build_packet(header, message, fragment)));
  // Timers measure from the wire: long streams queue far behind the CPU.
  conn.records.stamp_back(timing.tx_done);
  arm_conn_timer(key);
}

net::Packet Nic::build_packet(const net::PacketHeader& header,
                              const MessageRef& message,
                              Fragment fragment) {
  net::Packet packet;
  packet.header = header;
  // Refcount bump, no byte copy: the packet views its fragment of the
  // message block posted by the host.
  packet.payload = message.slice(fragment.offset, fragment.length);
  ++stats_.payload_refs;
  return packet;
}

net::Network::TxTiming Nic::transmit(DescriptorRef descriptor,
                                     sim::TimePoint not_before) {
  ++stats_.packets_sent;
  if (auditor_) auditor_->on_packet_sent(*this, descriptor->packet);
  const auto timing = network_.transmit(descriptor->packet, not_before);
  if (descriptor->on_tx_complete) {
    sim_.schedule_at(timing.tx_done, [descriptor] {
      descriptor->on_tx_complete(descriptor);
    });
  }
  return timing;
}

void Nic::start_replica_chain(DescriptorRef descriptor,
                              std::vector<net::NodeId> dests,
                              PrepareFn prepare, OnTransmitFn on_transmit) {
  if (config_.uncontended_fast_path && dests.size() > 1 && !cpu_.busy()) {
    // Uncontended fast path (opt-in, NicConfig::uncontended_fast_path):
    // with the LANai idle, each rewrite starts the instant the previous
    // replica clears the transmit DMA engine, so every injection instant
    // is computable right now.  Transmit all replicas future-dated in one
    // pass instead of chaining two events per hop; the per-replica
    // bookkeeping (prepare / on_transmit) runs in the same order with the
    // same timings it would see on the chained path.
    sim::TimePoint ready = sim_.now();
    sim::TimePoint last_rewrite_end = sim_.now();
    for (std::size_t i = 0; i < dests.size(); ++i) {
      if (i > 0) {
        ++stats_.header_rewrites;
        ready = ready + config_.header_rewrite;
        last_rewrite_end = ready;
      }
      prepare(descriptor->packet, dests[i]);
      const auto timing = transmit(descriptor, ready);
      if (on_transmit) on_transmit(descriptor->packet, timing);
      ready = timing.tx_done;
    }
    // The LANai spent one rewrite slice per follow-up replica; the last
    // slice ended at the last replica's injection bound.
    const auto rewrites = static_cast<std::int64_t>(dests.size() - 1);
    cpu_.reserve(last_rewrite_end, config_.header_rewrite * rewrites);
    return;
  }

  struct ChainState {
    std::vector<net::NodeId> dests;
    std::size_t index = 0;
    PrepareFn prepare;
    OnTransmitFn on_transmit;
  };
  auto state = std::make_shared<ChainState>();
  state->dests = std::move(dests);
  state->prepare = std::move(prepare);
  state->on_transmit = std::move(on_transmit);

  state->prepare(descriptor->packet, state->dests[0]);
  if (state->dests.size() > 1) {
    descriptor->on_tx_complete = [this, state](DescriptorRef d) {
      ++state->index;
      if (state->index >= state->dests.size()) return;  // chain done; freed
      ++stats_.header_rewrites;
      cpu_.run(config_.header_rewrite, [this, state, d] {
        state->prepare(d->packet, state->dests[state->index]);
        const auto timing = transmit(d);
        if (state->on_transmit) state->on_transmit(d->packet, timing);
      });
    };
  }
  const auto timing = transmit(descriptor);
  if (state->on_transmit) state->on_transmit(descriptor->packet, timing);
}

void Nic::touch_group_record(net::GroupId group_id, SeqNum seq,
                             sim::TimePoint sent_at) {
  auto it = groups_.find(group_id);
  if (it == groups_.end()) return;
  it->second.records.touch(seq, sent_at);
}

void Nic::launch_mcast_packet(net::GroupId group_id, GroupState& group,
                              const MessageRef& message, Fragment fragment,
                              std::uint32_t tag, OpHandle handle) {
  if (group.entry.children.empty()) {
    // Degenerate tree: nothing to transmit, the packet is "delivered".
    op_packet_acked(handle);
    return;
  }
  net::PacketHeader header;
  header.type = net::PacketType::kMcastData;
  header.src = id_;
  header.src_port = group.entry.port;
  header.dst_port = group.entry.port;
  // Paper §5: a multicast packet carries the SAME sequence number and send
  // record towards every child.
  header.seq = group.send_seq++;
  header.group = group_id;
  header.msg_offset = fragment.offset;
  header.msg_length = static_cast<std::uint32_t>(message.size());
  header.tag = tag;

  group.records.push_back(header.seq, sim_.now(),
                          GroupRecord{message, fragment, header, 0, handle});
  arm_group_timer(group_id);

  auto descriptor =
      make_descriptor(build_packet(header, message, fragment));
  start_replica_chain(
      descriptor, group.entry.children,
      [](net::Packet& p, net::NodeId dest) { p.header.dst = dest; },
      [this, group_id](const net::Packet& p,
                       const net::Network::TxTiming& timing) {
        touch_group_record(group_id, p.header.seq, timing.tx_done);
        arm_group_timer(group_id);
      });
}

// ---------------------------------------------------------------------------
// Receive path
// ---------------------------------------------------------------------------

void Nic::packet_arrived(net::Packet packet) {
  if (packet.corrupted) {
    // CRC failure: silently dropped; the sender's timeout recovers it.
    ++stats_.crc_drops;
    trace("nic", [&] { return "CRC drop " + packet.describe(); });
    return;
  }
  ++stats_.packets_received;
  switch (packet.header.type) {
    case net::PacketType::kData:
      cpu_.run(config_.recv_packet_processing,
               [this, p = std::move(packet)] { handle_data(p); });
      break;
    case net::PacketType::kAck:
      cpu_.run(config_.ack_processing,
               [this, p = std::move(packet)] { handle_ack(p); });
      break;
    case net::PacketType::kMcastData:
      cpu_.run(config_.recv_packet_processing,
               [this, p = std::move(packet)] { handle_mcast_data(p); });
      break;
    case net::PacketType::kMcastAck:
      cpu_.run(config_.ack_processing,
               [this, p = std::move(packet)] { handle_mcast_ack(p); });
      break;
    case net::PacketType::kBarrier:
      cpu_.run(config_.ack_processing,
               [this, p = std::move(packet)] { handle_barrier(p); });
      break;
    case net::PacketType::kReduce:
      cpu_.run(config_.recv_packet_processing,
               [this, p = std::move(packet)] { handle_reduce(p); });
      break;
    case net::PacketType::kReduceAck:
      cpu_.run(config_.ack_processing,
               [this, p = std::move(packet)] { handle_reduce_ack(p); });
      break;
    case net::PacketType::kCtrl:
      cpu_.run(config_.ack_processing,
               [this, p = std::move(packet)] { handle_ctrl(p); });
      break;
  }
}

void Nic::handle_data(const net::Packet& packet) {
  const std::uint64_t key = conn_key(packet.header.dst_port,
                                     packet.header.src,
                                     packet.header.src_port);
  ReceiverConn& conn = receiver_conns_[key];
  if (packet.header.seq == conn.expected_seq) {
    if (!ensure_assembly(packet.header.dst_port, conn.assembly, packet)) {
      // Receiver overrun: no receive token.  Do not ack; Go-back-N at the
      // sender retries until the host posts a buffer.
      ++stats_.no_token_drops;
      trace("nic",
            [&] { return "no recv token, dropping " + packet.describe(); });
      return;
    }
    if (!acquire_rx_buffer()) {
      // NIC SRAM exhausted: refuse the packet, the sender retries.
      ++stats_.nic_buffer_drops;
      return;
    }
    if (auditor_) auditor_->on_data_accepted(*this, packet);
    ++conn.expected_seq;
    send_ack(packet, packet.header.seq);
    conn.assembly->accepted += packet.payload.size();
    accept_payload(packet.header.dst_port, conn.assembly, packet,
                   HostEvent::Type::kRecvComplete,
                   [this] { release_rx_buffer(); });
  } else if (seq_before(packet.header.seq, conn.expected_seq)) {
    // Duplicate (our ack was lost): re-ack so the sender advances.
    ++stats_.duplicate_drops;
    send_ack(packet, conn.expected_seq - 1);
  } else {
    // Gap: a predecessor was lost.  Drop; Go-back-N resends the window.
    ++stats_.out_of_order_drops;
  }
}

void Nic::handle_ack(const net::Packet& packet) {
  const std::uint64_t key = conn_key(packet.header.dst_port,
                                     packet.header.src,
                                     packet.header.src_port);
  auto it = sender_conns_.find(key);
  if (it == sender_conns_.end()) return;  // stale ack
  SenderConn& conn = it->second;
  while (!conn.records.empty() &&
         seq_before_eq(conn.records.front_seq(), packet.header.seq)) {
    op_packet_acked(conn.records.front_cold().handle);
    conn.records.pop_front();
  }
  if (conn.timer) {
    sim_.cancel(*conn.timer);
    conn.timer.reset();
  }
  arm_conn_timer(key);
  if (conn.records.empty()) arm_idle_timer(key);
}

void Nic::handle_mcast_data(const net::Packet& packet) {
  auto it = groups_.find(packet.header.group);
  if (it == groups_.end()) {
    // Demand-driven group creation hasn't reached this node yet; drop
    // without acking, the parent keeps retrying.
    ++stats_.no_token_drops;
    trace("mcast",
          [&] { return "unknown group, dropping " + packet.describe(); });
    return;
  }
  GroupState& group = it->second;
  if (packet.header.seq == group.recv_seq) {
    if (!ensure_assembly(group.entry.port, group.assembly, packet)) {
      ++stats_.no_token_drops;
      trace("mcast",
            [&] { return "no recv token, dropping " + packet.describe(); });
      return;
    }
    if (!acquire_rx_buffer()) {
      ++stats_.nic_buffer_drops;
      return;
    }
    if (auditor_) auditor_->on_data_accepted(*this, packet);
    ++group.recv_seq;
    send_ack(packet, packet.header.seq);
    // Staging-buffer release policy (paper §5, "Messages Forwarding"):
    // chosen = release once the RDMA and every forwarding transmission
    // finished (the host replica covers retransmissions); naive ablation
    // (hold_buffers_until_acked) = pin until every child acknowledged.
    const bool forwards = !group.entry.children.empty();
    // In the naive ablation a FORWARDED packet's buffer is pinned by its
    // send record until every child acks; leaves (nothing to forward)
    // always release at RDMA completion.
    const bool record_pins = forwards && options_.hold_buffers_until_acked;
    ReleaseFn rdma_release;
    ReleaseFn forward_release;
    if (record_pins) {
      // Released when the record is pruned; both hooks stay empty.
    } else if (forwards) {
      // Shared between the RDMA completion and the last replica's wire
      // push: each consumer gets its own hook over one counter.
      auto shares = std::make_shared<int>(2);
      rdma_release = [this, shares] {
        if (--*shares == 0) release_rx_buffer();
      };
      forward_release = [this, shares] {
        if (--*shares == 0) release_rx_buffer();
      };
    } else {
      rdma_release = [this] { release_rx_buffer(); };
    }
    if (forwards) {
      // NIC-based forwarding: re-queue towards the children without any
      // host involvement, per-packet (pipelining across the tree).
      start_forward(packet.header.group, packet, std::move(forward_release));
    }
    group.assembly->accepted += packet.payload.size();
    accept_payload(group.entry.port, group.assembly, packet,
                   HostEvent::Type::kMcastRecvComplete,
                   std::move(rdma_release));
  } else if (seq_before(packet.header.seq, group.recv_seq)) {
    ++stats_.duplicate_drops;
    send_ack(packet, group.recv_seq - 1);
  } else {
    ++stats_.out_of_order_drops;
  }
}

void Nic::handle_mcast_ack(const net::Packet& packet) {
  auto it = groups_.find(packet.header.group);
  if (it == groups_.end()) return;
  GroupState& group = it->second;
  const auto& children = group.entry.children;
  const auto child_it =
      std::find(children.begin(), children.end(), packet.header.src);
  if (child_it == children.end()) return;  // stale/foreign ack
  const std::size_t child = child_it - children.begin();

  const SeqNum next = packet.header.seq + 1;
  if (seq_before(group.child_next_acked[child], next)) {
    group.child_next_acked[child] = next;
  }

  // Prune records every child has acknowledged.
  while (!group.records.empty()) {
    const SeqNum front_seq = group.records.front_seq();
    const bool all_acked = std::all_of(
        group.child_next_acked.begin(), group.child_next_acked.end(),
        [&](SeqNum n) { return seq_before(front_seq, n); });
    if (!all_acked) break;
    const GroupRecord& front = group.records.front_cold();
    if (front.handle != 0) op_packet_acked(front.handle);
    if (front.holds_token) release_send_token(group.entry.port);
    if (front.holds_rx_buffer) release_rx_buffer();
    group.records.pop_front();
  }
  if (group.timer) {
    sim_.cancel(*group.timer);
    group.timer.reset();
  }
  arm_group_timer(packet.header.group);
}

// ---------------------------------------------------------------------------
// kCtrl connection handshakes
//
// Reset — sent by a sender whose max-retries failure cleared its window:
// next_seq is now ahead of the receiver's expected_seq, and without a
// resync every later send on the connection would be dropped as
// out-of-order and time out as well (the connection is wedged forever).
// The request carries the seq the receiver must expect next; any
// half-assembled message it was accumulating is abandoned (the sender
// already reported kSendFailed for it) and its host buffer returns to the
// port's pool.
//
// Close — sent by a sender whose connection has been idle for
// conn_idle_timeout: if the receiver agrees the stream is drained
// (expected_seq matches, no partial assembly) both ends erase their state.
// New traffic aborts an in-flight close and resyncs with a reset, because
// the peer may have erased its state already.
//
// Both handshakes retry on the retransmit timeout, bounded by max_retries;
// an unreachable peer makes them give up silently (a future send failure
// re-initiates the reset; a kept idle entry merely occupies memory).
// ---------------------------------------------------------------------------

void Nic::handle_ctrl(const net::Packet& packet) {
  const std::uint64_t key = conn_key(packet.header.dst_port,
                                     packet.header.src,
                                     packet.header.src_port);
  switch (packet.header.msg_offset) {
    case kCtrlResetReq: {
      ReceiverConn& conn = receiver_conns_[key];
      // A reset can race data it was anchored before: if this receiver has
      // already accepted past the requested seq (the covering acks are in
      // flight back to the sender), re-seating backwards would re-open the
      // door to duplicate delivery.  Ignore the stale re-seat but still ack
      // so the sender's handshake converges.
      if (!seq_before(packet.header.seq, conn.expected_seq)) {
        if (conn.assembly && !conn.assembly->fully_accepted()) {
          // Abandon the partial message; the receive buffer it claimed goes
          // back to the pool (in-flight RDMA completions hold their own
          // reference to the assembly and release their staging buffers as
          // they land).
          ports_.at(packet.header.dst_port)
              ->recv_buffers.push_back(conn.assembly->buffer);
          conn.assembly.reset();
        }
        conn.expected_seq = packet.header.seq;
        if (auditor_) {
          auditor_->on_conn_reset(*this, packet.header.dst_port,
                                  packet.header.src, packet.header.src_port,
                                  packet.header.seq);
        }
        trace("nic", [&] {
          return "conn reset from node" + std::to_string(packet.header.src) +
                 ", expecting seq " + std::to_string(packet.header.seq);
        });
      }
      send_ctrl(key, kCtrlResetAck, packet.header.seq);
      break;
    }
    case kCtrlResetAck: {
      auto it = sender_conns_.find(key);
      if (it == sender_conns_.end()) return;
      SenderConn& conn = it->second;
      if (conn.ctrl != Ctrl::kReset || packet.header.seq != conn.ctrl_seq) {
        return;  // stale ack from an earlier reset attempt
      }
      if (conn.ctrl_timer) {
        sim_.cancel(*conn.ctrl_timer);
        conn.ctrl_timer.reset();
      }
      conn.ctrl = Ctrl::kNone;
      if (conn.records.empty()) arm_idle_timer(key);
      break;
    }
    case kCtrlCloseReq: {
      auto it = receiver_conns_.find(key);
      if (it == receiver_conns_.end()) {
        // Already reclaimed (or never seen): re-ack so the sender's close
        // converges even when the first ack was lost.
        send_ctrl(key, kCtrlCloseAck, packet.header.seq);
        return;
      }
      const ReceiverConn& conn = it->second;
      const bool drained =
          conn.expected_seq == packet.header.seq &&
          (!conn.assembly || conn.assembly->fully_accepted());
      if (!drained) return;  // traffic still in flight; sender aborts
      receiver_conns_.erase(it);
      send_ctrl(key, kCtrlCloseAck, packet.header.seq);
      break;
    }
    case kCtrlCloseAck: {
      auto it = sender_conns_.find(key);
      if (it == sender_conns_.end()) return;
      SenderConn& conn = it->second;
      if (conn.ctrl != Ctrl::kClose || packet.header.seq != conn.ctrl_seq) {
        return;
      }
      // conn_activity aborts the close before any new record is created, so
      // reaching here with traffic would be a protocol bug; re-check anyway
      // rather than erase live state.
      if (!conn.records.empty() || conn.next_seq != conn.ctrl_seq) return;
      if (conn.timer) sim_.cancel(*conn.timer);
      if (conn.ctrl_timer) sim_.cancel(*conn.ctrl_timer);
      if (conn.idle_timer) sim_.cancel(*conn.idle_timer);
      ++stats_.conns_reclaimed;
      trace("nic", [&] {
        return "idle conn to node" + std::to_string(conn_peer(key)) +
               " reclaimed";
      });
      sender_conns_.erase(it);
      break;
    }
    default:
      trace("nic", [&] {
        return "ignoring unknown CTRL subtype " + packet.describe();
      });
      break;
  }
}

void Nic::send_ctrl(std::uint64_t key, std::uint32_t subtype, SeqNum seq) {
  net::PacketHeader header;
  header.type = net::PacketType::kCtrl;
  header.src = id_;
  header.dst = conn_peer(key);
  header.src_port = conn_my_port(key);
  header.dst_port = conn_peer_port(key);
  header.seq = seq;
  header.msg_offset = subtype;
  ++stats_.ctrl_packets;
  cpu_.run(config_.ack_processing, [this, header] {
    transmit(make_descriptor(net::Packet{header, {}, false}));
  });
}

void Nic::begin_conn_reset(std::uint64_t key) {
  SenderConn& conn = sender_conns_[key];
  conn.ctrl = Ctrl::kReset;
  conn.ctrl_retries = 0;
  conn.ctrl_seq =
      conn.records.empty() ? conn.next_seq : conn.records.front_seq();
  ++stats_.conn_resets;
  trace("nic", [&] {
    return "conn to node" + std::to_string(conn_peer(key)) +
           " resetting at seq " + std::to_string(conn.ctrl_seq);
  });
  send_ctrl(key, kCtrlResetReq, conn.ctrl_seq);
  arm_ctrl_timer(key);
}

void Nic::arm_ctrl_timer(std::uint64_t key) {
  SenderConn& conn = sender_conns_[key];
  if (conn.ctrl_timer) return;
  conn.ctrl_timer = sim_.schedule_after(config_.retransmit_timeout,
                                        [this, key] { ctrl_timeout(key); });
}

void Nic::ctrl_timeout(std::uint64_t key) {
  auto it = sender_conns_.find(key);
  if (it == sender_conns_.end()) return;
  SenderConn& conn = it->second;
  conn.ctrl_timer.reset();
  if (conn.ctrl == Ctrl::kNone) return;
  if (conn.ctrl_retries >= config_.max_retries) {
    // Peer unreachable.  Reset: give up — the next send failure initiates a
    // fresh handshake.  Close: back off and retry after another idle period;
    // GC is best-effort background work and must not strand the entry just
    // because one handshake fell inside a loss burst.
    const bool was_close = conn.ctrl == Ctrl::kClose;
    conn.ctrl = Ctrl::kNone;
    if (was_close) arm_idle_timer(key);
    return;
  }
  ++conn.ctrl_retries;
  if (conn.ctrl == Ctrl::kReset) {
    // New sends may have been posted since the last attempt; re-anchor the
    // resync point at the oldest outstanding record.
    conn.ctrl_seq =
        conn.records.empty() ? conn.next_seq : conn.records.front_seq();
    send_ctrl(key, kCtrlResetReq, conn.ctrl_seq);
  } else {
    send_ctrl(key, kCtrlCloseReq, conn.ctrl_seq);
  }
  arm_ctrl_timer(key);
}

void Nic::conn_activity(std::uint64_t key, SenderConn& conn) {
  if (conn.idle_timer) {
    sim_.cancel(*conn.idle_timer);
    conn.idle_timer.reset();
  }
  if (conn.ctrl == Ctrl::kClose) {
    // The peer may already have erased its receiver state when our
    // CloseReq landed; without a resync it would drop the new seqs as
    // out-of-order forever.  If it has not erased, the reset re-seats it
    // at the seq it already expected — harmless either way.
    if (conn.ctrl_timer) {
      sim_.cancel(*conn.ctrl_timer);
      conn.ctrl_timer.reset();
    }
    conn.ctrl = Ctrl::kNone;
    begin_conn_reset(key);
  }
}

void Nic::arm_idle_timer(std::uint64_t key) {
  if (config_.conn_idle_timeout <= sim::Duration{0}) return;
  auto it = sender_conns_.find(key);
  if (it == sender_conns_.end()) return;
  SenderConn& conn = it->second;
  if (conn.idle_timer || conn.ctrl != Ctrl::kNone || !conn.records.empty()) {
    return;
  }
  conn.idle_timer = sim_.schedule_after(config_.conn_idle_timeout,
                                        [this, key] { idle_timeout(key); });
}

void Nic::idle_timeout(std::uint64_t key) {
  auto it = sender_conns_.find(key);
  if (it == sender_conns_.end()) return;
  SenderConn& conn = it->second;
  conn.idle_timer.reset();
  if (!conn.records.empty() || conn.ctrl != Ctrl::kNone) return;
  conn.ctrl = Ctrl::kClose;
  conn.ctrl_retries = 0;
  conn.ctrl_seq = conn.next_seq;
  send_ctrl(key, kCtrlCloseReq, conn.ctrl_seq);
  arm_ctrl_timer(key);
}

void Nic::send_ack(const net::Packet& data_packet, SeqNum cumulative_seq) {
  net::Packet ack;
  ack.header = ack_header_for(data_packet, cumulative_seq);
  ++stats_.acks_sent;
  cpu_.run(config_.ack_processing, [this, ack = std::move(ack)] {
    transmit(make_descriptor(ack));
  });
}

bool Nic::ensure_assembly(net::PortId port, AssemblyRef& slot,
                          const net::Packet& packet) {
  // In-order delivery means a new message begins exactly when the previous
  // one has had all its bytes accepted (its RDMA may still be draining).
  if (slot && !slot->fully_accepted()) return true;

  // GM matches receive buffers by size: take the first posted buffer large
  // enough for the whole message.  No fit => receiver overrun; the sender's
  // Go-back-N retries until the host posts a suitable buffer.
  auto& buffers = ports_.at(port)->recv_buffers;
  const auto fit = std::find_if(
      buffers.begin(), buffers.end(), [&](const RecvBuffer& b) {
        return b.capacity >= packet.header.msg_length;
      });
  if (fit == buffers.end()) return false;
  auto assembly = std::make_shared<Assembly>();
  assembly->buffer = *fit;
  buffers.erase(fit);
  assembly->data.resize(packet.header.msg_length);
  assembly->tag = packet.header.tag;
  slot = std::move(assembly);
  return true;
}

void Nic::accept_payload(net::PortId port, AssemblyRef assembly,
                         const net::Packet& packet,
                         HostEvent::Type event_type, ReleaseFn on_rdma_done) {
  const sim::Duration busy =
      config_.dma_startup +
      sim::transfer_time(packet.payload.size(), config_.host_dma_mbps);
  rdma_.run(busy, [this, port, assembly = std::move(assembly),
                   payload = packet.payload, header = packet.header,
                   event_type,
                   on_rdma_done = std::move(on_rdma_done)]() mutable {
    // The one copy on the receive side: RDMA lands the shared fragment
    // view into this message's host assembly buffer.
    std::copy(payload.begin(), payload.end(),
              assembly->data.begin() + header.msg_offset);
    stats_.payload_bytes_copied += payload.size();
    assembly->received += payload.size();
    if (on_rdma_done) on_rdma_done();
    if (!assembly->fully_received()) return;

    HostEvent event;
    event.type = event_type;
    event.handle = assembly->buffer.handle;
    event.src = header.src;
    event.src_port = header.src_port;
    event.group = header.group;
    event.tag = assembly->tag;
    event.data = std::move(assembly->data);
    deliver_event(port, std::move(event));
  });
}

// ---------------------------------------------------------------------------
// NIC-level barrier (extension, paper §7)
// ---------------------------------------------------------------------------

namespace {
constexpr std::uint32_t kBarrierArrive = 0;
constexpr std::uint32_t kBarrierRelease = 1;
}  // namespace

void Nic::handle_barrier(const net::Packet& packet) {
  auto it = groups_.find(packet.header.group);
  if (it == groups_.end()) {
    // Group not installed yet (skewed first round); the child's arrive
    // resend recovers once the host programs the table.
    return;
  }
  GroupState& group = it->second;
  BarrierState& barrier = group.barrier;

  if (packet.header.msg_offset == kBarrierArrive) {
    const auto& children = group.entry.children;
    const auto child_it =
        std::find(children.begin(), children.end(), packet.header.src);
    if (child_it == children.end()) return;  // stale/foreign arrive
    if (packet.header.seq == barrier.epoch) {
      barrier.child_arrived[child_it - children.begin()] = true;
      barrier_check_complete(packet.header.group);
    } else if (seq_before(packet.header.seq, barrier.epoch)) {
      // The child missed our release for a past round: re-release it
      // directly (the release is the implicit ack of the arrive).
      net::PacketHeader header;
      header.type = net::PacketType::kBarrier;
      header.src = id_;
      header.dst = packet.header.src;
      header.src_port = group.entry.port;
      header.dst_port = group.entry.port;
      header.seq = packet.header.seq;
      header.group = packet.header.group;
      header.msg_offset = kBarrierRelease;
      transmit(make_descriptor(net::Packet{header, {}, false}));
    }
    return;
  }

  // Release from the parent.
  if (packet.header.seq != barrier.epoch) return;  // duplicate old release
  barrier_release(packet.header.group, packet.header.seq);
}

void Nic::barrier_check_complete(net::GroupId group_id) {
  GroupState& group = groups_.at(group_id);
  BarrierState& barrier = group.barrier;
  if (!barrier.host_arrived) return;
  for (bool arrived : barrier.child_arrived) {
    if (!arrived) return;
  }
  if (group.entry.parent == kNoNode) {
    // Root: everyone is in — release the tree.
    barrier_release(group_id, barrier.epoch);
  } else {
    barrier_send_arrive(group_id);
  }
}

void Nic::barrier_send_arrive(net::GroupId group_id) {
  GroupState& group = groups_.at(group_id);
  BarrierState& barrier = group.barrier;
  net::PacketHeader header;
  header.type = net::PacketType::kBarrier;
  header.src = id_;
  header.dst = group.entry.parent;
  header.src_port = group.entry.port;
  header.dst_port = group.entry.port;
  header.seq = barrier.epoch;
  header.group = group_id;
  header.msg_offset = kBarrierArrive;
  transmit(make_descriptor(net::Packet{header, {}, false}));
  if (!barrier.resend_timer) {
    barrier.resend_timer = sim_.schedule_after(
        config_.retransmit_timeout,
        [this, group_id] { barrier_resend_timeout(group_id); });
  }
}

void Nic::barrier_resend_timeout(net::GroupId group_id) {
  GroupState& group = groups_.at(group_id);
  BarrierState& barrier = group.barrier;
  barrier.resend_timer.reset();
  // The release advances the epoch and cancels the timer; if we are here
  // the round is still pending — the arrive (or the release) was lost.
  if (barrier.resends >= config_.max_retries) {
    // The parent is unreachable: fail the host's barrier call.
    HostEvent event;
    event.type = HostEvent::Type::kSendFailed;
    event.handle = barrier.handle;
    event.group = group_id;
    deliver_event(group.entry.port, std::move(event));
    const SeqNum stuck_epoch = barrier.epoch;
    barrier = BarrierState{};
    barrier.epoch = stuck_epoch;  // stay aligned with the tree's round
    // host_posted stays false: the host may re-enter after the failure.
    barrier.child_arrived.assign(group.entry.children.size(), false);
    return;
  }
  ++barrier.resends;
  ++stats_.barrier_resends;
  barrier_send_arrive(group_id);
}

void Nic::barrier_release(net::GroupId group_id, SeqNum epoch) {
  GroupState& group = groups_.at(group_id);
  BarrierState& barrier = group.barrier;
  if (barrier.resend_timer) {
    sim_.cancel(*barrier.resend_timer);
    barrier.resend_timer.reset();
  }
  ++stats_.barriers_completed;
  HostEvent event;
  event.type = HostEvent::Type::kBarrierDone;
  event.handle = barrier.handle;
  event.group = group_id;
  deliver_event(group.entry.port, std::move(event));

  // Next round.
  barrier.epoch = epoch + 1;
  barrier.host_posted = false;
  barrier.host_arrived = false;
  barrier.handle = 0;
  barrier.resends = 0;
  std::fill(barrier.child_arrived.begin(), barrier.child_arrived.end(),
            false);

  // Propagate the release down the tree (tiny control packets; children
  // that miss it will keep re-arriving and get a direct re-release).
  if (group.entry.children.empty()) return;
  net::PacketHeader header;
  header.type = net::PacketType::kBarrier;
  header.src = id_;
  header.src_port = group.entry.port;
  header.dst_port = group.entry.port;
  header.seq = epoch;
  header.group = group_id;
  header.msg_offset = kBarrierRelease;
  start_replica_chain(make_descriptor(net::Packet{header, {}, false}),
                      group.entry.children,
                      [](net::Packet& p, net::NodeId dest) {
                        p.header.dst = dest;
                      });
}

// ---------------------------------------------------------------------------
// NIC-level reduction (extension, paper §7)
// ---------------------------------------------------------------------------

void Nic::reduce_combine(net::GroupId group_id,
                         const net::Buffer& contribution) {
  GroupState& group = groups_.at(group_id);
  ReduceState& reduce = group.reduce;
  if (reduce.accumulator.empty()) {
    // The accumulator is the one mutable payload in the NIC: it must own
    // its bytes, so the first contribution is copied out of the shared
    // block (explicit copy point; lane-adds below mutate it in place).
    reduce.accumulator = contribution.to_vector();
    stats_.payload_bytes_copied += contribution.size();
  } else {
    if (reduce.accumulator.size() != contribution.size()) {
      throw std::logic_error("reduce: mismatched vector sizes in group");
    }
    // Lane-wise 64-bit add on the LANai.
    for (std::size_t lane = 0; lane + 8 <= contribution.size(); lane += 8) {
      std::uint64_t a = 0;
      std::uint64_t b = 0;
      for (int i = 0; i < 8; ++i) {
        a |= std::to_integer<std::uint64_t>(reduce.accumulator[lane + i])
             << (8 * i);
        b |= std::to_integer<std::uint64_t>(contribution[lane + i]) << (8 * i);
      }
      const std::uint64_t sum = a + b;
      for (int i = 0; i < 8; ++i) {
        reduce.accumulator[lane + i] =
            std::byte{static_cast<std::uint8_t>(sum >> (8 * i))};
      }
    }
  }
  ++stats_.reductions_combined;
  // The combine itself occupies the LANai.
  cpu_.run(sim::transfer_time(contribution.size(), config_.nic_combine_mbps),
           [] {});
}

void Nic::handle_reduce(const net::Packet& packet) {
  auto it = groups_.find(packet.header.group);
  if (it == groups_.end()) return;  // not installed yet; child resends
  GroupState& group = it->second;
  ReduceState& reduce = group.reduce;
  const auto& children = group.entry.children;
  const auto child_it =
      std::find(children.begin(), children.end(), packet.header.src);
  if (child_it == children.end()) return;
  const std::size_t child = child_it - children.begin();

  auto ack_child = [&](SeqNum epoch) {
    net::PacketHeader header;
    header.type = net::PacketType::kReduceAck;
    header.src = id_;
    header.dst = packet.header.src;
    header.src_port = group.entry.port;
    header.dst_port = group.entry.port;
    header.seq = epoch;
    header.group = packet.header.group;
    transmit(make_descriptor(net::Packet{header, {}, false}));
  };

  if (packet.header.seq == reduce.epoch) {
    if (!reduce.child_arrived[child]) {
      reduce.child_arrived[child] = true;
      reduce_combine(packet.header.group, packet.payload);
      reduce_check_complete(packet.header.group);
    }
    ack_child(packet.header.seq);
  } else if (seq_before(packet.header.seq, reduce.epoch)) {
    // Duplicate from a completed round (our ack was lost): re-ack, never
    // re-combine.
    ack_child(packet.header.seq);
  }
  // Future epochs are impossible unless our own round lags; ignore — the
  // child's resend recovers once we catch up.
}

void Nic::reduce_check_complete(net::GroupId group_id) {
  GroupState& group = groups_.at(group_id);
  ReduceState& reduce = group.reduce;
  if (!reduce.host_arrived || reduce.sent_up) return;
  for (bool arrived : reduce.child_arrived) {
    if (!arrived) return;
  }
  if (group.entry.parent == kNoNode) {
    // Root: the accumulator is the cluster-wide sum.
    HostEvent event;
    event.type = HostEvent::Type::kReduceDone;
    event.handle = reduce.handle;
    event.group = group_id;
    event.data = std::move(reduce.accumulator);
    // The result crosses back to host memory.
    const sim::Duration busy =
        config_.dma_startup +
        sim::transfer_time(event.data.size(), config_.host_dma_mbps);
    rdma_.run(busy, [this, group_id, event = std::move(event)]() mutable {
      GroupState& g = groups_.at(group_id);
      deliver_event(g.entry.port, std::move(event));
      ReduceState& r = g.reduce;
      r.epoch += 1;
      r.host_posted = false;
      r.host_arrived = false;
      r.handle = 0;
      r.sent_up = false;
      r.resends = 0;
      r.accumulator.clear();
      std::fill(r.child_arrived.begin(), r.child_arrived.end(), false);
    });
    return;
  }
  reduce.sent_up = true;
  reduce_send_up(group_id);
}

void Nic::reduce_send_up(net::GroupId group_id) {
  GroupState& group = groups_.at(group_id);
  ReduceState& reduce = group.reduce;
  net::PacketHeader header;
  header.type = net::PacketType::kReduce;
  header.src = id_;
  header.dst = group.entry.parent;
  header.src_port = group.entry.port;
  header.dst_port = group.entry.port;
  header.seq = reduce.epoch;
  header.group = group_id;
  header.msg_length = static_cast<std::uint32_t>(reduce.accumulator.size());
  net::Packet packet;
  packet.header = header;
  // The accumulator keeps mutating after this send (later contributions
  // and the next round), so the wire snapshot must be a copy.
  packet.payload = net::Buffer::copy_of(reduce.accumulator);
  stats_.payload_bytes_copied += reduce.accumulator.size();
  transmit(make_descriptor(std::move(packet)));
  if (!reduce.resend_timer) {
    reduce.resend_timer = sim_.schedule_after(
        config_.retransmit_timeout,
        [this, group_id] { reduce_resend_timeout(group_id); });
  }
}

void Nic::reduce_resend_timeout(net::GroupId group_id) {
  GroupState& group = groups_.at(group_id);
  ReduceState& reduce = group.reduce;
  reduce.resend_timer.reset();
  if (!reduce.sent_up) return;  // acked meanwhile
  if (reduce.resends >= config_.max_retries) {
    HostEvent event;
    event.type = HostEvent::Type::kSendFailed;
    event.handle = reduce.handle;
    event.group = group_id;
    deliver_event(group.entry.port, std::move(event));
    const SeqNum stuck = reduce.epoch;
    reduce = ReduceState{};
    reduce.epoch = stuck;
    reduce.child_arrived.assign(group.entry.children.size(), false);
    return;
  }
  ++reduce.resends;
  ++stats_.reduce_resends;
  reduce_send_up(group_id);
}

void Nic::handle_reduce_ack(const net::Packet& packet) {
  auto it = groups_.find(packet.header.group);
  if (it == groups_.end()) return;
  GroupState& group = it->second;
  ReduceState& reduce = group.reduce;
  if (packet.header.seq != reduce.epoch || !reduce.sent_up) return;
  if (reduce.resend_timer) {
    sim_.cancel(*reduce.resend_timer);
    reduce.resend_timer.reset();
  }
  HostEvent event;
  event.type = HostEvent::Type::kSendComplete;
  event.handle = reduce.handle;
  event.group = packet.header.group;
  deliver_event(group.entry.port, std::move(event));
  reduce.epoch += 1;
  reduce.host_posted = false;
  reduce.host_arrived = false;
  reduce.handle = 0;
  reduce.sent_up = false;
  reduce.resends = 0;
  reduce.accumulator.clear();
  std::fill(reduce.child_arrived.begin(), reduce.child_arrived.end(), false);
}

// ---------------------------------------------------------------------------
// NIC-based forwarding
// ---------------------------------------------------------------------------

void Nic::start_forward(net::GroupId group_id, const net::Packet& packet,
                        ReleaseFn on_forwarded) {
  bool holds_token = false;
  if (options_.forwarding_uses_send_tokens) {
    // Ablation: the rejected design — forwarding draws from the finite
    // send-token pool and stalls when it is empty.
    const net::PortId port_id = groups_.at(group_id).entry.port;
    Port& port = *ports_.at(port_id);
    if (port.send_tokens_in_use >= config_.send_tokens_per_port) {
      deferred_forwards_.push_back(
          DeferredForward{group_id, packet, std::move(on_forwarded)});
      trace("mcast",
            [] { return std::string("forward STALLED waiting for send token"); });
      return;
    }
    ++port.send_tokens_in_use;
    stats_.send_tokens_in_use_high_water =
        std::max<std::uint64_t>(stats_.send_tokens_in_use_high_water,
                                port.send_tokens_in_use);
    if (auditor_) {
      auditor_->on_send_tokens(*this, port_id, port.send_tokens_in_use);
    }
    holds_token = true;
  }
  // Chosen design: the receive token doubles as the transmission token, so
  // forwarding needs no extra NIC resource (paper §5, "Messages
  // Forwarding").
  ++stats_.forwards;
  ++stats_.header_rewrites;  // first replica needs its header rewritten too
  cpu_.run(config_.forward_processing + config_.header_rewrite,
           [this, group_id, packet, holds_token,
            on_forwarded = std::move(on_forwarded)]() mutable {
             begin_forward_chain(group_id, packet, holds_token,
                                 std::move(on_forwarded));
           });
}

void Nic::begin_forward_chain(net::GroupId group_id,
                              const net::Packet& packet, bool holds_token,
                              ReleaseFn on_forwarded) {
  GroupState& group = groups_.at(group_id);
  // Zero-copy forwarding: the record and every replica share the incoming
  // packet's view of the root's block — a NIC hop never duplicates bytes.
  MessageRef message = packet.payload;
  ++stats_.payload_refs;
  // The record's view holds exactly this packet's bytes, so the fragment is
  // relative to it (offset 0); the wire offset within the whole message
  // lives in the header and is preserved across retransmissions.
  const Fragment fragment{0,
                          static_cast<std::uint32_t>(packet.payload.size())};

  net::PacketHeader header = packet.header;
  header.src = id_;  // acks must come back to this hop
  group.records.push_back(
      header.seq, sim_.now(),
      GroupRecord{message, fragment, header, 0, /*handle=*/0, holds_token,
                  options_.hold_buffers_until_acked});
  arm_group_timer(group_id);

  net::Packet fwd;
  fwd.header = header;
  fwd.payload = packet.payload;
  start_replica_chain(
      make_descriptor(std::move(fwd)), group.entry.children,
      [](net::Packet& p, net::NodeId dest) { p.header.dst = dest; },
      // The on_transmit closure fires once per replica and lives exactly as
      // long as the chain, so the remaining-replica count rides in a
      // mutable by-value capture instead of a heap counter.
      [this, group_id, replicas_left = group.entry.children.size(),
       on_forwarded = std::move(on_forwarded)](
          const net::Packet& p,
          const net::Network::TxTiming& timing) mutable {
        touch_group_record(group_id, p.header.seq, timing.tx_done);
        arm_group_timer(group_id);
        if (--replicas_left == 0 && on_forwarded) {
          // The staging buffer is free once the last replica has left the
          // wire (retransmissions refetch from host memory).
          sim_.schedule_at(timing.tx_done, std::move(on_forwarded));
        }
      });
}

// ---------------------------------------------------------------------------
// Reliability: timers and retransmission
// ---------------------------------------------------------------------------

void Nic::arm_conn_timer(std::uint64_t key) {
  SenderConn& conn = sender_conns_[key];
  if (conn.timer || conn.records.empty()) return;
  const sim::TimePoint deadline =
      std::max(conn.records.front_sent_at() + config_.retransmit_timeout,
               sim_.now());
  conn.timer = sim_.schedule_at(deadline, [this, key] { conn_timeout(key); });
}

void Nic::conn_timeout(std::uint64_t key) {
  SenderConn& conn = sender_conns_[key];
  conn.timer.reset();
  if (conn.records.empty()) return;

  // The front record may have been (re-)stamped with a later wire time
  // after this timer was armed; fire only when genuinely overdue.
  if (sim_.now() - conn.records.front_sent_at() <
      config_.retransmit_timeout) {
    arm_conn_timer(key);
    return;
  }

  if (conn.records.front_cold().retries >= config_.max_retries) {
    // Peer unreachable: fail every operation with records on this
    // connection and drop the window.
    for (std::size_t i = 0; i < conn.records.size(); ++i) {
      fail_operation(conn.records.cold(i).handle);
    }
    conn.records.clear();
    // The receiver's expected_seq is now behind our next_seq (it never
    // accepted the abandoned window), so without a resync every later send
    // on this connection would be discarded as out-of-order and fail too —
    // the connection is wedged.  Handshake the receiver forward.
    begin_conn_reset(key);
    return;
  }
  // Go-back-N: retransmit the full outstanding window, refetching each
  // packet's bytes from (registered) host memory over the SDMA engine.
  trace("nic", [&] {
    return "timeout, retransmitting " + std::to_string(conn.records.size()) +
           " packet(s)";
  });
  for (std::size_t i = 0; i < conn.records.size(); ++i) {
    SendRecord& record = conn.records.cold(i);
    ++record.retries;
    conn.records.hot(i).sent_at = sim_.now();
    ++stats_.retransmissions;
    retransmit_record(record.header, record.message, record.fragment);
  }
  arm_conn_timer(key);
}

void Nic::arm_group_timer(net::GroupId group_id) {
  GroupState& group = groups_.at(group_id);
  if (group.timer || group.records.empty()) return;
  const sim::TimePoint deadline =
      std::max(group.records.front_sent_at() + config_.retransmit_timeout,
               sim_.now());
  group.timer = sim_.schedule_at(
      deadline, [this, group_id] { group_timeout(group_id); });
}

void Nic::group_timeout(net::GroupId group_id) {
  GroupState& group = groups_.at(group_id);
  group.timer.reset();
  if (group.records.empty()) return;

  if (sim_.now() - group.records.front_sent_at() <
      config_.retransmit_timeout) {
    arm_group_timer(group_id);
    return;
  }

  if (group.records.front_cold().retries >= config_.max_retries) {
    for (std::size_t i = 0; i < group.records.size(); ++i) {
      const GroupRecord& record = group.records.cold(i);
      if (record.handle != 0) fail_operation(record.handle);
      if (record.holds_token) release_send_token(group.entry.port);
      if (record.holds_rx_buffer) release_rx_buffer();
    }
    group.records.clear();
    return;
  }
  // Selective Go-back-N (paper §5): retransmit a timed-out packet and its
  // successors ONLY towards children that have not acknowledged it.
  const auto& children = group.entry.children;
  for (std::size_t i = 0; i < group.records.size(); ++i) {
    GroupRecord& record = group.records.cold(i);
    ++record.retries;
    group.records.hot(i).sent_at = sim_.now();
    const SeqNum record_seq = group.records.hot(i).seq;
    for (std::size_t c = 0; c < children.size(); ++c) {
      if (seq_before(record_seq, group.child_next_acked[c])) continue;
      ++stats_.retransmissions;
      net::PacketHeader header = record.header;
      header.dst = children[c];
      retransmit_record(header, record.message, record.fragment);
    }
  }
  arm_group_timer(group_id);
}

void Nic::retransmit_record(const net::PacketHeader& header,
                            const MessageRef& message, Fragment fragment) {
  // The replica lives in registered host memory (the NIC buffer was
  // released when forwarding/transmission completed), so a retransmission
  // pays a fresh host DMA — the paper's chosen alternative.
  sdma_then(fragment.length, [this, header, message, fragment] {
    transmit(make_descriptor(build_packet(header, message, fragment)));
  });
}

void Nic::fail_operation(OpHandle handle) {
  auto it = pending_ops_.find(handle);
  if (it == pending_ops_.end()) return;
  const net::PortId port = it->second.port;
  HostEvent event;
  event.type = HostEvent::Type::kSendFailed;
  event.handle = handle;
  pending_ops_.erase(it);
  release_send_token(port);
  deliver_event(port, std::move(event));
}

// ---------------------------------------------------------------------------
// Completion plumbing
// ---------------------------------------------------------------------------

void Nic::op_packet_acked(OpHandle handle) {
  auto it = pending_ops_.find(handle);
  if (it == pending_ops_.end()) return;  // already failed
  if (--it->second.remaining > 0) return;
  HostEvent event;
  event.type = it->second.complete_type;
  event.handle = handle;
  const net::PortId port = it->second.port;
  pending_ops_.erase(it);
  release_send_token(port);
  deliver_event(port, std::move(event));
}

void Nic::deliver_event(net::PortId port, HostEvent event) {
  if (auditor_) auditor_->on_event(*this, port, event);
  sim_.schedule_after(config_.event_delivery,
                      [this, port, event = std::move(event)] {
                        ports_.at(port)->events.push(event);
                      });
}

bool Nic::acquire_rx_buffer() {
  if (rx_buffers_in_use_ >= config_.nic_rx_buffers) return false;
  ++rx_buffers_in_use_;
  stats_.rx_buffers_high_water = std::max<std::uint64_t>(
      stats_.rx_buffers_high_water, rx_buffers_in_use_);
  if (auditor_) auditor_->on_rx_buffers(*this, rx_buffers_in_use_);
  return true;
}

void Nic::release_rx_buffer() {
  if (rx_buffers_in_use_ == 0) {
    throw std::logic_error("NIC rx-buffer release underflow");
  }
  --rx_buffers_in_use_;
  if (auditor_) auditor_->on_rx_buffers(*this, rx_buffers_in_use_);
}

void Nic::consume_send_token(net::PortId port) {
  Port& p = *ports_.at(port);
  if (p.send_tokens_in_use >= config_.send_tokens_per_port) {
    throw std::logic_error("send-token pool exhausted; the GM layer must "
                           "wait for a completion before posting");
  }
  ++p.send_tokens_in_use;
  stats_.send_tokens_in_use_high_water = std::max<std::uint64_t>(
      stats_.send_tokens_in_use_high_water, p.send_tokens_in_use);
  if (auditor_) auditor_->on_send_tokens(*this, port, p.send_tokens_in_use);
}

void Nic::release_send_token(net::PortId port) {
  Port& p = *ports_.at(port);
  if (p.send_tokens_in_use == 0) {
    throw std::logic_error("send-token release underflow");
  }
  --p.send_tokens_in_use;
  if (auditor_) auditor_->on_send_tokens(*this, port, p.send_tokens_in_use);
  if (options_.forwarding_uses_send_tokens && !deferred_forwards_.empty()) {
    // A token freed up: restart the oldest stalled forward on this port.
    // A stalled entry's group may have been torn down while it waited
    // (remove_group now refuses that, but set_group replacing a tree does
    // not have to keep old group ids alive) — purge such orphans instead of
    // dereferencing a dead group, which used to crash here.
    for (auto it = deferred_forwards_.begin();
         it != deferred_forwards_.end();) {
      auto group_it = groups_.find(it->group);
      if (group_it == groups_.end()) {
        if (it->on_forwarded) it->on_forwarded();  // free the staging buffer
        it = deferred_forwards_.erase(it);
        continue;
      }
      if (group_it->second.entry.port == port) {
        DeferredForward deferred = std::move(*it);
        deferred_forwards_.erase(it);
        start_forward(deferred.group, deferred.packet,
                      std::move(deferred.on_forwarded));
        break;
      }
      ++it;
    }
  }
}

void Nic::emit_trace(const char* category, const std::string& message) {
  if (sim_.tracer().enabled(category)) {
    // Sequential runs (shard 0) keep the historical source tag so golden
    // trace expectations survive; sharded runs prefix the owning shard.
    const std::string source =
        config_.shard == 0
            ? "node" + std::to_string(id_) + ".nic"
            : "s" + std::to_string(config_.shard) + ".node" +
                  std::to_string(id_) + ".nic";
    sim_.tracer().emit(sim_.now(), category, source, message);
  }
}

}  // namespace nicmcast::nic

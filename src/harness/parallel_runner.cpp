#include "harness/parallel_runner.hpp"

#include <atomic>
#include <exception>
#include <thread>

#include "sim/thread_annotations.hpp"

namespace nicmcast::harness {

std::uint64_t derive_seed(std::uint64_t base_seed, std::size_t run_index) {
  // splitmix64 over the combined words; never returns 0 so downstream
  // xoshiro seeding always has entropy to expand.
  std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ULL *
                                    (static_cast<std::uint64_t>(run_index) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return z == 0 ? 0x9e3779b97f4a7c15ULL : z;
}

std::vector<RunResult> ParallelRunner::run(std::vector<RunSpec> specs,
                                           const RunFn& fn) const {
  if (options_.derive_seeds) {
    for (std::size_t i = 0; i < specs.size(); ++i) {
      specs[i].seed = derive_seed(options_.base_seed, i);
    }
  }

  std::vector<RunResult> results(specs.size());
  if (specs.empty()) return results;

  const unsigned workers = std::min<unsigned>(
      std::max(1u, options_.threads), static_cast<unsigned>(specs.size()));
  if (workers == 1) {
    for (std::size_t i = 0; i < specs.size(); ++i) {
      results[i] = fn(specs[i]);
    }
    return results;
  }

  // Relaxed ticket counter: claiming an index needs atomicity, not
  // ordering — each results[i] slot is written by exactly one worker and
  // the jthread join publishes them all to this thread.
  std::atomic<std::size_t> ticket{0};
  sim::Mutex error_mutex;
  std::exception_ptr first_error;
  {
    std::vector<std::jthread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        for (;;) {
          const std::size_t i = ticket.fetch_add(1, std::memory_order_relaxed);
          if (i >= specs.size()) return;
          try {
            results[i] = fn(specs[i]);
          } catch (...) {
            const sim::MutexLock lock(error_mutex);
            if (!first_error) first_error = std::current_exception();
          }
        }
      });
    }
  }  // jthreads join here
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

}  // namespace nicmcast::harness

// Stock runners, one per experiment family.
//
// These own the measurement loops the bench/ drivers used to hand-roll:
// build the cluster a RunSpec describes, run the warm-up + timed iterations
// with a zero-cost simulation barrier aligning rounds, and return the
// latency Series plus cluster-wide NIC counters.  `run_one` dispatches on
// RunSpec::experiment; the per-family functions are exposed for benches
// that want to call a specific runner directly.
#pragma once

#include "harness/parallel_runner.hpp"
#include "harness/run_result.hpp"
#include "harness/run_spec.hpp"

namespace nicmcast::harness {

/// GM-level broadcast over a spanning tree (Fig. 5, tree/loss ablations).
/// Metrics: "delivered" (1 when every payload arrived bit-exact).
[[nodiscard]] RunResult run_gm_mcast(const RunSpec& spec);

/// Any migrated experiment family on the sharded conservative-PDES fabric
/// (net::ShardedFabric); this is what spec.shards > 1 dispatches to.
/// Supports kGmMulticast, kMultisend, kMpiBcast, kSkewBcast and kBarrier
/// with the nic-based algo and uniform loss (the barrier needs zero loss);
/// allreduce, host-based staging and the RDMA bcast variant stay
/// coroutine-only and throw.  Metrics: "delivered", "deliveries", plus the
/// family's own ("avg_bcast_cpu_us" etc. for skew, "wall_us_per_round" for
/// the barrier).  engine.shard_order_hashes carries the per-shard
/// determinism hash vector (DESIGN.md §4.5-4.6).
[[nodiscard]] RunResult run_sharded(const RunSpec& spec);

/// Historical alias: the gm_mcast family via run_sharded; throws for
/// anything else.
[[nodiscard]] RunResult run_sharded_mcast(const RunSpec& spec);

/// NIC multisend vs host-based multiple unicasts (Fig. 3).  Uses
/// spec.destinations targets; spec.nodes must be destinations + 1.
[[nodiscard]] RunResult run_multisend(const RunSpec& spec);

/// MPI_Bcast latency (Fig. 4; RDMA extension with spec.rdma).
[[nodiscard]] RunResult run_mpi_bcast(const RunSpec& spec);

/// Host CPU time inside MPI_Bcast under process skew (Figs. 6-7).
/// Metrics: "avg_bcast_cpu_us", "max_bcast_cpu_us", "avg_applied_skew_us".
[[nodiscard]] RunResult run_skew_bcast(const RunSpec& spec);

/// MPI_Barrier: wall latency and per-entry blocked time under skew
/// (§7 extension).  The latency Series holds one blocked-time sample per
/// (rank, round); metrics: "wall_us_per_round".
[[nodiscard]] RunResult run_barrier(const RunSpec& spec);

/// Allreduce over int64 lanes, host-level vs NIC-level folding
/// (§7 extension).
[[nodiscard]] RunResult run_allreduce(const RunSpec& spec);

}  // namespace nicmcast::harness

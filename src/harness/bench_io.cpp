#include "harness/bench_io.hpp"

#include <cstdio>

#include "sim/simulator.hpp"
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <string>

namespace nicmcast::harness {

namespace {

[[noreturn]] void usage_and_exit(std::string_view bench_name, int code) {
  std::fprintf(stderr,
               "usage: %.*s [--threads N] [--json PATH] [--iters K] "
               "[--seed S] [--max-nodes M] [--shards P]\n"
               "  --threads N   run the sweep on N worker threads "
               "(default 1; results are\n"
               "                identical for every N)\n"
               "  --json PATH   also write the nicmcast-bench-v1 JSON "
               "document to PATH\n"
               "  --iters K     override the per-point timed-iteration "
               "count\n"
               "  --seed S      base seed for deterministic per-run seed "
               "derivation\n"
               "  --max-nodes M skip sweep points above M nodes (0 = no "
               "cap; used by CI\n"
               "                to keep the scale sweep fast)\n"
               "  --shards P    run migrated experiment points on the "
               "sharded PDES\n"
               "                engine with P shards (0 = each point's "
               "default; 1 = the\n"
               "                classic sequential engine, bit-identical "
               "output)\n"
               "  --batch-horizons  let each shard run to its per-shard "
               "batched LBTS\n"
               "                horizon (fewer barrier rounds; its own "
               "golden lineage)\n"
               "  --sync MODE   force every sharded point's synchronization "
               "mode: barrier\n"
               "                (lockstep LBTS rounds) or async (per-channel "
               "null-message\n"
               "                waits; same hashes and rounds, fewer stalls). "
               "Default: each\n"
               "                point's own recorded mode\n"
               "  --no-batch    pop events one at a time instead of the "
               "same-tick batched\n"
               "                dispatch (identical order and hash; used "
               "by CI to prove it)\n"
               "  --perf-counters  sample hardware cache/branch-miss "
               "counters per scenario\n"
               "                (perf_event_open; zeros when unavailable)\n"
               "  --fast-path   force the NIC's uncontended-link replica "
               "fast path on\n"
               "                (opt-in modelling approximation; its own "
               "event lineage)\n"
               "  --only LABEL  run just the scenario/point with this label "
               "(profiling\n"
               "                aid; the output is not a regression "
               "baseline)\n",
               static_cast<int>(bench_name.size()), bench_name.data());
  std::exit(code);
}

std::uint64_t parse_u64(const char* text, std::string_view bench_name) {
  try {
    return std::stoull(text);
  } catch (const std::exception&) {
    usage_and_exit(bench_name, 2);
  }
}

}  // namespace

BenchOptions parse_bench_options(int argc, char** argv,
                                 std::string_view bench_name) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage_and_exit(bench_name, 2);
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage_and_exit(bench_name, 0);
    } else if (arg == "--threads") {
      options.threads =
          static_cast<unsigned>(parse_u64(value(), bench_name));
      if (options.threads == 0) options.threads = 1;
    } else if (arg == "--json") {
      options.json_path = value();
    } else if (arg == "--iters") {
      options.iterations =
          static_cast<int>(parse_u64(value(), bench_name));
    } else if (arg == "--seed") {
      options.base_seed = parse_u64(value(), bench_name);
    } else if (arg == "--max-nodes") {
      options.max_nodes =
          static_cast<std::size_t>(parse_u64(value(), bench_name));
    } else if (arg == "--shards") {
      options.shards =
          static_cast<std::size_t>(parse_u64(value(), bench_name));
    } else if (arg == "--batch-horizons") {
      options.batch_horizons = true;
    } else if (arg == "--sync") {
      options.sync = value();
      if (options.sync != "barrier" && options.sync != "async") {
        std::fprintf(stderr, "bad --sync mode: %s (barrier|async)\n",
                     options.sync.c_str());
        usage_and_exit(bench_name, 2);
      }
    } else if (arg == "--no-batch") {
      options.batch_dispatch = false;
    } else if (arg == "--perf-counters") {
      options.perf_counters = true;
    } else if (arg == "--fast-path") {
      options.fast_path = true;
    } else if (arg == "--only") {
      options.only = value();
    } else {
      std::fprintf(stderr, "unknown option: %.*s\n",
                   static_cast<int>(arg.size()), arg.data());
      usage_and_exit(bench_name, 2);
    }
  }
  // Applied here, before any Simulator exists or any worker thread starts,
  // so every run in the process sees one consistent dispatch mode.
  sim::default_batch_dispatch() = options.batch_dispatch;
  nic::default_uncontended_fast_path() = options.fast_path;
  return options;
}

RunnerOptions runner_options(const BenchOptions& options) {
  RunnerOptions out;
  out.threads = options.threads;
  out.base_seed = options.base_seed;
  return out;
}

void print_header(const std::string& title,
                  const std::string& paper_reference) {
  std::printf(
      "\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("%s\n", paper_reference.c_str());
  std::printf(
      "================================================================\n");
}

json::Value spec_to_json(const RunSpec& spec) {
  json::Value out = json::Value::object();
  out["experiment"] = to_string(spec.experiment);
  out["label"] = spec.label;
  out["nodes"] = spec.nodes;
  out["wiring"] = to_string(spec.wiring);
  out["radix"] = spec.switch_radix;
  out["bytes"] = spec.message_bytes;
  out["algo"] = to_string(spec.algo);
  out["tree"] = to_string(spec.tree);
  out["loss"] = spec.loss_rate;
  out["corrupt"] = spec.corrupt_rate;
  out["faults"] = to_string(spec.faults);
  out["skew_us"] = spec.avg_skew_us;
  out["destinations"] = spec.destinations;
  out["lanes"] = spec.lanes;
  out["rdma"] = spec.rdma;
  out["warmup"] = spec.warmup;
  out["iterations"] = spec.iterations;
  // Seeds are full 64-bit values; a JSON number would lose precision past
  // 2^53, so the exact value is recorded as a decimal string.
  out["seed"] = std::to_string(spec.seed);
  // Emitted only for sharded runs: every pre-existing document (and the
  // CI thread-count determinism diff over them) stays byte-identical.
  if (spec.shards > 1) out["shards"] = spec.shards;
  if (spec.batch_horizons) out["batch_horizons"] = true;
  if (spec.async_sync) out["sync"] = "async";
  // Same rule for the fast-path knob: emitted only when forced on.
  if (spec.nic.uncontended_fast_path) out["fast_path"] = true;
  out["aux"] = spec.aux;
  return out;
}

json::Value result_to_json(const RunResult& result) {
  json::Value out = json::Value::object();
  out["spec"] = spec_to_json(result.spec);

  if (result.latency_us.count() > 0) {
    json::Value lat = json::Value::object();
    lat["count"] = result.latency_us.count();
    lat["mean"] = result.latency_us.mean();
    lat["min"] = result.latency_us.min();
    lat["max"] = result.latency_us.max();
    lat["stddev"] = result.latency_us.stddev();
    lat["p50"] = result.latency_us.percentile(50.0);
    lat["p95"] = result.latency_us.percentile(95.0);
    lat["p99"] = result.latency_us.percentile(99.0);
    out["latency_us"] = std::move(lat);
  } else {
    out["latency_us"] = nullptr;
  }

  const nic::NicStats& nic = result.nic_totals;
  json::Value counters = json::Value::object();
  counters["packets_sent"] = nic.packets_sent;
  counters["packets_received"] = nic.packets_received;
  counters["acks_sent"] = nic.acks_sent;
  counters["retransmissions"] = nic.retransmissions;
  counters["forwards"] = nic.forwards;
  counters["header_rewrites"] = nic.header_rewrites;
  counters["crc_drops"] = nic.crc_drops;
  counters["out_of_order_drops"] = nic.out_of_order_drops;
  counters["duplicate_drops"] = nic.duplicate_drops;
  counters["no_token_drops"] = nic.no_token_drops;
  counters["nic_buffer_drops"] = nic.nic_buffer_drops;
  counters["map_growths"] = nic.map_growths;
  out["nic"] = std::move(counters);

  // Engine memory-model counters live under their own key so the protocol
  // fields above stay byte-identical across engine optimisations.
  json::Value engine = json::Value::object();
  engine["events_scheduled"] = result.engine.events_scheduled;
  engine["events_executed"] = result.engine.events_executed;
  engine["events_cancelled"] = result.engine.events_cancelled;
  engine["heap_actions"] = result.engine.heap_actions;
  engine["pool_slots"] = result.engine.pool_slots;
  engine["descriptor_allocs"] = result.engine.descriptor_allocs;
  engine["descriptor_reuses"] = result.engine.descriptor_reuses;
  engine["payload_bytes_copied"] = result.engine.payload_bytes_copied;
  engine["payload_refs"] = result.engine.payload_refs;
  engine["wheel_occupancy_peak"] = result.engine.wheel_occupancy_peak;
  engine["wheel_cascades"] = result.engine.wheel_cascades;
  engine["overflow_scheduled"] = result.engine.overflow_scheduled;
  engine["overflow_promotions"] = result.engine.overflow_promotions;
  engine["routes_materialized"] = result.engine.routes_materialized;
  engine["route_links_stored"] = result.engine.route_links_stored;
  engine["route_links_shared"] = result.engine.route_links_shared;
  // Decimal string, like seeds: 64-bit hashes do not fit a JSON double.
  engine["event_order_hash"] = std::to_string(result.engine.event_order_hash);
  // Sharded-PDES counters, present only when the sharded engine ran —
  // sequential documents keep their historical key set.
  if (result.engine.shard_count > 0) {
    engine["shard_count"] = result.engine.shard_count;
    engine["cross_shard_msgs"] = result.engine.cross_shard_msgs;
    engine["lbts_rounds"] = result.engine.lbts_rounds;
    engine["horizon_stalls"] = result.engine.horizon_stalls;
    engine["channel_spills"] = result.engine.channel_spills;
    engine["cross_links"] = result.engine.cross_links;
    json::Value hashes = json::Value::array();
    for (const std::uint64_t h : result.engine.shard_order_hashes) {
      hashes.push_back(std::to_string(h));  // decimal strings, like seeds
    }
    engine["shard_order_hashes"] = std::move(hashes);
    json::Value peaks = json::Value::array();
    for (const std::uint64_t p : result.engine.shard_wheel_occupancy_peak) {
      peaks.push_back(p);
    }
    engine["shard_wheel_occupancy_peak"] = std::move(peaks);
    // Async-sync counters only when that mode ran: barrier documents —
    // including every pre-existing baseline — keep their historical key
    // set.  The values are timing-dependent (spin episodes, demand
    // answers), so the regression checker treats them as informational.
    if (result.spec.async_sync) {
      engine["null_msgs_sent"] = result.engine.null_msgs_sent;
      engine["null_msgs_demanded"] = result.engine.null_msgs_demanded;
      engine["eot_advances"] = result.engine.eot_advances;
      engine["blocked_waits"] = result.engine.blocked_waits;
    }
  }
  out["engine"] = std::move(engine);

  json::Value metrics = json::Value::object();
  for (const auto& [name, value] : result.metrics) {
    metrics[name] = value;
  }
  out["metrics"] = std::move(metrics);
  return out;
}

json::Value bench_document(std::string_view bench_name,
                           const BenchOptions& options,
                           const std::vector<RunResult>& results) {
  json::Value doc = json::Value::object();
  doc["schema"] = "nicmcast-bench-v1";
  doc["bench"] = bench_name;
  doc["threads"] = options.threads;
  // Decimal string, like RunSpec::seed: a double cannot hold every uint64.
  doc["base_seed"] = std::to_string(options.base_seed);
  json::Value runs = json::Value::array();
  for (const RunResult& result : results) {
    runs.push_back(result_to_json(result));
  }
  doc["runs"] = std::move(runs);
  return doc;
}

void write_bench_json(std::string_view bench_name, const BenchOptions& options,
                      const std::vector<RunResult>& results) {
  if (options.json_path.empty()) return;
  std::ofstream out(options.json_path);
  if (!out) {
    // Same convention as parse_bench_options: a usage-level problem ends
    // the process with a message, not a stack-unwinding abort.
    std::fprintf(stderr, "error: cannot open JSON output file: %s\n",
                 options.json_path.c_str());
    std::exit(1);
  }
  out << bench_document(bench_name, options, results).dump(2) << "\n";
  std::printf("\nJSON: wrote %zu runs to %s\n", results.size(),
              options.json_path.c_str());
}

}  // namespace nicmcast::harness

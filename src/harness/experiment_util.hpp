// Shared experiment plumbing: the paper's measurement methodology (warm-up
// iterations, averaged timed iterations, latency to the last destination)
// plus payload and tree helpers used by the stock runners, the benches and
// the CLI.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "gm/cluster.hpp"
#include "harness/run_spec.hpp"
#include "mcast/postal_tree.hpp"
#include "mcast/tree.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace nicmcast::harness {

inline gm::Payload make_payload(std::size_t n, std::uint8_t salt = 0) {
  gm::Payload p(n);
  // i*131 mod 256 has period 256, so the pattern is one 256-byte block
  // repeated: compute the first period, then double it with memcpy —
  // soak workloads build and compare multi-KiB payloads in their inner
  // loop, where the per-byte multiply showed up in profiles.
  const std::size_t head = std::min<std::size_t>(n, 256);
  for (std::size_t i = 0; i < head; ++i) {
    p[i] = std::byte{static_cast<std::uint8_t>(i * 131u + salt)};
  }
  for (std::size_t filled = head; filled < n;) {
    const std::size_t copy = std::min(filled, n - filled);
    std::memcpy(p.data() + filled, p.data(), copy);
    filled += copy;
  }
  return p;
}

inline std::vector<net::NodeId> everyone_but(net::NodeId root, std::size_t n) {
  std::vector<net::NodeId> v;
  // size_t index: a NodeId loop counter wraps (historically: infinite loop
  // at n == 65536 when NodeId was 16-bit) instead of terminating.
  for (std::size_t i = 0; i < n; ++i) {
    if (i != root) v.push_back(static_cast<net::NodeId>(i));
  }
  return v;
}

/// Zero-cost simulation-side barrier used to align iterations exactly
/// (the paper used warm-up rounds; determinism lets us do better).
class SimBarrier {
 public:
  explicit SimBarrier(std::size_t parties) : parties_(parties) {}
  sim::Task<void> arrive() {
    if (++count_ == parties_) {
      count_ = 0;
      gate_.release();
    } else {
      co_await gate_.wait();
    }
  }

 private:
  std::size_t parties_;
  std::size_t count_ = 0;
  sim::Gate gate_;
};

/// Standard message-size sweep used by the paper's figures.
inline std::vector<std::size_t> paper_sizes() {
  return {1, 4, 16, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384};
}

/// Resolves Wiring::kAuto the way the benches always have: single switch up
/// to 16 nodes, radix-16 Clos above.
[[nodiscard]] gm::ClusterConfig::Wiring resolve_wiring(const RunSpec& spec);

/// Cluster configuration implied by a spec (nodes, wiring, NIC knobs, seed).
[[nodiscard]] gm::ClusterConfig cluster_config(const RunSpec& spec);

/// Builds the spanning tree a spec asks for, rooted at 0 over `dests`.
/// The postal shape is cost-modelled for the spec's message size and algo.
[[nodiscard]] mcast::Tree build_tree(const RunSpec& spec,
                                     const std::vector<net::NodeId>& dests);

}  // namespace nicmcast::harness

// Cartesian parameter grids over a base RunSpec.
//
//   auto specs = Sweep(base)
//                    .message_sizes(paper_sizes())
//                    .node_counts({4, 8, 16})
//                    .algos({Algo::kHostBased, Algo::kNicBased})
//                    .build();
//
// Axis order is significant and deterministic: the first axis added varies
// slowest (outermost), the last varies fastest.  Benches rely on this to
// index the result vector with a closed-form formula when printing tables.
#pragma once

#include <utility>
#include <vector>

#include "harness/run_spec.hpp"

namespace nicmcast::harness {

class Sweep {
 public:
  explicit Sweep(RunSpec base) : specs_{std::move(base)} {}

  /// Generic axis: applies `apply(spec, value)` for each value, expanding
  /// the grid.  Use for coupled knobs (e.g. algo + matching tree shape).
  template <typename T, typename Fn>
  Sweep& axis(const std::vector<T>& values, Fn&& apply) {
    std::vector<RunSpec> expanded;
    expanded.reserve(specs_.size() * values.size());
    for (const RunSpec& spec : specs_) {
      for (const T& value : values) {
        RunSpec next = spec;
        apply(next, value);
        expanded.push_back(std::move(next));
      }
    }
    specs_ = std::move(expanded);
    return *this;
  }

  Sweep& message_sizes(const std::vector<std::size_t>& sizes) {
    return axis(sizes, [](RunSpec& s, std::size_t bytes) {
      s.message_bytes = bytes;
    });
  }

  Sweep& node_counts(const std::vector<std::size_t>& nodes) {
    return axis(nodes, [](RunSpec& s, std::size_t n) { s.nodes = n; });
  }

  Sweep& algos(const std::vector<Algo>& algos) {
    return axis(algos, [](RunSpec& s, Algo a) { s.algo = a; });
  }

  Sweep& trees(const std::vector<TreeShape>& trees) {
    return axis(trees, [](RunSpec& s, TreeShape t) { s.tree = t; });
  }

  Sweep& skews_us(const std::vector<double>& skews) {
    return axis(skews, [](RunSpec& s, double us) { s.avg_skew_us = us; });
  }

  Sweep& losses(const std::vector<double>& rates) {
    return axis(rates, [](RunSpec& s, double rate) { s.loss_rate = rate; });
  }

  Sweep& destination_counts(const std::vector<std::size_t>& dests) {
    // A multisend experiment needs one node per destination plus the root.
    return axis(dests, [](RunSpec& s, std::size_t k) {
      s.destinations = k;
      s.nodes = k + 1;
    });
  }

  Sweep& lane_counts(const std::vector<std::size_t>& lanes) {
    return axis(lanes, [](RunSpec& s, std::size_t n) { s.lanes = n; });
  }

  [[nodiscard]] std::size_t size() const { return specs_.size(); }
  [[nodiscard]] std::vector<RunSpec> build() const& { return specs_; }
  [[nodiscard]] std::vector<RunSpec> build() && { return std::move(specs_); }

 private:
  std::vector<RunSpec> specs_;
};

}  // namespace nicmcast::harness

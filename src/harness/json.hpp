// Dependency-free JSON: an ordered value tree, a writer with round-trip
// double formatting, and a small strict parser (used by the round-trip
// tests and any tooling that consumes the BENCH_*.json trajectory).
//
// Objects preserve insertion order so emitted files are stable and
// diffable run-to-run.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace nicmcast::harness::json {

/// Raised by Value::parse on malformed input.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& what, std::size_t offset)
      : std::runtime_error(what + " (at byte " + std::to_string(offset) + ")"),
        offset_(offset) {}
  [[nodiscard]] std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

class Value {
 public:
  using Array = std::vector<Value>;
  using Object = std::vector<std::pair<std::string, Value>>;

  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}
  Value(bool b) : data_(b) {}
  Value(double d) : data_(d) {}
  Value(int i) : data_(static_cast<double>(i)) {}
  Value(unsigned u) : data_(static_cast<double>(u)) {}
  Value(long long i) : data_(static_cast<double>(i)) {}
  Value(unsigned long long u) : data_(static_cast<double>(u)) {}
  Value(long i) : data_(static_cast<double>(i)) {}
  Value(unsigned long u) : data_(static_cast<double>(u)) {}
  Value(const char* s) : data_(std::string(s)) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(std::string_view s) : data_(std::string(s)) {}

  static Value object() { return Value(Object{}); }
  static Value array() { return Value(Array{}); }

  [[nodiscard]] Type type() const {
    return static_cast<Type>(data_.index());
  }
  [[nodiscard]] bool is_null() const { return type() == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type() == Type::kBool; }
  [[nodiscard]] bool is_number() const { return type() == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type() == Type::kString; }
  [[nodiscard]] bool is_array() const { return type() == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type() == Type::kObject; }

  [[nodiscard]] bool as_bool() const { return get<bool>("bool"); }
  [[nodiscard]] double as_number() const { return get<double>("number"); }
  [[nodiscard]] const std::string& as_string() const {
    return get<std::string>("string");
  }
  [[nodiscard]] const Array& as_array() const { return get<Array>("array"); }
  [[nodiscard]] const Object& as_object() const {
    return get<Object>("object");
  }

  /// Object access: inserts a null member on first use (mutable overload);
  /// throws std::out_of_range if absent (const overload).
  Value& operator[](std::string_view key);
  [[nodiscard]] const Value& at(std::string_view key) const;
  [[nodiscard]] bool contains(std::string_view key) const;

  /// Array append.
  void push_back(Value v);
  [[nodiscard]] std::size_t size() const;

  /// Serialises; indent < 0 emits the compact single-line form, otherwise
  /// pretty-prints with `indent` spaces per level.
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Strict parse of a complete JSON document (trailing junk rejected).
  [[nodiscard]] static Value parse(std::string_view text);

  friend bool operator==(const Value& a, const Value& b) {
    return a.data_ == b.data_;
  }

 private:
  explicit Value(Array a) : data_(std::move(a)) {}
  explicit Value(Object o) : data_(std::move(o)) {}

  template <typename T>
  [[nodiscard]] const T& get(const char* name) const {
    if (const T* p = std::get_if<T>(&data_)) return *p;
    throw std::logic_error(std::string("json: value is not a ") + name);
  }

  void write(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
      data_;
};

/// JSON string escaping (quotes, backslash, control characters; UTF-8
/// passes through untouched).
[[nodiscard]] std::string escape(std::string_view raw);

/// Round-trippable number formatting: integral doubles print without an
/// exponent or trailing ".0"; everything else uses shortest-round-trip.
[[nodiscard]] std::string format_number(double value);

}  // namespace nicmcast::harness::json

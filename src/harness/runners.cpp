#include "harness/runners.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "harness/experiment_util.hpp"
#include "mcast/bcast.hpp"
#include "mpi/mpi.hpp"
#include "mpi/skew.hpp"
#include "net/fault_model.hpp"
#include "sim/random.hpp"

namespace nicmcast::harness {

namespace {

void install_faults(gm::Cluster& cluster, const RunSpec& spec) {
  if (spec.loss_rate <= 0 && spec.corrupt_rate <= 0) return;
  sim::Rng rng(spec.seed);
  switch (spec.faults) {
    case FaultFamily::kUniform:
      cluster.network().set_fault_injector(std::make_unique<net::RandomFaults>(
          spec.loss_rate, spec.corrupt_rate, std::move(rng)));
      return;
    case FaultFamily::kBurst: {
      // Gilbert–Elliott tuned so the stationary drop rate matches
      // loss_rate: the chain is bad p_g2b/(p_g2b+p_b2g) of the time, so
      // in-burst loss is loss_rate scaled up by the inverse of that.
      net::GilbertElliottFaults::Params params;
      params.p_good_to_bad = 0.02;
      params.p_bad_to_good = 0.25;
      const double bad_fraction =
          params.p_good_to_bad / (params.p_good_to_bad + params.p_bad_to_good);
      params.good_drop = 0.0;
      params.bad_drop = std::min(0.95, spec.loss_rate / bad_fraction);
      params.bad_corrupt = std::min(0.5, spec.corrupt_rate / bad_fraction);
      cluster.network().set_fault_injector(
          std::make_unique<net::GilbertElliottFaults>(params, std::move(rng)));
      return;
    }
    case FaultFamily::kAckTargeted: {
      net::LinkFilter filter;
      filter.traffic = net::TrafficClass::kAck;
      cluster.network().set_fault_injector(
          std::make_unique<net::TargetedFaults>(
              filter, std::make_unique<net::RandomFaults>(
                          spec.loss_rate, spec.corrupt_rate, std::move(rng))));
      return;
    }
    case FaultFamily::kBlackout: {
      // Periodic total outages with duty cycle ~ loss_rate, far shorter
      // than max_retries * retransmit_timeout so nothing gives up.
      sim::Simulator& sim = cluster.simulator();
      auto blackout = std::make_unique<net::BlackoutFaults>(
          [&sim] { return sim.now(); });
      const sim::Duration period = sim::msec(2);
      const sim::Duration outage =
          sim::usec(std::min(0.5, spec.loss_rate * 5.0) * 2000.0);
      sim::TimePoint at = sim::TimePoint{} + sim::usec(300);
      for (int k = 0; k < 64; ++k) {
        blackout->add_window(at, at + outage);
        at = at + period;
      }
      if (spec.corrupt_rate > 0) {
        auto composite = std::make_unique<net::CompositeFaults>();
        composite->add(std::move(blackout));
        composite->add(std::make_unique<net::RandomFaults>(
            0.0, spec.corrupt_rate, std::move(rng)));
        cluster.network().set_fault_injector(std::move(composite));
      } else {
        cluster.network().set_fault_injector(std::move(blackout));
      }
      return;
    }
  }
}

void collect_engine(const sim::Simulator& sim, RunResult& result) {
  const sim::EventQueue::Stats& q = sim.queue_stats();
  result.engine.events_scheduled = q.scheduled;
  result.engine.events_executed = q.executed;
  result.engine.events_cancelled = q.cancelled;
  result.engine.heap_actions = q.heap_actions;
  result.engine.pool_slots = q.pool_slots;
  result.engine.wheel_occupancy_peak = q.wheel_occupancy_peak;
  result.engine.wheel_cascades = q.wheel_cascades;
  result.engine.overflow_scheduled = q.overflow_scheduled;
  result.engine.overflow_promotions = q.overflow_promotions;
  result.engine.event_order_hash = sim.event_order_hash();
  result.engine.descriptor_allocs = result.nic_totals.descriptor_allocs;
  result.engine.descriptor_reuses = result.nic_totals.descriptor_reuses;
  result.engine.payload_bytes_copied = result.nic_totals.payload_bytes_copied;
  result.engine.payload_refs = result.nic_totals.payload_refs;
}

void collect_nic_totals(gm::Cluster& cluster, RunResult& result) {
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    accumulate(result.nic_totals, cluster.nic(i).stats());
  }
  collect_engine(cluster.simulator(), result);
  const net::RouteTableStats& r = cluster.network().route_stats();
  result.engine.routes_materialized = r.routes_materialized;
  result.engine.route_links_stored = r.links_stored;
  result.engine.route_links_shared = r.links_shared;
}

}  // namespace

gm::ClusterConfig::Wiring resolve_wiring(const RunSpec& spec) {
  switch (spec.wiring) {
    case Wiring::kSingleSwitch:
      return gm::ClusterConfig::Wiring::kSingleSwitch;
    case Wiring::kClos:
      return gm::ClusterConfig::Wiring::kClos;
    case Wiring::kBackToBack:
      return gm::ClusterConfig::Wiring::kBackToBack;
    case Wiring::kAuto:
      break;
  }
  return spec.nodes > 16 ? gm::ClusterConfig::Wiring::kClos
                         : gm::ClusterConfig::Wiring::kSingleSwitch;
}

gm::ClusterConfig cluster_config(const RunSpec& spec) {
  gm::ClusterConfig config;
  config.nodes = spec.nodes;
  config.wiring = resolve_wiring(spec);
  config.switch_radix = spec.switch_radix;
  config.nic = spec.nic;
  config.nic_options = spec.nic_options;
  config.seed = spec.seed;
  return config;
}

mcast::Tree build_tree(const RunSpec& spec,
                       const std::vector<net::NodeId>& dests) {
  switch (spec.tree) {
    case TreeShape::kBinomial:
      return mcast::build_binomial_tree(0, dests);
    case TreeShape::kChain:
      return mcast::build_chain_tree(0, dests);
    case TreeShape::kFlat:
      return mcast::build_flat_tree(0, dests);
    case TreeShape::kPostal:
      break;
  }
  const auto cost =
      spec.algo == Algo::kNicBased
          ? mcast::PostalCostModel::nic_based(spec.message_bytes, spec.nic,
                                              net::NetworkConfig{})
          : mcast::PostalCostModel::host_based(spec.message_bytes, spec.nic,
                                               net::NetworkConfig{});
  return mcast::build_postal_tree(0, dests, cost);
}

RunResult run_gm_mcast(const RunSpec& spec) {
  RunResult result;
  result.spec = spec;

  gm::Cluster cluster(cluster_config(spec));
  install_faults(cluster, spec);

  const bool nic_based = spec.algo == Algo::kNicBased;
  const mcast::Tree tree = build_tree(spec, everyone_but(0, spec.nodes));
  const net::GroupId group = 1;
  if (nic_based) mcast::install_group(cluster, tree, group);

  const int total = spec.warmup + spec.iterations;
  for (net::NodeId node : tree.nodes()) {
    if (node != tree.root()) {
      cluster.port(node).provide_receive_buffers(
          static_cast<std::size_t>(total),
          std::max<std::size_t>(spec.message_bytes, 64));
    }
  }

  auto started = std::make_shared<std::vector<sim::TimePoint>>(total);
  auto done = std::make_shared<std::vector<sim::TimePoint>>(total);
  auto barrier = std::make_shared<SimBarrier>(tree.size());
  auto delivered = std::make_shared<bool>(true);

  const std::size_t bytes = spec.message_bytes;
  cluster.run_on_all([tree, group, nic_based, bytes, total, started, done,
                      barrier, delivered](gm::Cluster& cl,
                                          net::NodeId me) -> sim::Task<void> {
    for (int iter = 0; iter < total; ++iter) {
      co_await barrier->arrive();
      if (me == tree.root()) {
        (*started)[iter] = cl.simulator().now();
      }
      gm::Payload data;
      if (me == tree.root()) {
        data = make_payload(bytes, static_cast<std::uint8_t>(iter));
      }
      gm::Payload got;
      if (nic_based) {
        got = co_await mcast::nic_bcast(cl.port(me), tree, group,
                                        std::move(data),
                                        static_cast<std::uint32_t>(iter));
      } else {
        got = co_await mcast::host_bcast(cl.port(me), tree, std::move(data),
                                         static_cast<std::uint32_t>(iter));
      }
      if (got.size() != bytes) {
        throw std::logic_error("harness: broadcast payload lost");
      }
      if (got != make_payload(bytes, static_cast<std::uint8_t>(iter))) {
        *delivered = false;  // recorded, not fatal: reliability benches report it
      }
      auto& d = (*done)[iter];
      d = std::max(d, cl.simulator().now());
    }
  });
  cluster.run();

  for (int iter = spec.warmup; iter < total; ++iter) {
    result.latency_us.add(
        ((*done)[iter] - (*started)[iter]).microseconds());
  }
  collect_nic_totals(cluster, result);
  result.set_metric("delivered", *delivered ? 1.0 : 0.0);
  return result;
}

RunResult run_multisend(const RunSpec& spec) {
  if (spec.destinations == 0 || spec.nodes != spec.destinations + 1) {
    throw std::invalid_argument(
        "run_multisend: need destinations >= 1 and nodes == destinations + 1");
  }
  RunResult result;
  result.spec = spec;

  gm::Cluster cluster(cluster_config(spec));
  install_faults(cluster, spec);

  const int total = spec.warmup + spec.iterations;
  for (std::size_t node = 1; node <= spec.destinations; ++node) {
    cluster.port(node).provide_receive_buffers(
        static_cast<std::size_t>(total),
        std::max<std::size_t>(spec.message_bytes, 64));
  }

  const bool nic_based = spec.algo == Algo::kNicBased;
  const std::size_t bytes = spec.message_bytes;
  const std::size_t k = spec.destinations;
  const int warmup = spec.warmup;
  sim::Series& latency = result.latency_us;
  cluster.simulator().spawn([](gm::Cluster& cl, std::size_t dests,
                               std::size_t size, bool nb, int wu, int rounds,
                               sim::Series& out) -> sim::Task<void> {
    gm::Port& port = cl.port(0);
    std::vector<net::NodeId> targets;
    for (std::size_t d = 1; d <= dests; ++d) {
      targets.push_back(static_cast<net::NodeId>(d));
    }
    for (int iter = 0; iter < rounds; ++iter) {
      const sim::TimePoint start = cl.simulator().now();
      if (nb) {
        // One posting; the NIC chains replicas via descriptor callbacks.
        std::vector<net::NodeId> copy = targets;
        const gm::SendStatus st = co_await port.multisend(
            std::move(copy), 0, make_payload(size), 0);
        if (st != gm::SendStatus::kOk) {
          throw std::runtime_error("harness: multisend failed");
        }
      } else {
        // Host-based: post one send per destination back to back, then
        // wait for every acknowledgment.
        std::vector<nic::OpHandle> handles;
        for (net::NodeId t : targets) {
          co_await cl.simulator().wait(
              port.nic().config().host_post_overhead);
          handles.push_back(
              port.post_send_nowait(t, 0, make_payload(size), 0));
        }
        for (nic::OpHandle h : handles) {
          if (co_await port.wait_completion(h) != gm::SendStatus::kOk) {
            throw std::runtime_error("harness: unicast send failed");
          }
        }
      }
      if (iter >= wu) {
        out.add((cl.simulator().now() - start).microseconds());
      }
    }
  }(cluster, k, bytes, nic_based, warmup, total, latency));
  cluster.run();

  collect_nic_totals(cluster, result);
  return result;
}

RunResult run_mpi_bcast(const RunSpec& spec) {
  RunResult result;
  result.spec = spec;

  gm::Cluster cluster(cluster_config(spec));
  install_faults(cluster, spec);
  mpi::MpiConfig config;
  config.bcast_algorithm = spec.algo == Algo::kNicBased
                               ? mpi::BcastAlgorithm::kNicBased
                               : mpi::BcastAlgorithm::kHostBased;
  config.rdma_multicast = spec.rdma;
  mpi::World world(cluster, config);

  const int total = spec.warmup + spec.iterations;
  auto barrier = std::make_shared<SimBarrier>(spec.nodes);
  auto started = std::make_shared<std::vector<sim::TimePoint>>(total);
  auto done = std::make_shared<std::vector<sim::TimePoint>>(total);

  const std::size_t bytes = spec.message_bytes;
  world.launch([barrier, started, done, bytes,
                total](mpi::Process& self) -> sim::Task<void> {
    for (int iter = 0; iter < total; ++iter) {
      co_await barrier->arrive();
      if (self.rank() == 0) (*started)[iter] = self.simulator().now();
      mpi::Payload data(bytes);
      if (self.rank() == 0) {
        data = make_payload(bytes, static_cast<std::uint8_t>(iter));
      }
      co_await self.bcast(data, 0);
      if (data != make_payload(bytes, static_cast<std::uint8_t>(iter))) {
        throw std::logic_error("harness: corrupted MPI broadcast");
      }
      auto& d = (*done)[iter];
      d = std::max(d, self.simulator().now());
    }
  });
  world.run();

  for (int iter = spec.warmup; iter < total; ++iter) {
    result.latency_us.add(
        ((*done)[iter] - (*started)[iter]).microseconds());
  }
  collect_nic_totals(cluster, result);
  return result;
}

RunResult run_skew_bcast(const RunSpec& spec) {
  RunResult result;
  result.spec = spec;

  mpi::SkewConfig config;
  config.nodes = spec.nodes;
  config.message_bytes = spec.message_bytes;
  // "Average skew" on the x-axis = mean |skew| of uniform[-M/2, M/2],
  // i.e. M/4 (the positive half averages M/4 and is applied; the negative
  // half is clipped to an immediate call).
  config.max_skew = sim::usec(spec.avg_skew_us * 4.0);
  config.iterations = spec.iterations;
  config.warmup = spec.warmup;
  config.algorithm = spec.algo == Algo::kNicBased
                         ? mpi::BcastAlgorithm::kNicBased
                         : mpi::BcastAlgorithm::kHostBased;
  config.seed = spec.seed;
  const mpi::SkewResult skew = mpi::run_skew_experiment(config);

  result.nic_totals = skew.nic_totals;
  result.engine.events_scheduled = skew.queue_stats.scheduled;
  result.engine.events_executed = skew.queue_stats.executed;
  result.engine.events_cancelled = skew.queue_stats.cancelled;
  result.engine.heap_actions = skew.queue_stats.heap_actions;
  result.engine.pool_slots = skew.queue_stats.pool_slots;
  result.engine.wheel_occupancy_peak = skew.queue_stats.wheel_occupancy_peak;
  result.engine.wheel_cascades = skew.queue_stats.wheel_cascades;
  result.engine.overflow_scheduled = skew.queue_stats.overflow_scheduled;
  result.engine.overflow_promotions = skew.queue_stats.overflow_promotions;
  result.engine.event_order_hash = skew.event_order_hash;
  result.engine.descriptor_allocs = skew.nic_totals.descriptor_allocs;
  result.engine.descriptor_reuses = skew.nic_totals.descriptor_reuses;
  result.engine.payload_bytes_copied = skew.nic_totals.payload_bytes_copied;
  result.engine.payload_refs = skew.nic_totals.payload_refs;
  result.set_metric("avg_bcast_cpu_us", skew.avg_bcast_cpu_us);
  result.set_metric("max_bcast_cpu_us", skew.max_bcast_cpu_us);
  result.set_metric("avg_applied_skew_us", skew.avg_applied_skew_us);
  return result;
}

RunResult run_barrier(const RunSpec& spec) {
  RunResult result;
  result.spec = spec;

  gm::Cluster cluster(cluster_config(spec));
  mpi::MpiConfig config;
  config.barrier_algorithm = spec.algo == Algo::kNicBased
                                 ? mpi::BarrierAlgorithm::kNicBased
                                 : mpi::BarrierAlgorithm::kDissemination;
  mpi::World world(cluster, config);

  const int rounds = spec.iterations;
  const double max_skew_us = spec.avg_skew_us;
  const std::uint64_t seed = spec.seed;
  const auto algorithm = config.barrier_algorithm;
  auto wall = std::make_shared<sim::Duration>();
  sim::Series& blocked = result.latency_us;
  world.launch([wall, &blocked, rounds, max_skew_us, seed,
                algorithm](mpi::Process& self) -> sim::Task<void> {
    sim::Rng rng(seed * 1315423911ULL +
                 static_cast<std::uint64_t>(self.rank()));
    co_await self.barrier(self.world_comm(), algorithm);  // bootstrap
    const sim::TimePoint start = self.simulator().now();
    for (int i = 0; i < rounds; ++i) {
      if (max_skew_us > 0 && self.rank() != 0) {
        co_await self.simulator().wait(
            sim::usec(rng.uniform(0, max_skew_us)));
      }
      const sim::TimePoint entered = self.simulator().now();
      co_await self.barrier(self.world_comm(), algorithm);
      blocked.add((self.simulator().now() - entered).microseconds());
    }
    if (self.rank() == 0) *wall = self.simulator().now() - start;
  });
  world.run();

  collect_nic_totals(cluster, result);
  result.set_metric("wall_us_per_round", wall->microseconds() / rounds);
  return result;
}

RunResult run_allreduce(const RunSpec& spec) {
  RunResult result;
  result.spec = spec;

  gm::Cluster cluster(cluster_config(spec));
  mpi::MpiConfig config;
  config.nic_reduction = spec.algo == Algo::kNicBased;
  mpi::World world(cluster, config);

  const int total = spec.warmup + spec.iterations;
  auto barrier = std::make_shared<SimBarrier>(spec.nodes);
  auto started = std::make_shared<std::vector<sim::TimePoint>>(total);
  auto done = std::make_shared<std::vector<sim::TimePoint>>(total);

  const std::size_t lanes = spec.lanes;
  const std::size_t nodes = spec.nodes;
  world.launch([barrier, started, done, lanes, total,
                nodes](mpi::Process& self) -> sim::Task<void> {
    for (int iter = 0; iter < total; ++iter) {
      co_await barrier->arrive();
      if (self.rank() == 0) (*started)[iter] = self.simulator().now();
      std::vector<std::int64_t> mine(lanes, self.rank() + iter);
      const auto sum =
          co_await self.allreduce_sum(self.world_comm(), std::move(mine));
      const auto expected = static_cast<std::int64_t>(
          nodes * (nodes - 1) / 2 + nodes * static_cast<std::size_t>(iter));
      if (sum.at(0) != expected) {
        throw std::logic_error("harness: allreduce produced a wrong sum");
      }
      auto& d = (*done)[iter];
      d = std::max(d, self.simulator().now());
    }
  });
  world.run();

  for (int iter = spec.warmup; iter < total; ++iter) {
    result.latency_us.add(
        ((*done)[iter] - (*started)[iter]).microseconds());
  }
  collect_nic_totals(cluster, result);
  return result;
}

RunResult run_one(const RunSpec& spec) {
  if (spec.shards > 1) {
    // run_sharded validates the family itself, so a mis-sharded
    // allreduce/host-based spec gets a sharding-specific diagnostic.
    return run_sharded(spec);
  }
  switch (spec.experiment) {
    case Experiment::kGmMulticast:
      return run_gm_mcast(spec);
    case Experiment::kMultisend:
      return run_multisend(spec);
    case Experiment::kMpiBcast:
      return run_mpi_bcast(spec);
    case Experiment::kSkewBcast:
      return run_skew_bcast(spec);
    case Experiment::kBarrier:
      return run_barrier(spec);
    case Experiment::kAllreduce:
      return run_allreduce(spec);
    case Experiment::kCustom:
      break;
  }
  throw std::invalid_argument(
      "run_one: Experiment::kCustom needs an explicit run function");
}

}  // namespace nicmcast::harness

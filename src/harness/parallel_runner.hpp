// Parallel experiment execution.
//
// Every RunSpec is an independent simulation (a Simulator/Cluster pair has
// no shared mutable state), so a sweep is embarrassingly parallel.  The
// ParallelRunner farms specs across a std::jthread pool and returns the
// results in spec order.  Per-run seeds are derived deterministically from
// (base_seed, run_index) BEFORE any thread touches a spec, so the output is
// bit-identical no matter how many threads execute it.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "harness/run_result.hpp"
#include "harness/run_spec.hpp"

namespace nicmcast::harness {

using RunFn = std::function<RunResult(const RunSpec&)>;

/// Executes one spec with the stock runner for its experiment family.
/// Throws std::invalid_argument for Experiment::kCustom.
[[nodiscard]] RunResult run_one(const RunSpec& spec);

/// splitmix64 mix of (base_seed, run_index): well-spread, deterministic,
/// and independent of thread count or completion order.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t base_seed,
                                        std::size_t run_index);

struct RunnerOptions {
  /// Worker thread count; values <= 1 run inline on the calling thread.
  unsigned threads = 1;
  /// Base of the per-run seed derivation (ignored if !derive_seeds).
  std::uint64_t base_seed = 1;
  /// When true (default), every spec's seed is overwritten with
  /// derive_seed(base_seed, index).  Disable to honour seeds already set
  /// on the specs (e.g. a CLI --seed for a single run).
  bool derive_seeds = true;
};

class ParallelRunner {
 public:
  explicit ParallelRunner(RunnerOptions options = {}) : options_(options) {}

  /// Runs `fn` over every spec and returns results in spec order.  The
  /// first exception thrown by any run is rethrown on the calling thread
  /// after the pool drains.
  [[nodiscard]] std::vector<RunResult> run(std::vector<RunSpec> specs,
                                           const RunFn& fn = run_one) const;

  [[nodiscard]] const RunnerOptions& options() const { return options_; }

 private:
  RunnerOptions options_;
};

}  // namespace nicmcast::harness

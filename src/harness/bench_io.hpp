// Shared bench front-end: the common command-line flags every bench and
// the CLI sweep accept (--threads, --json, --iters, --seed), table-header
// printing, and the BENCH_*.json trajectory writer.
//
// JSON schema ("nicmcast-bench-v1"), one document per bench invocation:
//
//   {
//     "schema":    "nicmcast-bench-v1",
//     "bench":     "<bench name>",
//     "threads":   N,              // worker threads used
//     "base_seed": S,              // ParallelRunner seed base
//     "runs": [
//       {
//         "spec": { "experiment": "gm_mcast", "label": "", "nodes": 16,
//                   "wiring": "auto", "radix": 16, "bytes": 512,
//                   "algo": "nic",
//                   "tree": "postal", "loss": 0, "corrupt": 0,
//                   "faults": "uniform",
//                   "skew_us": 0, "destinations": 0, "lanes": 1,
//                   "rdma": false, "warmup": 4, "iterations": 30,
//                   "seed": "123" /* decimal string: 64-bit exact */,
//                   "aux": 0 },
//         "latency_us": { "count": 30, "mean": ..., "min": ..., "max": ...,
//                         "stddev": ..., "p50": ..., "p95": ..., "p99": ... },
//                       // null when the experiment reports only metrics
//         "nic": { "packets_sent": ..., "packets_received": ...,
//                  "acks_sent": ..., "retransmissions": ..., "forwards": ...,
//                  "header_rewrites": ..., "crc_drops": ...,
//                  "out_of_order_drops": ..., "duplicate_drops": ...,
//                  "no_token_drops": ..., "nic_buffer_drops": ... },
//         "engine": { "events_scheduled": ..., "events_executed": ...,
//                     "events_cancelled": ..., "heap_actions": ...,
//                     "pool_slots": ..., "descriptor_allocs": ...,
//                     "descriptor_reuses": ..., "payload_bytes_copied": ...,
//                     "payload_refs": ...,
//                     "wheel_occupancy_peak": ..., "wheel_cascades": ...,
//                     "overflow_scheduled": ..., "overflow_promotions": ...,
//                     "routes_materialized": ..., "route_links_stored": ...,
//                     "route_links_shared": ...,
//                     "event_order_hash": "<decimal string: 64-bit exact>",
//                     /* sharded runs only (spec carries "shards" > 1 and
//                        the spec object gains a "shards" key): */
//                     "shard_count": ..., "cross_shard_msgs": ...,
//                     "lbts_rounds": ..., "horizon_stalls": ...,
//                     "channel_spills": ..., "cross_links": ...,
//                     "shard_order_hashes": ["<decimal string>", ...],
//                     "shard_wheel_occupancy_peak": [...],
//                     /* async-sync runs only (spec gains "sync":"async";
//                        timing-dependent — informational, never gated): */
//                     "null_msgs_sent": ..., "null_msgs_demanded": ...,
//                     "eot_advances": ..., "blocked_waits": ... },
//         "metrics": { "<name>": <number>, ... }
//       }, ...
//     ]
//   }
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "harness/json.hpp"
#include "harness/parallel_runner.hpp"
#include "harness/run_result.hpp"

namespace nicmcast::harness {

struct BenchOptions {
  unsigned threads = 1;
  std::string json_path;     // empty: no JSON output
  int iterations = 0;        // 0: keep the bench's own default
  std::uint64_t base_seed = 1;
  std::size_t max_nodes = 0;  // 0: no cap; CI trims scale sweeps with this
  /// Simulation shards for benches that honour the --shards axis (the
  /// gm_mcast scale sweeps).  0 = keep each bench point's own default, so
  /// existing BENCH_*.json documents are reproduced byte-identically.
  std::size_t shards = 0;
  /// Opt sharded points into batched per-shard LBTS horizons (fewer
  /// barrier rounds, same outcome; a different — but pinned — event-seq
  /// lineage, so goldens record which mode produced them).
  bool batch_horizons = false;
  /// --no-batch: disable the simulator's same-tick batched dispatch and
  /// pop events one at a time.  Executed order and event_order_hash are
  /// bit-identical either way; CI runs the microbench both ways to prove
  /// it.  Applied process-wide via sim::default_batch_dispatch().
  bool batch_dispatch = true;
  /// --perf-counters: sample hardware cache-miss/branch-miss counters
  /// around each timed scenario (Linux perf_event_open; reads as zero
  /// off-Linux or when the kernel denies access).
  bool perf_counters = false;
  /// --fast-path: force the NIC's uncontended-link replica fast path on
  /// for every run (NicConfig::uncontended_fast_path).  A modelling
  /// approximation with its own event lineage — never used for the
  /// hash-pinned baselines, but soaked under ASan in CI.
  bool fast_path = false;
  /// --sync MODE: force every sharded point's synchronization mode
  /// ("barrier" or "async"); empty keeps each point's own default so
  /// recorded sweeps stay label-stable.  The async mode replays the
  /// barrier round schedule exactly (same hashes, same lbts_rounds) —
  /// CI's TSan job forces it across the capped sweep.
  std::string sync;
  /// --only LABEL: run just the scenario/sweep point with this label.
  /// A profiling/debugging aid — a filtered JSON document is not a valid
  /// regression baseline (the checker fails on the missing labels).
  std::string only;

  /// True when `label` passes the --only filter.
  [[nodiscard]] bool selected(std::string_view label) const {
    return only.empty() || only == label;
  }

  /// The effective shard count for one sweep point (the --shards override
  /// when given, otherwise the point's default).
  [[nodiscard]] std::size_t shards_or(std::size_t fallback) const {
    return shards > 0 ? shards : fallback;
  }

  /// The effective sync mode for one sharded sweep point: the --sync
  /// override when given, otherwise the point's default.
  [[nodiscard]] bool async_or(bool fallback) const {
    if (sync.empty()) return fallback;
    return sync == "async";
  }

  /// The effective iteration (or scenario/node) count: the --iters override
  /// when given, otherwise the bench's own default.  Every bench used to
  /// open-code this ternary.
  [[nodiscard]] int iterations_or(int fallback) const {
    return iterations > 0 ? iterations : fallback;
  }
};

/// Parses the shared bench flags.  Prints usage and calls std::exit(2) on
/// a bad flag, std::exit(0) for --help.
[[nodiscard]] BenchOptions parse_bench_options(int argc, char** argv,
                                               std::string_view bench_name);

/// RunnerOptions implied by the parsed bench flags.
[[nodiscard]] RunnerOptions runner_options(const BenchOptions& options);

void print_header(const std::string& title, const std::string& paper_reference);

/// The "spec" object of the schema above.
[[nodiscard]] json::Value spec_to_json(const RunSpec& spec);

/// One "runs" element of the schema above.
[[nodiscard]] json::Value result_to_json(const RunResult& result);

/// Assembles a full "nicmcast-bench-v1" document.
[[nodiscard]] json::Value bench_document(std::string_view bench_name,
                                         const BenchOptions& options,
                                         const std::vector<RunResult>& results);

/// Writes the document for `results` to options.json_path (no-op when the
/// path is empty) and prints a one-line confirmation.
void write_bench_json(std::string_view bench_name, const BenchOptions& options,
                      const std::vector<RunResult>& results);

}  // namespace nicmcast::harness

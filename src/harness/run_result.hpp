// The outcome of one executed RunSpec.
//
// Carries the per-iteration latency Series, the cluster-wide aggregated
// NIC counters (observability: sends, forwards, retransmissions, drops),
// and a small ordered map of experiment-specific scalar metrics (CPU time
// under skew, bandwidth, delivery flags, ...).
#pragma once

#include <cmath>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "harness/run_spec.hpp"
#include "nic/types.hpp"
#include "sim/stats.hpp"

namespace nicmcast::harness {

/// Simulation-engine memory/throughput counters for one run.  These sit
/// beside (not inside) the protocol-level NicStats because they describe
/// the simulator's own hot paths: event-queue churn, descriptor pooling,
/// payload copies avoided by net::Buffer sharing.  Serialised under the
/// separate "engine" key so pre-existing JSON fields stay byte-stable.
struct EngineCounters {
  std::uint64_t events_scheduled = 0;
  std::uint64_t events_executed = 0;
  std::uint64_t events_cancelled = 0;
  std::uint64_t heap_actions = 0;   // event callbacks that spilled to heap
  std::uint64_t pool_slots = 0;     // event-queue slot pool high water
  std::uint64_t descriptor_allocs = 0;
  std::uint64_t descriptor_reuses = 0;
  std::uint64_t payload_bytes_copied = 0;
  std::uint64_t payload_refs = 0;
  // Timing-wheel scheduler behaviour (sim/timing_wheel.hpp):
  std::uint64_t wheel_occupancy_peak = 0;  // high-water live pending events
  std::uint64_t wheel_cascades = 0;        // coarse buckets cascaded to fine
  std::uint64_t overflow_scheduled = 0;    // schedules beyond coarse horizon
  std::uint64_t overflow_promotions = 0;   // overflow items promoted inward
  // Lazy route-cache behaviour (net::RouteTable):
  std::uint64_t routes_materialized = 0;   // (src, dst) pairs computed
  std::uint64_t route_links_stored = 0;    // LinkIds held across arenas
  std::uint64_t route_links_shared = 0;    // LinkIds reused via interning
  /// Deterministic FNV fold of the executed (time, seq) event order.  For
  /// sharded runs this is the merged per-shard fold (ShardedEngine::
  /// merged_order_hash); shard_order_hashes below carries the full vector.
  std::uint64_t event_order_hash = 0;
  // Sharded-PDES counters (sim::ShardedEngine); all zero/empty when the
  // run used the sequential engine, so pre-existing JSON stays stable.
  std::uint64_t shard_count = 0;       // 0 = sequential engine
  std::uint64_t cross_shard_msgs = 0;  // timestamped inter-shard messages
  std::uint64_t lbts_rounds = 0;       // barrier/LBTS synchronization rounds
  std::uint64_t horizon_stalls = 0;    // shard-rounds that ran zero events
  std::uint64_t channel_spills = 0;    // SPSC ring overflows to spill vector
  std::uint64_t cross_links = 0;       // topology links cut by the partition
  // Async-sync counters (spec.async_sync runs; zero under the barrier).
  std::uint64_t null_msgs_sent = 0;      // demand-answer null messages
  std::uint64_t null_msgs_demanded = 0;  // receiver demand flags raised
  std::uint64_t eot_advances = 0;        // inbound channel-clock advances
  std::uint64_t blocked_waits = 0;       // waits that actually spun
  std::vector<std::uint64_t> shard_order_hashes;         // per-shard, in order
  std::vector<std::uint64_t> shard_wheel_occupancy_peak; // per-shard wheels
};

struct RunResult {
  RunSpec spec;
  /// One sample per measured iteration (simulated microseconds); empty for
  /// experiments that only report aggregate metrics.
  sim::Series latency_us;
  /// NicStats summed over every NIC in the cluster.
  nic::NicStats nic_totals;
  /// Simulator memory-model counters (see EngineCounters).
  EngineCounters engine;
  /// Named scalar metrics, in insertion order (stable JSON output).
  std::vector<std::pair<std::string, double>> metrics;

  [[nodiscard]] double mean_us() const { return latency_us.mean(); }

  void set_metric(std::string_view name, double value) {
    for (auto& [key, val] : metrics) {
      if (key == name) {
        val = value;
        return;
      }
    }
    metrics.emplace_back(std::string(name), value);
  }

  [[nodiscard]] double metric(std::string_view name,
                              double fallback = std::nan("")) const {
    for (const auto& [key, val] : metrics) {
      if (key == name) return val;
    }
    return fallback;
  }
};

}  // namespace nicmcast::harness

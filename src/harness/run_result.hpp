// The outcome of one executed RunSpec.
//
// Carries the per-iteration latency Series, the cluster-wide aggregated
// NIC counters (observability: sends, forwards, retransmissions, drops),
// and a small ordered map of experiment-specific scalar metrics (CPU time
// under skew, bandwidth, delivery flags, ...).
#pragma once

#include <cmath>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "harness/run_spec.hpp"
#include "nic/types.hpp"
#include "sim/stats.hpp"

namespace nicmcast::harness {

struct RunResult {
  RunSpec spec;
  /// One sample per measured iteration (simulated microseconds); empty for
  /// experiments that only report aggregate metrics.
  sim::Series latency_us;
  /// NicStats summed over every NIC in the cluster.
  nic::NicStats nic_totals;
  /// Named scalar metrics, in insertion order (stable JSON output).
  std::vector<std::pair<std::string, double>> metrics;

  [[nodiscard]] double mean_us() const { return latency_us.mean(); }

  void set_metric(std::string_view name, double value) {
    for (auto& [key, val] : metrics) {
      if (key == name) {
        val = value;
        return;
      }
    }
    metrics.emplace_back(std::string(name), value);
  }

  [[nodiscard]] double metric(std::string_view name,
                              double fallback = std::nan("")) const {
    for (const auto& [key, val] : metrics) {
      if (key == name) return val;
    }
    return fallback;
  }
};

}  // namespace nicmcast::harness

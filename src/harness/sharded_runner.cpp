// The --shards axis: run_sharded executes a spec on the conservative-PDES
// fabric (net::ShardedFabric over sim::ShardedEngine) instead of the
// coroutine gm::Cluster stack.  Specs are translated, not reinterpreted:
// same wiring resolution, same tree builder, same NIC and network knobs —
// so shard counts change only how the simulation is partitioned, never
// what it simulates.  Five families run sharded (gm_mcast, multisend,
// mpi_bcast, skew_bcast, barrier); allreduce and host-based algorithms
// stay coroutine-only and throw with a sharding-specific diagnostic.
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/experiment_util.hpp"
#include "harness/run_result.hpp"
#include "harness/run_spec.hpp"
#include "harness/runners.hpp"
#include "mcast/tree.hpp"
#include "net/sharded_fabric.hpp"
#include "net/topology.hpp"

namespace nicmcast::harness {
namespace {

net::Topology make_topology(const RunSpec& spec) {
  switch (resolve_wiring(spec)) {
    case gm::ClusterConfig::Wiring::kSingleSwitch:
      return net::Topology::single_switch(spec.nodes);
    case gm::ClusterConfig::Wiring::kClos:
      return net::Topology::clos(spec.nodes, spec.switch_radix);
    case gm::ClusterConfig::Wiring::kBackToBack:
      return net::Topology::back_to_back();
  }
  throw std::logic_error("run_sharded: unmapped wiring");
}

// mcast::Tree is hash-map-based protocol plumbing; the fabric wants flat
// arrays.  Child order is preserved — it is the GM send-record chain order
// and part of the determinism contract.
net::FabricTree flatten_tree(const mcast::Tree& tree, std::size_t nodes) {
  net::FabricTree flat;
  flat.root = tree.root();
  flat.parent.assign(nodes, net::FabricTree::kNoParent);
  flat.child_off.assign(nodes + 1, 0);
  for (std::size_t i = 0; i < nodes; ++i) {
    const auto node = static_cast<net::NodeId>(i);
    flat.child_off[i + 1] =
        flat.child_off[i] + static_cast<std::uint32_t>(
                                tree.children(node).size());
    if (const auto p = tree.parent(node)) flat.parent[i] = *p;
  }
  flat.children.reserve(flat.child_off[nodes]);
  for (std::size_t i = 0; i < nodes; ++i) {
    for (const net::NodeId c : tree.children(static_cast<net::NodeId>(i))) {
      flat.children.push_back(c);
    }
  }
  return flat;
}

// The spanning tree a spec's family runs over.  size_t indices on purpose:
// a NodeId loop historically wrapped forever at the id-width boundary.
net::FabricTree make_tree(const RunSpec& spec) {
  if (spec.experiment == Experiment::kMultisend) {
    // Flat NIC multisend: a star, every destination a direct child of the
    // root — no forwarding, which is the point of Fig. 3.
    net::FabricTree star;
    star.root = 0;
    star.parent.assign(spec.nodes, net::FabricTree::kNoParent);
    star.child_off.assign(spec.nodes + 1,
                          static_cast<std::uint32_t>(spec.nodes - 1));
    star.child_off[0] = 0;
    star.children.reserve(spec.nodes - 1);
    for (std::size_t i = 1; i < spec.nodes; ++i) {
      star.parent[i] = 0;
      star.children.push_back(static_cast<net::NodeId>(i));
    }
    return star;
  }
  std::vector<net::NodeId> dests;
  dests.reserve(spec.nodes - 1);
  for (std::size_t i = 1; i < spec.nodes; ++i) {
    dests.push_back(static_cast<net::NodeId>(i));
  }
  return flatten_tree(build_tree(spec, dests), spec.nodes);
}

net::FabricWorkload workload_of(const RunSpec& spec) {
  switch (spec.experiment) {
    case Experiment::kGmMulticast: return net::FabricWorkload::kMcast;
    case Experiment::kMultisend: return net::FabricWorkload::kMultisend;
    case Experiment::kMpiBcast: return net::FabricWorkload::kBcast;
    case Experiment::kSkewBcast: return net::FabricWorkload::kSkewBcast;
    case Experiment::kBarrier: return net::FabricWorkload::kBarrier;
    case Experiment::kAllreduce:
    case Experiment::kCustom:
      break;
  }
  throw std::invalid_argument(
      "run_sharded: no sharded runner for experiment '" +
      std::string(to_string(spec.experiment)) +
      "' (NIC-level reduction and custom bodies are gm::Cluster-only); "
      "the sharded FabricWorkload families are gm_mcast, multisend, "
      "mpi_bcast, skew_bcast and barrier — drop --shards");
}

}  // namespace

RunResult run_sharded(const RunSpec& spec) {
  const net::FabricWorkload workload = workload_of(spec);
  if (spec.shards == 0) {
    throw std::invalid_argument("run_sharded: shards must be >= 1");
  }
  if (spec.algo != Algo::kNicBased) {
    throw std::invalid_argument(
        "run_sharded: the sharded fabric models the NIC-based data path "
        "only (host-based staging is gm::Cluster-only)");
  }
  if (spec.faults != FaultFamily::kUniform || spec.corrupt_rate != 0.0) {
    throw std::invalid_argument(
        "run_sharded: sharded runs support uniform loss only (the "
        "counter-hash loss model keeps drops shard-count invariant)");
  }
  if (spec.experiment == Experiment::kMultisend &&
      (spec.destinations == 0 || spec.nodes != spec.destinations + 1)) {
    // Mirrors run_multisend so the two paths reject the same specs.
    throw std::invalid_argument(
        "run_sharded: need destinations >= 1 and nodes == destinations + 1");
  }
  if (spec.experiment == Experiment::kMpiBcast && spec.rdma) {
    throw std::invalid_argument(
        "run_sharded: the RDMA-multicast bcast variant is gm::Cluster-only; "
        "the sharded FabricWorkload families are gm_mcast, multisend, "
        "mpi_bcast (plain), skew_bcast and barrier — drop --rdma or "
        "--shards");
  }

  net::FabricOptions options;
  options.workload = workload;
  options.message_bytes = spec.message_bytes;
  options.warmup = spec.warmup;
  options.iterations = spec.iterations;
  options.loss_rate = spec.loss_rate;
  options.avg_skew_us = spec.avg_skew_us;
  options.batch_horizons = spec.batch_horizons;
  options.async_sync = spec.async_sync;
  options.seed = spec.seed;
  options.nic = spec.nic;

  net::ShardedFabric fabric(make_topology(spec), make_tree(spec), options,
                            spec.shards);
  const net::FabricResult fr = fabric.run();

  RunResult result;
  result.spec = spec;
  for (const double us : fr.latency_us) result.latency_us.add(us);
  result.nic_totals = fr.nic_totals;

  EngineCounters& e = result.engine;
  e.events_scheduled = fr.events_scheduled;
  e.events_executed = fr.events_executed;
  e.events_cancelled = fr.events_cancelled;
  e.heap_actions = fr.heap_actions;
  e.pool_slots = fr.pool_slots;
  e.descriptor_allocs = fr.nic_totals.descriptor_allocs;
  e.descriptor_reuses = fr.nic_totals.descriptor_reuses;
  e.payload_bytes_copied = fr.nic_totals.payload_bytes_copied;
  e.payload_refs = fr.nic_totals.payload_refs;
  e.wheel_cascades = fr.wheel_cascades;
  e.overflow_scheduled = fr.overflow_scheduled;
  e.overflow_promotions = fr.overflow_promotions;
  e.routes_materialized = fr.routes_materialized;
  e.route_links_stored = fr.route_links_stored;
  e.route_links_shared = fr.route_links_shared;
  e.event_order_hash = fr.merged_order_hash;
  // Effective count: switch_cut clamps the request to its leaf-block count,
  // so small topologies may run on fewer shards than the spec asked for.
  e.shard_count = fr.shard_order_hashes.size();
  e.cross_shard_msgs = fr.cross_shard_msgs;
  e.lbts_rounds = fr.lbts_rounds;
  e.horizon_stalls = fr.horizon_stalls;
  e.channel_spills = fr.channel_spills;
  e.cross_links = fr.cross_links;
  e.null_msgs_sent = fr.null_msgs_sent;
  e.null_msgs_demanded = fr.null_msgs_demanded;
  e.eot_advances = fr.eot_advances;
  e.blocked_waits = fr.blocked_waits;
  e.shard_order_hashes = fr.shard_order_hashes;
  e.shard_wheel_occupancy_peak = fr.shard_wheel_occupancy_peak;
  // The scalar peak keeps its sequential meaning (busiest single wheel).
  for (const std::uint64_t peak : fr.shard_wheel_occupancy_peak) {
    if (peak > e.wheel_occupancy_peak) e.wheel_occupancy_peak = peak;
  }

  const auto iters =
      static_cast<std::uint64_t>(spec.warmup) +
      static_cast<std::uint64_t>(spec.iterations);
  // One first delivery per receiver per iteration — except the barrier,
  // where every node (root included) completes every round.
  const std::uint64_t per_iter = spec.experiment == Experiment::kBarrier
                                     ? spec.nodes
                                     : spec.nodes - 1;
  const std::uint64_t expected = per_iter * iters;
  result.set_metric("delivered", fr.deliveries == expected ? 1.0 : 0.0);
  result.set_metric("deliveries", static_cast<double>(fr.deliveries));
  if (spec.experiment == Experiment::kSkewBcast) {
    result.set_metric("avg_bcast_cpu_us", fr.avg_bcast_cpu_us);
    result.set_metric("max_bcast_cpu_us", fr.max_bcast_cpu_us);
    result.set_metric("avg_applied_skew_us", fr.avg_applied_skew_us);
  }
  if (spec.experiment == Experiment::kBarrier && !fr.latency_us.empty()) {
    double sum = 0.0;
    for (const double us : fr.latency_us) sum += us;
    result.set_metric("wall_us_per_round",
                      sum / static_cast<double>(fr.latency_us.size()));
  }
  return result;
}

RunResult run_sharded_mcast(const RunSpec& spec) {
  if (spec.experiment != Experiment::kGmMulticast) {
    throw std::invalid_argument(
        "run_sharded_mcast: only the gm_mcast family; use run_sharded for "
        "the other migrated families");
  }
  return run_sharded(spec);
}

}  // namespace nicmcast::harness

#include "harness/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace nicmcast::harness::json {

std::string escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;  // UTF-8 continuation bytes included
        }
    }
  }
  return out;
}

std::string format_number(double value) {
  if (!std::isfinite(value)) {
    // JSON has no Inf/NaN; emit null-compatible text the parser rejects
    // loudly rather than silently producing an invalid document.
    throw std::invalid_argument("json: cannot serialise a non-finite number");
  }
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      std::abs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(value));
    return buf;
  }
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value);
  if (ec != std::errc{}) {
    throw std::logic_error("json: number formatting failed");
  }
  return std::string(buf, ptr);
}

Value& Value::operator[](std::string_view key) {
  if (is_null()) data_ = Object{};
  Object& obj = std::get<Object>(data_);
  for (auto& [k, v] : obj) {
    if (k == key) return v;
  }
  obj.emplace_back(std::string(key), Value());
  return obj.back().second;
}

const Value& Value::at(std::string_view key) const {
  for (const auto& [k, v] : as_object()) {
    if (k == key) return v;
  }
  throw std::out_of_range("json: missing key \"" + std::string(key) + "\"");
}

bool Value::contains(std::string_view key) const {
  if (!is_object()) return false;
  for (const auto& [k, v] : as_object()) {
    if (k == key) return true;
  }
  return false;
}

void Value::push_back(Value v) {
  if (is_null()) data_ = Array{};
  std::get<Array>(data_).push_back(std::move(v));
}

std::size_t Value::size() const {
  if (is_array()) return as_array().size();
  if (is_object()) return as_object().size();
  throw std::logic_error("json: size() on a scalar");
}

void Value::write(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const auto newline_pad = [&](int level) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * level), ' ');
  };
  switch (type()) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += as_bool() ? "true" : "false"; break;
    case Type::kNumber: out += format_number(as_number()); break;
    case Type::kString:
      out += '"';
      out += escape(as_string());
      out += '"';
      break;
    case Type::kArray: {
      const Array& arr = as_array();
      if (arr.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < arr.size(); ++i) {
        if (i > 0) out += ',';
        newline_pad(depth + 1);
        arr[i].write(out, indent, depth + 1);
      }
      newline_pad(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      const Object& obj = as_object();
      if (obj.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < obj.size(); ++i) {
        if (i > 0) out += ',';
        newline_pad(depth + 1);
        out += '"';
        out += escape(obj[i].first);
        out += "\":";
        if (pretty) out += ' ';
        obj[i].second.write(out, indent, depth + 1);
      }
      newline_pad(depth);
      out += '}';
      break;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError(what, pos_);
  }

  [[nodiscard]] char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Value(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Value(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value(nullptr);
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value out = Value::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      out[key] = parse_value();
      skip_ws();
      const char c = take();
      if (c == '}') return out;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
  }

  Value parse_array() {
    expect('[');
    Value out = Value::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    for (;;) {
      out.push_back(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') return out;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': append_codepoint(out); break;
        default: fail("bad escape sequence");
      }
    }
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("bad \\u escape digit");
      }
    }
    return value;
  }

  void append_codepoint(std::string& out) {
    unsigned cp = parse_hex4();
    if (cp >= 0xd800 && cp <= 0xdbff) {
      // Surrogate pair.
      if (take() != '\\' || take() != 'u') fail("unpaired surrogate");
      const unsigned lo = parse_hex4();
      if (lo < 0xdc00 || lo > 0xdfff) fail("bad low surrogate");
      cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
    } else if (cp >= 0xdc00 && cp <= 0xdfff) {
      fail("stray low surrogate");
    }
    // UTF-8 encode.
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xc0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xe0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else {
      out += static_cast<char>(0xf0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0;
    const auto [ptr, ec] = std::from_chars(text_.data() + start,
                                           text_.data() + pos_, value);
    if (ec != std::errc{} || ptr != text_.data() + pos_ || pos_ == start) {
      pos_ = start;
      fail("bad number");
    }
    return Value(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value Value::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace nicmcast::harness::json

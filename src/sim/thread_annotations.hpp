// Clang thread-safety annotation vocabulary for the sharded PDES core.
//
// The sharded engine's concurrency contract (DESIGN.md §4.9) is mostly
// *structural*: each SpscChannel has exactly one producer and one consumer
// thread, spill vectors are mutex-guarded, and controller state lives on
// one shard.  None of that is visible to the compiler from the types
// alone, so this header wraps Clang's capability analysis
// (-Wthread-safety) in NM_* macros that expand to nothing under other
// compilers.  The Clang CI job builds the tree with
// -Wthread-safety -Wthread-safety-beta -Werror, turning contract
// violations — a consumer calling SpscChannel::try_push, a spill vector
// touched without its mutex — into compile errors.
//
// Three kinds of capability are used in the tree:
//  * Mutex / MutexLock — an annotated std::mutex wrapper.  libstdc++'s
//    std::mutex carries no capability attributes, so NM_GUARDED_BY on a
//    member only analyzes if the guarding mutex is this wrapper.
//  * Role — a phantom (zero-state) capability naming a structural right,
//    e.g. "I am the producer of this channel".  Acquiring a RoleGuard
//    documents and checks the claim; it compiles to nothing.
//  * NM_ASSERT_CAPABILITY via Role::assert_held() — used inside lambdas.
//    Clang's analysis is intraprocedural and treats a lambda body as a
//    separate function, so a capability held by the enclosing scope is
//    invisible inside the lambda; assert_held() re-states it.
#pragma once

#include <mutex>

#if defined(__clang__)
#define NM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define NM_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

#define NM_CAPABILITY(x) NM_THREAD_ANNOTATION(capability(x))
#define NM_SCOPED_CAPABILITY NM_THREAD_ANNOTATION(scoped_lockable)
#define NM_GUARDED_BY(x) NM_THREAD_ANNOTATION(guarded_by(x))
#define NM_PT_GUARDED_BY(x) NM_THREAD_ANNOTATION(pt_guarded_by(x))
#define NM_REQUIRES(...) \
  NM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define NM_ACQUIRE(...) NM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define NM_RELEASE(...) NM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define NM_TRY_ACQUIRE(...) \
  NM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define NM_EXCLUDES(...) NM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define NM_ASSERT_CAPABILITY(x) NM_THREAD_ANNOTATION(assert_capability(x))
#define NM_RETURN_CAPABILITY(x) NM_THREAD_ANNOTATION(lock_returned(x))
#define NM_NO_THREAD_SAFETY_ANALYSIS \
  NM_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace nicmcast::sim {

/// std::mutex with capability attributes so NM_GUARDED_BY members are
/// actually analyzed.  Same cost as std::mutex; lock/unlock inline away.
class NM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() NM_ACQUIRE() { mu_.lock(); }
  void unlock() NM_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() NM_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

 private:
  std::mutex mu_;
};

/// std::lock_guard for Mutex, visible to the capability analysis.
class NM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) NM_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() NM_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// A phantom capability: no state, no blocking — purely a name for a
/// structural right ("producer of channel (a,b)", "fabric controller").
/// Methods annotated NM_REQUIRES(role) can only be called from scopes that
/// hold a RoleGuard on (or assert) that role; under Clang the claim is
/// checked, everywhere it compiles to nothing.
class NM_CAPABILITY("role") Role {
 public:
  Role() = default;
  Role(const Role&) = delete;
  Role& operator=(const Role&) = delete;

  /// Declares the role taken by the current scope.  Prefer RoleGuard.
  void acquire() const NM_ACQUIRE() {}
  void release() const NM_RELEASE() {}

  /// Re-states a role that the surrounding structure already guarantees —
  /// the entry point of a worker lambda, a callback that only ever runs on
  /// the owning shard.  Clang's analysis does not see through lambda
  /// boundaries, so worker-lambda bodies start from an empty capability
  /// set and must assert the roles their spawner established.
  void assert_held() const NM_ASSERT_CAPABILITY(this) {}
};

/// Scoped claim of a Role (the MutexLocker pattern from the Clang docs):
/// construction acquires the phantom capability, destruction releases it.
class NM_SCOPED_CAPABILITY RoleGuard {
 public:
  explicit RoleGuard(const Role& role) NM_ACQUIRE(role) { (void)role; }
  ~RoleGuard() NM_RELEASE() {}

  RoleGuard(const RoleGuard&) = delete;
  RoleGuard& operator=(const RoleGuard&) = delete;
};

}  // namespace nicmcast::sim

// Awaitable synchronisation primitives for simulated processes.
//
// Trigger  — one-shot broadcast event ("message fully received").
// Gate     — resettable broadcast event (barrier-style releases).
// Channel  — unbounded FIFO mailbox; the workhorse for event queues between
//            host processes and NIC firmware.
//
// All primitives resume waiters synchronously at the current simulation
// instant, in FIFO wait order, which keeps runs deterministic.
#pragma once

#include <coroutine>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

namespace nicmcast::sim {

/// One-shot broadcast event.  Awaits after fire() complete immediately.
class Trigger {
 public:
  Trigger() = default;
  Trigger(const Trigger&) = delete;
  Trigger& operator=(const Trigger&) = delete;

  [[nodiscard]] bool fired() const { return fired_; }

  void fire() {
    if (fired_) return;
    fired_ = true;
    auto waiters = std::move(waiters_);
    waiters_.clear();
    for (auto h : waiters) h.resume();
  }

  struct Awaiter {
    Trigger& trigger;
    bool await_ready() const noexcept { return trigger.fired_; }
    void await_suspend(std::coroutine_handle<> h) {
      trigger.waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };
  Awaiter wait() { return Awaiter{*this}; }

 private:
  bool fired_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Resettable broadcast event.  release() wakes everyone currently waiting;
/// subsequent waits block until the next release().
class Gate {
 public:
  Gate() = default;
  Gate(const Gate&) = delete;
  Gate& operator=(const Gate&) = delete;

  [[nodiscard]] std::size_t waiting() const { return waiters_.size(); }

  void release() {
    auto waiters = std::move(waiters_);
    waiters_.clear();
    for (auto h : waiters) h.resume();
  }

  struct Awaiter {
    Gate& gate;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      gate.waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };
  Awaiter wait() { return Awaiter{*this}; }

 private:
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Unbounded FIFO channel.  Any number of producers (plain code or
/// coroutines) push; consumers `co_await ch.pop()`.  Values are handed to
/// waiters in push order; waiters are served in wait order.
template <class T>
class Channel {
 public:
  Channel() = default;
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  void push(T value) {
    items_.push_back(std::move(value));
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      h.resume();
    }
  }

  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] std::size_t size() const { return items_.size(); }

  /// Non-blocking pop, for polling-style consumers.
  std::optional<T> try_pop() {
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    return v;
  }

  struct PopAwaiter {
    Channel& ch;
    bool await_ready() const noexcept { return !ch.items_.empty(); }
    void await_suspend(std::coroutine_handle<> h) {
      ch.waiters_.push_back(h);
    }
    T await_resume() {
      T v = std::move(ch.items_.front());
      ch.items_.pop_front();
      return v;
    }
  };
  PopAwaiter pop() { return PopAwaiter{*this}; }

 private:
  std::deque<T> items_;
  std::deque<std::coroutine_handle<>> waiters_;
};

}  // namespace nicmcast::sim

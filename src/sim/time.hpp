// Strongly-typed simulated time.
//
// All simulation time is kept in integer nanoseconds so that event ordering
// is exact and runs are bit-reproducible across platforms.  Durations and
// time points are distinct types to prevent accidental mixing (adding two
// time points, passing a duration where an absolute time is expected, ...).
#pragma once

#include <cstdint>
#include <compare>
#include <ostream>

namespace nicmcast::sim {

/// A span of simulated time.  Signed so that differences are representable;
/// negative durations are legal values but most APIs reject them.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(std::int64_t ns) : ns_(ns) {}

  [[nodiscard]] constexpr std::int64_t nanoseconds() const { return ns_; }
  [[nodiscard]] constexpr double microseconds() const {
    return static_cast<double>(ns_) / 1e3;
  }
  [[nodiscard]] constexpr double milliseconds() const {
    return static_cast<double>(ns_) / 1e6;
  }
  [[nodiscard]] constexpr double seconds() const {
    return static_cast<double>(ns_) / 1e9;
  }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration& operator+=(Duration d) { ns_ += d.ns_; return *this; }
  constexpr Duration& operator-=(Duration d) { ns_ -= d.ns_; return *this; }

  friend constexpr Duration operator+(Duration a, Duration b) {
    return Duration{a.ns_ + b.ns_};
  }
  friend constexpr Duration operator-(Duration a, Duration b) {
    return Duration{a.ns_ - b.ns_};
  }
  friend constexpr Duration operator*(Duration a, std::int64_t k) {
    return Duration{a.ns_ * k};
  }
  friend constexpr Duration operator*(std::int64_t k, Duration a) {
    return Duration{a.ns_ * k};
  }
  friend constexpr Duration operator/(Duration a, std::int64_t k) {
    return Duration{a.ns_ / k};
  }
  /// Ratio of two durations as a double (e.g. latency / gap for the
  /// postal-model fan-out computation).
  friend constexpr double operator/(Duration a, Duration b) {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }

 private:
  std::int64_t ns_ = 0;
};

/// An absolute point on the simulation clock.  Time zero is the instant the
/// simulator was constructed.
class TimePoint {
 public:
  constexpr TimePoint() = default;
  constexpr explicit TimePoint(std::int64_t ns) : ns_(ns) {}

  [[nodiscard]] constexpr std::int64_t nanoseconds() const { return ns_; }
  [[nodiscard]] constexpr double microseconds() const {
    return static_cast<double>(ns_) / 1e3;
  }

  constexpr auto operator<=>(const TimePoint&) const = default;

  friend constexpr TimePoint operator+(TimePoint t, Duration d) {
    return TimePoint{t.ns_ + d.nanoseconds()};
  }
  friend constexpr TimePoint operator+(Duration d, TimePoint t) {
    return t + d;
  }
  friend constexpr TimePoint operator-(TimePoint t, Duration d) {
    return TimePoint{t.ns_ - d.nanoseconds()};
  }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) {
    return Duration{a.ns_ - b.ns_};
  }

 private:
  std::int64_t ns_ = 0;
};

// Factory helpers.  `usec(2.5)` reads close to the paper's microsecond
// figures while staying integer underneath.
[[nodiscard]] constexpr Duration nsec(std::int64_t ns) { return Duration{ns}; }
[[nodiscard]] constexpr Duration usec(double us) {
  return Duration{static_cast<std::int64_t>(us * 1e3)};
}
[[nodiscard]] constexpr Duration msec(double ms) {
  return Duration{static_cast<std::int64_t>(ms * 1e6)};
}
[[nodiscard]] constexpr Duration sec(double s) {
  return Duration{static_cast<std::int64_t>(s * 1e9)};
}

inline std::ostream& operator<<(std::ostream& os, Duration d) {
  return os << d.microseconds() << "us";
}
inline std::ostream& operator<<(std::ostream& os, TimePoint t) {
  return os << "t+" << t.microseconds() << "us";
}

/// Time needed to move `bytes` at `megabytes_per_second`, rounded up to a
/// whole nanosecond so back-to-back transfers never overlap.
[[nodiscard]] constexpr Duration transfer_time(std::uint64_t bytes,
                                               double megabytes_per_second) {
  const double ns = static_cast<double>(bytes) * 1e3 / megabytes_per_second;
  return Duration{static_cast<std::int64_t>(ns) + 1};
}

}  // namespace nicmcast::sim

// Deterministic pseudo-random number generation.
//
// xoshiro256** seeded via splitmix64 — fast, high quality and identical on
// every platform, so simulations with fault injection or process skew are
// reproducible from a seed alone (std::mt19937 + std::uniform_*_distribution
// are not portable across standard libraries).
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace nicmcast::sim {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 expansion of the single-word seed into xoshiro state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] (inclusive), unbiased via rejection.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
    if (range == 0) return static_cast<std::int64_t>(next());  // full range
    const std::uint64_t limit = max() - max() % range;
    std::uint64_t v = next();
    while (v >= limit) v = next();
    return lo + static_cast<std::int64_t>(v % range);
  }

  /// Bernoulli draw.
  bool chance(double p) { return uniform() < p; }

  /// Derives an independent child generator (per-link / per-node streams).
  Rng fork() { return Rng{next() ^ 0xd1b54a32d192ed03ULL}; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace nicmcast::sim

// Lightweight categorised event tracing.
//
// Components emit trace records ("nic", "net", "gm", "mcast", "mpi"); a
// Tracer with no enabled categories costs one branch per record.  The
// timing-diagram example and debugging sessions turn categories on and dump
// to a stream or inspect records programmatically.
#pragma once

#include <functional>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace nicmcast::sim {

struct TraceRecord {
  TimePoint when;
  std::string category;
  std::string actor;   // e.g. "node3.nic" or "node0.host"
  std::string message;
};

class Tracer {
 public:
  /// Enables a category ("*" enables everything).
  void enable(std::string_view category) {
    enabled_.insert(std::string(category));
  }
  void disable(std::string_view category) {
    if (auto it = enabled_.find(category); it != enabled_.end()) {
      enabled_.erase(it);
    }
  }

  /// Heterogeneous (string_view) lookup: the disabled-tracer fast path and
  /// every emit() check run without constructing a std::string.
  [[nodiscard]] bool enabled(std::string_view category) const {
    return !enabled_.empty() &&
           (enabled_.contains(std::string_view("*")) ||
            enabled_.contains(category));
  }

  /// Streams records live instead of (or in addition to) retaining them.
  void set_sink(std::ostream* os) { sink_ = os; }
  /// When false (default true), records are not retained in memory.
  void set_retain(bool retain) { retain_ = retain; }

  void emit(TimePoint when, std::string_view category, std::string_view actor,
            std::string message) {
    if (!enabled(category)) return;
    if (sink_ != nullptr) {
      (*sink_) << "[" << when.microseconds() << "us] " << category << " "
               << actor << ": " << message << "\n";
    }
    if (retain_) {
      records_.push_back(TraceRecord{when, std::string(category),
                                     std::string(actor), std::move(message)});
    }
  }

  [[nodiscard]] const std::vector<TraceRecord>& records() const {
    return records_;
  }
  void clear() { records_.clear(); }

  /// Count of retained records whose message contains `needle`
  /// (test helper: "was a retransmission traced?").
  [[nodiscard]] std::size_t count_matching(std::string_view needle) const {
    std::size_t n = 0;
    for (const auto& r : records_) {
      if (r.message.find(needle) != std::string::npos) ++n;
    }
    return n;
  }

 private:
  // Transparent hashing so find/contains accept string_view without an
  // allocation (C++20 heterogeneous unordered lookup).
  struct StringHash {
    using is_transparent = void;
    [[nodiscard]] std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  std::unordered_set<std::string, StringHash, std::equal_to<>> enabled_;
  std::vector<TraceRecord> records_;
  std::ostream* sink_ = nullptr;
  bool retain_ = true;
};

}  // namespace nicmcast::sim

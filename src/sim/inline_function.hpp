// Small-buffer-optimized move-only callable.
//
// The event queue fires millions of closures per simulated second; wrapping
// each one in std::function costs a heap allocation whenever the capture
// exceeds libstdc++'s 16-byte inline buffer — which is almost every NIC/net
// closure (they carry `this`, a packet header, a Buffer view, a handle...).
// InlineFunction raises the inline capacity to the capture sizes those
// layers actually use and falls back to the heap only past that, counted by
// uses_heap() so the benches can watch for regressions.
//
// Differences from std::function, both deliberate:
//   - move-only: closures may own move-only state (an Action chained into
//     another Action, a pooled descriptor reference) without the copyable
//     requirement forcing shared_ptr indirection;
//   - relocation is noexcept: storing callables in growable vectors (the
//     event-queue slot pool) needs nothrow moves, so a callable whose move
//     constructor may throw is heap-allocated instead of stored inline.
#pragma once

#include <cstddef>
#include <cstring>
#include <functional>  // std::nullptr_t interop mirrors std::function
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace nicmcast::sim {

template <typename Signature, std::size_t InlineBytes = 88>
class InlineFunction;

template <typename R, typename... Args, std::size_t InlineBytes>
class InlineFunction<R(Args...), InlineBytes> {
 public:
  InlineFunction() = default;
  InlineFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor): implicit by design, like std::function

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InlineFunction> &&
             std::is_invocable_r_v<R, std::remove_cvref_t<F>&, Args...>)
  InlineFunction(F&& callable) {  // NOLINT(google-explicit-constructor): implicit by design, like std::function
    using D = std::remove_cvref_t<F>;
    if constexpr (sizeof(D) <= InlineBytes &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(callable));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(callable)));
      ops_ = &kHeapOps<D>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { take(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      take(other);
    }
    return *this;
  }

  InlineFunction& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  R operator()(Args... args) {
    return ops_->invoke(storage_, std::forward<Args>(args)...);
  }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  /// True when the callable spilled past the inline buffer.  The engine
  /// counts these: a hot path showing heap actions is a capture-size bug.
  [[nodiscard]] bool uses_heap() const { return ops_ != nullptr && ops_->heap; }

 private:
  // Relocate/destroy are nullable: a null relocate means "memcpy the whole
  // inline buffer" and a null destroy means "no-op".  Most hot-path
  // closures capture only pointers and integers (trivially copyable), and
  // a heap-spilled callable's inline representation is a plain D* — so the
  // per-event move/destroy indirect calls collapse to a fixed-size copy
  // the compiler inlines.  The function-pointer path remains for callables
  // with real move constructors or destructors.
  struct Ops {
    R (*invoke)(void* storage, Args&&... args);
    // Move-constructs dst's storage from src's and destroys src's; the
    // noexcept guarantee is what lets slot pools grow by relocation.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
    bool heap;
    // Bytes a null-relocate move must copy (sizeof the stored type).  The
    // copy itself still uses one of two compile-time sizes — kSmallCopy or
    // InlineBytes — so a tiny capture (`this`, a coroutine handle) moves
    // with a quarter of the memcpy traffic of a full-buffer copy.
    std::uint32_t copy_bytes;
  };

  static constexpr std::size_t kSmallCopy = InlineBytes < 32 ? InlineBytes : 32;

  template <typename D>
  static constexpr Ops kInlineOps{
      [](void* storage, Args&&... args) -> R {
        return (*std::launder(static_cast<D*>(storage)))(
            std::forward<Args>(args)...);
      },
      std::is_trivially_copyable_v<D>
          ? nullptr
          : +[](void* dst, void* src) noexcept {
              D* from = std::launder(static_cast<D*>(src));
              ::new (dst) D(std::move(*from));
              from->~D();
            },
      std::is_trivially_destructible_v<D>
          ? nullptr
          : +[](void* storage) noexcept {
              std::launder(static_cast<D*>(storage))->~D();
            },
      false, static_cast<std::uint32_t>(sizeof(D))};

  template <typename D>
  static constexpr Ops kHeapOps{
      [](void* storage, Args&&... args) -> R {
        return (**std::launder(static_cast<D**>(storage)))(
            std::forward<Args>(args)...);
      },
      // The inline representation is just a pointer: memcpy relocates it.
      nullptr,
      [](void* storage) noexcept {
        delete *std::launder(static_cast<D**>(storage));
      },
      true, static_cast<std::uint32_t>(sizeof(D*))};

  void reset() {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  void take(InlineFunction& other) {
    const Ops* ops = other.ops_;
    if (ops != nullptr) {
      ops_ = ops;
      if (ops->relocate == nullptr) {
        // Fixed-size copy: straight-line vector moves, no indirect call.
        // Trailing bytes past sizeof(D) are dead either way.  Two size
        // tiers, both compile-time constants, so small captures (the
        // dominant event-loop case) skip most of the traffic.
        if (ops->copy_bytes <= kSmallCopy) {
          std::memcpy(storage_, other.storage_, kSmallCopy);
        } else {
          std::memcpy(storage_, other.storage_, InlineBytes);
        }
      } else {
        ops->relocate(storage_, other.storage_);
      }
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[InlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace nicmcast::sim

// Coroutine task type for simulated processes.
//
// Host programs, GM library calls and MPI collectives are written as
// C++20 coroutines returning Task<T>.  A Task starts suspended; it runs when
// awaited (or when spawned onto the Simulator) and resumes its awaiter via
// symmetric transfer when it finishes.  The whole engine is single-threaded:
// a resume never races with anything.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

namespace nicmcast::sim {

template <class T>
class Task;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation;  // who co_awaits us, if anyone
  std::exception_ptr error;

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <class Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      auto& promise = h.promise();
      if (promise.continuation) return promise.continuation;
      return std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() { error = std::current_exception(); }
};

template <class T>
struct Promise : PromiseBase {
  T value{};
  Task<T> get_return_object();
  void return_value(T v) { value = std::move(v); }
};

template <>
struct Promise<void> : PromiseBase {
  Task<void> get_return_object();
  void return_void() {}
};

}  // namespace detail

/// An eagerly-destroyed, lazily-started coroutine.  Move-only; destroying a
/// Task destroys the (suspended) coroutine frame and, transitively, any
/// child Task frames it owns.
template <class T = void>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::Promise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const { return static_cast<bool>(handle_); }
  [[nodiscard]] bool done() const { return handle_ && handle_.done(); }

  /// Starts (or resumes) the coroutine without an awaiter.  Used by the
  /// Simulator to kick off spawned root processes.
  void resume() { handle_.resume(); }

  /// Rethrows the coroutine's failure, if any.  Only meaningful once done().
  void rethrow_if_failed() {
    if (handle_ && handle_.promise().error) {
      std::rethrow_exception(handle_.promise().error);
    }
  }

  struct Awaiter {
    Handle handle;
    bool await_ready() const noexcept { return !handle || handle.done(); }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> h) noexcept {
      handle.promise().continuation = h;
      return handle;  // symmetric transfer: start the child immediately
    }
    T await_resume() {
      if (handle.promise().error) {
        std::rethrow_exception(handle.promise().error);
      }
      if constexpr (!std::is_void_v<T>) {
        return std::move(handle.promise().value);
      }
    }
  };

  Awaiter operator co_await() const& noexcept { return Awaiter{handle_}; }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  Handle handle_;
};

namespace detail {

template <class T>
Task<T> Promise<T>::get_return_object() {
  return Task<T>{std::coroutine_handle<Promise<T>>::from_promise(*this)};
}

inline Task<void> Promise<void>::get_return_object() {
  return Task<void>{std::coroutine_handle<Promise<void>>::from_promise(*this)};
}

}  // namespace detail

}  // namespace nicmcast::sim

// The discrete-event simulator driving the whole Myrinet/GM model.
//
// A Simulator owns a deterministic event queue and a set of spawned root
// processes (coroutines).  Model components schedule plain callbacks;
// simulated programs co_await time and synchronisation primitives.
#pragma once

#include <deque>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace nicmcast::sim {

class Simulator;

/// Process-wide default for Simulator's same-tick batched dispatch.  Set it
/// once at startup (before any Simulator runs, and before the harness
/// spawns worker threads) to A/B the batched path against per-event pops —
/// the executed order and event_order_hash are bit-identical either way,
/// which the CI bench-smoke job asserts by running both.
inline bool& default_batch_dispatch() {
  static bool enabled = true;
  return enabled;
}

/// Shared completion state of a spawned process; await via join().
class ProcessState {
 public:
  [[nodiscard]] bool done() const { return done_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  Trigger& on_done() { return on_done_; }

 private:
  friend class Simulator;
  std::string name_;
  bool done_ = false;
  std::exception_ptr error_;
  Trigger on_done_;
};

using ProcessRef = std::shared_ptr<ProcessState>;

class Simulator {
 public:
  Simulator() = default;
  explicit Simulator(std::uint64_t rng_seed) : rng_(rng_seed) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] TimePoint now() const { return now_; }
  [[nodiscard]] Rng& rng() { return rng_; }
  [[nodiscard]] Tracer& tracer() { return tracer_; }

  // ---- Plain-callback scheduling (used by model components) ----

  EventId schedule_at(TimePoint when, EventQueue::Action action) {
    if (when < now_) {
      throw std::logic_error("schedule_at: time in the past");
    }
    return queue_.schedule(when, std::move(action));
  }
  EventId schedule_after(Duration delay, EventQueue::Action action) {
    if (delay < Duration{0}) {
      throw std::logic_error("schedule_after: negative delay");
    }
    return queue_.schedule(now_ + delay, std::move(action));
  }
  bool cancel(EventId id) { return queue_.cancel(id); }

  // ---- Coroutine integration ----

  struct DelayAwaiter {
    Simulator& sim;
    Duration delay;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      sim.schedule_after(delay, [h] { h.resume(); });
    }
    void await_resume() const noexcept {}
  };

  /// `co_await sim.wait(usec(5))` — suspend for simulated time.
  DelayAwaiter wait(Duration d) { return DelayAwaiter{*this, d}; }

  /// Spawns `task` as a root process starting at the current instant.
  /// The returned handle reports completion and is awaitable via join().
  ProcessRef spawn(Task<void> task, std::string name = "process") {
    auto state = std::make_shared<ProcessState>();
    state->name_ = std::move(name);
    processes_.push_back(wrap(std::move(task), state));
    Task<void>& wrapper = processes_.back();
    schedule_after(Duration{0}, [&wrapper] { wrapper.resume(); });
    return state;
  }

  /// Awaitable that completes when the process finishes.
  static Trigger::Awaiter join(const ProcessRef& p) {
    return p->on_done().wait();
  }

  // ---- Execution ----

  /// Runs a single event.  Returns false when the queue is empty.
  bool step() {
    if (queue_.empty()) return false;
    auto [when, action] = queue_.pop();
    now_ = when;
    action();
    return true;
  }

  /// Runs every event at the earliest pending timestamp as one
  /// prefetch-friendly loop and returns how many executed (0 when every
  /// member was cancelled mid-batch).  Same-tick events scheduled by batch
  /// members run in the *next* batch at the same instant, preserving seq
  /// order exactly.  Precondition: pending_events() > 0.
  std::size_t step_batch() {
    TimePoint when;
    EventQueue::Action action;
    queue_.pop_tick(batch_, when, action);
    now_ = when;
    if (batch_.empty()) {
      action();
      return 1;
    }
    std::size_t ran = 0;
    for (std::size_t i = 0; i < batch_.size(); ++i) {
      if (!queue_.take(batch_[i], action)) continue;
      try {
        action();
      } catch (...) {
        // Restore the untouched tail so the queue stays consistent for
        // whoever catches this (tests drive failure paths through here).
        for (std::size_t j = i + 1; j < batch_.size(); ++j) {
          queue_.requeue(batch_[j]);
        }
        throw;
      }
      ++ran;
    }
    return ran;
  }

  /// Same-tick batched dispatch (default from sim::default_batch_dispatch).
  /// Executed order and hash are identical either way; flip only between
  /// runs, never mid-run.
  void set_batch_dispatch(bool on) { batch_dispatch_ = on; }
  [[nodiscard]] bool batch_dispatch() const { return batch_dispatch_; }

  /// Runs until no events remain, then rethrows the first process failure.
  void run() {
    if (batch_dispatch_) {
      while (!queue_.empty()) step_batch();
    } else {
      while (step()) {
      }
    }
    rethrow_failure();
  }

  /// Runs until the clock would pass `deadline`.  Events exactly at the
  /// deadline are executed.  Returns true if events remain afterwards.
  bool run_until(TimePoint deadline) {
    while (!queue_.empty() && queue_.next_time() <= deadline) {
      if (batch_dispatch_) {
        step_batch();
      } else {
        step();
      }
    }
    if (now_ < deadline) now_ = deadline;
    rethrow_failure();
    return !queue_.empty();
  }

  bool run_for(Duration d) { return run_until(now_ + d); }

  /// Runs every event strictly before `horizon` and returns how many ran.
  /// Unlike run_until, the clock is NOT advanced to the horizon: the next
  /// safe horizon of a conservative PDES round is a bound on other shards'
  /// sends, not a statement that this shard reached that instant.
  std::size_t run_before(TimePoint horizon) {
    std::size_t executed = 0;
    while (!queue_.empty() && queue_.next_time() < horizon) {
      if (batch_dispatch_) {
        executed += step_batch();
      } else {
        step();
        ++executed;
      }
    }
    rethrow_failure();
    return executed;
  }

  [[nodiscard]] std::size_t pending_events() { return queue_.size(); }

  /// Earliest pending event time.  Precondition: pending_events() > 0.
  /// The sharded engine publishes this as the shard's LBTS contribution.
  [[nodiscard]] TimePoint next_event_time() { return queue_.next_time(); }

  /// Event-queue throughput/allocation counters for this run.
  [[nodiscard]] const EventQueue::Stats& queue_stats() const {
    return queue_.stats();
  }

  /// Deterministic hash of the executed (time, seq) event order.
  [[nodiscard]] std::uint64_t event_order_hash() const {
    return queue_.order_hash();
  }

  /// True when every spawned process has completed.
  [[nodiscard]] bool all_processes_done() const {
    for (const auto& t : processes_) {
      if (!t.done()) return false;
    }
    return true;
  }

  /// Rethrows the first stored process failure, if any.
  void rethrow_failure() {
    for (auto& st : failed_) {
      if (st->error_) {
        auto err = st->error_;
        st->error_ = nullptr;
        std::rethrow_exception(err);
      }
    }
  }

 private:
  Task<void> wrap(Task<void> inner, ProcessRef state) {
    try {
      co_await inner;
    } catch (...) {
      state->error_ = std::current_exception();
      failed_.push_back(state);
    }
    state->done_ = true;
    state->on_done_.fire();
  }

  TimePoint now_{0};
  EventQueue queue_;
  std::vector<WheelItem> batch_;  // step_batch scratch, reused across ticks
  bool batch_dispatch_ = default_batch_dispatch();
  Rng rng_{0x9e3779b97f4a7c15ULL};
  Tracer tracer_;
  std::deque<Task<void>> processes_;  // deque: stable element addresses
  std::vector<ProcessRef> failed_;
};

}  // namespace nicmcast::sim

// ASCII swimlane rendering of trace records.
//
// Turns a Tracer's retained records into a per-actor timeline — one lane
// per actor, time flowing left to right — plus a numbered legend.  Used by
// examples/timing_diagram to render the paper's Figure 2 from live events,
// and handy when debugging protocol interleavings.
#pragma once

#include <algorithm>
#include <cstddef>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/trace.hpp"

namespace nicmcast::sim {

struct TimelineOptions {
  /// Columns available for the time axis.
  std::size_t width = 72;
  /// Explicit window; end <= start means auto-fit to the records.
  TimePoint start{0};
  TimePoint end{0};
  /// Cap on legend entries (0 = unlimited).
  std::size_t max_legend = 0;
};

/// Renders `records` as a swimlane diagram.  Events in the same lane that
/// collide on a column are stacked into one mark; each mark is labelled
/// with the index of its (first) record in the legend below.
inline std::string render_timeline(const std::vector<TraceRecord>& records,
                                   TimelineOptions options = {}) {
  if (records.empty()) return "(no trace records)\n";

  TimePoint t0 = options.start;
  TimePoint t1 = options.end;
  if (t1 <= t0) {
    t0 = records.front().when;
    t1 = records.front().when;
    for (const auto& r : records) {
      t0 = std::min(t0, r.when);
      t1 = std::max(t1, r.when);
    }
  }
  const double span =
      std::max(1.0, static_cast<double>((t1 - t0).nanoseconds()));
  const std::size_t width = std::max<std::size_t>(options.width, 10);

  // Lanes in first-appearance order — the `actors` vector carries the
  // order, so the lookup map does not need to be sorted.
  std::vector<std::string> actors;
  std::unordered_map<std::string, std::size_t> lane_of;
  for (const auto& r : records) {
    if (!lane_of.contains(r.actor)) {
      lane_of[r.actor] = actors.size();
      actors.push_back(r.actor);
    }
  }
  std::size_t label_width = 0;
  for (const auto& a : actors) label_width = std::max(label_width, a.size());

  std::vector<std::string> lanes(actors.size(),
                                 std::string(width + 1, '.'));
  auto column = [&](TimePoint t) {
    const double frac =
        static_cast<double>((t - t0).nanoseconds()) / span;
    return static_cast<std::size_t>(frac * static_cast<double>(width));
  };

  struct LegendEntry {
    char tag;
    const TraceRecord* record;
  };
  std::vector<LegendEntry> legend;
  char next_tag = 'a';
  for (const auto& r : records) {
    if (r.when < t0 || r.when > t1) continue;
    const std::size_t col = column(r.when);
    std::string& lane = lanes[lane_of[r.actor]];
    if (lane[col] == '.') {
      lane[col] = next_tag;
      legend.push_back(LegendEntry{next_tag, &r});
      next_tag = next_tag == 'z' ? 'A' : static_cast<char>(next_tag + 1);
      if (next_tag == 'Z' + 1) next_tag = 'a';  // wrap; tags repeat
    } else {
      lane[col] = '+';  // collision marker: several events share a column
    }
  }

  std::ostringstream out;
  out << std::string(label_width + 2, ' ') << t0.microseconds() << "us";
  const std::string right = std::to_string(t1.microseconds()) + "us";
  out << std::string(width > right.size() + 8 ? width - right.size() - 4 : 1,
                     ' ')
      << right << "\n";
  for (std::size_t i = 0; i < actors.size(); ++i) {
    out << actors[i] << std::string(label_width - actors[i].size(), ' ')
        << " |" << lanes[i] << "\n";
  }
  out << "\n";
  std::size_t shown = 0;
  for (const auto& entry : legend) {
    if (options.max_legend != 0 && shown++ >= options.max_legend) {
      out << "  ... (" << legend.size() - options.max_legend
          << " more)\n";
      break;
    }
    out << "  " << entry.tag << ": [" << entry.record->when.microseconds()
        << "us] " << entry.record->message << "\n";
  }
  return out.str();
}

}  // namespace nicmcast::sim

// Bounded single-producer / single-consumer channel.
//
// The inter-shard message fabric of the sharded PDES engine
// (sim/sharded_engine.hpp): each ordered shard pair owns one channel, the
// source shard's worker is the only producer and the destination shard's
// worker the only consumer.  The ring is a fixed-capacity power-of-two
// array with acquire/release head/tail counters — no locks, no allocation
// on the push/pop path.  A full ring spills to an engine-owned overflow
// vector guarded by a per-channel mutex in both sync modes: the async
// null-message mode needs the lock (a producer may spill concurrently
// with a consumer's drain), and the barrier mode — where the round
// barrier already orders the hand-off — takes the same uncontended lock
// so the spill contract is one rule instead of two (see
// ShardedEngine::Channel).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/thread_annotations.hpp"

namespace nicmcast::sim {

/// Bounded lock-free SPSC ring.  T must be default-constructible and
/// movable.  Exactly one thread may push and exactly one may pop; the
/// sharded engine's channel matrix guarantees that by construction.
///
/// The single-producer/single-consumer contract is expressed as two
/// phantom role capabilities (see thread_annotations.hpp): push requires
/// the producer role, pop/peek/empty require the consumer role.  Under
/// Clang's -Wthread-safety a caller must hold a RoleGuard on the matching
/// role (or assert it at a structural boundary) or the call is rejected at
/// compile time; tests/static/thread_safety_violation.cpp pins that down.
template <typename T>
class SpscChannel {
 public:
  explicit SpscChannel(std::size_t capacity = 1024)
      : ring_(round_up_pow2(capacity)), mask_(ring_.size() - 1) {}

  SpscChannel(const SpscChannel&) = delete;
  SpscChannel& operator=(const SpscChannel&) = delete;

  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }

  /// The "I am the single pushing thread" capability.
  [[nodiscard]] const Role& producer_role() const
      NM_RETURN_CAPABILITY(producer_role_) {
    return producer_role_;
  }

  /// The "I am the single popping thread" capability.
  [[nodiscard]] const Role& consumer_role() const
      NM_RETURN_CAPABILITY(consumer_role_) {
    return consumer_role_;
  }

  /// Producer side.  Returns false when the ring is full (the caller spills
  /// or retries); never blocks.
  [[nodiscard]] bool try_push(T&& value) NM_REQUIRES(producer_role_) {
    const std::uint64_t tail = push_cursor_.load(std::memory_order_relaxed);
    const std::uint64_t head = pop_cursor_.load(std::memory_order_acquire);
    if (tail - head == ring_.size()) return false;
    ring_[tail & mask_] = std::move(value);
    push_cursor_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side.  Moves the oldest element into `out`; false when empty.
  [[nodiscard]] bool try_pop(T& out) NM_REQUIRES(consumer_role_) {
    const std::uint64_t head = pop_cursor_.load(std::memory_order_relaxed);
    const std::uint64_t tail = push_cursor_.load(std::memory_order_acquire);
    if (head == tail) return false;
    out = std::move(ring_[head & mask_]);
    pop_cursor_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side.  Exposes the oldest element without consuming it; null
  /// when empty.  The pointer stays valid until the consumer's next
  /// try_pop() — the producer never touches an occupied slot.  The async
  /// sync mode peeks a message's round stamp to decide whether the element
  /// belongs to the drain batch in progress before committing to the pop.
  [[nodiscard]] const T* try_peek() const NM_REQUIRES(consumer_role_) {
    const std::uint64_t head = pop_cursor_.load(std::memory_order_relaxed);
    const std::uint64_t tail = push_cursor_.load(std::memory_order_acquire);
    if (head == tail) return nullptr;
    return &ring_[head & mask_];
  }

  /// Consumer-side view; exact for the consumer (the producer can only make
  /// it grow).
  [[nodiscard]] bool empty() const NM_REQUIRES(consumer_role_) {
    return pop_cursor_.load(std::memory_order_relaxed) ==
           push_cursor_.load(std::memory_order_acquire);
  }

 private:
  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p < 2 ? 2 : p;
  }

  std::vector<T> ring_;
  std::size_t mask_;
  Role producer_role_;
  Role consumer_role_;
  // Monotonic counters; wrap-around of uint64 is out of reach.  Separate
  // cache lines keep producer stores from bouncing the consumer's line.
  // Ordering contract (DESIGN.md §4.9): each side loads its own counter
  // relaxed (it is the only writer), loads the peer's counter acquire
  // (synchronizes with the peer's release store below), and publishes its
  // progress with a release store.
  alignas(64) std::atomic<std::uint64_t> pop_cursor_{0};
  alignas(64) std::atomic<std::uint64_t> push_cursor_{0};
};

}  // namespace nicmcast::sim

// Bounded single-producer / single-consumer channel.
//
// The inter-shard message fabric of the sharded PDES engine
// (sim/sharded_engine.hpp): each ordered shard pair owns one channel, the
// source shard's worker is the only producer and the destination shard's
// worker the only consumer.  The ring is a fixed-capacity power-of-two
// array with acquire/release head/tail counters — no locks, no allocation
// on the push/pop path.  A full ring spills to an engine-owned overflow
// vector; in barrier mode the round barrier orders every spill hand-off
// (messages are produced strictly inside an execution phase and consumed
// strictly after the following barrier) so the spill path needs no atomics
// at all, while the asynchronous null-message mode — where a producer may
// spill concurrently with a consumer's drain — guards the overflow vector
// with a per-channel mutex instead (see ShardedEngine::Channel).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace nicmcast::sim {

/// Bounded lock-free SPSC ring.  T must be default-constructible and
/// movable.  Exactly one thread may push and exactly one may pop; the
/// sharded engine's channel matrix guarantees that by construction.
template <typename T>
class SpscChannel {
 public:
  explicit SpscChannel(std::size_t capacity = 1024)
      : ring_(round_up_pow2(capacity)), mask_(ring_.size() - 1) {}

  SpscChannel(const SpscChannel&) = delete;
  SpscChannel& operator=(const SpscChannel&) = delete;

  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }

  /// Producer side.  Returns false when the ring is full (the caller spills
  /// or retries); never blocks.
  [[nodiscard]] bool try_push(T&& value) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (tail - head == ring_.size()) return false;
    ring_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side.  Moves the oldest element into `out`; false when empty.
  [[nodiscard]] bool try_pop(T& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return false;
    out = std::move(ring_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side.  Exposes the oldest element without consuming it; null
  /// when empty.  The pointer stays valid until the consumer's next
  /// try_pop() — the producer never touches an occupied slot.  The async
  /// sync mode peeks a message's round stamp to decide whether the element
  /// belongs to the drain batch in progress before committing to the pop.
  [[nodiscard]] const T* try_peek() const {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return nullptr;
    return &ring_[head & mask_];
  }

  /// Consumer-side view; exact for the consumer (the producer can only make
  /// it grow).
  [[nodiscard]] bool empty() const {
    return head_.load(std::memory_order_relaxed) ==
           tail_.load(std::memory_order_acquire);
  }

 private:
  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p < 2 ? 2 : p;
  }

  std::vector<T> ring_;
  std::size_t mask_;
  // Monotonic counters; wrap-around of uint64 is out of reach.  Separate
  // cache lines keep producer stores from bouncing the consumer's line.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::atomic<std::uint64_t> tail_{0};
};

}  // namespace nicmcast::sim
